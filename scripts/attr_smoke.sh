#!/bin/sh
# attr_smoke.sh — A/B check of the attribution pipeline and the
# seg-compare regression gate: simulate one clean run and one with an
# injected straggler (rank 2 at 1.5x compute), then require that
#  1. the ledger is byte-deterministic for a fixed seed,
#  2. seg-compare exits nonzero on the straggler run, and
#  3. the report blames rank 2 — the diff must point at the culprit,
#     not just notice a slowdown.
set -eu

sim=/tmp/segscale-summit-sim
cmp_bin=/tmp/segscale-seg-compare
clean=/tmp/segscale-attr-clean.json
clean2=/tmp/segscale-attr-clean-again.json
chaos=/tmp/segscale-attr-chaos.json
diff_out=/tmp/segscale-attr-diff.txt

go build -o "$sim" ./cmd/summit-sim
go build -o "$cmp_bin" ./cmd/seg-compare

"$sim" -gpus 4 -seed 11 -attr-out "$clean" >/dev/null
"$sim" -gpus 4 -seed 11 -attr-out "$clean2" >/dev/null
cmp -s "$clean" "$clean2" || {
    echo "attribution ledger is not byte-deterministic for a fixed seed"; exit 1; }

"$sim" -gpus 4 -seed 11 -chaos-plan "seed=1;slow=2*1.5" -attr-out "$chaos" >/dev/null

"$cmp_bin" -validate "$clean"
"$cmp_bin" -validate "$chaos"

if "$cmp_bin" "$clean" "$chaos" >"$diff_out"; then
    echo "seg-compare missed the injected straggler:"; cat "$diff_out"; exit 1
fi
grep -q 'idle_wait.*REGRESSION' "$diff_out" || {
    echo "diff did not flag idle_wait:"; cat "$diff_out"; exit 1; }
grep -q 'candidate rank 2 blamed most' "$diff_out" || {
    echo "diff did not blame rank 2:"; cat "$diff_out"; exit 1; }

# And the gate must stay quiet on a no-change comparison.
"$cmp_bin" "$clean" "$clean2" >/dev/null || {
    echo "seg-compare flagged identical runs"; exit 1; }

echo "attr smoke OK (straggler caught and blamed on rank 2)"
