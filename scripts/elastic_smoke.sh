#!/bin/sh
# elastic_smoke.sh — end-to-end check of the elastic-membership story
# and the hierarchical-vs-flat A/B gate:
#  1. crash -> shrink -> regrow: dlv3-train with crash=3@20 and
#     -rejoin-epoch 5 must shrink the world 4->3 at epoch 3, regrow
#     3->4 at epoch 5, and finish without a checkpoint restart;
#  2. the elastic transcript must be byte-identical across same-seed
#     reruns (the no-checkpoint determinism contract);
#  3. gate: at 1056 ranks the topology-aware two-level allreduce must
#     pass seg-compare against the flat-ring baseline, and the flat
#     ring as candidate must FAIL against the hierarchical baseline —
#     the gate has to see the direction of the win, not just a diff.
set -eu

train=/tmp/segscale-dlv3-train
sim=/tmp/segscale-summit-sim
cmp_bin=/tmp/segscale-seg-compare
run_a=/tmp/segscale-elastic-a.txt
run_b=/tmp/segscale-elastic-b.txt
ring=/tmp/segscale-attr-ring1056.json
hier=/tmp/segscale-attr-hier1056.json

go build -o "$train" ./cmd/dlv3-train
go build -o "$sim" ./cmd/summit-sim
go build -o "$cmp_bin" ./cmd/seg-compare

# 1+2: crash -> shrink -> regrow, twice, byte-identical transcripts.
elastic_run() {
    "$train" -world 4 -batch 1 -epochs 6 -train 24 -eval 8 \
        -elastic -rejoin-epoch 5 -max-restarts 2 -chaos-plan "crash=3@20" "$@"
}
# The final summary line carries real wall-clock time; normalize it so
# the comparison is over the training transcript only.
elastic_run | sed 's/ in [0-9a-zµ.]*$/ in X/' >"$run_a"
elastic_run | sed 's/ in [0-9a-zµ.]*$/ in X/' >"$run_b"
cmp -s "$run_a" "$run_b" || {
    echo "elastic run is not byte-deterministic across same-seed reruns:"
    diff "$run_a" "$run_b" || true; exit 1; }

grep -q '^3  *3 ' "$run_a" || {
    echo "world did not shrink to 3 ranks at epoch 3:"; cat "$run_a"; exit 1; }
grep -q '^5  *4 ' "$run_a" || {
    echo "world did not regrow to 4 ranks at epoch 5:"; cat "$run_a"; exit 1; }
grep -q 'elastic: 1 shrink(s), 1 regrow(s) — no checkpoint restart' "$run_a" || {
    echo "missing elastic shrink/regrow summary:"; cat "$run_a"; exit 1; }
grep -q 'via checkpoint restart' "$run_a" && {
    echo "elastic run fell back to checkpoint restart:"; cat "$run_a"; exit 1; }

# 3: hier-vs-flat A/B gate at 1056 ranks (176 nodes x 6 GPUs). The
# 1 ms per-bucket floor keeps the gate on step-level effects.
"$sim" -gpus 1056 -seed 11 -alg ring -attr-out "$ring" >/dev/null
"$sim" -gpus 1056 -seed 11 -alg hier-2level -attr-out "$hier" >/dev/null
"$cmp_bin" -validate "$ring"
"$cmp_bin" -validate "$hier"
"$cmp_bin" -min-abs 0.001 "$ring" "$hier" >/dev/null || {
    echo "hierarchical allreduce regressed against the flat-ring baseline"; exit 1; }
if "$cmp_bin" -min-abs 0.001 "$hier" "$ring" >/dev/null; then
    echo "seg-compare failed to flag the flat ring against the hierarchical baseline"; exit 1
fi

echo "elastic smoke OK (shrink 4->3 @3, regrow 3->4 @5, deterministic; hier beats flat at 1056)"
