#!/bin/sh
# fp16_smoke.sh — end-to-end check of the mixed-precision story and
# the fp32-vs-fp16 A/B gate:
#  1. dlv3-train -fp16 (binary16 gradient wire, fp32 master weights,
#     dynamic loss scaling) must converge and finish cleanly;
#  2. the fp16 transcript must be byte-identical across same-seed
#     reruns — the compressed wire is just as deterministic as the
#     fp32 golden path;
#  3. gate: at sweep scale the compressed allreduce must pass
#     seg-compare against the fp32 baseline (half the wire, same
#     compute), and the fp32 ledger as candidate must FAIL against
#     the fp16 baseline — the gate has to see the direction of the
#     win, not just a diff.
set -eu

train=/tmp/segscale-dlv3-train
sim=/tmp/segscale-summit-sim
cmp_bin=/tmp/segscale-seg-compare
run_a=/tmp/segscale-fp16-a.txt
run_b=/tmp/segscale-fp16-b.txt
fp32=/tmp/segscale-attr-fp32-1056.json
fp16=/tmp/segscale-attr-fp16-1056.json

go build -o "$train" ./cmd/dlv3-train
go build -o "$sim" ./cmd/summit-sim
go build -o "$cmp_bin" ./cmd/seg-compare

# 1+2: mixed-precision training, twice, byte-identical transcripts.
fp16_run() {
    "$train" -world 2 -batch 1 -epochs 4 -train 24 -eval 8 -fp16 "$@"
}
# The final summary line carries real wall-clock time; normalize it so
# the comparison is over the training transcript only.
fp16_run | sed 's/ in [0-9a-zµ.]*$/ in X/' >"$run_a"
fp16_run | sed 's/ in [0-9a-zµ.]*$/ in X/' >"$run_b"
cmp -s "$run_a" "$run_b" || {
    echo "fp16 run is not byte-deterministic across same-seed reruns:"
    diff "$run_a" "$run_b" || true; exit 1; }

grep -q 'final mIOU' "$run_a" || {
    echo "fp16 run did not reach the final evaluation:"; cat "$run_a"; exit 1; }

# 3: fp32-vs-fp16 A/B gate at 1056 ranks (176 nodes x 6 GPUs). The
# 1 ms per-bucket floor keeps the gate on step-level effects.
"$sim" -gpus 1056 -seed 11 -attr-out "$fp32" >/dev/null
"$sim" -gpus 1056 -seed 11 -fp16 -attr-out "$fp16" >/dev/null
"$cmp_bin" -validate "$fp32"
"$cmp_bin" -validate "$fp16"
"$cmp_bin" -min-abs 0.001 "$fp32" "$fp16" >/dev/null || {
    echo "fp16 compression regressed against the fp32 baseline"; exit 1; }
if "$cmp_bin" -min-abs 0.001 "$fp16" "$fp32" >/dev/null; then
    echo "seg-compare failed to flag fp32 against the fp16 baseline"; exit 1
fi

echo "fp16 smoke OK (deterministic mixed-precision run; compressed wire beats fp32 at 1056)"
