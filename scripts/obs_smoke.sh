#!/bin/sh
# obs_smoke.sh — end-to-end check of the live observability plane:
# start summit-sim with the HTTP endpoint armed, wait for the run to
# finish (it lingers for scrapes), curl /metrics and /healthz, validate
# the scraped metric names against the repository convention with
# seglint -prom, and validate the /debug/attribution ledger's schema
# (buckets summing to each row's step wall) with seg-compare -validate.
set -eu

log=/tmp/segscale-obs-smoke.log
prom=/tmp/segscale-obs-smoke.prom
attr=/tmp/segscale-obs-smoke-attr.json
: >"$log"

go build -o /tmp/segscale-summit-sim ./cmd/summit-sim
/tmp/segscale-summit-sim -gpus 1,6 -obs-addr 127.0.0.1:0 -obs-linger 60s >"$log" 2>&1 &
pid=$!
trap 'kill "$pid" 2>/dev/null || true' EXIT

# The resolved URL is printed once the listener is up; the completion
# marker says every scale has been simulated (gauges are final).
for _ in $(seq 1 100); do
    grep -q '^summit-sim: done$' "$log" && break
    kill -0 "$pid" 2>/dev/null || { echo "summit-sim exited early:"; cat "$log"; exit 1; }
    sleep 0.2
done
grep -q '^summit-sim: done$' "$log" || { echo "timed out waiting for summit-sim:"; cat "$log"; exit 1; }

url=$(sed -n 's/^obs: serving on //p' "$log")
[ -n "$url" ] || { echo "no obs URL in log:"; cat "$log"; exit 1; }

curl -fsS "$url/healthz" | grep -q '^ok$' || { echo "/healthz not ok"; exit 1; }
curl -fsS "$url/readyz" | grep -q '^ready$' || { echo "/readyz not ready"; exit 1; }
curl -fsS "$url/metrics" >"$prom"
grep -q '^# TYPE perfsim_step_seconds histogram' "$prom" || {
    echo "/metrics missing perfsim histogram:"; head "$prom"; exit 1; }
grep -q '^obs_scaling_efficiency_ratio' "$prom" || {
    echo "/metrics missing efficiency gauge:"; head "$prom"; exit 1; }

grep -q '^perfsim_step_p99_seconds' "$prom" || {
    echo "/metrics missing p99 quantile gauge:"; head "$prom"; exit 1; }
grep -q '^train_step_attribution_rows_events' "$prom" || {
    echo "/metrics missing attribution gauges:"; head "$prom"; exit 1; }

# Scraped names must satisfy the same convention the metricname pass
# enforces at registration sites.
go run ./cmd/seglint -prom "$prom"

# The live attribution snapshot must be a structurally valid ledger:
# known schema, in-range ranks, non-negative buckets that sum to each
# row's step wall within epsilon — seg-compare -validate is that gate.
curl -fsS "$url/debug/attribution" >"$attr"
go run ./cmd/seg-compare -validate "$attr"

echo "obs smoke OK ($url)"
