#!/bin/sh
# health_smoke.sh — end-to-end check of the training-health plane:
#  1. a healthy run must finish sentinel-silent and write a health
#     ledger that is byte-identical across same-seed reruns;
#  2. seg-compare -validate accepts the ledger and the A/B health gate
#     passes a healthy-vs-healthy compare in both directions;
#  3. a blown-LR run must trip the divergence sentinels with (layer,
#     rank, step) provenance, dump the flight-recorder window while it
#     still shows the divergence, still produce a valid ledger, and
#     FAIL the health gate as a HARD REGRESSION against the healthy
#     baseline. The distribution gate is two-sided by design (collapsed
#     gradients regress like blown ones), so the reverse compare may
#     flag the shift too — but only the diverged candidate may carry
#     the hard non-finite/sentinel verdict.
set -eu

train=/tmp/segscale-dlv3-train
cmp_bin=/tmp/segscale-seg-compare
healthy_a=/tmp/segscale-health-a.jsonl
healthy_b=/tmp/segscale-health-b.jsonl
blown=/tmp/segscale-health-blown.jsonl
flight=/tmp/segscale-health-flight.json
log=/tmp/segscale-health-smoke.log

go build -o "$train" ./cmd/dlv3-train
go build -o "$cmp_bin" ./cmd/seg-compare

health_run() {
    out=$1; shift
    "$train" -world 2 -batch 2 -epochs 2 -train 8 -eval 8 -health-out "$out" "$@"
}

# 1: healthy run, twice — sentinel-silent, byte-identical ledgers.
health_run "$healthy_a" >"$log" 2>&1
grep -q 'health: .* 0 sentinel trip(s)' "$log" || {
    echo "healthy run tripped a sentinel:"; cat "$log"; exit 1; }
health_run "$healthy_b" >/dev/null 2>&1
cmp -s "$healthy_a" "$healthy_b" || {
    echo "health ledger is not byte-deterministic across same-seed reruns"
    exit 1; }

# 2: schema gate, then the A/B gate in both directions.
"$cmp_bin" -validate "$healthy_a"
"$cmp_bin" "$healthy_a" "$healthy_b" >/dev/null || {
    echo "healthy-vs-healthy health gate regressed"; exit 1; }
"$cmp_bin" "$healthy_b" "$healthy_a" >/dev/null || {
    echo "healthy-vs-healthy health gate regressed (reverse)"; exit 1; }

# 3: blown-LR divergence — sentinels trip with provenance, the flight
# window is dumped at trip time, and the gate sees the direction.
health_run "$blown" -lr 1e20 -flight "$flight" >"$log" 2>&1
grep -q 'health alert:' "$log" || {
    echo "blown-LR run tripped no sentinel:"; cat "$log"; exit 1; }
grep -q 'health: first trip' "$log" || {
    echo "no first-trip provenance line:"; cat "$log"; exit 1; }
[ -s "$flight.health" ] || {
    echo "no divergence flight window dumped:"; cat "$log"; exit 1; }
"$cmp_bin" -validate "$blown"
diff_fwd=/tmp/segscale-health-diff-fwd.txt
diff_rev=/tmp/segscale-health-diff-rev.txt
if "$cmp_bin" "$healthy_a" "$blown" >"$diff_fwd"; then
    echo "health gate passed a diverged candidate:"; cat "$diff_fwd"; exit 1
fi
grep -q 'HARD REGRESSION' "$diff_fwd" || {
    echo "diverged candidate failed without the hard non-finite/sentinel verdict:"
    cat "$diff_fwd"; exit 1; }
"$cmp_bin" "$blown" "$healthy_a" >"$diff_rev" || true
if grep -q 'HARD REGRESSION' "$diff_rev"; then
    echo "recovery direction carries a hard regression verdict:"
    cat "$diff_rev"; exit 1
fi

echo "health smoke OK (healthy run silent; blown LR tripped sentinels and failed the gate)"
