package summitseg

import (
	"os"
	"path/filepath"

	"math"
	"segscale/internal/traceanalysis"
	"testing"
)

func TestLookupHelpers(t *testing.T) {
	for _, name := range []string{"spectrum", "mv2gdr"} {
		if _, err := MPIByName(name); err != nil {
			t.Errorf("MPIByName(%q): %v", name, err)
		}
	}
	for _, name := range []string{"dlv3plus", "resnet50"} {
		if _, err := ModelByName(name); err != nil {
			t.Errorf("ModelByName(%q): %v", name, err)
		}
	}
	if _, err := MPIByName("nope"); err == nil {
		t.Error("unknown MPI accepted")
	}
	if s := PaperScales(); s[len(s)-1] != 132 {
		t.Error("paper scales wrong")
	}
}

func TestSimulateFacade(t *testing.T) {
	mpi, _ := MPIByName("mv2gdr")
	prof, _ := ModelByName("dlv3plus")
	res, err := Simulate(SimOptions{GPUs: 12, Model: prof, MPI: mpi, Horovod: DefaultHorovod(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.ImgPerSec <= 0 || res.GPUs != 12 {
		t.Fatalf("bad result %+v", res)
	}
}

func TestScalingFacade(t *testing.T) {
	prof, _ := ModelByName("dlv3plus")
	points, err := Scaling([]int{1, 6}, prof, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 { // 2 configs × 2 scales
		t.Fatalf("%d points", len(points))
	}
}

func TestTunedHorovodDiffersFromDefault(t *testing.T) {
	d, tu := DefaultHorovod(), TunedHorovod()
	if d == tu {
		t.Fatal("tuned config identical to default")
	}
	if tu.FusionThreshold <= 0 || tu.CycleTime <= 0 {
		t.Fatal("tuned config invalid")
	}
}

func TestTrainFacade(t *testing.T) {
	cfg := DefaultTraining()
	cfg.Model.InputSize = 16
	cfg.Model.Width = 6
	cfg.Model.DeepBlocks = 1
	cfg.Model.AtrousRates = [3]int{1, 2, 3}
	cfg.Epochs = 2
	cfg.TrainSize = 8
	cfg.EvalSize = 4
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 2 {
		t.Fatalf("history %d", len(res.History))
	}
}

func TestAllreduceLatencyTable(t *testing.T) {
	mv2, _ := MPIByName("mv2gdr")
	spec, _ := MPIByName("spectrum")
	sizes := OSUMessageSizes()
	if sizes[0] != 4 || sizes[len(sizes)-1] != 64<<20 {
		t.Fatalf("OSU sizes %v", sizes[:3])
	}
	rowsM, err := AllreduceLatency(mv2, 2, sizes)
	if err != nil {
		t.Fatal(err)
	}
	rowsS, err := AllreduceLatency(spec, 2, sizes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rowsM {
		if rowsM[i].LatencyUS <= 0 || rowsM[i].LatencyUS >= rowsS[i].LatencyUS {
			t.Errorf("size %d: MV2 %.2fµs vs Spectrum %.2fµs", rowsM[i].Bytes, rowsM[i].LatencyUS, rowsS[i].LatencyUS)
		}
	}
	if _, err := AllreduceLatency(mv2, 2, []int{-1}); err == nil {
		t.Error("negative size accepted")
	}
}

func TestCollectiveLatencyOps(t *testing.T) {
	mv2, _ := MPIByName("mv2gdr")
	sizes := []int{1024, 1 << 20}
	for _, op := range []string{"allreduce", "bcast", "allgather", "reduce-scatter"} {
		rows, err := CollectiveLatency(op, mv2, 2, sizes)
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		for _, r := range rows {
			if r.LatencyUS <= 0 {
				t.Fatalf("%s: non-positive latency for %d bytes", op, r.Bytes)
			}
		}
	}
	if _, err := CollectiveLatency("alltoall", mv2, 2, sizes); err == nil {
		t.Error("unknown op accepted")
	}
}

func TestSimulateWithExtensions(t *testing.T) {
	mpi, _ := MPIByName("mv2gdr")
	prof, _ := ModelByName("dlv3plus")
	io := DefaultIO()
	res, err := Simulate(SimOptions{GPUs: 12, Model: prof, MPI: mpi,
		Horovod: DefaultHorovod(), Seed: 1, IO: &io})
	if err != nil {
		t.Fatal(err)
	}
	if res.DataStallSec != 0 {
		t.Fatal("prefetching pipeline should not stall")
	}
	cyc, err := Simulate(SimOptions{GPUs: 12, Model: prof, MPI: mpi,
		Horovod: DefaultHorovod(), Seed: 1, CyclicPlacement: true})
	if err != nil {
		t.Fatal(err)
	}
	if cyc.ImgPerSec <= 0 {
		t.Fatal("cyclic run broken")
	}
}

func TestJobScriptFacade(t *testing.T) {
	mpi, _ := MPIByName("mv2gdr")
	script, err := JobScript("test-job", 48, mpi, TunedHorovod())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"#BSUB -J test-job", "jsrun -n 48"} {
		if !contains(script, want) {
			t.Errorf("script missing %q", want)
		}
	}
}

func TestCheckpointFacade(t *testing.T) {
	cfg := DefaultDeepLab()
	cfg.InputSize = 16
	cfg.Width = 6
	cfg.DeepBlocks = 1
	cfg.AtrousRates = [3]int{1, 2, 3}
	m := NewDeepLab(cfg)
	path := t.TempDir() + "/m.segc"
	if err := SaveCheckpoint(path, m); err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Seed = 77
	m2 := NewDeepLab(cfg2)
	if err := LoadCheckpoint(path, m2); err != nil {
		t.Fatal(err)
	}
	if m.Params()[0].W.Data[0] != m2.Params()[0].W.Data[0] {
		t.Fatal("checkpoint facade round trip failed")
	}
	// FCN constructor works too.
	if NewFCN(cfg) == nil {
		t.Fatal("FCN constructor broken")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestFormatDuration(t *testing.T) {
	if s := FormatDuration(0.001234); s == "" || math.IsNaN(0) {
		t.Fatalf("format: %q", s)
	}
}

func TestAttributionFacade(t *testing.T) {
	mpi, _ := MPIByName("mv2gdr")
	prof, _ := ModelByName("dlv3plus")
	rec := NewAttributionRecorder("perfsim", 6)
	col := NewTelemetry()
	publish := AttributionPublisher(col, rec)
	if _, err := Simulate(SimOptions{
		GPUs: 6, Model: prof, MPI: mpi, Horovod: DefaultHorovod(),
		Seed: 1, Steps: 3, Attribution: rec,
	}); err != nil {
		t.Fatal(err)
	}
	// Steps=3 with the default 2 warmup steps leaves one measured
	// step, one ledger row per rank.
	if got := rec.Len(); got != 6 {
		t.Fatalf("recorder rows = %d, want 6", got)
	}
	l := rec.Ledger()
	if err := l.Validate(0); err != nil {
		t.Fatalf("simulated ledger invalid: %v", err)
	}
	publish()

	path := filepath.Join(t.TempDir(), "ledger.json")
	if err := WriteAttribution(rec, path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	back, err := traceanalysis.ReadLedger(f)
	if err != nil {
		t.Fatalf("written ledger unreadable: %v", err)
	}
	if back.Ranks != 6 || len(back.Steps) != 6 || back.Source != "perfsim" {
		t.Fatalf("round-trip ledger %d ranks %d rows source %q", back.Ranks, len(back.Steps), back.Source)
	}
	if err := WriteAttribution(rec, filepath.Join(path, "nope")); err == nil {
		t.Error("WriteAttribution to an impossible path succeeded")
	}

	// Nil sides of the publisher must degrade to a no-op.
	AttributionPublisher(nil, rec)()
	AttributionPublisher(col, nil)()
}

func TestAttributeTelemetryFacade(t *testing.T) {
	cfg := DefaultTraining()
	cfg.Model.InputSize = 16
	cfg.Model.Width = 6
	cfg.Model.DeepBlocks = 1
	cfg.Model.AtrousRates = [3]int{1, 2, 3}
	cfg.Epochs = 1
	cfg.TrainSize = 4
	cfg.EvalSize = 2
	col := NewTelemetry()
	cfg.Telemetry = col
	if _, err := Train(cfg); err != nil {
		t.Fatal(err)
	}
	l, err := AttributeTelemetry(col)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(0); err != nil {
		t.Fatalf("trace-side ledger invalid: %v", err)
	}
	if len(l.Steps) == 0 || l.Source != "trace" {
		t.Fatalf("ledger %d rows source %q", len(l.Steps), l.Source)
	}
}
