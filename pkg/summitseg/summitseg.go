// Package summitseg is the public API of segscale, a reproduction of
// "Efficient Training of Semantic Image Segmentation on Summit using
// Horovod and MVAPICH2-GDR" (Anthony et al., IPDPSW 2020).
//
// It exposes the four things the paper does:
//
//   - Simulate: distributed-training performance on a Summit-like
//     machine for a model profile under a Horovod/MPI configuration
//     (discrete-event simulation with calibrated compute times);
//   - Tune: the paper's staged knob-tuning methodology, which finds
//     near-linear-scaling configurations without modifying Horovod,
//     MPI, or the model;
//   - Train: real distributed data-parallel training of a scaled-down
//     DeepLab-v3+ on a synthetic VOC-21 dataset with real collectives
//     (the accuracy experiment);
//   - Microbench: osu_allreduce-style latency tables for the modelled
//     MPI libraries.
//
// See DESIGN.md for what is simulated versus real, and EXPERIMENTS.md
// for the paper-vs-measured comparison of every figure and table.
package summitseg

import (
	"fmt"
	"os"
	"time"

	"segscale/internal/checkpoint"
	"segscale/internal/core"
	"segscale/internal/deeplab"
	"segscale/internal/faultinject"
	"segscale/internal/horovod"
	"segscale/internal/iosim"
	"segscale/internal/jobscript"
	"segscale/internal/model"
	"segscale/internal/modelhealth"
	"segscale/internal/mpiprofile"
	"segscale/internal/netmodel"
	"segscale/internal/obs"
	"segscale/internal/perfsim"
	"segscale/internal/telemetry"
	"segscale/internal/timeline"
	"segscale/internal/topology"
	"segscale/internal/traceanalysis"
	"segscale/internal/train"
	"segscale/internal/transport"
)

// Re-exported configuration types. The underlying packages carry the
// full documentation.
type (
	// HorovodConfig is the HOROVOD_* knob set.
	HorovodConfig = horovod.Config
	// MPIProfile is an MPI library behaviour model ("spectrum",
	// "mv2gdr").
	MPIProfile = mpiprofile.Profile
	// ModelProfile is a full-size network description (DLv3+,
	// ResNet-50).
	ModelProfile = model.Profile
	// SimResult is one simulated run's aggregate outcome.
	SimResult = perfsim.Result
	// TrainConfig configures real distributed training.
	TrainConfig = train.Config
	// TrainResult is the real-training outcome with per-epoch metrics.
	TrainResult = train.Result
	// TuneReport is the staged-tuning outcome.
	TuneReport = core.TuneReport
	// ScalingPoint is one (config, GPU count) scaling measurement.
	ScalingPoint = core.ScalingPoint
	// Timeline records Horovod-style phase traces.
	Timeline = timeline.Recorder
	// Telemetry collects per-rank spans and metrics and exports them
	// as a Chrome trace, Prometheus text, or a JSON summary.
	Telemetry = telemetry.Collector
	// TelemetryProbe is one lane's instrumentation handle.
	TelemetryProbe = telemetry.Probe
	// ChaosPlan is a deterministic fault-injection plan: seed-driven
	// message drop/duplication/delay rates, scheduled rank crashes,
	// and straggler windows. Attach one via TrainConfig.Chaos (real
	// training with checkpoint-restart recovery) or SimOptions.Chaos
	// (performance simulation).
	ChaosPlan = faultinject.Plan
	// FlightRecorder is the always-on bounded ring of recent telemetry
	// events, dumpable as a Chrome trace mid-run (see
	// Telemetry.EnableFlight).
	FlightRecorder = telemetry.FlightRecorder
	// StepObserver receives per-step completion notifications from the
	// trainer (TrainConfig.StepObs) or the simulator
	// (SimOptions.StepObs).
	StepObserver = telemetry.StepObserver
	// ObsServer is the live observability HTTP server (/metrics,
	// /healthz, /readyz, /debug/flight, /debug/alerts, /debug/pprof).
	ObsServer = obs.Server
	// ObsServerOptions configures NewObsServer.
	ObsServerOptions = obs.ServerOptions
	// EffMonitor is the online scaling-efficiency monitor with SLO
	// alerts and straggler z-scores.
	EffMonitor = obs.EffMonitor
	// MonitorConfig tunes the efficiency monitor.
	MonitorConfig = obs.MonitorConfig
	// ObsAlert is one structured alert from the efficiency monitor.
	ObsAlert = obs.Alert
	// RunManifest is the per-run record written under results/runs/.
	RunManifest = obs.Manifest
	// PromFlusher periodically re-exports metrics to disk (atomic
	// temp-file + rename), so a crashed run still leaves usable data.
	PromFlusher = obs.PromFlusher
	// TransportWorld is one incarnation of the in-process rank world —
	// what TrainConfig.OnWorld hands to observers.
	TransportWorld = transport.World
)

// NewObsServer builds (without starting) the observability HTTP
// server; call its Start method to listen and serve in the
// background, TrackWorld from a TrainConfig.OnWorld hook to feed
// liveness, and Close when the run ends.
func NewObsServer(o ObsServerOptions) *ObsServer { return obs.NewServer(o) }

// NewEffMonitor builds an online scaling-efficiency monitor
// publishing gauges through col (which may be nil). Attach it via
// TrainConfig.StepObs or SimOptions.StepObs.
func NewEffMonitor(col *Telemetry, cfg MonitorConfig) *EffMonitor {
	return obs.NewEffMonitor(col, cfg)
}

// NewPromFlusher re-exports col's metrics to path every `every` step
// observations. Combine with other observers via MultiStepObserver.
func NewPromFlusher(col *Telemetry, path string, every int) *PromFlusher {
	return obs.NewPromFlusher(col, path, every)
}

// MultiStepObserver fans step notifications out to several observers,
// skipping nils (nil when none remain).
func MultiStepObserver(o ...StepObserver) StepObserver { return telemetry.MultiObserver(o...) }

// FlushPrometheus atomically writes col's current metrics to path in
// Prometheus text format.
func FlushPrometheus(col *Telemetry, path string) error { return obs.FlushPrometheus(col, path) }

// WriteFlightTrace atomically dumps a flight recorder's retained
// window to path as a Chrome trace (a nil recorder is a no-op).
func WriteFlightTrace(f *FlightRecorder, path string) error { return obs.WriteFlightTrace(f, path) }

// DumpFlightOnSignal dumps the flight recorder to path on every
// SIGQUIT until the returned stop function runs. report (optional)
// receives dump errors.
func DumpFlightOnSignal(f *FlightRecorder, path string, report func(error)) (stop func()) {
	return obs.DumpFlightOnSignal(f, path, report)
}

// WriteRunManifest writes a run manifest atomically under dir
// (conventionally "results/runs") and returns the file path.
func WriteRunManifest(dir string, m RunManifest) (string, error) { return obs.WriteManifest(dir, m) }

// GitRev returns the VCS revision baked into the running binary, or
// "unknown" for go-run builds.
func GitRev() string { return obs.GitRev() }

// DefaultSLO is the paper's ~92% scaling-efficiency headline — the
// efficiency monitor's default objective.
const DefaultSLO = obs.DefaultSLO

// ParseChaosSpec parses a compact chaos-plan spec such as
// "seed=7;drop=0.01;crash=1@40;slow=2*1.5@10-60". See
// faultinject.ParseSpec for the clause grammar.
func ParseChaosSpec(spec string) (*ChaosPlan, error) { return faultinject.ParseSpec(spec) }

// RandomChaosPlan derives a recoverable chaos plan (low-rate message
// faults plus one straggler, no crashes) entirely from the seed.
func RandomChaosPlan(seed int64, world int) *ChaosPlan { return faultinject.RandomPlan(seed, world) }

// NewTelemetry returns an empty telemetry collector. Attach it via
// TrainConfig.Telemetry or SimOptions.Telemetry, then export with its
// WriteChromeTrace / WritePrometheus / WriteJSON methods.
func NewTelemetry() *Telemetry { return telemetry.NewCollector() }

// DefaultHorovod returns Horovod's out-of-the-box knobs.
func DefaultHorovod() HorovodConfig { return horovod.Default() }

// TunedHorovod returns the knobs the staged tuner converges to on the
// DLv3+ workload.
func TunedHorovod() HorovodConfig { return core.TunedCandidate().Candidate.Horovod }

// Algorithm names an allreduce implementation strategy for
// HorovodConfig.Algorithm.
type Algorithm = netmodel.Algorithm

// AlgorithmByName parses an allreduce algorithm name: "auto", "ring",
// "recursive-doubling", "rabenseifner", "hier-leader", "hier-torus",
// or "hier-2level" (the topology-aware two-level composition).
func AlgorithmByName(name string) (Algorithm, error) { return netmodel.AlgorithmByName(name) }

// MPIByName returns a built-in MPI profile ("spectrum" or "mv2gdr").
func MPIByName(name string) (*MPIProfile, error) { return mpiprofile.ByName(name) }

// ModelByName returns a built-in model profile ("dlv3plus" or
// "resnet50").
func ModelByName(name string) (*ModelProfile, error) { return model.ByName(name) }

// PaperScales returns the paper's GPU counts: 1, 6, …, 132.
func PaperScales() []int { return topology.PaperScales() }

// IOConfig models the input pipeline (GPFS reads, decode workers,
// prefetch depth).
type IOConfig = iosim.Config

// DefaultIO returns the Summit/Alpine input-pipeline model.
func DefaultIO() IOConfig { return iosim.Default() }

// SimOptions configures Simulate.
type SimOptions struct {
	GPUs    int
	Model   *ModelProfile
	MPI     *MPIProfile
	Horovod HorovodConfig
	Seed    int64
	// Steps simulated (0 = default).
	Steps int
	// CyclicPlacement round-robins MPI ranks across nodes instead of
	// jsrun's block order (an anti-pattern worth measuring).
	CyclicPlacement bool
	// IO, when non-nil, adds the input-pipeline model.
	IO *IOConfig
	// Timeline, when non-nil, captures one step's phase trace.
	Timeline *Timeline
	// Telemetry, when non-nil, receives the simulator's metrics
	// (step-time and per-buffer communication histograms, wire-byte
	// counters, DES queue depth) on a lane named after the GPU count.
	Telemetry *Telemetry
	// Chaos, when non-nil, injects deterministic faults (stragglers,
	// message drop/duplication/delay) into the simulated run.
	Chaos *ChaosPlan
	// StepObs, when non-nil, receives every post-warmup simulated step
	// (lane "gpus<N>", virtual duration) — attach an EffMonitor here to
	// watch scaling efficiency live.
	StepObs StepObserver
	// Attribution, when non-nil, receives per-(step, rank) attribution
	// ledger rows: each rank's step wall time decomposed into buckets
	// that sum to it exactly, with idle waits blamed on the pacing
	// rank. Serve live via ObsServerOptions.Attribution, persist with
	// WriteAttribution, diff with seg-compare.
	Attribution *AttributionRecorder
}

// AttributionRecorder accumulates step-time attribution rows (see
// SimOptions.Attribution and ObsServerOptions.Attribution).
type AttributionRecorder = traceanalysis.LedgerRecorder

// AttributionLedger is the serialised attribution table seg-compare
// consumes.
type AttributionLedger = traceanalysis.Ledger

// NewAttributionRecorder returns a recorder for a run with the given
// source label ("perfsim", "trace") and rank count.
func NewAttributionRecorder(source string, ranks int) *AttributionRecorder {
	return traceanalysis.NewLedgerRecorder(source, ranks)
}

// AttributionPublisher attaches an "attribution" metrics lane to col
// and returns a refresh function: each call re-derives the
// train_step_attribution_* gauges (cumulative seconds per bucket plus
// a row counter) from the recorder's current ledger, keeping /metrics
// live. A nil collector or recorder yields a no-op.
func AttributionPublisher(col *Telemetry, rec *AttributionRecorder) func() {
	if col == nil || rec == nil {
		return func() {}
	}
	reg := col.NewProbe("attribution", telemetry.NewStepClock()).Metrics()
	return func() { rec.Publish(reg) }
}

// AttributeTelemetry assembles the collector's recorded spans into the
// cross-rank happens-before DAG and decomposes every rank's TRAIN_STEP
// window into the attribution buckets — the trace-side route to the
// same ledger the simulator records natively, used by dlv3-train
// -attr-out and trace-stats -attr.
func AttributeTelemetry(col *Telemetry) (*AttributionLedger, error) {
	rec := col.Timeline()
	return traceanalysis.AttributeTrace(rec, traceanalysis.BuildDAG(rec))
}

// WriteAttribution writes the recorder's ledger to path as canonical
// JSON (sorted rows, deterministic bytes for deterministic runs).
func WriteAttribution(rec *AttributionRecorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.Ledger().WriteLedger(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// HealthPlane is the training-health plane: per-layer gradient and
// activation statistics with divergence sentinels, collected inside
// the train step. Attach via TrainConfig.Health, serve live via
// ObsServerOptions.Health, persist with WriteHealthLedger, and diff
// two runs' ledgers with seg-compare.
type HealthPlane = modelhealth.Plane

// HealthConfig tunes health collection cadence and sentinel
// thresholds.
type HealthConfig = modelhealth.Config

// HealthAlert is one sentinel trip with (layer, rank, step,
// incarnation) provenance.
type HealthAlert = modelhealth.Alert

// HealthRow is one health-ledger row: one layer's gradient or
// activation statistics at one step on one rank.
type HealthRow = modelhealth.Row

// NewHealthPlane builds a training-health plane with defaults applied.
func NewHealthPlane(cfg HealthConfig) *HealthPlane { return modelhealth.New(cfg) }

// WriteHealthLedger writes the plane's health ledger to path as
// deterministic JSONL (header line, then rows sorted by (step, rank,
// inc, kind, layer) — byte-identical across same-seed reruns).
func WriteHealthLedger(p *HealthPlane, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.WriteLedger(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Simulate runs the performance simulator for one configuration.
func Simulate(opts SimOptions) (*SimResult, error) {
	placement := perfsim.PlacementPacked
	if opts.CyclicPlacement {
		placement = perfsim.PlacementCyclic
	}
	// The simulator runs on virtual time; the probe's clock only
	// stamps span-free metrics, so the deterministic step counter is
	// the right choice.
	lane := fmt.Sprintf("gpus%d", opts.GPUs)
	probe := opts.Telemetry.NewProbe(lane, telemetry.NewStepClock())
	// A simulated "image" is one sample on one GPU, so the lane's rank
	// count is the GPU count — observers that normalise per-rank
	// throughput (EffMonitor) need to know it.
	if lr, ok := opts.StepObs.(interface{ SetLaneRanks(string, int) }); ok && lr != nil {
		lr.SetLaneRanks(lane, opts.GPUs)
	}
	return perfsim.Run(perfsim.Config{
		GPUs: opts.GPUs, Model: opts.Model, MPI: opts.MPI,
		Horovod: opts.Horovod, Seed: opts.Seed, Steps: opts.Steps,
		Placement: placement, IO: opts.IO,
		Timeline: opts.Timeline, Probe: probe, Chaos: opts.Chaos,
		StepObs: opts.StepObs, Attribution: opts.Attribution,
	})
}

// JobScript renders an LSF/jsrun batch script for a configuration at
// the given scale — ready to bsub on a Summit-like system.
func JobScript(name string, gpus int, mpi *MPIProfile, hvd HorovodConfig) (string, error) {
	return jobscript.FromConfig(name, gpus, mpi, hvd).LSF()
}

// SaveCheckpoint / LoadCheckpoint persist a trained model's weights
// and batch-norm statistics.
func SaveCheckpoint(path string, m Segmenter) error {
	return checkpoint.SaveFile(path, m.Params(), m.BatchNorms())
}

// LoadCheckpoint restores weights saved by SaveCheckpoint into a
// structurally identical model.
func LoadCheckpoint(path string, m Segmenter) error {
	return checkpoint.LoadFile(path, m.Params(), m.BatchNorms())
}

// Segmenter is a trainable segmentation model (DeepLab-v3+ or FCN).
type Segmenter = deeplab.Segmenter

// NewDeepLab builds the scaled-down trainable DeepLab-v3+.
func NewDeepLab(cfg deeplab.Config) Segmenter { return deeplab.New(cfg) }

// NewFCN builds the baseline model.
func NewFCN(cfg deeplab.Config) Segmenter { return deeplab.NewFCN(cfg) }

// DeepLabConfig sizes the trainable models.
type DeepLabConfig = deeplab.Config

// DefaultDeepLab returns the laptop-scale model configuration.
func DefaultDeepLab() DeepLabConfig { return deeplab.DefaultConfig() }

// Scaling runs the paper's scaling study: the default and tuned
// configurations across the given GPU counts (PaperScales() if nil).
func Scaling(scales []int, prof *ModelProfile, seed int64) ([]ScalingPoint, error) {
	if scales == nil {
		scales = PaperScales()
	}
	return core.ScalingStudy(scales, prof,
		[]core.NamedCandidate{core.DefaultCandidate(), core.TunedCandidate()}, seed)
}

// Tune runs the staged tuning methodology at the given scale.
func Tune(gpus int, prof *ModelProfile, seed int64) (*TuneReport, error) {
	return core.NewTuner(gpus, prof, seed).StagedTune(core.DefaultSpace())
}

// Train runs real distributed training (see train.Config for knobs).
func Train(cfg TrainConfig) (*TrainResult, error) { return train.Run(cfg) }

// DefaultTraining returns a training configuration that converges on
// a laptop in seconds.
func DefaultTraining() TrainConfig { return train.DefaultConfig() }

// EnableMixedPrecision switches a training configuration to the
// paper's fp16 recipe: gradients cross the allreduce wire as binary16
// (2 bytes per element) while master weights and the optimiser stay
// float32, protected by dynamic loss scaling. A non-zero lossScale
// must be a positive power of two; zero keeps the default (1024).
func EnableMixedPrecision(cfg *TrainConfig, lossScale float64) {
	cfg.MixedPrecision = true
	cfg.LossScale = lossScale
}

// LatencyRow is one osu_allreduce-style measurement.
type LatencyRow struct {
	Bytes     int
	LatencyUS float64 // microseconds
}

// AllreduceLatency produces an osu_allreduce-style latency table for
// the given MPI profile across message sizes on `nodes` full Summit
// nodes, using the library's automatic algorithm selection.
func AllreduceLatency(mpi *MPIProfile, nodes int, sizes []int) ([]LatencyRow, error) {
	return CollectiveLatency("allreduce", mpi, nodes, sizes)
}

// CollectiveLatency generalises AllreduceLatency to the other
// osu-benchmark operations: "allreduce", "bcast", "allgather",
// "reduce-scatter".
func CollectiveLatency(op string, mpi *MPIProfile, nodes int, sizes []int) ([]LatencyRow, error) {
	mach := topology.Summit(nodes)
	net, err := netmodel.New(mach, mpi)
	if err != nil {
		return nil, err
	}
	ranks := net.WorldRanks()
	out := make([]LatencyRow, 0, len(sizes))
	for _, n := range sizes {
		if n < 0 {
			return nil, fmt.Errorf("summitseg: negative message size %d", n)
		}
		var t float64
		switch op {
		case "allreduce":
			t = net.Allreduce(netmodel.AlgAuto, ranks, n)
		case "bcast":
			t = net.Bcast(ranks, n)
		case "allgather":
			t = net.AllgatherRing(ranks, n)
		case "reduce-scatter":
			t = net.ReduceScatterRing(ranks, n)
		default:
			return nil, fmt.Errorf("summitseg: unknown collective %q", op)
		}
		out = append(out, LatencyRow{Bytes: n, LatencyUS: t * 1e6})
	}
	return out, nil
}

// OSUMessageSizes returns the power-of-four size ladder osu_allreduce
// sweeps (4 B … 64 MiB).
func OSUMessageSizes() []int {
	var out []int
	for n := 4; n <= 64<<20; n *= 4 {
		out = append(out, n)
	}
	return out
}

// FormatDuration renders seconds for tables.
func FormatDuration(sec float64) string {
	return time.Duration(float64(time.Second) * sec).Round(10 * time.Microsecond).String()
}
