package summitseg_test

import (
	"fmt"
	"log"

	"segscale/pkg/summitseg"
)

// ExampleSimulate reproduces the paper's headline: tuned
// Horovod + MVAPICH2-GDR scales near-linearly at 132 GPUs.
func ExampleSimulate() {
	prof, _ := summitseg.ModelByName("dlv3plus")
	mpi, _ := summitseg.MPIByName("mv2gdr")

	base, err := summitseg.Simulate(summitseg.SimOptions{
		GPUs: 1, Model: prof, MPI: mpi, Horovod: summitseg.TunedHorovod(), Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	at132, err := summitseg.Simulate(summitseg.SimOptions{
		GPUs: 132, Model: prof, MPI: mpi, Horovod: summitseg.TunedHorovod(), Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	eff := at132.EfficiencyVs(base)
	fmt.Printf("single GPU ≈ 6.7 img/s: %v\n", base.ImgPerSec > 6.4 && base.ImgPerSec < 7.0)
	fmt.Printf("near-linear at 132 GPUs (>88%% efficiency): %v\n", eff > 0.88)
	// Output:
	// single GPU ≈ 6.7 img/s: true
	// near-linear at 132 GPUs (>88% efficiency): true
}

// ExampleTune runs the staged tuning methodology and shows that it
// discovers the MVAPICH2-GDR configuration.
func ExampleTune() {
	prof, _ := summitseg.ModelByName("dlv3plus")
	rep, err := summitseg.Tune(48, prof, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best MPI library: %s\n", rep.Best.Candidate.MPI.Name)
	fmt.Printf("beats default Horovod: %v\n", rep.Speedup() > 1.1)
	// Output:
	// best MPI library: mv2gdr
	// beats default Horovod: true
}

// ExampleAllreduceLatency prints the microbenchmark contrast between
// the two MPI libraries.
func ExampleAllreduceLatency() {
	spectrum, _ := summitseg.MPIByName("spectrum")
	mv2, _ := summitseg.MPIByName("mv2gdr")
	sizes := []int{4, 64 << 20}
	a, _ := summitseg.AllreduceLatency(spectrum, 2, sizes)
	b, _ := summitseg.AllreduceLatency(mv2, 2, sizes)
	for i := range sizes {
		fmt.Printf("%d bytes: MVAPICH2-GDR faster: %v\n", sizes[i], b[i].LatencyUS < a[i].LatencyUS)
	}
	// Output:
	// 4 bytes: MVAPICH2-GDR faster: true
	// 67108864 bytes: MVAPICH2-GDR faster: true
}

// ExampleTrain really trains the scaled-down DeepLab-v3+ for two
// epochs on two ranks.
func ExampleTrain() {
	cfg := summitseg.DefaultTraining()
	cfg.World = 2
	cfg.Epochs = 2
	cfg.TrainSize = 16
	cfg.EvalSize = 8
	res, err := summitseg.Train(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("epochs recorded: %d\n", len(res.History))
	fmt.Printf("loss decreased: %v\n", res.History[1].Loss < res.History[0].Loss)
	// Output:
	// epochs recorded: 2
	// loss decreased: true
}
