# Mirrors .github/workflows/ci.yml so local runs and CI agree.

RACE_PKGS := ./internal/transport/ ./internal/tensor/ ./internal/nn/ ./internal/collective/ ./internal/telemetry/
FUZZTIME  ?= 10s

.PHONY: build test race lint vet fuzz-smoke trace-smoke ci

build:
	go build ./...

test:
	go test ./...

race:
	go test -race $(RACE_PKGS)

vet:
	go vet ./...

lint: vet
	go run ./cmd/seglint ./...

fuzz-smoke:
	go test -run='^$$' -fuzz=FuzzRoundTrip -fuzztime=$(FUZZTIME) ./internal/fp16/
	go test -run='^$$' -fuzz=FuzzHalfBits -fuzztime=$(FUZZTIME) ./internal/fp16/
	go test -run='^$$' -fuzz=FuzzLoad -fuzztime=$(FUZZTIME) ./internal/checkpoint/
	go test -run='^$$' -fuzz=FuzzReadChromeTrace -fuzztime=$(FUZZTIME) ./internal/timeline/

# trace-smoke runs the simulator end-to-end into the trace tooling:
# summit-sim writes a Chrome trace and a Prometheus dump, trace-stats
# must analyse the trace.
trace-smoke:
	go run ./cmd/summit-sim -gpus 6,132 -timeline /tmp/segscale-trace.json -prom /tmp/segscale-metrics.prom
	go run ./cmd/trace-stats /tmp/segscale-trace.json

ci: build lint test race fuzz-smoke trace-smoke
