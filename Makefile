# Mirrors .github/workflows/ci.yml so local runs and CI agree.

RACE_PKGS := ./internal/transport/ ./internal/tensor/ ./internal/nn/ ./internal/collective/
FUZZTIME  ?= 10s

.PHONY: build test race lint vet fuzz-smoke ci

build:
	go build ./...

test:
	go test ./...

race:
	go test -race $(RACE_PKGS)

vet:
	go vet ./...

lint: vet
	go run ./cmd/seglint ./...

fuzz-smoke:
	go test -run='^$$' -fuzz=FuzzRoundTrip -fuzztime=$(FUZZTIME) ./internal/fp16/
	go test -run='^$$' -fuzz=FuzzHalfBits -fuzztime=$(FUZZTIME) ./internal/fp16/
	go test -run='^$$' -fuzz=FuzzLoad -fuzztime=$(FUZZTIME) ./internal/checkpoint/

ci: build lint test race fuzz-smoke
