# Mirrors .github/workflows/ci.yml so local runs and CI agree.

RACE_PKGS := ./internal/transport/ ./internal/faultinject/ ./internal/tensor/ ./internal/nn/ ./internal/collective/ ./internal/horovod/ ./internal/telemetry/ ./internal/obs/ ./internal/fp16/ ./internal/modelhealth/
FUZZTIME  ?= 10s

# Statement-coverage floor across ./... — measured 76.9% when the
# chaos/recovery suite landed; the slack absorbs small refactors, not
# untested subsystems.
COVER_FLOOR ?= 74.0
COVER_OUT   ?= /tmp/segscale-cover.out

.PHONY: build test race lint vet fuzz-smoke trace-smoke chaos-smoke obs-smoke attr-smoke elastic-smoke fp16-smoke health-smoke cover bench-json bench-check ci

build:
	go build ./...

test:
	go test ./...

race:
	go test -race $(RACE_PKGS)
	go test -race -run 'TestElastic|TestMixedPrecision|TestHealthLedgerGolden|TestHealthDivergence' ./internal/train/

vet:
	go vet ./...

lint: vet
	go run ./cmd/seglint -suppressions ./...

fuzz-smoke:
	go test -run='^$$' -fuzz=FuzzRoundTrip -fuzztime=$(FUZZTIME) ./internal/fp16/
	go test -run='^$$' -fuzz=FuzzHalfBits -fuzztime=$(FUZZTIME) ./internal/fp16/
	go test -run='^$$' -fuzz=FuzzLoad$$ -fuzztime=$(FUZZTIME) ./internal/checkpoint/
	go test -run='^$$' -fuzz=FuzzLoadState -fuzztime=$(FUZZTIME) ./internal/checkpoint/
	go test -run='^$$' -fuzz=FuzzReadChromeTrace -fuzztime=$(FUZZTIME) ./internal/timeline/

# trace-smoke runs the simulator end-to-end into the trace tooling:
# summit-sim writes a Chrome trace and a Prometheus dump, trace-stats
# must analyse the trace.
trace-smoke:
	go run ./cmd/summit-sim -gpus 6,132 -timeline /tmp/segscale-trace.json -prom /tmp/segscale-metrics.prom
	go run ./cmd/trace-stats /tmp/segscale-trace.json

# chaos-smoke checks the fault-injection reproducibility contract:
# the same chaos seed must yield a byte-identical simulator report.
chaos-smoke:
	go run ./cmd/summit-sim -gpus 1,6,24 -chaos-seed 1 > /tmp/segscale-chaos-a.txt
	go run ./cmd/summit-sim -gpus 1,6,24 -chaos-seed 1 > /tmp/segscale-chaos-b.txt
	diff /tmp/segscale-chaos-a.txt /tmp/segscale-chaos-b.txt

# obs-smoke drives the live observability plane end to end: serve,
# scrape /metrics + /healthz + /debug/attribution, validate scraped
# names with seglint and the attribution ledger with seg-compare.
obs-smoke:
	./scripts/obs_smoke.sh

# attr-smoke is the regression gate's own test: a clean run against an
# injected rank-2 straggler must fail seg-compare and blame rank 2.
attr-smoke:
	./scripts/attr_smoke.sh

# elastic-smoke drives the elastic-membership story end to end:
# crash -> shrink -> regrow on the real trainer, byte-identical across
# reruns, then the seg-compare hier-vs-flat A/B gate at 1056 ranks.
elastic-smoke:
	./scripts/elastic_smoke.sh

# fp16-smoke drives the mixed-precision story end to end: same-seed
# -fp16 reruns must be byte-identical, then the seg-compare
# fp32-vs-fp16 A/B gate at 1056 ranks (the compressed wire must win,
# and the gate must see the direction).
fp16-smoke:
	./scripts/fp16_smoke.sh

# health-smoke drives the training-health plane end to end: a healthy
# run stays sentinel-silent with a byte-deterministic ledger, a
# blown-LR run trips the divergence sentinels with provenance and
# dumps the flight window, and the seg-compare health gate hard-fails
# the diverged candidate.
health-smoke:
	./scripts/health_smoke.sh

# bench-json regenerates the committed performance baseline (full
# timing iterations). Run it on kernel or allocation-path changes and
# commit the result; docs/PERFORMANCE.md explains how to read it.
bench-json:
	go run ./cmd/segbench -o BENCH_kernels.json

# bench-check is the CI gate: a -fast run must match the committed
# baseline's schema and benchmark set, and may not allocate more per
# op. Timing deltas are advisory (CI hardware varies; allocation
# counts, measured at GOMAXPROCS=1, do not).
bench-check:
	go run ./cmd/segbench -fast -o /tmp/segscale-bench.json -check BENCH_kernels.json

cover:
	go test -count=1 -coverprofile=$(COVER_OUT) ./...
	@total=$$(go tool cover -func=$(COVER_OUT) | tail -n 1 | awk '{print $$3}' | tr -d '%'); \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { \
		if (t+0 < f+0) { printf "FAIL: coverage %.1f%% below floor %.1f%%\n", t, f; exit 1 } \
		printf "coverage %.1f%% >= floor %.1f%%\n", t, f }'

ci: build lint test race fuzz-smoke trace-smoke chaos-smoke obs-smoke attr-smoke elastic-smoke fp16-smoke health-smoke bench-check cover
