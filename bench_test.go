// Package segscale's root benchmark harness: one benchmark per
// reconstructed table/figure of the paper (see DESIGN.md's experiment
// index) plus ablation benches for the design decisions DESIGN.md
// calls out. Key quantities are attached as custom benchmark metrics
// (img/s, eff%, ...) so `go test -bench .` regenerates the numbers
// EXPERIMENTS.md reports.
package segscale

import (
	"testing"
	"time"

	"segscale/internal/core"
	"segscale/internal/horovod"
	"segscale/internal/model"
	"segscale/internal/mpiprofile"
	"segscale/internal/netmodel"
	"segscale/internal/netsim"
	"segscale/internal/perfsim"
	"segscale/internal/timeline"
	"segscale/internal/topology"
	"segscale/internal/train"
)

func mustSim(b *testing.B, cfg perfsim.Config) *perfsim.Result {
	b.Helper()
	res, err := perfsim.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func simConfig(gpus int, nc core.NamedCandidate) perfsim.Config {
	return perfsim.Config{
		GPUs: gpus, Model: model.DLv3Plus(),
		MPI: nc.Candidate.MPI, Horovod: nc.Candidate.Horovod, Seed: 1,
	}
}

// BenchmarkT1_Topology regenerates the system-configuration table:
// machine construction and link classification across the full
// 132-rank allocation.
func BenchmarkT1_Topology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := topology.ForGPUs(132)
		links := 0
		for a := 0; a < m.Ranks(); a++ {
			for c := a + 1; c < m.Ranks(); c++ {
				if m.Link(a, c) == topology.LinkIB {
					links++
				}
			}
		}
		if links == 0 {
			b.Fatal("no inter-node links")
		}
	}
	b.ReportMetric(132, "gpus")
	b.ReportMetric(22, "nodes")
}

// BenchmarkF1_SingleGPU regenerates the single-GPU throughput anchors
// (paper: DLv3+ 6.7 img/s, ResNet-50 300 img/s).
func BenchmarkF1_SingleGPU(b *testing.B) {
	for _, prof := range []*model.Profile{model.DLv3Plus(), model.ResNet50()} {
		b.Run(prof.Name, func(b *testing.B) {
			var last *perfsim.Result
			for i := 0; i < b.N; i++ {
				last = mustSim(b, perfsim.Config{GPUs: 1, Model: prof, MPI: mpiprofile.MV2GDR(), Horovod: horovod.Default(), Seed: 1})
			}
			b.ReportMetric(last.ImgPerSec, "img/s")
		})
	}
}

// BenchmarkF2_AllreduceMicro regenerates the osu_allreduce-style
// latency comparison at the paper's fused-buffer size on 22 nodes.
func BenchmarkF2_AllreduceMicro(b *testing.B) {
	const bytes = 64 << 20
	for _, name := range mpiprofile.Names() {
		b.Run(name, func(b *testing.B) {
			prof, _ := mpiprofile.ByName(name)
			net := netmodel.MustNew(topology.Summit(22), prof)
			ranks := net.WorldRanks()
			var t float64
			for i := 0; i < b.N; i++ {
				t = net.Allreduce(netmodel.AlgAuto, ranks, bytes)
			}
			b.ReportMetric(t*1e3, "ms/allreduce-64MiB")
		})
	}
}

// BenchmarkF3_Timeline regenerates the Horovod timeline breakdown at
// 24 GPUs and reports the negotiation+allreduce share.
func BenchmarkF3_Timeline(b *testing.B) {
	for _, nc := range []core.NamedCandidate{core.DefaultCandidate(), core.TunedCandidate()} {
		b.Run(nc.Name, func(b *testing.B) {
			var comm, span float64
			for i := 0; i < b.N; i++ {
				rec := timeline.New()
				cfg := simConfig(24, nc)
				cfg.Timeline = rec
				mustSim(b, cfg)
				br := rec.Breakdown()
				comm = br[timeline.PhaseNegotiate] + br[timeline.PhaseAllreduce] + br[timeline.PhaseMemcpy]
				lo, hi := rec.Span()
				span = hi - lo
			}
			b.ReportMetric(100*comm/span, "comm%ofstep")
		})
	}
}

// BenchmarkF4_FusionSweep regenerates the fusion-threshold sweep at
// 96 GPUs (reports the spread between worst and best threshold).
func BenchmarkF4_FusionSweep(b *testing.B) {
	thresholds := []int{1 << 20, 8 << 20, 64 << 20, 256 << 20}
	var worst, best float64
	for i := 0; i < b.N; i++ {
		worst, best = 0, 0
		for _, th := range thresholds {
			cfg := simConfig(96, core.DefaultCandidate())
			cfg.Horovod.FusionThreshold = th
			r := mustSim(b, cfg)
			if worst == 0 || r.ImgPerSec < worst {
				worst = r.ImgPerSec
			}
			if r.ImgPerSec > best {
				best = r.ImgPerSec
			}
		}
	}
	b.ReportMetric(best, "best-img/s")
	b.ReportMetric(100*(best/worst-1), "spread%")
}

// BenchmarkF5_CycleSweep regenerates the cycle-time sweep at 96 GPUs
// (the U-shape: reports interior-optimum gain over the extremes).
func BenchmarkF5_CycleSweep(b *testing.B) {
	cycles := []time.Duration{500 * time.Microsecond, 2 * time.Millisecond, 5 * time.Millisecond, 30 * time.Millisecond}
	var edge, best float64
	for i := 0; i < b.N; i++ {
		edge, best = 0, 0
		for j, ct := range cycles {
			cfg := simConfig(96, core.TunedCandidate())
			cfg.Horovod.CycleTime = ct
			r := mustSim(b, cfg)
			if j == 0 || j == len(cycles)-1 {
				if r.ImgPerSec > edge {
					edge = r.ImgPerSec
				}
			}
			if r.ImgPerSec > best {
				best = r.ImgPerSec
			}
		}
	}
	b.ReportMetric(best, "best-img/s")
	b.ReportMetric(100*(best/edge-1), "gain-vs-extremes%")
}

// BenchmarkF6_Scaling regenerates the scaling-throughput figure
// (1..132 GPUs, default vs tuned) and reports the 132-GPU rates.
func BenchmarkF6_Scaling(b *testing.B) {
	var def132, tun132 float64
	for i := 0; i < b.N; i++ {
		points, err := core.ScalingStudy(topology.PaperScales(), model.DLv3Plus(),
			[]core.NamedCandidate{core.DefaultCandidate(), core.TunedCandidate()}, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.GPUs == 132 {
				if p.Config == "default-spectrum" {
					def132 = p.ImgPerSec
				} else {
					tun132 = p.ImgPerSec
				}
			}
		}
	}
	b.ReportMetric(def132, "default-img/s@132")
	b.ReportMetric(tun132, "tuned-img/s@132")
}

// BenchmarkF7_Efficiency regenerates the headline numbers: tuned
// efficiency ≈92 %, improvement ≈+24 %, speedup ≈1.3×.
func BenchmarkF7_Efficiency(b *testing.B) {
	var effT, effD, speedup float64
	for i := 0; i < b.N; i++ {
		baseT := mustSim(b, simConfig(1, core.TunedCandidate()))
		baseD := mustSim(b, simConfig(1, core.DefaultCandidate()))
		tuned := mustSim(b, simConfig(132, core.TunedCandidate()))
		def := mustSim(b, simConfig(132, core.DefaultCandidate()))
		effT = tuned.EfficiencyVs(baseT)
		effD = def.EfficiencyVs(baseD)
		speedup = tuned.ImgPerSec / def.ImgPerSec
	}
	b.ReportMetric(100*effT, "tuned-eff%")
	b.ReportMetric(100*effD, "default-eff%")
	b.ReportMetric(100*(effT/effD-1), "improvement%")
	b.ReportMetric(speedup, "speedup-x")
}

// BenchmarkT2_BestConfig regenerates the tuned-knob table via the
// staged tuner at 132 GPUs.
func BenchmarkT2_BestConfig(b *testing.B) {
	var rep *core.TuneReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = core.NewTuner(132, model.DLv3Plus(), 1).StagedTune(core.DefaultSpace())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.Evals), "evals")
	b.ReportMetric(100*rep.Best.Efficiency, "best-eff%")
}

// BenchmarkF8_Accuracy regenerates (a shortened form of) the accuracy
// experiment: real distributed training of the mini DLv3+.
func BenchmarkF8_Accuracy(b *testing.B) {
	var miou float64
	for i := 0; i < b.N; i++ {
		cfg := train.DefaultConfig()
		cfg.World = 2
		cfg.Epochs = 4
		cfg.TrainSize = 32
		cfg.EvalSize = 8
		res, err := train.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		miou = res.FinalMIOU
	}
	b.ReportMetric(100*miou, "mIOU%@4epochs")
}

// BenchmarkT3_ModelContrast regenerates the DLv3+ vs ResNet-50
// scaling contrast at 132 GPUs.
func BenchmarkT3_ModelContrast(b *testing.B) {
	var effDL, effRN float64
	for i := 0; i < b.N; i++ {
		for _, prof := range []*model.Profile{model.DLv3Plus(), model.ResNet50()} {
			cfg := perfsim.Config{GPUs: 1, Model: prof, MPI: mpiprofile.MV2GDR(), Horovod: horovod.Default(), Seed: 3}
			base := mustSim(b, cfg)
			cfg.GPUs = 132
			at := mustSim(b, cfg)
			if prof.Name == "resnet-50" {
				effRN = at.EfficiencyVs(base)
			} else {
				effDL = at.EfficiencyVs(base)
			}
		}
	}
	b.ReportMetric(100*effDL, "dlv3-eff%")
	b.ReportMetric(100*effRN, "rn50-eff%")
}

// --- Ablation benches for DESIGN.md's design decisions. ---

// BenchmarkAblation_Overlap quantifies the GDR-overlap mechanism:
// forcing the GPU-direct library to serialise against compute.
func BenchmarkAblation_Overlap(b *testing.B) {
	var auto, serial float64
	for i := 0; i < b.N; i++ {
		cfg := simConfig(132, core.TunedCandidate())
		auto = mustSim(b, cfg).ImgPerSec
		cfg.Overlap = perfsim.OverlapNone
		serial = mustSim(b, cfg).ImgPerSec
	}
	b.ReportMetric(auto, "overlap-img/s")
	b.ReportMetric(serial, "serial-img/s")
}

// BenchmarkAblation_Hierarchical compares the three allreduce shapes
// analytically for the paper-size fused buffer at 132 ranks.
func BenchmarkAblation_Hierarchical(b *testing.B) {
	net := netmodel.MustNew(topology.Summit(22), mpiprofile.MV2GDR())
	ranks := net.WorldRanks()
	const bytes = 64 << 20
	var flat, leader, torus float64
	for i := 0; i < b.N; i++ {
		flat = net.AllreduceRing(ranks, bytes)
		leader = net.AllreduceHierLeader(ranks, bytes)
		torus = net.AllreduceHierTorus(ranks, bytes)
	}
	b.ReportMetric(flat*1e3, "flat-ms")
	b.ReportMetric(leader*1e3, "hier-leader-ms")
	b.ReportMetric(torus*1e3, "hier-torus-ms")
}

// BenchmarkAblation_NoFusion disables tensor fusion entirely
// (per-tensor allreduce — what Horovod exists to avoid).
func BenchmarkAblation_NoFusion(b *testing.B) {
	var fused, unfused float64
	for i := 0; i < b.N; i++ {
		cfg := simConfig(96, core.DefaultCandidate())
		fused = mustSim(b, cfg).ImgPerSec
		cfg.Horovod.FusionThreshold = 0
		unfused = mustSim(b, cfg).ImgPerSec
	}
	b.ReportMetric(fused, "fused-img/s")
	b.ReportMetric(unfused, "unfused-img/s")
}

// BenchmarkAblation_GDRPath disables GPU-direct on the MVAPICH2-GDR
// profile (MV2_USE_GPUDIRECT=0), forcing host staging.
func BenchmarkAblation_GDRPath(b *testing.B) {
	var gdr, staged float64
	for i := 0; i < b.N; i++ {
		cfg := simConfig(132, core.TunedCandidate())
		gdr = mustSim(b, cfg).ImgPerSec
		mpi := cfg.MPI.Clone()
		if err := mpi.ApplyEnv([]string{"MV2_USE_GPUDIRECT=0"}); err != nil {
			b.Fatal(err)
		}
		cfg.MPI = mpi
		staged = mustSim(b, cfg).ImgPerSec
	}
	b.ReportMetric(gdr, "gdr-img/s")
	b.ReportMetric(staged, "staged-img/s")
}

// BenchmarkAblation_Placement compares packed vs cyclic MPI-rank
// placement (a jsrun-level knob): cyclic puts every ring edge on the
// NIC, congesting it 6 ways.
func BenchmarkAblation_Placement(b *testing.B) {
	var packed, cyclic float64
	for i := 0; i < b.N; i++ {
		cfg := simConfig(132, core.TunedCandidate())
		cfg.Horovod.Algorithm = netmodel.AlgRing
		packed = mustSim(b, cfg).AllreduceSec
		cfg.Placement = perfsim.PlacementCyclic
		cyclic = mustSim(b, cfg).AllreduceSec
	}
	b.ReportMetric(packed*1e3, "packed-allreduce-ms")
	b.ReportMetric(cyclic*1e3, "cyclic-allreduce-ms")
}

// BenchmarkAblation_FP16Compression measures fp16 gradient
// compression on the bandwidth-bound default path.
func BenchmarkAblation_FP16Compression(b *testing.B) {
	var plain, fp16c float64
	for i := 0; i < b.N; i++ {
		cfg := simConfig(132, core.DefaultCandidate())
		plain = mustSim(b, cfg).ImgPerSec
		cfg.Horovod.FP16Compression = true
		fp16c = mustSim(b, cfg).ImgPerSec
	}
	b.ReportMetric(plain, "fp32-img/s")
	b.ReportMetric(fp16c, "fp16-img/s")
}

// BenchmarkAblation_TwoViewValidation cross-checks the analytic ring
// cost against the message-level DES (the "two-view" design
// decision): the reported ratio should hover near 1.
func BenchmarkAblation_TwoViewValidation(b *testing.B) {
	mach := topology.Summit(4)
	prof := mpiprofile.MV2GDR()
	const bytes = 16 << 20
	var ratio float64
	for i := 0; i < b.N; i++ {
		nw, err := netsim.New(mach, prof)
		if err != nil {
			b.Fatal(err)
		}
		ranks := make([]int, 24)
		for j := range ranks {
			ranks[j] = j
		}
		res, err := nw.RingAllreduce(ranks, bytes, nil)
		if err != nil {
			b.Fatal(err)
		}
		analytic := netmodel.MustNew(mach, prof).AllreduceRing(ranks, bytes)
		ratio = res.Finish / analytic
	}
	b.ReportMetric(ratio, "netsim/analytic-ratio")
}

// BenchmarkAblation_ResponseCache measures the coordinator response
// cache's effect on negotiation time at 132 ranks.
func BenchmarkAblation_ResponseCache(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		cfg := simConfig(132, core.TunedCandidate())
		cfg.Horovod.ResponseCache = true
		with = mustSim(b, cfg).NegotiateSec
		cfg.Horovod.ResponseCache = false
		without = mustSim(b, cfg).NegotiateSec
	}
	b.ReportMetric(with*1e3, "cached-negotiate-ms")
	b.ReportMetric(without*1e3, "uncached-negotiate-ms")
}
