// Urban-scenes trains the mini DeepLab-v3+ on the Cityscapes-flavoured
// synthetic dataset (sky/building/road bands with cars and
// pedestrians) and renders prediction triptychs — the generality check
// that the training stack is not specialised to the VOC-style scenes.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"segscale/internal/segdata"
	"segscale/internal/segviz"
	"segscale/internal/train"
)

func main() {
	log.SetFlags(0)
	epochs := flag.Int("epochs", 15, "training epochs")
	out := flag.String("out", "urban-viz", "PNG output directory")
	flag.Parse()

	cfg := train.DefaultConfig()
	cfg.World = 2
	cfg.Epochs = *epochs
	cfg.TrainSize = 48
	cfg.DataStyle = segdata.StyleUrban

	fmt.Printf("training mini DLv3+ on urban scenes (%d epochs, 2 ranks)\n", *epochs)
	res, err := train.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range res.History {
		if e.Epoch%3 == 0 || e.Epoch == cfg.Epochs-1 {
			fmt.Printf("  epoch %2d: loss %.3f mIOU %.1f%%\n", e.Epoch, e.Loss, 100*e.MIOU)
		}
	}
	fmt.Printf("final mIOU %.1f%% (fwIOU %.1f%%)\n", 100*res.FinalMIOU, 100*res.FinalFwIOU)

	fmt.Println("\nper-class IOU:")
	for k, iou := range res.FinalPerClassIOU {
		if math.IsNaN(iou) {
			continue
		}
		role := segdata.ClassNames[k]
		switch k {
		case 1:
			role = "sky (as " + role + ")"
		case 19:
			role = "building (as " + role + ")"
		case 0:
			role = "road (as " + role + ")"
		}
		fmt.Printf("  %-24s %6.1f%%\n", role, 100*iou)
	}

	// Render a few eval scenes with a freshly trained single-rank
	// model restored from the same configuration seed.
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	eval := segdata.New(3, cfg.Model.InputSize, cfg.Model.InputSize, cfg.Seed+1_000_000)
	eval.Style = segdata.StyleUrban
	for i := 0; i < eval.Len(); i++ {
		img, gt := eval.Sample(i)
		// Ground truth only (prediction rendering requires the rank-0
		// weights, which live inside the training run; seg-viz does
		// the full triptych for the VOC style).
		path := filepath.Join(*out, fmt.Sprintf("urban%02d.png", i))
		if err := segviz.WritePNG(path, segviz.SideBySide(segviz.RenderImage(img),
			segviz.RenderLabels(gt, cfg.Model.InputSize, cfg.Model.InputSize))); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", path)
	}
}
