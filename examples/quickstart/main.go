// Quickstart: simulate DeepLab-v3+ distributed training at a few
// scales with default and tuned configurations, then train the real
// scaled-down model for a handful of epochs — the two halves of the
// library in ~60 lines.
package main

import (
	"fmt"
	"log"

	"segscale/pkg/summitseg"
)

func main() {
	log.SetFlags(0)

	// --- Performance half: how fast would training run on Summit? ---
	prof, err := summitseg.ModelByName("dlv3plus")
	if err != nil {
		log.Fatal(err)
	}
	mv2, err := summitseg.MPIByName("mv2gdr")
	if err != nil {
		log.Fatal(err)
	}
	spectrum, err := summitseg.MPIByName("spectrum")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Simulated DLv3+ throughput (img/s):")
	fmt.Printf("%-6s %16s %16s\n", "GPUs", "default+Spectrum", "tuned+MV2-GDR")
	for _, gpus := range []int{1, 24, 132} {
		def, err := summitseg.Simulate(summitseg.SimOptions{
			GPUs: gpus, Model: prof, MPI: spectrum, Horovod: summitseg.DefaultHorovod(), Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		tuned, err := summitseg.Simulate(summitseg.SimOptions{
			GPUs: gpus, Model: prof, MPI: mv2, Horovod: summitseg.TunedHorovod(), Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %16.1f %16.1f\n", gpus, def.ImgPerSec, tuned.ImgPerSec)
	}

	// --- Accuracy half: really train the mini DeepLab-v3+. ---
	cfg := summitseg.DefaultTraining()
	cfg.World = 2
	cfg.Epochs = 6
	fmt.Printf("\nReal 2-rank training (%d epochs, %d synthetic VOC images):\n", cfg.Epochs, cfg.TrainSize)
	res, err := summitseg.Train(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range res.History {
		fmt.Printf("  epoch %d: loss %.3f, mIOU %.1f%%\n", e.Epoch, e.Loss, 100*e.MIOU)
	}
}
