// Scaling-study reproduces the paper's headline experiment: DLv3+
// throughput and scaling efficiency from 1 to 132 GPUs for default
// Horovod + Spectrum MPI versus tuned Horovod + MVAPICH2-GDR, ending
// with the efficiency-improvement and speedup numbers the abstract
// reports (92 % tuned efficiency, +23.9 %, 1.3×).
package main

import (
	"fmt"
	"log"

	"segscale/pkg/summitseg"
)

func main() {
	log.SetFlags(0)

	prof, err := summitseg.ModelByName("dlv3plus")
	if err != nil {
		log.Fatal(err)
	}
	points, err := summitseg.Scaling(nil, prof, 1)
	if err != nil {
		log.Fatal(err)
	}

	type row struct{ def, tuned *summitseg.ScalingPoint }
	byGPU := map[int]*row{}
	order := []int{}
	for i := range points {
		p := &points[i]
		r := byGPU[p.GPUs]
		if r == nil {
			r = &row{}
			byGPU[p.GPUs] = r
			order = append(order, p.GPUs)
		}
		if p.Config == "default-spectrum" {
			r.def = p
		} else {
			r.tuned = p
		}
	}

	fmt.Println("DLv3+ scaling on simulated Summit (img/s and efficiency):")
	fmt.Printf("%-6s | %12s %8s | %12s %8s\n", "GPUs", "default", "eff", "tuned", "eff")
	seen := map[int]bool{}
	var defEff, tunEff, defThr, tunThr float64
	for _, g := range order {
		if seen[g] {
			continue
		}
		seen[g] = true
		r := byGPU[g]
		fmt.Printf("%-6d | %12.1f %7.1f%% | %12.1f %7.1f%%\n",
			g, r.def.ImgPerSec, 100*r.def.Efficiency, r.tuned.ImgPerSec, 100*r.tuned.Efficiency)
		if g == 132 {
			defEff, tunEff = r.def.Efficiency, r.tuned.Efficiency
			defThr, tunThr = r.def.ImgPerSec, r.tuned.ImgPerSec
		}
	}
	fmt.Printf("\nAt 132 GPUs: tuned efficiency %.1f%% (paper: ~92%%)\n", 100*tunEff)
	fmt.Printf("Efficiency improvement over default: %+.1f%% (paper: +23.9%%)\n", 100*(tunEff/defEff-1))
	fmt.Printf("Training speedup: %.2f× (paper: ~1.3×)\n", tunThr/defThr)
}
