// Extensions demonstrates the features beyond the paper's core study:
// fp16 gradient compression (hvd.Compression.fp16), LARS for stable
// large-batch weak scaling, rank-placement effects, and checkpointing
// a trained model.
package main

import (
	"bytes"
	"fmt"
	"log"

	"segscale/internal/checkpoint"
	"segscale/internal/core"
	"segscale/internal/deeplab"
	"segscale/internal/model"
	"segscale/internal/netmodel"
	"segscale/internal/perfsim"
	"segscale/pkg/summitseg"
)

func main() {
	log.SetFlags(0)

	// 1. fp16 gradient compression on the bandwidth-bound path.
	fmt.Println("1) fp16 gradient compression (132 GPUs, default Horovod + Spectrum):")
	cfg := perfsim.Config{GPUs: 132, Model: model.DLv3Plus(),
		MPI: core.DefaultCandidate().Candidate.MPI, Horovod: core.DefaultCandidate().Candidate.Horovod, Seed: 1}
	plain, err := perfsim.Run(cfg)
	must(err)
	cfg.Horovod.FP16Compression = true
	compressed, err := perfsim.Run(cfg)
	must(err)
	fmt.Printf("   fp32 %.1f img/s → fp16 %.1f img/s (allreduce %.0f → %.0f ms)\n\n",
		plain.ImgPerSec, compressed.ImgPerSec, plain.AllreduceSec*1e3, compressed.AllreduceSec*1e3)

	// 2. Rank placement: packed vs cyclic (jsrun task ordering).
	fmt.Println("2) MPI rank placement with a flat ring (132 GPUs):")
	pc := perfsim.Config{GPUs: 132, Model: model.DLv3Plus(),
		MPI: core.TunedCandidate().Candidate.MPI, Horovod: core.TunedCandidate().Candidate.Horovod, Seed: 1}
	pc.Horovod.Algorithm = netmodel.AlgRing
	packed, err := perfsim.Run(pc)
	must(err)
	pc.Placement = perfsim.PlacementCyclic
	cyclic, err := perfsim.Run(pc)
	must(err)
	fmt.Printf("   packed allreduce %.0f ms/step, cyclic %.0f ms/step — keep ranks blocked per node\n\n",
		packed.AllreduceSec*1e3, cyclic.AllreduceSec*1e3)

	// 3. LARS vs SGD under the large-batch weak-scaling recipe.
	fmt.Println("3) LARS vs SGD, 4-rank weak scaling, 12 epochs (real training):")
	for _, opt := range []string{"sgd", "lars"} {
		tc := summitseg.DefaultTraining()
		tc.World = 4
		tc.Epochs = 12
		tc.TrainSize = 64
		tc.WarmupFrac = 0.25
		tc.Optimizer = opt
		if opt == "lars" {
			tc.BaseLR = 2.0
		}
		res, err := summitseg.Train(tc)
		must(err)
		fmt.Printf("   %-5s final mIOU %.1f%%\n", opt, 100*res.FinalMIOU)
	}
	fmt.Println()

	// 4. Checkpoint round trip.
	fmt.Println("4) checkpoint: save → restore → identical predictions:")
	m := deeplab.New(deeplab.DefaultConfig())
	var buf bytes.Buffer
	must(checkpoint.Save(&buf, m.Params(), m.BatchNorms()))
	size := buf.Len()
	restored := deeplab.New(func() deeplab.Config { c := deeplab.DefaultConfig(); c.Seed = 999; return c }())
	must(checkpoint.Load(&buf, restored.Params(), restored.BatchNorms()))
	fmt.Printf("   %d parameters restored from a %d-byte checkpoint\n", m.ParamCount(), size)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
