// Accuracy-voc is the real-training experiment: the scaled-down
// DeepLab-v3+ versus the FCN baseline on the synthetic VOC-21
// dataset, single-rank versus 4-rank distributed (with synchronized
// batch norm and the linear-scaling learning-rate rule), reporting
// mIOU the way the paper reports its 80.8 % on PASCAL VOC.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"segscale/pkg/summitseg"
)

func main() {
	log.SetFlags(0)
	epochs := flag.Int("epochs", 30, "training epochs")
	flag.Parse()

	base := summitseg.DefaultTraining()
	base.Epochs = *epochs
	base.TrainSize = 64
	base.WarmupFrac = 0.25

	runs := []struct {
		name string
		mut  func(*summitseg.TrainConfig)
	}{
		{"DLv3+ mini, single rank", func(c *summitseg.TrainConfig) { c.World = 1 }},
		{"DLv3+ mini, 4 ranks (weak scaling)", func(c *summitseg.TrainConfig) { c.World = 4 }},
		{"FCN baseline, single rank", func(c *summitseg.TrainConfig) { c.World = 1; c.Arch = "fcn" }},
	}

	fmt.Printf("Synthetic VOC-21 segmentation, %d epochs (paper's VOC mIOU: 80.8%%)\n\n", *epochs)
	for _, r := range runs {
		cfg := base
		r.mut(&cfg)
		start := time.Now()
		res, err := summitseg.Train(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-36s mIOU %5.1f%%  pixel-acc %5.1f%%  (%s)\n",
			r.name, 100*res.FinalMIOU, 100*res.FinalAcc, time.Since(start).Round(time.Millisecond))
	}
	fmt.Println("\nDistributed training reaches accuracy on par with single-rank —")
	fmt.Println("the paper's claim, reproduced with real gradients and real allreduce.")
}
