// Tuning-sweep runs the paper's staged tuning methodology at 96 GPUs
// and shows how each stage (MPI library → fusion threshold → cycle
// time → allreduce shape → chunk size) moves throughput, printing the
// final job-script environment.
package main

import (
	"fmt"
	"log"

	"segscale/pkg/summitseg"
)

func main() {
	log.SetFlags(0)

	prof, err := summitseg.ModelByName("dlv3plus")
	if err != nil {
		log.Fatal(err)
	}
	rep, err := summitseg.Tune(96, prof, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Staged Horovod/MPI tuning at 96 GPUs on DLv3+:")
	fmt.Printf("%-18s %10s %8s\n", "stage", "img/s", "eff")
	bestSoFar := 0.0
	for _, ev := range rep.Trace {
		marker := " "
		if ev.Efficiency > bestSoFar {
			bestSoFar = ev.Efficiency
			marker = "*"
		}
		fmt.Printf("%-18s %10.1f %7.1f%% %s %s\n",
			ev.Stage, ev.Result.ImgPerSec, 100*ev.Efficiency, marker, ev.Candidate.Label())
	}

	fmt.Printf("\n%d simulator runs; best configuration:\n  %s\n", rep.Evals, rep.Best.Candidate.Label())
	fmt.Printf("baseline → best: %.1f → %.1f img/s (%.2f×)\n",
		rep.Baseline.Result.ImgPerSec, rep.Best.Result.ImgPerSec, rep.Speedup())
	fmt.Println("\njob-script environment:")
	for _, e := range rep.Best.Candidate.Horovod.Env() {
		fmt.Println("  export " + e)
	}
	for _, e := range rep.Best.Candidate.MPI.Env() {
		fmt.Println("  export " + e)
	}
}
