package faultinject

import (
	"errors"
	"math"
	"strings"
	"testing"

	"segscale/internal/transport"
)

// TestMessageDeterministic: identical plans make identical decisions
// for every event identity.
func TestMessageDeterministic(t *testing.T) {
	a := &Plan{Seed: 42, DropRate: 0.2, DupRate: 0.1, DelayRate: 0.1}
	b := &Plan{Seed: 42, DropRate: 0.2, DupRate: 0.1, DelayRate: 0.1}
	for src := 0; src < 4; src++ {
		for dst := 0; dst < 4; dst++ {
			for seq := uint64(0); seq < 50; seq++ {
				fa := a.Message(src, dst, 3, 0, seq)
				fb := b.Message(src, dst, 3, 0, seq)
				if fa != fb {
					t.Fatalf("(%d,%d,seq %d): %v vs %v", src, dst, seq, fa, fb)
				}
			}
		}
	}
}

// TestMessageSeedSensitivity: different seeds must produce different
// fault sequences (else the "seed" is decorative).
func TestMessageSeedSensitivity(t *testing.T) {
	a := &Plan{Seed: 1, DropRate: 0.5}
	b := &Plan{Seed: 2, DropRate: 0.5}
	diff := 0
	for seq := uint64(0); seq < 200; seq++ {
		if a.Message(0, 1, 0, 0, seq) != b.Message(0, 1, 0, 0, seq) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seeds 1 and 2 produced identical fault sequences")
	}
}

// TestMessageRates: empirical fault frequencies track the configured
// probabilities over a large sample.
func TestMessageRates(t *testing.T) {
	p := &Plan{Seed: 7, DropRate: 0.10, DupRate: 0.05, DelayRate: 0.20}
	const n = 50000
	counts := map[transport.Fault]int{}
	for seq := uint64(0); seq < n; seq++ {
		counts[p.Message(0, 1, 0, 0, seq)]++
	}
	check := func(f transport.Fault, want float64) {
		got := float64(counts[f]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("%v rate = %.4f, want %.2f ± 0.01", f, got, want)
		}
	}
	check(transport.FaultDrop, 0.10)
	check(transport.FaultDuplicate, 0.05)
	check(transport.FaultDelay, 0.20)
	check(transport.FaultNone, 0.65)
}

// TestMessageAttemptRerolls: a dropped attempt re-rolls on retry, so
// with DropRate < 1 some retry eventually delivers.
func TestMessageAttemptRerolls(t *testing.T) {
	p := &Plan{Seed: 3, DropRate: 0.5}
	for seq := uint64(0); seq < 100; seq++ {
		delivered := false
		for attempt := 0; attempt < 64; attempt++ {
			if p.Message(0, 1, 0, attempt, seq) != transport.FaultDrop {
				delivered = true
				break
			}
		}
		if !delivered {
			t.Fatalf("seq %d dropped on 64 consecutive attempts at rate 0.5", seq)
		}
	}
}

func TestNilAndZeroPlanInjectNothing(t *testing.T) {
	var nilPlan *Plan
	if f := nilPlan.Message(0, 1, 0, 0, 0); f != transport.FaultNone {
		t.Errorf("nil plan injected %v", f)
	}
	if nilPlan.CrashAt(0, 0, 0) {
		t.Error("nil plan crashed a rank")
	}
	if f := nilPlan.StragglerFactor(0, 0); f != 1 {
		t.Errorf("nil plan straggler factor %g", f)
	}
	zero := &Plan{Seed: 9}
	for seq := uint64(0); seq < 100; seq++ {
		if f := zero.Message(0, 1, 0, 0, seq); f != transport.FaultNone {
			t.Fatalf("zero-rate plan injected %v", f)
		}
	}
}

func TestCrashAt(t *testing.T) {
	p := &Plan{Crashes: []Crash{{Rank: 1, Step: 12}, {Rank: 2, Step: 5, Incarnation: 1}}}
	cases := []struct {
		rank, step, inc int
		want            bool
	}{
		{1, 12, 0, true},
		{1, 12, 1, false}, // after restart the incarnation moved on
		{1, 11, 0, false},
		{0, 12, 0, false},
		{2, 5, 1, true},
		{2, 5, 0, false},
	}
	for _, c := range cases {
		if got := p.CrashAt(c.rank, c.step, c.inc); got != c.want {
			t.Errorf("CrashAt(%d,%d,%d) = %v, want %v", c.rank, c.step, c.inc, got, c.want)
		}
	}
}

func TestStragglerFactor(t *testing.T) {
	p := &Plan{Stragglers: []Straggler{
		{Rank: 1, Factor: 2, FromStep: 10, ToStep: 20},
		{Rank: 1, Factor: 3, FromStep: 15, ToStep: -1},
		{Rank: 2, Factor: 1.5, FromStep: 0, ToStep: -1},
	}}
	cases := []struct {
		rank, step int
		want       float64
	}{
		{1, 9, 1},
		{1, 10, 2},
		{1, 15, 6}, // both windows overlap: factors compose
		{1, 21, 3}, // first window closed, open-ended one persists
		{2, 999, 1.5},
		{0, 10, 1},
	}
	for _, c := range cases {
		if got := p.StragglerFactor(c.rank, c.step); got != c.want {
			t.Errorf("StragglerFactor(%d,%d) = %g, want %g", c.rank, c.step, got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []*Plan{
		{DropRate: -0.1},
		{DupRate: 1.5},
		{DropRate: 0.6, DelayRate: 0.6}, // sum > 1
		{MaxAttempts: -1},
		{Crashes: []Crash{{Rank: -1}}},
		{Stragglers: []Straggler{{Rank: 0, Factor: 0.5}}},
		{Stragglers: []Straggler{{Rank: 0, Factor: 2, FromStep: 10, ToStep: 5}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d (%+v) validated", i, p)
		}
	}
	good := []*Plan{
		nil,
		{},
		{Seed: 1, DropRate: 0.3, DupRate: 0.3, DelayRate: 0.4},
		{Crashes: []Crash{{Rank: 0, Step: 0}}, Stragglers: []Straggler{{Factor: 1, ToStep: -1}}},
	}
	for i, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("plan %d: unexpected error %v", i, err)
		}
	}
}

func TestRandomPlanDeterministicAndValid(t *testing.T) {
	a := RandomPlan(11, 6)
	b := RandomPlan(11, 6)
	if a.String() != b.String() {
		t.Fatalf("RandomPlan not deterministic:\n%s\n%s", a, b)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("RandomPlan invalid: %v", err)
	}
	if len(a.Crashes) != 0 {
		t.Errorf("RandomPlan scheduled crashes: %+v", a.Crashes)
	}
	if len(a.Stragglers) != 1 || a.Stragglers[0].Rank >= 6 {
		t.Errorf("RandomPlan stragglers = %+v", a.Stragglers)
	}
	if c := RandomPlan(12, 6); c.String() == a.String() {
		t.Error("different seeds produced identical random plans")
	}
	if w1 := RandomPlan(11, 1); len(w1.Stragglers) != 0 {
		t.Errorf("single-rank world got a straggler: %+v", w1.Stragglers)
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	spec := "seed=7;drop=0.01;dup=0.002;delay=0.05;retries=8;crash=1@12;crash=2@30#1;slow=3*2.5@0-40;slow=0*1.5"
	p, err := ParseSpec(spec)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if p.Seed != 7 || p.DropRate != 0.01 || p.DupRate != 0.002 || p.DelayRate != 0.05 || p.MaxAttempts != 8 {
		t.Fatalf("parsed plan %+v", p)
	}
	if len(p.Crashes) != 2 || p.Crashes[1] != (Crash{Rank: 2, Step: 30, Incarnation: 1}) {
		t.Fatalf("crashes %+v", p.Crashes)
	}
	if len(p.Stragglers) != 2 || p.Stragglers[0] != (Straggler{Rank: 3, Factor: 2.5, FromStep: 0, ToStep: 40}) {
		t.Fatalf("stragglers %+v", p.Stragglers)
	}
	if p.Stragglers[1].ToStep != -1 {
		t.Fatalf("windowless straggler not open-ended: %+v", p.Stragglers[1])
	}
	// Round trip: the rendered spec parses back to the same plan.
	p2, err := ParseSpec(p.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", p.String(), err)
	}
	if p2.String() != p.String() {
		t.Fatalf("round trip changed plan:\n%s\n%s", p, p2)
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"bogus",
		"frob=1",
		"drop=many",
		"drop=1.5",
		"crash=1",
		"crash=x@2",
		"crash=1@y",
		"crash=1@2#z",
		"slow=1",
		"slow=a*2",
		"slow=1*b",
		"slow=1*2@5",
		"slow=1*2@a-b",
		"slow=1*0.5",
		"seed=NaN",
		"retries=x",
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted", spec)
		}
	}
	// Empty clauses and whitespace are tolerated.
	p, err := ParseSpec(" drop=0.1 ; ; ")
	if err != nil || p.DropRate != 0.1 {
		t.Fatalf("lenient parse: %+v, %v", p, err)
	}
}

func TestStringEmptyAndNil(t *testing.T) {
	var nilPlan *Plan
	if s := nilPlan.String(); s != "" {
		t.Errorf("nil plan String() = %q", s)
	}
	if s := (&Plan{}).String(); s != "" {
		t.Errorf("zero plan String() = %q", s)
	}
}

// TestArmOnTransport runs real ring traffic through a fault-armed
// world: everything must still deliver (recoverable faults only), and
// a plan heavy enough to exhaust retries must surface
// ErrDeliveryFailed.
func TestArmOnTransport(t *testing.T) {
	w, err := transport.NewWorld(3)
	if err != nil {
		t.Fatal(err)
	}
	plan := &Plan{Seed: 5, DropRate: 0.2, DupRate: 0.1, DelayRate: 0.2, MaxAttempts: 64}
	plan.Arm(w)
	err = w.Run(func(c *transport.Comm) error {
		n := c.Size()
		next, prev := (c.Rank()+1)%n, (c.Rank()-1+n)%n
		for it := 0; it < 30; it++ {
			if err := c.Send(next, it, []float32{float32(c.Rank()*100 + it)}); err != nil {
				return err
			}
			got, err := c.Recv(prev, it)
			if err != nil {
				return err
			}
			if want := float32(prev*100 + it); got[0] != want {
				t.Errorf("rank %d iter %d got %g, want %g", c.Rank(), it, got[0], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("recoverable chaos run failed: %v", err)
	}

	// Certain drop with a tiny budget: delivery must fail, not hang.
	w2, err := transport.NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	(&Plan{Seed: 5, DropRate: 1, MaxAttempts: 3}).Arm(w2)
	sendErr := w2.Comm(0).Send(1, 0, []float32{1})
	if !errors.Is(sendErr, transport.ErrDeliveryFailed) {
		t.Fatalf("send under certain drop = %v, want ErrDeliveryFailed", sendErr)
	}
}

func TestErrCrashedMessage(t *testing.T) {
	if !strings.Contains(ErrCrashed.Error(), "crash") {
		t.Errorf("ErrCrashed = %q", ErrCrashed)
	}
}
