package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ParseSpec builds a plan from a compact textual schedule, the format
// behind the -chaos-plan flag. Clauses are separated by semicolons:
//
//	seed=N          hash seed for message-fault decisions
//	drop=P          per-attempt drop probability, P in [0,1]
//	dup=P           per-attempt duplication probability
//	delay=P         per-attempt delay (reorder) probability
//	retries=N       delivery attempts per message before giving up
//	crash=R@S       rank R crashes at global step S (first life);
//	                crash=R@S#I crashes in incarnation I instead
//	slow=R*F        rank R computes F times slower for the whole run;
//	                slow=R*F@A-B limits it to steps A..B inclusive
//
// Example: "seed=7;drop=0.01;delay=0.05;crash=1@12;slow=3*2.5@0-40".
func ParseSpec(spec string) (*Plan, error) {
	p := &Plan{}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: clause %q: want key=value", clause)
		}
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseInt(val, 10, 64)
		case "drop":
			p.DropRate, err = parseRate(val)
		case "dup":
			p.DupRate, err = parseRate(val)
		case "delay":
			p.DelayRate, err = parseRate(val)
		case "retries":
			p.MaxAttempts, err = strconv.Atoi(val)
		case "crash":
			var c Crash
			if c, err = parseCrash(val); err == nil {
				p.Crashes = append(p.Crashes, c)
			}
		case "slow":
			var s Straggler
			if s, err = parseStraggler(val); err == nil {
				p.Stragglers = append(p.Stragglers, s)
			}
		default:
			return nil, fmt.Errorf("faultinject: unknown clause key %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("faultinject: clause %q: %w", clause, err)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func parseRate(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	return v, nil
}

// parseCrash parses "R@S" or "R@S#I".
func parseCrash(s string) (Crash, error) {
	rankStr, rest, ok := strings.Cut(s, "@")
	if !ok {
		return Crash{}, fmt.Errorf("want R@S or R@S#I, got %q", s)
	}
	stepStr, incStr, hasInc := strings.Cut(rest, "#")
	var c Crash
	var err error
	if c.Rank, err = strconv.Atoi(rankStr); err != nil {
		return Crash{}, fmt.Errorf("rank: %w", err)
	}
	if c.Step, err = strconv.Atoi(stepStr); err != nil {
		return Crash{}, fmt.Errorf("step: %w", err)
	}
	if hasInc {
		if c.Incarnation, err = strconv.Atoi(incStr); err != nil {
			return Crash{}, fmt.Errorf("incarnation: %w", err)
		}
	}
	return c, nil
}

// parseStraggler parses "R*F" or "R*F@A-B".
func parseStraggler(s string) (Straggler, error) {
	rankStr, rest, ok := strings.Cut(s, "*")
	if !ok {
		return Straggler{}, fmt.Errorf("want R*F or R*F@A-B, got %q", s)
	}
	st := Straggler{ToStep: -1}
	var err error
	if st.Rank, err = strconv.Atoi(rankStr); err != nil {
		return Straggler{}, fmt.Errorf("rank: %w", err)
	}
	factorStr, window, hasWindow := strings.Cut(rest, "@")
	if st.Factor, err = strconv.ParseFloat(factorStr, 64); err != nil {
		return Straggler{}, fmt.Errorf("factor: %w", err)
	}
	if hasWindow {
		fromStr, toStr, ok := strings.Cut(window, "-")
		if !ok {
			return Straggler{}, fmt.Errorf("window: want A-B, got %q", window)
		}
		if st.FromStep, err = strconv.Atoi(fromStr); err != nil {
			return Straggler{}, fmt.Errorf("window start: %w", err)
		}
		if st.ToStep, err = strconv.Atoi(toStr); err != nil {
			return Straggler{}, fmt.Errorf("window end: %w", err)
		}
	}
	return st, nil
}

// String renders the plan back in ParseSpec's clause format, with
// clauses in a fixed order so equal plans print identically — handy
// for logging the effective plan of a -chaos-seed run.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var clauses []string
	if p.Seed != 0 {
		clauses = append(clauses, fmt.Sprintf("seed=%d", p.Seed))
	}
	if p.DropRate > 0 {
		clauses = append(clauses, fmt.Sprintf("drop=%g", p.DropRate))
	}
	if p.DupRate > 0 {
		clauses = append(clauses, fmt.Sprintf("dup=%g", p.DupRate))
	}
	if p.DelayRate > 0 {
		clauses = append(clauses, fmt.Sprintf("delay=%g", p.DelayRate))
	}
	if p.MaxAttempts > 0 {
		clauses = append(clauses, fmt.Sprintf("retries=%d", p.MaxAttempts))
	}
	crashes := append([]Crash(nil), p.Crashes...)
	sort.Slice(crashes, func(i, j int) bool {
		a, b := crashes[i], crashes[j]
		if a.Step != b.Step {
			return a.Step < b.Step
		}
		return a.Rank < b.Rank
	})
	for _, c := range crashes {
		if c.Incarnation > 0 {
			clauses = append(clauses, fmt.Sprintf("crash=%d@%d#%d", c.Rank, c.Step, c.Incarnation))
		} else {
			clauses = append(clauses, fmt.Sprintf("crash=%d@%d", c.Rank, c.Step))
		}
	}
	stragglers := append([]Straggler(nil), p.Stragglers...)
	sort.Slice(stragglers, func(i, j int) bool { return stragglers[i].Rank < stragglers[j].Rank })
	for _, s := range stragglers {
		if s.FromStep == 0 && s.ToStep < 0 {
			clauses = append(clauses, fmt.Sprintf("slow=%d*%g", s.Rank, s.Factor))
		} else {
			clauses = append(clauses, fmt.Sprintf("slow=%d*%g@%d-%d", s.Rank, s.Factor, s.FromStep, s.ToStep))
		}
	}
	return strings.Join(clauses, ";")
}
