package faultinject

import (
	"sync"
	"testing"

	"segscale/internal/transport"
)

// TestPlanConcurrentUse hammers one shared Plan from many goroutines
// — the way every sending rank consults it — so -race verifies the
// pure-function contract (no mutable state behind Message/CrashAt/
// StragglerFactor).
func TestPlanConcurrentUse(t *testing.T) {
	p := &Plan{
		Seed: 99, DropRate: 0.1, DupRate: 0.1, DelayRate: 0.1,
		Crashes:    []Crash{{Rank: 1, Step: 10}},
		Stragglers: []Straggler{{Rank: 2, Factor: 2, ToStep: -1}},
	}
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for seq := uint64(0); seq < 2000; seq++ {
				p.Message(g, (g+1)%goroutines, int(seq)%7, 0, seq)
				p.CrashAt(g, int(seq), 0)
				p.StragglerFactor(g, int(seq))
			}
		}(g)
	}
	wg.Wait()
}

// TestArmedWorldChaosUnderRace runs all-pairs traffic through a
// fault-armed world under -race: mailbox dedup/reorder paths and the
// retry loop must be data-race free while the injector fires.
func TestArmedWorldChaosUnderRace(t *testing.T) {
	const n = 4
	w, err := transport.NewWorld(n)
	if err != nil {
		t.Fatal(err)
	}
	plan := &Plan{Seed: 123, DropRate: 0.15, DupRate: 0.1, DelayRate: 0.15, MaxAttempts: 128}
	plan.Arm(w)
	err = w.Run(func(c *transport.Comm) error {
		for it := 0; it < 25; it++ {
			for peer := 0; peer < n; peer++ {
				if peer == c.Rank() {
					continue
				}
				if err := c.Send(peer, it, []float32{float32(c.Rank())}); err != nil {
					return err
				}
			}
			for peer := 0; peer < n; peer++ {
				if peer == c.Rank() {
					continue
				}
				got, err := c.Recv(peer, it)
				if err != nil {
					return err
				}
				if got[0] != float32(peer) {
					t.Errorf("rank %d iter %d from %d: got %g", c.Rank(), it, peer, got[0])
				}
			}
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
}
