// Package faultinject provides deterministic, seed-driven fault plans
// for chaos-testing the distributed training stack. A Plan decides —
// as a pure function of its seed and the identity of each event —
// which messages are dropped, duplicated, or delayed on the transport,
// which rank crashes at which training step, and which ranks straggle
// (and by how much) in the performance simulator.
//
// Determinism is the point: two runs with the same plan see the exact
// same fault sequence, so a chaos run is reproducible byte-for-byte
// and a failure found under `-chaos-seed 12345` can be replayed
// forever. All decisions hash (seed, event identity) with splitmix64;
// there is no mutable state, so a Plan is safe to share across ranks
// and goroutines.
package faultinject

import (
	"errors"
	"fmt"

	"segscale/internal/transport"
)

// ErrCrashed marks the error a rank returns when its scheduled crash
// fires. The training loop matches it with errors.Is to tell an
// injected crash from a genuine transport failure.
var ErrCrashed = errors.New("faultinject: rank crashed")

// Crash schedules one rank failure.
type Crash struct {
	// Rank is the rank that dies.
	Rank int
	// Step is the global training step at which it dies (before the
	// step's gradient exchange).
	Step int
	// Incarnation selects which life of the job the crash fires in: 0
	// is the initial run, 1 the first restart, and so on. A crash
	// fires at most once — after the restart replays the same step,
	// the incarnation no longer matches and training proceeds.
	Incarnation int
}

// Straggler slows one rank's compute by a multiplicative factor over
// a window of steps — the DES-level analogue of a slow node, consumed
// by internal/perfsim.
type Straggler struct {
	// Rank is the slow rank.
	Rank int
	// Factor multiplies the rank's per-step compute time (must be
	// >= 1; 2.0 means twice as slow).
	Factor float64
	// FromStep..ToStep is the inclusive window of affected steps.
	// ToStep < 0 means "until the end of the run".
	FromStep int
	ToStep   int
}

// Plan is a deterministic fault schedule. The zero value injects
// nothing; a nil *Plan is likewise a valid no-op, so callers can
// thread an optional plan without nil checks.
type Plan struct {
	// Seed keys every hash-based decision.
	Seed int64
	// DropRate, DupRate and DelayRate are per-delivery-attempt
	// probabilities of the corresponding transport fault. Their sum
	// must not exceed 1.
	DropRate  float64
	DupRate   float64
	DelayRate float64
	// MaxAttempts overrides the transport retry budget for dropped
	// messages (0 keeps transport.DefaultRetry).
	MaxAttempts int
	// Crashes are the scheduled rank failures.
	Crashes []Crash
	// Stragglers are the scheduled slowdowns.
	Stragglers []Straggler
}

// splitmix64 is the avalanche mixer from Steele et al.'s SplitMix —
// tiny, fast, and statistically strong enough for fault sampling.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash folds the plan seed and the event identity into one value.
func (p *Plan) hash(vals ...uint64) uint64 {
	h := splitmix64(uint64(p.Seed))
	for _, v := range vals {
		h = splitmix64(h ^ v)
	}
	return h
}

// unit maps the event identity to a uniform float64 in [0, 1).
func (p *Plan) unit(vals ...uint64) float64 {
	return float64(p.hash(vals...)>>11) / float64(1<<53)
}

// Domain separators so message faults, random-plan parameters, and
// straggler choices draw from independent hash streams.
const (
	domMessage = 1
	domRandom  = 2
)

// Message implements transport.Injector: the fate of one delivery
// attempt, decided purely from (seed, src, dst, tag, attempt, seq).
// Retries of a dropped message re-roll (attempt differs), so any
// DropRate < 1 eventually delivers.
func (p *Plan) Message(src, dst, tag, attempt int, seq uint64) transport.Fault {
	if p == nil {
		return transport.FaultNone
	}
	total := p.DropRate + p.DupRate + p.DelayRate
	if total <= 0 {
		return transport.FaultNone
	}
	u := p.unit(domMessage, uint64(src), uint64(dst), uint64(tag), uint64(attempt), seq)
	switch {
	case u < p.DropRate:
		return transport.FaultDrop
	case u < p.DropRate+p.DupRate:
		return transport.FaultDuplicate
	case u < total:
		return transport.FaultDelay
	}
	return transport.FaultNone
}

// CrashAt reports whether rank crashes at the given global step in
// the given incarnation of the job.
func (p *Plan) CrashAt(rank, step, incarnation int) bool {
	if p == nil {
		return false
	}
	for _, c := range p.Crashes {
		if c.Rank == rank && c.Step == step && c.Incarnation == incarnation {
			return true
		}
	}
	return false
}

// StragglerFactor returns the compute-time multiplier for rank at
// step: 1.0 when unaffected, the product of all matching windows
// otherwise.
func (p *Plan) StragglerFactor(rank, step int) float64 {
	f := 1.0
	if p == nil {
		return f
	}
	for _, s := range p.Stragglers {
		if s.Rank == rank && s.Factor > 0 && step >= s.FromStep && (s.ToStep < 0 || step <= s.ToStep) {
			f *= s.Factor
		}
	}
	return f
}

// MessageFaults reports whether the plan injects any transport-level
// message faults.
func (p *Plan) MessageFaults() bool {
	return p != nil && p.DropRate+p.DupRate+p.DelayRate > 0
}

// Arm installs the plan's message faults and retry budget on a
// transport world. Nil plans and worlds are no-ops.
func (p *Plan) Arm(w *transport.World) {
	if p == nil || w == nil {
		return
	}
	if p.MessageFaults() {
		w.SetInjector(p)
	}
	if p.MaxAttempts > 0 {
		w.SetRetryPolicy(transport.RetryPolicy{MaxAttempts: p.MaxAttempts})
	}
}

// Validate checks the plan's parameters, wrapping each violation into
// one error.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	var errs []error
	// Fixed-order slice, not a map: with several bad rates the error
	// text must not depend on map iteration order.
	rates := []struct {
		name string
		r    float64
	}{{"drop", p.DropRate}, {"dup", p.DupRate}, {"delay", p.DelayRate}}
	for _, x := range rates {
		if x.r < 0 || x.r > 1 {
			errs = append(errs, fmt.Errorf("faultinject: %s rate %g outside [0,1]", x.name, x.r))
		}
	}
	if total := p.DropRate + p.DupRate + p.DelayRate; total > 1 {
		errs = append(errs, fmt.Errorf("faultinject: fault rates sum to %g > 1", total))
	}
	if p.MaxAttempts < 0 {
		errs = append(errs, fmt.Errorf("faultinject: max attempts %d < 0", p.MaxAttempts))
	}
	for _, c := range p.Crashes {
		if c.Rank < 0 || c.Step < 0 || c.Incarnation < 0 {
			errs = append(errs, fmt.Errorf("faultinject: crash %+v: rank, step and incarnation must be >= 0", c))
		}
	}
	for _, s := range p.Stragglers {
		if s.Rank < 0 {
			errs = append(errs, fmt.Errorf("faultinject: straggler %+v: rank must be >= 0", s))
		}
		if s.Factor < 1 {
			errs = append(errs, fmt.Errorf("faultinject: straggler %+v: factor must be >= 1", s))
		}
		if s.FromStep < 0 || (s.ToStep >= 0 && s.ToStep < s.FromStep) {
			errs = append(errs, fmt.Errorf("faultinject: straggler %+v: bad step window", s))
		}
	}
	return errors.Join(errs...)
}

// RandomPlan derives a mild, recoverable chaos plan from a seed: low
// message-fault rates and one straggler, no crashes (crashes need a
// checkpoint path to recover through, so they are only scheduled
// explicitly — see ParseSpec). world is the number of ranks the plan
// will torment. The same (seed, world) always yields the same plan.
func RandomPlan(seed int64, world int) *Plan {
	p := &Plan{Seed: seed}
	if world <= 0 {
		return p
	}
	p.DropRate = 0.03 * p.unit(domRandom, 1)
	p.DupRate = 0.02 * p.unit(domRandom, 2)
	p.DelayRate = 0.05 * p.unit(domRandom, 3)
	if world > 1 {
		p.Stragglers = []Straggler{{
			Rank:     int(p.hash(domRandom, 4) % uint64(world)),
			Factor:   1.5 + 1.5*p.unit(domRandom, 5),
			FromStep: 0,
			ToStep:   -1,
		}}
	}
	return p
}
