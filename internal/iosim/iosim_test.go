package iosim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bads := []func(*Config){
		func(c *Config) { c.ImageBytes = 0 },
		func(c *Config) { c.FSBandwidth = 0 },
		func(c *Config) { c.DecodeTime = -1 },
		func(c *Config) { c.ReadLatency = -1 },
		func(c *Config) { c.Workers = 0 },
		func(c *Config) { c.PrefetchDepth = -1 },
	}
	for i, mutate := range bads {
		c := Default()
		mutate(&c)
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestBatchProductionDecodeBoundAtSmallScale(t *testing.T) {
	c := Default()
	// 132 ranks on Alpine: reads are nowhere near the bottleneck.
	prod := c.BatchProduction(132, 4)
	decode := 4 * c.DecodeTime / float64(c.Workers)
	if math.Abs(prod-decode) > 1e-9 {
		t.Fatalf("production %.4g, want decode-bound %.4g", prod, decode)
	}
}

func TestBatchProductionReadBoundAtHugeScale(t *testing.T) {
	c := Default()
	c.FSBandwidth = 1e9 // cripple the filesystem
	prod := c.BatchProduction(1000, 4)
	decode := 4 * c.DecodeTime / float64(c.Workers)
	if prod <= decode {
		t.Fatalf("production %.4g should be read-bound above decode %.4g", prod, decode)
	}
}

func TestStallHiddenByPrefetch(t *testing.T) {
	c := Default()
	// Step time far above production: no stall with prefetch.
	if s := c.StallPerStep(132, 4, 0.6); s != 0 {
		t.Fatalf("prefetch pipeline stalls %.4g on a slow consumer", s)
	}
}

func TestStallWithoutPrefetch(t *testing.T) {
	c := Default()
	c.PrefetchDepth = 0
	want := c.BatchProduction(132, 4)
	if s := c.StallPerStep(132, 4, 0.6); math.Abs(s-want) > 1e-12 {
		t.Fatalf("synchronous stall %.4g, want full production %.4g", s, want)
	}
}

func TestStallWhenProductionSlow(t *testing.T) {
	c := Default()
	c.DecodeTime = 2.0 // pathological decode
	prod := c.BatchProduction(132, 4)
	step := 0.6
	if s := c.StallPerStep(132, 4, step); math.Abs(s-(prod-step)) > 1e-9 {
		t.Fatalf("stall %.4g, want gap %.4g", s, prod-step)
	}
}

func TestBreakEvenRanks(t *testing.T) {
	c := Default()
	be := c.BreakEvenRanks(4)
	if be < 10_000 {
		t.Fatalf("Alpine break-even at %d ranks — should be enormous", be)
	}
	// Production is decode-bound below break-even, read-bound above.
	below := c.BatchProduction(max(1, be/2), 4)
	above := c.BatchProduction(be*2, 4)
	decode := 4 * c.DecodeTime / float64(c.Workers)
	if math.Abs(below-decode) > 1e-9 {
		t.Fatalf("below break-even not decode-bound: %.4g vs %.4g", below, decode)
	}
	if above <= decode {
		t.Fatalf("above break-even not read-bound: %.4g", above)
	}
}

func TestBreakEvenDegenerate(t *testing.T) {
	c := Default()
	c.DecodeTime = 0
	if c.BreakEvenRanks(4) != 1 {
		t.Fatal("zero decode should be read-bound immediately")
	}
}

// Property: production increases (weakly) with rank count and batch.
func TestPropertyProductionMonotone(t *testing.T) {
	c := Default()
	f := func(r1, r2, b1, b2 uint16) bool {
		ra, rb := int(r1%5000)+1, int(r2%5000)+1
		ba, bb := int(b1%64)+1, int(b2%64)+1
		if ra > rb {
			ra, rb = rb, ra
		}
		if ba > bb {
			ba, bb = bb, ba
		}
		return c.BatchProduction(ra, ba) <= c.BatchProduction(rb, ba)+1e-12 &&
			c.BatchProduction(ra, ba) <= c.BatchProduction(ra, bb)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero batch accepted")
		}
	}()
	Default().BatchProduction(1, 0)
}
