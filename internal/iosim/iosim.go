// Package iosim models the training input pipeline: samples read
// from a shared parallel filesystem (GPFS/Alpine on Summit), decoded
// and augmented by per-rank CPU workers, and buffered ahead of the
// GPU by a prefetch queue (tf.data's prefetch/num_parallel_calls
// knobs). Its product is the per-step data stall the performance
// simulator adds to compute — zero when the pipeline keeps up, the
// production-consumption gap when it does not, and the full batch
// production time when prefetching is disabled.
package iosim

import "fmt"

// Config describes one rank's input pipeline and the shared
// filesystem behind it.
type Config struct {
	// ImageBytes is the on-disk size of one training sample.
	ImageBytes int
	// FSBandwidth is the *aggregate* shared filesystem bandwidth; all
	// ranks contend for it.
	FSBandwidth float64
	// ReadLatency is the per-batch metadata/open overhead.
	ReadLatency float64
	// DecodeTime is the CPU decode + augmentation cost per image.
	DecodeTime float64
	// Workers is the number of decode workers per rank
	// (num_parallel_calls).
	Workers int
	// PrefetchDepth is the number of batches buffered ahead
	// (tf.data prefetch). 0 means a synchronous pipeline.
	PrefetchDepth int
}

// Default models VOC-scale JPEGs on Summit's Alpine GPFS with the
// TF1-era preprocessing cost of a 513×513 random-scale-crop-flip
// pipeline on POWER9 cores.
func Default() Config {
	return Config{
		ImageBytes:    120 << 10,
		FSBandwidth:   2.5e12, // Alpine aggregate ~2.5 TB/s
		ReadLatency:   300e-6,
		DecodeTime:    45e-3,
		Workers:       7, // cores per resource set
		PrefetchDepth: 2,
	}
}

// Validate checks physical sanity.
func (c Config) Validate() error {
	if c.ImageBytes <= 0 || c.FSBandwidth <= 0 {
		return fmt.Errorf("iosim: non-positive image size or bandwidth")
	}
	if c.DecodeTime < 0 || c.ReadLatency < 0 {
		return fmt.Errorf("iosim: negative latency")
	}
	if c.Workers <= 0 {
		return fmt.Errorf("iosim: %d workers", c.Workers)
	}
	if c.PrefetchDepth < 0 {
		return fmt.Errorf("iosim: negative prefetch depth")
	}
	return nil
}

// BatchProduction is the time one rank needs to materialise a batch
// when `ranks` ranks share the filesystem: reads contend for the
// aggregate bandwidth; decodes parallelise over the rank's workers
// and overlap the reads.
func (c Config) BatchProduction(ranks, batch int) float64 {
	if ranks <= 0 || batch <= 0 {
		panic(fmt.Sprintf("iosim: ranks=%d batch=%d", ranks, batch))
	}
	perRankBW := c.FSBandwidth / float64(ranks)
	read := c.ReadLatency + float64(batch)*float64(c.ImageBytes)/perRankBW
	decode := float64(batch) * c.DecodeTime / float64(c.Workers)
	// Read and decode stages pipeline; production is paced by the
	// slower stage.
	if read > decode {
		return read
	}
	return decode
}

// StallPerStep is the data-loading time exposed on each training step
// of duration stepTime.
//
//   - PrefetchDepth ≥ 1: the pipeline works ahead, so data only
//     stalls the GPU when production is slower than consumption, by
//     the difference.
//   - PrefetchDepth == 0: the batch is produced synchronously before
//     the step, exposing the full production time.
func (c Config) StallPerStep(ranks, batch int, stepTime float64) float64 {
	prod := c.BatchProduction(ranks, batch)
	if c.PrefetchDepth == 0 {
		return prod
	}
	if prod <= stepTime {
		return 0
	}
	return prod - stepTime
}

// BreakEvenRanks returns the rank count at which shared-filesystem
// reads become the pipeline's pacing stage (production switches from
// decode-bound to read-bound) — the scale where "add more nodes"
// starts to hurt the input pipeline.
func (c Config) BreakEvenRanks(batch int) int {
	// read(batch, ranks) == decode(batch):
	// latency + batch·bytes·ranks/BW == batch·decode/workers
	decode := float64(batch) * c.DecodeTime / float64(c.Workers)
	if decode <= c.ReadLatency {
		return 1
	}
	r := (decode - c.ReadLatency) * c.FSBandwidth / (float64(batch) * float64(c.ImageBytes))
	if r < 1 {
		return 1
	}
	return int(r)
}
