// Package jobscript renders LSF batch scripts with jsrun launch lines
// — how jobs actually run on Summit. The tuner's output (an MPI
// profile + Horovod knobs) becomes a ready-to-bsub script, closing
// the loop from "simulation found these knobs" to "this is the job
// you would submit".
package jobscript

import (
	"fmt"
	"strings"
	"time"

	"segscale/internal/horovod"
	"segscale/internal/mpiprofile"
	"segscale/internal/topology"
)

// Job describes one Summit batch job.
type Job struct {
	// Name is the LSF job name (#BSUB -J).
	Name string
	// Project is the allocation code (#BSUB -P).
	Project string
	// Nodes requested; each contributes GPUsPerNode resource sets.
	Nodes int
	// GPUsPerNode ≤ 6.
	GPUsPerNode int
	// WallTime is the LSF limit.
	WallTime time.Duration
	// Env holds exported variables (HOROVOD_*, MV2_*).
	Env []string
	// Modules are `module load` lines (e.g. ibm-wml-ce, mvapich2-gdr).
	Modules []string
	// Command is the per-rank program (the python training script).
	Command string
}

// FromConfig builds a job for a tuned configuration at a GPU count,
// mirroring the paper's runs (1 rank per GPU, 7 cores per rank on the
// POWER9s).
func FromConfig(name string, gpus int, mpi *mpiprofile.Profile, hvd horovod.Config) Job {
	mach := topology.ForGPUs(gpus)
	modules := []string{"cuda/10.1.168", "gcc/7.4.0"}
	if mpi.Name == "mv2gdr" {
		modules = append(modules, "mvapich2-gdr/2.3.3")
	} else {
		modules = append(modules, "spectrum-mpi/10.3.0.1")
	}
	env := append(append([]string{}, hvd.Env()...), mpi.Env()...)
	return Job{
		Name:        name,
		Project:     "GEN123",
		Nodes:       mach.Nodes,
		GPUsPerNode: mach.GPUsPer,
		WallTime:    2 * time.Hour,
		Env:         env,
		Modules:     modules,
		Command:     "python deeplab_train.py --batch-size 4 --crop 513",
	}
}

// Validate checks the job is submittable.
func (j Job) Validate() error {
	if j.Name == "" || j.Command == "" {
		return fmt.Errorf("jobscript: missing name or command")
	}
	if j.Nodes <= 0 || j.GPUsPerNode <= 0 || j.GPUsPerNode > topology.GPUsPerNode {
		return fmt.Errorf("jobscript: bad geometry %d×%d", j.Nodes, j.GPUsPerNode)
	}
	if j.WallTime <= 0 {
		return fmt.Errorf("jobscript: non-positive wall time")
	}
	for _, e := range j.Env {
		if !strings.Contains(e, "=") {
			return fmt.Errorf("jobscript: malformed env entry %q", e)
		}
	}
	return nil
}

// Ranks is the total MPI rank count (one per GPU).
func (j Job) Ranks() int { return j.Nodes * j.GPUsPerNode }

// LSF renders the batch script.
func (j Job) LSF() (string, error) {
	if err := j.Validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	w := int(j.WallTime.Minutes())
	fmt.Fprintf(&b, "#!/bin/bash\n")
	fmt.Fprintf(&b, "#BSUB -J %s\n", j.Name)
	fmt.Fprintf(&b, "#BSUB -P %s\n", j.Project)
	fmt.Fprintf(&b, "#BSUB -nnodes %d\n", j.Nodes)
	fmt.Fprintf(&b, "#BSUB -W %d:%02d\n", w/60, w%60)
	fmt.Fprintf(&b, "#BSUB -alloc_flags gpumps\n\n")
	for _, m := range j.Modules {
		fmt.Fprintf(&b, "module load %s\n", m)
	}
	b.WriteString("\n")
	for _, e := range j.Env {
		fmt.Fprintf(&b, "export %s\n", e)
	}
	b.WriteString("\n")
	// jsrun: one resource set per GPU, 7 cores each (42 usable cores
	// per Summit node / 6 GPUs), EDR-aware binding.
	fmt.Fprintf(&b, "jsrun -n %d -a 1 -c 7 -g 1 -r %d --bind rs %s\n",
		j.Ranks(), j.GPUsPerNode, j.Command)
	return b.String(), nil
}
