package jobscript

import (
	"strings"
	"testing"
	"time"

	"segscale/internal/horovod"
	"segscale/internal/mpiprofile"
)

func TestFromConfigGeometry(t *testing.T) {
	j := FromConfig("dlv3-132", 132, mpiprofile.MV2GDR(), horovod.Default())
	if j.Nodes != 22 || j.GPUsPerNode != 6 || j.Ranks() != 132 {
		t.Fatalf("geometry %d×%d", j.Nodes, j.GPUsPerNode)
	}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLSFContents(t *testing.T) {
	hvd := horovod.Default()
	hvd.FusionThreshold = 128 << 20
	j := FromConfig("tuned", 48, mpiprofile.MV2GDR(), hvd)
	script, err := j.LSF()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"#BSUB -J tuned",
		"#BSUB -nnodes 8",
		"module load mvapich2-gdr",
		"export HOROVOD_FUSION_THRESHOLD=134217728",
		"export MV2_USE_GPUDIRECT=1",
		"jsrun -n 48 -a 1 -c 7 -g 1 -r 6",
	} {
		if !strings.Contains(script, want) {
			t.Errorf("script missing %q:\n%s", want, script)
		}
	}
}

func TestSpectrumModule(t *testing.T) {
	j := FromConfig("default", 6, mpiprofile.Spectrum(), horovod.Default())
	script, err := j.LSF()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(script, "spectrum-mpi") {
		t.Error("Spectrum job missing its module")
	}
	if strings.Contains(script, "mvapich2-gdr") {
		t.Error("Spectrum job loads MVAPICH2")
	}
}

func TestWallTimeFormat(t *testing.T) {
	j := FromConfig("x", 6, mpiprofile.MV2GDR(), horovod.Default())
	j.WallTime = 90 * time.Minute
	script, err := j.LSF()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(script, "#BSUB -W 1:30") {
		t.Errorf("wall time rendering wrong:\n%s", script)
	}
}

func TestValidateRejectsBadJobs(t *testing.T) {
	base := FromConfig("x", 6, mpiprofile.MV2GDR(), horovod.Default())
	bads := []func(*Job){
		func(j *Job) { j.Name = "" },
		func(j *Job) { j.Command = "" },
		func(j *Job) { j.Nodes = 0 },
		func(j *Job) { j.GPUsPerNode = 7 },
		func(j *Job) { j.WallTime = 0 },
		func(j *Job) { j.Env = append(j.Env, "NOEQUALS") },
	}
	for i, mutate := range bads {
		j := base
		j.Env = append([]string(nil), base.Env...)
		mutate(&j)
		if _, err := j.LSF(); err == nil {
			t.Errorf("bad job %d accepted", i)
		}
	}
}
