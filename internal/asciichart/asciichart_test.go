package asciichart

import (
	"strings"
	"testing"
)

func TestHBarProportions(t *testing.T) {
	out := HBar([]Bar{{"a", 10}, {"b", 5}, {"c", 0}}, 20, "%.0f")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines", len(lines))
	}
	count := func(s string) int { return strings.Count(s, "█") }
	if count(lines[0]) != 20 {
		t.Errorf("max bar has %d cells, want 20", count(lines[0]))
	}
	if count(lines[1]) != 10 {
		t.Errorf("half bar has %d cells, want 10", count(lines[1]))
	}
	if count(lines[2]) != 0 {
		t.Errorf("zero bar has %d cells", count(lines[2]))
	}
	if !strings.Contains(lines[0], "10") || !strings.Contains(lines[1], "5") {
		t.Error("values not annotated")
	}
}

func TestHBarTinyValueGetsOneCell(t *testing.T) {
	out := HBar([]Bar{{"big", 1000}, {"tiny", 1}}, 20, "%.0f")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if strings.Count(lines[1], "█") != 1 {
		t.Error("tiny non-zero bar should still be visible")
	}
}

func TestHBarEmptyAndWidthClamp(t *testing.T) {
	if HBar(nil, 20, "%f") != "" {
		t.Error("empty input should render nothing")
	}
	out := HBar([]Bar{{"x", 1}}, 1, "%.0f") // clamped to ≥8
	if strings.Count(out, "█") != 8 {
		t.Errorf("width clamp failed: %q", out)
	}
}

func TestLabelsAligned(t *testing.T) {
	out := HBar([]Bar{{"a", 1}, {"longlabel", 2}}, 10, "%.0f")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if strings.Index(lines[0], "|") != strings.Index(lines[1], "|") {
		t.Error("bars not aligned")
	}
}

func TestCompare(t *testing.T) {
	out := Compare([]string{"6", "132"},
		[]Series{{"default", []float64{34.9, 640.5}}, {"tuned", []float64{38.6, 813.4}}},
		24, "%.1f")
	for _, want := range []string{"6 default", "6 tuned", "132 default", "132 tuned", "813.4"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q\n%s", want, out)
		}
	}
	// Missing values render as zero rather than panicking.
	out2 := Compare([]string{"a", "b"}, []Series{{"s", []float64{1}}}, 10, "%.0f")
	if !strings.Contains(out2, "b s") {
		t.Error("short series not padded")
	}
}
