// Package asciichart renders small horizontal bar charts and scaling
// curves as plain text — enough for the CLIs to show the paper's
// figures in a terminal without any plotting dependency.
package asciichart

import (
	"fmt"
	"strings"
)

// Bar is one labelled value.
type Bar struct {
	Label string
	Value float64
}

// HBar renders a horizontal bar chart scaled to width characters,
// annotating each bar with its value via format (e.g. "%.1f").
func HBar(bars []Bar, width int, format string) string {
	if len(bars) == 0 {
		return ""
	}
	if width < 8 {
		width = 8
	}
	maxVal := 0.0
	maxLabel := 0
	for _, b := range bars {
		if b.Value > maxVal {
			maxVal = b.Value
		}
		if len(b.Label) > maxLabel {
			maxLabel = len(b.Label)
		}
	}
	var sb strings.Builder
	for _, b := range bars {
		n := 0
		if maxVal > 0 && b.Value > 0 {
			n = int(b.Value / maxVal * float64(width))
			if n == 0 {
				n = 1
			}
		}
		fmt.Fprintf(&sb, "%-*s |%s%s %s\n",
			maxLabel, b.Label,
			strings.Repeat("█", n), strings.Repeat(" ", width-n),
			fmt.Sprintf(format, b.Value))
	}
	return sb.String()
}

// Series is one named curve for Compare.
type Series struct {
	Name   string
	Values []float64
}

// Compare renders grouped bars: for each x-label, one bar per series
// — the shape of the paper's default-vs-tuned scaling figure.
func Compare(xLabels []string, series []Series, width int, format string) string {
	var bars []Bar
	for i, x := range xLabels {
		for _, s := range series {
			v := 0.0
			if i < len(s.Values) {
				v = s.Values[i]
			}
			bars = append(bars, Bar{Label: x + " " + s.Name, Value: v})
		}
	}
	return HBar(bars, width, format)
}
