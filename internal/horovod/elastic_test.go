package horovod

import (
	"math"
	"reflect"
	"testing"

	"segscale/internal/netmodel"
	"segscale/internal/topology"
	"segscale/internal/transport"
)

func TestNewElasticRuntimeValidation(t *testing.T) {
	mach := topology.Summit(1) // 6 slots
	w, err := transport.NewWorld(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(c *transport.Comm) error {
		if _, err := NewElasticRuntime(c, mach, []int{0, 1, 2, 4, 5}, Default()); err != nil {
			t.Errorf("valid members: %v", err)
		}
		if _, err := NewElasticRuntime(c, mach, []int{0, 1, 2, 4}, Default()); err == nil {
			t.Error("member count != world size: want error")
		}
		if _, err := NewElasticRuntime(c, mach, []int{0, 1, 2, 4, 6}, Default()); err == nil {
			t.Error("slot outside machine: want error")
		}
		if _, err := NewElasticRuntime(c, mach, []int{0, 2, 1, 4, 5}, Default()); err == nil {
			t.Error("non-ascending members: want error")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeGroupsForSurvivors(t *testing.T) {
	mach := topology.Summit(2) // nodes of slots 0-5 and 6-11
	// Slot 3 died: comm ranks 0-4 live on node 0, 5-10 on node 1.
	got := nodeGroupsFor(mach, []int{0, 1, 2, 4, 5, 6, 7, 8, 9, 10, 11})
	want := [][]int{{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9, 10}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("nodeGroupsFor = %v, want %v", got, want)
	}
	// A whole node gone still yields contiguous comm-rank groups.
	got = nodeGroupsFor(mach, []int{6, 7, 8, 9, 10, 11})
	want = [][]int{{0, 1, 2, 3, 4, 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("nodeGroupsFor = %v, want %v", got, want)
	}
}

// TestElasticHierAllreduceShrunkenWorld: the hierarchical two-level
// allreduce keeps matching the sequential sum after the world loses a
// slot, for both the hier-2level dispatch and the leader fallback —
// the survivor node partition is uneven, which exercises the leader
// composition inside AllreduceHierGroups.
func TestElasticHierAllreduceShrunkenWorld(t *testing.T) {
	mach := topology.Summit(2)
	members := []int{0, 1, 2, 4, 5, 6, 7, 8, 9, 10, 11} // slot 3 dead
	for _, cse := range []struct {
		name string
		cfg  func() Config
	}{
		{"hier-2level", func() Config { c := Default(); c.Algorithm = netmodel.AlgHierTwoLevel; return c }},
		{"hier-leader-fallback", func() Config { c := Default(); c.Hierarchical = true; return c }},
	} {
		t.Run(cse.name, func(t *testing.T) {
			p := len(members)
			n := 257
			want := make([]float64, n)
			ins := make([][]float32, p)
			for r := range ins {
				ins[r] = make([]float32, n)
				for i := range ins[r] {
					ins[r][i] = float32(r*n+i) / 512
					want[i] += float64(ins[r][i])
				}
			}
			outs := make([][]float32, p)
			if err := transport.Run(p, func(c *transport.Comm) error {
				rt, err := NewElasticRuntime(c, mach, members, cse.cfg())
				if err != nil {
					return err
				}
				buf := append([]float32(nil), ins[c.Rank()]...)
				if err := rt.allreduce(buf); err != nil {
					return err
				}
				outs[c.Rank()] = buf
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			for r := 0; r < p; r++ {
				for i := range want {
					if math.Abs(float64(outs[r][i])-want[i]) > 1e-3 {
						t.Fatalf("rank %d elem %d: %g vs %g", r, i, outs[r][i], want[i])
					}
				}
			}
		})
	}
}

// TestBroadcastFloat64ExactBits: the float64 broadcast is bit-exact,
// including values whose 32-bit halves happen to form float32 NaN or
// denormal patterns — the wire only copies, never does arithmetic.
func TestBroadcastFloat64ExactBits(t *testing.T) {
	src := []float64{
		0, math.Copysign(0, -1), 1.0 / 3.0, math.Pi, -2.5e-308, // denormal-ish
		math.Float64frombits(0x123456787FC00001), // low half is a float32 NaN pattern
		math.Float64frombits(0x7FC0000112345678), // high half is a float32 NaN pattern
		math.MaxFloat64, math.SmallestNonzeroFloat64,
	}
	mach := topology.ForGPUs(3)
	if err := transport.Run(3, func(c *transport.Comm) error {
		rt := newRuntime(c, mach, Default())
		buf := make([]float64, len(src))
		if c.Rank() == 0 {
			copy(buf, src)
		} else {
			for i := range buf {
				buf[i] = float64(c.Rank()) // garbage to overwrite
			}
		}
		if err := rt.BroadcastFloat64Exact(buf); err != nil {
			return err
		}
		for i, v := range buf {
			if math.Float64bits(v) != math.Float64bits(src[i]) {
				t.Errorf("rank %d elem %d: %016x vs %016x", c.Rank(), i, math.Float64bits(v), math.Float64bits(src[i]))
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
