package horovod

import "fmt"

// PlanFusion partitions tensors (given by size, in submission order)
// into fused-buffer groups the way Horovod's coordinator does: walk
// the ready list, packing consecutive tensors while the running total
// stays within the threshold; a tensor larger than the threshold gets
// a group of its own. threshold ≤ 0 disables fusion (one tensor per
// group). Each returned group is a slice of indices into sizes.
func PlanFusion(sizes []int, threshold int) [][]int {
	var groups [][]int
	var cur []int
	curBytes := 0
	for i, s := range sizes {
		if s < 0 {
			panic(fmt.Sprintf("horovod: negative tensor size at %d", i))
		}
		if threshold <= 0 {
			groups = append(groups, []int{i})
			continue
		}
		if len(cur) > 0 && curBytes+s > threshold {
			groups = append(groups, cur)
			cur, curBytes = nil, 0
		}
		cur = append(cur, i)
		curBytes += s
		if curBytes >= threshold {
			groups = append(groups, cur)
			cur, curBytes = nil, 0
		}
	}
	if len(cur) > 0 {
		groups = append(groups, cur)
	}
	return groups
}

// GroupBytes sums the sizes of one fusion group.
func GroupBytes(sizes []int, group []int) int {
	n := 0
	for _, i := range group {
		n += sizes[i]
	}
	return n
}
