package horovod

//seglint:file-ignore hotalloc fusion planning is cached by Runtime.fusionPlan and re-runs only when the parameter-size vector changes — once per run, not per step

import "fmt"

// PlanFusion partitions tensors (given by size, in submission order)
// into fused-buffer groups the way Horovod's coordinator does: walk
// the ready list, packing consecutive tensors while the running total
// stays within the threshold; a tensor larger than the threshold gets
// a group of its own. threshold ≤ 0 disables fusion (one tensor per
// group). Each returned group is a slice of indices into sizes.
func PlanFusion(sizes []int, threshold int) [][]int {
	return PlanFusionInto(nil, sizes, threshold)
}

// PlanFusionInto is PlanFusion recycling dst's storage: the returned
// plan reuses dst's backing array and the capacity of its previous
// inner slices, so a caller that plans every negotiation cycle (the
// performance simulator) allocates only while groups are still
// growing past their high-water marks. dst may be nil.
func PlanFusionInto(dst [][]int, sizes []int, threshold int) [][]int {
	// spare views dst's full capacity so inner slices already emitted
	// in earlier calls can be handed out again; out only ever grabs
	// slot len(out), which it has not yet overwritten.
	spare := dst[:cap(dst)]
	out := dst[:0]
	var cur []int
	if len(spare) > 0 {
		cur = spare[0][:0]
	}
	curBytes := 0
	for i, s := range sizes {
		if s < 0 {
			panic(fmt.Sprintf("horovod: negative tensor size at %d", i))
		}
		if threshold > 0 && len(cur) > 0 && curBytes+s > threshold {
			out = append(out, cur)
			cur, curBytes = nil, 0
			if len(out) < len(spare) {
				cur = spare[len(out)][:0]
			}
		}
		cur = append(cur, i)
		curBytes += s
		if threshold <= 0 || curBytes >= threshold {
			out = append(out, cur)
			cur, curBytes = nil, 0
			if len(out) < len(spare) {
				cur = spare[len(out)][:0]
			}
		}
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}

// GroupBytes sums the sizes of one fusion group.
func GroupBytes(sizes []int, group []int) int {
	n := 0
	for _, i := range group {
		n += sizes[i]
	}
	return n
}
