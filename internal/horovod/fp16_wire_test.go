package horovod

import (
	"fmt"
	"math"
	"testing"

	"segscale/internal/netmodel"
	"segscale/internal/telemetry"
	"segscale/internal/topology"
	"segscale/internal/transport"
)

// totalMetric sums a gathered counter across every rank lane (or
// returns the max for gauges — both reduce the same way here since
// only one lane is inspected at a time when that matters).
func totalMetric(t *testing.T, col *telemetry.Collector, name string) float64 {
	t.Helper()
	for _, m := range col.Gather() {
		if m.Name == name {
			total := 0.0
			for _, v := range m.PerLane {
				total += v
			}
			return total
		}
	}
	t.Fatalf("metric %s not gathered", name)
	return 0
}

// runGradsInstrumented performs one instrumented AllreduceGrads over
// the world and returns the gathered telemetry.
func runGradsInstrumented(t *testing.T, cfg Config, world int, shapes []int) *telemetry.Collector {
	t.Helper()
	col := telemetry.NewCollector()
	mach := topology.ForGPUs(world)
	err := transport.Run(world, func(c *transport.Comm) error {
		c.SetProbe(col.NewProbe(fmt.Sprintf("rank%d", c.Rank()), telemetry.NewStepClock()))
		rt := newRuntime(c, mach, cfg)
		return rt.AllreduceGrads(makeParams(c.Rank(), shapes))
	})
	if err != nil {
		t.Fatal(err)
	}
	return col
}

// The regression the issue pins: with FP16Compression the fused-buffer
// metrics and the live transport byte counters must report exactly 2
// bytes per element — precisely half the fp32 run's bytes, since both
// runs move the same element counts through the same schedule.
func TestFP16WireBytesExactlyHalve(t *testing.T) {
	const world = 4
	shapes := []int{7, 129, 3, 64, 1}

	cfg32 := Default()
	cfg16 := Default()
	cfg16.FP16Compression = true
	col32 := runGradsInstrumented(t, cfg32, world, shapes)
	col16 := runGradsInstrumented(t, cfg16, world, shapes)

	for _, name := range []string{
		"horovod_fused_bytes",
		"transport_sent_bytes",
		"transport_received_bytes",
	} {
		b32 := totalMetric(t, col32, name)
		b16 := totalMetric(t, col16, name)
		if b32 <= 0 || b16 <= 0 {
			t.Fatalf("%s: empty counters (fp32 %.0f, fp16 %.0f)", name, b32, b16)
		}
		if b32 != 2*b16 {
			t.Errorf("%s: fp32 %.0f vs fp16 %.0f — want exactly 2x", name, b32, b16)
		}
	}

	// The fill-ratio gauge reports wire bytes over threshold, so it
	// halves too (every rank publishes the same value; summing lanes
	// preserves the ratio).
	f32 := totalMetric(t, col32, "horovod_fusion_fill_ratio")
	f16 := totalMetric(t, col16, "horovod_fusion_fill_ratio")
	if f32 <= 0 || math.Abs(f32-2*f16) > 1e-12*f32 {
		t.Errorf("horovod_fusion_fill_ratio: fp32 %g vs fp16 %g — want exactly 2x", f32, f16)
	}
}

// testAllreduceGradsFP16WithConfig checks the compressed allreduce
// against the exact average within binary16 accumulation tolerance.
func testAllreduceGradsFP16WithConfig(t *testing.T, cfg Config, world int) {
	t.Helper()
	cfg.FP16Compression = true
	shapes := []int{7, 129, 3, 64, 1}
	expect := make([][]float32, len(shapes))
	for i, n := range shapes {
		expect[i] = make([]float32, n)
	}
	for r := 0; r < world; r++ {
		ps := makeParams(r, shapes)
		for i, p := range ps {
			for j, v := range p.G.Data {
				expect[i][j] += v / float32(world)
			}
		}
	}
	mach := topology.ForGPUs(world)
	results := make([][][]float32, world)
	err := transport.Run(world, func(c *transport.Comm) error {
		rt := newRuntime(c, mach, cfg)
		ps := makeParams(c.Rank(), shapes)
		if err := rt.AllreduceGrads(ps); err != nil {
			return err
		}
		grads := make([][]float32, len(ps))
		for i, p := range ps {
			grads[i] = append([]float32(nil), p.G.Data...)
		}
		results[c.Rank()] = grads
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < world; r++ {
		for i := range shapes {
			for j := range expect[i] {
				got := float64(results[r][i][j])
				want := float64(expect[i][j])
				if d := math.Abs(got - want); d > 2e-3*float64(world)*(1+math.Abs(want)) {
					t.Fatalf("cfg %+v rank %d tensor %d[%d]: %g vs %g (beyond fp16 tolerance)",
						cfg, r, i, j, got, want)
				}
			}
		}
	}
}

// Every algorithm the dispatch can resolve must carry the binary16
// wire correctly, including the hierarchical compositions.
func TestFP16WireAllAlgorithms(t *testing.T) {
	ring := Default()
	rd := Default()
	rd.Algorithm = netmodel.AlgRecursiveDoubling
	rab := Default()
	rab.Algorithm = netmodel.AlgRabenseifner
	twoLevel := Default()
	twoLevel.Algorithm = netmodel.AlgHierTwoLevel
	hier := Default()
	hier.Hierarchical = true

	testAllreduceGradsFP16WithConfig(t, ring, 4)
	testAllreduceGradsFP16WithConfig(t, rd, 5)
	testAllreduceGradsFP16WithConfig(t, rab, 6)
	testAllreduceGradsFP16WithConfig(t, twoLevel, 12)
	testAllreduceGradsFP16WithConfig(t, hier, 12)
}

// Tiny fusion thresholds force many wire buffers per step; the
// compressed path must replay the same plan as fp32 and stay correct.
func TestFP16WireTinyFusionBuffers(t *testing.T) {
	cfg := Default()
	cfg.FusionThreshold = 64
	testAllreduceGradsFP16WithConfig(t, cfg, 3)
}
