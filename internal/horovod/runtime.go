package horovod

import (
	"fmt"
	"sync"

	"segscale/internal/collective"
	"segscale/internal/fp16"
	"segscale/internal/netmodel"
	"segscale/internal/nn"
	"segscale/internal/telemetry"
	"segscale/internal/timeline"
	"segscale/internal/topology"
	"segscale/internal/transport"
)

// Runtime is the real (data-carrying) Horovod: it owns one rank's
// communicator and performs fused gradient allreduce and parameter
// broadcast, exactly as hvd.DistributedOptimizer and
// hvd.broadcast_global_variables do.
type Runtime struct {
	Comm *transport.Comm
	Mach topology.Machine
	Cfg  Config

	world   []int
	fused   []float32 // reusable fusion buffer
	fused16 []uint16  // reusable binary16 wire buffer (FP16Compression)

	// members maps comm rank → original machine slot: the identity for
	// a full world, the ascending survivor slots for an elastic one.
	members []int
	// nodeGroups partitions comm ranks by the machine node their
	// member slot lives on — the partition every hierarchical
	// allreduce runs over, prebuilt so the step path never rebuilds it.
	nodeGroups [][]int
	elastic    bool

	// Fusion-plan cache: the grouping is a pure function of the
	// parameter-size vector and the threshold, and the trainer submits
	// an identically-shaped list every step, so the plan is computed
	// once and replayed — the planner never runs on the steady-state
	// step path.
	planSizes []int
	plan      [][]int

	// probe is the rank's telemetry handle, cached from the
	// communicator at construction; nil (the default) costs one
	// branch per instrumentation site.
	probe *telemetry.Probe

	// commErr is the sticky first communication error from a context
	// that cannot return one — the SyncBN closure fires mid-forward —
	// surfaced via CommErr at the next step boundary.
	commErrMu sync.Mutex
	commErr   error
}

// NewRuntime builds one rank's runtime. The machine layout must match
// the world size (it defines the node groups hierarchical allreduce
// uses); a mismatch or an invalid configuration is reported as an
// error, never a panic — in a multi-rank world a panicking
// constructor tears down every in-process rank at once.
func NewRuntime(c *transport.Comm, mach topology.Machine, cfg Config) (*Runtime, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if mach.Ranks() != c.Size() {
		return nil, fmt.Errorf("horovod: machine has %d ranks, world has %d", mach.Ranks(), c.Size())
	}
	world := make([]int, c.Size())
	for i := range world {
		world[i] = i
	}
	return &Runtime{
		Comm: c, Mach: mach, Cfg: cfg,
		world:      world,
		members:    world,
		nodeGroups: nodeGroupsFor(mach, world),
		probe:      c.Probe(),
	}, nil
}

// Rank returns this runtime's rank.
func (r *Runtime) Rank() int { return r.Comm.Rank() }

// Size returns the world size.
func (r *Runtime) Size() int { return r.Comm.Size() }

// RecordCommErr stores err as the runtime's sticky communication
// error if it is the first (nil and repeat errors are ignored). It is
// the error channel for call sites that cannot return one — the
// synchronized-batch-norm closure runs mid-forward.
func (r *Runtime) RecordCommErr(err error) {
	if err == nil {
		return
	}
	r.commErrMu.Lock()
	if r.commErr == nil {
		r.commErr = err
	}
	r.commErrMu.Unlock()
}

// CommErr returns the sticky communication error (nil while healthy).
// The training loop polls it at step boundaries.
func (r *Runtime) CommErr() error {
	r.commErrMu.Lock()
	defer r.commErrMu.Unlock()
	return r.commErr
}

// BroadcastParams overwrites every rank's parameters with rank 0's —
// the initial weight synchronisation of distributed training.
func (r *Runtime) BroadcastParams(params []*nn.Param) error {
	r.probe.Counter("horovod_broadcasts_total").Inc()
	for _, p := range params {
		if err := collective.BcastTree(r.Comm, r.world, p.W.Data); err != nil {
			return fmt.Errorf("horovod: broadcast params: %w", err)
		}
	}
	return nil
}

// fusedBucketsBytes spaces histogram buckets for fused-buffer sizes
// from 4 KiB to 256 MiB.
var fusedBucketsBytes = telemetry.ExpBuckets(4<<10, 4, 9)

// AllreduceGrads averages gradients across all ranks in place,
// fusing consecutive tensors up to the configured threshold per
// buffer. Every rank must call it with an identically-shaped
// parameter list (guaranteed by deterministic model construction).
//
// Under FP16Compression the fused buffer is encoded to binary16 once
// at pack, the collective runs over the []uint16 wire (2 bytes per
// element, which every byte counter below reports), and the result is
// decoded once at unpack — hvd.Compression.fp16 as a real wire
// format, not a precision simulation.
func (r *Runtime) AllreduceGrads(params []*nn.Param) error {
	if r.Size() == 1 {
		return nil
	}
	elemBytes := 4
	if r.Cfg.FP16Compression {
		elemBytes = 2
	}
	groups := r.fusionPlan(params)
	for _, group := range groups {
		n := 0
		for _, i := range group {
			n += params[i].G.Len()
		}
		if cap(r.fused) < n {
			r.fused = make([]float32, n) //seglint:ignore hotalloc fusion buffer grows to the largest group once, then is reused every step
		}
		buf := r.fused[:n]

		r.probe.Counter("horovod_fused_buffers_total").Inc()
		r.probe.Counter("horovod_fused_bytes").Add(float64(elemBytes * n))
		r.probe.Histogram("horovod_fused_buffer_bytes", fusedBucketsBytes).Observe(float64(elemBytes * n))
		if r.Cfg.FusionThreshold > 0 {
			// Fusion-buffer fill: how much of the configured budget the
			// planner actually packed — low fill at scale means the
			// threshold is mis-tuned for the tensor-size distribution.
			r.probe.Gauge("horovod_fusion_fill_ratio").Set(float64(elemBytes*n) / float64(r.Cfg.FusionThreshold))
		}

		if r.Cfg.FP16Compression {
			if cap(r.fused16) < n {
				r.fused16 = make([]uint16, n) //seglint:ignore hotalloc wire buffer grows to the largest group once, then is reused every step
			}
			buf16 := r.fused16[:n]

			pack := r.probe.Span(timeline.PhaseMemcpy, "pack")
			packFused(buf, params, group)
			err := fp16.Encode(buf, buf16)
			pack.End()
			if err != nil {
				return fmt.Errorf("horovod: allreduce grads: %w", err)
			}

			if err := r.allreduce16(buf16); err != nil {
				return fmt.Errorf("horovod: allreduce grads: %w", err)
			}

			unpack := r.probe.Span(timeline.PhaseMemcpy, "unpack")
			err = fp16.Decode(buf16, buf)
			if err == nil {
				collective.Scale(buf, r.Size())
				unpackFused(params, group, buf)
			}
			unpack.End()
			if err != nil {
				return fmt.Errorf("horovod: allreduce grads: %w", err)
			}
			continue
		}

		pack := r.probe.Span(timeline.PhaseMemcpy, "pack")
		packFused(buf, params, group)
		pack.End()

		if err := r.allreduce(buf); err != nil {
			return fmt.Errorf("horovod: allreduce grads: %w", err)
		}
		collective.Scale(buf, r.Size())

		unpack := r.probe.Span(timeline.PhaseMemcpy, "unpack")
		unpackFused(params, group, buf)
		unpack.End()
	}
	return nil
}

// fusionPlan returns the cached fusion grouping for params, recomputing
// it only when the parameter-size vector differs from the cached one —
// in practice once per runtime, since deterministic model construction
// gives every step an identically-shaped list.
func (r *Runtime) fusionPlan(params []*nn.Param) [][]int {
	same := len(r.planSizes) == len(params)
	if same {
		for i, p := range params {
			if r.planSizes[i] != 4*p.G.Len() {
				same = false
				break
			}
		}
	}
	if same {
		return r.plan
	}
	r.planSizes = r.planSizes[:0]
	for _, p := range params {
		r.planSizes = append(r.planSizes, 4*p.G.Len()) //seglint:ignore hotalloc plan miss: runs once per parameter-size vector, then cached
	}
	r.plan = PlanFusion(r.planSizes, r.Cfg.FusionThreshold)
	return r.plan
}

// packFused copies each grouped tensor's gradient back-to-back into
// the fusion buffer — the memcpy half of Horovod's tensor fusion that
// runs once per group per step.
//
//seglint:hotpath per-step gradient pack into the reused fusion buffer
func packFused(buf []float32, params []*nn.Param, group []int) {
	off := 0
	for _, i := range group {
		copy(buf[off:], params[i].G.Data)
		off += params[i].G.Len()
	}
}

// unpackFused scatters the averaged fusion buffer back into the
// grouped tensors' gradients.
//
//seglint:hotpath per-step gradient unpack from the reused fusion buffer
func unpackFused(params []*nn.Param, group []int, buf []float32) {
	off := 0
	for _, i := range group {
		copy(params[i].G.Data, buf[off:off+params[i].G.Len()])
		off += params[i].G.Len()
	}
}

// allreduce dispatches one fused buffer to the configured collective.
func (r *Runtime) allreduce(buf []float32) error {
	switch r.Cfg.ResolveAlgorithm() {
	case netmodel.AlgHierLeader:
		if r.elastic {
			// The classic leader hierarchy assumes a full machine; an
			// elastic world runs the group form over the survivor
			// partition instead.
			intra, inter := topology.SummitLinkSpecs()
			return collective.AllreduceHierGroups(r.Comm, r.nodeGroups, intra, inter, buf)
		}
		return collective.AllreduceHierLeader(r.Comm, r.Mach, buf)
	case netmodel.AlgHierTwoLevel:
		intra, inter := topology.SummitLinkSpecs()
		return collective.AllreduceHierGroups(r.Comm, r.nodeGroups, intra, inter, buf)
	case netmodel.AlgRecursiveDoubling:
		return collective.AllreduceRecursiveDoubling(r.Comm, r.world, buf)
	case netmodel.AlgRabenseifner:
		return collective.AllreduceRabenseifner(r.Comm, r.world, buf)
	default:
		return collective.AllreduceRing(r.Comm, r.world, buf)
	}
}

// allreduce16 dispatches one binary16 wire buffer to the configured
// collective — the same algorithm resolution as allreduce, over the
// compressed payload kind.
func (r *Runtime) allreduce16(buf []uint16) error {
	switch r.Cfg.ResolveAlgorithm() {
	case netmodel.AlgHierLeader:
		if r.elastic {
			intra, inter := topology.SummitLinkSpecs()
			return collective.AllreduceHierGroups16(r.Comm, r.nodeGroups, intra, inter, buf)
		}
		return collective.AllreduceHierLeader16(r.Comm, r.Mach, buf)
	case netmodel.AlgHierTwoLevel:
		intra, inter := topology.SummitLinkSpecs()
		return collective.AllreduceHierGroups16(r.Comm, r.nodeGroups, intra, inter, buf)
	case netmodel.AlgRecursiveDoubling:
		return collective.AllreduceRecursiveDoubling16(r.Comm, r.world, buf)
	case netmodel.AlgRabenseifner:
		return collective.AllreduceRabenseifner16(r.Comm, r.world, buf)
	default:
		return collective.AllreduceRing16(r.Comm, r.world, buf)
	}
}

// AllreduceSumFloat64 sums a float64 vector elementwise across ranks
// in place — the reduction synchronized batch norm uses for its
// statistics. Values ride the float32 collective.
func (r *Runtime) AllreduceSumFloat64(buf []float64) error {
	if r.Size() == 1 {
		return nil
	}
	f := make([]float32, len(buf))
	for i, v := range buf {
		f[i] = float32(v)
	}
	if err := collective.AllreduceRing(r.Comm, r.world, f); err != nil {
		return fmt.Errorf("horovod: allreduce float64: %w", err)
	}
	for i := range buf {
		buf[i] = float64(f[i])
	}
	return nil
}

// Allgather collects each rank's (possibly differently-sized) vector
// and returns all contributions indexed by rank — hvd.allgather.
func (r *Runtime) Allgather(local []float32) ([][]float32, error) {
	shards := make([][]float32, r.Size())
	shards[r.Rank()] = local
	if err := collective.AllgatherRing(r.Comm, r.world, shards); err != nil {
		return nil, fmt.Errorf("horovod: allgather: %w", err)
	}
	return shards, nil
}

// Broadcast overwrites buf on every rank with rank 0's contents —
// hvd.broadcast for a single tensor.
func (r *Runtime) Broadcast(buf []float32) error {
	if err := collective.BcastTree(r.Comm, r.world, buf); err != nil {
		return fmt.Errorf("horovod: broadcast: %w", err)
	}
	return nil
}

// AllreduceScalar averages one float64 across ranks (used for loss
// and metric reporting).
func (r *Runtime) AllreduceScalar(v float64) (float64, error) {
	buf := []float32{float32(v)}
	if err := collective.AllreduceRing(r.Comm, r.world, buf); err != nil {
		return 0, fmt.Errorf("horovod: allreduce scalar: %w", err)
	}
	return float64(buf[0]) / float64(r.Size()), nil
}

// AllreduceCounts sums an int64 vector across ranks (used to merge
// confusion matrices for global mIOU). Summation rides the float32
// collective, which is exact while every partial sum stays below 2²⁴
// — comfortably true for this package's evaluation-set pixel counts.
func (r *Runtime) AllreduceCounts(counts []int64) error {
	buf := make([]float32, len(counts))
	for i, c := range counts {
		buf[i] = float32(c)
	}
	if err := collective.AllreduceRing(r.Comm, r.world, buf); err != nil {
		return fmt.Errorf("horovod: allreduce counts: %w", err)
	}
	for i := range counts {
		counts[i] = int64(buf[i] + 0.5)
	}
	return nil
}
