package horovod

import (
	"fmt"
	"math"

	"segscale/internal/collective"
	"segscale/internal/nn"
	"segscale/internal/topology"
	"segscale/internal/transport"
)

// Elastic runtime: Horovod 0.20 introduced elastic training, where a
// failed rank shrinks the world in place — the survivors re-form
// communicators over the slots that are still alive and training
// continues without a checkpoint restart. This file holds the pieces
// specific to a world whose comm ranks are a subset of the machine's
// slots: construction from a member list, the node partition that
// hierarchical allreduce runs over, and the bit-exact float64
// broadcast that re-synchronizes optimizer and batch-norm state when
// the world changes shape.

// NewElasticRuntime builds one rank's runtime over a (possibly
// shrunken) world. members maps comm rank → original machine slot and
// must be strictly ascending, within the machine, and exactly as long
// as the world — comm rank i of c stands for machine slot members[i].
func NewElasticRuntime(c *transport.Comm, mach topology.Machine, members []int, cfg Config) (*Runtime, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := mach.Validate(); err != nil {
		return nil, err
	}
	if len(members) != c.Size() {
		return nil, fmt.Errorf("horovod: %d members, world has %d ranks", len(members), c.Size())
	}
	for i, s := range members {
		if s < 0 || s >= mach.Ranks() {
			return nil, fmt.Errorf("horovod: member slot %d outside machine of %d ranks", s, mach.Ranks())
		}
		if i > 0 && s <= members[i-1] {
			return nil, fmt.Errorf("horovod: member slots not strictly ascending at index %d", i)
		}
	}
	world := make([]int, c.Size())
	for i := range world {
		world[i] = i
	}
	mem := make([]int, len(members))
	copy(mem, members)
	return &Runtime{
		Comm: c, Mach: mach, Cfg: cfg,
		world:      world,
		members:    mem,
		nodeGroups: nodeGroupsFor(mach, mem),
		elastic:    true,
		probe:      c.Probe(),
	}, nil
}

// Members returns the machine slot each comm rank stands for.
func (r *Runtime) Members() []int { return r.members }

// nodeGroupsFor partitions comm ranks by the machine node of their
// member slot. members is ascending and Node is monotone in the slot,
// so one ordered pass groups correctly — no map iteration.
func nodeGroupsFor(mach topology.Machine, members []int) [][]int {
	var groups [][]int
	lastNode := -1
	for i, slot := range members {
		n := mach.Node(slot)
		if len(groups) == 0 || n != lastNode {
			groups = append(groups, []int{i})
			lastNode = n
		} else {
			groups[len(groups)-1] = append(groups[len(groups)-1], i)
		}
	}
	return groups
}

// syncGroup returns the world reordered so root leads — the group
// shape BcastTree broadcasts from. Elastic resume needs a movable
// root: comm rank 0 may be a freshly rebuilt replica (its slot died
// and regrew), and state must flow from a survivor.
func (r *Runtime) syncGroup(root int) []int {
	g := make([]int, 0, len(r.world))
	g = append(g, root)
	for _, i := range r.world {
		if i != root {
			g = append(g, i)
		}
	}
	return g
}

// BroadcastParamsFrom overwrites every rank's parameters with the
// root comm rank's — BroadcastParams with a movable root.
func (r *Runtime) BroadcastParamsFrom(root int, params []*nn.Param) error {
	if r.Size() == 1 {
		return nil
	}
	r.probe.Counter("horovod_broadcasts_total").Inc()
	group := r.syncGroup(root)
	for _, p := range params {
		if err := collective.BcastTree(r.Comm, group, p.W.Data); err != nil {
			return fmt.Errorf("horovod: broadcast params: %w", err)
		}
	}
	return nil
}

// BroadcastFrom overwrites buf on every rank with the root comm
// rank's contents. The wire only copies, so float32 payloads
// round-trip bit-exactly.
func (r *Runtime) BroadcastFrom(root int, buf []float32) error {
	if r.Size() == 1 {
		return nil
	}
	if err := collective.BcastTree(r.Comm, r.syncGroup(root), buf); err != nil {
		return fmt.Errorf("horovod: broadcast: %w", err)
	}
	return nil
}

// BroadcastFloat64Exact overwrites buf on every rank with rank 0's
// contents, bit-exactly. The wire carries float32 words, so each
// float64 is split into its two IEEE-754 halves bit-cast as float32 —
// BcastTree and the transport only copy, never do arithmetic, so the
// round trip is lossless. Elastic resume uses this to re-synchronize
// batch-norm running statistics and optimizer state: an approximate
// broadcast there would break the byte-identical-rerun guarantee.
func (r *Runtime) BroadcastFloat64Exact(buf []float64) error {
	return r.BroadcastFloat64ExactFrom(0, buf)
}

// BroadcastFloat64ExactFrom is BroadcastFloat64Exact with a movable
// root comm rank.
func (r *Runtime) BroadcastFloat64ExactFrom(root int, buf []float64) error {
	if r.Size() == 1 {
		return nil
	}
	wire := make([]float32, 2*len(buf))
	for i, v := range buf {
		b := math.Float64bits(v)
		wire[2*i] = math.Float32frombits(uint32(b >> 32))
		wire[2*i+1] = math.Float32frombits(uint32(b))
	}
	if err := collective.BcastTree(r.Comm, r.syncGroup(root), wire); err != nil {
		return fmt.Errorf("horovod: broadcast float64: %w", err)
	}
	for i := range buf {
		hi := uint64(math.Float32bits(wire[2*i]))
		lo := uint64(math.Float32bits(wire[2*i+1]))
		buf[i] = math.Float64frombits(hi<<32 | lo)
	}
	return nil
}
