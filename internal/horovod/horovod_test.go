package horovod

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"segscale/internal/netmodel"
	"segscale/internal/nn"
	"segscale/internal/tensor"
	"segscale/internal/topology"
	"segscale/internal/transport"
)

// newRuntime is the test-side shorthand for the error-returning
// constructor: inside transport.Run rank goroutines a panic is the
// failure channel (re-raised on the test goroutine by Run's contract).
func newRuntime(c *transport.Comm, mach topology.Machine, cfg Config) *Runtime {
	rt, err := NewRuntime(c, mach, cfg)
	if err != nil {
		panic(err)
	}
	return rt
}

func TestDefaultConfig(t *testing.T) {
	c := Default()
	if c.FusionThreshold != 64<<20 {
		t.Errorf("default fusion threshold %d", c.FusionThreshold)
	}
	if c.CycleTime != 5*time.Millisecond {
		t.Errorf("default cycle time %v", c.CycleTime)
	}
	if c.Hierarchical || c.ResponseCache {
		t.Error("defaults should be flat, uncached")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	c := Default()
	c.CycleTime = 0
	if c.Validate() == nil {
		t.Error("zero cycle time accepted")
	}
	c = Default()
	c.FusionThreshold = -1
	if c.Validate() == nil {
		t.Error("negative threshold accepted")
	}
}

func TestEnvRoundTrip(t *testing.T) {
	c := Default()
	c.FusionThreshold = 128 << 20
	c.CycleTime = 3500 * time.Microsecond
	c.Hierarchical = true
	c.ResponseCache = true
	env := c.Env()
	d := Default()
	if err := d.ApplyEnv(env); err != nil {
		t.Fatal(err)
	}
	if d.FusionThreshold != c.FusionThreshold || d.CycleTime != c.CycleTime ||
		d.Hierarchical != c.Hierarchical || d.ResponseCache != c.ResponseCache {
		t.Fatalf("round trip: %+v vs %+v", d, c)
	}
}

func TestApplyEnvErrors(t *testing.T) {
	c := Default()
	for _, bad := range []string{"NOEQ", "HOROVOD_CYCLE_TIME=zero", "HOROVOD_CYCLE_TIME=-1", "HOROVOD_FUSION_THRESHOLD=x", "HOROVOD_CACHE_CAPACITY=-2"} {
		if err := c.ApplyEnv([]string{bad}); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
	if err := c.ApplyEnv([]string{"UNRELATED=1"}); err != nil {
		t.Errorf("unknown var rejected: %v", err)
	}
}

func TestResolveAlgorithm(t *testing.T) {
	c := Default()
	if c.ResolveAlgorithm() != netmodel.AlgAuto {
		t.Error("default should defer to the library (auto)")
	}
	c.Hierarchical = true
	if c.ResolveAlgorithm() != netmodel.AlgHierLeader {
		t.Error("hierarchical should resolve to the leader variant")
	}
}

func TestPlanFusionBasic(t *testing.T) {
	sizes := []int{10, 10, 10, 10}
	groups := PlanFusion(sizes, 25)
	if len(groups) != 2 || len(groups[0]) != 2 || len(groups[1]) != 2 {
		t.Fatalf("groups = %v", groups)
	}
}

func TestPlanFusionOversizedTensor(t *testing.T) {
	groups := PlanFusion([]int{100, 5, 5}, 20)
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	if len(groups[0]) != 1 || groups[0][0] != 0 {
		t.Fatalf("oversized tensor not isolated: %v", groups)
	}
}

func TestPlanFusionDisabled(t *testing.T) {
	groups := PlanFusion([]int{1, 2, 3}, 0)
	if len(groups) != 3 {
		t.Fatalf("fusion disabled should yield singletons: %v", groups)
	}
}

func TestPlanFusionNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative size accepted")
		}
	}()
	PlanFusion([]int{-1}, 10)
}

// Properties: groups cover all indices exactly once, in order, and no
// multi-tensor group exceeds the threshold.
func TestPropertyPlanFusion(t *testing.T) {
	f := func(raw []uint16, th uint32) bool {
		sizes := make([]int, len(raw))
		for i, r := range raw {
			sizes[i] = int(r)
		}
		threshold := int(th % 5000)
		groups := PlanFusion(sizes, threshold)
		next := 0
		for _, g := range groups {
			if len(g) == 0 {
				return false
			}
			for _, i := range g {
				if i != next {
					return false
				}
				next++
			}
			if threshold > 0 && len(g) > 1 && GroupBytes(sizes, g) > threshold {
				return false
			}
		}
		return next == len(sizes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// makeParams builds identical-shape params with rank-dependent grads.
func makeParams(rank int, shapes []int) []*nn.Param {
	var out []*nn.Param
	rng := rand.New(rand.NewSource(int64(rank) + 100))
	for i, n := range shapes {
		w := tensor.New(n)
		p := &nn.Param{Name: string(rune('a' + i)), W: w, G: tensor.New(n)}
		for j := range p.G.Data {
			p.G.Data[j] = float32(rng.NormFloat64())
		}
		out = append(out, p)
	}
	return out
}

func testAllreduceGradsWithConfig(t *testing.T, cfg Config, world int) {
	t.Helper()
	shapes := []int{7, 129, 3, 64, 1}
	// Expected average.
	expect := make([][]float32, len(shapes))
	for i, n := range shapes {
		expect[i] = make([]float32, n)
	}
	for r := 0; r < world; r++ {
		ps := makeParams(r, shapes)
		for i, p := range ps {
			for j, v := range p.G.Data {
				expect[i][j] += v / float32(world)
			}
		}
	}
	mach := topology.ForGPUs(world)
	results := make([][][]float32, world)
	err := transport.Run(world, func(c *transport.Comm) error {
		rt := newRuntime(c, mach, cfg)
		ps := makeParams(c.Rank(), shapes)
		if err := rt.AllreduceGrads(ps); err != nil {
			return err
		}
		grads := make([][]float32, len(ps))
		for i, p := range ps {
			grads[i] = append([]float32(nil), p.G.Data...)
		}
		results[c.Rank()] = grads
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < world; r++ {
		for i := range shapes {
			for j := range expect[i] {
				if d := math.Abs(float64(results[r][i][j] - expect[i][j])); d > 1e-4 {
					t.Fatalf("cfg %+v rank %d tensor %d[%d]: %g vs %g", cfg, r, i, j, results[r][i][j], expect[i][j])
				}
			}
		}
	}
}

func TestAllreduceGradsAverages(t *testing.T) {
	testAllreduceGradsWithConfig(t, Default(), 4)
}

func TestAllreduceGradsTinyFusionBuffers(t *testing.T) {
	cfg := Default()
	cfg.FusionThreshold = 64 // bytes → many groups
	testAllreduceGradsWithConfig(t, cfg, 3)
}

func TestAllreduceGradsNoFusion(t *testing.T) {
	cfg := Default()
	cfg.FusionThreshold = 0
	testAllreduceGradsWithConfig(t, cfg, 2)
}

func TestAllreduceGradsHierarchical(t *testing.T) {
	cfg := Default()
	cfg.Hierarchical = true
	testAllreduceGradsWithConfig(t, cfg, 6) // one full node
	testAllreduceGradsWithConfig(t, cfg, 12)
}

func TestAllreduceGradsRecursiveDoubling(t *testing.T) {
	cfg := Default()
	cfg.Algorithm = netmodel.AlgRecursiveDoubling
	testAllreduceGradsWithConfig(t, cfg, 5)
}

func TestAllreduceGradsFP16Compression(t *testing.T) {
	// With compression the averages must agree within binary16
	// precision (~2⁻¹⁰ relative).
	world := 3
	shapes := []int{64, 7}
	expect := make([][]float32, len(shapes))
	for i, n := range shapes {
		expect[i] = make([]float32, n)
	}
	for r := 0; r < world; r++ {
		ps := makeParams(r, shapes)
		for i, p := range ps {
			for j, v := range p.G.Data {
				expect[i][j] += v / float32(world)
			}
		}
	}
	cfg := Default()
	cfg.FP16Compression = true
	mach := topology.ForGPUs(world)
	results := make([][][]float32, world)
	err := transport.Run(world, func(c *transport.Comm) error {
		rt := newRuntime(c, mach, cfg)
		ps := makeParams(c.Rank(), shapes)
		if err := rt.AllreduceGrads(ps); err != nil {
			return err
		}
		grads := make([][]float32, len(ps))
		for i, p := range ps {
			grads[i] = append([]float32(nil), p.G.Data...)
		}
		results[c.Rank()] = grads
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < world; r++ {
		for i := range shapes {
			for j := range expect[i] {
				got := float64(results[r][i][j])
				want := float64(expect[i][j])
				if d := math.Abs(got - want); d > 2e-3*(1+math.Abs(want)) {
					t.Fatalf("rank %d tensor %d[%d]: %g vs %g (beyond fp16 tolerance)", r, i, j, got, want)
				}
			}
		}
	}
}

func TestSingleRankNoop(t *testing.T) {
	err := transport.Run(1, func(c *transport.Comm) error {
		rt := newRuntime(c, topology.ForGPUs(1), Default())
		ps := makeParams(0, []int{4})
		orig := append([]float32(nil), ps[0].G.Data...)
		if err := rt.AllreduceGrads(ps); err != nil {
			return err
		}
		for i := range orig {
			if ps[0].G.Data[i] != orig[i] {
				t.Error("single-rank allreduce changed gradients")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastParams(t *testing.T) {
	world := 4
	mach := topology.ForGPUs(world)
	results := make([][]float32, world)
	err := transport.Run(world, func(c *transport.Comm) error {
		rt := newRuntime(c, mach, Default())
		w := tensor.New(16)
		for i := range w.Data {
			w.Data[i] = float32(c.Rank()*100 + i)
		}
		ps := []*nn.Param{{Name: "w", W: w, G: tensor.New(16)}}
		if err := rt.BroadcastParams(ps); err != nil {
			return err
		}
		results[c.Rank()] = append([]float32(nil), w.Data...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < world; r++ {
		for i := range results[0] {
			if results[r][i] != results[0][i] {
				t.Fatalf("rank %d differs after broadcast", r)
			}
		}
		if results[r][3] != 3 { // rank 0's values
			t.Fatalf("broadcast did not come from rank 0: %v", results[r][:4])
		}
	}
}

func TestAllreduceScalarAndCounts(t *testing.T) {
	world := 3
	mach := topology.ForGPUs(world)
	scalars := make([]float64, world)
	counts := make([][]int64, world)
	err := transport.Run(world, func(c *transport.Comm) error {
		rt := newRuntime(c, mach, Default())
		mean, err := rt.AllreduceScalar(float64(c.Rank() + 1))
		if err != nil {
			return err
		}
		scalars[c.Rank()] = mean
		cnt := []int64{int64(c.Rank()), 10}
		if err := rt.AllreduceCounts(cnt); err != nil {
			return err
		}
		counts[c.Rank()] = cnt
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < world; r++ {
		if math.Abs(scalars[r]-2) > 1e-6 { // mean of 1,2,3
			t.Fatalf("scalar mean %g", scalars[r])
		}
		if counts[r][0] != 3 || counts[r][1] != 30 {
			t.Fatalf("counts %v", counts[r])
		}
	}
}

func TestAllgatherAndBroadcast(t *testing.T) {
	world := 4
	mach := topology.ForGPUs(world)
	gathered := make([][][]float32, world)
	bcast := make([][]float32, world)
	err := transport.Run(world, func(c *transport.Comm) error {
		rt := newRuntime(c, mach, Default())
		local := []float32{float32(c.Rank()), float32(c.Rank() * 10)}
		shards, err := rt.Allgather(local)
		if err != nil {
			return err
		}
		gathered[c.Rank()] = shards

		buf := []float32{float32(c.Rank() + 100)}
		if err := rt.Broadcast(buf); err != nil {
			return err
		}
		bcast[c.Rank()] = buf
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < world; r++ {
		if len(gathered[r]) != world {
			t.Fatalf("rank %d gathered %d shards", r, len(gathered[r]))
		}
		for src := 0; src < world; src++ {
			got := gathered[r][src]
			if got[0] != float32(src) || got[1] != float32(src*10) {
				t.Fatalf("rank %d shard %d = %v", r, src, got)
			}
		}
		if bcast[r][0] != 100 {
			t.Fatalf("rank %d broadcast got %v, want rank 0's 100", r, bcast[r])
		}
	}
}

func TestRuntimeWorldMismatchErrors(t *testing.T) {
	err := transport.Run(2, func(c *transport.Comm) error {
		if _, err := NewRuntime(c, topology.ForGPUs(6), Default()); err == nil {
			t.Error("mismatched machine accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRuntimeBadConfigErrors(t *testing.T) {
	err := transport.Run(1, func(c *transport.Comm) error {
		cfg := Default()
		cfg.CycleTime = 0
		if _, err := NewRuntime(c, topology.ForGPUs(1), cfg); err == nil {
			t.Error("invalid config accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
