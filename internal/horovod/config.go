// Package horovod reimplements the pieces of Horovod's runtime that
// the paper tunes: the knob set (fusion threshold, cycle time,
// hierarchical allreduce), the tensor-fusion planner, and a real
// data-carrying runtime that fuses gradient tensors and allreduces
// them over internal/collective — the code path the distributed
// training accuracy experiment exercises. The time-domain behaviour
// of the same machinery (negotiation cycles, fusion-buffer memcpy,
// overlap) is simulated by internal/perfsim using this package's
// planner.
package horovod

import (
	"fmt"
	"strconv"
	"time"

	"segscale/internal/netmodel"
)

// Config is the Horovod knob set, named after the real environment
// variables.
type Config struct {
	// FusionThreshold (HOROVOD_FUSION_THRESHOLD) caps the fused
	// buffer size in bytes. 0 disables fusion (per-tensor allreduce).
	FusionThreshold int
	// CycleTime (HOROVOD_CYCLE_TIME) is the background-loop period.
	CycleTime time.Duration
	// Hierarchical (HOROVOD_HIERARCHICAL_ALLREDUCE) switches to the
	// node-leader hierarchy.
	Hierarchical bool
	// Algorithm picks the allreduce shape the MPI layer uses for
	// fused buffers. AlgAuto defers to the library's size-based
	// choice; Hierarchical overrides it with the leader hierarchy.
	Algorithm netmodel.Algorithm
	// ResponseCache (HOROVOD_CACHE_CAPACITY > 0) skips re-negotiating
	// tensors seen in earlier steps, shrinking coordinator work.
	ResponseCache bool
	// FP16Compression mirrors hvd.Compression.fp16 passed to the
	// DistributedOptimizer: gradients are cast to binary16 before the
	// allreduce, halving wire volume at a precision cost. (A Python
	// argument in real Horovod, not an environment variable, so Env
	// does not render it.)
	FP16Compression bool
	// BackwardPassesPerStep mirrors hvd.DistributedOptimizer's
	// backward_passes_per_step: gradients from this many backward
	// passes accumulate locally before one allreduce, trading
	// communication frequency for effective batch size. 0/1 means
	// every pass communicates.
	BackwardPassesPerStep int
}

// Default returns Horovod 0.16-era defaults: 64 MiB fusion buffer,
// 5 ms cycle, flat (non-hierarchical) allreduce, no response cache.
func Default() Config {
	return Config{
		FusionThreshold: 64 << 20,
		CycleTime:       5 * time.Millisecond,
		Hierarchical:    false,
		Algorithm:       netmodel.AlgAuto,
		ResponseCache:   false,
	}
}

// Validate checks the knobs.
func (c Config) Validate() error {
	if c.FusionThreshold < 0 {
		return fmt.Errorf("horovod: negative fusion threshold %d", c.FusionThreshold)
	}
	if c.CycleTime <= 0 {
		return fmt.Errorf("horovod: non-positive cycle time %v", c.CycleTime)
	}
	if c.BackwardPassesPerStep < 0 {
		return fmt.Errorf("horovod: negative backward passes per step")
	}
	return nil
}

// AccumPasses returns the effective accumulation count (≥1).
func (c Config) AccumPasses() int {
	if c.BackwardPassesPerStep <= 1 {
		return 1
	}
	return c.BackwardPassesPerStep
}

// ResolveAlgorithm returns the collective shape fused buffers use.
func (c Config) ResolveAlgorithm() netmodel.Algorithm {
	if c.Hierarchical {
		return netmodel.AlgHierLeader
	}
	return c.Algorithm
}

// Env renders the configuration as HOROVOD_* variable assignments.
func (c Config) Env() []string {
	h := "0"
	if c.Hierarchical {
		h = "1"
	}
	cache := "0"
	if c.ResponseCache {
		cache = "1024"
	}
	return []string{
		"HOROVOD_CACHE_CAPACITY=" + cache,
		"HOROVOD_CYCLE_TIME=" + strconv.FormatFloat(float64(c.CycleTime)/float64(time.Millisecond), 'g', -1, 64),
		"HOROVOD_FUSION_THRESHOLD=" + strconv.Itoa(c.FusionThreshold),
		"HOROVOD_HIERARCHICAL_ALLREDUCE=" + h,
	}
}

// ApplyEnv overrides knobs from HOROVOD_* assignments (unknown
// variables ignored, malformed values error). HOROVOD_CYCLE_TIME is
// in milliseconds, as in real Horovod.
func (c *Config) ApplyEnv(assignments []string) error {
	for _, a := range assignments {
		var key, val string
		for i := 0; i < len(a); i++ {
			if a[i] == '=' {
				key, val = a[:i], a[i+1:]
				break
			}
		}
		if key == "" {
			return fmt.Errorf("horovod: malformed assignment %q", a)
		}
		switch key {
		case "HOROVOD_FUSION_THRESHOLD":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return fmt.Errorf("horovod: bad %s=%q", key, val)
			}
			c.FusionThreshold = n
		case "HOROVOD_CYCLE_TIME":
			ms, err := strconv.ParseFloat(val, 64)
			if err != nil || ms <= 0 {
				return fmt.Errorf("horovod: bad %s=%q", key, val)
			}
			c.CycleTime = time.Duration(ms * float64(time.Millisecond))
		case "HOROVOD_HIERARCHICAL_ALLREDUCE":
			c.Hierarchical = val == "1"
		case "HOROVOD_CACHE_CAPACITY":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return fmt.Errorf("horovod: bad %s=%q", key, val)
			}
			c.ResponseCache = n > 0
		}
	}
	return nil
}
