package horovod

import (
	"math"
	"testing"

	"segscale/internal/topology"
	"segscale/internal/transport"
)

// TestMetamorphicFusionGrouping: the fusion threshold is a
// performance knob, not a numerics knob. Averaged gradients must
// agree — within float32 reassociation tolerance — no matter how the
// planner groups tensors into fused buffers: unfused (threshold 0),
// tiny buffers that split every tensor apart, a mid-size threshold
// that packs a few tensors per buffer, and the default that fuses
// everything into one.
func TestMetamorphicFusionGrouping(t *testing.T) {
	const world = 4
	shapes := []int{7, 129, 3, 64, 1, 255, 31}
	thresholds := []int{0, 64, 600, 64 << 20}

	run := func(threshold int) [][][]float32 {
		cfg := Default()
		cfg.FusionThreshold = threshold
		mach := topology.ForGPUs(world)
		results := make([][][]float32, world)
		err := transport.Run(world, func(c *transport.Comm) error {
			rt := newRuntime(c, mach, cfg)
			ps := makeParams(c.Rank(), shapes)
			if err := rt.AllreduceGrads(ps); err != nil {
				return err
			}
			grads := make([][]float32, len(ps))
			for i, p := range ps {
				grads[i] = append([]float32(nil), p.G.Data...)
			}
			results[c.Rank()] = grads
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return results
	}

	base := run(thresholds[0])
	for _, th := range thresholds[1:] {
		got := run(th)
		for r := 0; r < world; r++ {
			for i := range shapes {
				for j := range base[r][i] {
					d := math.Abs(float64(got[r][i][j] - base[r][i][j]))
					if d > 1e-5 {
						t.Fatalf("threshold %d rank %d tensor %d[%d]: %g vs %g (diff %g)",
							th, r, i, j, got[r][i][j], base[r][i][j], d)
					}
				}
			}
		}
	}
}
