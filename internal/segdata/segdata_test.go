package segdata

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	d := New(10, 32, 32, 7)
	img1, lbl1 := d.Sample(3)
	img2, lbl2 := d.Sample(3)
	for i := range img1.Data {
		if img1.Data[i] != img2.Data[i] {
			t.Fatal("image not deterministic")
		}
	}
	for i := range lbl1 {
		if lbl1[i] != lbl2[i] {
			t.Fatal("labels not deterministic")
		}
	}
}

func TestSamplesDiffer(t *testing.T) {
	d := New(10, 32, 32, 7)
	_, lbl0 := d.Sample(0)
	_, lbl1 := d.Sample(1)
	same := true
	for i := range lbl0 {
		if lbl0[i] != lbl1[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different samples produced identical labels")
	}
}

func TestLabelsValid(t *testing.T) {
	d := New(20, 33, 33, 11)
	for i := 0; i < d.Len(); i++ {
		_, lbl := d.Sample(i)
		hasObject := false
		for _, l := range lbl {
			if l != IgnoreLabel && (l < 0 || l >= NumClasses) {
				t.Fatalf("sample %d: label %d out of range", i, l)
			}
			if l > 0 && l != IgnoreLabel {
				hasObject = true
			}
		}
		if !hasObject {
			t.Errorf("sample %d has no object pixels", i)
		}
	}
}

func TestImageValuesBounded(t *testing.T) {
	d := New(5, 32, 32, 3)
	for i := 0; i < d.Len(); i++ {
		img, _ := d.Sample(i)
		if img.MaxAbs() > 2.5 {
			t.Fatalf("sample %d has extreme pixel %g", i, img.MaxAbs())
		}
	}
}

func TestObjectPixelsCarryClassColour(t *testing.T) {
	// The task must be learnable: object pixels should be closer to
	// their class's palette colour than background pixels are.
	d := New(30, 32, 32, 5)
	matches, total := 0, 0
	for i := 0; i < d.Len(); i++ {
		img, lbl := d.Sample(i)
		for p, l := range lbl {
			if l <= 0 || l == IgnoreLabel {
				continue
			}
			col := Palette(int(l))
			var dist float64
			for ch := 0; ch < 3; ch++ {
				dv := float64(img.Data[ch*32*32+p] - col[ch])
				dist += dv * dv
			}
			total++
			if dist < 0.5 {
				matches++
			}
		}
	}
	if total == 0 {
		t.Fatal("no object pixels at all")
	}
	if frac := float64(matches) / float64(total); frac < 0.8 {
		t.Fatalf("only %.2f of object pixels near class colour", frac)
	}
}

func TestVoidBoundaryPresent(t *testing.T) {
	d := New(20, 32, 32, 9)
	found := false
	for i := 0; i < d.Len() && !found; i++ {
		_, lbl := d.Sample(i)
		for _, l := range lbl {
			if l == IgnoreLabel {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no void boundary pixels in any sample")
	}
	d.VoidBoundary = false
	for i := 0; i < d.Len(); i++ {
		_, lbl := d.Sample(i)
		for _, l := range lbl {
			if l == IgnoreLabel {
				t.Fatal("void pixels with VoidBoundary disabled")
			}
		}
	}
}

func TestBatchLayout(t *testing.T) {
	d := New(10, 16, 16, 1)
	x, labels := d.Batch([]int{2, 5})
	if x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 16 || x.Dim(3) != 16 {
		t.Fatalf("batch shape %v", x.Shape)
	}
	if len(labels) != 2*16*16 {
		t.Fatalf("labels length %d", len(labels))
	}
	img, lbl := d.Sample(5)
	for i := range img.Data {
		if x.Data[3*16*16+i] != img.Data[i] {
			t.Fatal("second batch element mismatch")
		}
	}
	for i := range lbl {
		if labels[16*16+i] != lbl[i] {
			t.Fatal("second batch labels mismatch")
		}
	}
}

func TestShardIDsPartition(t *testing.T) {
	n, world := 103, 6
	seen := map[int]int{}
	for r := 0; r < world; r++ {
		for _, id := range ShardIDs(n, world, r) {
			seen[id]++
		}
	}
	if len(seen) != n {
		t.Fatalf("shards cover %d of %d", len(seen), n)
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("sample %d appears %d times", id, c)
		}
	}
}

func TestShardIDsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad shard accepted")
		}
	}()
	ShardIDs(10, 4, 4)
}

// Property: shard sizes differ by at most one.
func TestPropertyShardBalance(t *testing.T) {
	f := func(nn, ww uint8) bool {
		n := int(nn) + 1
		world := int(ww)%8 + 1
		minSz, maxSz := n+1, -1
		for r := 0; r < world; r++ {
			sz := len(ShardIDs(n, world, r))
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
		}
		return maxSz-minSz <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFlipHoriz(t *testing.T) {
	d := New(4, 16, 16, 2)
	x, labels := d.Batch([]int{0, 1})
	origX := append([]float32(nil), x.Data...)
	origL := append([]int32(nil), labels...)
	FlipHoriz(x, labels)
	// Double flip restores.
	FlipHoriz(x, labels)
	for i := range origX {
		if x.Data[i] != origX[i] {
			t.Fatal("double flip did not restore image")
		}
	}
	for i := range origL {
		if labels[i] != origL[i] {
			t.Fatal("double flip did not restore labels")
		}
	}
	// Single flip mirrors: position (y,x) ↔ (y,w−1−x).
	FlipHoriz(x, labels)
	w := 16
	for y := 0; y < 16; y++ {
		for xx := 0; xx < w; xx++ {
			if labels[y*w+xx] != origL[y*w+(w-1-xx)] {
				t.Fatal("flip mirrored labels incorrectly")
			}
		}
	}
}

func TestUrbanStyle(t *testing.T) {
	d := New(10, 32, 32, 4)
	d.Style = StyleUrban
	sawSky, sawBuilding, sawRoad, sawObject := false, false, false, false
	for i := 0; i < d.Len(); i++ {
		img, lbl := d.Sample(i)
		if img.MaxAbs() > 2.5 {
			t.Fatal("extreme pixels in urban scene")
		}
		for p, l := range lbl {
			switch l {
			case urbanSky:
				sawSky = true
				// Sky only in the upper half.
				if p/32 > 16 {
					t.Fatalf("sample %d: sky at row %d", i, p/32)
				}
			case urbanBuilding:
				sawBuilding = true
			case urbanRoad:
				sawRoad = true
			case urbanCar, urbanPerson:
				sawObject = true
			}
		}
	}
	if !sawSky || !sawBuilding || !sawRoad || !sawObject {
		t.Fatalf("urban scenes incomplete: sky=%v building=%v road=%v obj=%v",
			sawSky, sawBuilding, sawRoad, sawObject)
	}
	// Determinism holds for the style too.
	_, a := d.Sample(3)
	_, b := d.Sample(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("urban style not deterministic")
		}
	}
}

func TestUrbanTrainable(t *testing.T) {
	// The bands are large and colour-coded: labels must be dominated
	// by the three band classes (a sanity check that the task is
	// learnable structure, not noise).
	d := New(5, 32, 32, 8)
	d.Style = StyleUrban
	var band, total int
	for i := 0; i < d.Len(); i++ {
		_, lbl := d.Sample(i)
		for _, l := range lbl {
			total++
			if l == urbanSky || l == urbanBuilding || l == urbanRoad {
				band++
			}
		}
	}
	if float64(band)/float64(total) < 0.6 {
		t.Fatalf("band classes only %.2f of pixels", float64(band)/float64(total))
	}
}

func TestRandomScaleCrop(t *testing.T) {
	d := New(4, 24, 24, 6)
	rng := rand.New(rand.NewSource(1))
	x, labels := d.Batch([]int{0, 1})
	origShape := append([]int(nil), x.Shape...)
	RandomScaleCrop(rng, x, labels, 0.75, 1.5)
	for i, dim := range origShape {
		if x.Dim(i) != dim {
			t.Fatal("augmentation changed batch shape")
		}
	}
	// Labels stay categorical and in range.
	for _, l := range labels {
		if l != IgnoreLabel && (l < 0 || l >= NumClasses) {
			t.Fatalf("label %d out of range after augmentation", l)
		}
	}
	// Pixel values stay bounded (bilinear is a convex combination).
	if x.MaxAbs() > 2.5 {
		t.Fatalf("augmented pixels out of range: %g", x.MaxAbs())
	}
	// Identity scale range is a no-op geometrically (labels equal).
	x2, labels2 := d.Batch([]int{0})
	before := append([]int32(nil), labels2...)
	RandomScaleCrop(rng, x2, labels2, 1.0, 1.0)
	for i := range before {
		if labels2[i] != before[i] {
			t.Fatal("unit-scale augmentation moved labels")
		}
	}
}

func TestRandomScaleCropValidation(t *testing.T) {
	d := New(2, 16, 16, 1)
	x, labels := d.Batch([]int{0})
	defer func() {
		if recover() == nil {
			t.Error("bad scale range accepted")
		}
	}()
	RandomScaleCrop(rand.New(rand.NewSource(1)), x, labels, 2, 1)
}

func TestClassNamesComplete(t *testing.T) {
	if ClassNames[0] != "background" || ClassNames[15] != "person" {
		t.Fatal("VOC class order wrong")
	}
	for i, n := range ClassNames {
		if n == "" {
			t.Fatalf("class %d unnamed", i)
		}
	}
}

func TestGeometryValidation(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 32, 32, 1) },
		func() { New(5, 4, 32, 1) },
		func() { New(5, 32, 32, 1).Sample(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry accepted")
				}
			}()
			f()
		}()
	}
}
