// Package segdata generates the synthetic stand-in for PASCAL VOC
// 2012: deterministic 21-class scenes of textured geometric objects
// over a noisy background, with VOC's class list, void label (255) on
// object boundaries, Horovod-style shard-by-rank splitting, and the
// augmentations DeepLab trains with (random flip and crop).
//
// The substitution (documented in DESIGN.md) keeps the accuracy
// experiment end-to-end real: the model must genuinely learn a
// pixel-labelling function; only the imagery is synthetic.
package segdata

import (
	"fmt"
	"math/rand"

	"segscale/internal/tensor"
)

// NumClasses matches PASCAL VOC: background + 20 object classes.
const NumClasses = 21

// IgnoreLabel is VOC's void label for unlabelled pixels (object
// contours).
const IgnoreLabel int32 = 255

// ClassNames lists the VOC 2012 classes in canonical order.
var ClassNames = [NumClasses]string{
	"background", "aeroplane", "bicycle", "bird", "boat", "bottle",
	"bus", "car", "cat", "chair", "cow", "diningtable", "dog", "horse",
	"motorbike", "person", "pottedplant", "sheep", "sofa", "train",
	"tvmonitor",
}

// palette assigns each class a distinctive (learnable) RGB signature
// in [-1, 1] — the synthetic analogue of class appearance. Classes
// take well-separated points of a 3-level RGB grid (27 ≥ 21 combos),
// skipping the grey diagonal the background occupies.
var palette [NumClasses][3]float32

func init() {
	levels := [3]float32{-0.8, 0, 0.8}
	c := 1
	for i := 0; i < 27 && c < NumClasses; i++ {
		r, g, b := i/9, (i/3)%3, i%3
		if r == g && g == b {
			continue // grey diagonal: too close to the background
		}
		palette[c] = [3]float32{levels[r], levels[g], levels[b]}
		c++
	}
}

// Palette returns class c's RGB signature.
func Palette(c int) [3]float32 { return palette[c] }

// Style selects the scene generator.
type Style int

const (
	// StyleVOC scatters geometric objects on a textured background
	// (the default, PASCAL-VOC-like).
	StyleVOC Style = iota
	// StyleUrban builds driving-scene-like layouts: horizontal sky /
	// building / road bands with vehicles and pedestrians on the road
	// — a Cityscapes-flavoured variant for generality experiments.
	StyleUrban
)

// Urban-scene band classes reuse VOC labels with road-scene roles.
const (
	urbanSky      = 1  // "aeroplane" colour plays the sky
	urbanBuilding = 19 // "train" colour plays the building band
	urbanRoad     = 0  // background plays the road
	urbanCar      = 7  // car
	urbanPerson   = 15 // person
)

// Dataset is a deterministic synthetic segmentation dataset: sample i
// is always the same scene for a given (seed, geometry).
type Dataset struct {
	N          int
	H, W       int
	Seed       int64
	MaxObjects int
	NoiseStd   float64
	Style      Style
	// VoidBoundary draws a 1-pixel ignore ring around objects, like
	// VOC's contour annotations.
	VoidBoundary bool
}

// New creates a dataset of n H×W scenes.
func New(n, h, w int, seed int64) *Dataset {
	if n <= 0 || h < 8 || w < 8 {
		panic(fmt.Sprintf("segdata: bad geometry n=%d %dx%d", n, h, w))
	}
	return &Dataset{N: n, H: h, W: w, Seed: seed, MaxObjects: 3, NoiseStd: 0.12, VoidBoundary: true}
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return d.N }

// Sample renders scene i: a [3,H,W] image and its H·W label map.
func (d *Dataset) Sample(i int) (*tensor.Tensor, []int32) {
	img := tensor.New(3, d.H, d.W)
	label := make([]int32, d.H*d.W)
	d.SampleInto(i, img, label)
	return img, label
}

// SampleInto renders scene i into caller-owned buffers: img must be a
// [3,H,W] tensor (its contents are fully overwritten) and label must
// hold H·W entries. The pooled evaluation path reuses one set of
// buffers across every batch; rendering is a pure function of
// (seed, i), so reuse cannot change the pixels produced.
func (d *Dataset) SampleInto(i int, img *tensor.Tensor, label []int32) {
	if i < 0 || i >= d.N {
		panic(fmt.Sprintf("segdata: sample %d of %d", i, d.N))
	}
	if len(img.Data) != 3*d.H*d.W || len(label) != d.H*d.W {
		panic(fmt.Sprintf("segdata: sample buffers %d/%d for %dx%d", len(img.Data), len(label), d.H, d.W))
	}
	rng := rand.New(rand.NewSource(d.Seed*1_000_003 + int64(i))) //seglint:ignore hotalloc per-sample deterministic RNG: rendering must stay a pure function of (seed,id) so restored runs replay identical scenes
	// The background pass overwrites every image value; labels start
	// from "all background" by contract, so clear any reused buffer.
	for p := range label {
		label[p] = 0
	}

	if d.Style == StyleUrban {
		d.renderUrban(rng, img, label)
		return
	}

	// Textured background (class 0): low-amplitude grey noise.
	for ch := 0; ch < 3; ch++ {
		base := float32(rng.Float64()*0.3 - 0.15)
		for p := 0; p < d.H*d.W; p++ {
			img.Data[ch*d.H*d.W+p] = base + float32(rng.NormFloat64()*d.NoiseStd)
		}
	}

	nObj := 1 + rng.Intn(d.MaxObjects)
	for o := 0; o < nObj; o++ {
		class := 1 + rng.Intn(NumClasses-1)
		d.drawObject(rng, img, label, class)
	}
}

// renderUrban paints the driving-scene layout: a sky band, a building
// band, a road band, and cars/persons on the road.
func (d *Dataset) renderUrban(rng *rand.Rand, img *tensor.Tensor, label []int32) {
	h, w := d.H, d.W
	horizon := h/4 + rng.Intn(h/4)           // sky ends here
	roadTop := horizon + h/6 + rng.Intn(h/6) // buildings end here
	d.fillBand(rng, img, label, 0, horizon, urbanSky)
	d.fillBand(rng, img, label, horizon, roadTop, urbanBuilding)
	d.fillBand(rng, img, label, roadTop, h, urbanRoad) // road = background class (dark)

	// Vehicles and pedestrians sit on the road band.
	nObj := 1 + rng.Intn(d.MaxObjects)
	for o := 0; o < nObj; o++ {
		class := urbanCar
		if rng.Intn(2) == 1 {
			class = urbanPerson
		}
		cy := roadTop + rng.Intn(max(1, h-roadTop))
		cx := rng.Intn(w)
		r := 2 + rng.Intn(max(2, (h-roadTop)/3))
		col := Palette(class)
		for y := cy - r; y <= cy+r; y++ {
			if y < roadTop || y >= h {
				continue
			}
			halfW := r
			if class == urbanPerson {
				halfW = max(1, r/3) // persons are tall and narrow
			}
			for x := cx - halfW; x <= cx+halfW; x++ {
				if x < 0 || x >= w {
					continue
				}
				p := y*w + x
				label[p] = int32(class)
				for ch := 0; ch < 3; ch++ {
					img.Data[ch*h*w+p] = col[ch] + float32(rng.NormFloat64()*d.NoiseStd)
				}
			}
		}
	}
}

// fillBand paints rows [y0,y1) with the class's palette colour plus
// grey noise. A method rather than a closure in renderUrban so the
// urban render path stays free of per-scene closure allocations.
func (d *Dataset) fillBand(rng *rand.Rand, img *tensor.Tensor, label []int32, y0, y1, class int) {
	h, w := d.H, d.W
	col := Palette(class)
	for y := y0; y < y1; y++ {
		for x := 0; x < w; x++ {
			p := y*w + x
			label[p] = int32(class)
			for ch := 0; ch < 3; ch++ {
				img.Data[ch*h*w+p] = col[ch] + float32(rng.NormFloat64()*d.NoiseStd)
			}
		}
	}
}

// objInside reports whether pixel (y,x) falls inside an object of the
// given shape centred at (cy,cx) with radius r. A plain function
// rather than drawObject's former closure: the rasteriser calls it per
// pixel, and a capturing closure would cost one heap allocation per
// object drawn.
func objInside(shape, cy, cx, r, y, x int) bool {
	dy, dx := y-cy, x-cx
	switch shape {
	case 0: // circle
		return dy*dy+dx*dx <= r*r
	case 1: // rectangle
		return abs(dy) <= r && abs(dx) <= r*3/2
	default: // triangle (downward)
		return dy >= -r && dy <= r && abs(dx) <= (r-dy+1)/2+1
	}
}

// drawObject rasterises one object of the class's characteristic
// shape (classes cycle circle/rectangle/triangle) and colour.
func (d *Dataset) drawObject(rng *rand.Rand, img *tensor.Tensor, label []int32, class int) {
	h, w := d.H, d.W
	cy := rng.Intn(h)
	cx := rng.Intn(w)
	r := 2 + rng.Intn(max(2, min(h, w)/4))
	col := palette[class]
	shape := class % 3

	lo, hi := -r*2, r*2
	for y := cy + lo; y <= cy+hi; y++ {
		if y < 0 || y >= h {
			continue
		}
		for x := cx + lo; x <= cx+hi; x++ {
			if x < 0 || x >= w || !objInside(shape, cy, cx, r, y, x) {
				continue
			}
			p := y*w + x
			label[p] = int32(class)
			for ch := 0; ch < 3; ch++ {
				img.Data[ch*h*w+p] = col[ch] + float32(rng.NormFloat64()*d.NoiseStd)
			}
		}
	}

	if !d.VoidBoundary {
		return
	}
	// Ignore ring: pixels just outside the object that touch it.
	for y := cy + lo - 1; y <= cy+hi+1; y++ {
		if y < 0 || y >= h {
			continue
		}
		for x := cx + lo - 1; x <= cx+hi+1; x++ {
			if x < 0 || x >= w || objInside(shape, cy, cx, r, y, x) {
				continue
			}
			touches := false
			for _, dd := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				ny, nx := y+dd[0], x+dd[1]
				if ny >= 0 && ny < h && nx >= 0 && nx < w && objInside(shape, cy, cx, r, ny, nx) {
					touches = true
					break
				}
			}
			if touches && label[y*w+x] != int32(class) {
				label[y*w+x] = IgnoreLabel
			}
		}
	}
}

// Batch assembles samples ids into an [N,3,H,W] tensor and a
// concatenated label vector.
func (d *Dataset) Batch(ids []int) (*tensor.Tensor, []int32) {
	n := len(ids)
	x := tensor.New(n, 3, d.H, d.W)
	labels := make([]int32, n*d.H*d.W)
	d.BatchInto(ids, x, labels)
	return x, labels
}

// BatchInto renders samples ids into caller-owned buffers: x must be
// an [N,3,H,W] tensor (typically drawn raw from a workspace — every
// element is overwritten) and labels must hold N·H·W entries. Each
// sample is rendered in place through a view over x's data, so the
// only per-call allocations are the views' small headers.
func (d *Dataset) BatchInto(ids []int, x *tensor.Tensor, labels []int32) {
	n := len(ids)
	per := 3 * d.H * d.W
	if len(x.Data) != n*per || len(labels) != n*d.H*d.W {
		panic(fmt.Sprintf("segdata: batch buffers %d/%d for %d samples of %dx%d",
			len(x.Data), len(labels), n, d.H, d.W))
	}
	for k, id := range ids {
		img := tensor.FromSlice(x.Data[k*per:(k+1)*per], 3, d.H, d.W)
		d.SampleInto(id, img, labels[k*d.H*d.W:(k+1)*d.H*d.W])
	}
}

// ShardIDs returns the sample indices owned by `rank` of `world`
// ranks — the i ≡ rank (mod world) split Horovod's data sharding
// uses, guaranteeing disjoint coverage.
func ShardIDs(n, world, rank int) []int {
	if world <= 0 || rank < 0 || rank >= world {
		panic(fmt.Sprintf("segdata: shard rank %d of %d", rank, world))
	}
	var out []int
	for i := rank; i < n; i += world {
		out = append(out, i)
	}
	return out
}

// FlipHoriz mirrors an image batch and its labels in place along the
// x-axis — the cheapest of DeepLab's augmentations.
func FlipHoriz(x *tensor.Tensor, labels []int32) {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	for i := 0; i < n*c; i++ {
		for y := 0; y < h; y++ {
			row := x.Data[(i*h+y)*w : (i*h+y+1)*w]
			for a, b := 0, w-1; a < b; a, b = a+1, b-1 {
				row[a], row[b] = row[b], row[a]
			}
		}
	}
	for i := 0; i < n; i++ {
		for y := 0; y < h; y++ {
			row := labels[(i*h+y)*w : (i*h+y+1)*w]
			for a, b := 0, w-1; a < b; a, b = a+1, b-1 {
				row[a], row[b] = row[b], row[a]
			}
		}
	}
}

// RandomScaleCrop applies DeepLab's scale-jitter augmentation to a
// batch in place: each sample is bilinearly scaled by a factor drawn
// from [minScale, maxScale] and a same-size window is cropped back
// out (zoom-in crops a random region; zoom-out pads by sampling the
// scaled image's edge via clamping, matching resize semantics).
// Labels use nearest-neighbour resampling to stay categorical.
func RandomScaleCrop(rng *rand.Rand, x *tensor.Tensor, labels []int32, minScale, maxScale float64) {
	if minScale <= 0 || maxScale < minScale {
		panic(fmt.Sprintf("segdata: scale range [%g, %g]", minScale, maxScale))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	// Label scratch shared by every sample in the batch (hoisted out of
	// the per-image loop; the size is the same for all of them).
	src := make([]int32, h*w) //seglint:ignore hotalloc one label scratch per augmentation call, not per image
	for i := 0; i < n; i++ {
		scale := minScale + rng.Float64()*(maxScale-minScale)
		sh := max(8, int(float64(h)*scale))
		sw := max(8, int(float64(w)*scale))

		// Scale the image sample bilinearly.
		one := tensor.FromSlice(x.Data[i*c*h*w:(i+1)*c*h*w], 1, c, h, w)
		scaled := tensor.BilinearResize(one, sh, sw)

		// Crop (or clamp-pad) back to h×w from a random offset.
		offY, offX := 0, 0
		if sh > h {
			offY = rng.Intn(sh - h + 1)
		}
		if sw > w {
			offX = rng.Intn(sw - w + 1)
		}
		for ch := 0; ch < c; ch++ {
			for y := 0; y < h; y++ {
				sy := min(sh-1, y+offY)
				for xx := 0; xx < w; xx++ {
					sx := min(sw-1, xx+offX)
					x.Data[((i*c+ch)*h+y)*w+xx] = scaled.At(0, ch, sy, sx)
				}
			}
		}

		// Nearest-neighbour for the labels, from the same geometry.
		copy(src, labels[i*h*w:(i+1)*h*w])
		for y := 0; y < h; y++ {
			sy := min(sh-1, y+offY)
			// Invert the bilinear mapping (align_corners): scaled
			// row sy came from source row sy·(h−1)/(sh−1).
			oy := 0
			if sh > 1 {
				oy = int(float64(sy)*float64(h-1)/float64(sh-1) + 0.5)
			}
			for xx := 0; xx < w; xx++ {
				sx := min(sw-1, xx+offX)
				ox := 0
				if sw > 1 {
					ox = int(float64(sx)*float64(w-1)/float64(sw-1) + 0.5)
				}
				labels[i*h*w+y*w+xx] = src[oy*w+ox]
			}
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
