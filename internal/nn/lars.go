package nn

// Optimizer is the update-rule contract the trainer drives.
type Optimizer interface {
	// Step applies one update from accumulated gradients.
	Step(params []*Param)
	// SetLR sets the global learning rate for the next step.
	SetLR(lr float64)
	// ExportState returns the optimiser's per-parameter state
	// (momentum velocity) in params order, for checkpointing. A
	// parameter never stepped exports a zero vector.
	ExportState(params []*Param) [][]float32
	// ImportState restores state produced by ExportState; restoring
	// it makes a resumed run continue bit-identically instead of
	// re-warming momentum from zero.
	ImportState(params []*Param, state [][]float32) error
}

// SetLR implements Optimizer for SGD.
func (o *SGD) SetLR(lr float64) { o.LR = lr }

// LARS is Layer-wise Adaptive Rate Scaling (You et al.), the standard
// remedy when the linear-scaling rule's large learning rates
// destabilise large-batch training — the regime the paper's 132-GPU
// weak scaling creates. Each parameter tensor gets a local rate
//
//	local = Trust · ‖w‖ / (‖g‖ + WeightDecay·‖w‖ + ε)
//
// and the momentum update uses local·LR instead of LR.
type LARS struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	Trust       float64
	Eps         float64

	velocity map[*Param][]float32
}

// NewLARS constructs LARS with the conventional defaults
// (momentum 0.9, trust coefficient 0.001 as in the paper's setting of
// You et al., weight decay 4e-5 matching DeepLab).
func NewLARS(lr float64) *LARS {
	return &LARS{
		LR:          lr,
		Momentum:    0.9,
		WeightDecay: 4e-5,
		Trust:       0.001,
		Eps:         1e-9,
		velocity:    map[*Param][]float32{},
	}
}

// SetLR implements Optimizer.
func (o *LARS) SetLR(lr float64) { o.LR = lr }

// Step applies the layer-wise adaptive update. Parameters exempt from
// weight decay (batch-norm scales, biases) fall back to plain
// momentum SGD, as reference implementations do.
func (o *LARS) Step(params []*Param) {
	mom := float32(o.Momentum)
	for _, p := range params {
		vel, ok := o.velocity[p]
		if !ok {
			vel = make([]float32, p.W.Len()) //seglint:ignore hotalloc velocity allocated on first touch of each parameter, then reused every step
			o.velocity[p] = vel
		}
		g := p.G.Data
		w := p.W.Data

		lr := float32(o.LR)
		wd := float32(0)
		if p.Decay {
			wd = float32(o.WeightDecay)
			wNorm := p.W.L2Norm()
			gNorm := p.G.L2Norm()
			denom := gNorm + o.WeightDecay*wNorm + o.Eps
			if wNorm > 0 && denom > 0 {
				local := o.Trust * wNorm / denom
				lr = float32(o.LR * local)
			}
		}
		for i := range w {
			grad := g[i] + wd*w[i]
			vel[i] = mom*vel[i] + lr*grad
			w[i] -= vel[i]
		}
	}
}

// ExportState implements Optimizer.
func (o *LARS) ExportState(params []*Param) [][]float32 {
	return exportVelocity(o.velocity, params)
}

// ImportState implements Optimizer.
func (o *LARS) ImportState(params []*Param, state [][]float32) error {
	return importVelocity(o.velocity, params, state)
}

// TrustRatio reports the local rate LARS would apply to one parameter
// (diagnostic, used in tests and logging).
func (o *LARS) TrustRatio(p *Param) float64 {
	wNorm := p.W.L2Norm()
	gNorm := p.G.L2Norm()
	denom := gNorm + o.WeightDecay*wNorm + o.Eps
	if wNorm == 0 || denom == 0 {
		return 1
	}
	return o.Trust * wNorm / denom
}

var _ Optimizer = (*SGD)(nil)
var _ Optimizer = (*LARS)(nil)

// GlobalGradClip scales all gradients so their global L2 norm does
// not exceed maxNorm (a stability guard large-batch recipes add).
// It returns the pre-clip norm.
func GlobalGradClip(params []*Param, maxNorm float64) float64 {
	norm := GradNorm(params)
	if norm <= maxNorm || norm == 0 {
		return norm
	}
	scale := float32(maxNorm / norm)
	for _, p := range params {
		for i := range p.G.Data {
			p.G.Data[i] *= scale
		}
	}
	return norm
}
