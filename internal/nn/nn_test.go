package nn

import (
	"math"
	"math/rand"
	"testing"

	"segscale/internal/tensor"
)

// lossOf runs a forward pass and reduces with a fixed random mask so
// the scalar loss has nontrivial gradients everywhere.
func lossOf(l Layer, x, mask *tensor.Tensor, train bool) float64 {
	out := l.Forward(x, train)
	s := 0.0
	for i := range out.Data {
		s += float64(out.Data[i] * mask.Data[i])
	}
	return s
}

func checkLayerGradients(t *testing.T, name string, l Layer, x *tensor.Tensor, train bool, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	out := l.Forward(x, train)
	mask := tensor.Randn(rng, 1, out.Shape...)
	// Analytic gradients.
	ZeroGrads(l.Params())
	l.Forward(x, train)
	dx := l.Backward(mask)

	numGrad := func(data []float32, i int) float64 {
		const eps = 1e-2
		orig := data[i]
		data[i] = orig + eps
		up := lossOf(l, x, mask, train)
		data[i] = orig - eps
		down := lossOf(l, x, mask, train)
		data[i] = orig
		return (up - down) / (2 * eps)
	}

	for _, p := range l.Params() {
		idxs := []int{0, p.W.Len() / 2, p.W.Len() - 1}
		for _, i := range idxs {
			want := numGrad(p.W.Data, i)
			if d := math.Abs(float64(p.G.Data[i]) - want); d > tol {
				t.Errorf("%s: %s grad[%d] = %g, numerical %g", name, p.Name, i, p.G.Data[i], want)
			}
		}
	}
	for _, i := range []int{0, x.Len() / 3, x.Len() - 1} {
		want := numGrad(x.Data, i)
		if d := math.Abs(float64(dx.Data[i]) - want); d > tol {
			t.Errorf("%s: dx[%d] = %g, numerical %g", name, i, dx.Data[i], want)
		}
	}
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.Randn(rng, 1, 2, 3, 5, 5)
	conv := NewConv2D(rng, "c", 3, 4, 3, tensor.ConvSpec{Pad: 1}, true)
	checkLayerGradients(t, "conv+bias", conv, x, true, 3e-2)
}

func TestAtrousConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := tensor.Randn(rng, 1, 1, 2, 9, 9)
	conv := NewConv2D(rng, "a", 2, 2, 3, tensor.ConvSpec{Pad: 2, Dilation: 2}, false)
	checkLayerGradients(t, "atrous", conv, x, true, 3e-2)
}

func TestDepthwiseConvGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := tensor.Randn(rng, 1, 1, 4, 6, 6)
	conv := NewConv2D(rng, "dw", 4, 4, 3, tensor.ConvSpec{Pad: 1, Groups: 4}, false)
	checkLayerGradients(t, "depthwise", conv, x, true, 3e-2)
}

func TestConvGroupMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	defer func() {
		if recover() == nil {
			t.Error("bad groups accepted")
		}
	}()
	NewConv2D(rng, "bad", 3, 4, 3, tensor.ConvSpec{Groups: 2}, false)
}

func TestBatchNormForwardNormalises(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := tensor.Randn(rng, 3, 4, 2, 6, 6)
	// Shift one channel far away to prove per-channel handling.
	for i := 0; i < 6*6; i++ {
		x.Data[i] += 50
	}
	bn := NewBatchNorm2D("bn", 2)
	out := bn.Forward(x, true)
	// Each channel of the output should be ~N(0,1) (gamma=1, beta=0).
	for ch := 0; ch < 2; ch++ {
		var s, s2 float64
		cnt := 0
		for i := 0; i < 4; i++ {
			for j := 0; j < 36; j++ {
				v := float64(out.At(i, ch, j/6, j%6))
				s += v
				s2 += v * v
				cnt++
			}
		}
		mean := s / float64(cnt)
		variance := s2/float64(cnt) - mean*mean
		if math.Abs(mean) > 1e-4 || math.Abs(variance-1) > 1e-2 {
			t.Errorf("channel %d: mean %g var %g", ch, mean, variance)
		}
	}
}

func TestBatchNormGradientsTrainMode(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := tensor.Randn(rng, 1, 2, 2, 4, 4)
	bn := NewBatchNorm2D("bn", 2)
	// Non-trivial gamma/beta.
	bn.gamma.W.Data[0] = 1.5
	bn.beta.W.Data[1] = -0.3
	checkLayerGradients(t, "batchnorm-train", bn, x, true, 3e-2)
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bn := NewBatchNorm2D("bn", 2)
	// Train on a few batches to move running stats.
	for i := 0; i < 20; i++ {
		x := tensor.Randn(rng, 1, 2, 2, 4, 4)
		for j := range x.Data {
			x.Data[j] += 3
		}
		bn.Forward(x, true)
	}
	if bn.RunningMean[0] < 1 {
		t.Fatalf("running mean did not move: %v", bn.RunningMean)
	}
	// Eval output must not depend on batch composition.
	x1 := tensor.Randn(rng, 1, 1, 2, 4, 4)
	out1 := bn.Forward(x1, false)
	big := tensor.New(2, 2, 4, 4)
	copy(big.Data[:x1.Len()], x1.Data)
	out2 := bn.Forward(big, false)
	for i := range out1.Data {
		if math.Abs(float64(out1.Data[i]-out2.Data[i])) > 1e-6 {
			t.Fatal("eval-mode output depends on batch")
		}
	}
}

func TestReLU(t *testing.T) {
	r := &ReLU{}
	x := tensor.FromSlice([]float32{-1, 2, -3, 4}, 1, 1, 2, 2)
	out := r.Forward(x, true)
	if out.Data[0] != 0 || out.Data[1] != 2 || out.Data[3] != 4 {
		t.Fatalf("relu fwd %v", out.Data)
	}
	dx := r.Backward(tensor.Full(1, 1, 1, 2, 2))
	if dx.Data[0] != 0 || dx.Data[1] != 1 || dx.Data[2] != 0 || dx.Data[3] != 1 {
		t.Fatalf("relu bwd %v", dx.Data)
	}
}

func TestDropoutTrainEvalBehaviour(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := &Dropout2D{P: 0.5, Rng: rng}
	x := tensor.Full(1, 4, 64, 2, 2)
	// Eval: identity.
	if out := d.Forward(x, false); out != x {
		t.Error("eval dropout should pass through")
	}
	// Train: survivors scaled by 2, expectation preserved (~50% kept).
	out := d.Forward(x, true)
	kept := 0
	for i := 0; i < 4*64; i++ {
		v := out.Data[i*4]
		switch v {
		case 0:
		case 2:
			kept++
		default:
			t.Fatalf("unexpected dropout value %v", v)
		}
	}
	if kept < 4*64/4 || kept > 4*64*3/4 {
		t.Errorf("kept %d of %d channels with P=0.5", kept, 4*64)
	}
	// Backward matches the kept mask.
	dx := d.Backward(tensor.Full(1, 4, 64, 2, 2))
	for i := 0; i < 4*64; i++ {
		fwd := out.Data[i*4]
		bwd := dx.Data[i*4]
		if (fwd == 0) != (bwd == 0) {
			t.Fatal("dropout backward mask mismatch")
		}
	}
}

func TestSequentialGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := tensor.Randn(rng, 1, 1, 2, 6, 6)
	net := NewSequential(
		NewConv2D(rng, "c1", 2, 3, 3, tensor.ConvSpec{Pad: 1}, false),
		NewBatchNorm2D("bn1", 3),
		&ReLU{},
		NewConv2D(rng, "c2", 3, 2, 3, tensor.ConvSpec{Pad: 1}, true),
	)
	if got := len(net.Params()); got != 5 {
		t.Fatalf("param tensors = %d, want 5", got)
	}
	checkLayerGradients(t, "sequential", net, x, true, 5e-2)
}

func TestConcatSplitRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := tensor.Randn(rng, 1, 2, 3, 4, 4)
	b := tensor.Randn(rng, 1, 2, 1, 4, 4)
	c := tensor.Randn(rng, 1, 2, 2, 4, 4)
	cat := ConcatChannels(a, b, c)
	if cat.Dim(1) != 6 {
		t.Fatalf("concat channels %d", cat.Dim(1))
	}
	parts := SplitChannels(cat, []int{3, 1, 2})
	for i, want := range []*tensor.Tensor{a, b, c} {
		got := parts[i]
		for j := range want.Data {
			if got.Data[j] != want.Data[j] {
				t.Fatalf("part %d differs at %d", i, j)
			}
		}
	}
}

func TestConcatShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched concat accepted")
		}
	}()
	ConcatChannels(tensor.New(1, 2, 4, 4), tensor.New(1, 2, 5, 4))
}

func TestUpsampleGradientAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := tensor.Randn(rng, 1, 1, 2, 4, 4)
	u := &Upsample{OutH: 8, OutW: 8}
	checkLayerGradients(t, "upsample", u, x, true, 2e-2)
}

func TestSGDMomentumAndDecay(t *testing.T) {
	p := newParam("w", tensor.FromSlice([]float32{1}, 1), true)
	q := newParam("bn", tensor.FromSlice([]float32{1}, 1), false)
	opt := NewSGD(0.1)
	opt.Momentum = 0.9
	opt.WeightDecay = 0.5

	p.G.Data[0] = 1
	q.G.Data[0] = 1
	opt.Step([]*Param{p, q})
	// p: grad 1 + 0.5·1 decay = 1.5 → w = 1 − 0.1·1.5 = 0.85
	if math.Abs(float64(p.W.Data[0])-0.85) > 1e-6 {
		t.Errorf("decayed param = %v", p.W.Data[0])
	}
	// q: no decay → w = 1 − 0.1 = 0.9
	if math.Abs(float64(q.W.Data[0])-0.9) > 1e-6 {
		t.Errorf("no-decay param = %v", q.W.Data[0])
	}
	// Second identical step: velocity kicks in (v = 0.9·1.5 + 1.425).
	p.G.Data[0] = 1
	prev := p.W.Data[0]
	opt.Step([]*Param{p})
	if p.W.Data[0] >= prev-0.1 {
		t.Error("momentum did not accelerate the update")
	}
}

func TestPolyScheduleShape(t *testing.T) {
	s := NewPolySchedule(0.007, 1000, 100, 16)
	// Warmup starts near base and reaches base·world at its end.
	if lr := s.LR(0); lr < 0.007 || lr > 0.007*16 {
		t.Errorf("lr(0) = %g", lr)
	}
	if lr := s.LR(99); math.Abs(lr-0.007*16) > 1e-9 {
		t.Errorf("end of warmup lr = %g, want %g", lr, 0.007*16)
	}
	// After warmup, strictly decreasing to zero.
	prev := math.Inf(1)
	for _, step := range []int{100, 300, 600, 999} {
		lr := s.LR(step)
		if lr >= prev {
			t.Errorf("lr not decreasing at %d: %g >= %g", step, lr, prev)
		}
		prev = lr
	}
	if s.LR(1000) != 0 {
		t.Error("lr past end should be 0")
	}
}

func TestPolyScheduleValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad schedule accepted")
		}
	}()
	NewPolySchedule(0.007, 0, 0, 1)
}

func TestPackUnpackGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	conv := NewConv2D(rng, "c", 2, 2, 3, tensor.ConvSpec{Pad: 1}, true)
	params := conv.Params()
	for _, p := range params {
		for i := range p.G.Data {
			p.G.Data[i] = float32(rng.NormFloat64())
		}
	}
	buf := PackGrads(params, nil)
	if len(buf) != ParamCount(params) {
		t.Fatalf("pack length %d", len(buf))
	}
	orig := append([]float32(nil), buf...)
	ZeroGrads(params)
	UnpackGrads(params, orig)
	buf2 := PackGrads(params, buf)
	for i := range orig {
		if buf2[i] != orig[i] {
			t.Fatal("pack/unpack round trip failed")
		}
	}
	if GradBytes(params) != 4*len(orig) {
		t.Error("GradBytes wrong")
	}
}

func TestUnpackWrongSizePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	conv := NewConv2D(rng, "c", 1, 1, 3, tensor.ConvSpec{Pad: 1}, false)
	defer func() {
		if recover() == nil {
			t.Error("wrong-size unpack accepted")
		}
	}()
	UnpackGrads(conv.Params(), make([]float32, 3))
}

func TestGradNorm(t *testing.T) {
	p := newParam("w", tensor.FromSlice([]float32{0, 0}, 2), true)
	p.G.Data[0] = 3
	p.G.Data[1] = 4
	if n := GradNorm([]*Param{p}); math.Abs(n-5) > 1e-9 {
		t.Fatalf("grad norm %g", n)
	}
}

func TestBackwardBeforeForwardPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	layers := []Layer{
		NewConv2D(rng, "c", 1, 1, 3, tensor.ConvSpec{Pad: 1}, false),
		NewBatchNorm2D("bn", 1),
		&ReLU{},
	}
	for _, l := range layers {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%T backward before forward accepted", l)
				}
			}()
			l.Backward(tensor.New(1, 1, 2, 2))
		}()
	}
}
