package nn

import (
	"math"
	"math/rand"
	"testing"

	"segscale/internal/tensor"
)

func TestLARSTrustRatio(t *testing.T) {
	p := newParam("w", tensor.FromSlice([]float32{3, 4}, 2), true) // ‖w‖=5
	p.G.Data[0] = 0.6
	p.G.Data[1] = 0.8 // ‖g‖=1
	o := NewLARS(0.1)
	o.WeightDecay = 0
	ratio := o.TrustRatio(p)
	want := 0.001 * 5 / 1
	if math.Abs(ratio-want) > 1e-6 {
		t.Fatalf("trust ratio %g, want %g", ratio, want)
	}
}

func TestLARSStepDirection(t *testing.T) {
	p := newParam("w", tensor.FromSlice([]float32{1, 1}, 2), true)
	p.G.Data[0] = 1
	p.G.Data[1] = -1
	o := NewLARS(1)
	before := append([]float32(nil), p.W.Data...)
	o.Step([]*Param{p})
	if !(p.W.Data[0] < before[0]) || !(p.W.Data[1] > before[1]) {
		t.Fatalf("LARS moved against the gradient: %v → %v", before, p.W.Data)
	}
}

func TestLARSScaleInvariantToGradientMagnitude(t *testing.T) {
	// The defining LARS property: scaling the gradient by a large
	// constant barely changes the update size (the local rate divides
	// it back out), unlike SGD.
	mk := func(gscale float32) float64 {
		p := newParam("w", tensor.FromSlice([]float32{3, 4}, 2), true)
		p.G.Data[0] = 0.6 * gscale
		p.G.Data[1] = 0.8 * gscale
		o := NewLARS(1)
		o.WeightDecay = 0
		before := append([]float32(nil), p.W.Data...)
		o.Step([]*Param{p})
		d0 := float64(p.W.Data[0] - before[0])
		d1 := float64(p.W.Data[1] - before[1])
		return math.Sqrt(d0*d0 + d1*d1)
	}
	small, big := mk(1), mk(1000)
	if math.Abs(big-small)/small > 0.01 {
		t.Fatalf("update magnitude not gradient-scale invariant: %g vs %g", small, big)
	}
}

func TestLARSNoDecayParamsUsePlainSGD(t *testing.T) {
	p := newParam("bn.gamma", tensor.FromSlice([]float32{1}, 1), false)
	p.G.Data[0] = 1
	o := NewLARS(0.1)
	o.Step([]*Param{p})
	// Plain momentum SGD: w = 1 − 0.1·1.
	if math.Abs(float64(p.W.Data[0])-0.9) > 1e-6 {
		t.Fatalf("no-decay param got adaptive rate: %v", p.W.Data[0])
	}
}

func TestLARSMomentumAccumulates(t *testing.T) {
	p := newParam("w", tensor.FromSlice([]float32{1}, 1), false)
	o := NewLARS(0.1)
	p.G.Data[0] = 1
	o.Step([]*Param{p})
	first := 1 - p.W.Data[0]
	p.G.Data[0] = 1
	prev := p.W.Data[0]
	o.Step([]*Param{p})
	second := prev - p.W.Data[0]
	if second <= first {
		t.Fatalf("momentum inactive: steps %g then %g", first, second)
	}
}

func TestLARSZeroWeightSafe(t *testing.T) {
	p := newParam("w", tensor.New(2), true) // ‖w‖=0
	p.G.Data[0] = 1
	o := NewLARS(0.5)
	o.Step([]*Param{p}) // must not NaN
	for _, v := range p.W.Data {
		if math.IsNaN(float64(v)) {
			t.Fatal("NaN after zero-norm step")
		}
	}
}

func TestOptimizerInterface(t *testing.T) {
	var opts = []Optimizer{NewSGD(0.1), NewLARS(0.1)}
	for _, o := range opts {
		o.SetLR(0.25)
	}
	if NewSGD(0.1).LR != 0.1 {
		t.Fatal("constructor LR wrong")
	}
}

func TestGlobalGradClip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := newParam("w", tensor.Randn(rng, 1, 100), true)
	for i := range p.G.Data {
		p.G.Data[i] = 1 // norm 10
	}
	pre := GlobalGradClip([]*Param{p}, 5)
	if math.Abs(pre-10) > 1e-5 {
		t.Fatalf("pre-clip norm %g", pre)
	}
	if post := GradNorm([]*Param{p}); math.Abs(post-5) > 1e-3 {
		t.Fatalf("post-clip norm %g", post)
	}
	// Below the cap: untouched.
	before := append([]float32(nil), p.G.Data...)
	GlobalGradClip([]*Param{p}, 100)
	for i := range before {
		if p.G.Data[i] != before[i] {
			t.Fatal("clip modified in-range gradients")
		}
	}
}
