// Package nn provides the trainable-layer library for the real
// (non-simulated) training path: convolution (including atrous and
// depthwise), batch normalisation, activations, dropout, bilinear
// upsampling, and channel concatenation, each with an explicit
// backward pass; plus SGD with momentum and the poly learning-rate
// schedule DeepLab trains with.
//
// Layers cache their forward inputs, so a layer instance serves one
// (Forward, Backward) pair per step — the usual define-by-run
// contract. Model graphs with skips (DeepLab's decoder, ASPP) call
// layers directly and route gradients by hand in internal/deeplab.
package nn

import (
	"fmt"

	"segscale/internal/tensor"
)

// Param is one trainable tensor with its gradient accumulator. The
// distributed trainer allreduces G.Data across ranks between backward
// and the optimiser step — exactly where Horovod intercepts gradients.
type Param struct {
	Name string
	W    *tensor.Tensor
	G    *tensor.Tensor
	// Decay marks parameters subject to weight decay (convolution
	// weights yes; batch-norm scale/shift and biases no, following
	// DeepLab's training recipe).
	Decay bool
}

func newParam(name string, w *tensor.Tensor, decay bool) *Param {
	return &Param{Name: name, W: w, G: tensor.New(w.Shape...), Decay: decay}
}

// ZeroGrad clears the gradient.
func (p *Param) ZeroGrad() { p.G.Zero() }

// Layer is a differentiable module.
type Layer interface {
	// Forward computes the output for x. train toggles
	// batch-statistics and dropout behaviour.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes d(loss)/d(output) and returns
	// d(loss)/d(input), accumulating parameter gradients.
	Backward(dout *tensor.Tensor) *tensor.Tensor
	// Params lists trainable parameters (empty for stateless layers).
	Params() []*Param
}

// ParamCount sums elements across a parameter list.
func ParamCount(params []*Param) int {
	n := 0
	for _, p := range params {
		n += p.W.Len()
	}
	return n
}

// GradBytes is the wire size of all gradients in float32 bytes — the
// number Horovod's fusion buffer sees.
func GradBytes(params []*Param) int { return 4 * ParamCount(params) }

// ZeroGrads clears all gradients.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// PackGrads copies all gradients into one flat buffer (allocating if
// buf is nil or wrongly sized) in parameter order — the "fused
// buffer" view of the model's gradients.
func PackGrads(params []*Param, buf []float32) []float32 {
	n := ParamCount(params)
	if len(buf) != n {
		buf = make([]float32, n)
	}
	off := 0
	for _, p := range params {
		copy(buf[off:], p.G.Data)
		off += p.G.Len()
	}
	return buf
}

// UnpackGrads scatters a flat buffer back into per-parameter
// gradients; the inverse of PackGrads.
func UnpackGrads(params []*Param, buf []float32) {
	if len(buf) != ParamCount(params) {
		panic(fmt.Sprintf("nn: unpack %d floats into %d params", len(buf), ParamCount(params)))
	}
	off := 0
	for _, p := range params {
		copy(p.G.Data, buf[off:off+p.G.Len()])
		off += p.G.Len()
	}
}
