package nn

import (
	"fmt"
	"math"
	"math/rand"

	"segscale/internal/tensor"
)

// WorkspaceUser is implemented by layers that can draw their
// activations and scratch from a tensor.Workspace arena instead of the
// heap. Trainers install one workspace per model replica and Reset it
// at each step boundary; a nil workspace (the default) falls back to
// plain heap allocation everywhere.
type WorkspaceUser interface {
	SetWorkspace(ws *tensor.Workspace)
}

// ActivationTap observes post-activation tensors during training
// forwards. Implementations must treat the tensor as read-only and
// must not retain it — it is workspace-owned and dies at the step's
// Reset. Taps fire on the hot path, so they must be allocation-free
// in steady state.
type ActivationTap interface {
	ObserveActivation(layer string, act *tensor.Tensor)
}

// ActivationTapUser is implemented by layers and models that can route
// their activations to a tap. A nil tap (the default) disables
// observation entirely.
type ActivationTapUser interface {
	SetActivationTap(tap ActivationTap)
}

// Conv2D is a convolution layer (optionally with bias). Dilation > 1
// makes it an atrous convolution; Groups == in-channels makes it
// depthwise.
type Conv2D struct {
	Spec tensor.ConvSpec
	w    *Param
	b    *Param // nil when bias is disabled

	x  *tensor.Tensor // cached input
	ws *tensor.Workspace
}

// SetWorkspace installs the arena forward/backward activations and
// im2col scratch are drawn from.
func (c *Conv2D) SetWorkspace(ws *tensor.Workspace) { c.ws = ws }

// NewConv2D creates a conv layer with He-initialised weights.
func NewConv2D(rng *rand.Rand, name string, inC, outC, k int, spec tensor.ConvSpec, bias bool) *Conv2D {
	s := spec.Canon()
	if inC%s.Groups != 0 {
		panic(fmt.Sprintf("nn: conv %s groups %d does not divide channels %d", name, s.Groups, inC))
	}
	fanIn := (inC / s.Groups) * k * k
	std := math.Sqrt(2.0 / float64(fanIn))
	c := &Conv2D{
		Spec: s,
		w:    newParam(name+".w", tensor.Randn(rng, std, outC, inC/s.Groups, k, k), true),
	}
	if bias {
		c.b = newParam(name+".b", tensor.New(outC), false)
	}
	return c
}

func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	c.x = x
	out := tensor.Conv2DWS(x, c.w.W, c.Spec, c.ws)
	if c.b != nil {
		n, f, oh, ow := out.Dim(0), out.Dim(1), out.Dim(2), out.Dim(3)
		spatial := oh * ow
		for i := 0; i < n; i++ {
			for ff := 0; ff < f; ff++ {
				bias := c.b.W.Data[ff]
				row := out.Data[(i*f+ff)*spatial : (i*f+ff+1)*spatial]
				for j := range row {
					row[j] += bias
				}
			}
		}
	}
	return out
}

func (c *Conv2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if c.x == nil {
		panic("nn: conv backward before forward")
	}
	dx, dw := tensor.Conv2DBackwardWS(c.x, c.w.W, dout, c.Spec, c.ws)
	c.w.G.Add(dw)
	if c.b != nil {
		n, f, oh, ow := dout.Dim(0), dout.Dim(1), dout.Dim(2), dout.Dim(3)
		spatial := oh * ow
		for i := 0; i < n; i++ {
			for ff := 0; ff < f; ff++ {
				var s float32
				for _, v := range dout.Data[(i*f+ff)*spatial : (i*f+ff+1)*spatial] {
					s += v
				}
				c.b.G.Data[ff] += s
			}
		}
	}
	c.x = nil
	return dx
}

func (c *Conv2D) Params() []*Param {
	if c.b != nil {
		return []*Param{c.w, c.b}
	}
	return []*Param{c.w}
}

// BatchNorm2D normalises per channel over (N,H,W) with learnable
// scale and shift, tracking running statistics for evaluation.
//
// Setting Sync turns it into synchronized batch norm (the cross-rank
// variant distributed segmentation training needs when per-rank
// batches are small): forward statistics and the backward correction
// sums are globally summed through the callback, so every rank
// normalises over the *effective* batch.
type BatchNorm2D struct {
	gamma, beta *Param
	Momentum    float64
	Eps         float64

	// Sync, when non-nil, sums the given vector elementwise across
	// all ranks in place (an allreduce-sum). All ranks must reach
	// every BatchNorm in the same order — true for replicated models.
	Sync func([]float64)

	RunningMean []float64
	RunningVar  []float64

	// Cached forward state.
	x        *tensor.Tensor
	xhat     *tensor.Tensor
	mean     []float64
	invStd   []float64
	count    float64 // global pixel count per channel
	lastEval bool

	ws *tensor.Workspace
	// Reused float64 reduction buffers (channel count is fixed per
	// layer, so one allocation serves every step).
	sums, corr []float64
}

// SetWorkspace installs the arena the normalised activations are
// drawn from.
func (bn *BatchNorm2D) SetWorkspace(ws *tensor.Workspace) { bn.ws = ws }

// f64buf returns buf resized to n, reallocating only on growth.
func f64buf(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n) //seglint:ignore hotalloc grows once per channel count; steady-state calls reuse capacity
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// NewBatchNorm2D creates a batch-norm layer for c channels.
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	bn := &BatchNorm2D{
		gamma:       newParam(name+".gamma", tensor.Full(1, c), false),
		beta:        newParam(name+".beta", tensor.New(c), false),
		Momentum:    0.9,
		Eps:         1e-5,
		RunningMean: make([]float64, c),
		RunningVar:  make([]float64, c),
	}
	for i := range bn.RunningVar {
		bn.RunningVar[i] = 1
	}
	return bn
}

func (bn *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if c != bn.gamma.W.Len() {
		panic(fmt.Sprintf("nn: batchnorm %d channels, input has %d", bn.gamma.W.Len(), c))
	}
	spatial := h * w
	cnt := float64(n * spatial)
	out := bn.ws.GetRaw(n, c, h, w) // every element written below
	bn.lastEval = !train

	mean := f64buf(bn.mean, c)
	invStd := f64buf(bn.invStd, c)
	if train {
		// Per-channel sums; with Sync these become global sums over
		// every rank's batch.
		sums := f64buf(bn.sums, 2*c+1)
		bn.sums = sums
		for ch := 0; ch < c; ch++ {
			var s, s2 float64
			for i := 0; i < n; i++ {
				row := x.Data[(i*c+ch)*spatial : (i*c+ch+1)*spatial]
				for _, v := range row {
					fv := float64(v)
					s += fv
					s2 += fv * fv
				}
			}
			sums[ch], sums[c+ch] = s, s2
		}
		sums[2*c] = cnt
		if bn.Sync != nil {
			bn.Sync(sums) //seglint:ignore hotalloc SyncBN allreduce hook; nil in eval, and the train path is audited by the step alloc budget
		}
		cnt = sums[2*c]
		bn.count = cnt
		for ch := 0; ch < c; ch++ {
			m := sums[ch] / cnt
			v := sums[c+ch]/cnt - m*m
			if v < 0 {
				v = 0
			}
			mean[ch] = m
			invStd[ch] = 1 / math.Sqrt(v+bn.Eps)
			bn.RunningMean[ch] = bn.Momentum*bn.RunningMean[ch] + (1-bn.Momentum)*m
			bn.RunningVar[ch] = bn.Momentum*bn.RunningVar[ch] + (1-bn.Momentum)*v
		}
	} else {
		for ch := 0; ch < c; ch++ {
			mean[ch] = bn.RunningMean[ch]
			invStd[ch] = 1 / math.Sqrt(bn.RunningVar[ch]+bn.Eps)
		}
	}

	xhat := bn.ws.GetRaw(n, c, h, w) // every element written below
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			g := bn.gamma.W.Data[ch]
			b := bn.beta.W.Data[ch]
			m := float32(mean[ch])
			is := float32(invStd[ch])
			in := x.Data[(i*c+ch)*spatial : (i*c+ch+1)*spatial]
			xh := xhat.Data[(i*c+ch)*spatial : (i*c+ch+1)*spatial]
			dst := out.Data[(i*c+ch)*spatial : (i*c+ch+1)*spatial]
			for j, v := range in {
				xh[j] = (v - m) * is
				dst[j] = g*xh[j] + b
			}
		}
	}
	bn.x, bn.xhat, bn.mean, bn.invStd = x, xhat, mean, invStd
	return out
}

func (bn *BatchNorm2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if bn.xhat == nil {
		panic("nn: batchnorm backward before forward")
	}
	n, c, h, w := dout.Dim(0), dout.Dim(1), dout.Dim(2), dout.Dim(3)
	spatial := h * w
	cnt := float64(n * spatial)
	if bn.Sync != nil && !bn.lastEval {
		cnt = bn.count
	}
	dx := bn.ws.GetRaw(n, c, h, w) // every element written below

	// Per-channel local sums: dgamma, dbeta, Σdxhat, Σdxhat·xhat.
	// With Sync, the correction sums become global (dgamma/dbeta stay
	// local: the gradient allreduce handles parameters).
	corr := f64buf(bn.corr, 2*c)
	bn.corr = corr
	for ch := 0; ch < c; ch++ {
		gamma := float64(bn.gamma.W.Data[ch])
		var dgamma, dbeta float64
		for i := 0; i < n; i++ {
			base := (i*c + ch) * spatial
			for j := 0; j < spatial; j++ {
				g := float64(dout.Data[base+j])
				xh := float64(bn.xhat.Data[base+j])
				dgamma += g * xh
				dbeta += g
			}
		}
		bn.gamma.G.Data[ch] += float32(dgamma)
		bn.beta.G.Data[ch] += float32(dbeta)
		corr[ch] = dbeta * gamma    // Σ dxhat
		corr[c+ch] = dgamma * gamma // Σ dxhat·xhat
	}

	if bn.lastEval {
		// Eval-mode backward (used in gradient tests): running stats
		// are constants, no batch coupling.
		for ch := 0; ch < c; ch++ {
			k := float32(float64(bn.gamma.W.Data[ch]) * bn.invStd[ch])
			for i := 0; i < n; i++ {
				base := (i*c + ch) * spatial
				for j := 0; j < spatial; j++ {
					dx.Data[base+j] = k * dout.Data[base+j]
				}
			}
		}
		bn.x, bn.xhat = nil, nil
		return dx
	}

	if bn.Sync != nil {
		bn.Sync(corr) //seglint:ignore hotalloc SyncBN hook: the configured allreduce callback is the communication path; nil in single-rank and budget-measured runs
	}
	for ch := 0; ch < c; ch++ {
		gamma := float64(bn.gamma.W.Data[ch])
		is := bn.invStd[ch]
		dxhatSum, dxhatXhatSum := corr[ch], corr[c+ch]
		for i := 0; i < n; i++ {
			base := (i*c + ch) * spatial
			for j := 0; j < spatial; j++ {
				dxhat := float64(dout.Data[base+j]) * gamma
				xh := float64(bn.xhat.Data[base+j])
				dx.Data[base+j] = float32(is * (dxhat - dxhatSum/cnt - xh*dxhatXhatSum/cnt))
			}
		}
	}
	bn.x, bn.xhat = nil, nil
	return dx
}

// BatchNormer is implemented by layers that can enumerate their
// (possibly nested) batch-norm sublayers, so trainers can install the
// SyncBN callback.
type BatchNormer interface {
	BatchNorms() []*BatchNorm2D
}

// BatchNorms returns the layer itself.
func (bn *BatchNorm2D) BatchNorms() []*BatchNorm2D { return []*BatchNorm2D{bn} }

// BatchNorms recurses over children.
func (s *Sequential) BatchNorms() []*BatchNorm2D {
	var out []*BatchNorm2D
	for _, l := range s.Layers {
		if b, ok := l.(BatchNormer); ok {
			out = append(out, b.BatchNorms()...)
		}
	}
	return out
}

func (bn *BatchNorm2D) Params() []*Param { return []*Param{bn.gamma, bn.beta} }

// ReLU is the rectified linear activation. Instead of materialising a
// boolean mask it keeps the input tensor alive until backward and
// re-tests the sign — the input is workspace-owned and valid until the
// step's Reset, so this costs no extra memory.
//
// Label names the activation for health taps (e.g. "aspp.b0.relu");
// an unlabelled ReLU is never observed.
type ReLU struct {
	Label string

	x   *tensor.Tensor
	ws  *tensor.Workspace
	tap ActivationTap
}

// SetWorkspace installs the arena activations are drawn from.
func (r *ReLU) SetWorkspace(ws *tensor.Workspace) { r.ws = ws }

// SetActivationTap routes this unit's training-mode outputs to tap.
func (r *ReLU) SetActivationTap(tap ActivationTap) { r.tap = tap }

func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	r.x = x
	out := r.ws.GetRaw(x.Shape...)
	for i, v := range x.Data {
		if v <= 0 {
			out.Data[i] = 0
		} else {
			out.Data[i] = v
		}
	}
	if train && r.tap != nil && r.Label != "" {
		r.tap.ObserveActivation(r.Label, out)
	}
	return out
}

func (r *ReLU) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if r.x == nil {
		panic("nn: relu backward before forward")
	}
	dx := r.ws.GetRaw(dout.Shape...)
	xd := r.x.Data
	for i, g := range dout.Data {
		if xd[i] <= 0 {
			dx.Data[i] = 0
		} else {
			dx.Data[i] = g
		}
	}
	r.x = nil
	return dx
}

func (r *ReLU) Params() []*Param { return nil }

// Dropout2D zeroes whole channels with probability P during training
// (spatial dropout, as DeepLab's ASPP head uses), scaling the
// survivors by 1/(1−P). Set Rng directly, or set Seed and leave Rng
// nil for lazy seeding (which keeps the layer reseedable per step —
// see Reseed).
type Dropout2D struct {
	P    float64
	Seed int64
	Rng  *rand.Rand

	kept   []bool // reused across steps; valid only while active
	active bool   // a training forward ran and backward is pending
	dims   [2]int
	ws     *tensor.Workspace
}

// SetWorkspace installs the arena activations are drawn from.
func (d *Dropout2D) SetWorkspace(ws *tensor.Workspace) { d.ws = ws }

// Reseed repositions the mask stream to a pure function of (Seed,
// step), detaching it from how many forward passes this instance has
// already run. The trainer calls it every step so a replica restored
// from a checkpoint draws exactly the masks the original run would
// have — without it the dropout RNG's cursor is invisible training
// state no checkpoint can capture.
func (d *Dropout2D) Reseed(step int64) {
	seed := d.Seed + (step+1)*6364136223846793005
	if d.Rng != nil {
		// Re-seeding in place replays exactly the stream a fresh
		// rand.New(rand.NewSource(seed)) would produce — both paths
		// reset the same generator state — without the two per-step
		// heap allocations the construct-a-new-Rand form paid.
		d.Rng.Seed(seed)
		return
	}
	d.Rng = rand.New(rand.NewSource(seed)) //seglint:ignore hotalloc first reseed of an incarnation builds the generator; every later one reuses it in place
}

func (d *Dropout2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P <= 0 {
		d.active = false
		return x
	}
	d.active = true
	if d.Rng == nil {
		d.Rng = rand.New(rand.NewSource(d.Seed)) //seglint:ignore hotalloc once per incarnation; the annotated eval path returns before this
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	spatial := h * w
	out := d.ws.GetRaw(n, c, h, w) // both branches below write fully
	if cap(d.kept) < n*c {
		d.kept = make([]bool, n*c) //seglint:ignore hotalloc grows once per shape; eval returns before this
	} else {
		d.kept = d.kept[:n*c]
	}
	d.dims = [2]int{h, w}
	scale := float32(1 / (1 - d.P))
	for i := 0; i < n*c; i++ {
		keep := d.Rng.Float64() >= d.P
		d.kept[i] = keep
		dst := out.Data[i*spatial : (i+1)*spatial]
		if keep {
			src := x.Data[i*spatial : (i+1)*spatial]
			for j, v := range src {
				dst[j] = v * scale
			}
		} else {
			for j := range dst {
				dst[j] = 0
			}
		}
	}
	return out
}

func (d *Dropout2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if !d.active {
		return dout
	}
	n, c := dout.Dim(0), dout.Dim(1)
	spatial := d.dims[0] * d.dims[1]
	dx := d.ws.GetRaw(dout.Shape...) // both branches below write fully
	scale := float32(1 / (1 - d.P))
	for i := 0; i < n*c; i++ {
		dst := dx.Data[i*spatial : (i+1)*spatial]
		if d.kept[i] {
			src := dout.Data[i*spatial : (i+1)*spatial]
			for j, v := range src {
				dst[j] = v * scale
			}
		} else {
			for j := range dst {
				dst[j] = 0
			}
		}
	}
	d.active = false
	return dx
}

func (d *Dropout2D) Params() []*Param { return nil }

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// SetWorkspace recursively installs ws on every child that accepts
// one.
func (s *Sequential) SetWorkspace(ws *tensor.Workspace) {
	for _, l := range s.Layers {
		if u, ok := l.(WorkspaceUser); ok {
			u.SetWorkspace(ws)
		}
	}
}

// SetActivationTap recursively installs tap on every child that
// accepts one.
func (s *Sequential) SetActivationTap(tap ActivationTap) {
	for _, l := range s.Layers {
		if u, ok := l.(ActivationTapUser); ok {
			u.SetActivationTap(tap)
		}
	}
}

func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

func (s *Sequential) Backward(dout *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dout = s.Layers[i].Backward(dout)
	}
	return dout
}

func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ConcatChannels concatenates NCHW tensors along the channel axis.
func ConcatChannels(xs ...*tensor.Tensor) *tensor.Tensor {
	return ConcatChannelsWS(nil, xs...)
}

// ConcatChannelsWS is ConcatChannels with the output drawn from ws.
func ConcatChannelsWS(ws *tensor.Workspace, xs ...*tensor.Tensor) *tensor.Tensor {
	n, h, w := xs[0].Dim(0), xs[0].Dim(2), xs[0].Dim(3)
	total := 0
	for _, x := range xs {
		if x.Dim(0) != n || x.Dim(2) != h || x.Dim(3) != w {
			panic(fmt.Sprintf("nn: concat shape mismatch %v vs %v", xs[0].Shape, x.Shape))
		}
		total += x.Dim(1)
	}
	out := ws.GetRaw(n, total, h, w) // fully covered by the copies
	spatial := h * w
	for i := 0; i < n; i++ {
		off := 0
		for _, x := range xs {
			c := x.Dim(1)
			copy(out.Data[(i*total+off)*spatial:(i*total+off+c)*spatial],
				x.Data[i*c*spatial:(i+1)*c*spatial])
			off += c
		}
	}
	return out
}

// SplitChannels is the backward of ConcatChannels: it slices dout into
// per-input gradients with the given channel counts.
func SplitChannels(dout *tensor.Tensor, channels []int) []*tensor.Tensor {
	return SplitChannelsWS(dout, channels, nil)
}

// SplitChannelsWS is SplitChannels with the gradients drawn from ws
// (the result slice itself is a small per-call allocation).
func SplitChannelsWS(dout *tensor.Tensor, channels []int, ws *tensor.Workspace) []*tensor.Tensor {
	n, total, h, w := dout.Dim(0), dout.Dim(1), dout.Dim(2), dout.Dim(3)
	sum := 0
	for _, c := range channels {
		sum += c
	}
	if sum != total {
		panic(fmt.Sprintf("nn: split %v channels from %d", channels, total))
	}
	spatial := h * w
	outs := make([]*tensor.Tensor, len(channels)) //seglint:ignore hotalloc slice-of-headers per backward split, a few words; counted in the pinned step alloc budget
	off := 0
	for k, c := range channels {
		g := ws.GetRaw(n, c, h, w) // fully covered by the copies
		for i := 0; i < n; i++ {
			copy(g.Data[i*c*spatial:(i+1)*c*spatial],
				dout.Data[(i*total+off)*spatial:(i*total+off+c)*spatial])
		}
		outs[k] = g
		off += c
	}
	return outs
}

// Upsample bilinearly resizes to a fixed target size.
type Upsample struct {
	OutH, OutW int
	inH, inW   int
	ws         *tensor.Workspace
}

// SetWorkspace installs the arena activations are drawn from.
func (u *Upsample) SetWorkspace(ws *tensor.Workspace) { u.ws = ws }

func (u *Upsample) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	u.inH, u.inW = x.Dim(2), x.Dim(3)
	return tensor.BilinearResizeWS(x, u.OutH, u.OutW, u.ws)
}

func (u *Upsample) Backward(dout *tensor.Tensor) *tensor.Tensor {
	return tensor.BilinearResizeBackwardWS(dout, u.inH, u.inW, u.ws)
}

func (u *Upsample) Params() []*Param { return nil }
