package nn

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"segscale/internal/tensor"
)

// pairSync returns two Sync callbacks that rendezvous and sum their
// buffers — a two-rank allreduce without the transport machinery, so
// this test isolates the SyncBN *math*.
func pairSync() (a, b func([]float64)) {
	type slot struct {
		buf  []float64
		done chan struct{}
	}
	exch := make(chan *slot)
	mk := func() func([]float64) {
		return func(buf []float64) {
			s := &slot{buf: buf, done: make(chan struct{})}
			select {
			case exch <- s: // first arrival parks
				<-s.done
			case other := <-exch: // second arrival sums for both
				for i := range buf {
					sum := buf[i] + other.buf[i]
					buf[i] = sum
					other.buf[i] = sum
				}
				close(other.done)
			}
		}
	}
	return mk(), mk()
}

// TestSyncBNMatchesBigBatch is the defining property of synchronized
// batch norm: two ranks, each normalising its half batch with synced
// statistics, must produce bit-near-identical outputs and input
// gradients to one batch-norm over the concatenated batch.
func TestSyncBNMatchesBigBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const c, h, w = 3, 4, 4
	xa := tensor.Randn(rng, 1, 2, c, h, w) // rank A's half
	xb := tensor.Randn(rng, 1, 2, c, h, w) // rank B's half
	douta := tensor.Randn(rng, 1, 2, c, h, w)
	doutb := tensor.Randn(rng, 1, 2, c, h, w)

	// Reference: one BN over the concatenated batch of 4.
	ref := NewBatchNorm2D("ref", c)
	xFull := tensor.New(4, c, h, w)
	copy(xFull.Data[:xa.Len()], xa.Data)
	copy(xFull.Data[xa.Len():], xb.Data)
	doutFull := tensor.New(4, c, h, w)
	copy(doutFull.Data[:douta.Len()], douta.Data)
	copy(doutFull.Data[douta.Len():], doutb.Data)
	outFull := ref.Forward(xFull, true)
	dxFull := ref.Backward(doutFull)

	// SyncBN: two replicas with rendezvous-summing callbacks, run
	// concurrently like real ranks.
	bnA := NewBatchNorm2D("a", c)
	bnB := NewBatchNorm2D("b", c)
	sa, sb := pairSync()
	bnA.Sync = sa
	bnB.Sync = sb

	var outA, outB, dxA, dxB *tensor.Tensor
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		outA = bnA.Forward(xa, true)
		dxA = bnA.Backward(douta)
	}()
	go func() {
		defer wg.Done()
		outB = bnB.Forward(xb, true)
		dxB = bnB.Backward(doutb)
	}()
	wg.Wait()

	check := func(name string, got *tensor.Tensor, want []float32) {
		t.Helper()
		for i := range got.Data {
			if d := math.Abs(float64(got.Data[i] - want[i])); d > 1e-4 {
				t.Fatalf("%s[%d]: syncBN %g vs big-batch %g", name, i, got.Data[i], want[i])
			}
		}
	}
	check("outA", outA, outFull.Data[:outA.Len()])
	check("outB", outB, outFull.Data[outA.Len():])
	check("dxA", dxA, dxFull.Data[:dxA.Len()])
	check("dxB", dxB, dxFull.Data[dxA.Len():])

	// Parameter gradients: rank-local partial sums must add up to the
	// big-batch gradient (the allreduce-sum that AllreduceGrads then
	// averages).
	for ch := 0; ch < c; ch++ {
		sumGamma := bnA.gamma.G.Data[ch] + bnB.gamma.G.Data[ch]
		if d := math.Abs(float64(sumGamma - ref.gamma.G.Data[ch])); d > 1e-3 {
			t.Fatalf("dgamma[%d]: %g vs %g", ch, sumGamma, ref.gamma.G.Data[ch])
		}
		sumBeta := bnA.beta.G.Data[ch] + bnB.beta.G.Data[ch]
		if d := math.Abs(float64(sumBeta - ref.beta.G.Data[ch])); d > 1e-3 {
			t.Fatalf("dbeta[%d]: %g vs %g", ch, sumBeta, ref.beta.G.Data[ch])
		}
	}

	// Running statistics must agree too (both saw the global batch).
	for ch := 0; ch < c; ch++ {
		if d := math.Abs(bnA.RunningMean[ch] - ref.RunningMean[ch]); d > 1e-6 {
			t.Fatalf("running mean[%d]: %g vs %g", ch, bnA.RunningMean[ch], ref.RunningMean[ch])
		}
		if d := math.Abs(bnA.RunningVar[ch] - ref.RunningVar[ch]); d > 1e-6 {
			t.Fatalf("running var[%d]: %g vs %g", ch, bnA.RunningVar[ch], ref.RunningVar[ch])
		}
	}
}
