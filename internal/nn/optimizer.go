package nn

import (
	"fmt"
	"math"
)

// SGD is stochastic gradient descent with momentum and decoupled
// weight decay — the optimiser DeepLab-v3+ trains with.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity map[*Param][]float32
}

// NewSGD constructs the optimiser with DeepLab's defaults (momentum
// 0.9, weight decay 4e-5) at the given learning rate.
func NewSGD(lr float64) *SGD {
	return &SGD{LR: lr, Momentum: 0.9, WeightDecay: 4e-5, velocity: map[*Param][]float32{}}
}

// Step applies one update to every parameter from its accumulated
// gradient. Gradients are not cleared; call ZeroGrads before the next
// backward.
func (o *SGD) Step(params []*Param) {
	lr := float32(o.LR)
	mom := float32(o.Momentum)
	wd := float32(o.WeightDecay)
	for _, p := range params {
		vel, ok := o.velocity[p]
		if !ok {
			vel = make([]float32, p.W.Len()) //seglint:ignore hotalloc velocity allocated on first touch of each parameter, then reused every step
			o.velocity[p] = vel
		}
		g := p.G.Data
		w := p.W.Data
		for i := range w {
			grad := g[i]
			if p.Decay {
				grad += wd * w[i]
			}
			vel[i] = mom*vel[i] + grad
			w[i] -= lr * vel[i]
		}
	}
}

// ExportState implements Optimizer.
func (o *SGD) ExportState(params []*Param) [][]float32 {
	return exportVelocity(o.velocity, params)
}

// ImportState implements Optimizer.
func (o *SGD) ImportState(params []*Param, state [][]float32) error {
	return importVelocity(o.velocity, params, state)
}

// exportVelocity snapshots a velocity map in params order. Entries for
// parameters the optimiser has not touched yet come out as zeros —
// exactly the state a fresh Step would have created.
func exportVelocity(vel map[*Param][]float32, params []*Param) [][]float32 {
	out := make([][]float32, len(params))
	for i, p := range params {
		cp := make([]float32, p.W.Len())
		copy(cp, vel[p])
		out[i] = cp
	}
	return out
}

// importVelocity installs snapshotted velocity, validating shape
// against the live parameter list.
func importVelocity(vel map[*Param][]float32, params []*Param, state [][]float32) error {
	if len(state) != len(params) {
		return fmt.Errorf("nn: optimizer state has %d tensors, model has %d parameters", len(state), len(params))
	}
	for i, p := range params {
		if len(state[i]) != p.W.Len() {
			return fmt.Errorf("nn: optimizer state %d has %d values, parameter %q wants %d",
				i, len(state[i]), p.Name, p.W.Len())
		}
	}
	for i, p := range params {
		cp := make([]float32, p.W.Len())
		copy(cp, state[i])
		vel[p] = cp
	}
	return nil
}

// PolySchedule is DeepLab's "poly" learning-rate policy with the
// linear-scaling rule and gradual warmup from Goyal et al. — the
// schedule the paper uses for distributed training:
//
//	lr(t) = target · (1 − t/T)^power, after warming up linearly from
//	BaseLR to target = BaseLR·WorldSize over WarmupSteps.
type PolySchedule struct {
	BaseLR      float64
	Power       float64
	TotalSteps  int
	WarmupSteps int
	WorldSize   int
}

// NewPolySchedule builds the schedule with DeepLab defaults
// (power 0.9) and a 5-epoch-style warmup fraction left to the caller.
func NewPolySchedule(baseLR float64, totalSteps, warmupSteps, worldSize int) PolySchedule {
	if totalSteps <= 0 || worldSize <= 0 || warmupSteps < 0 {
		panic(fmt.Sprintf("nn: bad schedule (total=%d warmup=%d world=%d)", totalSteps, warmupSteps, worldSize))
	}
	return PolySchedule{BaseLR: baseLR, Power: 0.9, TotalSteps: totalSteps, WarmupSteps: warmupSteps, WorldSize: worldSize}
}

// LR returns the learning rate for step t (0-based).
func (s PolySchedule) LR(t int) float64 {
	target := s.BaseLR * float64(s.WorldSize)
	if t < s.WarmupSteps {
		frac := float64(t+1) / float64(s.WarmupSteps)
		return s.BaseLR + (target-s.BaseLR)*frac
	}
	if t >= s.TotalSteps {
		return 0
	}
	frac := float64(t-s.WarmupSteps) / float64(s.TotalSteps-s.WarmupSteps)
	return target * math.Pow(1-frac, s.Power)
}

// GradNorm returns the global L2 norm across all parameter gradients
// (a training-health diagnostic).
func GradNorm(params []*Param) float64 {
	s := 0.0
	for _, p := range params {
		for _, v := range p.G.Data {
			s += float64(v) * float64(v)
		}
	}
	return math.Sqrt(s)
}
