package tensor

import (
	"fmt"
	"math/bits"
	"sync"
)

// Workspace is a size-class pooled tensor arena for the training hot
// path. Every tensor a forward/backward pass needs — activations,
// im2col buffers, gradients-in-flight — is drawn from the arena with
// Get and returned wholesale with Reset at the end of the step, so a
// steady-state training step performs (approximately) zero heap
// allocations: after the first step every Get is served from a free
// list.
//
// Buffers are bucketed by power-of-two capacity classes, so a request
// is served by any free buffer of the same class regardless of shape
// — the arena does not fragment across the many distinct activation
// shapes of a deep network.
//
// Usage contract:
//   - Get/GetRaw hand out tensors owned by the arena. They stay valid
//     until Reset; afterwards their backing arrays may be reused, so
//     holding a workspace tensor across Reset is a use-after-free bug.
//     Long-lived state (parameters, gradients, running statistics)
//     must not come from a workspace.
//   - Put returns one tensor early (kernel-internal scratch); it is
//     optional — Reset reclaims everything outstanding.
//   - A nil *Workspace is valid and falls back to plain heap
//     allocation, so kernels take a workspace unconditionally and
//     callers opt in.
//
// All methods are safe for concurrent use: the per-worker goroutines a
// kernel fans out share their rank's workspace under one mutex (the
// handful of Gets per kernel launch is far off the critical path).
type Workspace struct {
	mu   sync.Mutex
	free map[uint][]*Tensor // capacity class (log2) → free tensors
	lent []*Tensor          // outstanding tensors, reclaimed by Reset

	gets   uint64
	hits   uint64
	resets uint64
	pooled uint64 // total float32s owned by the arena (free + lent)
}

// NewWorkspace returns an empty arena.
func NewWorkspace() *Workspace {
	return &Workspace{free: make(map[uint][]*Tensor)}
}

// wsClassMin is the smallest pooled capacity; tiny requests all share
// one class so per-channel scratch vectors don't sprawl buckets.
const wsClassMin = 64

// wsClass returns the capacity class (log2 of the rounded-up size).
func wsClass(n int) uint {
	if n < wsClassMin {
		n = wsClassMin
	}
	return uint(bits.Len(uint(n - 1)))
}

// Get returns a zeroed tensor of the given shape from the arena (or
// the heap when w is nil). The tensor is valid until Reset.
func (w *Workspace) Get(shape ...int) *Tensor {
	if w == nil {
		return New(shape...)
	}
	t := w.GetRaw(shape...)
	for i := range t.Data {
		t.Data[i] = 0
	}
	return t
}

// GetRaw is Get without the zero fill, for destinations a kernel
// fully overwrites. The contents are whatever the previous borrower
// left behind.
func (w *Workspace) GetRaw(shape ...int) *Tensor {
	if w == nil {
		return New(shape...)
	}
	// Inline numel with a constant panic message: passing shape to a
	// formatting panic would leak it to the heap and cost the hot path
	// one allocation per Get for the variadic slice.
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic("tensor: negative dim in workspace shape")
		}
		n *= d
	}
	class := wsClass(n)

	w.mu.Lock()
	w.gets++
	var t *Tensor
	if fl := w.free[class]; len(fl) > 0 {
		t = fl[len(fl)-1]
		w.free[class] = fl[:len(fl)-1]
		w.hits++
	} else {
		t = &Tensor{Data: make([]float32, 1<<class)} //seglint:ignore hotalloc size-class miss: arena growth, amortised to zero once warm
		w.pooled += 1 << class
	}
	t.ws = w
	t.wsIdx = len(w.lent)
	w.lent = append(w.lent, t) //seglint:ignore hotalloc lent capacity is retained across Reset; amortised to zero once warm
	w.mu.Unlock()

	t.Shape = append(t.Shape[:0], shape...) //seglint:ignore hotalloc shape capacity retained from the buffer's previous loan
	t.Data = t.Data[:cap(t.Data)][:n]
	return t
}

// Put returns one tensor to the free lists ahead of Reset. Tensors
// not owned by this workspace (heap tensors, or a double Put) are
// ignored, so unconditional Put in a nil-workspace code path is safe.
func (w *Workspace) Put(t *Tensor) {
	if w == nil || t == nil || t.ws != w {
		return
	}
	w.mu.Lock()
	w.release(t)
	w.mu.Unlock()
}

// release moves t from lent to its free list. Caller holds w.mu.
func (w *Workspace) release(t *Tensor) {
	last := len(w.lent) - 1
	if i := t.wsIdx; i >= 0 && i <= last && w.lent[i] == t {
		w.lent[i] = w.lent[last]
		w.lent[i].wsIdx = i
		w.lent = w.lent[:last]
	}
	t.ws = nil
	class := wsClass(cap(t.Data))
	w.free[class] = append(w.free[class], t) //seglint:ignore hotalloc free-list capacity is retained; amortised to zero once warm
}

// Reset reclaims every outstanding tensor. The step boundary calls it
// once all activations and scratch of the step are dead; the next
// step's Gets are then served allocation-free from the free lists.
func (w *Workspace) Reset() {
	if w == nil {
		return
	}
	w.mu.Lock()
	for _, t := range w.lent {
		t.ws = nil
		class := wsClass(cap(t.Data))
		w.free[class] = append(w.free[class], t) //seglint:ignore hotalloc free-list capacity is retained; amortised to zero once warm
	}
	w.lent = w.lent[:0]
	w.resets++
	w.mu.Unlock()
}

// WorkspaceStats is a point-in-time snapshot of arena behaviour.
type WorkspaceStats struct {
	// Gets counts Get/GetRaw calls; Hits counts those served from a
	// free list. A warmed-up steady state has Hits == Gets.
	Gets, Hits uint64
	// Outstanding is the number of tensors currently on loan.
	Outstanding int
	// PooledBytes is the total backing memory the arena owns.
	PooledBytes uint64
	// Resets counts Reset calls (≈ training steps).
	Resets uint64
}

// Stats reports arena counters (zero value for a nil workspace).
func (w *Workspace) Stats() WorkspaceStats {
	if w == nil {
		return WorkspaceStats{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return WorkspaceStats{
		Gets:        w.gets,
		Hits:        w.hits,
		Outstanding: len(w.lent),
		PooledBytes: 4 * w.pooled,
		Resets:      w.resets,
	}
}

func (s WorkspaceStats) String() string {
	return fmt.Sprintf("gets=%d hits=%d outstanding=%d pooled=%dB resets=%d",
		s.Gets, s.Hits, s.Outstanding, s.PooledBytes, s.Resets)
}

// kernelScratch pools the packing panels the tiled matmul kernels use
// internally. It is process-global (kernels have no workspace
// parameter), never Reset, and strictly Get/Put balanced, so its
// footprint is bounded by peak kernel concurrency.
var kernelScratch = NewWorkspace()
