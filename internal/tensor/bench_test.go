package tensor

import (
	"math/rand"
	"testing"
)

func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{32, 128} {
		b.Run(itoa(n), func(b *testing.B) {
			x := Randn(rng, 1, n, n)
			y := Randn(rng, 1, n, n)
			out := New(n, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulInto(out, x, y, false)
			}
			b.SetBytes(int64(8 * n * n))
		})
	}
}

func BenchmarkConv2DForward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := Randn(rng, 1, 4, 16, 24, 24)
	w := Randn(rng, 0.5, 16, 16, 3, 3)
	spec := ConvSpec{Pad: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2D(x, w, spec)
	}
}

func BenchmarkAtrousConv2D(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := Randn(rng, 1, 4, 16, 24, 24)
	w := Randn(rng, 0.5, 16, 16, 3, 3)
	spec := ConvSpec{Pad: 6, Dilation: 6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2D(x, w, spec)
	}
}

func BenchmarkConv2DBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := Randn(rng, 1, 4, 16, 24, 24)
	w := Randn(rng, 0.5, 16, 16, 3, 3)
	spec := ConvSpec{Pad: 1}
	dout := Randn(rng, 1, 4, 16, 24, 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2DBackward(x, w, dout, spec)
	}
}

func BenchmarkBilinearResize(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x := Randn(rng, 1, 4, 16, 12, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BilinearResize(x, 24, 24)
	}
}

func BenchmarkSoftmaxCrossEntropy(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	logits := Randn(rng, 1, 4, 21, 24, 24)
	labels := make([]int32, 4*24*24)
	for i := range labels {
		labels[i] = int32(i % 21)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SoftmaxCrossEntropy(logits, labels, 255)
	}
}

func itoa(n int) string {
	if n == 32 {
		return "32x32"
	}
	return "128x128"
}
