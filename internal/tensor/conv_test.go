package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// naiveConv2D is a direct 7-loop reference implementation.
func naiveConv2D(x, w *Tensor, spec ConvSpec) *Tensor {
	s := spec.Canon()
	n, h, wd := x.Dim(0), x.Dim(2), x.Dim(3)
	f, cg, kh, kw := w.Dim(0), w.Dim(1), w.Dim(2), w.Dim(3)
	oh := ConvOutSize(h, kh, s.Stride, s.Pad, s.Dilation)
	ow := ConvOutSize(wd, kw, s.Stride, s.Pad, s.Dilation)
	fg := f / s.Groups
	out := New(n, f, oh, ow)
	for i := 0; i < n; i++ {
		for ff := 0; ff < f; ff++ {
			g := ff / fg
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var sum float32
					for cc := 0; cc < cg; cc++ {
						ci := g*cg + cc
						for ky := 0; ky < kh; ky++ {
							iy := oy*s.Stride - s.Pad + ky*s.Dilation
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < kw; kx++ {
								ix := ox*s.Stride - s.Pad + kx*s.Dilation
								if ix < 0 || ix >= wd {
									continue
								}
								sum += x.At(i, ci, iy, ix) * w.At(ff, cc, ky, kx)
							}
						}
					}
					out.Set(sum, i, ff, oy, ox)
				}
			}
		}
	}
	return out
}

func TestConv2DMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cases := []struct {
		n, c, h, w, f, k int
		spec             ConvSpec
	}{
		{1, 1, 5, 5, 1, 3, ConvSpec{Stride: 1, Pad: 1}},
		{2, 3, 7, 6, 4, 3, ConvSpec{Stride: 1, Pad: 1}},
		{2, 3, 8, 8, 4, 3, ConvSpec{Stride: 2, Pad: 1}},
		{1, 2, 9, 9, 3, 3, ConvSpec{Stride: 1, Pad: 2, Dilation: 2}},   // atrous
		{1, 2, 11, 11, 2, 3, ConvSpec{Stride: 1, Pad: 4, Dilation: 4}}, // atrous rate 4
		{1, 4, 6, 6, 4, 3, ConvSpec{Stride: 1, Pad: 1, Groups: 4}},     // depthwise
		{2, 6, 5, 5, 4, 3, ConvSpec{Stride: 1, Pad: 1, Groups: 2}},     // grouped
		{1, 3, 5, 5, 2, 1, ConvSpec{}},                                 // 1×1 pointwise
		{1, 2, 7, 7, 2, 5, ConvSpec{Stride: 2, Pad: 2}},
	}
	for i, c := range cases {
		x := Randn(rng, 1, c.n, c.c, c.h, c.w)
		g := c.spec.Canon().Groups
		w := Randn(rng, 0.5, c.f, c.c/g, c.k, c.k)
		got := Conv2D(x, w, c.spec)
		want := naiveConv2D(x, w, c.spec)
		tensorsClose(t, got, want, 1e-3, "conv case "+string(rune('A'+i)))
	}
}

func TestConvOutSize(t *testing.T) {
	if got := ConvOutSize(513, 3, 1, 1, 1); got != 513 {
		t.Errorf("same conv: %d", got)
	}
	if got := ConvOutSize(33, 3, 1, 6, 6); got != 33 {
		t.Errorf("atrous rate-6 same conv: %d", got)
	}
	if got := ConvOutSize(8, 3, 2, 1, 1); got != 4 {
		t.Errorf("stride 2: %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("impossible conv accepted")
		}
	}()
	ConvOutSize(2, 5, 1, 0, 1)
}

func TestSamePad(t *testing.T) {
	if SamePad(3, 1) != 1 || SamePad(3, 6) != 6 || SamePad(5, 1) != 2 {
		t.Fatal("SamePad wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("even kernel accepted")
		}
	}()
	SamePad(4, 1)
}

func TestConvValidation(t *testing.T) {
	x := New(1, 3, 5, 5)
	for _, f := range []func(){
		func() { Conv2D(x, New(2, 2, 3, 3), ConvSpec{Pad: 1}) },            // wrong cg
		func() { Conv2D(x, New(2, 3, 3, 3), ConvSpec{Pad: 1, Groups: 2}) }, // groups ∤ C
		func() { Conv2D(x.Reshape(3, 5, 5, 1), New(2, 3, 3, 3), ConvSpec{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid conv accepted")
				}
			}()
			f()
		}()
	}
}

// numericalGrad approximates d(sum(conv output ⊙ mask))/dθ.
func numericalGrad(eval func() float64, param []float32, i int) float64 {
	const eps = 1e-2
	orig := param[i]
	param[i] = orig + eps
	up := eval()
	param[i] = orig - eps
	down := eval()
	param[i] = orig
	return (up - down) / (2 * eps)
}

func TestConv2DBackwardNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	specs := []ConvSpec{
		{Stride: 1, Pad: 1},
		{Stride: 2, Pad: 1},
		{Stride: 1, Pad: 2, Dilation: 2},
		{Stride: 1, Pad: 1, Groups: 2},
	}
	for si, spec := range specs {
		x := Randn(rng, 1, 1, 2, 5, 5)
		g := spec.Canon().Groups
		w := Randn(rng, 0.5, 2, 2/g, 3, 3)
		// Loss = Σ out ⊙ mask for a random fixed mask.
		out := Conv2D(x, w, spec)
		mask := Randn(rng, 1, out.Shape...)
		eval := func() float64 {
			o := Conv2D(x, w, spec)
			s := 0.0
			for i := range o.Data {
				s += float64(o.Data[i] * mask.Data[i])
			}
			return s
		}
		dx, dw := Conv2DBackward(x, w, mask, spec)
		// Spot-check a handful of weight and input coordinates.
		for _, i := range []int{0, 3, 7, len(w.Data) - 1} {
			want := numericalGrad(eval, w.Data, i)
			if d := math.Abs(float64(dw.Data[i]) - want); d > 2e-2 {
				t.Errorf("spec %d: dw[%d] = %g, numerical %g", si, i, dw.Data[i], want)
			}
		}
		for _, i := range []int{0, 11, 24, len(x.Data) - 1} {
			want := numericalGrad(eval, x.Data, i)
			if d := math.Abs(float64(dx.Data[i]) - want); d > 2e-2 {
				t.Errorf("spec %d: dx[%d] = %g, numerical %g", si, i, dx.Data[i], want)
			}
		}
	}
}

func TestConv2DBackwardShapeValidation(t *testing.T) {
	x := New(1, 2, 5, 5)
	w := New(2, 2, 3, 3)
	defer func() {
		if recover() == nil {
			t.Error("wrong dout shape accepted")
		}
	}()
	Conv2DBackward(x, w, New(1, 2, 9, 9), ConvSpec{Pad: 1})
}

func TestGlobalAvgPool(t *testing.T) {
	x := New(1, 2, 2, 2)
	copy(x.Data, []float32{1, 2, 3, 4, 10, 20, 30, 40})
	out := GlobalAvgPool(x)
	if out.At(0, 0, 0, 0) != 2.5 || out.At(0, 1, 0, 0) != 25 {
		t.Fatalf("pool = %v", out.Data)
	}
	dx := GlobalAvgPoolBackward(out, 2, 2)
	if dx.At(0, 0, 0, 0) != 2.5/4 {
		t.Fatalf("pool backward = %v", dx.Data)
	}
}

func TestMaxPool2(t *testing.T) {
	x := New(1, 1, 2, 4)
	copy(x.Data, []float32{1, 5, 2, 0, 3, 4, 1, 9})
	out, arg := MaxPool2(x)
	if out.At(0, 0, 0, 0) != 5 || out.At(0, 0, 0, 1) != 9 {
		t.Fatalf("maxpool = %v", out.Data)
	}
	dout := Full(1, 1, 1, 1, 2)
	dx := MaxPool2Backward(dout, arg, 2, 4)
	if dx.Data[1] != 1 || dx.Data[7] != 1 || dx.Sum() != 2 {
		t.Fatalf("maxpool backward = %v", dx.Data)
	}
}

func TestMaxPool2OddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("odd input accepted")
		}
	}()
	MaxPool2(New(1, 1, 3, 4))
}

func TestBilinearResizeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	x := Randn(rng, 1, 2, 2, 4, 4)
	y := BilinearResize(x, 4, 4)
	tensorsClose(t, y, x, 1e-6, "identity resize")
}

func TestBilinearResizeUpsampleCorners(t *testing.T) {
	// align_corners=true must preserve corner values exactly.
	x := New(1, 1, 2, 2)
	copy(x.Data, []float32{1, 2, 3, 4})
	y := BilinearResize(x, 5, 5)
	if y.At(0, 0, 0, 0) != 1 || y.At(0, 0, 0, 4) != 2 || y.At(0, 0, 4, 0) != 3 || y.At(0, 0, 4, 4) != 4 {
		t.Fatalf("corners: %v", y.Data)
	}
	// Centre is the average of all four.
	if c := y.At(0, 0, 2, 2); math.Abs(float64(c-2.5)) > 1e-6 {
		t.Fatalf("centre = %v", c)
	}
}

// Adjoint test: <Resize(x), y> == <x, ResizeBackward(y)> — verifies
// the backward pass is the exact transpose of the forward.
func TestBilinearResizeAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, dims := range [][4]int{{3, 3, 7, 7}, {5, 5, 3, 3}, {4, 6, 9, 5}} {
		x := Randn(rng, 1, 1, 1, dims[0], dims[1])
		y := Randn(rng, 1, 1, 1, dims[2], dims[3])
		ax := BilinearResize(x, dims[2], dims[3])
		aty := BilinearResizeBackward(y, dims[0], dims[1])
		var lhs, rhs float64
		for i := range ax.Data {
			lhs += float64(ax.Data[i] * y.Data[i])
		}
		for i := range x.Data {
			rhs += float64(x.Data[i] * aty.Data[i])
		}
		if math.Abs(lhs-rhs) > 1e-3 {
			t.Errorf("%v: <Ax,y>=%g != <x,Aᵀy>=%g", dims, lhs, rhs)
		}
	}
}

func TestSoftmaxCrossEntropyUniform(t *testing.T) {
	// All-zero logits over K classes → loss = ln K.
	k := 4
	logits := New(1, k, 2, 2)
	labels := []int32{0, 1, 2, 3}
	loss, grad := SoftmaxCrossEntropy(logits, labels, 255)
	if math.Abs(loss-math.Log(float64(k))) > 1e-6 {
		t.Fatalf("uniform loss = %g, want ln %d", loss, k)
	}
	// Gradient sums to zero per pixel.
	for p := 0; p < 4; p++ {
		var s float64
		for c := 0; c < k; c++ {
			s += float64(grad.At(0, c, p/2, p%2))
		}
		if math.Abs(s) > 1e-6 {
			t.Fatalf("gradient at pixel %d sums to %g", p, s)
		}
	}
}

func TestSoftmaxCrossEntropyIgnore(t *testing.T) {
	logits := New(1, 3, 1, 2)
	logits.Set(5, 0, 1, 0, 0) // confident class-1 at pixel 0
	labels := []int32{1, 255}
	loss, grad := SoftmaxCrossEntropy(logits, labels, 255)
	if loss > 0.1 {
		t.Fatalf("confident correct prediction loss = %g", loss)
	}
	for c := 0; c < 3; c++ {
		if grad.At(0, c, 0, 1) != 0 {
			t.Fatal("ignored pixel received gradient")
		}
	}
	// All-ignored batch: zero loss, zero grad.
	loss2, grad2 := SoftmaxCrossEntropy(New(1, 3, 1, 2), []int32{255, 255}, 255)
	if loss2 != 0 || grad2.MaxAbs() != 0 {
		t.Fatal("all-ignored batch produced loss/gradient")
	}
}

func TestSoftmaxCrossEntropyNumericalGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	logits := Randn(rng, 1, 1, 3, 2, 2)
	labels := []int32{0, 2, 255, 1}
	_, grad := SoftmaxCrossEntropy(logits, labels, 255)
	eval := func() float64 {
		l, _ := SoftmaxCrossEntropy(logits, labels, 255)
		return l
	}
	for _, i := range []int{0, 5, 11} {
		want := numericalGrad(eval, logits.Data, i)
		if d := math.Abs(float64(grad.Data[i]) - want); d > 2e-3 {
			t.Errorf("dlogits[%d] = %g, numerical %g", i, grad.Data[i], want)
		}
	}
}

func TestSoftmaxCrossEntropyBadLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range label accepted")
		}
	}()
	SoftmaxCrossEntropy(New(1, 3, 1, 1), []int32{7}, 255)
}

func TestArgmaxClass(t *testing.T) {
	logits := New(1, 3, 1, 2)
	logits.Set(9, 0, 2, 0, 0)
	logits.Set(9, 0, 1, 0, 1)
	pred := ArgmaxClass(logits)
	if pred[0] != 2 || pred[1] != 1 {
		t.Fatalf("pred = %v", pred)
	}
}
