package tensor

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestParallelCoversEachIndexOnce verifies the partition tiles [0,n)
// exactly: every index visited once, none skipped, none duplicated.
func TestParallelCoversEachIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000, 4096, 4097} {
		hits := make([]int32, n)
		Parallel(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

// TestParallelDisjointWrites writes to a shared slice without any
// synchronisation beyond the partition itself. Under -race this proves
// workers never hand overlapping [lo,hi) ranges to fn.
func TestParallelDisjointWrites(t *testing.T) {
	const n = 100_000
	buf := make([]float32, n)
	Parallel(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			buf[i] = float32(i)
		}
	})
	for i, v := range buf {
		if v != float32(i) {
			t.Fatalf("index %d = %g", i, v)
		}
	}
}

// TestParallelConcurrentCalls hammers Parallel from many goroutines at
// once, each over its own output slice. Parallel keeps no package
// state, so concurrent calls must not interfere; -race checks it.
func TestParallelConcurrentCalls(t *testing.T) {
	const callers = 16
	const n = 10_000
	outs := make([][]float32, callers)
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]float32, n)
			Parallel(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					buf[i] = float32(g*n + i)
				}
			})
			outs[g] = buf
		}(g)
	}
	wg.Wait()
	for g, buf := range outs {
		for i, v := range buf {
			if v != float32(g*n+i) {
				t.Fatalf("caller %d index %d = %g", g, i, v)
			}
		}
	}
}

// TestParallelNestedCalls runs Parallel inside Parallel — the shape a
// parallel conv layer calling a parallel matmul produces. It must not
// deadlock or misPartition.
func TestParallelNestedCalls(t *testing.T) {
	const rows, cols = 32, 257
	buf := make([]float32, rows*cols)
	Parallel(rows, func(rlo, rhi int) {
		for r := rlo; r < rhi; r++ {
			row := buf[r*cols : (r+1)*cols]
			Parallel(cols, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					row[i] = float32(r)
				}
			})
		}
	})
	for r := 0; r < rows; r++ {
		for i := 0; i < cols; i++ {
			if buf[r*cols+i] != float32(r) {
				t.Fatalf("row %d col %d = %g", r, i, buf[r*cols+i])
			}
		}
	}
}
