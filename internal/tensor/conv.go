package tensor

import (
	"fmt"
	"sync"
)

// ConvSpec parameterises a 2-D convolution. Dilation > 1 gives the
// atrous convolutions DeepLab's ASPP is built from; Groups == C gives
// the depthwise convolutions of Xception-style separable convs.
type ConvSpec struct {
	Stride   int
	Pad      int
	Dilation int
	Groups   int
}

// Canon fills defaults (stride/dilation/groups of 1).
func (s ConvSpec) Canon() ConvSpec {
	if s.Stride == 0 {
		s.Stride = 1
	}
	if s.Dilation == 0 {
		s.Dilation = 1
	}
	if s.Groups == 0 {
		s.Groups = 1
	}
	return s
}

// ConvOutSize returns the output spatial size for one axis.
func ConvOutSize(in, k, stride, pad, dilation int) int {
	eff := (k-1)*dilation + 1
	out := (in+2*pad-eff)/stride + 1
	if out <= 0 {
		panic(fmt.Sprintf("tensor: conv output size %d (in=%d k=%d s=%d p=%d d=%d)", out, in, k, stride, pad, dilation))
	}
	return out
}

// SamePad returns the padding that preserves spatial size for odd
// kernel k at stride 1 and the given dilation — DeepLab's atrous
// convolutions use rate·(k−1)/2.
func SamePad(k, dilation int) int {
	if k%2 == 0 {
		panic("tensor: SamePad needs odd kernel")
	}
	return dilation * (k - 1) / 2
}

func convCheck(x, w *Tensor, s ConvSpec) (n, c, h, wd, f, cg, kh, kw, oh, ow int) {
	if len(x.Shape) != 4 || len(w.Shape) != 4 {
		panic(fmt.Sprintf("tensor: conv needs NCHW x and FCKK w, got %v, %v", x.Shape, w.Shape))
	}
	n, c, h, wd = x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	f, cg, kh, kw = w.Dim(0), w.Dim(1), w.Dim(2), w.Dim(3)
	if c%s.Groups != 0 || f%s.Groups != 0 {
		panic(fmt.Sprintf("tensor: groups=%d does not divide C=%d/F=%d", s.Groups, c, f))
	}
	if cg != c/s.Groups {
		panic(fmt.Sprintf("tensor: weight channel dim %d, want C/groups=%d", cg, c/s.Groups))
	}
	oh = ConvOutSize(h, kh, s.Stride, s.Pad, s.Dilation)
	ow = ConvOutSize(wd, kw, s.Stride, s.Pad, s.Dilation)
	return
}

// im2col expands one sample's channel group into a [cg·kh·kw, oh·ow]
// matrix held in col (which must be pre-sized).
func im2col(x *Tensor, sample, chanLo, cg int, kh, kw, oh, ow int, s ConvSpec, col *Tensor) {
	_, _, h, wd := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	spatial := oh * ow
	xBase := (sample*x.Dim(1) + chanLo) * h * wd
	for cc := 0; cc < cg; cc++ {
		chOff := xBase + cc*h*wd
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := ((cc*kh+ky)*kw + kx) * spatial
				for oy := 0; oy < oh; oy++ {
					iy := oy*s.Stride - s.Pad + ky*s.Dilation
					if iy < 0 || iy >= h {
						for ox := 0; ox < ow; ox++ {
							col.Data[row+oy*ow+ox] = 0
						}
						continue
					}
					inRow := chOff + iy*wd
					outRow := row + oy*ow
					for ox := 0; ox < ow; ox++ {
						ix := ox*s.Stride - s.Pad + kx*s.Dilation
						if ix < 0 || ix >= wd {
							col.Data[outRow+ox] = 0
						} else {
							col.Data[outRow+ox] = x.Data[inRow+ix]
						}
					}
				}
			}
		}
	}
}

// col2im scatters a [cg·kh·kw, oh·ow] gradient matrix back into dx,
// accumulating overlaps.
func col2im(dx *Tensor, sample, chanLo, cg int, kh, kw, oh, ow int, s ConvSpec, col *Tensor) {
	h, wd := dx.Dim(2), dx.Dim(3)
	spatial := oh * ow
	dxBase := (sample*dx.Dim(1) + chanLo) * h * wd
	for cc := 0; cc < cg; cc++ {
		chOff := dxBase + cc*h*wd
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := ((cc*kh+ky)*kw + kx) * spatial
				for oy := 0; oy < oh; oy++ {
					iy := oy*s.Stride - s.Pad + ky*s.Dilation
					if iy < 0 || iy >= h {
						continue
					}
					inRow := chOff + iy*wd
					outRow := row + oy*ow
					for ox := 0; ox < ow; ox++ {
						ix := ox*s.Stride - s.Pad + kx*s.Dilation
						if ix >= 0 && ix < wd {
							dx.Data[inRow+ix] += col.Data[outRow+ox]
						}
					}
				}
			}
		}
	}
}

// Conv2D computes the grouped, dilated 2-D convolution of x [N,C,H,W]
// with w [F, C/groups, KH, KW], returning [N,F,OH,OW].
func Conv2D(x, w *Tensor, spec ConvSpec) *Tensor {
	s := spec.Canon()
	n, _, _, _, f, cg, kh, kw, oh, ow := convCheck(x, w, s)
	out := New(n, f, oh, ow)
	fg := f / s.Groups
	spatial := oh * ow
	Parallel(n, func(lo, hi int) {
		col := New(cg*kh*kw, spatial)
		outMat := &Tensor{Shape: []int{fg, spatial}}
		wMat := &Tensor{Shape: []int{fg, cg * kh * kw}}
		for i := lo; i < hi; i++ {
			for g := 0; g < s.Groups; g++ {
				im2col(x, i, g*cg, cg, kh, kw, oh, ow, s, col)
				wMat.Data = w.Data[g*fg*cg*kh*kw : (g+1)*fg*cg*kh*kw]
				outMat.Data = out.Data[(i*f+g*fg)*spatial : (i*f+(g+1)*fg)*spatial]
				MatMulInto(outMat, wMat, col, false)
			}
		}
	})
	return out
}

// Conv2DBackward returns gradients (dx, dw) of the convolution given
// upstream gradient dout [N,F,OH,OW].
func Conv2DBackward(x, w, dout *Tensor, spec ConvSpec) (dx, dw *Tensor) {
	s := spec.Canon()
	n, c, h, wd, f, cg, kh, kw, oh, ow := convCheck(x, w, s)
	if dout.Dim(0) != n || dout.Dim(1) != f || dout.Dim(2) != oh || dout.Dim(3) != ow {
		panic(fmt.Sprintf("tensor: conv backward dout %v, want [%d %d %d %d]", dout.Shape, n, f, oh, ow))
	}
	dx = New(n, c, h, wd)
	dw = New(f, cg, kh, kw)
	fg := f / s.Groups
	spatial := oh * ow
	ckk := cg * kh * kw

	// Weight gradients race across samples if accumulated in
	// parallel; give each worker a private dw and merge.
	var mu sync.Mutex
	var partials []*Tensor
	Parallel(n, func(lo, hi int) {
		p := New(f, cg, kh, kw)
		col := New(ckk, spatial)
		dcol := New(ckk, spatial)
		doutMat := &Tensor{Shape: []int{fg, spatial}}
		wMat := &Tensor{Shape: []int{fg, ckk}}
		dwMat := &Tensor{Shape: []int{fg, ckk}}
		for i := lo; i < hi; i++ {
			for g := 0; g < s.Groups; g++ {
				im2col(x, i, g*cg, cg, kh, kw, oh, ow, s, col)
				doutMat.Data = dout.Data[(i*f+g*fg)*spatial : (i*f+(g+1)*fg)*spatial]
				wMat.Data = w.Data[g*fg*ckk : (g+1)*fg*ckk]
				dwMat.Data = p.Data[g*fg*ckk : (g+1)*fg*ckk]
				// dW += dout · colᵀ
				MatMulBTInto(dwMat, doutMat, col, true)
				// dcol = wᵀ · dout
				MatMulATInto(dcol, wMat, doutMat, false)
				col2im(dx, i, g*cg, cg, kh, kw, oh, ow, s, dcol)
			}
		}
		mu.Lock()
		partials = append(partials, p)
		mu.Unlock()
	})
	for _, p := range partials {
		dw.Add(p)
	}
	return dx, dw
}
