package tensor

import "fmt"

// ConvSpec parameterises a 2-D convolution. Dilation > 1 gives the
// atrous convolutions DeepLab's ASPP is built from; Groups == C gives
// the depthwise convolutions of Xception-style separable convs.
type ConvSpec struct {
	Stride   int
	Pad      int
	Dilation int
	Groups   int
}

// Canon fills defaults (stride/dilation/groups of 1).
func (s ConvSpec) Canon() ConvSpec {
	if s.Stride == 0 {
		s.Stride = 1
	}
	if s.Dilation == 0 {
		s.Dilation = 1
	}
	if s.Groups == 0 {
		s.Groups = 1
	}
	return s
}

// ConvOutSize returns the output spatial size for one axis.
func ConvOutSize(in, k, stride, pad, dilation int) int {
	eff := (k-1)*dilation + 1
	out := (in+2*pad-eff)/stride + 1
	if out <= 0 {
		panic(fmt.Sprintf("tensor: conv output size %d (in=%d k=%d s=%d p=%d d=%d)", out, in, k, stride, pad, dilation))
	}
	return out
}

// SamePad returns the padding that preserves spatial size for odd
// kernel k at stride 1 and the given dilation — DeepLab's atrous
// convolutions use rate·(k−1)/2.
func SamePad(k, dilation int) int {
	if k%2 == 0 {
		panic("tensor: SamePad needs odd kernel")
	}
	return dilation * (k - 1) / 2
}

func convCheck(x, w *Tensor, s ConvSpec) (n, c, h, wd, f, cg, kh, kw, oh, ow int) {
	if len(x.Shape) != 4 || len(w.Shape) != 4 {
		panic(fmt.Sprintf("tensor: conv needs NCHW x and FCKK w, got %v, %v", x.Shape, w.Shape))
	}
	n, c, h, wd = x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	f, cg, kh, kw = w.Dim(0), w.Dim(1), w.Dim(2), w.Dim(3)
	if c%s.Groups != 0 || f%s.Groups != 0 {
		panic(fmt.Sprintf("tensor: groups=%d does not divide C=%d/F=%d", s.Groups, c, f))
	}
	if cg != c/s.Groups {
		panic(fmt.Sprintf("tensor: weight channel dim %d, want C/groups=%d", cg, c/s.Groups))
	}
	oh = ConvOutSize(h, kh, s.Stride, s.Pad, s.Dilation)
	ow = ConvOutSize(wd, kw, s.Stride, s.Pad, s.Dilation)
	return
}

// im2col expands one sample's channel group into a [cg·kh·kw, oh·ow]
// matrix held in col (which must be pre-sized).
func im2col(x *Tensor, sample, chanLo, cg int, kh, kw, oh, ow int, s ConvSpec, col *Tensor) {
	_, _, h, wd := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	spatial := oh * ow
	xBase := (sample*x.Dim(1) + chanLo) * h * wd
	for cc := 0; cc < cg; cc++ {
		chOff := xBase + cc*h*wd
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := ((cc*kh+ky)*kw + kx) * spatial
				for oy := 0; oy < oh; oy++ {
					iy := oy*s.Stride - s.Pad + ky*s.Dilation
					if iy < 0 || iy >= h {
						for ox := 0; ox < ow; ox++ {
							col.Data[row+oy*ow+ox] = 0
						}
						continue
					}
					inRow := chOff + iy*wd
					outRow := row + oy*ow
					for ox := 0; ox < ow; ox++ {
						ix := ox*s.Stride - s.Pad + kx*s.Dilation
						if ix < 0 || ix >= wd {
							col.Data[outRow+ox] = 0
						} else {
							col.Data[outRow+ox] = x.Data[inRow+ix]
						}
					}
				}
			}
		}
	}
}

// col2im scatters a [cg·kh·kw, oh·ow] gradient matrix back into dx,
// accumulating overlaps.
func col2im(dx *Tensor, sample, chanLo, cg int, kh, kw, oh, ow int, s ConvSpec, col *Tensor) {
	h, wd := dx.Dim(2), dx.Dim(3)
	spatial := oh * ow
	dxBase := (sample*dx.Dim(1) + chanLo) * h * wd
	for cc := 0; cc < cg; cc++ {
		chOff := dxBase + cc*h*wd
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := ((cc*kh+ky)*kw + kx) * spatial
				for oy := 0; oy < oh; oy++ {
					iy := oy*s.Stride - s.Pad + ky*s.Dilation
					if iy < 0 || iy >= h {
						continue
					}
					inRow := chOff + iy*wd
					outRow := row + oy*ow
					for ox := 0; ox < ow; ox++ {
						ix := ox*s.Stride - s.Pad + kx*s.Dilation
						if ix >= 0 && ix < wd {
							dx.Data[inRow+ix] += col.Data[outRow+ox]
						}
					}
				}
			}
		}
	}
}

// Conv2D computes the grouped, dilated 2-D convolution of x [N,C,H,W]
// with w [F, C/groups, KH, KW], returning [N,F,OH,OW].
func Conv2D(x, w *Tensor, spec ConvSpec) *Tensor {
	return Conv2DWS(x, w, spec, nil)
}

// Conv2DWS is Conv2D drawing the output and all internal scratch from
// ws (heap when nil). With a warm workspace the call is
// allocation-free on the serial path; the returned tensor is owned by
// ws and valid until its Reset.
//
//seglint:hotpath conv forward; 0-alloc with a warm workspace on the serial path
func Conv2DWS(x, w *Tensor, spec ConvSpec, ws *Workspace) *Tensor {
	s := spec.Canon()
	n, _, _, _, f, cg, kh, kw, oh, ow := convCheck(x, w, s)
	out := ws.GetRaw(n, f, oh, ow) // every element written below
	fg := f / s.Groups
	if parallelDegree(n) <= 1 {
		conv2DSamples(x, w, out, s, 0, n, fg, cg, kh, kw, oh, ow, ws)
		return out
	}
	Parallel(n, func(lo, hi int) { //seglint:ignore hotalloc one closure per parallel launch; the 0-alloc budget path (GOMAXPROCS=1) bypasses it
		conv2DSamples(x, w, out, s, lo, hi, fg, cg, kh, kw, oh, ow, ws)
	})
	return out
}

// conv2DSamples runs the im2col+matmul forward for samples [lo,hi).
// The matmul is invoked through its raw row-worker so no header
// tensors are built per call.
func conv2DSamples(x, w, out *Tensor, s ConvSpec, lo, hi, fg, cg, kh, kw, oh, ow int, ws *Workspace) {
	f := out.Dim(1)
	spatial := oh * ow
	ckk := cg * kh * kw
	col := ws.GetRaw(ckk, spatial) // im2col writes every element
	for i := lo; i < hi; i++ {
		for g := 0; g < s.Groups; g++ {
			im2col(x, i, g*cg, cg, kh, kw, oh, ow, s, col)
			wSlab := w.Data[g*fg*ckk : (g+1)*fg*ckk]
			outSlab := out.Data[(i*f+g*fg)*spatial : (i*f+(g+1)*fg)*spatial]
			matmulRows(outSlab, wSlab, col.Data, ckk, spatial, 0, fg, false)
		}
	}
	ws.Put(col)
}

// Conv2DBackward returns gradients (dx, dw) of the convolution given
// upstream gradient dout [N,F,OH,OW].
func Conv2DBackward(x, w, dout *Tensor, spec ConvSpec) (dx, dw *Tensor) {
	return Conv2DBackwardWS(x, w, dout, spec, nil)
}

// Conv2DBackwardWS is Conv2DBackward drawing outputs and scratch from
// ws (heap when nil).
//
// Weight gradients are accumulated deterministically: each sample's
// dW contribution lands in its own partial buffer, and the partials
// are merged in ascending sample order with the element range split
// across workers. Every dw element therefore folds its samples in the
// exact order the GOMAXPROCS=1 serial loop would, so the result is
// bit-identical regardless of worker count — unlike the previous
// per-worker partials appended under a mutex, whose merge order
// depended on goroutine scheduling. (A pairwise tree reduction was
// rejected: rebalancing the fold tree changes float associativity, so
// it cannot be bit-identical to the serial merge it replaces.)
//
//seglint:hotpath conv backward; 0-alloc with a warm workspace on the serial path
func Conv2DBackwardWS(x, w, dout *Tensor, spec ConvSpec, ws *Workspace) (dx, dw *Tensor) {
	s := spec.Canon()
	n, c, h, wd, f, cg, kh, kw, oh, ow := convCheck(x, w, s)
	if dout.Dim(0) != n || dout.Dim(1) != f || dout.Dim(2) != oh || dout.Dim(3) != ow {
		panic(fmt.Sprintf("tensor: conv backward dout %v, want [%d %d %d %d]", dout.Shape, n, f, oh, ow))
	}
	// Locals, not the named results: a closure capturing a named
	// result forces it to be heap-boxed on every call.
	dxT := ws.Get(n, c, h, wd)      // zeroed: col2im accumulates overlaps
	dwT := ws.GetRaw(f, cg, kh, kw) // every element written by the merge
	fg := f / s.Groups
	psz := f * cg * kh * kw
	partials := ws.GetRaw(n, f, cg, kh, kw)
	if parallelDegree(n) <= 1 {
		convBackwardSamples(x, w, dout, dxT, partials, s, 0, n, fg, cg, kh, kw, oh, ow, ws)
	} else {
		Parallel(n, func(lo, hi int) { //seglint:ignore hotalloc one closure per parallel launch; the 0-alloc budget path (GOMAXPROCS=1) bypasses it
			convBackwardSamples(x, w, dout, dxT, partials, s, lo, hi, fg, cg, kh, kw, oh, ow, ws)
		})
	}
	dwd, pd := dwT.Data, partials.Data
	if parallelDegree(psz) <= 1 {
		mergeSamplePartials(dwd, pd, n, 0, psz)
	} else {
		Parallel(psz, func(lo, hi int) { //seglint:ignore hotalloc one closure per parallel launch; the 0-alloc budget path (GOMAXPROCS=1) bypasses it
			mergeSamplePartials(dwd, pd, n, lo, hi)
		})
	}
	ws.Put(partials)
	return dxT, dwT
}

// convBackwardSamples computes dx rows and per-sample dW partials for
// samples [lo,hi). Samples touch disjoint dx and partial regions, so
// workers never race.
func convBackwardSamples(x, w, dout, dx, partials *Tensor, s ConvSpec, lo, hi, fg, cg, kh, kw, oh, ow int, ws *Workspace) {
	f := dout.Dim(1)
	spatial := oh * ow
	ckk := cg * kh * kw
	col := ws.GetRaw(ckk, spatial)
	dcol := ws.GetRaw(ckk, spatial) // fully written by the AT matmul
	for i := lo; i < hi; i++ {
		pbase := i * f * ckk
		for g := 0; g < s.Groups; g++ {
			im2col(x, i, g*cg, cg, kh, kw, oh, ow, s, col)
			doutSlab := dout.Data[(i*f+g*fg)*spatial : (i*f+(g+1)*fg)*spatial]
			wSlab := w.Data[g*fg*ckk : (g+1)*fg*ckk]
			dwSlab := partials.Data[pbase+g*fg*ckk : pbase+(g+1)*fg*ckk]
			// dW_i = dout_i · colᵀ
			matmulBTRows(dwSlab, doutSlab, col.Data, spatial, ckk, 0, fg, false)
			// dcol = wᵀ · dout_i
			matmulATRows(dcol.Data, wSlab, doutSlab, fg, ckk, spatial, 0, ckk, false)
			col2im(dx, i, g*cg, cg, kh, kw, oh, ow, s, dcol)
		}
	}
	ws.Put(dcol)
	ws.Put(col)
}

// mergeSamplePartials folds n per-sample partials into dst for the
// element range [lo,hi): dst[e] = Σ_i src[i·len(dst)+e], summed in
// ascending i. Splitting by element keeps every element's fold order
// fixed, so the merge is bit-identical at any worker count.
func mergeSamplePartials(dst, src []float32, n, lo, hi int) {
	sz := len(dst)
	copy(dst[lo:hi], src[lo:hi])
	for i := 1; i < n; i++ {
		p := src[i*sz+lo : i*sz+hi]
		d := dst[lo:hi]
		for e, v := range p {
			d[e] += v
		}
	}
}
