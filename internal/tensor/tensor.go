// Package tensor provides dense float32 tensors and the numerical
// kernels the real training path needs: matrix multiply, im2col
// convolution with stride/padding/dilation/groups (dilation is what
// makes DeepLab's atrous convolutions possible), pooling, bilinear
// resampling, and elementwise ops. Layout is row-major NCHW.
//
// Kernels parallelise across batch/row blocks with goroutines; with
// GOMAXPROCS=1 they degrade to serial loops with no allocation cost.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major float32 array with a shape.
type Tensor struct {
	Shape []int
	Data  []float32

	// Workspace bookkeeping: non-nil ws marks a tensor currently on
	// loan from an arena (see Workspace); wsIdx is its slot in the
	// arena's outstanding list. Zero values mean "plain heap tensor".
	ws    *Workspace
	wsIdx int
}

// numel returns the product of dims, validating non-negativity. The
// panic message is a constant: formatting shape would leak every
// variadic shape slice to the heap and cost allocation-free callers
// (Workspace.GetRaw, the kernels' pack-panel Gets) one allocation per
// call.
func numel(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic("tensor: negative dim in shape")
		}
		n *= d
	}
	return n
}

// New allocates a zero tensor of the given shape.
func New(shape ...int) *Tensor {
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, numel(shape))} //seglint:ignore hotalloc heap constructor; hot paths reach it only through the nil-workspace fallback
}

// FromSlice wraps data (not copied) with a shape.
func FromSlice(data []float32, shape ...int) *Tensor {
	if numel(shape) != len(data) {
		panic(fmt.Sprintf("tensor: %v needs %d elements, got %d", shape, numel(shape), len(data)))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data} //seglint:ignore hotalloc view header over caller-owned memory: a few words of shape, no data copy
}

// Randn fills a new tensor with N(0, std²) values from rng.
func Randn(rng *rand.Rand, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64() * std)
	}
	return t
}

// Full returns a tensor filled with v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// Len returns the element count.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of axis i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view with a new shape of equal element count.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	if numel(shape) != len(t.Data) {
		panic(fmt.Sprintf("tensor: reshape %v to %v", t.Shape, shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// SameShape reports whether two tensors have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

func (t *Tensor) mustSameShape(o *Tensor, op string) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, t.Shape, o.Shape))
	}
}

// Add accumulates o into t elementwise.
func (t *Tensor) Add(o *Tensor) {
	t.mustSameShape(o, "add")
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// AddScaled accumulates s·o into t.
func (t *Tensor) AddScaled(s float32, o *Tensor) {
	t.mustSameShape(o, "addscaled")
	for i, v := range o.Data {
		t.Data[i] += s * v
	}
}

// Scale multiplies every element by s.
func (t *Tensor) Scale(s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// MulElem multiplies t by o elementwise.
func (t *Tensor) MulElem(o *Tensor) {
	t.mustSameShape(o, "mul")
	for i, v := range o.Data {
		t.Data[i] *= v
	}
}

// Sum returns the sum of all elements in float64.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// MaxAbs returns the largest |element|.
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.Data {
		if a := float32(math.Abs(float64(v))); a > m {
			m = a
		}
	}
	return m
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// At reads element (i0,i1,...) of a tensor of matching rank.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set writes element (i0,i1,...).
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d for shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + ix
	}
	return off
}
