package tensor

import (
	"fmt"
	"sync"
)

// GlobalAvgPool reduces [N,C,H,W] to [N,C,1,1] — ASPP's image-level
// pooling branch.
func GlobalAvgPool(x *Tensor) *Tensor { return GlobalAvgPoolWS(x, nil) }

// GlobalAvgPoolWS is GlobalAvgPool with the output drawn from ws.
func GlobalAvgPoolWS(x *Tensor, ws *Workspace) *Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	out := ws.GetRaw(n, c, 1, 1)
	inv := 1 / float32(h*w)
	Parallel(n*c, func(lo, hi int) { //seglint:ignore hotalloc one closure per parallel launch; the 0-alloc budget path (GOMAXPROCS=1) bypasses it
		for i := lo; i < hi; i++ {
			var s float32
			for _, v := range x.Data[i*h*w : (i+1)*h*w] {
				s += v
			}
			out.Data[i] = s * inv
		}
	})
	return out
}

// GlobalAvgPoolBackward spreads dout [N,C,1,1] uniformly over the
// input extent.
func GlobalAvgPoolBackward(dout *Tensor, h, w int) *Tensor {
	return GlobalAvgPoolBackwardWS(dout, h, w, nil)
}

// GlobalAvgPoolBackwardWS is GlobalAvgPoolBackward with the gradient
// drawn from ws.
func GlobalAvgPoolBackwardWS(dout *Tensor, h, w int, ws *Workspace) *Tensor {
	n, c := dout.Dim(0), dout.Dim(1)
	dx := ws.GetRaw(n, c, h, w)
	inv := 1 / float32(h*w)
	Parallel(n*c, func(lo, hi int) { //seglint:ignore hotalloc one closure per parallel launch; the 0-alloc budget path (GOMAXPROCS=1) bypasses it
		for i := lo; i < hi; i++ {
			g := dout.Data[i] * inv
			row := dx.Data[i*h*w : (i+1)*h*w]
			for j := range row {
				row[j] = g
			}
		}
	})
	return dx
}

// MaxPool2 performs 2×2/stride-2 max pooling (even H,W required) and
// returns the pooled tensor plus argmax indices for the backward pass.
func MaxPool2(x *Tensor) (*Tensor, []int32) { return MaxPool2WS(x, nil, nil) }

// MaxPool2WS is MaxPool2 with the output drawn from ws. argBuf, when
// cap-sufficient, is reused for the argmax indices so steady-state
// callers can recycle it across steps.
func MaxPool2WS(x *Tensor, argBuf []int32, ws *Workspace) (*Tensor, []int32) {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if h%2 != 0 || w%2 != 0 {
		panic(fmt.Sprintf("tensor: maxpool2 needs even spatial dims, got %dx%d", h, w))
	}
	oh, ow := h/2, w/2
	out := ws.GetRaw(n, c, oh, ow)
	arg := argBuf
	if cap(arg) < n*c*oh*ow {
		arg = make([]int32, n*c*oh*ow)
	} else {
		arg = arg[:n*c*oh*ow]
	}
	Parallel(n*c, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			in := x.Data[i*h*w : (i+1)*h*w]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := float32(0)
					bestIdx := -1
					for dy := 0; dy < 2; dy++ {
						for dx := 0; dx < 2; dx++ {
							idx := (oy*2+dy)*w + ox*2 + dx
							if bestIdx < 0 || in[idx] > best {
								best, bestIdx = in[idx], idx
							}
						}
					}
					out.Data[i*oh*ow+oy*ow+ox] = best
					arg[i*oh*ow+oy*ow+ox] = int32(bestIdx)
				}
			}
		}
	})
	return out, arg
}

// MaxPool2Backward routes gradients to the argmax positions.
func MaxPool2Backward(dout *Tensor, arg []int32, h, w int) *Tensor {
	return MaxPool2BackwardWS(dout, arg, h, w, nil)
}

// MaxPool2BackwardWS is MaxPool2Backward with the gradient drawn
// from ws.
func MaxPool2BackwardWS(dout *Tensor, arg []int32, h, w int, ws *Workspace) *Tensor {
	n, c, oh, ow := dout.Dim(0), dout.Dim(1), dout.Dim(2), dout.Dim(3)
	dx := ws.Get(n, c, h, w) // zeroed: gradients scatter sparsely
	Parallel(n*c, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < oh*ow; j++ {
				dx.Data[i*h*w+int(arg[i*oh*ow+j])] += dout.Data[i*oh*ow+j]
			}
		}
	})
	return dx
}

// bilinearAxis holds the precomputed resampling plan for one axis.
type bilinearAxis struct {
	lo, hi []int
	w      []float32
}

// bilinearCache memoises axis plans by (in, out): the plan is a pure
// function of the two lengths, and a training run resizes the same
// handful of shapes every step, so caching keeps the hot path from
// reallocating (and recomputing) them each call.
var bilinearCache sync.Map // [2]int → *bilinearAxis

func bilinearAxisFor(in, out int) *bilinearAxis {
	key := [2]int{in, out}
	if v, ok := bilinearCache.Load(key); ok {
		return v.(*bilinearAxis)
	}
	lo, hi, w := bilinearWeights(in, out)
	ax := &bilinearAxis{lo: lo, hi: hi, w: w} //seglint:ignore hotalloc cache miss: one plan per (in,out) pair, then memoised
	if v, loaded := bilinearCache.LoadOrStore(key, ax); loaded { //seglint:ignore hotalloc cache miss: one plan per (in,out) pair, then memoised
		return v.(*bilinearAxis)
	}
	return ax
}

// bilinearWeights returns the source indices and weights for resizing
// axis length `in` to `out` with align_corners=true semantics (what
// DeepLab's TensorFlow implementation uses).
func bilinearWeights(in, out int) (lo, hi []int, w []float32) {
	lo = make([]int, out) //seglint:ignore hotalloc reached only on a bilinearCache miss: once per (in,out) pair
	hi = make([]int, out) //seglint:ignore hotalloc reached only on a bilinearCache miss: once per (in,out) pair
	w = make([]float32, out) //seglint:ignore hotalloc reached only on a bilinearCache miss: once per (in,out) pair
	if out == 1 {
		return
	}
	scale := float64(in-1) / float64(out-1)
	for i := 0; i < out; i++ {
		src := float64(i) * scale
		l := int(src)
		if l >= in-1 {
			l = in - 2
			if l < 0 {
				l = 0
			}
		}
		h := l + 1
		if h >= in {
			h = in - 1
		}
		lo[i], hi[i] = l, h
		w[i] = float32(src - float64(l))
	}
	return
}

// BilinearResize resamples [N,C,H,W] to [N,C,OH,OW].
func BilinearResize(x *Tensor, oh, ow int) *Tensor {
	return BilinearResizeWS(x, oh, ow, nil)
}

// BilinearResizeWS is BilinearResize with the output drawn from ws and
// the axis plans served from a process-wide cache.
func BilinearResizeWS(x *Tensor, oh, ow int, ws *Workspace) *Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: resize to %dx%d", oh, ow))
	}
	yax, xax := bilinearAxisFor(h, oh), bilinearAxisFor(w, ow)
	ylo, yhi, wy := yax.lo, yax.hi, yax.w
	xlo, xhi, wx := xax.lo, xax.hi, xax.w
	out := ws.GetRaw(n, c, oh, ow)
	Parallel(n*c, func(lo, hi int) { //seglint:ignore hotalloc one closure per parallel launch; the 0-alloc budget path (GOMAXPROCS=1) bypasses it
		for i := lo; i < hi; i++ {
			in := x.Data[i*h*w : (i+1)*h*w]
			dst := out.Data[i*oh*ow : (i+1)*oh*ow]
			for oy := 0; oy < oh; oy++ {
				y0, y1, fy := ylo[oy], yhi[oy], wy[oy]
				for ox := 0; ox < ow; ox++ {
					x0, x1, fx := xlo[ox], xhi[ox], wx[ox]
					v00 := in[y0*w+x0]
					v01 := in[y0*w+x1]
					v10 := in[y1*w+x0]
					v11 := in[y1*w+x1]
					top := v00 + fx*(v01-v00)
					bot := v10 + fx*(v11-v10)
					dst[oy*ow+ox] = top + fy*(bot-top)
				}
			}
		}
	})
	return out
}

// BilinearResizeBackward is the adjoint of BilinearResize: it scatters
// dout [N,C,OH,OW] back onto an [N,C,H,W] gradient.
func BilinearResizeBackward(dout *Tensor, h, w int) *Tensor {
	return BilinearResizeBackwardWS(dout, h, w, nil)
}

// BilinearResizeBackwardWS is BilinearResizeBackward with the gradient
// drawn from ws.
func BilinearResizeBackwardWS(dout *Tensor, h, w int, ws *Workspace) *Tensor {
	n, c, oh, ow := dout.Dim(0), dout.Dim(1), dout.Dim(2), dout.Dim(3)
	yax, xax := bilinearAxisFor(h, oh), bilinearAxisFor(w, ow)
	ylo, yhi, wy := yax.lo, yax.hi, yax.w
	xlo, xhi, wx := xax.lo, xax.hi, xax.w
	dx := ws.Get(n, c, h, w) // zeroed: the scatter accumulates
	Parallel(n*c, func(lo, hi int) { //seglint:ignore hotalloc one closure per parallel launch; the 0-alloc budget path (GOMAXPROCS=1) bypasses it
		for i := lo; i < hi; i++ {
			src := dout.Data[i*oh*ow : (i+1)*oh*ow]
			dst := dx.Data[i*h*w : (i+1)*h*w]
			for oy := 0; oy < oh; oy++ {
				y0, y1, fy := ylo[oy], yhi[oy], wy[oy]
				for ox := 0; ox < ow; ox++ {
					x0, x1, fx := xlo[ox], xhi[ox], wx[ox]
					g := src[oy*ow+ox]
					dst[y0*w+x0] += g * (1 - fy) * (1 - fx)
					dst[y0*w+x1] += g * (1 - fy) * fx
					dst[y1*w+x0] += g * fy * (1 - fx)
					dst[y1*w+x1] += g * fy * fx
				}
			}
		}
	})
	return dx
}
