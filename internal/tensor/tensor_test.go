package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndShape(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 || x.Dim(1) != 3 {
		t.Fatalf("shape bookkeeping wrong: %v len %d", x.Shape, x.Len())
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New not zeroed")
		}
	}
}

func TestFromSliceValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch accepted")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestNegativeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative dim accepted")
		}
	}()
	New(2, -1)
}

func TestAtSetOffsets(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(7, 1, 2, 3)
	if x.At(1, 2, 3) != 7 {
		t.Fatal("At/Set round trip failed")
	}
	if x.Data[1*12+2*4+3] != 7 {
		t.Fatal("row-major offset wrong")
	}
}

func TestAtBoundsPanics(t *testing.T) {
	x := New(2, 2)
	for _, idx := range [][]int{{2, 0}, {0, -1}, {0}} {
		idx := idx
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("index %v accepted", idx)
				}
			}()
			x.At(idx...)
		}()
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, 4)
	y.Data[0] = 5
	if x.Data[0] != 5 {
		t.Fatal("reshape copied data")
	}
	defer func() {
		if recover() == nil {
			t.Error("bad reshape accepted")
		}
	}()
	x.Reshape(5, 5)
}

func TestCloneIndependent(t *testing.T) {
	x := Full(3, 2, 2)
	y := x.Clone()
	y.Data[0] = 9
	if x.Data[0] != 3 {
		t.Fatal("clone aliases source")
	}
}

func TestElementwiseOps(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3}, 3)
	y := FromSlice([]float32{10, 20, 30}, 3)
	x.Add(y)
	if x.Data[2] != 33 {
		t.Fatalf("Add: %v", x.Data)
	}
	x.AddScaled(0.5, y)
	if x.Data[0] != 16 {
		t.Fatalf("AddScaled: %v", x.Data)
	}
	x.Scale(2)
	if x.Data[0] != 32 {
		t.Fatalf("Scale: %v", x.Data)
	}
	x.MulElem(y)
	if x.Data[0] != 320 {
		t.Fatalf("MulElem: %v", x.Data)
	}
	x.Fill(1)
	if s := x.Sum(); s != 3 {
		t.Fatalf("Sum after fill: %v", s)
	}
	x.Zero()
	if x.MaxAbs() != 0 {
		t.Fatal("Zero failed")
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add with mismatched shape accepted")
		}
	}()
	New(2).Add(New(3))
}

func TestNorms(t *testing.T) {
	x := FromSlice([]float32{3, -4}, 2)
	if x.L2Norm() != 5 {
		t.Fatalf("L2 = %v", x.L2Norm())
	}
	if x.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", x.MaxAbs())
	}
}

func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a.Data[i*k+p] * b.Data[p*n+j]
			}
			c.Data[i*n+j] = s
		}
	}
	return c
}

func tensorsClose(t *testing.T, got, want *Tensor, tol float64, what string) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %v vs %v", what, got.Shape, want.Shape)
	}
	for i := range got.Data {
		if d := math.Abs(float64(got.Data[i] - want.Data[i])); d > tol {
			t.Fatalf("%s: element %d differs by %g (%g vs %g)", what, i, d, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 7, 3}, {16, 16, 16}} {
		a := Randn(rng, 1, dims[0], dims[1])
		b := Randn(rng, 1, dims[1], dims[2])
		tensorsClose(t, MatMul(a, b), naiveMatMul(a, b), 1e-4, "matmul")
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched matmul accepted")
		}
	}()
	MatMul(New(2, 3), New(4, 5))
}

func TestMatMulTransposedVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Randn(rng, 1, 4, 6) // used as [k=4, m=6] for AT
	b := Randn(rng, 1, 4, 5)
	// AT: C = aᵀ·b, shape [6,5].
	c := New(6, 5)
	MatMulATInto(c, a, b, false)
	at := New(6, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			at.Data[j*4+i] = a.Data[i*6+j]
		}
	}
	tensorsClose(t, c, naiveMatMul(at, b), 1e-4, "matmulAT")

	// BT: C = x·yᵀ for x [3,4], y [5,4] → [3,5].
	x := Randn(rng, 1, 3, 4)
	y := Randn(rng, 1, 5, 4)
	c2 := New(3, 5)
	MatMulBTInto(c2, x, y, false)
	yt := New(4, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 4; j++ {
			yt.Data[j*5+i] = y.Data[i*4+j]
		}
	}
	tensorsClose(t, c2, naiveMatMul(x, yt), 1e-4, "matmulBT")
}

func TestMatMulAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Randn(rng, 1, 3, 3)
	b := Randn(rng, 1, 3, 3)
	c := Full(1, 3, 3)
	MatMulInto(c, a, b, true)
	want := naiveMatMul(a, b)
	for i := range want.Data {
		want.Data[i]++
	}
	tensorsClose(t, c, want, 1e-4, "accumulate")
}

// Property: matmul distributes over addition: A(B+C) = AB + AC.
func TestPropertyMatMulLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := r.Intn(5)+1, r.Intn(5)+1, r.Intn(5)+1
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		c := Randn(rng, 1, k, n)
		bc := b.Clone()
		bc.Add(c)
		left := MatMul(a, bc)
		right := MatMul(a, b)
		right.Add(MatMul(a, c))
		for i := range left.Data {
			if math.Abs(float64(left.Data[i]-right.Data[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelCoversRange(t *testing.T) {
	seen := make([]bool, 100)
	Parallel(100, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			seen[i] = true
		}
	})
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d not covered", i)
		}
	}
	Parallel(0, func(lo, hi int) { t.Error("fn called for n=0") })
}
