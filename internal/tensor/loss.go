package tensor

import (
	"fmt"
	"math"
)

// SoftmaxCrossEntropy computes the mean pixelwise cross-entropy of
// logits [N,K,H,W] against integer labels (length N·H·W, values in
// [0,K) or ignore), and the gradient w.r.t. the logits. Pixels with
// the ignore label (PASCAL VOC uses 255 for "void") contribute
// nothing to loss or gradient — matching DeepLab's loss exactly.
func SoftmaxCrossEntropy(logits *Tensor, labels []int32, ignore int32) (float64, *Tensor) {
	return SoftmaxCrossEntropyWS(logits, labels, ignore, nil)
}

// SoftmaxCrossEntropyWS is SoftmaxCrossEntropy with the gradient drawn
// from ws. The per-batch float64 reduction buffers stay on the heap —
// they are a few dozen bytes and the arena pools float32 only.
func SoftmaxCrossEntropyWS(logits *Tensor, labels []int32, ignore int32, ws *Workspace) (float64, *Tensor) {
	n, k, h, w := logits.Dim(0), logits.Dim(1), logits.Dim(2), logits.Dim(3)
	if len(labels) != n*h*w {
		panic(fmt.Sprintf("tensor: %d labels for %d pixels", len(labels), n*h*w))
	}
	dlogits := ws.Get(n, k, h, w) // zeroed: ignored pixels contribute 0
	spatial := h * w

	losses := make([]float64, n)                             //seglint:ignore hotalloc per-batch float64 reduction buffer, a few dozen bytes; counted in the pinned step alloc budget
	valids := make([]int, n)                                 //seglint:ignore hotalloc per-batch reduction buffer, a few dozen bytes; counted in the pinned step alloc budget
	Parallel(n, func(lo, hi int) {                           //seglint:ignore hotalloc one closure per parallel launch; the 0-alloc budget path (GOMAXPROCS=1) bypasses it
		probs := make([]float64, k)                          //seglint:ignore hotalloc per-worker class-probability scratch, K float64s per launch; counted in the pinned step alloc budget
		for i := lo; i < hi; i++ {
			base := i * k * spatial
			for p := 0; p < spatial; p++ {
				lbl := labels[i*spatial+p]
				if lbl == ignore {
					continue
				}
				if lbl < 0 || int(lbl) >= k {
					panic(fmt.Sprintf("tensor: label %d outside [0,%d)", lbl, k))
				}
				// Stable softmax over the class axis.
				maxv := float64(logits.Data[base+p])
				for c := 1; c < k; c++ {
					if v := float64(logits.Data[base+c*spatial+p]); v > maxv {
						maxv = v
					}
				}
				sum := 0.0
				for c := 0; c < k; c++ {
					e := math.Exp(float64(logits.Data[base+c*spatial+p]) - maxv)
					probs[c] = e
					sum += e
				}
				losses[i] -= math.Log(probs[lbl]/sum + 1e-30)
				valids[i]++
				for c := 0; c < k; c++ {
					g := probs[c] / sum
					if int32(c) == lbl {
						g -= 1
					}
					dlogits.Data[base+c*spatial+p] = float32(g)
				}
			}
		}
	})
	totalLoss, totalValid := 0.0, 0
	for i := range losses {
		totalLoss += losses[i]
		totalValid += valids[i]
	}
	if totalValid == 0 {
		return 0, dlogits
	}
	inv := float32(1) / float32(totalValid)
	dlogits.Scale(inv)
	return totalLoss / float64(totalValid), dlogits
}

// ArgmaxClass reduces logits [N,K,H,W] to predicted labels (N·H·W).
func ArgmaxClass(logits *Tensor) []int32 {
	n, h, w := logits.Dim(0), logits.Dim(2), logits.Dim(3)
	return ArgmaxClassInto(logits, make([]int32, n*h*w))
}

// ArgmaxClassInto is ArgmaxClass writing into a caller-owned buffer
// of exactly N·H·W labels — the pooled inference path's variant,
// which keeps steady-state evaluation allocation-free. Returns out.
//
//seglint:hotpath eval argmax; 0-alloc per TestEvalAllocBudget
func ArgmaxClassInto(logits *Tensor, out []int32) []int32 {
	n, k, h, w := logits.Dim(0), logits.Dim(1), logits.Dim(2), logits.Dim(3)
	spatial := h * w
	if len(out) != n*spatial {
		panic(fmt.Sprintf("tensor: argmax output %d labels for [%d,%d,%d,%d] logits", len(out), n, k, h, w))
	}
	Parallel(n, func(lo, hi int) { //seglint:ignore hotalloc one closure per parallel launch; the 0-alloc budget path (GOMAXPROCS=1) bypasses it
		for i := lo; i < hi; i++ {
			base := i * k * spatial
			for p := 0; p < spatial; p++ {
				best, bestC := logits.Data[base+p], 0
				for c := 1; c < k; c++ {
					if v := logits.Data[base+c*spatial+p]; v > best {
						best, bestC = v, c
					}
				}
				out[i*spatial+p] = int32(bestC)
			}
		}
	})
	return out
}
