package tensor

import (
	"math/rand"
	"runtime"
	"testing"
)

// convCase builds a small grouped/dilated conv problem.
func convCase(seed int64, n, c, h, w, f, k int, spec ConvSpec) (x, wt, dout *Tensor, s ConvSpec) {
	s = spec.Canon()
	rng := rand.New(rand.NewSource(seed))
	x = randTensor(rng, n, c, h, w)
	wt = randTensor(rng, f, c/s.Groups, k, k)
	oh := ConvOutSize(h, k, s.Stride, s.Pad, s.Dilation)
	ow := ConvOutSize(w, k, s.Stride, s.Pad, s.Dilation)
	dout = randTensor(rng, n, f, oh, ow)
	return
}

// TestConv2DBackwardMergeBitIdentical pins the deterministic dw merge:
// the parallel per-sample reduction must match the GOMAXPROCS=1 serial
// fold bit for bit. The old implementation appended per-worker
// partials under a mutex, so its merge order — and the low bits of dw
// — depended on goroutine scheduling.
func TestConv2DBackwardMergeBitIdentical(t *testing.T) {
	cases := []struct {
		name             string
		n, c, h, w, f, k int
		spec             ConvSpec
	}{
		{"plain", 5, 3, 9, 9, 4, 3, ConvSpec{Stride: 1, Pad: 1}},
		{"strided", 6, 4, 12, 12, 6, 3, ConvSpec{Stride: 2, Pad: 1}},
		{"atrous", 4, 2, 11, 11, 3, 3, ConvSpec{Stride: 1, Pad: 2, Dilation: 2}},
		{"grouped", 4, 6, 8, 8, 6, 3, ConvSpec{Stride: 1, Pad: 1, Groups: 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			x, wt, dout, s := convCase(99, tc.n, tc.c, tc.h, tc.w, tc.f, tc.k, tc.spec)

			prev := runtime.GOMAXPROCS(1)
			dxSerial, dwSerial := Conv2DBackward(x, wt, dout, s)
			runtime.GOMAXPROCS(4)
			dxWide, dwWide := Conv2DBackward(x, wt, dout, s)
			runtime.GOMAXPROCS(prev)

			requireBitIdentical(t, dwWide, dwSerial, "dw")
			requireBitIdentical(t, dxWide, dxSerial, "dx")
		})
	}
}

// TestConv2DWorkspaceMatchesHeap checks the workspace-backed paths
// return bit-identical results to the plain heap paths.
func TestConv2DWorkspaceMatchesHeap(t *testing.T) {
	x, wt, dout, s := convCase(7, 3, 4, 10, 10, 5, 3, ConvSpec{Stride: 1, Pad: 1})
	ws := NewWorkspace()

	out := Conv2D(x, wt, s)
	outWS := Conv2DWS(x, wt, s, ws)
	requireBitIdentical(t, outWS, out, "forward")

	dx, dw := Conv2DBackward(x, wt, dout, s)
	dxWS, dwWS := Conv2DBackwardWS(x, wt, dout, s, ws)
	requireBitIdentical(t, dxWS, dx, "dx")
	requireBitIdentical(t, dwWS, dw, "dw")

	// Second pass after Reset reuses the same arena buffers.
	ws.Reset()
	outWS2 := Conv2DWS(x, wt, s, ws)
	requireBitIdentical(t, outWS2, out, "forward after reset")
	st := ws.Stats()
	if st.Hits == 0 {
		t.Fatalf("no free-list hits after reset: %v", st)
	}
}

// TestConv2DWorkspaceZeroAllocs pins the workspace promise: with a
// warm arena, forward and backward conv touch the heap zero times on
// the serial path.
func TestConv2DWorkspaceZeroAllocs(t *testing.T) {
	x, wt, dout, s := convCase(21, 2, 3, 8, 8, 4, 3, ConvSpec{Stride: 1, Pad: 1})
	ws := NewWorkspace()

	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	// Warm the arena.
	Conv2DWS(x, wt, s, ws)
	Conv2DBackwardWS(x, wt, dout, s, ws)
	ws.Reset()

	if n := testing.AllocsPerRun(10, func() {
		Conv2DWS(x, wt, s, ws)
		Conv2DBackwardWS(x, wt, dout, s, ws)
		ws.Reset()
	}); n != 0 {
		t.Fatalf("conv forward+backward allocates %.1f times per step with warm workspace, want 0", n)
	}
}
