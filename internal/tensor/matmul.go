package tensor

import "fmt"

// MatMul computes C = A·B for A [m,k] and B [k,n], returning C [m,n].
// Rows of C are computed in parallel; the inner loop is written
// k-outer so B is streamed row-wise (cache-friendly without blocking).
func MatMul(a, b *Tensor) *Tensor {
	m, _, n := checkMatMul(a, b)
	c := New(m, n)
	MatMulInto(c, a, b, false)
	return c
}

// MatMulInto computes C = A·B (or C += A·B when accumulate) into an
// existing [m,n] tensor, avoiding allocation in hot loops.
func MatMulInto(c, a, b *Tensor, accumulate bool) {
	m, k, n := checkMatMul(a, b)
	if c.Dim(0) != m || c.Dim(1) != n {
		panic(fmt.Sprintf("tensor: matmul out %v, want [%d %d]", c.Shape, m, n))
	}
	if !accumulate {
		c.Zero()
	}
	Parallel(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			crow := c.Data[i*n : (i+1)*n]
			for p, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.Data[p*n : (p+1)*n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	})
}

// MatMulATInto computes C = Aᵀ·B for A [k,m], B [k,n] into C [m,n]
// (accumulating when requested) — the shape conv backward needs for
// weight gradients.
func MatMulATInto(c, a, b *Tensor, accumulate bool) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic("tensor: matmulAT needs rank-2 inputs")
	}
	k, m := a.Dim(0), a.Dim(1)
	if b.Dim(0) != k {
		panic(fmt.Sprintf("tensor: matmulAT inner dims %v × %v", a.Shape, b.Shape))
	}
	n := b.Dim(1)
	if c.Dim(0) != m || c.Dim(1) != n {
		panic(fmt.Sprintf("tensor: matmulAT out %v, want [%d %d]", c.Shape, m, n))
	}
	if !accumulate {
		c.Zero()
	}
	Parallel(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			crow := c.Data[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := a.Data[p*m+i]
				if av == 0 {
					continue
				}
				brow := b.Data[p*n : (p+1)*n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	})
}

// MatMulBTInto computes C = A·Bᵀ for A [m,k], B [n,k] into C [m,n].
func MatMulBTInto(c, a, b *Tensor, accumulate bool) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic("tensor: matmulBT needs rank-2 inputs")
	}
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(0)
	if b.Dim(1) != k {
		panic(fmt.Sprintf("tensor: matmulBT inner dims %v × %v", a.Shape, b.Shape))
	}
	if c.Dim(0) != m || c.Dim(1) != n {
		panic(fmt.Sprintf("tensor: matmulBT out %v, want [%d %d]", c.Shape, m, n))
	}
	if !accumulate {
		c.Zero()
	}
	Parallel(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			crow := c.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := b.Data[j*k : (j+1)*k]
				var s float32
				for p, av := range arow {
					s += av * brow[p]
				}
				crow[j] += s
			}
		}
	})
}

func checkMatMul(a, b *Tensor) (m, k, n int) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic(fmt.Sprintf("tensor: matmul needs rank-2, got %v × %v", a.Shape, b.Shape))
	}
	if a.Dim(1) != b.Dim(0) {
		panic(fmt.Sprintf("tensor: matmul inner dims %v × %v", a.Shape, b.Shape))
	}
	return a.Dim(0), a.Dim(1), b.Dim(1)
}
