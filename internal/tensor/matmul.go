package tensor

import "fmt"

// The matmul kernels are cache-blocked and register-tiled: C is
// walked in mrTile×nrTile micro-tiles whose partial sums live in
// registers, and the packed kernels copy the active B panel into a
// dense per-worker scratch strip so the inner loop streams contiguous
// memory regardless of n. Workers split the row range via Parallel.
//
// The micro-tile is 2×4 rather than the classic 4×4: gc does not
// auto-vectorise, so every accumulator occupies a full XMM register,
// and 16 accumulators plus the a/b operands spill. 2 rows × 4 columns
// (8 accumulators + 4 b values + 2 a values) fits amd64's 16 float
// registers; measured on DeepLab-typical shapes it beats 4×4 by ~25 %.
// The inner loop is unrolled ×2 over k, and the packed B panel is
// walked with slice-to-array-pointer conversions so the compiler drops
// bounds checks and index arithmetic.
//
// Numerical contract (what the validation tests pin down):
//   - Each output element is an independent dot product accumulated
//     in index order p = 0..k-1 in a single float32 register, so
//     results are bit-identical across GOMAXPROCS settings and tile
//     boundaries, and bit-identical to MatMulRefInto for the
//     non-accumulating case.
//   - IEEE semantics are preserved: there is no zero-skip, so a 0 in
//     A against a NaN/Inf in B propagates NaN into C exactly as the
//     arithmetic demands. (An earlier kernel skipped a == 0 rows as
//     an optimisation, silently converting 0×NaN to 0 and masking
//     divergence from the loss-scaling/NaN-detection path.)
const (
	mrTile = 2 // rows per micro-tile (register-blocked)
	nrTile = 4 // columns per micro-tile (= packed panel width)
)

// MatMul computes C = A·B for A [m,k] and B [k,n], returning C [m,n].
func MatMul(a, b *Tensor) *Tensor {
	m, _, n := checkMatMul(a, b)
	c := New(m, n)
	MatMulInto(c, a, b, false)
	return c
}

// MatMulInto computes C = A·B (or C += A·B when accumulate) into an
// existing [m,n] tensor, allocation-free in steady state: the only
// working memory is a per-worker B panel drawn from an internal pool,
// and the serial path calls the worker directly so no closure is
// allocated.
//
//seglint:hotpath dense forward/backward kernel; 0-alloc on the serial path per the step budget
func MatMulInto(c, a, b *Tensor, accumulate bool) {
	m, k, n := checkMatMul(a, b)
	checkMatMulOut(c, m, n, "matmul")
	cd, ad, bd := c.Data, a.Data, b.Data
	if parallelDegree(m) <= 1 {
		matmulRows(cd, ad, bd, k, n, 0, m, accumulate)
		return
	}
	Parallel(m, func(lo, hi int) { //seglint:ignore hotalloc one closure per parallel launch; the 0-alloc budget path (GOMAXPROCS=1) bypasses it
		matmulRows(cd, ad, bd, k, n, lo, hi, accumulate)
	})
}

// matmulRows is the per-worker body of MatMulInto: rows [lo,hi) of
// C = A·B, packing one B panel at a time.
func matmulRows(cd, ad, bd []float32, k, n, lo, hi int, accumulate bool) {
	panel := kernelScratch.GetRaw(k * nrTile)
	bp := panel.Data
	for j0 := 0; j0 < n; j0 += nrTile {
		jw := min(nrTile, n-j0)
		packPanelB(bp, bd, k, n, j0, jw)
		i0 := lo
		for ; i0+mrTile <= hi; i0 += mrTile {
			mul2x4(cd[i0*n+j0:], n, ad[i0*k:], k, bp, jw, accumulate)
		}
		if i0 < hi {
			mulEdge(cd[i0*n+j0:], n, ad[i0*k:], k, hi-i0, bp, nrTile, jw, accumulate)
		}
	}
	kernelScratch.Put(panel)
}

// MatMulATInto computes C = Aᵀ·B for A [k,m], B [k,n] into C [m,n]
// (accumulating when requested) — the shape conv backward needs for
// input-column gradients. The worker gathers its slice of Aᵀ into a
// contiguous strip once, then runs the same packed-panel core as
// MatMulInto.
//
//seglint:hotpath conv backward input-gradient kernel; 0-alloc on the serial path
func MatMulATInto(c, a, b *Tensor, accumulate bool) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic("tensor: matmulAT needs rank-2 inputs")
	}
	k, m := a.Dim(0), a.Dim(1)
	if b.Dim(0) != k {
		panic(fmt.Sprintf("tensor: matmulAT inner dims %v × %v", a.Shape, b.Shape))
	}
	n := b.Dim(1)
	checkMatMulOut(c, m, n, "matmulAT")
	cd, ad, bd := c.Data, a.Data, b.Data
	if parallelDegree(m) <= 1 {
		matmulATRows(cd, ad, bd, k, m, n, 0, m, accumulate)
		return
	}
	Parallel(m, func(lo, hi int) { //seglint:ignore hotalloc one closure per parallel launch; the 0-alloc budget path (GOMAXPROCS=1) bypasses it
		matmulATRows(cd, ad, bd, k, m, n, lo, hi, accumulate)
	})
}

// matmulATRows is the per-worker body of MatMulATInto: rows [lo,hi)
// of C = Aᵀ·B, gathering the worker's strip of Aᵀ once up front.
func matmulATRows(cd, ad, bd []float32, k, m, n, lo, hi int, accumulate bool) {
	rows := hi - lo
	apanel := kernelScratch.GetRaw(rows * k)
	ap := apanel.Data
	packPanelAT(ap, ad, k, m, lo, rows)
	bpanel := kernelScratch.GetRaw(k * nrTile)
	bp := bpanel.Data
	for j0 := 0; j0 < n; j0 += nrTile {
		jw := min(nrTile, n-j0)
		packPanelB(bp, bd, k, n, j0, jw)
		r0 := 0
		for ; r0+mrTile <= rows; r0 += mrTile {
			mul2x4(cd[(lo+r0)*n+j0:], n, ap[r0*k:], k, bp, jw, accumulate)
		}
		if r0 < rows {
			mulEdge(cd[(lo+r0)*n+j0:], n, ap[r0*k:], k, rows-r0, bp, nrTile, jw, accumulate)
		}
	}
	kernelScratch.Put(bpanel)
	kernelScratch.Put(apanel)
}

// MatMulBTInto computes C = A·Bᵀ for A [m,k], B [n,k] into C [m,n].
// Both operands stream contiguously over k, so no packing is needed;
// the micro-tile holds 4×4 running dot products in registers (the dot
// form reuses each loaded value four times, so the larger tile pays
// for itself here).
//
//seglint:hotpath conv backward weight-gradient kernel; 0-alloc on the serial path
func MatMulBTInto(c, a, b *Tensor, accumulate bool) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic("tensor: matmulBT needs rank-2 inputs")
	}
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(0)
	if b.Dim(1) != k {
		panic(fmt.Sprintf("tensor: matmulBT inner dims %v × %v", a.Shape, b.Shape))
	}
	checkMatMulOut(c, m, n, "matmulBT")
	cd, ad, bd := c.Data, a.Data, b.Data
	if parallelDegree(m) <= 1 {
		matmulBTRows(cd, ad, bd, k, n, 0, m, accumulate)
		return
	}
	Parallel(m, func(lo, hi int) { //seglint:ignore hotalloc one closure per parallel launch; the 0-alloc budget path (GOMAXPROCS=1) bypasses it
		matmulBTRows(cd, ad, bd, k, n, lo, hi, accumulate)
	})
}

// matmulBTRows is the per-worker body of MatMulBTInto: rows [lo,hi)
// of C = A·Bᵀ as streaming dot-product tiles.
func matmulBTRows(cd, ad, bd []float32, k, n, lo, hi int, accumulate bool) {
	i0 := lo
	for ; i0+4 <= hi; i0 += 4 {
		for j0 := 0; j0 < n; j0 += 4 {
			dot4x4(cd[i0*n+j0:], n, ad[i0*k:], k, bd[j0*k:], k,
				4, min(4, n-j0), accumulate)
		}
	}
	if i0 < hi {
		for j0 := 0; j0 < n; j0 += 4 {
			dot4x4(cd[i0*n+j0:], n, ad[i0*k:], k, bd[j0*k:], k,
				hi-i0, min(4, n-j0), accumulate)
		}
	}
}

// MatMulRefInto is the unblocked reference kernel the tiled paths are
// validated against (and the baseline cmd/segbench reports speedup
// over): plain row-parallel loops, k-outer so B streams row-wise, no
// tiling, no packing, full IEEE propagation.
func MatMulRefInto(c, a, b *Tensor, accumulate bool) {
	m, k, n := checkMatMul(a, b)
	checkMatMulOut(c, m, n, "matmul")
	if !accumulate {
		c.Zero()
	}
	Parallel(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			crow := c.Data[i*n : (i+1)*n]
			for p, av := range arow {
				brow := b.Data[p*n : (p+1)*n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	})
}

func checkMatMul(a, b *Tensor) (m, k, n int) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic(fmt.Sprintf("tensor: matmul needs rank-2, got %v × %v", a.Shape, b.Shape))
	}
	if a.Dim(1) != b.Dim(0) {
		panic(fmt.Sprintf("tensor: matmul inner dims %v × %v", a.Shape, b.Shape))
	}
	return a.Dim(0), a.Dim(1), b.Dim(1)
}

func checkMatMulOut(c *Tensor, m, n int, op string) {
	if len(c.Shape) != 2 || c.Dim(0) != m || c.Dim(1) != n {
		panic(fmt.Sprintf("tensor: %s out %v, want [%d %d]", op, c.Shape, m, n))
	}
}

// packPanelB copies the k×jw column strip of B starting at column j0
// into bp as a dense k×nrTile panel (zero-padded past jw; the pad
// columns are computed but never written back).
func packPanelB(bp, b []float32, k, n, j0, jw int) {
	if jw == nrTile {
		for p := 0; p < k; p++ {
			src := b[p*n+j0 : p*n+j0+nrTile : p*n+j0+nrTile]
			dst := bp[p*nrTile : p*nrTile+nrTile : p*nrTile+nrTile]
			dst[0], dst[1], dst[2], dst[3] = src[0], src[1], src[2], src[3]
		}
		return
	}
	for p := 0; p < k; p++ {
		dst := bp[p*nrTile : p*nrTile+nrTile]
		copy(dst, b[p*n+j0:p*n+j0+jw])
		for q := jw; q < nrTile; q++ {
			dst[q] = 0
		}
	}
}

// packPanelAT gathers iw columns of A [k,m] starting at column i0
// into ap as iw contiguous rows of length k (ap[r*k+p] = A[p, i0+r]).
func packPanelAT(ap, a []float32, k, m, i0, iw int) {
	for r := 0; r < iw; r++ {
		col := i0 + r
		dst := ap[r*k : r*k+k]
		for p := 0; p < k; p++ {
			dst[p] = a[p*m+col]
		}
	}
}

// mul2x4 is the register-blocked core: a 2×4 tile of C accumulated
// over the full k extent. a holds 2 contiguous rows of stride as; b is
// a packed k×nrTile panel walked via array-pointer loads. The k loop
// is unrolled ×2; each accumulator still folds terms in ascending p
// order, so the result is bit-identical to a scalar p-loop. jw ≤ 4
// columns are written back.
func mul2x4(c []float32, cs int, a []float32, as int, b []float32, jw int, acc bool) {
	a0 := a[0*as : 0*as+as : 0*as+as]
	a1 := a[1*as : 1*as+as : 1*as+as]
	var s00, s01, s02, s03 float32
	var s10, s11, s12, s13 float32
	bb := b
	p := 0
	for ; p+2 <= as; p += 2 {
		bq := (*[8]float32)(bb)
		bb = bb[8:]
		av, aw := a0[p], a0[p+1]
		s00 += av * bq[0]
		s01 += av * bq[1]
		s02 += av * bq[2]
		s03 += av * bq[3]
		s00 += aw * bq[4]
		s01 += aw * bq[5]
		s02 += aw * bq[6]
		s03 += aw * bq[7]
		av, aw = a1[p], a1[p+1]
		s10 += av * bq[0]
		s11 += av * bq[1]
		s12 += av * bq[2]
		s13 += av * bq[3]
		s10 += aw * bq[4]
		s11 += aw * bq[5]
		s12 += aw * bq[6]
		s13 += aw * bq[7]
	}
	for ; p < as; p++ {
		bq := (*[4]float32)(bb)
		bb = bb[4:]
		av := a0[p]
		s00 += av * bq[0]
		s01 += av * bq[1]
		s02 += av * bq[2]
		s03 += av * bq[3]
		av = a1[p]
		s10 += av * bq[0]
		s11 += av * bq[1]
		s12 += av * bq[2]
		s13 += av * bq[3]
	}
	rows := [mrTile][nrTile]float32{
		{s00, s01, s02, s03},
		{s10, s11, s12, s13},
	}
	for r := 0; r < mrTile; r++ {
		crow := c[r*cs : r*cs+jw]
		if acc {
			for q := 0; q < jw; q++ {
				crow[q] += rows[r][q]
			}
		} else {
			for q := 0; q < jw; q++ {
				crow[q] = rows[r][q]
			}
		}
	}
}

// mulEdge handles partial tiles (iw < mrTile rows and/or jw < nrTile
// columns): plain per-element dot products in the same p order, so
// edge elements carry identical bits to interior ones.
func mulEdge(c []float32, cs int, a []float32, as, iw int, b []float32, bs, jw int, acc bool) {
	for r := 0; r < iw; r++ {
		arow := a[r*as : r*as+as]
		crow := c[r*cs : r*cs+jw]
		for q := 0; q < jw; q++ {
			var s float32
			for p := 0; p < as; p++ {
				s += arow[p] * b[p*bs+q]
			}
			if acc {
				crow[q] += s
			} else {
				crow[q] = s
			}
		}
	}
}

// dot4x4 accumulates an iw×jw tile of running dot products where both
// operands stream contiguously over k: C[r,q] (+)= Σ_p a[r,p]·b[q,p].
func dot4x4(c []float32, cs int, a []float32, as int, b []float32, bs int, iw, jw int, acc bool) {
	if iw == 4 && jw == 4 {
		a0 := a[0*as : 0*as+as : 0*as+as]
		a1 := a[1*as : 1*as+as : 1*as+as]
		a2 := a[2*as : 2*as+as : 2*as+as]
		a3 := a[3*as : 3*as+as : 3*as+as]
		b0 := b[0*bs : 0*bs+bs : 0*bs+bs]
		b1 := b[1*bs : 1*bs+bs : 1*bs+bs]
		b2 := b[2*bs : 2*bs+bs : 2*bs+bs]
		b3 := b[3*bs : 3*bs+bs : 3*bs+bs]
		var s00, s01, s02, s03 float32
		var s10, s11, s12, s13 float32
		var s20, s21, s22, s23 float32
		var s30, s31, s32, s33 float32
		for p := 0; p < as; p++ {
			v0, v1, v2, v3 := b0[p], b1[p], b2[p], b3[p]
			av := a0[p]
			s00 += av * v0
			s01 += av * v1
			s02 += av * v2
			s03 += av * v3
			av = a1[p]
			s10 += av * v0
			s11 += av * v1
			s12 += av * v2
			s13 += av * v3
			av = a2[p]
			s20 += av * v0
			s21 += av * v1
			s22 += av * v2
			s23 += av * v3
			av = a3[p]
			s30 += av * v0
			s31 += av * v1
			s32 += av * v2
			s33 += av * v3
		}
		rows := [4][4]float32{
			{s00, s01, s02, s03},
			{s10, s11, s12, s13},
			{s20, s21, s22, s23},
			{s30, s31, s32, s33},
		}
		for r := 0; r < 4; r++ {
			crow := c[r*cs : r*cs+4]
			if acc {
				for q := 0; q < 4; q++ {
					crow[q] += rows[r][q]
				}
			} else {
				for q := 0; q < 4; q++ {
					crow[q] = rows[r][q]
				}
			}
		}
		return
	}
	for r := 0; r < iw; r++ {
		arow := a[r*as : r*as+as]
		crow := c[r*cs : r*cs+jw]
		for q := 0; q < jw; q++ {
			brow := b[q*bs : q*bs+as]
			var s float32
			for p, av := range arow {
				s += av * brow[p]
			}
			if acc {
				crow[q] += s
			} else {
				crow[q] = s
			}
		}
	}
}
