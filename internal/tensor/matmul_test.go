package tensor

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// transpose returns a new [n,m] tensor with t's axes swapped.
func transpose(t *Tensor) *Tensor {
	m, n := t.Dim(0), t.Dim(1)
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = t.Data[i*n+j]
		}
	}
	return out
}

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64())
	}
	return t
}

// requireBitIdentical fails unless x and y carry identical bit
// patterns element by element (NaN == NaN, +0 != -0).
func requireBitIdentical(t *testing.T, got, want *Tensor, label string) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %v vs %v", label, got.Shape, want.Shape)
	}
	for i := range got.Data {
		if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("%s: element %d differs: %x (%g) vs %x (%g)",
				label, i,
				math.Float32bits(got.Data[i]), got.Data[i],
				math.Float32bits(want.Data[i]), want.Data[i])
		}
	}
}

// edgeDims exercises every tiling regime: below one micro-tile, exact
// tiles, one-off remainders, and panel-boundary straddles.
var edgeDims = []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 33}

// TestMatMulBitIdenticalToRef pins the tiled kernel's numerical
// contract: for accumulate=false every element is the same ascending-p
// register dot the reference kernel folds in memory, so the two paths
// must agree bit for bit — including partial edge tiles.
func TestMatMulBitIdenticalToRef(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, m := range edgeDims {
		for _, k := range edgeDims {
			for _, n := range edgeDims {
				a := randTensor(rng, m, k)
				b := randTensor(rng, k, n)
				got, want := New(m, n), New(m, n)
				MatMulInto(got, a, b, false)
				MatMulRefInto(want, a, b, false)
				requireBitIdentical(t, got, want, "matmul")

				at := transpose(a)
				gotAT := New(m, n)
				MatMulATInto(gotAT, at, b, false)
				requireBitIdentical(t, gotAT, want, "matmulAT")

				bt := transpose(b)
				gotBT := New(m, n)
				MatMulBTInto(gotBT, a, bt, false)
				requireBitIdentical(t, gotBT, want, "matmulBT")
			}
		}
	}
}

// TestMatMulAccumulateEdgeShapes checks C += A·B across the same edge
// shapes with a tolerance: accumulate=true folds the existing C in a
// different association than the reference, so only closeness is
// promised.
func TestMatMulAccumulateEdgeShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 5}, {5, 4, 3}, {9, 17, 8}, {16, 9, 33}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randTensor(rng, m, k)
		b := randTensor(rng, k, n)
		base := randTensor(rng, m, n)

		got := base.Clone()
		MatMulInto(got, a, b, true)
		want := base.Clone()
		MatMulRefInto(want, a, b, true)
		tensorsClose(t, got, want, 1e-4, "matmul accumulate")

		gotAT := base.Clone()
		MatMulATInto(gotAT, transpose(a), b, true)
		tensorsClose(t, gotAT, want, 1e-4, "matmulAT accumulate")

		gotBT := base.Clone()
		MatMulBTInto(gotBT, a, transpose(b), true)
		tensorsClose(t, gotBT, want, 1e-4, "matmulBT accumulate")
	}
}

// TestMatMulNaNInfPropagation guards the zero-skip bugfix: a zero in A
// multiplying a NaN or Inf in B must produce NaN in C (0×NaN = NaN,
// 0×Inf = NaN). The old kernel skipped zero A values as an
// optimisation and silently reported finite results for diverged
// operands, hiding exactly the signal loss-scaling and NaN-detection
// exist to catch.
func TestMatMulNaNInfPropagation(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))

	// Row 0 of A is all zeros; columns of B carry NaN/Inf poison.
	a := FromSlice([]float32{
		0, 0, 0,
		1, 2, 3,
	}, 2, 3)
	b := FromSlice([]float32{
		nan, inf, 1, 0,
		0, 1, 2, 0,
		0, 0, inf, 0,
	}, 3, 4)

	check := func(name string, f func(c *Tensor)) {
		c := Full(-1, 2, 4)
		f(c)
		want := naiveMatMul(a, b)
		for i := range c.Data {
			gotNaN := math.IsNaN(float64(c.Data[i]))
			wantNaN := math.IsNaN(float64(want.Data[i]))
			if gotNaN != wantNaN {
				t.Fatalf("%s: element %d NaN=%v, naive NaN=%v (got %g, naive %g)",
					name, i, gotNaN, wantNaN, c.Data[i], want.Data[i])
			}
			if !wantNaN && math.Float32bits(c.Data[i]) != math.Float32bits(want.Data[i]) {
				t.Fatalf("%s: element %d = %g, naive %g", name, i, c.Data[i], want.Data[i])
			}
		}
	}

	check("matmul", func(c *Tensor) { MatMulInto(c, a, b, false) })
	check("matmulAT", func(c *Tensor) { MatMulATInto(c, transpose(a), b, false) })
	check("matmulBT", func(c *Tensor) { MatMulBTInto(c, a, transpose(b), false) })

	// Sanity: 0×NaN and 0×Inf really did reach C.
	c := New(2, 4)
	MatMulInto(c, a, b, false)
	if !math.IsNaN(float64(c.Data[0])) || !math.IsNaN(float64(c.Data[1])) {
		t.Fatalf("zero row × NaN/Inf columns stayed finite: %v", c.Data[:4])
	}
}

// TestMatMulGOMAXPROCSIndependent pins the stronger determinism the
// register-dot kernel provides: worker count changes which goroutine
// computes an element, never the element's fold order, so results are
// bit-identical across GOMAXPROCS settings.
func TestMatMulGOMAXPROCSIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randTensor(rng, 37, 29)
	b := randTensor(rng, 29, 23)

	prev := runtime.GOMAXPROCS(1)
	serial := New(37, 23)
	MatMulInto(serial, a, b, false)
	runtime.GOMAXPROCS(4)
	wide := New(37, 23)
	MatMulInto(wide, a, b, false)
	runtime.GOMAXPROCS(prev)

	requireBitIdentical(t, wide, serial, "gomaxprocs")
}

// TestMatMulIntoZeroAllocs pins the steady-state allocation budget:
// once the internal pack-panel pool is warm, MatMulInto must not touch
// the heap. Measured at GOMAXPROCS=1 so goroutine spawning (which
// Parallel skips when serial) doesn't count against the kernel.
func TestMatMulIntoZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randTensor(rng, 24, 31)
	b := randTensor(rng, 31, 18)
	c := New(24, 18)

	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	MatMulInto(c, a, b, false) // warm the pack-panel pool

	if n := testing.AllocsPerRun(20, func() {
		MatMulInto(c, a, b, false)
	}); n != 0 {
		t.Fatalf("MatMulInto allocates %.1f times per call in steady state, want 0", n)
	}
}
