package tensor

import (
	"runtime"
	"sync"
)

// Parallel executes fn(lo, hi) over a partition of [0, n) using up to
// GOMAXPROCS goroutines. With a single worker (or tiny n) it runs
// inline, so the kernels have no goroutine overhead on one core.
func Parallel(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
