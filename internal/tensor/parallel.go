package tensor

import (
	"runtime"
	"sync"
)

// parallelDegree reports how many workers Parallel would use for a
// range of size n. Kernels that must stay allocation-free in steady
// state branch on it: when it returns 1 they call their worker body
// directly, so the closure Parallel would need never exists (escape
// analysis is flow-insensitive — a closure that reaches Parallel on
// any path is heap-allocated even on the serial path).
func parallelDegree(n int) int {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	return workers
}

// Parallel executes fn(lo, hi) over a partition of [0, n) using up to
// GOMAXPROCS goroutines. With a single worker (or tiny n) it runs
// inline, so the kernels have no goroutine overhead on one core.
func Parallel(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if parallelDegree(n) <= 1 {
		fn(0, n) //seglint:ignore hotalloc worker body is the caller's closure, analysed in the enclosing kernel
		return
	}
	workers := parallelDegree(n)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) { //seglint:ignore hotalloc one goroutine+closure per worker per launch; the 0-alloc budget path (GOMAXPROCS=1) takes the serial branch above
			defer wg.Done()
			fn(lo, hi) //seglint:ignore hotalloc worker body is the caller's closure, analysed in the enclosing kernel
		}(lo, hi)
	}
	wg.Wait()
}
