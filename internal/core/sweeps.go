package core

import (
	"fmt"
	"time"

	"segscale/internal/horovod"
	"segscale/internal/model"
	"segscale/internal/mpiprofile"
	"segscale/internal/perfsim"
)

// NamedCandidate labels a configuration for scaling studies
// ("default-spectrum", "tuned-mv2gdr", ...).
type NamedCandidate struct {
	Name      string
	Candidate Candidate
}

// DefaultCandidate is Summit's out-of-the-box configuration.
func DefaultCandidate() NamedCandidate {
	return NamedCandidate{Name: "default-spectrum", Candidate: defaultCandidate()}
}

// NCCLCandidate is Horovod's recommended backend with default knobs —
// the third series of the paper's comparison.
func NCCLCandidate() NamedCandidate {
	return NamedCandidate{Name: "default-nccl", Candidate: Candidate{
		MPI: mpiprofile.NCCL(), Horovod: horovod.Default(),
	}}
}

// TunedCandidate is the configuration the staged tuner converges to
// (also reproducible via Tuner.StagedTune); hard-coded here so the
// scaling benches don't re-run the search.
func TunedCandidate() NamedCandidate {
	hvd := horovod.Default()
	hvd.FusionThreshold = 128 << 20
	hvd.CycleTime = 2 * time.Millisecond
	hvd.ResponseCache = true
	mpi := mpiprofile.MV2GDR()
	mpi.CUDABlockSize = 512 << 10
	return NamedCandidate{Name: "tuned-mv2gdr", Candidate: Candidate{MPI: mpi, Horovod: hvd}}
}

// SweepKnob evaluates variations of one candidate produced by mutate
// for each value index, at a fixed scale. Used by the fusion, cycle
// and chunk-size sweep figures.
func sweepKnob(gpus int, prof *model.Profile, seed int64, n int,
	mutate func(i int, c *Candidate) string) ([]Evaluation, error) {
	t := NewTuner(gpus, prof, seed)
	out := make([]Evaluation, 0, n)
	for i := 0; i < n; i++ {
		c := TunedCandidate().Candidate
		c.MPI = c.MPI.Clone()
		label := mutate(i, &c)
		ev, err := t.evaluate(c, label)
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	return out, nil
}

// SweepFusion varies HOROVOD_FUSION_THRESHOLD at a fixed scale (F4).
func SweepFusion(gpus int, prof *model.Profile, thresholds []int, seed int64) ([]Evaluation, error) {
	return sweepKnob(gpus, prof, seed, len(thresholds), func(i int, c *Candidate) string {
		c.Horovod.FusionThreshold = thresholds[i]
		return fmt.Sprintf("fusion=%d", thresholds[i])
	})
}

// SweepCycle varies HOROVOD_CYCLE_TIME at a fixed scale (F5).
func SweepCycle(gpus int, prof *model.Profile, cycles []time.Duration, seed int64) ([]Evaluation, error) {
	return sweepKnob(gpus, prof, seed, len(cycles), func(i int, c *Candidate) string {
		c.Horovod.CycleTime = cycles[i]
		return fmt.Sprintf("cycle=%s", cycles[i])
	})
}

// SweepChunk varies MV2_CUDA_BLOCK_SIZE at a fixed scale.
func SweepChunk(gpus int, prof *model.Profile, chunks []int, seed int64) ([]Evaluation, error) {
	return sweepKnob(gpus, prof, seed, len(chunks), func(i int, c *Candidate) string {
		c.MPI.CUDABlockSize = chunks[i]
		return fmt.Sprintf("chunk=%d", chunks[i])
	})
}

// ScalingPoint is one (configuration, scale) measurement.
type ScalingPoint struct {
	Config     string
	GPUs       int
	ImgPerSec  float64
	Efficiency float64
	Result     *perfsim.Result
}

// ScalingStudy runs each named configuration across the GPU scales,
// computing efficiency against that configuration's own single-GPU
// run — exactly how the paper's scaling figure is constructed.
func ScalingStudy(scales []int, prof *model.Profile, configs []NamedCandidate, seed int64) ([]ScalingPoint, error) {
	var out []ScalingPoint
	for _, nc := range configs {
		base, err := perfsim.Run(perfsim.Config{
			GPUs: 1, Model: prof, MPI: nc.Candidate.MPI,
			Horovod: nc.Candidate.Horovod, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		for _, g := range scales {
			res := base
			if g != 1 {
				res, err = perfsim.Run(perfsim.Config{
					GPUs: g, Model: prof, MPI: nc.Candidate.MPI,
					Horovod: nc.Candidate.Horovod, Seed: seed,
				})
				if err != nil {
					return nil, err
				}
			}
			out = append(out, ScalingPoint{
				Config:     nc.Name,
				GPUs:       g,
				ImgPerSec:  res.ImgPerSec,
				Efficiency: res.EfficiencyVs(base),
				Result:     res,
			})
		}
	}
	return out, nil
}
