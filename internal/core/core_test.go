package core

import (
	"testing"
	"time"

	"segscale/internal/model"
)

// smallSpace keeps test runtime reasonable.
func smallSpace() Space {
	s := DefaultSpace()
	s.FusionThresholds = []int{8 << 20, 64 << 20, 128 << 20}
	s.CycleTimes = []time.Duration{time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond}
	s.CUDABlockSizes = []int{128 << 10, 512 << 10}
	return s
}

func TestStagedTuneImprovesOverDefault(t *testing.T) {
	tuner := NewTuner(48, model.DLv3Plus(), 7)
	rep, err := tuner.StagedTune(smallSpace())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Best.Efficiency <= rep.Baseline.Efficiency {
		t.Fatalf("tuning did not improve: best %.3f vs baseline %.3f", rep.Best.Efficiency, rep.Baseline.Efficiency)
	}
	if rep.Improvement() < 1.05 {
		t.Fatalf("improvement %.3f too small", rep.Improvement())
	}
	if rep.Speedup() < 1.05 {
		t.Fatalf("speedup %.3f too small", rep.Speedup())
	}
	// The tuner must discover that MVAPICH2-GDR beats Spectrum.
	if rep.Best.Candidate.MPI.Name != "mv2gdr" {
		t.Fatalf("best MPI library %q, expected mv2gdr", rep.Best.Candidate.MPI.Name)
	}
	if rep.Evals != len(rep.Trace) {
		t.Fatalf("evals %d != trace %d", rep.Evals, len(rep.Trace))
	}
	if rep.SingleGPU == nil || rep.SingleGPU.GPUs != 1 {
		t.Fatal("missing single-GPU reference")
	}
	if cost := rep.CostGPUHours(); cost <= 0 {
		t.Fatalf("tuning cost %g", cost)
	}
}

func TestStagedTuneTraceStages(t *testing.T) {
	tuner := NewTuner(24, model.DLv3Plus(), 3)
	rep, err := tuner.StagedTune(smallSpace())
	if err != nil {
		t.Fatal(err)
	}
	stages := map[string]int{}
	for _, ev := range rep.Trace {
		stages[ev.Stage]++
	}
	for _, want := range []string{"baseline", "mpi-library", "fusion-threshold", "cycle-time", "allreduce-shape", "cuda-block-size"} {
		if stages[want] == 0 {
			t.Errorf("stage %q missing from trace (%v)", want, stages)
		}
	}
}

func TestStagedTuneCheaperThanGrid(t *testing.T) {
	space := smallSpace()
	staged := NewTuner(24, model.DLv3Plus(), 5)
	srep, err := staged.StagedTune(space)
	if err != nil {
		t.Fatal(err)
	}
	grid := NewTuner(24, model.DLv3Plus(), 5)
	grep, err := grid.GridSearch(space)
	if err != nil {
		t.Fatal(err)
	}
	if srep.Evals >= grep.Evals/3 {
		t.Fatalf("staged used %d evals, grid %d — staged should be ≪", srep.Evals, grep.Evals)
	}
	// The staged optimum must be close to the grid optimum — the
	// paper's justification for not doing a full grid on Summit.
	if srep.Best.Efficiency < grep.Best.Efficiency*0.97 {
		t.Fatalf("staged best %.3f far below grid best %.3f", srep.Best.Efficiency, grep.Best.Efficiency)
	}
}

func TestRandomSearchFindsTheLibraryJump(t *testing.T) {
	space := smallSpace()
	tuner := NewTuner(48, model.DLv3Plus(), 5)
	rep, err := tuner.RandomSearch(space, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Best.Efficiency <= rep.Baseline.Efficiency {
		t.Fatal("random search found nothing above baseline")
	}
	// With 12 draws over a 2-library space, finding a GPU-direct
	// library is near-certain; that is the dominant knob.
	if !rep.Best.Candidate.MPI.GPUDirect {
		t.Fatalf("random search best library %q is not GPU-direct", rep.Best.Candidate.MPI.Name)
	}
	if _, err := tuner.RandomSearch(space, 0, 1); err == nil {
		t.Fatal("zero budget accepted")
	}
}

func TestTunedConfigIsScaleStable(t *testing.T) {
	// The paper tunes once and runs everywhere; that only works if
	// the best configuration is stable across scales. The dominant
	// choice (MPI library) must agree at every tested scale.
	space := smallSpace()
	for _, gpus := range []int{12, 48, 132} {
		rep, err := NewTuner(gpus, model.DLv3Plus(), 11).StagedTune(space)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Best.Candidate.MPI.Name != "mv2gdr" {
			t.Errorf("at %d GPUs best library is %q", gpus, rep.Best.Candidate.MPI.Name)
		}
	}
}

func TestEmptySpaceRejected(t *testing.T) {
	tuner := NewTuner(6, model.DLv3Plus(), 1)
	if _, err := tuner.StagedTune(Space{}); err == nil {
		t.Error("empty space accepted")
	}
	if _, err := tuner.GridSearch(Space{}); err == nil {
		t.Error("empty space accepted by grid")
	}
}

func TestSweepFusionShape(t *testing.T) {
	thresholds := []int{1 << 20, 32 << 20, 128 << 20}
	evs, err := SweepFusion(24, model.DLv3Plus(), thresholds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != len(thresholds) {
		t.Fatalf("%d evaluations", len(evs))
	}
	for i, ev := range evs {
		if ev.Candidate.Horovod.FusionThreshold != thresholds[i] {
			t.Fatalf("evaluation %d has threshold %d", i, ev.Candidate.Horovod.FusionThreshold)
		}
		if ev.Result.ImgPerSec <= 0 {
			t.Fatal("non-positive throughput")
		}
	}
}

func TestSweepCycleAndChunk(t *testing.T) {
	cycles := []time.Duration{time.Millisecond, 10 * time.Millisecond}
	evs, err := SweepCycle(12, model.DLv3Plus(), cycles, 1)
	if err != nil || len(evs) != 2 {
		t.Fatalf("cycle sweep: %v, %d", err, len(evs))
	}
	if evs[0].Result.CyclesPerStep <= evs[1].Result.CyclesPerStep {
		t.Fatal("shorter cycle should produce more cycles per step")
	}
	chunks := []int{64 << 10, 1 << 20}
	evc, err := SweepChunk(12, model.DLv3Plus(), chunks, 1)
	if err != nil || len(evc) != 2 {
		t.Fatalf("chunk sweep: %v, %d", err, len(evc))
	}
	if evc[0].Candidate.MPI.CUDABlockSize != 64<<10 {
		t.Fatal("chunk knob not applied")
	}
}

func TestScalingStudyCoversAllPoints(t *testing.T) {
	scales := []int{1, 6, 24}
	configs := []NamedCandidate{DefaultCandidate(), TunedCandidate()}
	points, err := ScalingStudy(scales, model.DLv3Plus(), configs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(scales)*len(configs) {
		t.Fatalf("%d points", len(points))
	}
	for _, p := range points {
		if p.GPUs == 1 && (p.Efficiency < 0.999 || p.Efficiency > 1.001) {
			t.Fatalf("single-GPU efficiency %.3f", p.Efficiency)
		}
		if p.Efficiency <= 0 || p.Efficiency > 1.05 {
			t.Fatalf("efficiency %.3f out of range at %s/%d", p.Efficiency, p.Config, p.GPUs)
		}
	}
	// Tuned beats default at 24 GPUs.
	var def, tun float64
	for _, p := range points {
		if p.GPUs == 24 {
			if p.Config == "default-spectrum" {
				def = p.ImgPerSec
			} else {
				tun = p.ImgPerSec
			}
		}
	}
	if tun <= def {
		t.Fatalf("tuned (%.1f) not above default (%.1f) at 24 GPUs", tun, def)
	}
}

func TestThreeWayBackendOrdering(t *testing.T) {
	// The paper's comparison: default Spectrum ≪ NCCL ≈ tuned
	// MVAPICH2-GDR, with the tuned config at least matching NCCL.
	points, err := ScalingStudy([]int{1, 132}, model.DLv3Plus(),
		[]NamedCandidate{DefaultCandidate(), NCCLCandidate(), TunedCandidate()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	at132 := map[string]float64{}
	for _, p := range points {
		if p.GPUs == 132 {
			at132[p.Config] = p.ImgPerSec
		}
	}
	if !(at132["default-nccl"] > at132["default-spectrum"]*1.15) {
		t.Fatalf("NCCL (%v) should clearly beat Spectrum (%v)", at132["default-nccl"], at132["default-spectrum"])
	}
	if at132["tuned-mv2gdr"] < at132["default-nccl"]*0.99 {
		t.Fatalf("tuned MV2-GDR (%v) should at least match NCCL (%v)", at132["tuned-mv2gdr"], at132["default-nccl"])
	}
}

func TestCandidateLabel(t *testing.T) {
	l := TunedCandidate().Candidate.Label()
	for _, want := range []string{"mv2gdr", "fuse=128MiB", "chunk=512KiB", "+cache"} {
		if !contains(l, want) {
			t.Errorf("label %q missing %q", l, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
