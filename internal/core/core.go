// Package core implements the paper's contribution: a tuning
// methodology for Horovod/MPI distributed training that reaches
// near-linear scaling *without modifying Horovod, MPI, or the model*.
//
// The method is a staged, one-knob-family-at-a-time search over the
// runtime's existing configuration surface:
//
//	stage 1: MPI library            (Spectrum MPI vs MVAPICH2-GDR)
//	stage 2: HOROVOD_FUSION_THRESHOLD
//	stage 3: HOROVOD_CYCLE_TIME
//	stage 4: allreduce shape        (flat vs HOROVOD_HIERARCHICAL_ALLREDUCE,
//	                                 plus HOROVOD_CACHE_CAPACITY)
//	stage 5: MV2_CUDA_BLOCK_SIZE    (MPI-level chunking)
//
// Each stage keeps the best setting found so far and evaluates only
// its own family, so the cost is the *sum* of family sizes instead of
// their product; an exhaustive grid search is provided for the
// ablation that shows the staged result matches the grid optimum at a
// fraction of the evaluations.
package core

import (
	"fmt"
	"math/rand"
	"time"

	"segscale/internal/horovod"
	"segscale/internal/model"
	"segscale/internal/mpiprofile"
	"segscale/internal/netmodel"
	"segscale/internal/perfsim"
)

// Space is the knob grid the tuner explores.
type Space struct {
	MPIProfiles      []string // mpiprofile names
	FusionThresholds []int
	CycleTimes       []time.Duration
	Hierarchical     []bool
	ResponseCache    []bool
	CUDABlockSizes   []int
}

// DefaultSpace mirrors the ranges a tuning study on Summit would
// sweep.
func DefaultSpace() Space {
	return Space{
		MPIProfiles:      mpiprofile.Names(),
		FusionThresholds: []int{1 << 20, 8 << 20, 32 << 20, 64 << 20, 128 << 20, 256 << 20},
		CycleTimes: []time.Duration{
			500 * time.Microsecond, time.Millisecond, 2 * time.Millisecond,
			3500 * time.Microsecond, 5 * time.Millisecond, 10 * time.Millisecond,
			30 * time.Millisecond,
		},
		Hierarchical:   []bool{false, true},
		ResponseCache:  []bool{false, true},
		CUDABlockSizes: []int{64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20},
	}
}

// GridSize is the number of configurations an exhaustive grid search
// over this space would evaluate.
func (s Space) GridSize() int {
	return len(s.MPIProfiles) * len(s.FusionThresholds) * len(s.CycleTimes) *
		len(s.Hierarchical) * len(s.ResponseCache) * len(s.CUDABlockSizes)
}

func (s Space) validate() error {
	if len(s.MPIProfiles) == 0 || len(s.FusionThresholds) == 0 || len(s.CycleTimes) == 0 {
		return fmt.Errorf("core: empty tuning space")
	}
	return nil
}

// Candidate is one point in the configuration space.
type Candidate struct {
	MPI     *mpiprofile.Profile
	Horovod horovod.Config
}

// Label renders the candidate compactly for reports.
func (c Candidate) Label() string {
	h := "flat"
	if c.Horovod.Hierarchical {
		h = "hier"
	}
	cache := ""
	if c.Horovod.ResponseCache {
		cache = "+cache"
	}
	return fmt.Sprintf("%s fuse=%dMiB cycle=%s %s%s chunk=%dKiB",
		c.MPI.Name, c.Horovod.FusionThreshold>>20, c.Horovod.CycleTime, h, cache,
		c.MPI.CUDABlockSize>>10)
}

// Evaluation is a scored candidate.
type Evaluation struct {
	Candidate  Candidate
	Result     *perfsim.Result
	Efficiency float64
	Stage      string // which tuning stage produced it
}

// TuneReport is the outcome of a tuning run.
type TuneReport struct {
	Best     Evaluation
	Baseline Evaluation // default Horovod + Spectrum at the same scale
	Trace    []Evaluation
	// Evals is the number of simulator runs performed.
	Evals int
	// SingleGPU is the 1-GPU reference result.
	SingleGPU *perfsim.Result
}

// Improvement is the best-over-baseline efficiency ratio (the paper
// reports 1.239, i.e. +23.9 %).
func (r *TuneReport) Improvement() float64 {
	return r.Best.Efficiency / r.Baseline.Efficiency
}

// Speedup is the best-over-baseline throughput ratio (paper: ≈1.3×).
func (r *TuneReport) Speedup() float64 {
	return r.Best.Result.ImgPerSec / r.Baseline.Result.ImgPerSec
}

// CostGPUHours estimates what the tuning search would have cost on
// the real machine: the simulated wall time of every evaluation times
// its GPU count. This is the number that justifies staged over grid
// search when each evaluation is a real 132-GPU job.
func (r *TuneReport) CostGPUHours() float64 {
	total := 0.0
	for _, ev := range r.Trace {
		steps := float64(len(ev.Result.StepTimesSec))
		total += ev.Result.AvgStepSec * steps * float64(ev.Result.GPUs) / 3600
	}
	return total
}

// Tuner drives tuning at one scale for one model.
type Tuner struct {
	GPUs  int
	Model *model.Profile
	Seed  int64
	// Steps per simulation (0 = perfsim default).
	Steps int

	base  *perfsim.Result
	evals int
}

// NewTuner constructs a tuner.
func NewTuner(gpus int, prof *model.Profile, seed int64) *Tuner {
	return &Tuner{GPUs: gpus, Model: prof, Seed: seed}
}

// evaluate runs the simulator for one candidate.
func (t *Tuner) evaluate(c Candidate, stage string) (Evaluation, error) {
	if t.base == nil {
		base, err := perfsim.Run(perfsim.Config{
			GPUs: 1, Model: t.Model, MPI: mpiprofile.MV2GDR(),
			Horovod: horovod.Default(), Seed: t.Seed, Steps: t.Steps,
		})
		if err != nil {
			return Evaluation{}, err
		}
		t.base = base
	}
	res, err := perfsim.Run(perfsim.Config{
		GPUs: t.GPUs, Model: t.Model, MPI: c.MPI, Horovod: c.Horovod,
		Seed: t.Seed, Steps: t.Steps,
	})
	if err != nil {
		return Evaluation{}, err
	}
	t.evals++
	return Evaluation{Candidate: c, Result: res, Efficiency: res.EfficiencyVs(t.base), Stage: stage}, nil
}

// defaultCandidate is the untuned starting point: Summit's default
// MPI with default Horovod knobs.
func defaultCandidate() Candidate {
	return Candidate{MPI: mpiprofile.Spectrum(), Horovod: horovod.Default()}
}

// StagedTune runs the paper's staged methodology and returns the best
// configuration with the full evaluation trace.
func (t *Tuner) StagedTune(space Space) (*TuneReport, error) {
	if err := space.validate(); err != nil {
		return nil, err
	}
	report := &TuneReport{}
	cur := defaultCandidate()

	baseline, err := t.evaluate(cur, "baseline")
	if err != nil {
		return nil, err
	}
	report.Baseline = baseline
	report.Trace = append(report.Trace, baseline)
	best := baseline

	consider := func(c Candidate, stage string) error {
		ev, err := t.evaluate(c, stage)
		if err != nil {
			return err
		}
		report.Trace = append(report.Trace, ev)
		if ev.Efficiency > best.Efficiency {
			best = ev
		}
		return nil
	}

	// Stage 1: MPI library.
	for _, name := range space.MPIProfiles {
		p, err := mpiprofile.ByName(name)
		if err != nil {
			return nil, err
		}
		c := best.Candidate
		c.MPI = p
		if err := consider(c, "mpi-library"); err != nil {
			return nil, err
		}
	}
	// Stage 2: fusion threshold.
	for _, f := range space.FusionThresholds {
		c := best.Candidate
		c.Horovod.FusionThreshold = f
		if err := consider(c, "fusion-threshold"); err != nil {
			return nil, err
		}
	}
	// Stage 3: cycle time.
	for _, ct := range space.CycleTimes {
		c := best.Candidate
		c.Horovod.CycleTime = ct
		if err := consider(c, "cycle-time"); err != nil {
			return nil, err
		}
	}
	// Stage 4: allreduce shape + response cache.
	for _, h := range space.Hierarchical {
		for _, rc := range space.ResponseCache {
			c := best.Candidate
			c.Horovod.Hierarchical = h
			c.Horovod.ResponseCache = rc
			if err := consider(c, "allreduce-shape"); err != nil {
				return nil, err
			}
		}
	}
	// Stage 5: MPI chunk size (MV2_CUDA_BLOCK_SIZE).
	for _, cb := range space.CUDABlockSizes {
		c := best.Candidate
		c.MPI = c.MPI.Clone()
		c.MPI.CUDABlockSize = cb
		if err := consider(c, "cuda-block-size"); err != nil {
			return nil, err
		}
	}

	report.Best = best
	report.Evals = t.evals
	report.SingleGPU = t.base
	return report, nil
}

// RandomSearch evaluates `budget` uniformly-random configurations —
// the third methodology point: with the staged tuner's budget, does
// random search find a comparable optimum? (On this space it tends
// to find the MPI-library jump quickly but wastes evaluations on the
// flat knobs.)
func (t *Tuner) RandomSearch(space Space, budget int, seed int64) (*TuneReport, error) {
	if err := space.validate(); err != nil {
		return nil, err
	}
	if budget <= 0 {
		return nil, fmt.Errorf("core: random-search budget %d", budget)
	}
	rng := rand.New(rand.NewSource(seed))
	report := &TuneReport{}
	baseline, err := t.evaluate(defaultCandidate(), "baseline")
	if err != nil {
		return nil, err
	}
	report.Baseline = baseline
	report.Trace = append(report.Trace, baseline)
	best := baseline

	pick := func(n int) int { return rng.Intn(n) }
	for i := 0; i < budget; i++ {
		p, err := mpiprofile.ByName(space.MPIProfiles[pick(len(space.MPIProfiles))])
		if err != nil {
			return nil, err
		}
		p.CUDABlockSize = space.CUDABlockSizes[pick(len(space.CUDABlockSizes))]
		cand := Candidate{MPI: p, Horovod: horovod.Config{
			FusionThreshold: space.FusionThresholds[pick(len(space.FusionThresholds))],
			CycleTime:       space.CycleTimes[pick(len(space.CycleTimes))],
			Hierarchical:    space.Hierarchical[pick(len(space.Hierarchical))],
			Algorithm:       netmodel.AlgAuto,
			ResponseCache:   space.ResponseCache[pick(len(space.ResponseCache))],
		}}
		ev, err := t.evaluate(cand, "random")
		if err != nil {
			return nil, err
		}
		report.Trace = append(report.Trace, ev)
		if ev.Efficiency > best.Efficiency {
			best = ev
		}
	}
	report.Best = best
	report.Evals = t.evals
	report.SingleGPU = t.base
	return report, nil
}

// GridSearch exhaustively evaluates the full cross product — the
// ablation reference for StagedTune.
func (t *Tuner) GridSearch(space Space) (*TuneReport, error) {
	if err := space.validate(); err != nil {
		return nil, err
	}
	report := &TuneReport{}
	baseline, err := t.evaluate(defaultCandidate(), "baseline")
	if err != nil {
		return nil, err
	}
	report.Baseline = baseline
	best := baseline
	for _, name := range space.MPIProfiles {
		for _, f := range space.FusionThresholds {
			for _, ct := range space.CycleTimes {
				for _, h := range space.Hierarchical {
					for _, rc := range space.ResponseCache {
						for _, cb := range space.CUDABlockSizes {
							p, err := mpiprofile.ByName(name)
							if err != nil {
								return nil, err
							}
							p.CUDABlockSize = cb
							c := Candidate{MPI: p, Horovod: horovod.Config{
								FusionThreshold: f,
								CycleTime:       ct,
								Hierarchical:    h,
								Algorithm:       netmodel.AlgAuto,
								ResponseCache:   rc,
							}}
							ev, err := t.evaluate(c, "grid")
							if err != nil {
								return nil, err
							}
							report.Trace = append(report.Trace, ev)
							if ev.Efficiency > best.Efficiency {
								best = ev
							}
						}
					}
				}
			}
		}
	}
	report.Best = best
	report.Evals = t.evals
	report.SingleGPU = t.base
	return report, nil
}
