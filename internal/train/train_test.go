package train

import (
	"math"
	"testing"

	"segscale/internal/deeplab"
	"segscale/internal/segdata"
)

// fastCfg keeps unit-test runtime low: tiny model, tiny dataset.
func fastCfg() Config {
	cfg := DefaultConfig()
	cfg.Model.InputSize = 16
	cfg.Model.Width = 8
	cfg.Model.DeepBlocks = 1
	cfg.Model.AtrousRates = [3]int{1, 2, 3}
	cfg.TrainSize = 24
	cfg.EvalSize = 8
	cfg.Epochs = 8
	return cfg
}

func TestValidation(t *testing.T) {
	bads := []func(*Config){
		func(c *Config) { c.World = 0 },
		func(c *Config) { c.Epochs = 0 },
		func(c *Config) { c.BatchPerRank = 0 },
		func(c *Config) { c.TrainSize = 1; c.World = 4 },
		func(c *Config) { c.EvalSize = 0 },
		func(c *Config) { c.Arch = "unet" },
		func(c *Config) { c.BaseLR = 0 },
		func(c *Config) { c.Optimizer = "adam" },
		func(c *Config) { c.GradClip = -1 },
	}
	for i, mutate := range bads {
		cfg := fastCfg()
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSingleRankConverges(t *testing.T) {
	cfg := fastCfg()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != cfg.Epochs {
		t.Fatalf("history length %d", len(res.History))
	}
	first, last := res.History[0], res.History[len(res.History)-1]
	if !(last.Loss < first.Loss*0.8) {
		t.Fatalf("loss did not drop: %.4f → %.4f", first.Loss, last.Loss)
	}
	if !(res.FinalMIOU > first.MIOU) {
		t.Fatalf("mIOU did not improve: %.4f → %.4f", first.MIOU, res.FinalMIOU)
	}
	if math.IsNaN(last.Loss) {
		t.Fatal("training diverged")
	}
	// Poly schedule: LR at the end is near zero.
	if last.LR >= first.LR {
		t.Fatalf("LR did not decay: %.4f → %.4f", first.LR, last.LR)
	}
}

func TestStrongScalingParity(t *testing.T) {
	// Same effective batch, same LR: distributed must match
	// single-rank accuracy (the SyncBN + real-allreduce equivalence).
	single := fastCfg()
	single.World = 1
	single.BatchPerRank = 4
	single.Augment = false

	dist := single
	dist.World = 4
	dist.BatchPerRank = 1
	dist.ScaleLRByWorld = false

	rs, err := Run(single)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Run(dist)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rs.FinalMIOU-rd.FinalMIOU) > 0.15 {
		t.Fatalf("strong-scaling gap too large: single %.3f vs distributed %.3f", rs.FinalMIOU, rd.FinalMIOU)
	}
	if rd.FinalMIOU <= rd.History[0].MIOU {
		t.Fatalf("distributed run did not improve: %.3f → %.3f", rd.History[0].MIOU, rd.FinalMIOU)
	}
}

func TestUnevenShardsDoNotDeadlock(t *testing.T) {
	cfg := fastCfg()
	cfg.World = 4
	cfg.TrainSize = 27 // 7,7,7,6 per rank — wrap-around keeps lockstep
	cfg.EvalSize = 5
	cfg.Epochs = 2
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFCNTrains(t *testing.T) {
	cfg := fastCfg()
	cfg.Arch = "fcn"
	cfg.Epochs = 5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.History[len(res.History)-1].Loss < res.History[0].Loss) {
		t.Fatal("FCN loss did not drop")
	}
}

func TestSyncBNOffStillRuns(t *testing.T) {
	cfg := fastCfg()
	cfg.World = 2
	cfg.SyncBN = false
	cfg.Epochs = 2
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestWeakScalingUsesLinearRule(t *testing.T) {
	// With ScaleLRByWorld the recorded early LR must exceed BaseLR
	// (warmup climbs toward BaseLR·World).
	cfg := fastCfg()
	cfg.World = 4
	cfg.Epochs = 3
	cfg.WarmupFrac = 0.2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	maxLR := 0.0
	for _, e := range res.History {
		if e.LR > maxLR {
			maxLR = e.LR
		}
	}
	if maxLR <= cfg.BaseLR {
		t.Fatalf("linear-scaling rule inactive: max LR %.4f ≤ base %.4f", maxLR, cfg.BaseLR)
	}
}

func TestDeepLabBeatsFCNOnSegmentation(t *testing.T) {
	// The architectural contrast: at an equal training budget the
	// DeepLab machinery should not lose to the plain FCN.
	dl := fastCfg()
	dl.Epochs = 10
	fcn := dl
	fcn.Arch = "fcn"
	rdl, err := Run(dl)
	if err != nil {
		t.Fatal(err)
	}
	rfcn, err := Run(fcn)
	if err != nil {
		t.Fatal(err)
	}
	if rdl.FinalMIOU < rfcn.FinalMIOU-0.1 {
		t.Fatalf("DeepLab (%.3f) far below FCN (%.3f)", rdl.FinalMIOU, rfcn.FinalMIOU)
	}
}

func TestUrbanDatasetTrains(t *testing.T) {
	cfg := fastCfg()
	cfg.DataStyle = segdata.StyleUrban
	cfg.Epochs = 5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The banded scenes are easier than scattered objects: the model
	// must learn them quickly.
	if res.FinalMIOU < 0.25 {
		t.Fatalf("urban mIOU %.3f too low after %d epochs", res.FinalMIOU, cfg.Epochs)
	}
}

func TestLARSOptimizerConverges(t *testing.T) {
	cfg := fastCfg()
	cfg.Optimizer = "lars"
	cfg.BaseLR = 2.0 // LARS global rates are large; trust ratios scale them down
	cfg.GradClip = 10
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.History[0], res.History[len(res.History)-1]
	if !(last.Loss < first.Loss) {
		t.Fatalf("LARS loss did not drop: %.4f → %.4f", first.Loss, last.Loss)
	}
	if math.IsNaN(last.Loss) {
		t.Fatal("LARS diverged")
	}
}

func TestGradientAccumulation(t *testing.T) {
	cfg := fastCfg()
	cfg.World = 2
	cfg.Epochs = 4
	cfg.Horovod.BackwardPassesPerStep = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.History[len(res.History)-1].Loss < res.History[0].Loss) {
		t.Fatal("accumulated training did not learn")
	}
}

func TestBestEpochTracked(t *testing.T) {
	cfg := fastCfg()
	cfg.Epochs = 5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestEpoch < 0 || res.BestEpoch >= cfg.Epochs {
		t.Fatalf("best epoch %d", res.BestEpoch)
	}
	if res.BestMIOU < res.FinalMIOU-1e-12 {
		t.Fatalf("best %.4f below final %.4f", res.BestMIOU, res.FinalMIOU)
	}
	if res.History[res.BestEpoch].MIOU != res.BestMIOU {
		t.Fatal("best epoch does not match history")
	}
}

func TestPerClassIOUReported(t *testing.T) {
	cfg := fastCfg()
	cfg.Epochs = 3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FinalPerClassIOU) != 21 {
		t.Fatalf("per-class IOU length %d", len(res.FinalPerClassIOU))
	}
	present, sum := 0, 0.0
	for _, iou := range res.FinalPerClassIOU {
		if !math.IsNaN(iou) {
			present++
			sum += iou
		}
	}
	if present == 0 {
		t.Fatal("no classes present in eval set")
	}
	if got := sum / float64(present); math.Abs(got-res.FinalMIOU) > 1e-9 {
		t.Fatalf("per-class mean %.4f != mIOU %.4f", got, res.FinalMIOU)
	}
}

func TestCheckpointAndResume(t *testing.T) {
	dir := t.TempDir()
	ckpt := dir + "/model.segc"

	// Phase 1: train 4 epochs, checkpointing.
	cfg := fastCfg()
	cfg.Epochs = 4
	cfg.CheckpointPath = ckpt
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 2: resume and train 4 more — must start from phase 1's
	// quality, not from scratch.
	cfg2 := fastCfg()
	cfg2.Epochs = 4
	cfg2.ResumeFrom = ckpt
	cfg2.Seed = cfg.Seed // same data
	r2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	// The resumed run's FIRST epoch should already be at or below the
	// fresh run's LAST loss (it starts from those weights).
	fresh := r1.History[len(r1.History)-1].Loss
	resumed := r2.History[0].Loss
	if resumed > fresh*1.5 {
		t.Fatalf("resume lost progress: fresh final %.4f, resumed first %.4f", fresh, resumed)
	}
	// And a missing checkpoint errors.
	cfg3 := fastCfg()
	cfg3.Epochs = 1
	cfg3.ResumeFrom = dir + "/missing.segc"
	if _, err := Run(cfg3); err == nil {
		t.Error("missing resume checkpoint did not fail")
	}
}

func TestConfigArchDefaults(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Arch != "deeplab" || !cfg.SyncBN || !cfg.ScaleLRByWorld {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	if cfg.Model.InputSize != deeplab.DefaultConfig().InputSize {
		t.Fatal("model config mismatch")
	}
}
