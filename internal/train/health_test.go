package train

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"segscale/internal/deeplab"
	"segscale/internal/modelhealth"
	"segscale/internal/nn"
	"segscale/internal/segdata"
	"segscale/internal/telemetry"
	"segscale/internal/tensor"
)

// healthCfg sizes the health-golden run: two ranks, two epochs of two
// two-image steps each — small enough for a committed ledger, big
// enough to exercise multi-rank multi-step collection.
func healthCfg() Config {
	cfg := fastCfg()
	cfg.World = 2
	cfg.Epochs = 2
	cfg.TrainSize = 8
	cfg.BatchPerRank = 2
	return cfg
}

// TestHealthLedgerGolden is the determinism gate: a same-seed rerun
// produces a byte-identical health ledger, pinned to a committed
// golden (testdata/health_ledger.golden, regenerate with
// `go test ./internal/train/ -run TestHealthLedgerGolden -update`).
// A healthy run additionally stays sentinel-silent.
func TestHealthLedgerGolden(t *testing.T) {
	runOnce := func() (*modelhealth.Plane, []byte) {
		cfg := healthCfg()
		plane := modelhealth.New(modelhealth.Config{})
		cfg.Health = plane
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := plane.WriteLedger(&buf); err != nil {
			t.Fatal(err)
		}
		return plane, buf.Bytes()
	}
	plane, a := runOnce()
	if alerts := plane.Alerts(); len(alerts) != 0 {
		t.Fatalf("healthy run tripped %d sentinel(s): %+v", len(alerts), alerts[0])
	}
	_, b := runOnce()
	if !bytes.Equal(a, b) {
		t.Fatal("health ledger not byte-identical across same-seed reruns")
	}

	l, err := modelhealth.ReadLedger(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.Header.World != 2 {
		t.Fatalf("ledger world %d, want 2", l.Header.World)
	}
	grads, acts := 0, 0
	for _, r := range l.Rows {
		switch r.Kind {
		case "grad":
			grads++
		case "act":
			acts++
		}
	}
	if grads == 0 || acts == 0 {
		t.Fatalf("ledger missing a view: %d grad rows, %d act rows", grads, acts)
	}

	goldenPath := filepath.Join("testdata", "health_ledger.golden")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, a, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, want) {
		t.Errorf("health ledger drifted from golden (regenerate with -update if intended): got %d bytes, want %d", len(a), len(want))
	}
}

// TestHealthIsPureObserver: enabling the health plane must not perturb
// the training computation — the per-epoch history matches a plane-
// less run bit for bit (the restart/elastic/fp16 goldens rely on it).
func TestHealthIsPureObserver(t *testing.T) {
	plain := healthCfg()
	rp, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	observed := healthCfg()
	observed.Health = modelhealth.New(modelhealth.Config{})
	ro, err := Run(observed)
	if err != nil {
		t.Fatal(err)
	}
	for e := range rp.History {
		if rp.History[e] != ro.History[e] {
			t.Errorf("epoch %d: health plane perturbed training:\nplain:    %+v\nobserved: %+v",
				e, rp.History[e], ro.History[e])
		}
	}
	if rp.FinalMIOU != ro.FinalMIOU {
		t.Errorf("final mIOU diverged: %v vs %v", rp.FinalMIOU, ro.FinalMIOU)
	}
}

// TestHealthDivergenceSentinel injects divergence — a blown-up
// learning rate — and asserts the sentinel trips with full (layer,
// rank, step, incarnation) provenance while the flight recorder's
// dumped window names the HEALTH marks.
func TestHealthDivergenceSentinel(t *testing.T) {
	cfg := healthCfg()
	// Large enough that the second step's weights overflow float32 and
	// poison activations and gradients with Inf/NaN — batch norm keeps
	// merely-large weights finite, so a mild blow-up (1e6) trips only
	// the update-ratio sentinel.
	cfg.BaseLR = 1e20
	cfg.Telemetry = telemetry.NewCollector()
	flight := cfg.Telemetry.EnableFlight(0)
	plane := modelhealth.New(modelhealth.Config{})
	cfg.Health = plane
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	alerts := plane.Alerts()
	if len(alerts) == 0 {
		t.Fatal("blown-up LR tripped no sentinel")
	}
	kinds := map[string]bool{}
	for _, a := range alerts {
		kinds[a.Kind] = true
		if a.Layer == "" {
			t.Fatalf("alert without layer provenance: %+v", a)
		}
		if a.Rank < 0 || a.Rank >= cfg.World {
			t.Fatalf("alert rank %d outside world %d", a.Rank, cfg.World)
		}
		if a.Step < 0 || a.Inc != 0 {
			t.Fatalf("alert step/incarnation provenance: %+v", a)
		}
		if !strings.Contains(a.Msg, a.Layer) {
			t.Fatalf("alert message %q does not name layer %q", a.Msg, a.Layer)
		}
	}
	// The blown LR first trips the update-ratio sentinel, then the
	// exploded weights poison activations and gradients.
	if !kinds[modelhealth.AlertUpdateRatio] {
		t.Errorf("update_ratio sentinel silent; tripped kinds: %v", kinds)
	}
	if !kinds[modelhealth.AlertNonFiniteGrad] || !kinds[modelhealth.AlertNonFiniteAct] {
		t.Errorf("non-finite sentinels silent; tripped kinds: %v", kinds)
	}

	// The trips are in the flight window as zero-duration HEALTH marks,
	// so a post-mortem dump names what fired.
	var buf bytes.Buffer
	if err := flight.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	trace := buf.String()
	if !strings.Contains(trace, "HEALTH") {
		t.Error("dumped flight trace has no HEALTH marks")
	}
	if !strings.Contains(trace, modelhealth.AlertUpdateRatio) {
		t.Error("dumped flight trace does not name the update_ratio sentinel")
	}

	// The ledger of a diverged run still serialises and validates (no
	// NaN reaches a JSON float field).
	var ledger bytes.Buffer
	if err := plane.WriteLedger(&ledger); err != nil {
		t.Fatal(err)
	}
	l, err := modelhealth.ReadLedger(bytes.NewReader(ledger.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

// ampMarks runs a short mixed-precision training with an oversized
// flight window and returns the dumped Chrome trace.
func ampMarks(t *testing.T, lossScale float64, epochs int) string {
	t.Helper()
	cfg := fastCfg()
	cfg.World = 2
	cfg.MixedPrecision = true
	cfg.LossScale = lossScale
	cfg.Epochs = epochs
	cfg.Telemetry = telemetry.NewCollector()
	// A full run emits ~200 span events per step and rank; the default
	// 4096-event ring would evict early-run marks, so size the window
	// to hold the whole run.
	flight := cfg.Telemetry.EnableFlight(1 << 16)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := flight.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestHealthStepAllocBudget proves the health plane's steady state is
// allocation-free: a full training step with the collector tapped into
// every ReLU and collecting every gradient allocates no more than the
// plain step (the tiny residue allowed covers the plane's amortised
// ledger growth — a capacity-doubling append that lands on a measured
// iteration once in a while, never per step).
func TestHealthStepAllocBudget(t *testing.T) {
	measure := func(withHealth bool) float64 {
		cfg := deeplab.DefaultConfig()
		net := deeplab.New(cfg)
		ws := tensor.NewWorkspace()
		net.SetWorkspace(ws)
		params := net.Params()
		opt := nn.NewSGD(0.05)
		ds := segdata.New(4, cfg.InputSize, cfg.InputSize, 7)
		x, labels := ds.Batch([]int{0, 1})

		var health *modelhealth.Collector
		step := int64(0)
		if withHealth {
			probe := telemetry.NewProbe("rank0", telemetry.NewStepClock())
			health = modelhealth.New(modelhealth.Config{}).Rank(0, 0, probe)
			net.SetActivationTap(health)
		}
		stepFn := func() {
			ws.Reset()
			health.BeginStep(step)
			net.ReseedDropout(3)
			net.Loss(x, labels, segdata.IgnoreLabel, true)
			health.CollectUpdate(params, 0.05)
			opt.Step(params)
			nn.ZeroGrads(params)
			health.EndStep()
			step++
		}
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
		stepFn()
		stepFn()
		return testing.AllocsPerRun(10, stepFn)
	}
	plain := measure(false)
	health := measure(true)
	t.Logf("allocs/step: plain=%.1f health=%.1f", plain, health)
	if health > plain+1 {
		t.Fatalf("health collection adds %.1f allocs/step to the %.1f baseline", health-plain, plain)
	}
}

// TestLossScaleTransitionMarks forces the loss scaler through backoff
// (a deliberately enormous initial scale overflows the binary16 wire
// until it has halved into range) and, in a second run, through regrow
// (a small initial scale plus a growth-interval of good steps),
// asserting both transitions land in the dumped flight trace as
// zero-duration AMP marks.
func TestLossScaleTransitionMarks(t *testing.T) {
	if trace := ampMarks(t, 1<<24, 3); !strings.Contains(trace, "loss_scale_backoff") {
		t.Error("flight trace of an overflowing run has no loss_scale_backoff mark")
	}
	// 20 epochs × 3 steps = 60 good steps, clearing growthInterval 50.
	if trace := ampMarks(t, 1<<4, 20); !strings.Contains(trace, "loss_scale_regrow") {
		t.Error("flight trace of a regrowing run has no loss_scale_regrow mark")
	}
}
