package train

import (
	"math"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"segscale/internal/deeplab"
	"segscale/internal/obs"
	"segscale/internal/segdata"
	"segscale/internal/telemetry"
	"segscale/internal/tensor"
	"segscale/internal/transport"
)

// TestObsPlaneDoesNotChangeResults is the observability no-op
// contract, one level up from the telemetry test: a run with the FULL
// live plane attached — collector, flight recorder, efficiency
// monitor consuming every step, liveness tracking through OnWorld —
// must produce numerically identical training results to a bare run.
func TestObsPlaneDoesNotChangeResults(t *testing.T) {
	cfg := fastCfg()
	cfg.World = 2
	cfg.Epochs = 2

	bare, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	instrumented := cfg
	instrumented.Telemetry = telemetry.NewCollector()
	flight := instrumented.Telemetry.EnableFlight(256)
	mon := obs.NewEffMonitor(instrumented.Telemetry, obs.MonitorConfig{EveryK: 2})
	instrumented.StepObs = mon
	srv := obs.NewServer(obs.ServerOptions{Telemetry: instrumented.Telemetry, Monitor: mon})
	var worldsSeen atomic.Int32
	instrumented.OnWorld = func(w *transport.World, inc int) {
		srv.TrackWorld(w, inc)
		worldsSeen.Add(1)
	}
	observed, err := Run(instrumented)
	if err != nil {
		t.Fatal(err)
	}

	// The plane must actually have been live, or this test proves
	// nothing.
	if worldsSeen.Load() != 1 {
		t.Fatalf("OnWorld fired %d times, want 1", worldsSeen.Load())
	}
	if flight.Total() == 0 {
		t.Fatal("flight recorder saw no events")
	}
	if mon.LastEfficiency() <= 0 {
		t.Fatal("efficiency monitor never evaluated")
	}

	// Results must match bit-for-bit once the observer hooks themselves
	// (pointers, funcs, NaN-holding map) are factored out.
	a, b := *bare, *observed
	a.Config.Telemetry, b.Config.Telemetry = nil, nil
	a.Config.StepObs, b.Config.StepObs = nil, nil
	a.Config.OnWorld, b.Config.OnWorld = nil, nil
	for k := range a.FinalPerClassIOU {
		x, y := a.FinalPerClassIOU[k], b.FinalPerClassIOU[k]
		if x != y && !(math.IsNaN(x) && math.IsNaN(y)) {
			t.Errorf("class %d IOU differs: %g vs %g", k, x, y)
		}
	}
	a.FinalPerClassIOU, b.FinalPerClassIOU = nil, nil
	if !reflect.DeepEqual(a, b) {
		t.Errorf("observability plane changed the training result:\nbare:     %+v\nobserved: %+v", a, b)
	}
}

// TestEvalAllocBudget pins the pooled evaluation path: rendering into
// the workspace arena, predicting into reused label buffers. The
// budget is per evaluate() call over a 16-image shard (4 batches) and
// covers the intentional residue — the confusion matrix, the two
// reused label slices, and Parallel-closure headers — none of it
// proportional to batch or image size.
func TestEvalAllocBudget(t *testing.T) {
	cfg := deeplab.DefaultConfig()
	net := deeplab.New(cfg)
	ws := tensor.NewWorkspace()
	net.SetWorkspace(ws)
	ds := segdata.New(16, cfg.InputSize, cfg.InputSize, 7)

	run := func() { evaluate(net, ds, 1, 0, ws) }

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	run()
	run()
	got := testing.AllocsPerRun(3, run)
	t.Logf("allocs per pooled evaluate() over 16 images: %.0f", got)
	const budget = 120
	if got > budget {
		t.Fatalf("pooled evaluation allocates %.0f times, budget %d", got, budget)
	}
}
