package train

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"segscale/internal/faultinject"
	"segscale/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// chaosCfg is the shared configuration for the recovery tests: two
// ranks, four epochs of three steps each (24 images / 2 ranks / batch
// 4), checkpointing every epoch.
func chaosCfg(dir string) Config {
	cfg := fastCfg()
	cfg.World = 2
	cfg.Epochs = 4
	cfg.CheckpointPath = filepath.Join(dir, "ckpt.segc")
	return cfg
}

// TestRestartEquivalence is the tentpole invariant: a run that loses a
// rank mid-epoch and recovers from the last checkpoint must finish
// bit-identically to a run that never failed — same per-epoch history,
// same final mIOU, and a byte-for-byte identical final checkpoint
// (weights, float64 batch-norm statistics, optimiser velocity, and
// the epoch/step cursor all agree).
//
// The plain run's final numbers are additionally pinned to a committed
// golden (testdata/restart_equivalence.golden, regenerate with
// `go test ./internal/train/ -run TestRestartEquivalence -update`), so
// silent drift in the deterministic training pipeline fails CI too.
func TestRestartEquivalence(t *testing.T) {
	plainDir, chaosDir := t.TempDir(), t.TempDir()

	plain := chaosCfg(plainDir)
	rp, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Restarts != 0 {
		t.Fatalf("unfailed run reported %d restarts", rp.Restarts)
	}

	// Crash rank 1 at global step 7 — epoch 2, one step in, with the
	// epoch-1 checkpoint already on disk — on the first incarnation
	// only.
	chaos := chaosCfg(chaosDir)
	chaos.Chaos = &faultinject.Plan{
		Crashes: []faultinject.Crash{{Rank: 1, Step: 7, Incarnation: 0}},
	}
	chaos.MaxRestarts = 2
	rc, err := Run(chaos)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", rc.Restarts)
	}

	for e := range rp.History {
		if rp.History[e] != rc.History[e] {
			t.Errorf("epoch %d diverged after recovery:\nplain: %+v\nchaos: %+v",
				e, rp.History[e], rc.History[e])
		}
	}
	if rp.FinalMIOU != rc.FinalMIOU || rp.FinalAcc != rc.FinalAcc || rp.FinalFwIOU != rc.FinalFwIOU {
		t.Errorf("final metrics diverged: plain mIOU %v acc %v, chaos mIOU %v acc %v",
			rp.FinalMIOU, rp.FinalAcc, rc.FinalMIOU, rc.FinalAcc)
	}

	// Byte-for-byte: the final checkpoints contain every tensor the
	// run can produce, so equality here is bit-identical recovery.
	a, err := os.ReadFile(plain.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(chaos.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("final checkpoints differ in size: %d vs %d bytes", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("final checkpoints differ at byte %d of %d", i, len(a))
		}
	}

	// Drift gate against the committed golden.
	got := ""
	for _, e := range rp.History {
		got += fmt.Sprintf("epoch %d loss %.9g miou %.9g acc %.9g lr %.9g\n",
			e.Epoch, e.Loss, e.MIOU, e.PixelAcc, e.LR)
	}
	goldenPath := filepath.Join("testdata", "restart_equivalence.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("training history drifted from golden (regenerate with -update if intended):\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestRecoveryFromDoubleCrash schedules a second crash on the second
// incarnation: the run must survive both (two restores) and still
// finish.
func TestRecoveryFromDoubleCrash(t *testing.T) {
	cfg := chaosCfg(t.TempDir())
	cfg.Chaos = &faultinject.Plan{
		Crashes: []faultinject.Crash{
			{Rank: 1, Step: 4, Incarnation: 0},
			{Rank: 0, Step: 10, Incarnation: 1},
		},
	}
	cfg.MaxRestarts = 2
	cfg.Telemetry = telemetry.NewCollector()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 2 {
		t.Fatalf("restarts = %d, want 2", res.Restarts)
	}
	total := 0.0
	for _, m := range cfg.Telemetry.Gather() {
		if m.Name == "recoveries_total" {
			total += m.Value
		}
	}
	if total != 2 {
		t.Fatalf("recoveries_total = %g, want 2", total)
	}
}

// TestCrashBeforeFirstCheckpointColdRestarts exercises the no-restore
// path: a crash in epoch 0, before anything was saved, falls back to a
// from-scratch restart and still matches the unfailed run.
func TestCrashBeforeFirstCheckpointColdRestarts(t *testing.T) {
	plain := chaosCfg(t.TempDir())
	plain.Epochs = 2
	rp, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}

	chaos := chaosCfg(t.TempDir())
	chaos.Epochs = 2
	chaos.Chaos = &faultinject.Plan{
		Crashes: []faultinject.Crash{{Rank: 0, Step: 1, Incarnation: 0}},
	}
	chaos.MaxRestarts = 1
	rc, err := Run(chaos)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", rc.Restarts)
	}
	if rp.FinalMIOU != rc.FinalMIOU {
		t.Fatalf("cold restart diverged: %v vs %v", rp.FinalMIOU, rc.FinalMIOU)
	}
}

// TestRestartBudgetExhausted: with recovery disabled the injected
// crash surfaces as an error carrying the ErrCrashed sentinel.
func TestRestartBudgetExhausted(t *testing.T) {
	cfg := chaosCfg(t.TempDir())
	cfg.Chaos = &faultinject.Plan{
		Crashes: []faultinject.Crash{{Rank: 1, Step: 7, Incarnation: 0}},
	}
	cfg.MaxRestarts = 0
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("crash with no restart budget did not fail")
	}
	if !errors.Is(err, faultinject.ErrCrashed) {
		t.Fatalf("error lost the crash sentinel: %v", err)
	}
}

// TestTrainingUnderMessageFaults arms recoverable message chaos (drop,
// duplication, delay — no crashes) for a short run: retries and
// deduplication must make the result identical to a fault-free run,
// because every payload is still delivered exactly once in order.
func TestTrainingUnderMessageFaults(t *testing.T) {
	plain := chaosCfg(t.TempDir())
	plain.Epochs = 2
	rp, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}

	chaos := chaosCfg(t.TempDir())
	chaos.Epochs = 2
	chaos.Chaos = &faultinject.Plan{
		Seed:        7,
		DropRate:    0.02,
		DupRate:     0.02,
		DelayRate:   0.03,
		MaxAttempts: 8,
	}
	rc, err := Run(chaos)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Restarts != 0 {
		t.Fatalf("message faults should be absorbed without restarts, got %d", rc.Restarts)
	}
	if rp.FinalMIOU != rc.FinalMIOU {
		t.Fatalf("message chaos changed numerics: %v vs %v", rp.FinalMIOU, rc.FinalMIOU)
	}
	for e := range rp.History {
		if rp.History[e] != rc.History[e] {
			t.Fatalf("epoch %d diverged under message chaos", e)
		}
	}
}

// TestValidationRejectsBadChaos covers the new config knobs.
func TestValidationRejectsBadChaos(t *testing.T) {
	cfg := fastCfg()
	cfg.MaxRestarts = -1
	if _, err := Run(cfg); err == nil {
		t.Error("negative MaxRestarts accepted")
	}
	cfg = fastCfg()
	cfg.Chaos = &faultinject.Plan{DropRate: 2}
	if _, err := Run(cfg); err == nil {
		t.Error("invalid chaos plan accepted")
	}
}
