// Package train runs real distributed data-parallel training of the
// scaled-down DeepLab-v3+ on the synthetic VOC dataset: every rank is
// a goroutine with its own model replica, gradients are averaged with
// the real collectives through the Horovod runtime, the learning rate
// follows DeepLab's poly schedule with the linear-scaling rule and
// warmup, and evaluation merges per-rank confusion matrices into a
// global mIOU — the paper's accuracy experiment, end to end.
package train

import (
	"fmt"
	"math"
	"math/rand"

	"segscale/internal/checkpoint"
	"segscale/internal/deeplab"
	"segscale/internal/horovod"
	"segscale/internal/metrics"
	"segscale/internal/nn"
	"segscale/internal/segdata"
	"segscale/internal/telemetry"
	"segscale/internal/timeline"
	"segscale/internal/topology"
	"segscale/internal/transport"
)

// Config describes one training run.
type Config struct {
	// World is the number of data-parallel ranks.
	World int
	// Arch selects "deeplab" or "fcn".
	Arch string
	// Model sizes the network.
	Model deeplab.Config
	// Epochs over the training shard.
	Epochs int
	// BatchPerRank images per rank per step.
	BatchPerRank int
	// TrainSize / EvalSize are synthetic dataset sizes.
	TrainSize int
	EvalSize  int
	// DataStyle selects the scene generator (VOC-like or urban).
	DataStyle segdata.Style
	// BaseLR is the single-rank learning rate; the schedule scales it
	// by World (linear-scaling rule) after warmup.
	BaseLR float64
	// ScaleLRByWorld applies the linear-scaling rule (Goyal et al.),
	// the paper's weak-scaling recipe where the per-rank batch stays
	// fixed as ranks grow. Disable for strong-scaling comparisons
	// that hold the *effective* batch (World × BatchPerRank)
	// constant — there the effective batch hasn't changed, so
	// neither should the learning rate.
	ScaleLRByWorld bool
	// WarmupFrac is the fraction of total steps spent warming up.
	WarmupFrac float64
	// Augment enables random horizontal flips.
	Augment bool
	// SyncBN synchronises batch-norm statistics across ranks — the
	// standard remedy when the per-rank batch is too small for stable
	// statistics (exactly the situation strong scaling creates).
	SyncBN bool
	// Optimizer selects "sgd" (default) or "lars" — LARS being the
	// large-batch stabiliser the weak-scaling regime calls for.
	Optimizer string
	// GradClip, when positive, caps the global gradient L2 norm.
	GradClip float64
	// CheckpointPath, when set, makes rank 0 write the model (weights
	// + batch-norm statistics) there after every epoch — what a
	// wall-clock-limited Summit job does between allocations.
	CheckpointPath string
	// ResumeFrom, when set, loads a checkpoint into every rank before
	// training (after which ranks are trivially in sync).
	ResumeFrom string
	// Horovod configures gradient fusion/allreduce.
	Horovod horovod.Config
	// Seed controls data and augmentation randomness.
	Seed int64
	// Telemetry, when non-nil, collects per-rank spans and metrics
	// for the whole run: each rank gets a probe on a deterministic
	// step-counter clock (lane "rank<N>"), instrumenting the step
	// loop, the Horovod runtime, the collectives, and the transport.
	// Nil (the default) leaves every hot path on its one-branch
	// no-op and must not perturb results in any way.
	Telemetry *telemetry.Collector
}

// DefaultConfig returns a configuration that converges in seconds on
// a CPU.
func DefaultConfig() Config {
	return Config{
		World:          1,
		Arch:           "deeplab",
		Model:          deeplab.DefaultConfig(),
		Epochs:         6,
		BatchPerRank:   4,
		TrainSize:      48,
		EvalSize:       16,
		BaseLR:         0.05,
		ScaleLRByWorld: true,
		WarmupFrac:     0.1,
		Augment:        true,
		SyncBN:         true,
		Optimizer:      "sgd",
		Horovod:        horovod.Default(),
		Seed:           1,
	}
}

func (c Config) validate() error {
	if c.World <= 0 || c.Epochs <= 0 || c.BatchPerRank <= 0 {
		return fmt.Errorf("train: degenerate config (world=%d epochs=%d batch=%d)", c.World, c.Epochs, c.BatchPerRank)
	}
	if c.TrainSize < c.World {
		return fmt.Errorf("train: %d training images cannot shard over %d ranks", c.TrainSize, c.World)
	}
	if c.EvalSize <= 0 {
		return fmt.Errorf("train: empty eval set")
	}
	if c.Arch != "deeplab" && c.Arch != "fcn" {
		return fmt.Errorf("train: unknown arch %q", c.Arch)
	}
	if c.BaseLR <= 0 {
		return fmt.Errorf("train: learning rate %g", c.BaseLR)
	}
	if c.Optimizer != "" && c.Optimizer != "sgd" && c.Optimizer != "lars" {
		return fmt.Errorf("train: unknown optimizer %q", c.Optimizer)
	}
	if c.GradClip < 0 {
		return fmt.Errorf("train: negative gradient clip %g", c.GradClip)
	}
	if err := c.Horovod.Validate(); err != nil {
		return fmt.Errorf("train: %w", err)
	}
	return nil
}

// EpochStats is one epoch's global metrics.
type EpochStats struct {
	Epoch    int
	Loss     float64
	MIOU     float64
	PixelAcc float64
	LR       float64
}

// Result is the outcome of a run.
type Result struct {
	Config    Config
	History   []EpochStats
	FinalMIOU float64
	FinalAcc  float64
	// FinalPerClassIOU holds the last epoch's per-class IOU (NaN for
	// classes absent from the eval set).
	FinalPerClassIOU []float64
	// BestMIOU / BestEpoch track the best evaluation seen (papers
	// report best-checkpoint numbers).
	BestMIOU  float64
	BestEpoch int
	// FinalFwIOU is the last epoch's frequency-weighted IOU.
	FinalFwIOU float64
}

// stepBucketsOps spaces the per-rank step-duration histogram from 1
// to 2048 step-clock ticks (operation counts, not seconds).
var stepBucketsOps = telemetry.ExpBuckets(1, 2, 12)

// Run trains and returns per-epoch metrics.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	mach := topology.ExactFor(cfg.World)
	trainSet := segdata.New(cfg.TrainSize, cfg.Model.InputSize, cfg.Model.InputSize, cfg.Seed)
	trainSet.Style = cfg.DataStyle
	evalSet := segdata.New(cfg.EvalSize, cfg.Model.InputSize, cfg.Model.InputSize, cfg.Seed+1_000_000)
	evalSet.Style = cfg.DataStyle

	stepsPerEpoch := (len(segdata.ShardIDs(cfg.TrainSize, cfg.World, 0)) + cfg.BatchPerRank - 1) / cfg.BatchPerRank
	totalSteps := stepsPerEpoch * cfg.Epochs
	warmup := int(cfg.WarmupFrac * float64(totalSteps))
	lrWorld := cfg.World
	if !cfg.ScaleLRByWorld {
		lrWorld = 1
	}
	sched := nn.NewPolySchedule(cfg.BaseLR, totalSteps, warmup, lrWorld)

	history := make([]EpochStats, cfg.Epochs)
	var finalPerClass []float64
	var finalFw float64

	transport.Run(cfg.World, func(c *transport.Comm) {
		rank := c.Rank()
		// Per-rank telemetry on a step-counter clock: deterministic,
		// wall-clock-free, merged by the collector after the run.
		probe := cfg.Telemetry.NewProbe(fmt.Sprintf("rank%d", rank), telemetry.NewStepClock())
		if probe != nil {
			c.SetProbe(probe)
		}
		var net deeplab.Segmenter
		if cfg.Arch == "fcn" {
			net = deeplab.NewFCN(cfg.Model)
		} else {
			net = deeplab.New(cfg.Model)
		}
		params := net.Params()
		rt, err := horovod.NewRuntime(c, mach, cfg.Horovod)
		if err != nil {
			// Unreachable: cfg.validate checked the Horovod knobs and
			// ExactFor built a matching machine; transport.Run re-raises
			// a rank panic on the caller.
			panic(fmt.Errorf("train: %w", err))
		}
		if cfg.ResumeFrom != "" {
			if err := checkpoint.LoadFile(cfg.ResumeFrom, params, net.BatchNorms()); err != nil {
				panic(fmt.Errorf("train: resume: %w", err))
			}
		}
		rt.BroadcastParams(params)
		if cfg.SyncBN && cfg.World > 1 {
			for _, bn := range net.BatchNorms() {
				bn.Sync = rt.AllreduceSumFloat64
			}
		}

		var opt nn.Optimizer
		if cfg.Optimizer == "lars" {
			opt = nn.NewLARS(sched.LR(0))
		} else {
			opt = nn.NewSGD(sched.LR(0))
		}
		shard := segdata.ShardIDs(cfg.TrainSize, cfg.World, rank)
		rng := rand.New(rand.NewSource(cfg.Seed*31 + int64(rank)))
		accum := cfg.Horovod.AccumPasses()
		step := 0

		for epoch := 0; epoch < cfg.Epochs; epoch++ {
			// Epoch-deterministic shuffle, distinct per rank. Every
			// rank runs exactly stepsPerEpoch batches (wrapping when
			// its shard is a sample short) so the collectives stay in
			// lockstep.
			perm := rand.New(rand.NewSource(cfg.Seed + int64(epoch)*101 + int64(rank))).Perm(len(shard))
			epochLoss, batches := 0.0, 0
			for s := 0; s < stepsPerEpoch; s++ {
				stepSpan := probe.Span(timeline.PhaseStep, "step")
				ids := make([]int, 0, cfg.BatchPerRank)
				for k := 0; k < cfg.BatchPerRank; k++ {
					ids = append(ids, shard[perm[(s*cfg.BatchPerRank+k)%len(shard)]])
				}
				x, labels := trainSet.Batch(ids)
				if cfg.Augment {
					// DeepLab's recipe: random scale jitter + crop,
					// then random horizontal flip.
					segdata.RandomScaleCrop(rng, x, labels, 0.75, 1.25)
					if rng.Intn(2) == 1 {
						segdata.FlipHoriz(x, labels)
					}
				}
				fwdBwd := probe.Span(timeline.PhaseForward, "loss")
				loss := net.Loss(x, labels, segdata.IgnoreLabel, true)
				fwdBwd.End()
				// Gradient accumulation (backward_passes_per_step):
				// communicate and update only every accum-th pass.
				if (s+1)%accum == 0 {
					if accum > 1 {
						for _, p := range params {
							p.G.Scale(1 / float32(accum))
						}
					}
					rt.AllreduceGrads(params)
					if cfg.GradClip > 0 {
						nn.GlobalGradClip(params, cfg.GradClip)
					}
					opt.SetLR(sched.LR(step))
					opt.Step(params)
					nn.ZeroGrads(params)
				}
				epochLoss += loss
				batches++
				step++
				probe.Counter("train_steps_total").Inc()
				probe.Histogram("train_step_ops", stepBucketsOps).Observe(stepSpan.End())
			}

			// Global metrics: average loss, merged confusion matrix.
			avgLoss := rt.AllreduceScalar(epochLoss / float64(batches))
			conf := evaluate(net, evalSet, cfg.World, rank)
			rt.AllreduceCounts(conf.M)
			if rank == 0 {
				history[epoch] = EpochStats{
					Epoch:    epoch,
					Loss:     avgLoss,
					MIOU:     conf.MeanIOU(),
					PixelAcc: conf.PixelAccuracy(),
					LR:       sched.LR(step - 1),
				}
				if cfg.CheckpointPath != "" {
					if err := checkpoint.SaveFile(cfg.CheckpointPath, params, net.BatchNorms()); err != nil {
						panic(fmt.Errorf("train: checkpoint: %w", err))
					}
				}
				if epoch == cfg.Epochs-1 {
					finalPerClass = make([]float64, segdata.NumClasses)
					for k := range finalPerClass {
						if iou, ok := conf.IOU(k); ok {
							finalPerClass[k] = iou
						} else {
							finalPerClass[k] = math.NaN()
						}
					}
					finalFw = conf.FreqWeightedIOU()
				}
			}
			c.Barrier()
		}
	})
	res := &Result{Config: cfg, History: history, FinalPerClassIOU: finalPerClass, FinalFwIOU: finalFw}
	last := history[len(history)-1]
	res.FinalMIOU = last.MIOU
	res.FinalAcc = last.PixelAcc
	res.BestEpoch = -1
	for _, e := range history {
		if e.MIOU > res.BestMIOU {
			res.BestMIOU = e.MIOU
			res.BestEpoch = e.Epoch
		}
	}
	return res, nil
}

// evaluate runs this rank's slice of the eval set through the model
// in eval mode and returns its partial confusion matrix.
func evaluate(net deeplab.Segmenter, evalSet *segdata.Dataset, world, rank int) *metrics.Confusion {
	conf := metrics.NewConfusion(segdata.NumClasses)
	ids := segdata.ShardIDs(evalSet.Len(), world, rank)
	const evalBatch = 4
	for lo := 0; lo < len(ids); lo += evalBatch {
		hi := min(lo+evalBatch, len(ids))
		x, labels := evalSet.Batch(ids[lo:hi])
		pred := net.Predict(x)
		conf.Update(labels, pred, segdata.IgnoreLabel)
	}
	return conf
}
