// Package train runs real distributed data-parallel training of the
// scaled-down DeepLab-v3+ on the synthetic VOC dataset: every rank is
// a goroutine with its own model replica, gradients are averaged with
// the real collectives through the Horovod runtime, the learning rate
// follows DeepLab's poly schedule with the linear-scaling rule and
// warmup, and evaluation merges per-rank confusion matrices into a
// global mIOU — the paper's accuracy experiment, end to end.
//
// The trainer is fault-tolerant: with a chaos plan armed
// (Config.Chaos) ranks can be crashed at scheduled steps and messages
// dropped, duplicated, or delayed in flight. When an incarnation of
// the world dies, Run restores every rank from the last full
// checkpoint (weights, batch-norm statistics, optimiser velocity, and
// the epoch/step cursor) and resumes; because data order, augmentation
// randomness, and the schedule are all pure functions of
// (seed, rank, epoch, step), a recovered run finishes bit-identically
// to one that never failed — the invariant the restart-equivalence
// test locks in.
package train

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"segscale/internal/checkpoint"
	"segscale/internal/deeplab"
	"segscale/internal/faultinject"
	"segscale/internal/horovod"
	"segscale/internal/metrics"
	"segscale/internal/modelhealth"
	"segscale/internal/nn"
	"segscale/internal/segdata"
	"segscale/internal/telemetry"
	"segscale/internal/tensor"
	"segscale/internal/timeline"
	"segscale/internal/topology"
	"segscale/internal/transport"
)

// Config describes one training run.
type Config struct {
	// World is the number of data-parallel ranks.
	World int
	// Arch selects "deeplab" or "fcn".
	Arch string
	// Model sizes the network.
	Model deeplab.Config
	// Epochs over the training shard.
	Epochs int
	// BatchPerRank images per rank per step.
	BatchPerRank int
	// TrainSize / EvalSize are synthetic dataset sizes.
	TrainSize int
	EvalSize  int
	// DataStyle selects the scene generator (VOC-like or urban).
	DataStyle segdata.Style
	// BaseLR is the single-rank learning rate; the schedule scales it
	// by World (linear-scaling rule) after warmup.
	BaseLR float64
	// ScaleLRByWorld applies the linear-scaling rule (Goyal et al.),
	// the paper's weak-scaling recipe where the per-rank batch stays
	// fixed as ranks grow. Disable for strong-scaling comparisons
	// that hold the *effective* batch (World × BatchPerRank)
	// constant — there the effective batch hasn't changed, so
	// neither should the learning rate.
	ScaleLRByWorld bool
	// WarmupFrac is the fraction of total steps spent warming up.
	WarmupFrac float64
	// Augment enables random horizontal flips.
	Augment bool
	// SyncBN synchronises batch-norm statistics across ranks — the
	// standard remedy when the per-rank batch is too small for stable
	// statistics (exactly the situation strong scaling creates).
	SyncBN bool
	// Optimizer selects "sgd" (default) or "lars" — LARS being the
	// large-batch stabiliser the weak-scaling regime calls for.
	Optimizer string
	// GradClip, when positive, caps the global gradient L2 norm.
	GradClip float64
	// CheckpointPath, when set, makes rank 0 write the full training
	// state (weights, batch-norm statistics, optimiser velocity,
	// epoch/step cursor) there after every epoch — what a
	// wall-clock-limited Summit job does between allocations, and the
	// restore point crash recovery rolls back to.
	CheckpointPath string
	// ResumeFrom, when set, loads a checkpoint into every rank before
	// training (after which ranks are trivially in sync).
	ResumeFrom string
	// MixedPrecision enables fp16 training the way the paper's Horovod
	// runs do: master weights, activations, and optimiser state stay
	// float32, gradients cross the wire as binary16
	// (Horovod.FP16Compression is forced on), and dynamic loss scaling
	// keeps small late-training gradients above binary16's underflow
	// floor — overflow steps are skipped with the scale halved, and the
	// scale regrows after a run of good steps (see mixedprec.go).
	MixedPrecision bool
	// LossScale is the initial loss scale for MixedPrecision: zero
	// selects the default (1024); any other value must be a positive
	// power of two so scaling stays mantissa-exact.
	LossScale float64
	// Horovod configures gradient fusion/allreduce.
	Horovod horovod.Config
	// Seed controls data and augmentation randomness.
	Seed int64
	// Chaos, when non-nil, arms deterministic fault injection on the
	// transport: scheduled rank crashes, and message drop/duplication/
	// delay drawn from the plan's seed. Straggler entries are ignored
	// here (they model time, which real training does not simulate;
	// the performance simulator consumes them instead).
	Chaos *faultinject.Plan
	// MaxRestarts bounds how many times Run rebuilds the world after a
	// recoverable failure (rank crash, delivery failure, timeout)
	// before giving up and returning the error. Zero disables
	// recovery. In elastic mode the same budget bounds shrink
	// transitions (scheduled regrows are free).
	MaxRestarts int
	// Elastic switches crash recovery from checkpoint-restart to
	// elastic membership: when a rank dies, the survivors re-form a
	// smaller world in place — model replicas, optimiser state, and
	// the global step carry over, data shards rebalance
	// deterministically over the remaining ranks — and training
	// continues from the top of the interrupted epoch without reading
	// a checkpoint. The elastic driver is a separate code path; the
	// default path's operation order (pinned by the
	// restart-equivalence goldens) is untouched.
	Elastic bool
	// RejoinEpoch, when positive, schedules a regrow: if the world is
	// short-handed when that epoch begins, the dead slots rejoin, get
	// state-synced from a survivor, and the full world finishes the
	// run. Requires Elastic.
	RejoinEpoch int
	// Telemetry, when non-nil, collects per-rank spans and metrics
	// for the whole run: each rank gets a probe on a deterministic
	// step-counter clock (lane "rank<N>", suffixed ".r<K>" for the
	// K-th restarted incarnation), instrumenting the step loop, the
	// Horovod runtime, the collectives, and the transport. Nil (the
	// default) leaves every hot path on its one-branch no-op and must
	// not perturb results in any way.
	Telemetry *telemetry.Collector
	// OnWorld, when non-nil, is called once per incarnation right
	// after the transport world is built and armed (before any rank
	// goroutine starts), with the world and the incarnation number
	// (0 = first attempt). The live observability plane hooks rank
	// liveness (/healthz, /readyz) and flight-recorder dumps on
	// recovery through it. Purely an observer: it must not touch the
	// world beyond reading its state, and nil (the default) must not
	// change results.
	OnWorld func(w *transport.World, incarnation int)
	// StepObs, when non-nil, is notified after every completed
	// training step on every rank. The lane is "rank<N>" and — unlike
	// the telemetry lane — stays stable across restarts, so a
	// wall-timing observer sees the crash-to-recovery gap as one long
	// stall on the affected ranks (the efficiency dip). Real training
	// deliberately never reads a clock, so the notification carries
	// stepSec = 0 and leaves wall timing to the observer (the
	// efficiency monitor stamps arrival times itself). Implementations
	// must be goroutine-safe; nil (the default) must not change
	// results.
	StepObs telemetry.StepObserver
	// Health, when non-nil, hooks the training-health plane into every
	// rank's step: per-layer gradient norms, update-to-weight ratios,
	// activation statistics, and NaN/Inf divergence sentinels, all
	// with (layer, rank, step, incarnation) provenance. Purely an
	// observer — it reads gradients and activations but never writes
	// them — so nil (the default) and enabled runs compute identical
	// results, and the deterministic goldens are unaffected.
	Health *modelhealth.Plane
}

// DefaultConfig returns a configuration that converges in seconds on
// a CPU.
func DefaultConfig() Config {
	return Config{
		World:          1,
		Arch:           "deeplab",
		Model:          deeplab.DefaultConfig(),
		Epochs:         6,
		BatchPerRank:   4,
		TrainSize:      48,
		EvalSize:       16,
		BaseLR:         0.05,
		ScaleLRByWorld: true,
		WarmupFrac:     0.1,
		Augment:        true,
		SyncBN:         true,
		Optimizer:      "sgd",
		Horovod:        horovod.Default(),
		Seed:           1,
	}
}

func (c Config) validate() error {
	if c.World <= 0 || c.Epochs <= 0 || c.BatchPerRank <= 0 {
		return fmt.Errorf("train: degenerate config (world=%d epochs=%d batch=%d)", c.World, c.Epochs, c.BatchPerRank)
	}
	if c.TrainSize < c.World {
		return fmt.Errorf("train: %d training images cannot shard over %d ranks", c.TrainSize, c.World)
	}
	if c.EvalSize <= 0 {
		return fmt.Errorf("train: empty eval set")
	}
	if c.Arch != "deeplab" && c.Arch != "fcn" {
		return fmt.Errorf("train: unknown arch %q", c.Arch)
	}
	if c.BaseLR <= 0 {
		return fmt.Errorf("train: learning rate %g", c.BaseLR)
	}
	if c.Optimizer != "" && c.Optimizer != "sgd" && c.Optimizer != "lars" {
		return fmt.Errorf("train: unknown optimizer %q", c.Optimizer)
	}
	if c.GradClip < 0 {
		return fmt.Errorf("train: negative gradient clip %g", c.GradClip)
	}
	if c.MaxRestarts < 0 {
		return fmt.Errorf("train: negative restart budget %d", c.MaxRestarts)
	}
	if !validLossScale(c.LossScale) {
		return fmt.Errorf("train: loss scale %g is not a positive power of two", c.LossScale)
	}
	if c.LossScale != 0 && !c.MixedPrecision {
		return fmt.Errorf("train: LossScale=%g without MixedPrecision", c.LossScale)
	}
	if c.RejoinEpoch != 0 {
		if !c.Elastic {
			return fmt.Errorf("train: RejoinEpoch=%d without Elastic", c.RejoinEpoch)
		}
		if c.RejoinEpoch < 0 || c.RejoinEpoch >= c.Epochs {
			return fmt.Errorf("train: RejoinEpoch=%d outside (0, %d)", c.RejoinEpoch, c.Epochs)
		}
	}
	if c.Elastic && c.ResumeFrom != "" {
		return fmt.Errorf("train: Elastic and ResumeFrom are mutually exclusive")
	}
	if c.Chaos != nil {
		if err := c.Chaos.Validate(); err != nil {
			return fmt.Errorf("train: %w", err)
		}
	}
	if err := c.Horovod.Validate(); err != nil {
		return fmt.Errorf("train: %w", err)
	}
	return nil
}

// EpochStats is one epoch's global metrics.
type EpochStats struct {
	Epoch    int
	Loss     float64
	MIOU     float64
	PixelAcc float64
	LR       float64
	// World is the number of ranks that trained this epoch — constant
	// for a fixed world, dipping after a shrink and recovering after a
	// regrow in an elastic run.
	World int
}

// Result is the outcome of a run.
type Result struct {
	Config    Config
	History   []EpochStats
	FinalMIOU float64
	FinalAcc  float64
	// FinalPerClassIOU holds the last epoch's per-class IOU (NaN for
	// classes absent from the eval set).
	FinalPerClassIOU []float64
	// BestMIOU / BestEpoch track the best evaluation seen (papers
	// report best-checkpoint numbers).
	BestMIOU  float64
	BestEpoch int
	// FinalFwIOU is the last epoch's frequency-weighted IOU.
	FinalFwIOU float64
	// Restarts counts how many times the world was rebuilt after a
	// recoverable failure (0 for an unfailed run).
	Restarts int
	// Shrinks / Regrows count elastic membership transitions: worlds
	// re-formed smaller after a rank death, and scheduled rejoins back
	// to full size. Both zero outside elastic mode.
	Shrinks int
	Regrows int
}

// stepBucketsOps spaces the per-rank step-duration histogram from 1
// to 2048 step-clock ticks (operation counts, not seconds).
var stepBucketsOps = telemetry.ExpBuckets(1, 2, 12)

// recoverable reports whether err is a failure checkpoint-restart can
// mask: an injected crash, a poisoned/drained world, a delivery
// failure after retry exhaustion, or an operation timeout. Anything
// else (config, I/O, model errors) propagates immediately.
func recoverable(err error) bool {
	return errors.Is(err, faultinject.ErrCrashed) ||
		errors.Is(err, transport.ErrRankFailed) ||
		errors.Is(err, transport.ErrDeliveryFailed) ||
		errors.Is(err, transport.ErrTimeout)
}

// augRNG returns the augmentation stream for (seed, rank, epoch). It
// is re-derived at every epoch boundary — never carried across epochs
// — so a run restored from an epoch-E checkpoint consumes exactly the
// randomness the unfailed run would have from epoch E+1 on. Restart
// equivalence depends on this.
func augRNG(seed int64, rank, epoch int) *rand.Rand {
	return rand.New(rand.NewSource(seed*31 + int64(rank) + int64(epoch)*1_000_003))
}

// Run trains and returns per-epoch metrics, transparently recovering
// from up to MaxRestarts recoverable world failures.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.MixedPrecision {
		// Mixed precision is the trainer-level switch; the wire-level
		// half is Horovod's binary16 compressed allreduce.
		cfg.Horovod.FP16Compression = true
	}
	mach := topology.ExactFor(cfg.World)
	trainSet := segdata.New(cfg.TrainSize, cfg.Model.InputSize, cfg.Model.InputSize, cfg.Seed)
	trainSet.Style = cfg.DataStyle
	evalSet := segdata.New(cfg.EvalSize, cfg.Model.InputSize, cfg.Model.InputSize, cfg.Seed+1_000_000)
	evalSet.Style = cfg.DataStyle

	stepsPerEpoch := (len(segdata.ShardIDs(cfg.TrainSize, cfg.World, 0)) + cfg.BatchPerRank - 1) / cfg.BatchPerRank
	totalSteps := stepsPerEpoch * cfg.Epochs
	warmup := int(cfg.WarmupFrac * float64(totalSteps))
	lrWorld := cfg.World
	if !cfg.ScaleLRByWorld {
		lrWorld = 1
	}
	sched := nn.NewPolySchedule(cfg.BaseLR, totalSteps, warmup, lrWorld)

	run := &runState{
		cfg:           cfg,
		mach:          mach,
		trainSet:      trainSet,
		evalSet:       evalSet,
		sched:         sched,
		stepsPerEpoch: stepsPerEpoch,
		history:       make([]EpochStats, cfg.Epochs),
		savedEpoch:    -1,
		doneEpoch:     -1,
		probe:         cfg.Telemetry.NewProbe("train", telemetry.NewStepClock()),
	}
	if cfg.Elastic {
		m, err := transport.NewMembership(cfg.World)
		if err != nil {
			return nil, fmt.Errorf("train: %w", err)
		}
		run.members = m
		run.replicas = make(map[int]*replica)
	}

	restarts := 0
	if cfg.Elastic {
		if err := run.runElastic(); err != nil {
			return nil, fmt.Errorf("train: %w", err)
		}
		restarts = run.shrinks + run.regrows
	} else {
		startEpoch := 0
		for {
			err := run.incarnation(startEpoch, restarts)
			if err == nil {
				break
			}
			if !recoverable(err) || restarts >= cfg.MaxRestarts {
				return nil, fmt.Errorf("train: %w", err)
			}
			restarts++
			run.probe.Counter("recoveries_total").Inc()
			// Leave an instantaneous RECOVERY event in the trace and the
			// flight-recorder ring, so a post-crash dump shows where the
			// pre-crash window ends and the restart begins.
			run.probe.Mark(timeline.PhaseRecovery, fmt.Sprintf("restart%d: %v", restarts, err))
			if run.savedEpoch >= 0 {
				// Roll back to the last epoch rank 0 checkpointed.
				startEpoch = run.savedEpoch + 1
			} else {
				// Failed before the first checkpoint (or none configured):
				// cold restart from scratch, which is just as deterministic.
				startEpoch = 0
			}
		}
	}

	res := &Result{Config: cfg, History: run.history,
		FinalPerClassIOU: run.finalPerClass, FinalFwIOU: run.finalFw,
		Restarts: restarts, Shrinks: run.shrinks, Regrows: run.regrows}
	last := run.history[len(run.history)-1]
	res.FinalMIOU = last.MIOU
	res.FinalAcc = last.PixelAcc
	res.BestEpoch = -1
	for _, e := range run.history {
		if e.MIOU > res.BestMIOU {
			res.BestMIOU = e.MIOU
			res.BestEpoch = e.Epoch
		}
	}
	return res, nil
}

// runState carries everything that survives across incarnations of
// the world: datasets, the schedule, accumulated history, and the
// restore cursor. Rank goroutines of one incarnation are joined
// before the next starts, so the non-atomic fields are safe.
type runState struct {
	cfg           Config
	mach          topology.Machine
	trainSet      *segdata.Dataset
	evalSet       *segdata.Dataset
	sched         nn.PolySchedule
	stepsPerEpoch int

	history       []EpochStats
	finalPerClass []float64
	finalFw       float64

	// savedEpoch is the latest epoch whose full state rank 0 wrote to
	// cfg.CheckpointPath this run (-1 before the first save). It — not
	// the file's own meta — decides the restore point, so a stale file
	// from an earlier run can never be mistaken for progress.
	savedEpoch int

	probe *telemetry.Probe

	// Elastic-mode state (see elastic.go): the membership over the
	// original slots, the long-lived per-slot replicas that carry
	// model/optimiser state across world transitions, the last epoch
	// comm rank 0 fully recorded, and the transition counters.
	members   *transport.Membership
	replicas  map[int]*replica
	doneEpoch int
	shrinks   int
	regrows   int
}

// incarnation builds one world and trains epochs [startEpoch, Epochs).
// inc numbers the incarnation (0 = first attempt) and gates scheduled
// crashes: a crash planned for incarnation k fires only there, so the
// restarted world does not immediately re-die.
func (rs *runState) incarnation(startEpoch, inc int) error {
	cfg := rs.cfg
	w, err := transport.NewWorld(cfg.World)
	if err != nil {
		return err
	}
	// Label the world so message-edge IDs from this incarnation's
	// traffic never pair with edges recorded before a crash-restart.
	w.SetIncarnation(inc)
	if cfg.Chaos != nil {
		cfg.Chaos.Arm(w)
	}
	if cfg.OnWorld != nil {
		cfg.OnWorld(w, inc)
	}
	return w.Run(func(c *transport.Comm) error {
		rank := c.Rank()
		// Per-rank telemetry on a step-counter clock: deterministic,
		// wall-clock-free, merged by the collector after the run.
		obsLane := fmt.Sprintf("rank%d", rank)
		lane := obsLane
		if inc > 0 {
			lane = fmt.Sprintf("rank%d.r%d", rank, inc)
		}
		probe := cfg.Telemetry.NewProbe(lane, telemetry.NewStepClock())
		if probe != nil {
			c.SetProbe(probe)
		}
		var net deeplab.Segmenter
		if cfg.Arch == "fcn" {
			net = deeplab.NewFCN(cfg.Model)
		} else {
			net = deeplab.New(cfg.Model)
		}
		// Every activation and kernel scratch buffer this replica
		// touches comes from one per-rank arena, Reset at each step
		// boundary: after warmup a training step allocates (almost)
		// nothing. Reuse is numerically invisible — pooled buffers are
		// either zeroed or fully overwritten before use — so restart
		// equivalence and the chaos byte-identity goldens are unaffected.
		ws := tensor.NewWorkspace()
		net.SetWorkspace(ws)
		var health *modelhealth.Collector
		if cfg.Health != nil {
			health = cfg.Health.Rank(rank, inc, probe)
			net.SetActivationTap(health)
		}
		params := net.Params()
		rt, err := horovod.NewRuntime(c, rs.mach, cfg.Horovod)
		if err != nil {
			return err
		}

		var opt nn.Optimizer
		if cfg.Optimizer == "lars" {
			opt = nn.NewLARS(rs.sched.LR(0))
		} else {
			opt = nn.NewSGD(rs.sched.LR(0))
		}

		switch {
		case startEpoch > 0:
			// Crash recovery: every rank restores the full state —
			// weights, float64 batch-norm statistics, optimiser
			// velocity — from the last checkpoint. The file is the
			// agreement point; the broadcast below is then a no-op but
			// keeps the restored path on the same collective schedule
			// as a fresh start.
			st := checkpoint.State{Params: params, BNs: net.BatchNorms()}
			if err := checkpoint.LoadStateFile(cfg.CheckpointPath, &st); err != nil {
				return fmt.Errorf("restore: %w", err)
			}
			if st.Meta == nil || st.Meta.Epoch != startEpoch-1 {
				return fmt.Errorf("restore: checkpoint %q is not the epoch-%d snapshot this run wrote", cfg.CheckpointPath, startEpoch-1)
			}
			if st.Velocity != nil {
				if err := opt.ImportState(params, st.Velocity); err != nil {
					return fmt.Errorf("restore: %w", err)
				}
			}
		case cfg.ResumeFrom != "":
			if err := checkpoint.LoadFile(cfg.ResumeFrom, params, net.BatchNorms()); err != nil {
				return fmt.Errorf("resume: %w", err)
			}
		}
		if err := rt.BroadcastParams(params); err != nil {
			return err
		}
		if cfg.SyncBN && cfg.World > 1 {
			for _, bn := range net.BatchNorms() {
				// The sync closure fires mid-forward where no error can
				// be returned; failures park in the runtime's sticky
				// slot and surface at the next step boundary.
				bn.Sync = func(buf []float64) {
					rt.RecordCommErr(rt.AllreduceSumFloat64(buf))
				}
			}
		}

		shard := segdata.ShardIDs(cfg.TrainSize, cfg.World, rank)
		st := &rankStep{
			cfg: cfg, c: c, probe: probe, obsLane: obsLane,
			inc: inc, rank: rank,
			net: net, ws: ws, params: params, rt: rt, opt: opt,
			sched: rs.sched, trainSet: rs.trainSet,
			shard:  shard,
			accum:  cfg.Horovod.AccumPasses(),
			scaler: scalerFor(cfg),
			health: health,
			ids:    make([]int, 0, cfg.BatchPerRank), // reused across steps
			gstep:  startEpoch * rs.stepsPerEpoch,
			x:      tensor.New(cfg.BatchPerRank, 3, rs.trainSet.H, rs.trainSet.W),
			labels: make([]int32,
				cfg.BatchPerRank*rs.trainSet.H*rs.trainSet.W),
		}

		for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
			// Epoch-deterministic shuffle and augmentation stream,
			// distinct per rank, re-derived each epoch (see augRNG).
			// Every rank runs exactly stepsPerEpoch batches (wrapping
			// when its shard is a sample short) so the collectives stay
			// in lockstep.
			perm := rand.New(rand.NewSource(cfg.Seed + int64(epoch)*101 + int64(rank))).Perm(len(shard))
			rng := augRNG(cfg.Seed, rank, epoch)
			epochLoss, batches := 0.0, 0
			for s := 0; s < rs.stepsPerEpoch; s++ {
				loss, err := st.step(s, perm, rng)
				if err != nil {
					return err
				}
				epochLoss += loss
				batches++
			}

			// Global metrics: average loss, merged confusion matrix.
			avgLoss, err := rt.AllreduceScalar(epochLoss / float64(batches))
			if err != nil {
				return err
			}
			conf := evaluate(net, rs.evalSet, cfg.World, rank, ws)
			ws.Reset() // reclaim the last eval batch's activations
			if err := rt.AllreduceCounts(conf.M); err != nil {
				return err
			}
			if rank == 0 {
				rs.history[epoch] = EpochStats{
					Epoch:    epoch,
					Loss:     avgLoss,
					MIOU:     conf.MeanIOU(),
					PixelAcc: conf.PixelAccuracy(),
					LR:       rs.sched.LR(st.gstep - 1),
					World:    cfg.World,
				}
				if cfg.CheckpointPath != "" {
					st := checkpoint.State{
						Params:   params,
						BNs:      net.BatchNorms(),
						Velocity: opt.ExportState(params),
						Meta:     &checkpoint.Meta{Epoch: epoch, Step: st.gstep},
					}
					if err := checkpoint.SaveStateFile(cfg.CheckpointPath, st); err != nil {
						return fmt.Errorf("checkpoint: %w", err)
					}
					rs.savedEpoch = epoch
				}
				if epoch == cfg.Epochs-1 {
					rs.finalPerClass = make([]float64, segdata.NumClasses)
					for k := range rs.finalPerClass {
						if iou, ok := conf.IOU(k); ok {
							rs.finalPerClass[k] = iou
						} else {
							rs.finalPerClass[k] = math.NaN()
						}
					}
					rs.finalFw = conf.FreqWeightedIOU()
				}
			}
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
}

// rankStep bundles one replica's per-incarnation training state so the
// per-step body is a named function rather than the middle of a
// closure: the hotalloc pass walks the call graph from annotated roots,
// and a named root makes the whole step — forward/backward, fused
// allreduce, optimiser update — verifiable as allocation-free in steady
// state. The fields are exactly the locals the old inline loop closed
// over; moving them here changes no operation order, so the
// restart-equivalence and chaos goldens are untouched.
type rankStep struct {
	cfg      Config
	c        *transport.Comm
	probe    *telemetry.Probe
	obsLane  string
	inc      int
	rank     int
	net      deeplab.Segmenter
	ws       *tensor.Workspace
	params   []*nn.Param
	rt       *horovod.Runtime
	opt      nn.Optimizer
	sched    nn.PolySchedule
	trainSet *segdata.Dataset
	shard    []int
	accum    int
	scaler   *lossScaler            // non-nil only under MixedPrecision
	health   *modelhealth.Collector // nil unless Config.Health is set
	ids      []int                  // batch id scratch, reused across steps
	gstep    int                    // global step counter, continuous across incarnations

	// Batch staging, reused across steps like the eval path's buffers:
	// SampleInto fully overwrites the image and clears the labels, so
	// reuse is invisible to the deterministic goldens.
	x      *tensor.Tensor
	labels []int32
}

// step runs one training step for this rank: chaos check, arena reset,
// deterministic batch assembly and augmentation, forward/backward,
// gradient accumulation with fused allreduce and the optimiser update,
// then step accounting. The operation order is pinned by the
// restart-equivalence goldens — do not reorder.
//
//seglint:hotpath per-rank training step: forward/backward, fused allreduce, optimiser update
func (t *rankStep) step(s int, perm []int, rng *rand.Rand) (float64, error) {
	if t.cfg.Chaos.CrashAt(t.rank, t.gstep, t.inc) {
		t.c.Kill()
		return 0, fmt.Errorf("chaos: rank %d crashed at step %d (incarnation %d): %w",
			t.rank, t.gstep, t.inc, faultinject.ErrCrashed)
	}
	stepSpan := t.probe.Span(timeline.PhaseStep, "step")
	// Reclaim last step's activations; their contents are
	// dead once the optimiser update has run.
	t.ws.Reset()
	// Open the health window before the forward so activation taps
	// land in it (nil-safe observer; no effect on the computation).
	t.health.BeginStep(int64(t.gstep))
	// Dropout masks keyed by the global step, not by how
	// many forwards this replica has run — restart-safe.
	t.net.ReseedDropout(int64(t.gstep))
	t.ids = t.ids[:0]
	for k := 0; k < t.cfg.BatchPerRank; k++ {
		t.ids = append(t.ids, t.shard[perm[(s*t.cfg.BatchPerRank+k)%len(t.shard)]]) //seglint:ignore hotalloc id buffer capacity is fixed at BatchPerRank up front and reused every step
	}
	x, labels := t.x, t.labels
	t.trainSet.BatchInto(t.ids, x, labels)
	if t.cfg.Augment {
		// DeepLab's recipe: random scale jitter + crop,
		// then random horizontal flip.
		segdata.RandomScaleCrop(rng, x, labels, 0.75, 1.25)
		if rng.Intn(2) == 1 {
			segdata.FlipHoriz(x, labels)
		}
	}
	fwdBwd := t.probe.Span(timeline.PhaseForward, "loss")
	loss := t.net.Loss(x, labels, segdata.IgnoreLabel, true)
	fwdBwd.End()
	if err := t.rt.CommErr(); err != nil {
		return 0, err // a SyncBN reduction failed mid-forward
	}
	// Gradient accumulation (backward_passes_per_step):
	// communicate and update only every accum-th pass.
	if (s+1)%t.accum == 0 {
		if t.accum > 1 {
			for _, p := range t.params {
				p.G.Scale(1 / float32(t.accum))
			}
		}
		if t.scaler != nil {
			// Mixed precision: scale → binary16 allreduce → skip-or-step
			// (mixedprec.go). The fp32 branch below is untouched so its
			// operation order stays pinned by the goldens.
			if err := t.mpStep(); err != nil {
				return 0, err
			}
		} else {
			if err := t.rt.AllreduceGrads(t.params); err != nil {
				return 0, err
			}
			if t.cfg.GradClip > 0 {
				nn.GlobalGradClip(t.params, t.cfg.GradClip)
			}
			// Health reads the post-allreduce, post-clip gradients —
			// exactly what the optimiser is about to apply.
			t.health.CollectUpdate(t.params, t.sched.LR(t.gstep))
			t.opt.SetLR(t.sched.LR(t.gstep))
			t.opt.Step(t.params)
			nn.ZeroGrads(t.params)
		}
	}
	t.health.EndStep()
	t.gstep++
	t.probe.Counter("train_steps_total").Inc()
	t.probe.Histogram("train_step_ops", stepBucketsOps).Observe(stepSpan.End())
	if t.cfg.StepObs != nil {
		// Incarnation-free lane: restarts continue the same
		// per-rank throughput series.
		t.cfg.StepObs.ObserveStep(t.obsLane, t.gstep-1, t.cfg.BatchPerRank, 0)
	}
	return loss, nil
}

// evaluate runs this rank's slice of the eval set through the model
// in eval mode and returns its partial confusion matrix. The whole
// path is pooled: batch images come raw from the rank's workspace
// (every element overwritten by the renderer), label and prediction
// buffers are reused across batches, and the arena is Reset between
// batches — so steady-state evaluation, like the training step,
// allocates (almost) nothing. Reuse is numerically invisible: scene
// rendering is a pure function of (seed, id) and argmax fully
// overwrites its output, which keeps the restart-equivalence and
// chaos goldens bit-identical to the heap path.
func evaluate(net deeplab.Segmenter, evalSet *segdata.Dataset, world, rank int, ws *tensor.Workspace) *metrics.Confusion {
	conf := metrics.NewConfusion(segdata.NumClasses)
	ids := segdata.ShardIDs(evalSet.Len(), world, rank)
	const evalBatch = 4
	hw := evalSet.H * evalSet.W
	labels := make([]int32, evalBatch*hw)
	pred := make([]int32, evalBatch*hw)
	for lo := 0; lo < len(ids); lo += evalBatch {
		hi := min(lo+evalBatch, len(ids))
		n := hi - lo
		// Reclaim the previous batch's activations; conf.Update has
		// already consumed everything derived from them.
		ws.Reset()
		x := ws.GetRaw(n, 3, evalSet.H, evalSet.W)
		evalSet.BatchInto(ids[lo:hi], x, labels[:n*hw])
		p := net.PredictInto(x, pred[:n*hw])
		conf.Update(labels[:n*hw], p, segdata.IgnoreLabel)
	}
	return conf
}
