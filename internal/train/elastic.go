package train

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"segscale/internal/checkpoint"
	"segscale/internal/deeplab"
	"segscale/internal/horovod"
	"segscale/internal/nn"
	"segscale/internal/segdata"
	"segscale/internal/telemetry"
	"segscale/internal/tensor"
	"segscale/internal/timeline"
	"segscale/internal/transport"
)

// Elastic training: instead of rolling the whole world back to a
// checkpoint when a rank dies, the survivors re-form a smaller world
// in place and keep going. Replicas live in runState across world
// transitions — the weights carry whatever progress the interrupted
// epoch made — and the interrupted epoch restarts on the shrunken
// world with shards, shuffles, and augmentation streams re-keyed by
// the new (comm rank, world size). Determinism rests on the
// collectives being globally synchronizing: after a kill, every
// survivor fails inside the same global step before any state
// divergence can be observed (failed collectives never write back,
// the optimiser only steps after a successful allreduce), so the
// survivor set leaves the incarnation bit-identical across reruns of
// the same seed. Dirty gradients and per-rank batch-norm drift from
// the torn step are erased at resume: gradients are zeroed and
// parameters, batch-norm statistics, and optimiser velocity are
// broadcast bit-exactly from the lowest surviving slot.
//
// This file is a separate code path from incarnation(): the default
// checkpoint-restart path's operation order is pinned by the
// restart-equivalence goldens and must not change.

// errRejoin is the in-band signal every rank returns, in lockstep, at
// the top of cfg.RejoinEpoch when the world is short-handed: the
// driver regrows the membership and starts a new incarnation there.
var errRejoin = errors.New("train: scheduled rejoin")

// replica is one slot's long-lived training state. It survives world
// transitions, which is exactly what distinguishes elastic resume
// from checkpoint restart.
type replica struct {
	net    deeplab.Segmenter
	ws     *tensor.Workspace
	params []*nn.Param
	opt    nn.Optimizer
	gstep  int

	// saved is the in-memory epoch-boundary snapshot — the Horovod
	// elastic state.commit(): a rank kill tears the in-flight step at a
	// scheduling-dependent point (some survivors may have applied the
	// last optimiser update, others not), so live post-crash state is
	// not reproducible. Rolling every survivor back to its last commit
	// before re-forming the world makes the resume a pure function of
	// (seed, crash epoch) again. Purely in memory — nothing is written
	// to or read from disk.
	saved *replicaSnap
}

// replicaSnap holds one committed copy of everything a training step
// mutates: weights, float64 batch-norm statistics, optimiser
// velocity, and the global step cursor.
type replicaSnap struct {
	params [][]float32
	bnMean [][]float64
	bnVar  [][]float64
	vel    [][]float32
	gstep  int
}

// commit snapshots the replica's live state. Called at every epoch
// boundary (after the barrier) and once after the incarnation's
// state sync, so a rollback target always exists.
func (r *replica) commit() {
	if r.saved == nil {
		r.saved = &replicaSnap{}
	}
	s := r.saved
	s.params = copyF32s(s.params, r.params)
	bns := r.net.BatchNorms()
	if len(s.bnMean) != len(bns) {
		s.bnMean = make([][]float64, len(bns))
		s.bnVar = make([][]float64, len(bns))
	}
	for i, bn := range bns {
		s.bnMean[i] = append(s.bnMean[i][:0], bn.RunningMean...)
		s.bnVar[i] = append(s.bnVar[i][:0], bn.RunningVar...)
	}
	s.vel = r.opt.ExportState(r.params)
	s.gstep = r.gstep
}

// rollback restores the last committed state (a no-op before the
// first commit).
func (r *replica) rollback() {
	s := r.saved
	if s == nil {
		return
	}
	for i, p := range r.params {
		copy(p.W.Data, s.params[i])
	}
	for i, bn := range r.net.BatchNorms() {
		copy(bn.RunningMean, s.bnMean[i])
		copy(bn.RunningVar, s.bnVar[i])
	}
	if err := r.opt.ImportState(r.params, s.vel); err != nil {
		// The snapshot was exported from this very optimiser/parameter
		// pair; a shape mismatch is unreachable.
		panic(fmt.Sprintf("train: elastic rollback: %v", err))
	}
	r.gstep = s.gstep
}

// copyF32s copies each parameter's weights into dst, reusing its
// backing arrays across commits.
func copyF32s(dst [][]float32, params []*nn.Param) [][]float32 {
	if len(dst) != len(params) {
		dst = make([][]float32, len(params))
	}
	for i, p := range params {
		dst[i] = append(dst[i][:0], p.W.Data...)
	}
	return dst
}

func (rs *runState) newReplica(gstep int) *replica {
	cfg := rs.cfg
	var net deeplab.Segmenter
	if cfg.Arch == "fcn" {
		net = deeplab.NewFCN(cfg.Model)
	} else {
		net = deeplab.New(cfg.Model)
	}
	ws := tensor.NewWorkspace()
	net.SetWorkspace(ws)
	var opt nn.Optimizer
	if cfg.Optimizer == "lars" {
		opt = nn.NewLARS(rs.sched.LR(0))
	} else {
		opt = nn.NewSGD(rs.sched.LR(0))
	}
	return &replica{net: net, ws: ws, params: net.Params(), opt: opt, gstep: gstep}
}

// runElastic drives elastic incarnations until the run completes:
// recoverable failures shrink the membership (consuming the restart
// budget), a scheduled rejoin regrows it for free, and anything else
// propagates.
func (rs *runState) runElastic() error {
	cfg := rs.cfg
	inc := 0
	for {
		failedSlots, err := rs.elasticIncarnation(rs.doneEpoch+1, inc)
		if err == nil {
			return nil
		}
		if errors.Is(err, errRejoin) {
			revived := rs.members.RestoreAll()
			for _, s := range revived {
				// The revived slot's old replica is stale (frozen at its
				// death point); rebuild it fresh and let the incarnation's
				// state sync bring it up to date.
				delete(rs.replicas, s)
			}
			rs.regrows++
			inc++
			rs.probe.Counter("elastic_regrows_total").Inc()
			rs.probe.Mark(timeline.PhaseRecovery, fmt.Sprintf("regrow%d: +%d slot(s)", rs.regrows, len(revived)))
			continue
		}
		if !recoverable(err) || rs.shrinks >= cfg.MaxRestarts {
			return err
		}
		if len(failedSlots) == 0 || len(failedSlots) >= rs.members.Size() {
			// Nothing to shrink around (an unattributable delivery
			// failure, or no survivors) — elastic recovery cannot help.
			return err
		}
		if rmErr := rs.members.Remove(failedSlots...); rmErr != nil {
			return errors.Join(err, rmErr)
		}
		for _, s := range failedSlots {
			delete(rs.replicas, s)
		}
		rs.shrinks++
		inc++
		rs.probe.Counter("elastic_shrinks_total").Inc()
		rs.probe.Mark(timeline.PhaseRecovery, fmt.Sprintf("shrink%d: -%v → %d rank(s): %v",
			rs.shrinks, failedSlots, rs.members.Size(), err))
	}
}

// elasticIncarnation builds one world over the current membership and
// trains epochs [startEpoch, Epochs). On failure it also reports
// which member slots died, mapped from the transport's failed comm
// ranks, so the driver can shrink around them.
func (rs *runState) elasticIncarnation(startEpoch, inc int) ([]int, error) {
	cfg := rs.cfg
	members := rs.members.Members()
	p := len(members)

	// Deterministic shard rebalance: comm rank i of this incarnation
	// owns the strided shard ShardIDs(TrainSize, p, i), so the epoch's
	// coverage and step count are pure functions of the member count.
	stepsPerEpoch := (len(segdata.ShardIDs(cfg.TrainSize, p, 0)) + cfg.BatchPerRank - 1) / cfg.BatchPerRank

	// Roll every surviving replica back to its last committed epoch
	// boundary: the torn step died at a scheduling-dependent point, and
	// only the committed state is reproducible across reruns.
	for _, s := range members {
		if rep, ok := rs.replicas[s]; ok {
			rep.rollback()
		}
	}
	// The sync root is the lowest comm rank whose replica predates
	// this incarnation — a survivor carrying real state. Resolved
	// before the missing replicas are rebuilt (afterwards every slot
	// has one). On the very first incarnation every slot is fresh and
	// root 0 is fine: the broadcast just makes the freshly initialized
	// replicas identical in value. gstep carries over from the same
	// survivor — after rollback, every survivor holds the same value.
	root, refGstep := 0, 0
	for i, s := range members {
		if rep, ok := rs.replicas[s]; ok {
			root, refGstep = i, rep.gstep
			break
		}
	}
	for _, s := range members {
		if _, ok := rs.replicas[s]; !ok {
			rs.replicas[s] = rs.newReplica(refGstep)
		}
	}

	w, err := transport.NewWorld(p)
	if err != nil {
		return nil, err
	}
	w.SetIncarnation(inc)
	if cfg.Chaos != nil {
		cfg.Chaos.Arm(w)
	}
	if cfg.OnWorld != nil {
		cfg.OnWorld(w, inc)
	}
	runErr := w.Run(func(c *transport.Comm) error {
		rank := c.Rank()
		slot := members[rank]
		rep := rs.replicas[slot]
		// Lanes are keyed by machine slot, not comm rank, so a slot's
		// series stays its own as the world changes shape around it.
		obsLane := fmt.Sprintf("rank%d", slot)
		lane := obsLane
		if inc > 0 {
			lane = fmt.Sprintf("rank%d.r%d", slot, inc)
		}
		probe := cfg.Telemetry.NewProbe(lane, telemetry.NewStepClock())
		if probe != nil {
			c.SetProbe(probe)
		}
		rt, err := horovod.NewElasticRuntime(c, rs.mach, members, cfg.Horovod)
		if err != nil {
			return err
		}

		// State sync: every elastic incarnation starts by making all
		// replicas bit-identical to the sync root's — parameters,
		// float64 batch-norm statistics, optimiser velocity — and by
		// zeroing gradients (the torn step may have left them partially
		// averaged). Uniform across incarnations, so the wire schedule
		// never depends on why the world was rebuilt.
		nn.ZeroGrads(rep.params)
		if err := rt.BroadcastParamsFrom(root, rep.params); err != nil {
			return err
		}
		for _, bn := range rep.net.BatchNorms() {
			if err := rt.BroadcastFloat64ExactFrom(root, bn.RunningMean); err != nil {
				return err
			}
			if err := rt.BroadcastFloat64ExactFrom(root, bn.RunningVar); err != nil {
				return err
			}
		}
		vel := rep.opt.ExportState(rep.params)
		for _, v := range vel {
			if err := rt.BroadcastFrom(root, v); err != nil {
				return err
			}
		}
		if err := rep.opt.ImportState(rep.params, vel); err != nil {
			return err
		}
		// First commit of the incarnation: the freshly synced state is
		// the rollback target should this incarnation die before its
		// first epoch boundary.
		rep.commit()

		if cfg.SyncBN && p > 1 {
			for _, bn := range rep.net.BatchNorms() {
				bn.Sync = func(buf []float64) {
					rt.RecordCommErr(rt.AllreduceSumFloat64(buf))
				}
			}
		} else {
			for _, bn := range rep.net.BatchNorms() {
				bn.Sync = nil
			}
		}

		shard := segdata.ShardIDs(cfg.TrainSize, p, rank)
		st := &rankStep{
			cfg: cfg, c: c, probe: probe, obsLane: obsLane,
			inc: inc, rank: slot,
			net: rep.net, ws: rep.ws, params: rep.params, rt: rt, opt: rep.opt,
			sched: rs.sched, trainSet: rs.trainSet,
			shard:  shard,
			accum:  cfg.Horovod.AccumPasses(),
			scaler: scalerFor(cfg),
			ids:    make([]int, 0, cfg.BatchPerRank),
			gstep:  rep.gstep,
			x:      tensor.New(cfg.BatchPerRank, 3, rs.trainSet.H, rs.trainSet.W),
			labels: make([]int32,
				cfg.BatchPerRank*rs.trainSet.H*rs.trainSet.W),
		}
		defer func() { rep.gstep = st.gstep }()

		for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
			if cfg.RejoinEpoch > 0 && epoch == cfg.RejoinEpoch && !rs.members.Full() {
				// Same deterministic condition on every rank, evaluated at
				// an epoch boundary where no collective is in flight: all
				// ranks leave together and the driver regrows the world.
				return errRejoin
			}
			// Shuffle and augmentation streams are re-keyed by the comm
			// rank and re-derived per epoch, exactly like the fixed-world
			// path — the shrunken run is a pure function of (seed,
			// membership, epoch).
			perm := rand.New(rand.NewSource(cfg.Seed + int64(epoch)*101 + int64(rank))).Perm(len(shard))
			rng := augRNG(cfg.Seed, rank, epoch)
			epochLoss, batches := 0.0, 0
			for s := 0; s < stepsPerEpoch; s++ {
				loss, err := st.step(s, perm, rng)
				if err != nil {
					return err
				}
				epochLoss += loss
				batches++
			}

			avgLoss, err := rt.AllreduceScalar(epochLoss / float64(batches))
			if err != nil {
				return err
			}
			conf := evaluate(rep.net, rs.evalSet, p, rank, rep.ws)
			rep.ws.Reset()
			if err := rt.AllreduceCounts(conf.M); err != nil {
				return err
			}
			if rank == 0 {
				rs.history[epoch] = EpochStats{
					Epoch:    epoch,
					Loss:     avgLoss,
					MIOU:     conf.MeanIOU(),
					PixelAcc: conf.PixelAccuracy(),
					LR:       rs.sched.LR(st.gstep - 1),
					World:    p,
				}
				if cfg.CheckpointPath != "" {
					ck := checkpoint.State{
						Params:   rep.params,
						BNs:      rep.net.BatchNorms(),
						Velocity: rep.opt.ExportState(rep.params),
						Meta:     &checkpoint.Meta{Epoch: epoch, Step: st.gstep},
					}
					if err := checkpoint.SaveStateFile(cfg.CheckpointPath, ck); err != nil {
						return fmt.Errorf("checkpoint: %w", err)
					}
					rs.savedEpoch = epoch
				}
				if epoch == cfg.Epochs-1 {
					rs.finalPerClass = make([]float64, segdata.NumClasses)
					for k := range rs.finalPerClass {
						if iou, ok := conf.IOU(k); ok {
							rs.finalPerClass[k] = iou
						} else {
							rs.finalPerClass[k] = math.NaN()
						}
					}
					rs.finalFw = conf.FreqWeightedIOU()
				}
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			// Every rank is past the barrier: the epoch's state is final
			// on all of them. Commit it as the rollback target, and let
			// rank 0 mark the epoch recorded — a failure after this
			// point restarts the NEXT epoch.
			rep.gstep = st.gstep
			rep.commit()
			if rank == 0 {
				rs.doneEpoch = epoch
			}
		}
		return nil
	})
	if runErr == nil {
		return nil, nil
	}
	// Map the transport's failed comm ranks back to member slots.
	failed := w.FailedRanks()
	slots := make([]int, 0, len(failed))
	for _, r := range failed {
		if r >= 0 && r < len(members) {
			slots = append(slots, members[r])
		}
	}
	return slots, runErr
}
