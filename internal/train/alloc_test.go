package train

import (
	"runtime"
	"testing"

	"segscale/internal/deeplab"
	"segscale/internal/nn"
	"segscale/internal/segdata"
	"segscale/internal/tensor"
)

// trainStepAllocs measures steady-state heap allocations of one full
// single-rank training step (dropout reseed, forward, loss, backward,
// optimiser update, gradient zeroing) at GOMAXPROCS=1. useWS selects
// the pooled-workspace path; false is the plain-heap baseline the
// arena is judged against.
func trainStepAllocs(t *testing.T, useWS bool) float64 {
	t.Helper()
	cfg := deeplab.DefaultConfig()
	net := deeplab.New(cfg)
	var ws *tensor.Workspace
	if useWS {
		ws = tensor.NewWorkspace()
		net.SetWorkspace(ws)
	}
	params := net.Params()
	opt := nn.NewSGD(0.05)
	ds := segdata.New(4, cfg.InputSize, cfg.InputSize, 7)
	x, labels := ds.Batch([]int{0, 1})

	step := func() {
		if ws != nil {
			ws.Reset()
		}
		net.ReseedDropout(3)
		net.Loss(x, labels, segdata.IgnoreLabel, true)
		opt.Step(params)
		nn.ZeroGrads(params)
	}

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	// Warm the arena (and the optimiser's velocity buffers) so the
	// measurement sees the steady state, not first-touch growth.
	step()
	step()
	return testing.AllocsPerRun(3, step)
}

// TestTrainStepAllocBudget pins the steady-state allocation count of a
// full training step with the workspace threaded through. The residue
// is bounded and intentional: Parallel-closure headers at tensor-op
// call sites, the loss's tiny float64 reduction buffers, and
// SplitChannels' slice-of-headers — each a handful of words, none
// proportional to activation size (dropout now reseeds its generator
// in place, so it no longer contributes). The budget
// has slack over the measured count (16 on go1.24) purely so toolchain
// codegen drift does not flake the test; a leaked activation blows
// straight past it.
func TestTrainStepAllocBudget(t *testing.T) {
	got := trainStepAllocs(t, true)
	t.Logf("allocs/step with workspace: %.0f", got)
	const budget = 60
	if got > budget {
		t.Fatalf("steady-state train step allocates %.0f times, budget %d", got, budget)
	}
}

// TestTrainStepAllocReduction locks in the headline claim: the pooled
// workspace eliminates at least 90%% of the heap-baseline's per-step
// allocations.
func TestTrainStepAllocReduction(t *testing.T) {
	heap := trainStepAllocs(t, false)
	pooled := trainStepAllocs(t, true)
	t.Logf("allocs/step: heap=%.0f pooled=%.0f (%.1f%% reduction)",
		heap, pooled, 100*(1-pooled/heap))
	if pooled > 0.1*heap {
		t.Fatalf("pooled step allocates %.0f of heap baseline %.0f — under 90%% reduction", pooled, heap)
	}
}
