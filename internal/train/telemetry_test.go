package train

import (
	"math"
	"reflect"
	"testing"

	"segscale/internal/telemetry"
	"segscale/internal/timeline"
)

// TestTelemetryDoesNotChangeResults is the no-op-path contract: a run
// with a collector attached must produce numerically identical
// training results to a run without one — instrumentation may only
// observe, never perturb.
func TestTelemetryDoesNotChangeResults(t *testing.T) {
	cfg := fastCfg()
	cfg.World = 2
	cfg.Epochs = 2

	bare, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	instrumented := cfg
	instrumented.Telemetry = telemetry.NewCollector()
	traced, err := Run(instrumented)
	if err != nil {
		t.Fatal(err)
	}

	// Config differs by the collector pointer itself, and
	// FinalPerClassIOU holds NaN for absent classes (NaN != NaN under
	// DeepEqual); compare those separately, everything else
	// byte-for-byte.
	a, b := *bare, *traced
	a.Config.Telemetry = nil
	b.Config.Telemetry = nil
	if len(a.FinalPerClassIOU) != len(b.FinalPerClassIOU) {
		t.Fatalf("per-class IOU lengths differ: %d vs %d",
			len(a.FinalPerClassIOU), len(b.FinalPerClassIOU))
	}
	for k := range a.FinalPerClassIOU {
		x, y := a.FinalPerClassIOU[k], b.FinalPerClassIOU[k]
		if x != y && !(math.IsNaN(x) && math.IsNaN(y)) {
			t.Errorf("class %d IOU differs: %g vs %g", k, x, y)
		}
	}
	a.FinalPerClassIOU, b.FinalPerClassIOU = nil, nil
	if !reflect.DeepEqual(a, b) {
		t.Errorf("telemetry changed the training result:\nbare:   %+v\ntraced: %+v", a, b)
	}
}

// TestTelemetryCapturesTraining checks the instrumented run actually
// recorded what it promises: one lane per rank, step spans, and the
// core counters.
func TestTelemetryCapturesTraining(t *testing.T) {
	cfg := fastCfg()
	cfg.World = 2
	cfg.Epochs = 2
	cfg.Telemetry = telemetry.NewCollector()
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}

	// One lane per rank plus the run-level "train" lane that counts
	// recoveries.
	probes := cfg.Telemetry.Probes()
	if len(probes) != cfg.World+1 {
		t.Fatalf("probes = %d, want %d", len(probes), cfg.World+1)
	}

	steps := map[string]int{}
	for _, sp := range cfg.Telemetry.Spans() {
		if sp.Phase == timeline.PhaseStep {
			steps[sp.Lane]++
		}
	}
	wantSteps := cfg.Epochs * (cfg.TrainSize / (cfg.World * cfg.BatchPerRank))
	for _, lane := range []string{"rank0", "rank1"} {
		if steps[lane] != wantSteps {
			t.Errorf("lane %s recorded %d step spans, want %d", lane, steps[lane], wantSteps)
		}
	}

	var sawSteps, sawSends bool
	for _, m := range cfg.Telemetry.Gather() {
		switch m.Name {
		case "train_steps_total":
			sawSteps = true
			if want := float64(cfg.World * wantSteps); m.Value != want {
				t.Errorf("train_steps_total = %g, want %g", m.Value, want)
			}
		case "transport_sends_total":
			sawSends = true
			if m.Value <= 0 {
				t.Errorf("transport_sends_total = %g, want > 0", m.Value)
			}
		}
	}
	if !sawSteps || !sawSends {
		t.Errorf("missing expected metrics (steps=%v sends=%v)", sawSteps, sawSends)
	}
}
