package train

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"segscale/internal/nn"
	"segscale/internal/tensor"
)

// mpCfg is the shared mixed-precision configuration: two ranks so the
// binary16 allreduce actually runs, otherwise fastCfg-sized.
func mpCfg() Config {
	cfg := fastCfg()
	cfg.World = 2
	cfg.MixedPrecision = true
	return cfg
}

// The mIOU-proxy convergence test the issue requires: under the real
// binary16 wire with dynamic loss scaling, training must still
// converge — loss drops, mIOU improves — and must land close to the
// fp32 run of the same configuration.
func TestMixedPrecisionConverges(t *testing.T) {
	cfg := mpCfg()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.History[0], res.History[len(res.History)-1]
	if math.IsNaN(last.Loss) {
		t.Fatal("mixed-precision training diverged")
	}
	if !(last.Loss < first.Loss*0.8) {
		t.Fatalf("loss did not drop under fp16: %.4f → %.4f", first.Loss, last.Loss)
	}
	if !(res.FinalMIOU > first.MIOU) {
		t.Fatalf("mIOU did not improve under fp16: %.4f → %.4f", first.MIOU, res.FinalMIOU)
	}

	fp32 := cfg
	fp32.MixedPrecision = false
	ref, err := Run(fp32)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FinalMIOU-ref.FinalMIOU) > 0.15 {
		t.Fatalf("fp16/fp32 accuracy gap too large: %.3f vs %.3f", res.FinalMIOU, ref.FinalMIOU)
	}
}

// renderHistory is the fp16 transcript serialization, matching the
// restart-equivalence golden's format.
func renderHistory(res *Result) string {
	got := ""
	for _, e := range res.History {
		got += fmt.Sprintf("epoch %d loss %.9g miou %.9g acc %.9g lr %.9g\n",
			e.Epoch, e.Loss, e.MIOU, e.PixelAcc, e.LR)
	}
	got += fmt.Sprintf("final miou %.9g acc %.9g fwiou %.9g\n",
		res.FinalMIOU, res.FinalAcc, res.FinalFwIOU)
	return got
}

// The compressed path gets its own committed transcript golden
// (testdata/fp16_transcript.golden, regenerate with
// `go test ./internal/train/ -run TestMixedPrecisionTranscript -update`):
// a same-seed fp16 run is fully deterministic, so any drift in the
// wire format, the loss scaler, or the encode/decode rounding fails
// here — without disturbing the fp32 goldens, which stay bit-exact.
func TestMixedPrecisionTranscriptGolden(t *testing.T) {
	res, err := Run(mpCfg())
	if err != nil {
		t.Fatal(err)
	}
	got := renderHistory(res)

	goldenPath := filepath.Join("testdata", "fp16_transcript.golden")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("fp16 run drifted from golden (regenerate with -update if intended):\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// Two same-seed mixed-precision runs must agree exactly — the
// compressed wire is deterministic end to end.
func TestMixedPrecisionRerunIdentical(t *testing.T) {
	a, err := Run(mpCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mpCfg())
	if err != nil {
		t.Fatal(err)
	}
	for e := range a.History {
		if a.History[e] != b.History[e] {
			t.Fatalf("epoch %d differs across reruns:\n%+v\n%+v", e, a.History[e], b.History[e])
		}
	}
	if a.FinalMIOU != b.FinalMIOU || a.FinalFwIOU != b.FinalFwIOU {
		t.Fatal("final metrics differ across reruns")
	}
}

func TestMixedPrecisionConfigValidation(t *testing.T) {
	cfg := fastCfg()
	cfg.LossScale = 512 // without MixedPrecision
	if _, err := Run(cfg); err == nil {
		t.Error("LossScale without MixedPrecision accepted")
	}
	cfg = mpCfg()
	cfg.LossScale = 1000 // not a power of two
	if _, err := Run(cfg); err == nil {
		t.Error("non-power-of-two loss scale accepted")
	}
	cfg = mpCfg()
	cfg.LossScale = -2
	if _, err := Run(cfg); err == nil {
		t.Error("negative loss scale accepted")
	}
}

func TestValidLossScale(t *testing.T) {
	for _, ok := range []float64{0, 1, 2, 1024, 0.5, 1 << 15} {
		if !validLossScale(ok) {
			t.Errorf("validLossScale(%g) = false", ok)
		}
	}
	for _, bad := range []float64{-1, 3, 1000, math.Inf(1), math.NaN()} {
		if validLossScale(bad) {
			t.Errorf("validLossScale(%g) = true", bad)
		}
	}
}

// The scaler state machine: overflow halves (floored at 1) and resets
// the growth counter; a growthInterval-long run of good steps doubles
// the scale up to the cap.
func TestLossScalerStateMachine(t *testing.T) {
	ls := newLossScaler(0)
	if ls.scale != defaultLossScale {
		t.Fatalf("default scale %g", ls.scale)
	}
	ls.backoff()
	if ls.scale != defaultLossScale/2 || ls.good != 0 {
		t.Fatalf("after backoff: scale %g good %d", ls.scale, ls.good)
	}
	for i := 0; i < ls.growthInterval; i++ {
		ls.stepped()
	}
	if ls.scale != defaultLossScale {
		t.Fatalf("after %d good steps: scale %g, want regrow to %d", ls.growthInterval, ls.scale, defaultLossScale)
	}
	// The cap holds.
	ls.scale = ls.maxScale
	for i := 0; i < ls.growthInterval; i++ {
		ls.stepped()
	}
	if ls.scale != ls.maxScale {
		t.Fatalf("scale %g exceeded cap %g", ls.scale, ls.maxScale)
	}
	// The floor holds.
	ls.scale = 1
	ls.backoff()
	if ls.scale != 1 {
		t.Fatalf("scale %g fell below 1", ls.scale)
	}
}

func TestGradOverflowAndScaling(t *testing.T) {
	mk := func(vals ...float32) []*nn.Param {
		g := tensor.New(len(vals))
		copy(g.Data, vals)
		return []*nn.Param{{Name: "p", W: tensor.New(len(vals)), G: g}}
	}
	if gradOverflow(mk(1, -2, 0.5)) {
		t.Error("finite gradients reported as overflow")
	}
	if !gradOverflow(mk(1, float32(math.Inf(1)))) {
		t.Error("Inf not detected")
	}
	if !gradOverflow(mk(float32(math.NaN()))) {
		t.Error("NaN not detected")
	}

	ps := mk(1, -0.25, 3)
	ls := newLossScaler(8)
	ls.apply(ps)
	want := []float32{8, -2, 24}
	for i, v := range ps[0].G.Data {
		if v != want[i] {
			t.Fatalf("apply: grad[%d] = %g, want %g", i, v, want[i])
		}
	}
	ls.unapply(ps)
	back := []float32{1, -0.25, 3}
	for i, v := range ps[0].G.Data {
		if v != back[i] {
			t.Fatalf("unapply: grad[%d] = %g, want %g (power-of-two scaling must be exact)", i, v, back[i])
		}
	}
}
