package train

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"segscale/internal/faultinject"
)

// elasticCfg is the shared configuration for the elastic tests: four
// ranks, six epochs of six single-image steps each (24 images / 4
// ranks / batch 1), no checkpointing — elastic recovery must never
// need it.
func elasticCfg() Config {
	cfg := fastCfg()
	cfg.World = 4
	cfg.BatchPerRank = 1
	cfg.Epochs = 6
	cfg.Elastic = true
	cfg.MaxRestarts = 2
	return cfg
}

// crashPlan is the ISSUE's crash=3@20 scenario: rank 3 dies at global
// step 20 — two steps into epoch 3 — on the first incarnation only.
func crashPlan() *faultinject.Plan {
	return &faultinject.Plan{
		Crashes: []faultinject.Crash{{Rank: 3, Step: 20, Incarnation: 0}},
	}
}

// renderElastic is the golden serialization: per-epoch metrics with
// the world-size column that makes shrink and regrow transitions
// visible, then the transition counters.
func renderElastic(r *Result) string {
	out := ""
	for _, e := range r.History {
		out += fmt.Sprintf("epoch %d world %d loss %.9g miou %.9g acc %.9g lr %.9g\n",
			e.Epoch, e.World, e.Loss, e.MIOU, e.PixelAcc, e.LR)
	}
	out += fmt.Sprintf("shrinks %d regrows %d final_miou %.9g final_fwiou %.9g\n",
		r.Shrinks, r.Regrows, r.FinalMIOU, r.FinalFwIOU)
	return out
}

func checkElasticGolden(t *testing.T, name, got string) {
	t.Helper()
	goldenPath := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("elastic run drifted from golden %s (regenerate with -update if intended):\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// TestElasticShrinkByteIdentical is satellite invariant #1: a rank
// crash mid-training shrinks the world in place — survivors re-form a
// three-rank world, shards rebalance, and the run finishes without a
// checkpoint ever being written or read — and the surviving-ranks run
// is byte-identical across reruns of the same seed. The transcript is
// additionally pinned to a committed golden
// (testdata/elastic_shrink.golden, regenerate with
// `go test ./internal/train/ -run TestElasticShrink -update`).
func TestElasticShrinkByteIdentical(t *testing.T) {
	runOnce := func() *Result {
		cfg := elasticCfg()
		cfg.Chaos = crashPlan()
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := runOnce()
	if a.Shrinks != 1 || a.Regrows != 0 {
		t.Fatalf("shrinks=%d regrows=%d, want 1/0", a.Shrinks, a.Regrows)
	}
	for e, st := range a.History {
		wantWorld := 4
		if e >= 3 { // the crash lands two steps into epoch 3
			wantWorld = 3
		}
		if st.World != wantWorld {
			t.Errorf("epoch %d ran on %d ranks, want %d", e, st.World, wantWorld)
		}
		if st.Epoch != e {
			t.Errorf("epoch %d missing from history (stats: %+v)", e, st)
		}
	}

	b := runOnce()
	for e := range a.History {
		if a.History[e] != b.History[e] {
			t.Errorf("epoch %d not byte-identical across same-seed reruns:\nfirst:  %+v\nsecond: %+v",
				e, a.History[e], b.History[e])
		}
	}
	if a.FinalMIOU != b.FinalMIOU || a.FinalFwIOU != b.FinalFwIOU {
		t.Errorf("final metrics diverged across reruns: %v/%v vs %v/%v",
			a.FinalMIOU, a.FinalFwIOU, b.FinalMIOU, b.FinalFwIOU)
	}

	checkElasticGolden(t, "elastic_shrink.golden", renderElastic(a))
}

// TestElasticRegrowGolden extends the shrink scenario with a
// scheduled rejoin: the world shrinks 4→3 at epoch 3 and regrows 3→4
// at epoch 5, where the rejoined slot is rebuilt and state-synced
// from a survivor. The transition transcript gets its own golden next
// to the restart-equivalence one, and reruns stay byte-identical.
func TestElasticRegrowGolden(t *testing.T) {
	runOnce := func() *Result {
		cfg := elasticCfg()
		cfg.Chaos = crashPlan()
		cfg.RejoinEpoch = 5
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := runOnce()
	if a.Shrinks != 1 || a.Regrows != 1 {
		t.Fatalf("shrinks=%d regrows=%d, want 1/1", a.Shrinks, a.Regrows)
	}
	wantWorlds := []int{4, 4, 4, 3, 3, 4}
	for e, st := range a.History {
		if st.World != wantWorlds[e] {
			t.Errorf("epoch %d ran on %d ranks, want %d", e, st.World, wantWorlds[e])
		}
	}

	b := runOnce()
	for e := range a.History {
		if a.History[e] != b.History[e] {
			t.Errorf("epoch %d not byte-identical across same-seed reruns:\nfirst:  %+v\nsecond: %+v",
				e, a.History[e], b.History[e])
		}
	}

	checkElasticGolden(t, "elastic_regrow.golden", renderElastic(a))
}

// TestElasticUnfailedMatchesFixedWorld: with no chaos armed, the
// elastic code path must reproduce the fixed-world path's history
// exactly — the membership machinery may not perturb an unfailed run.
func TestElasticUnfailedMatchesFixedWorld(t *testing.T) {
	fixed := elasticCfg()
	fixed.Elastic = false
	fixed.MaxRestarts = 0
	rf, err := Run(fixed)
	if err != nil {
		t.Fatal(err)
	}
	elastic := elasticCfg()
	re, err := Run(elastic)
	if err != nil {
		t.Fatal(err)
	}
	if re.Shrinks != 0 || re.Regrows != 0 {
		t.Fatalf("unfailed elastic run reported shrinks=%d regrows=%d", re.Shrinks, re.Regrows)
	}
	for e := range rf.History {
		if rf.History[e] != re.History[e] {
			t.Errorf("epoch %d: elastic diverged from fixed world:\nfixed:   %+v\nelastic: %+v",
				e, rf.History[e], re.History[e])
		}
	}
}

// TestElasticBudgetExhausted: with no shrink budget the crash
// surfaces, still carrying the ErrCrashed sentinel.
func TestElasticBudgetExhausted(t *testing.T) {
	cfg := elasticCfg()
	cfg.Chaos = crashPlan()
	cfg.MaxRestarts = 0
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("crash with no shrink budget did not fail")
	}
	if !errors.Is(err, faultinject.ErrCrashed) {
		t.Fatalf("error lost the crash sentinel: %v", err)
	}
}

// TestElasticValidation covers the new config knobs.
func TestElasticValidation(t *testing.T) {
	cfg := fastCfg()
	cfg.RejoinEpoch = 2
	if _, err := Run(cfg); err == nil {
		t.Error("RejoinEpoch without Elastic accepted")
	}
	cfg = fastCfg()
	cfg.Elastic = true
	cfg.RejoinEpoch = cfg.Epochs
	if _, err := Run(cfg); err == nil {
		t.Error("RejoinEpoch beyond the run accepted")
	}
	cfg = fastCfg()
	cfg.Elastic = true
	cfg.ResumeFrom = "nope.segc"
	if _, err := Run(cfg); err == nil {
		t.Error("Elastic with ResumeFrom accepted")
	}
}
