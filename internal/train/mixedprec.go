package train

import (
	"math"

	"segscale/internal/nn"
)

// Dynamic loss scaling for mixed-precision training. The replica's
// master weights, activations, and optimiser state all stay float32 —
// only the allreduce wire is binary16 (Config.MixedPrecision forces
// Horovod's FP16Compression on). What the scaler protects is that
// wire: late-training gradients sit well below binary16's smallest
// normal (2⁻¹⁴), so encoding them unscaled flushes the signal to
// zero. Multiplying every gradient by a power-of-two scale before the
// allreduce and dividing it back out afterwards keeps the payload in
// binary16's dynamic range without changing any mantissa bit — a
// power-of-two scale is exact in both formats.
//
// The schedule is the standard one: on overflow (any Inf/NaN in the
// reduced gradients — identical on every rank, since all ranks decode
// the same reduced bytes) the step is skipped and the scale halves;
// after growthInterval consecutive good steps the scale doubles,
// probing back toward the largest safe value.

// phaseAMP labels loss-scale transition marks in the flight recorder.
const phaseAMP = "AMP"

// defaultLossScale is the initial scale when Config.LossScale is zero:
// large enough to lift 1e-7-magnitude gradients into binary16 range,
// small enough that unit-scale gradients stay far from overflow.
const defaultLossScale = 1 << 10

// lossScaler holds one replica's dynamic loss-scaling state. Every
// rank steps its scaler on the same (shared) verdict each step, so the
// states never diverge across ranks.
type lossScaler struct {
	scale          float64
	good           int // consecutive overflow-free steps at this scale
	growthInterval int
	maxScale       float64
}

func newLossScaler(initial float64) *lossScaler {
	if initial == 0 {
		initial = defaultLossScale
	}
	return &lossScaler{scale: initial, growthInterval: 50, maxScale: 1 << 15}
}

// validLossScale reports whether s is usable as an initial scale:
// zero (use the default) or a positive power of two — anything else
// would perturb gradient mantissas and break the fp32/fp16 exactness
// argument above.
func validLossScale(s float64) bool {
	if s == 0 {
		return true
	}
	if s <= 0 || math.IsInf(s, 0) || math.IsNaN(s) {
		return false
	}
	frac, _ := math.Frexp(s)
	return frac == 0.5
}

// apply multiplies every gradient by the current scale — immediately
// before the fused allreduce encodes them to binary16.
func (ls *lossScaler) apply(params []*nn.Param) {
	s := float32(ls.scale)
	for _, p := range params {
		p.G.Scale(s)
	}
}

// unapply divides the scale back out of the (finite) reduced
// gradients, restoring true magnitudes before clipping and the
// optimiser step.
func (ls *lossScaler) unapply(params []*nn.Param) {
	s := float32(1 / ls.scale)
	for _, p := range params {
		p.G.Scale(s)
	}
}

// backoff records an overflow: halve the scale (floor 1) and restart
// the growth counter. Reports whether the scale actually moved, so
// the caller can mark the transition in the flight recorder.
func (ls *lossScaler) backoff() bool {
	ls.good = 0
	if ls.scale <= 1 {
		return false
	}
	ls.scale /= 2
	return true
}

// stepped records an overflow-free step, doubling the scale after
// growthInterval consecutive good steps (capped at maxScale). Reports
// whether the scale regrew on this step.
func (ls *lossScaler) stepped() bool {
	ls.good++
	if ls.good >= ls.growthInterval && ls.scale < ls.maxScale {
		ls.scale *= 2
		ls.good = 0
		return true
	}
	return false
}

// gradOverflow reports whether any gradient holds an Inf or NaN after
// the allreduce. The scan is branch-cheap and allocation-free: a
// float32 is non-finite exactly when its exponent field is all ones.
//
//seglint:hotpath per-step overflow scan over every gradient under mixed precision
func gradOverflow(params []*nn.Param) bool {
	for _, p := range params {
		for _, v := range p.G.Data {
			if math.Float32bits(v)&0x7F800000 == 0x7F800000 {
				return true
			}
		}
	}
	return false
}

// mpStep runs the communicate-and-update half of a training step under
// mixed precision: scale, allreduce over the binary16 wire, then
// either skip (overflow: drop the poisoned gradients, halve the scale)
// or unscale and apply the optimiser update. Returns the loss-scale
// verdict for telemetry.
func (t *rankStep) mpStep() error {
	t.scaler.apply(t.params)
	if err := t.rt.AllreduceGrads(t.params); err != nil {
		return err
	}
	if gradOverflow(t.params) {
		// Every rank sees the same reduced bytes, so every rank skips
		// together — no extra agreement round needed. The backoff is
		// recorded as an instantaneous flight-recorder event so a dump
		// shows *when* the scale moved, not just the gauge's end state.
		if t.scaler.backoff() {
			t.probe.Mark(phaseAMP, "loss_scale_backoff")
		}
		t.probe.Counter("amp_overflow_steps_total").Inc()
		nn.ZeroGrads(t.params)
	} else {
		t.scaler.unapply(t.params)
		if t.scaler.stepped() {
			t.probe.Mark(phaseAMP, "loss_scale_regrow")
		}
		if t.cfg.GradClip > 0 {
			nn.GlobalGradClip(t.params, t.cfg.GradClip)
		}
		// Health sees only applied updates: overflow steps carry
		// deliberately-poisoned scaled gradients that are dropped above
		// and must not trip the non-finite sentinel.
		t.health.CollectUpdate(t.params, t.sched.LR(t.gstep))
		t.opt.SetLR(t.sched.LR(t.gstep))
		t.opt.Step(t.params)
		nn.ZeroGrads(t.params)
	}
	t.probe.Gauge("amp_loss_scale_ratio").Set(t.scaler.scale)
	return nil
}

// scalerFor returns a fresh loss scaler for one incarnation when the
// run is mixed-precision, nil otherwise. Scaler state is derived (it
// re-converges from the same schedule), so it is deliberately not
// checkpointed; a restarted incarnation restarts the growth counter.
func scalerFor(cfg Config) *lossScaler {
	if !cfg.MixedPrecision {
		return nil
	}
	return newLossScaler(cfg.LossScale)
}
