package perfsim

import (
	"testing"

	"segscale/internal/horovod"
	"segscale/internal/model"
	"segscale/internal/mpiprofile"
	"segscale/internal/netmodel"
)

// algConfig is the 176-node sweep configuration with an explicit
// allreduce algorithm — the paper's machine extended 8× past its
// 132-GPU ceiling.
func algConfig(gpus int, alg netmodel.Algorithm) Config {
	hvd := horovod.Default()
	hvd.Algorithm = alg
	return Config{GPUs: gpus, Model: model.DLv3Plus(), MPI: mpiprofile.MV2GDR(), Horovod: hvd, Seed: 1}
}

// TestHierBeatsFlatRingAt1056 is the tentpole acceptance criterion:
// at 1056 ranks (176 nodes × 6 GPUs) the topology-aware two-level
// allreduce must report strictly better scaling efficiency than the
// flat ring. The flat ring pays (p−1) latency terms over the slow IB
// hops; the two-level composition keeps the long-latency level down
// to the node count.
func TestHierBeatsFlatRingAt1056(t *testing.T) {
	base := run(t, algConfig(1, netmodel.AlgAuto))
	ring := run(t, algConfig(1056, netmodel.AlgRing))
	hier := run(t, algConfig(1056, netmodel.AlgHierTwoLevel))
	effRing := ring.EfficiencyVs(base)
	effHier := hier.EfficiencyVs(base)
	if effHier <= effRing {
		t.Fatalf("hier-2level efficiency %.4f not strictly better than flat ring %.4f at 1056 ranks",
			effHier, effRing)
	}
	t.Logf("1056 ranks: ring eff %.4f (%.1f img/s), hier-2level eff %.4f (%.1f img/s)",
		effRing, ring.ImgPerSec, effHier, hier.ImgPerSec)
}

// TestHierSweepPast132 extends the paper's scaling sweep past its
// 132-GPU ceiling: hierarchical throughput keeps increasing through
// 264, 528, and 1056 ranks, and at every multi-node scale in the
// sweep the two-level allreduce is at least as fast as the flat ring.
func TestHierSweepPast132(t *testing.T) {
	prev := 0.0
	for _, g := range []int{132, 264, 528, 1056} {
		hier := run(t, algConfig(g, netmodel.AlgHierTwoLevel))
		ring := run(t, algConfig(g, netmodel.AlgRing))
		if hier.ImgPerSec <= prev {
			t.Fatalf("hier-2level throughput not increasing at %d GPUs: %.1f <= %.1f",
				g, hier.ImgPerSec, prev)
		}
		prev = hier.ImgPerSec
		if hier.ImgPerSec < ring.ImgPerSec {
			t.Fatalf("hier-2level slower than flat ring at %d GPUs: %.1f < %.1f img/s",
				g, hier.ImgPerSec, ring.ImgPerSec)
		}
	}
}

// TestHier1056Deterministic: the 1056-rank simulation is a pure
// function of the seed — the property every golden and A/B gate in
// this package leans on, checked at the sweep's largest scale.
func TestHier1056Deterministic(t *testing.T) {
	a := run(t, algConfig(1056, netmodel.AlgHierTwoLevel))
	b := run(t, algConfig(1056, netmodel.AlgHierTwoLevel))
	if a.ImgPerSec != b.ImgPerSec || a.AvgStepSec != b.AvgStepSec {
		t.Fatal("same seed produced different 1056-rank results")
	}
}
