package perfsim

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"segscale/internal/faultinject"
	"segscale/internal/horovod"
	"segscale/internal/model"
	"segscale/internal/mpiprofile"
	"segscale/internal/traceanalysis"
)

// -update-attribution regenerates the committed golden ledger. Run
// after an intentional model change:
//
//	go test ./internal/perfsim -run TestAttributionGolden -update-attribution
var updateAttribution = flag.Bool("update-attribution", false, "rewrite testdata/attribution_golden.json")

// goldenConfig is the pinned run behind the attribution golden: small
// enough to be fast, multi-rank and multi-step enough to exercise
// blame edges and per-step variation.
func goldenConfig() Config {
	return Config{
		GPUs: 4, Model: model.DLv3Plus(), MPI: mpiprofile.MV2GDR(),
		Horovod: horovod.Default(), Seed: 11, Steps: 6, WarmupSteps: 2,
	}
}

// TestAttributionGolden pins the exact bytes of the seeded run's
// ledger: attribution is an analytic function of the simulation, so
// the same seed must yield the identical file — any drift is either an
// intentional model change (regenerate with -update-attribution) or a
// regression the gate exists to catch.
func TestAttributionGolden(t *testing.T) {
	rec := traceanalysis.NewLedgerRecorder("perfsim", 4)
	cfg := goldenConfig()
	cfg.Attribution = rec
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := rec.Ledger().WriteLedger(&got); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "attribution_golden.json")
	if *updateAttribution {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("attribution ledger drifted from %s (len %d vs %d); regenerate with -update-attribution if the change is intentional",
			golden, got.Len(), len(want))
	}
}

// TestAttributionSumsExactly: every row's buckets must sum to its step
// wall time, and the per-step wall must match what the simulator
// reported for that step.
func TestAttributionSumsExactly(t *testing.T) {
	rec := traceanalysis.NewLedgerRecorder("perfsim", 4)
	cfg := goldenConfig()
	cfg.Attribution = rec
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l := rec.Ledger()
	if err := l.Validate(traceanalysis.SumEpsilon); err != nil {
		t.Fatal(err)
	}
	wantRows := len(res.StepTimesSec) * cfg.GPUs
	if len(l.Steps) != wantRows {
		t.Fatalf("ledger has %d rows, want %d (post-warmup steps × ranks)", len(l.Steps), wantRows)
	}
	for _, row := range l.Steps {
		if row.Buckets.Sum() != row.StepSec {
			t.Fatalf("step %d rank %d: bucket sum %.17g != StepSec %.17g",
				row.Step, row.Rank, row.Buckets.Sum(), row.StepSec)
		}
		simStep := res.StepTimesSec[row.Step-cfg.WarmupSteps]
		if math.Abs(row.StepSec-simStep) > 1e-9 {
			t.Fatalf("step %d rank %d: ledger wall %.12g vs simulated %.12g",
				row.Step, row.Rank, row.StepSec, simStep)
		}
	}
}

// TestAttributionBlamesChaosStraggler: under a chaos plan that slows
// rank 2's compute 1.5×, rank 2 must be the modal blamed rank and must
// never blame anyone (the pacer does not wait on itself).
func TestAttributionBlamesChaosStraggler(t *testing.T) {
	plan, err := faultinject.ParseSpec("seed=1;slow=2*1.5")
	if err != nil {
		t.Fatal(err)
	}
	rec := traceanalysis.NewLedgerRecorder("perfsim", 4)
	cfg := goldenConfig()
	cfg.Steps, cfg.Chaos, cfg.Attribution = 12, plan, rec
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	l := rec.Ledger()
	counts := l.BlameCounts()
	for r, c := range counts {
		if r != 2 && c > counts[2] {
			t.Fatalf("blame counts %v: rank %d out-blamed the chaos straggler rank 2", counts, r)
		}
	}
	if counts[2] == 0 {
		t.Fatalf("blame counts %v: straggler rank 2 never blamed", counts)
	}
	for _, row := range l.Steps {
		if row.Rank == 2 && row.BlameRank == 2 {
			t.Fatal("pacing rank blamed itself")
		}
		if row.BlameRank >= 0 && row.BlameEdge == "" {
			t.Fatal("blamed row missing its blame edge")
		}
	}
}

// TestAttributionNilRecorderUnchanged: attaching a recorder must not
// perturb the simulation (observer contract).
func TestAttributionNilRecorderUnchanged(t *testing.T) {
	plain, err := Run(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := goldenConfig()
	cfg.Attribution = traceanalysis.NewLedgerRecorder("perfsim", 4)
	observed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.AvgStepSec != observed.AvgStepSec || plain.ImgPerSec != observed.ImgPerSec {
		t.Fatalf("attribution recorder changed results: %.12g vs %.12g img/s",
			plain.ImgPerSec, observed.ImgPerSec)
	}
}
