package perfsim

import (
	"testing"

	"segscale/internal/faultinject"
	"segscale/internal/telemetry"
)

// TestChaosIsDeterministic: two runs with the same chaos plan must be
// byte-identical — the reproducibility contract behind `summit-sim
// -chaos-seed`.
func TestChaosIsDeterministic(t *testing.T) {
	mk := func() Config {
		cfg := tunedMV2(12)
		cfg.Chaos = faultinject.RandomPlan(3, cfg.GPUs)
		return cfg
	}
	a, b := run(t, mk()), run(t, mk())
	if a.AvgStepSec != b.AvgStepSec || a.ImgPerSec != b.ImgPerSec {
		t.Fatalf("chaos runs diverged: %.9g vs %.9g img/s", a.ImgPerSec, b.ImgPerSec)
	}
	if len(a.StepTimesSec) != len(b.StepTimesSec) {
		t.Fatalf("step counts differ")
	}
	for i := range a.StepTimesSec {
		if a.StepTimesSec[i] != b.StepTimesSec[i] {
			t.Fatalf("step %d differs: %.12g vs %.12g", i, a.StepTimesSec[i], b.StepTimesSec[i])
		}
	}
}

// TestChaosStragglerSlowsStep: a heavy straggler window must cost
// virtual time relative to the clean run.
func TestChaosStragglerSlowsStep(t *testing.T) {
	clean := run(t, tunedMV2(6))
	cfg := tunedMV2(6)
	cfg.Chaos = &faultinject.Plan{
		Stragglers: []faultinject.Straggler{{Rank: 3, Factor: 3, FromStep: 0, ToStep: -1}},
	}
	slow := run(t, cfg)
	if slow.AvgStepSec <= clean.AvgStepSec {
		t.Fatalf("3× straggler did not slow the step: %.4g vs %.4g", slow.AvgStepSec, clean.AvgStepSec)
	}
	if slow.ComputeSec <= clean.ComputeSec {
		t.Fatalf("straggler should extend the paced compute: %.4g vs %.4g", slow.ComputeSec, clean.ComputeSec)
	}
}

// TestChaosMessageFaultsCostTimeAndCount: message chaos slows
// communication and reports the injected faults on the probe.
func TestChaosMessageFaultsCostTimeAndCount(t *testing.T) {
	clean := run(t, tunedMV2(6))

	col := telemetry.NewCollector()
	cfg := tunedMV2(6)
	cfg.Probe = col.NewProbe("sim", telemetry.NewStepClock())
	cfg.Chaos = &faultinject.Plan{Seed: 5, DropRate: 0.3, DupRate: 0.2, DelayRate: 0.2}
	faulty := run(t, cfg)

	if faulty.AllreduceSec <= clean.AllreduceSec {
		t.Fatalf("message chaos did not slow allreduce: %.4g vs %.4g", faulty.AllreduceSec, clean.AllreduceSec)
	}
	injected := 0.0
	for _, m := range col.Gather() {
		if m.Name == "faults_injected_total" {
			injected += m.Value
		}
	}
	if injected == 0 {
		t.Fatal("faults_injected_total not reported")
	}
}

// TestChaosValidation: an invalid plan is rejected before simulating.
func TestChaosValidation(t *testing.T) {
	cfg := tunedMV2(6)
	cfg.Chaos = &faultinject.Plan{DropRate: -1}
	if _, err := Run(cfg); err == nil {
		t.Fatal("invalid chaos plan accepted")
	}
}
