package perfsim

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"segscale/internal/horovod"
	"segscale/internal/model"
	"segscale/internal/mpiprofile"
	"segscale/internal/netmodel"
	"segscale/internal/traceanalysis"
)

// hierGoldenConfig mirrors goldenConfig but spans two nodes (12 GPUs)
// and forces the two-level allreduce, so the committed ledger pins the
// hierarchical path's per-bucket breakdown — the baseline `seg-compare`
// gates hier-vs-flat A/B runs against.
func hierGoldenConfig() Config {
	hvd := horovod.Default()
	hvd.Algorithm = netmodel.AlgHierTwoLevel
	return Config{
		GPUs: 12, Model: model.DLv3Plus(), MPI: mpiprofile.MV2GDR(),
		Horovod: hvd, Seed: 11, Steps: 6, WarmupSteps: 2,
	}
}

// TestAttributionHierGolden pins the exact ledger bytes of the seeded
// hierarchical run, same contract as TestAttributionGolden (regenerate
// with -update-attribution after an intentional model change).
func TestAttributionHierGolden(t *testing.T) {
	cfg := hierGoldenConfig()
	rec := traceanalysis.NewLedgerRecorder("perfsim", cfg.GPUs)
	cfg.Attribution = rec
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := rec.Ledger().WriteLedger(&got); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "attribution_hier_golden.json")
	if *updateAttribution {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("hier attribution ledger drifted from %s (len %d vs %d); regenerate with -update-attribution if the change is intentional",
			golden, got.Len(), len(want))
	}
}

// TestAttributionHierSumsExactly: the hierarchical path must honor the
// same exact-bucket-accounting invariant as the flat one.
func TestAttributionHierSumsExactly(t *testing.T) {
	cfg := hierGoldenConfig()
	rec := traceanalysis.NewLedgerRecorder("perfsim", cfg.GPUs)
	cfg.Attribution = rec
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l := rec.Ledger()
	if err := l.Validate(traceanalysis.SumEpsilon); err != nil {
		t.Fatal(err)
	}
	if want := len(res.StepTimesSec) * cfg.GPUs; len(l.Steps) != want {
		t.Fatalf("ledger has %d rows, want %d", len(l.Steps), want)
	}
	for _, row := range l.Steps {
		if row.Buckets.Sum() != row.StepSec {
			t.Fatalf("step %d rank %d: bucket sum %.17g != StepSec %.17g",
				row.Step, row.Rank, row.Buckets.Sum(), row.StepSec)
		}
	}
}
