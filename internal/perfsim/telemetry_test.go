package perfsim

import (
	"reflect"
	"testing"

	"segscale/internal/telemetry"
)

// TestProbeDoesNotChangeResults is the simulator's no-op-path
// contract: attaching a probe must not perturb any simulated number.
func TestProbeDoesNotChangeResults(t *testing.T) {
	bare := run(t, tunedMV2(12))

	cfg := tunedMV2(12)
	col := telemetry.NewCollector()
	cfg.Probe = col.NewProbe("gpus12", telemetry.NewStepClock())
	traced := run(t, cfg)

	if !reflect.DeepEqual(*bare, *traced) {
		t.Errorf("probe changed the simulation result:\nbare:   %+v\ntraced: %+v", *bare, *traced)
	}
}

// TestProbeCapturesSimulation checks the instrumented run records the
// promised counters and histograms.
func TestProbeCapturesSimulation(t *testing.T) {
	cfg := tunedMV2(12)
	col := telemetry.NewCollector()
	cfg.Probe = col.NewProbe("gpus12", telemetry.NewStepClock())
	res := run(t, cfg)

	got := map[string]telemetry.MetricSnapshot{}
	for _, m := range col.Gather() {
		got[m.Name] = m
	}
	for _, name := range []string{
		"perfsim_cycles_total", "perfsim_buffers_total", "perfsim_wire_bytes",
		"des_events_total",
	} {
		if got[name].Value <= 0 {
			t.Errorf("%s = %g, want > 0", name, got[name].Value)
		}
	}
	for _, name := range []string{
		"perfsim_step_seconds", "perfsim_allreduce_seconds", "perfsim_pack_seconds",
	} {
		h := got[name].Hist
		if h == nil || h.Total == 0 {
			t.Errorf("histogram %s is empty", name)
			continue
		}
		if name == "perfsim_step_seconds" && h.Total != uint64(len(res.StepTimesSec)) {
			t.Errorf("step histogram has %d observations, want %d (post-warmup steps)",
				h.Total, len(res.StepTimesSec))
		}
	}
}
