package perfsim

import (
	"fmt"
	"math"

	"segscale/internal/metrics"
)

// Aggregate summarises repeated runs of one configuration under
// different seeds — the error bars of the scaling figures.
type Aggregate struct {
	Runs []*Result

	MeanImgPerSec float64
	StdImgPerSec  float64
	// CI95ImgPerSec is the half-width of the 95% confidence interval on the
	// mean throughput (normal approximation).
	CI95ImgPerSec float64
}

// RunSeeds executes the configuration under n different seeds
// (derived from cfg.Seed) and aggregates throughput statistics.
func RunSeeds(cfg Config, n int) (*Aggregate, error) {
	if n <= 0 {
		return nil, fmt.Errorf("perfsim: %d seed runs", n)
	}
	agg := &Aggregate{}
	vals := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*1_000_003
		res, err := Run(c)
		if err != nil {
			return nil, err
		}
		agg.Runs = append(agg.Runs, res)
		vals = append(vals, res.ImgPerSec)
	}
	agg.MeanImgPerSec = metrics.Mean(vals)
	agg.StdImgPerSec = metrics.StdDev(vals)
	agg.CI95ImgPerSec = 1.96 * agg.StdImgPerSec / math.Sqrt(float64(n))
	return agg, nil
}
