// Package perfsim is the discrete-event simulator of distributed
// training on Summit: it reproduces the paper's scaling experiments
// by simulating, in virtual time, the interplay of
//
//   - per-rank compute (calibrated V100 step times with straggler
//     jitter, gradients becoming ready deepest-layer-first),
//   - Horovod's background loop (cycle ticks, coordinator
//     negotiation, response cache, tensor fusion), and
//   - the MPI library's collectives (α–β costs from
//     internal/netmodel, GPU-direct vs host-staged paths).
//
// The key behavioural asymmetry, taken from how Horovod's MPI path
// worked in the paper's era: with a GPU-direct library (MVAPICH2-GDR)
// communication proceeds on separate engines and overlaps the
// backward pass; without it (Spectrum-style host staging) the fusion
// buffer's device↔host copies and the staged transfers serialise
// against compute, which is what destroys default scaling. The
// BlockFraction knob exposes this mechanism for ablation.
package perfsim

import (
	"fmt"
	"math"
	"math/rand"

	"segscale/internal/des"
	"segscale/internal/devsim"
	"segscale/internal/faultinject"
	"segscale/internal/horovod"
	"segscale/internal/iosim"
	"segscale/internal/metrics"
	"segscale/internal/model"
	"segscale/internal/mpiprofile"
	"segscale/internal/netmodel"
	"segscale/internal/telemetry"
	"segscale/internal/timeline"
	"segscale/internal/topology"
	"segscale/internal/traceanalysis"
	"segscale/internal/transport"
)

// Fixed framework constants (TF1-era session overhead and the
// per-negotiation cycles the background thread steals from compute).
const (
	// stepOverheadSec is per-step framework time (session run, optimiser
	// launch) outside both compute and communication.
	stepOverheadSec = 10e-3
	// rankInterruptSec is compute time each rank loses per negotiation
	// round to its background thread.
	rankInterruptSec = 12e-6
	// negotiatePerTensorPerRank is coordinator work per pending
	// tensor per rank without the response cache.
	negotiatePerTensorPerRank = 40e-9
	// cachedTensorFactor shrinks per-tensor negotiation work when the
	// response cache recognises the tensor set.
	cachedTensorFactor = 0.1
)

// Config describes one simulated run.
type Config struct {
	GPUs    int
	Model   *model.Profile
	MPI     *mpiprofile.Profile
	Horovod horovod.Config
	// Steps simulated; the first WarmupSteps are excluded from stats.
	Steps       int
	WarmupSteps int
	Seed        int64
	// Overlap controls whether communication hides behind compute.
	// The default (OverlapAuto) derives it from the MPI library:
	// GPU-direct overlaps, host-staged serialises. The explicit modes
	// exist for the ablation benches.
	Overlap OverlapMode
	// Placement maps MPI ranks onto GPUs: packed (default, jsrun's
	// block order — consecutive ranks share a node) or cyclic
	// (round-robin across nodes, which makes every ring edge cross
	// the NIC). A real jsrun-level knob with real consequences.
	Placement Placement
	// IO, when non-nil, models the input pipeline (GPFS reads,
	// decode workers, prefetch); its per-step stall extends compute.
	IO *iosim.Config
	// BatchPerGPU overrides the profile's per-GPU batch (0 keeps the
	// profile default). Batches that do not fit in V100 memory are
	// rejected, the way a real job would OOM.
	BatchPerGPU int
	// SlowRanks injects persistent stragglers: this many ranks run
	// their compute SlowFactor× slower every step (a thermally
	// throttled or mis-clocked GPU — the failure mode that silently
	// destroys synchronous data-parallel throughput).
	SlowRanks int
	// SlowFactor is the slowdown multiplier for SlowRanks (e.g. 1.2);
	// values ≤ 1 are rejected when SlowRanks > 0.
	SlowFactor float64
	// Chaos, when non-nil, injects the plan's deterministic faults
	// into the simulation: straggler windows multiply the affected
	// rank's compute jitter, and message faults (drop / duplicate /
	// delay, drawn per fused buffer from the plan's seed) cost
	// retransmits, extra wire bytes, and reordering latency. Crash
	// entries are ignored — the simulator models a surviving job's
	// performance; crash-restart behaviour belongs to the real
	// trainer. Same seed, same plan → byte-identical results.
	Chaos *faultinject.Plan
	// Timeline, when non-nil, records the first post-warmup step.
	Timeline *timeline.Recorder
	// Probe, when non-nil, receives simulation metrics on the virtual
	// clock — per-buffer allreduce/pack latency histograms, wire-byte
	// counters, negotiation-cycle counts, and the DES engine's
	// event/queue-depth instruments. Nil (the default) keeps the
	// event loop uninstrumented at one branch per site.
	Probe *telemetry.Probe
	// StepObs, when non-nil, is notified after each post-warmup step
	// with the step's virtual duration (lane "gpus<N>", images =
	// batch × GPUs) — the live efficiency monitor's feed. Purely an
	// observer: it must not influence the simulation, and nil (the
	// default) keeps results byte-identical.
	StepObs telemetry.StepObserver
	// Attribution, when non-nil, receives one ledger row per
	// (post-warmup step, rank): the rank's step wall time decomposed
	// into buckets that sum to it exactly, with idle waits blamed on
	// the step's pacing (slowest-jitter) rank. The simulator knows the
	// model analytically, so the rows are exact and — for a fixed seed
	// — byte-identical across runs, which is what the regression-gate
	// golden pins. Purely an observer: nil changes nothing.
	Attribution *traceanalysis.LedgerRecorder
}

// Placement selects the MPI-rank → GPU mapping.
type Placement int

const (
	// PlacementPacked puts consecutive ranks on the same node
	// (jsrun's default block order).
	PlacementPacked Placement = iota
	// PlacementCyclic round-robins ranks across nodes.
	PlacementCyclic
)

// OverlapMode selects the comm/compute overlap model.
type OverlapMode int

const (
	// OverlapAuto derives overlap from the MPI profile (the default).
	OverlapAuto OverlapMode = iota
	// OverlapFull forces communication off the compute stream.
	OverlapFull
	// OverlapNone forces communication to serialise with compute.
	OverlapNone
)

// blockFraction is how much of comm time extends compute.
func (c Config) blockFraction() float64 {
	switch c.Overlap {
	case OverlapFull:
		return 0
	case OverlapNone:
		return 1
	default:
		if c.MPI.GPUDirect {
			return 0
		}
		return 1
	}
}

// DefaultSteps is enough for stable averages.
const DefaultSteps = 20

// Canon fills defaults.
func (c Config) Canon() Config {
	if c.Steps == 0 {
		c.Steps = DefaultSteps
	}
	if c.WarmupSteps == 0 {
		c.WarmupSteps = 2
	}
	return c
}

// Result summarises a run.
type Result struct {
	GPUs         int
	BatchPer     int
	StepTimesSec []float64 // post-warmup

	AvgStepSec float64
	ImgPerSec  float64

	// Per-step averages of where time went.
	ComputeSec     float64 // slowest rank's compute, incl. interrupts
	NegotiateSec   float64
	PackSec        float64
	AllreduceSec   float64
	ExposedSec     float64 // comm not hidden behind compute
	DataStallSec   float64 // input-pipeline time not hidden by prefetch
	CyclesPerStep  float64
	BuffersPerStep float64
}

// EfficiencyVs returns throughput relative to perfect scaling from a
// baseline run (normally the 1-GPU result), the paper's scaling
// efficiency.
func (r *Result) EfficiencyVs(base *Result) float64 {
	return metrics.ScalingEfficiency(base.ImgPerSec/float64(base.GPUs), r.ImgPerSec, r.GPUs)
}

// Run simulates distributed training and returns aggregate results.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.Canon()
	if cfg.GPUs <= 0 {
		return nil, fmt.Errorf("perfsim: %d GPUs", cfg.GPUs)
	}
	if cfg.Model == nil || cfg.MPI == nil {
		return nil, fmt.Errorf("perfsim: missing model or MPI profile")
	}
	if err := cfg.Horovod.Validate(); err != nil {
		return nil, err
	}
	if cfg.IO != nil {
		if err := cfg.IO.Validate(); err != nil {
			return nil, err
		}
	}
	if cfg.SlowRanks < 0 || cfg.SlowRanks > cfg.GPUs {
		return nil, fmt.Errorf("perfsim: %d slow ranks of %d", cfg.SlowRanks, cfg.GPUs)
	}
	if cfg.SlowRanks > 0 && cfg.SlowFactor <= 1 {
		return nil, fmt.Errorf("perfsim: slow factor %g must exceed 1", cfg.SlowFactor)
	}
	if cfg.Chaos != nil {
		if err := cfg.Chaos.Validate(); err != nil {
			return nil, fmt.Errorf("perfsim: %w", err)
		}
	}

	batch := cfg.Model.BatchPerGPU
	if cfg.BatchPerGPU != 0 {
		batch = cfg.BatchPerGPU
	}
	if !cfg.Model.FitsInMemory(batch) {
		return nil, fmt.Errorf("perfsim: batch %d does not fit on a V100 for %s (max %d)",
			batch, cfg.Model.Name, cfg.Model.MaxBatchPerGPU())
	}

	mach := topology.ForGPUs(cfg.GPUs)
	net, err := netmodel.New(mach, cfg.MPI)
	if err != nil {
		return nil, err
	}
	if cfg.Horovod.FP16Compression {
		// Compressed collectives feed the model halved byte counts; tell
		// it the wire element is 2 bytes so the reduce-flops term still
		// prices the full element count.
		net.ElemBytes = 2
	}
	gpu := devsim.New(cfg.Model)
	rng := rand.New(rand.NewSource(cfg.Seed + int64(cfg.GPUs)*7919))

	// Calibrate the compute base so the *simulated* single-GPU
	// throughput (which includes step overhead and mean jitter)
	// reproduces the paper's measured rate.
	rawStep := gpu.StepTime(batch)
	meanJitter := 1 + gpu.JitterStd*math.Sqrt(2/math.Pi)
	calib := (rawStep - stepOverheadSec) / (rawStep * meanJitter)
	if calib <= 0 {
		return nil, fmt.Errorf("perfsim: step time %.3gs too small for %.3gs overhead", rawStep, stepOverheadSec)
	}

	world, err := placeRanks(cfg.GPUs, mach, cfg.Placement)
	if err != nil {
		return nil, err
	}
	sim := &stepSim{
		cfg:         cfg,
		mach:        mach,
		net:         net,
		gpu:         gpu,
		rng:         rng,
		calibFactor: calib,
		batch:       batch,
		world:       world,
		dsim:        des.New(),
		tensors:     gpu.TensorReadyTimes(batch),
	}
	sim.dsim.MaxEvents = 5_000_000
	sim.dsim.SetProbe(cfg.Probe)
	sim.readySec = make([]float64, len(sim.tensors))
	sim.sizes = make([]int, len(sim.tensors))
	sim.jitFactor = make([]float64, cfg.GPUs)

	res := &Result{GPUs: cfg.GPUs, BatchPer: batch}
	now := 0.0
	accum := cfg.Horovod.AccumPasses()
	stepHist := cfg.Probe.Histogram("perfsim_step_seconds", stepBucketsSec)
	obsLane := fmt.Sprintf("gpus%d", cfg.GPUs)
	for step := 0; step < cfg.Steps; step++ {
		recordTimeline := cfg.Timeline != nil && step == cfg.WarmupSteps
		// With gradient accumulation only every accum-th backward
		// pass communicates (hvd backward_passes_per_step).
		doComm := (step+1)%accum == 0
		st := sim.runStep(now, recordTimeline, doComm)
		now = st.endSec
		if step < cfg.WarmupSteps {
			continue
		}
		d := st.endSec - st.startSec
		stepHist.Observe(d)
		if cfg.StepObs != nil {
			cfg.StepObs.ObserveStep(obsLane, step, batch*cfg.GPUs, d)
		}
		if cfg.Attribution != nil {
			sim.attribute(cfg.Attribution, step, st)
		}
		res.StepTimesSec = append(res.StepTimesSec, d)
		res.ComputeSec += st.computeSec
		res.NegotiateSec += st.negotiateSec
		res.PackSec += st.packSec
		res.AllreduceSec += st.allreduceSec
		res.ExposedSec += st.exposedSec
		res.DataStallSec += st.dataStallSec
		res.CyclesPerStep += float64(st.cycles)
		res.BuffersPerStep += float64(st.buffers)
	}
	n := float64(len(res.StepTimesSec))
	res.AvgStepSec = metrics.Mean(res.StepTimesSec)
	res.ImgPerSec = float64(batch*cfg.GPUs) / res.AvgStepSec
	res.ComputeSec /= n
	res.NegotiateSec /= n
	res.PackSec /= n
	res.AllreduceSec /= n
	res.ExposedSec /= n
	res.DataStallSec /= n
	res.CyclesPerStep /= n
	res.BuffersPerStep /= n
	return res, nil
}

// Telemetry bucket ladders, in virtual seconds: steps run
// milliseconds-to-seconds, per-buffer communication microseconds and
// up.
var (
	stepBucketsSec = telemetry.ExpBuckets(1e-3, 2, 14)
	commBucketsSec = telemetry.ExpBuckets(1e-6, 4, 12)
)

// placeRanks returns, for each MPI rank, the global GPU slot it runs
// on under the chosen placement.
func placeRanks(n int, mach topology.Machine, p Placement) ([]int, error) {
	out := make([]int, n)
	switch p {
	case PlacementPacked:
		for i := range out {
			out[i] = i
		}
	case PlacementCyclic:
		if n != mach.Ranks() {
			return nil, fmt.Errorf("perfsim: cyclic placement needs full nodes (%d ranks on %s)", n, mach)
		}
		for i := range out {
			out[i] = (i%mach.Nodes)*mach.GPUsPer + i/mach.Nodes
		}
	default:
		return nil, fmt.Errorf("perfsim: unknown placement %d", p)
	}
	return out, nil
}

// stepSim holds cross-step state.
type stepSim struct {
	cfg         Config
	mach        topology.Machine
	net         *netmodel.Model
	gpu         *devsim.GPU
	rng         *rand.Rand
	calibFactor float64 // compute-time scale from throughput calibration
	batch       int
	world       []int
	step        int
	msgSeq      uint64 // fused-buffer sequence for chaos fault draws

	// Step-loop pools, reused across runStep calls so a long simulation
	// does not allocate per step. dsim is safe to share because virtual
	// time only moves forward: each step schedules at t0 ≥ the previous
	// step's final event time, and Run drains the queue completely.
	dsim     *des.Sim
	tensors  []devsim.TensorReady // gradient schedule: pure function of batch
	readySec []float64
	sizes    []int
	groups   [][]int // fusion-plan storage recycled via PlanFusionInto
	// jitFactor holds the most recent step's per-rank jitter multipliers — the raw
	// material of per-rank attribution, kept out of the hot step loop's
	// allocation budget by pooling.
	jitFactor []float64
}

// stepStats is one step's outcome. All durations are virtual seconds.
type stepStats struct {
	startSec, endSec float64
	computeSec       float64
	negotiateSec     float64
	packSec          float64
	allreduceSec     float64
	exposedSec       float64
	dataStallSec     float64
	cycles           int
	buffers          int
}

// runStep simulates one synchronous data-parallel training step
// starting at virtual time t0. doComm gates the allreduce (false for
// the accumulate-only passes of gradient accumulation).
//
// The inner loop is the simulator's hot path: a 132-GPU sweep runs it
// hundreds of times with tens of negotiation cycles each, so per-step
// state (DES engine, ready/size vectors, fusion-plan storage) comes
// from the stepSim pools above.
//
//seglint:hotpath performance-simulator step loop: negotiation cycles, fusion planning, allreduce cost model
func (s *stepSim) runStep(t0 float64, record bool, doComm bool) stepStats {
	cfg := s.cfg
	batch := s.batch
	p := cfg.GPUs
	cached := cfg.Horovod.ResponseCache && s.step > 0
	stepIdx := s.step
	s.step++

	// Straggler model: the step is paced by the slowest rank; the
	// max of p half-normal jitters grows ~√(2 ln p). Persistent slow
	// ranks multiply their jitter by the configured factor.
	jmax := 1.0
	for r := 0; r < p; r++ {
		j := s.gpu.Jitter(s.rng)
		if r < cfg.SlowRanks {
			j *= cfg.SlowFactor
		}
		j *= cfg.Chaos.StragglerFactor(r, stepIdx)
		s.jitFactor[r] = j
		if j > jmax {
			jmax = j
		}
	}

	fwd := s.gpu.ForwardTime(batch) * jmax * s.calibFactor
	bwdDur := s.gpu.BackwardTime(batch) * jmax * s.calibFactor
	tensors := s.tensors
	st := stepStats{startSec: t0}

	// Input-pipeline stall: the step cannot start until its batch is
	// materialised; the stall is paced by the slowest rank's pipeline
	// too, so it rides inside the jittered compute window.
	if cfg.IO != nil {
		stall := cfg.IO.StallPerStep(p, batch, fwd+bwdDur)
		st.dataStallSec = stall
		t0 += stall
	}

	if record {
		s.recordCompute(t0, fwd, bwdDur)
	}

	if p == 1 || !doComm {
		st.computeSec = fwd + bwdDur
		st.endSec = t0 + st.computeSec + stepOverheadSec
		return st
	}

	// ready[i]: virtual time gradient i is available on the slowest
	// rank (scaled by jmax).
	ready := s.readySec
	sizes := s.sizes
	for i, tr := range tensors {
		ready[i] = t0 + fwd + tr.Offset*jmax*s.calibFactor
		sizes[i] = tr.Bytes
	}

	cycle := cfg.Horovod.CycleTime.Seconds()
	alg := cfg.Horovod.ResolveAlgorithm()

	// computeDelay accumulates compute-side extensions: background-
	// thread interrupts plus (for host-staged libraries) the comm
	// activity that serialises against the compute stream.
	var computeDelay float64
	computeEnd := func() float64 { return t0 + fwd + bwdDur + computeDelay } //seglint:ignore hotalloc one closure pair per simulated step drives the event loop; the per-cycle work inside allocates nothing

	reduced := 0
	next := 0 // tensors are ready in order; next unreduced index
	var lastCommDone float64

	dsim := s.dsim
	var tick func()
	commFree := t0

	tick = func() { //seglint:ignore hotalloc the step's negotiation-cycle callback, built once per step and rescheduled in place
		now := dsim.Now()
		st.cycles++
		cfg.Probe.Counter("perfsim_cycles_total").Inc()

		// Coordinator negotiation round.
		pending := 0
		for i := next; i < len(ready); i++ {
			if ready[i]+computeDelay <= now {
				pending++
			} else {
				break
			}
		}
		perTensor := negotiatePerTensorPerRank
		if cached {
			perTensor *= cachedTensorFactor
		}
		dNeg := netmodel.NegotiationTime(p) + float64(pending)*float64(p)*perTensor
		st.negotiateSec += dNeg
		if now < computeEnd() { //seglint:ignore hotalloc call through the step-local closure; no allocation in the callee
			computeDelay += rankInterruptSec
		}
		if record {
			s.cfg.Timeline.Add("coordinator", timeline.PhaseNegotiate,
				fmt.Sprintf("cycle%d", st.cycles), now, now+dNeg) //seglint:ignore hotalloc negotiate label formatting runs only while recording the single designated timeline step
		}
		busyUntil := now + dNeg

		if pending > 0 {
			s.groups = horovod.PlanFusionInto(s.groups, sizes[next:next+pending], cfg.Horovod.FusionThreshold)
			groups := s.groups
			for _, g := range groups {
				bytes := 0
				for range g {
					bytes += sizes[next]
					next++
				}
				reduced += len(g)
				st.buffers++

				packT := 2 * float64(bytes) / cfg.MPI.FusionPackBW // pack + unpack
				wireBytes := bytes
				if cfg.Horovod.FP16Compression {
					// fp16 compression halves wire volume. The casts fuse
					// into the pack/unpack kernels (they re-read what the
					// memcpy already touches), so the extra memory traffic
					// is the binary16 payload written at pack plus the one
					// re-read at unpack — bytes/2 each way.
					wireBytes = bytes / 2
					packT += float64(bytes) / cfg.MPI.FusionPackBW
				}
				// Chaos: draw this buffer's fate from the plan's seed —
				// pure hashing, so a rerun with the same plan costs
				// exactly the same virtual time.
				var fault transport.Fault
				if cfg.Chaos != nil {
					s.msgSeq++
					fault = cfg.Chaos.Message(0, p-1, st.buffers, 0, s.msgSeq)
				}
				if fault == transport.FaultDuplicate {
					wireBytes *= 2 // the spurious copy crosses the wire too
				}
				arT := s.net.Allreduce(alg, s.world, wireBytes)
				switch fault {
				case transport.FaultDrop:
					arT *= 2 // lost buffer, one full retransmit
				case transport.FaultDelay:
					arT *= 1.5 // reordered behind other traffic
				}
				if fault != transport.FaultNone {
					cfg.Probe.Counter("faults_injected_total").Inc()
				}
				st.packSec += packT
				st.allreduceSec += arT
				cfg.Probe.Counter("perfsim_buffers_total").Inc()
				cfg.Probe.Counter("perfsim_wire_bytes").Add(float64(wireBytes))
				cfg.Probe.Histogram("perfsim_pack_seconds", commBucketsSec).Observe(packT)
				cfg.Probe.Histogram("perfsim_allreduce_seconds", commBucketsSec).Observe(arT)
				if record {
					s.cfg.Timeline.Add("coordinator", timeline.PhaseMemcpy,
						fmt.Sprintf("buf%d(%dB)", st.buffers, bytes), busyUntil, busyUntil+packT) //seglint:ignore hotalloc buffer label formatting runs only while recording the single designated timeline step
					s.cfg.Timeline.Add("coordinator", timeline.PhaseAllreduce,
						fmt.Sprintf("buf%d(%dB)", st.buffers, bytes), busyUntil+packT, busyUntil+packT+arT) //seglint:ignore hotalloc buffer label formatting runs only while recording the single designated timeline step
				}
				busyUntil += packT + arT
				// Host-staged libraries steal the compute stream for
				// the staging copies and progress engine.
				if now < computeEnd() { //seglint:ignore hotalloc call through the step-local closure; no allocation in the callee
					computeDelay += (packT + arT) * cfg.blockFraction()
				}
			}
		}
		commFree = busyUntil
		lastCommDone = busyUntil

		if reduced == len(ready) {
			return // step's communication complete
		}
		nextTick := now + cycle
		if commFree > nextTick {
			nextTick = commFree
		}
		dsim.At(nextTick, tick)
	}
	dsim.At(t0+cycle, tick)
	dsim.Run()

	st.computeSec = fwd + bwdDur + computeDelay
	ce := computeEnd() //seglint:ignore hotalloc call through the step-local closure; no allocation in the callee
	st.exposedSec = computeDelay + math.Max(0, lastCommDone-ce)
	end := math.Max(ce, lastCommDone) + stepOverheadSec
	st.endSec = end
	return st
}

// attribute converts one finished step into per-rank ledger rows. It
// runs outside the hot step loop (once per post-warmup step, only when
// a recorder is attached) and reads the pooled per-rank jitter draws
// runStep left behind.
//
// The decomposition mirrors runStep's own timing algebra, so the
// buckets sum to the step's wall time exactly:
//
//	wall = stall + (fwd+bwd)·jmax + computeDelay + exposedTail + overhead
//
// Rank r's row replaces (fwd+bwd)·jmax with its own compute
// (fwd+bwd)·j_r plus an idle_wait of (jmax−j_r)·(fwd+bwd) — the time r
// stood blocked on the step's pacing rank, which is who the blame edge
// names. The exposed tail (communication compute could not hide) is
// split wire-first into allreduce_wire and pack, matching how the tail
// actually ends in the model; whatever the modelled comm cannot explain
// (cycle-tick quantisation, negotiation gaps) stays in exposed_comm.
func (s *stepSim) attribute(rec *traceanalysis.LedgerRecorder, step int, st stepStats) {
	// Same expression order as runStep, so the float rounding matches.
	fwdj := s.gpu.ForwardTime(s.batch) * s.calibFactor
	bwdj := s.gpu.BackwardTime(s.batch) * s.calibFactor
	jmax, pace := 1.0, -1
	for r, j := range s.jitFactor {
		if j > jmax {
			jmax, pace = j, r
		}
	}
	delay := st.computeSec - (fwdj+bwdj)*jmax
	if delay < 0 {
		delay = 0 // float dust from re-deriving computeDelay
	}
	tail := st.exposedSec - delay
	if tail < 0 {
		tail = 0
	}
	wire := math.Min(st.allreduceSec, tail)
	pack := math.Min(st.packSec, tail-wire)
	for r, j := range s.jitFactor {
		var b traceanalysis.BucketSet
		b[traceanalysis.BucketDataStall] = st.dataStallSec
		b[traceanalysis.BucketForward] = fwdj * j
		b[traceanalysis.BucketBackward] = bwdj * j
		b[traceanalysis.BucketInterrupts] = delay
		b[traceanalysis.BucketPack] = pack
		b[traceanalysis.BucketWire] = wire
		b[traceanalysis.BucketIdleWait] = (jmax - j) * (fwdj + bwdj)
		b[traceanalysis.BucketExposed] = tail - wire - pack
		b[traceanalysis.BucketOverhead] = stepOverheadSec
		row := traceanalysis.StepAttribution{
			Step: step, Rank: r, StepSec: b.Sum(), Buckets: b, BlameRank: -1,
		}
		if pace >= 0 && pace != r && b[traceanalysis.BucketIdleWait] > 0 {
			row.BlameRank = pace
			// A synthetic edge in the standard form: the pacing rank's
			// gradient contribution is the message rank r waited on.
			row.BlameEdge = timeline.Edge{Src: pace, Dst: r, Seq: uint64(step)}.String()
		}
		rec.Record(row)
	}
}

// recordCompute writes the compute lanes of the timeline.
func (s *stepSim) recordCompute(t0, fwd, bwd float64) {
	s.cfg.Timeline.Add("rank-slowest", timeline.PhaseForward, "fwd", t0, t0+fwd)
	s.cfg.Timeline.Add("rank-slowest", timeline.PhaseBackward, "bwd", t0+fwd, t0+fwd+bwd)
}
