package perfsim

import (
	"testing"

	"segscale/internal/horovod"
	"segscale/internal/model"
	"segscale/internal/mpiprofile"
)

// BenchmarkSimulator measures the simulator itself: a full 132-GPU,
// 20-step run completes in milliseconds, which is what makes the
// tuning sweeps cheap.
func BenchmarkSimulator(b *testing.B) {
	cfg := Config{GPUs: 132, Model: model.DLv3Plus(), MPI: mpiprofile.MV2GDR(), Horovod: horovod.Default(), Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
