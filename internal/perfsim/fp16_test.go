package perfsim

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"segscale/internal/telemetry"
	"segscale/internal/traceanalysis"
)

// fp16Pair returns the same configuration with and without
// compression.
func fp16Pair(base Config) (fp32, fp16 Config) {
	fp16 = base
	fp16.Horovod.FP16Compression = true
	return base, fp16
}

// The paper's claim at sweep scale: at 132 ranks (22 nodes) and 1056
// ranks (176 nodes) the compressed collectives must scale no worse
// than fp32 — the wire is half as wide, the compute identical — with
// the whole delta in the allreduce bucket.
func TestFP16EfficiencyAtScale(t *testing.T) {
	base := run(t, defaultSpectrum(1))
	for _, gpus := range []int{132, 1056} {
		c32, c16 := fp16Pair(defaultSpectrum(gpus))
		r32, r16 := run(t, c32), run(t, c16)
		e32, e16 := r32.EfficiencyVs(base), r16.EfficiencyVs(base)
		if e16 < e32 {
			t.Errorf("%d ranks: fp16 efficiency %.4f below fp32 %.4f", gpus, e16, e32)
		}
		if r16.AllreduceSec >= r32.AllreduceSec {
			t.Errorf("%d ranks: fp16 allreduce %.4gs not below fp32 %.4gs",
				gpus, r16.AllreduceSec, r32.AllreduceSec)
		}
		// The win lives in communication. Spectrum's host-staged path
		// steals compute-stream time proportional to communication, so
		// compute can only improve with the smaller wire, never regress.
		if r16.ComputeSec > r32.ComputeSec {
			t.Errorf("%d ranks: compression increased compute time %.6g → %.6g",
				gpus, r32.ComputeSec, r16.ComputeSec)
		}
	}
}

// The modelled wire volume must agree with the live transport
// counters' 2-bytes-per-element accounting: the fp16 run's
// perfsim_wire_bytes is exactly half the fp32 run's.
func TestFP16WireCounterExactlyHalves(t *testing.T) {
	counter := func(cfg Config) float64 {
		col := telemetry.NewCollector()
		cfg.Probe = col.NewProbe("sim", telemetry.NewStepClock())
		run(t, cfg)
		for _, m := range col.Gather() {
			if m.Name == "perfsim_wire_bytes" {
				return m.Value
			}
		}
		t.Fatal("perfsim_wire_bytes not gathered")
		return 0
	}
	c32, c16 := fp16Pair(tunedMV2(24))
	b32, b16 := counter(c32), counter(c16)
	if b32 <= 0 || b32 != 2*b16 {
		t.Fatalf("wire bytes fp32 %.0f vs fp16 %.0f — want exactly 2x", b32, b16)
	}
}

// The compressed run gets its own committed attribution golden
// (testdata/attribution_fp16_golden.json, regenerate together with the
// fp32 one via -update-attribution): the allreduce bucket shrinks, and
// any drift in the fp16 cost model fails here without touching the
// fp32 golden.
func TestAttributionFP16Golden(t *testing.T) {
	rec := traceanalysis.NewLedgerRecorder("perfsim", 4)
	cfg := goldenConfig()
	cfg.Horovod.FP16Compression = true
	cfg.Attribution = rec
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := rec.Ledger().WriteLedger(&got); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "attribution_fp16_golden.json")
	if *updateAttribution {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("fp16 attribution ledger drifted from %s (len %d vs %d); regenerate with -update-attribution if the change is intentional",
			golden, got.Len(), len(want))
	}
}

// The fp32-vs-fp16 ledger comparison the seg-compare gate scripts
// automate: same config, the compressed ledger's allreduce bucket must
// shrink while compute stays put.
func TestAttributionFP16AllreduceBucketShrinks(t *testing.T) {
	ledger := func(cfg Config) *traceanalysis.Ledger {
		rec := traceanalysis.NewLedgerRecorder("perfsim", 4)
		cfg.Attribution = rec
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		return rec.Ledger()
	}
	c32, c16 := fp16Pair(goldenConfig())
	l32, l16 := ledger(c32), ledger(c16)
	var ar32, ar16, comp32, comp16 float64
	for _, row := range l32.Steps {
		ar32 += row.Buckets[traceanalysis.BucketWire]
		comp32 += row.Buckets[traceanalysis.BucketForward] + row.Buckets[traceanalysis.BucketBackward]
	}
	for _, row := range l16.Steps {
		ar16 += row.Buckets[traceanalysis.BucketWire]
		comp16 += row.Buckets[traceanalysis.BucketForward] + row.Buckets[traceanalysis.BucketBackward]
	}
	if ar16 >= ar32 {
		t.Errorf("fp16 allreduce bucket %.4g not below fp32 %.4g", ar16, ar32)
	}
	if comp16 != comp32 {
		t.Errorf("compression moved the compute bucket: %.6g → %.6g", comp32, comp16)
	}
}
