package perfsim

import (
	"math"
	"sync"
	"testing"
)

// recordingObserver captures every step notification.
type recordingObserver struct {
	mu    sync.Mutex
	lanes map[string]int
	imgs  []int
	durs  []float64
}

func (r *recordingObserver) ObserveStep(lane string, step, imgs int, stepSec float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.lanes == nil {
		r.lanes = map[string]int{}
	}
	r.lanes[lane]++
	r.imgs = append(r.imgs, imgs)
	r.durs = append(r.durs, stepSec)
}

// TestStepObserverSeesPostWarmupSteps checks the simulator's observer
// contract: one notification per post-warmup step on lane "gpus<N>",
// carrying the whole world's images and the virtual step duration —
// and that observing changes nothing about the simulated result.
func TestStepObserverSeesPostWarmupSteps(t *testing.T) {
	cfg := defaultSpectrum(6)
	base := run(t, cfg)

	obs := &recordingObserver{}
	cfg.StepObs = obs
	observed := run(t, cfg)

	if observed.ImgPerSec != base.ImgPerSec || observed.AvgStepSec != base.AvgStepSec {
		t.Fatalf("observer perturbed the simulation: %.4f vs %.4f img/s",
			observed.ImgPerSec, base.ImgPerSec)
	}

	wantSteps := DefaultSteps - 2 // default warmup
	if got := obs.lanes["gpus6"]; got != wantSteps || len(obs.lanes) != 1 {
		t.Fatalf("observations = %v, want %d on lane gpus6", obs.lanes, wantSteps)
	}
	wantImgs := 6 * cfg.Model.BatchPerGPU
	var sumDur float64
	for i, n := range obs.imgs {
		if n != wantImgs {
			t.Fatalf("obs %d carried %d images, want %d", i, n, wantImgs)
		}
		if obs.durs[i] <= 0 {
			t.Fatalf("obs %d carried non-positive virtual duration %g", i, obs.durs[i])
		}
		sumDur += obs.durs[i]
	}
	// The observed durations are the same samples the result averages.
	avg := sumDur / float64(len(obs.durs))
	if math.Abs(avg-base.AvgStepSec)/base.AvgStepSec > 1e-9 {
		t.Fatalf("observed avg step %.9f != result avg %.9f", avg, base.AvgStepSec)
	}
}
