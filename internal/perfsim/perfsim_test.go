package perfsim

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"segscale/internal/horovod"
	"segscale/internal/iosim"
	"segscale/internal/model"
	"segscale/internal/mpiprofile"
	"segscale/internal/netmodel"
	"segscale/internal/timeline"
	"segscale/internal/topology"
)

func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func defaultSpectrum(gpus int) Config {
	return Config{GPUs: gpus, Model: model.DLv3Plus(), MPI: mpiprofile.Spectrum(), Horovod: horovod.Default(), Seed: 1}
}

func tunedMV2(gpus int) Config {
	hvd := horovod.Default()
	hvd.FusionThreshold = 128 << 20
	hvd.CycleTime = 2 * time.Millisecond
	hvd.ResponseCache = true
	return Config{GPUs: gpus, Model: model.DLv3Plus(), MPI: mpiprofile.MV2GDR(), Horovod: hvd, Seed: 1}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{GPUs: 0, Model: model.DLv3Plus(), MPI: mpiprofile.MV2GDR(), Horovod: horovod.Default()}); err == nil {
		t.Error("zero GPUs accepted")
	}
	if _, err := Run(Config{GPUs: 2, MPI: mpiprofile.MV2GDR(), Horovod: horovod.Default()}); err == nil {
		t.Error("missing model accepted")
	}
	bad := horovod.Default()
	bad.CycleTime = 0
	if _, err := Run(Config{GPUs: 2, Model: model.DLv3Plus(), MPI: mpiprofile.MV2GDR(), Horovod: bad}); err == nil {
		t.Error("invalid horovod config accepted")
	}
}

func TestSingleGPUReproducesPaperThroughput(t *testing.T) {
	// F1 anchor: the simulated single-GPU rates must match the
	// abstract's 6.7 and 300 img/s within a few percent.
	dl := run(t, Config{GPUs: 1, Model: model.DLv3Plus(), MPI: mpiprofile.MV2GDR(), Horovod: horovod.Default(), Seed: 2})
	if math.Abs(dl.ImgPerSec-6.7)/6.7 > 0.05 {
		t.Fatalf("DLv3+ single GPU %.2f img/s, want ≈6.7", dl.ImgPerSec)
	}
	rn := run(t, Config{GPUs: 1, Model: model.ResNet50(), MPI: mpiprofile.MV2GDR(), Horovod: horovod.Default(), Seed: 2})
	if math.Abs(rn.ImgPerSec-300)/300 > 0.05 {
		t.Fatalf("ResNet-50 single GPU %.1f img/s, want ≈300", rn.ImgPerSec)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := run(t, tunedMV2(24))
	b := run(t, tunedMV2(24))
	if a.ImgPerSec != b.ImgPerSec || a.AvgStepSec != b.AvgStepSec {
		t.Fatal("same seed produced different results")
	}
	c := tunedMV2(24)
	c.Seed = 99
	d := run(t, c)
	if d.ImgPerSec == a.ImgPerSec {
		t.Fatal("different seed produced identical throughput (suspicious)")
	}
}

func TestThroughputIncreasesWithGPUs(t *testing.T) {
	for _, mk := range []func(int) Config{defaultSpectrum, tunedMV2} {
		prev := 0.0
		for _, g := range topology.PaperScales() {
			r := run(t, mk(g))
			if r.ImgPerSec <= prev {
				t.Fatalf("throughput not increasing at %d GPUs: %.1f <= %.1f", g, r.ImgPerSec, prev)
			}
			prev = r.ImgPerSec
		}
	}
}

func TestEfficiencyDecreasesWithScale(t *testing.T) {
	base := run(t, defaultSpectrum(1))
	prev := 1.1
	for _, g := range []int{6, 24, 132} {
		eff := run(t, defaultSpectrum(g)).EfficiencyVs(base)
		if eff >= prev {
			t.Fatalf("efficiency not decreasing at %d GPUs: %.3f >= %.3f", g, eff, prev)
		}
		prev = eff
	}
}

// The paper's headline: near-linear (≈92 %) scaling with tuned
// MVAPICH2-GDR at 132 GPUs, vs poor default scaling, a ≈24 %
// efficiency improvement and ≈1.3× speedup.
func TestPaperHeadlineNumbers(t *testing.T) {
	baseT := run(t, tunedMV2(1))
	baseD := run(t, defaultSpectrum(1))
	tuned := run(t, tunedMV2(132))
	def := run(t, defaultSpectrum(132))

	effT := tuned.EfficiencyVs(baseT)
	effD := def.EfficiencyVs(baseD)
	if effT < 0.88 || effT > 0.97 {
		t.Errorf("tuned efficiency %.3f, paper ≈0.92", effT)
	}
	if effD < 0.62 || effD > 0.82 {
		t.Errorf("default efficiency %.3f, paper implies ≈0.71", effD)
	}
	improvement := effT / effD
	if improvement < 1.12 || improvement > 1.45 {
		t.Errorf("efficiency improvement %.3f×, paper: 1.239× (23.9%%)", improvement)
	}
	speedup := tuned.ImgPerSec / def.ImgPerSec
	if speedup < 1.12 || speedup > 1.45 {
		t.Errorf("speedup %.2f×, paper ≈1.3×", speedup)
	}
}

func TestTunedBeatsDefaultEverywhere(t *testing.T) {
	for _, g := range []int{6, 24, 48, 96, 132} {
		tuned := run(t, tunedMV2(g))
		def := run(t, defaultSpectrum(g))
		if tuned.ImgPerSec <= def.ImgPerSec {
			t.Errorf("%d GPUs: tuned %.1f not above default %.1f", g, tuned.ImgPerSec, def.ImgPerSec)
		}
	}
}

func TestGapGrowsWithScale(t *testing.T) {
	gapAt := func(g int) float64 {
		return run(t, tunedMV2(g)).ImgPerSec / run(t, defaultSpectrum(g)).ImgPerSec
	}
	small, large := gapAt(6), gapAt(132)
	if large <= small {
		t.Fatalf("tuned/default gap should grow with scale: %.3f at 6 vs %.3f at 132", small, large)
	}
}

func TestOverlapAblation(t *testing.T) {
	// Forcing the GDR library to serialise must hurt it; letting the
	// staged library overlap must help it.
	mv2 := tunedMV2(96)
	mv2Serial := mv2
	mv2Serial.Overlap = OverlapNone
	if a, b := run(t, mv2).ImgPerSec, run(t, mv2Serial).ImgPerSec; b >= a {
		t.Errorf("serialised MV2 (%.1f) should be slower than overlapped (%.1f)", b, a)
	}
	spec := defaultSpectrum(96)
	specOverlap := spec
	specOverlap.Overlap = OverlapFull
	if a, b := run(t, spec).ImgPerSec, run(t, specOverlap).ImgPerSec; b <= a {
		t.Errorf("overlapped Spectrum (%.1f) should beat serialised (%.1f)", b, a)
	}
}

func TestCyclicPlacementHurts(t *testing.T) {
	// Round-robin rank placement makes every ring edge cross the NIC
	// (6 concurrent flows per node instead of 1): throughput must
	// drop relative to packed placement.
	packed := tunedMV2(132)
	cyclic := packed
	cyclic.Placement = PlacementCyclic
	// Force a ring so the placement effect hits the main collective.
	packed.Horovod.Algorithm = parseAlg(t, "ring")
	cyclic.Horovod.Algorithm = packed.Horovod.Algorithm
	a, b := run(t, packed), run(t, cyclic)
	if b.AllreduceSec <= a.AllreduceSec {
		t.Fatalf("cyclic placement did not slow the ring: %.4g vs %.4g", b.AllreduceSec, a.AllreduceSec)
	}
}

func TestCyclicPlacementRequiresFullNodes(t *testing.T) {
	cfg := tunedMV2(7) // 7 GPUs → partial node
	cfg.Placement = PlacementCyclic
	if _, err := Run(cfg); err == nil {
		t.Fatal("cyclic placement on partial nodes accepted")
	}
}

func parseAlg(t *testing.T, name string) netmodel.Algorithm {
	t.Helper()
	alg, err := netmodel.AlgorithmByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return alg
}

func TestFP16CompressionReducesAllreduceTime(t *testing.T) {
	plain := defaultSpectrum(96)
	compressed := plain
	compressed.Horovod.FP16Compression = true
	a, b := run(t, plain), run(t, compressed)
	if b.AllreduceSec >= a.AllreduceSec {
		t.Fatalf("compression did not shrink allreduce time: %.4g vs %.4g", b.AllreduceSec, a.AllreduceSec)
	}
	if b.PackSec <= a.PackSec {
		t.Fatalf("compression should add cast-kernel time: %.4g vs %.4g", b.PackSec, a.PackSec)
	}
	// Net effect on the serialised path should be positive.
	if b.ImgPerSec <= a.ImgPerSec {
		t.Fatalf("compression did not help the bandwidth-bound path: %.1f vs %.1f", b.ImgPerSec, a.ImgPerSec)
	}
}

func TestRunSeedsAggregates(t *testing.T) {
	agg, err := RunSeeds(tunedMV2(24), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Runs) != 5 {
		t.Fatalf("%d runs", len(agg.Runs))
	}
	if agg.MeanImgPerSec <= 0 || agg.StdImgPerSec < 0 || agg.CI95ImgPerSec < 0 {
		t.Fatalf("bad aggregate %+v", agg)
	}
	// Seed noise should be small relative to the mean (stable sim).
	if agg.StdImgPerSec > 0.05*agg.MeanImgPerSec {
		t.Fatalf("throughput too noisy: %.2f ± %.2f", agg.MeanImgPerSec, agg.StdImgPerSec)
	}
	// Different seeds really ran: at least two distinct values.
	distinct := map[float64]bool{}
	for _, r := range agg.Runs {
		distinct[r.ImgPerSec] = true
	}
	if len(distinct) < 2 {
		t.Fatal("seed variation had no effect")
	}
	if _, err := RunSeeds(tunedMV2(6), 0); err == nil {
		t.Fatal("zero seed runs accepted")
	}
}

func TestBatchOverrideAndMemoryCap(t *testing.T) {
	cfg := tunedMV2(24)
	cfg.BatchPerGPU = 8 // DLv3+'s memory ceiling
	r8 := run(t, cfg)
	if r8.BatchPer != 8 {
		t.Fatalf("batch override ignored: %d", r8.BatchPer)
	}
	base := run(t, tunedMV2(24)) // batch 4
	// Larger batch amortises per-step overhead → higher throughput.
	if r8.ImgPerSec <= base.ImgPerSec {
		t.Fatalf("batch 8 (%.1f) not above batch 4 (%.1f)", r8.ImgPerSec, base.ImgPerSec)
	}
	// Over the V100 memory ceiling → rejected like an OOM.
	oom := tunedMV2(24)
	oom.BatchPerGPU = 64
	if _, err := Run(oom); err == nil {
		t.Fatal("OOM batch accepted")
	}
}

func TestGradientAccumulationReducesCommTime(t *testing.T) {
	plain := defaultSpectrum(96)
	accum := plain
	accum.Horovod.BackwardPassesPerStep = 4
	a, b := run(t, plain), run(t, accum)
	// Per-step average allreduce time drops ~4× (only every 4th step
	// communicates) and throughput rises on the serialised path.
	if b.AllreduceSec >= a.AllreduceSec/2 {
		t.Fatalf("accumulation barely reduced comm: %.4g vs %.4g", b.AllreduceSec, a.AllreduceSec)
	}
	if b.ImgPerSec <= a.ImgPerSec {
		t.Fatalf("accumulation did not raise throughput: %.1f vs %.1f", b.ImgPerSec, a.ImgPerSec)
	}
}

func TestIOPipelineStalls(t *testing.T) {
	io := iosim.Default()
	withPrefetch := tunedMV2(24)
	withPrefetch.IO = &io
	r := run(t, withPrefetch)
	if r.DataStallSec != 0 {
		t.Fatalf("healthy prefetch pipeline stalled %.4g", r.DataStallSec)
	}

	sync := iosim.Default()
	sync.PrefetchDepth = 0
	noPrefetch := tunedMV2(24)
	noPrefetch.IO = &sync
	r2 := run(t, noPrefetch)
	if r2.DataStallSec <= 0 {
		t.Fatal("synchronous pipeline showed no stall")
	}
	if r2.ImgPerSec >= r.ImgPerSec {
		t.Fatalf("stalled run not slower: %.1f vs %.1f", r2.ImgPerSec, r.ImgPerSec)
	}

	bad := iosim.Default()
	bad.Workers = 0
	broken := tunedMV2(6)
	broken.IO = &bad
	if _, err := Run(broken); err == nil {
		t.Fatal("invalid IO config accepted")
	}
}

func TestResponseCacheReducesNegotiation(t *testing.T) {
	with := tunedMV2(96)
	without := with
	without.Horovod.ResponseCache = false
	a, b := run(t, with), run(t, without)
	if a.NegotiateSec >= b.NegotiateSec {
		t.Errorf("cache did not reduce negotiation: %.4g vs %.4g", a.NegotiateSec, b.NegotiateSec)
	}
}

func TestExposedCommSmallWhenOverlapped(t *testing.T) {
	r := run(t, tunedMV2(132))
	if r.ExposedSec > 0.1*r.AvgStepSec {
		t.Fatalf("tuned MV2 exposes %.1f%% of the step", 100*r.ExposedSec/r.AvgStepSec)
	}
	d := run(t, defaultSpectrum(132))
	if d.ExposedSec < 0.1*d.AvgStepSec {
		t.Fatalf("default Spectrum exposes only %.1f%%", 100*d.ExposedSec/d.AvgStepSec)
	}
}

func TestFusionThresholdChangesBufferCount(t *testing.T) {
	big := tunedMV2(24)
	big.Horovod.FusionThreshold = 256 << 20
	small := tunedMV2(24)
	small.Horovod.FusionThreshold = 1 << 20
	rb, rs := run(t, big), run(t, small)
	if rs.BuffersPerStep <= rb.BuffersPerStep {
		t.Fatalf("smaller threshold should mean more buffers: %.1f vs %.1f", rs.BuffersPerStep, rb.BuffersPerStep)
	}
}

func TestCycleTimeChangesCycleCount(t *testing.T) {
	fast := tunedMV2(24)
	fast.Horovod.CycleTime = time.Millisecond
	slow := tunedMV2(24)
	slow.Horovod.CycleTime = 10 * time.Millisecond
	rf, rs := run(t, fast), run(t, slow)
	if rf.CyclesPerStep <= rs.CyclesPerStep {
		t.Fatalf("shorter cycle should mean more cycles: %.1f vs %.1f", rf.CyclesPerStep, rs.CyclesPerStep)
	}
}

func TestDLv3ScalesBetterThanResNet50(t *testing.T) {
	// T3: the compute-heavy DLv3+ has the friendlier comm/compute
	// ratio, so with a capable library it scales at least as well.
	cfgDL := Config{GPUs: 132, Model: model.DLv3Plus(), MPI: mpiprofile.MV2GDR(), Horovod: horovod.Default(), Seed: 3}
	cfgRN := cfgDL
	cfgRN.Model = model.ResNet50()
	baseDL := run(t, Config{GPUs: 1, Model: model.DLv3Plus(), MPI: mpiprofile.MV2GDR(), Horovod: horovod.Default(), Seed: 3})
	baseRN := run(t, Config{GPUs: 1, Model: model.ResNet50(), MPI: mpiprofile.MV2GDR(), Horovod: horovod.Default(), Seed: 3})
	effDL := run(t, cfgDL).EfficiencyVs(baseDL)
	effRN := run(t, cfgRN).EfficiencyVs(baseRN)
	if effDL < effRN-0.005 {
		t.Fatalf("DLv3+ efficiency %.3f below ResNet-50's %.3f", effDL, effRN)
	}
}

func TestTimelineRecordsHorovodPhases(t *testing.T) {
	rec := timeline.New()
	cfg := defaultSpectrum(24)
	cfg.Timeline = rec
	run(t, cfg)
	b := rec.Breakdown()
	for _, phase := range []string{timeline.PhaseForward, timeline.PhaseBackward, timeline.PhaseNegotiate, timeline.PhaseAllreduce, timeline.PhaseMemcpy} {
		if b[phase] <= 0 {
			t.Errorf("phase %s missing from timeline: %v", phase, b)
		}
	}
}

func TestSlowRankFaultInjection(t *testing.T) {
	// One persistently slow GPU paces the entire 96-GPU job — the
	// defining pathology of synchronous data parallelism.
	healthy := run(t, tunedMV2(96))
	hurt := tunedMV2(96)
	hurt.SlowRanks = 1
	hurt.SlowFactor = 1.25
	slow := run(t, hurt)
	drop := slow.ImgPerSec / healthy.ImgPerSec
	if drop > 0.92 {
		t.Fatalf("one slow rank only dropped throughput to %.2f of healthy", drop)
	}
	// More slow ranks barely matter beyond the first (max already
	// dominated).
	hurt.SlowRanks = 10
	many := run(t, hurt)
	if many.ImgPerSec < slow.ImgPerSec*0.95 {
		t.Fatalf("extra slow ranks changed pacing too much: %.1f vs %.1f", many.ImgPerSec, slow.ImgPerSec)
	}
	// Validation.
	bad := tunedMV2(6)
	bad.SlowRanks = 1
	if _, err := Run(bad); err == nil {
		t.Fatal("slow ranks without factor accepted")
	}
	bad.SlowRanks = 99
	bad.SlowFactor = 1.5
	if _, err := Run(bad); err == nil {
		t.Fatal("more slow ranks than GPUs accepted")
	}
}

// Property: simulator invariants hold across random configurations —
// throughput never exceeds ideal, all time components are
// non-negative, and the books balance.
func TestPropertySimulatorInvariants(t *testing.T) {
	profiles := []func() *mpiprofile.Profile{mpiprofile.Spectrum, mpiprofile.MV2GDR}
	f := func(gpuSel, profSel, fuseSel, cycleSel uint8, hier, cache, comp bool, seed int64) bool {
		gpus := []int{1, 2, 6, 13, 24, 96}[int(gpuSel)%6]
		hvd := horovod.Default()
		hvd.FusionThreshold = []int{0, 1 << 20, 64 << 20}[int(fuseSel)%3]
		hvd.CycleTime = []time.Duration{time.Millisecond, 5 * time.Millisecond, 25 * time.Millisecond}[int(cycleSel)%3]
		hvd.Hierarchical = hier
		hvd.ResponseCache = cache
		hvd.FP16Compression = comp
		cfg := Config{
			GPUs: gpus, Model: model.DLv3Plus(), MPI: profiles[int(profSel)%2](),
			Horovod: hvd, Seed: seed, Steps: 6, WarmupSteps: 1,
		}
		r, err := Run(cfg)
		if err != nil {
			t.Logf("config rejected: %v", err)
			return false
		}
		// Calibration matches the *expected* single-GPU rate; short
		// runs with lucky jitter draws can exceed it by up to the
		// mean-jitter margin (≈3 %), never more.
		ideal := cfg.Model.MeasuredImgPerSec * float64(gpus)
		if r.ImgPerSec <= 0 || r.ImgPerSec > ideal*1.04 {
			t.Logf("throughput %.1f outside (0, %.1f]", r.ImgPerSec, ideal*1.04)
			return false
		}
		for _, v := range []float64{r.ComputeSec, r.NegotiateSec, r.PackSec, r.AllreduceSec, r.ExposedSec, r.DataStallSec} {
			if v < 0 || math.IsNaN(v) {
				t.Logf("negative/NaN component in %+v", r)
				return false
			}
		}
		// The average step can never be shorter than pure compute.
		if r.AvgStepSec < r.ComputeSec*0.99 {
			t.Logf("step %.4f below compute %.4f", r.AvgStepSec, r.ComputeSec)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStepTimesPositiveAndStable(t *testing.T) {
	r := run(t, tunedMV2(48))
	if len(r.StepTimesSec) != DefaultSteps-2 {
		t.Fatalf("%d post-warmup steps", len(r.StepTimesSec))
	}
	for _, s := range r.StepTimesSec {
		if s <= 0 || math.IsNaN(s) {
			t.Fatalf("bad step time %g", s)
		}
		if math.Abs(s-r.AvgStepSec) > 0.3*r.AvgStepSec {
			t.Fatalf("step time %g far from mean %g", s, r.AvgStepSec)
		}
	}
}
