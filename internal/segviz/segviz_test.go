package segviz

import (
	"bytes"
	"image/png"
	"os"
	"path/filepath"
	"testing"

	"segscale/internal/segdata"
	"segscale/internal/tensor"
)

func TestRenderImageBoundsAndRange(t *testing.T) {
	ds := segdata.New(2, 16, 16, 1)
	img, _ := ds.Sample(0)
	out := RenderImage(img)
	if out.Bounds().Dx() != 16 || out.Bounds().Dy() != 16 {
		t.Fatalf("bounds %v", out.Bounds())
	}
}

func TestRenderImageValidatesShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad shape accepted")
		}
	}()
	RenderImage(tensor.New(1, 4, 4))
}

func TestRenderLabelsColours(t *testing.T) {
	labels := []int32{0, 1, segdata.IgnoreLabel, 2}
	out := RenderLabels(labels, 2, 2)
	// Background is black, void is white, classes are distinct.
	if r, g, b, _ := out.At(0, 0).RGBA(); r|g|b != 0 {
		t.Error("background not black")
	}
	if r, _, _, _ := out.At(0, 1).RGBA(); r>>8 != 255 {
		t.Error("void not white")
	}
	c1 := out.At(1, 0)
	c2 := out.At(1, 1)
	if c1 == c2 {
		t.Error("distinct classes share a colour")
	}
}

func TestRenderLabelsValidatesLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad length accepted")
		}
	}()
	RenderLabels([]int32{0}, 2, 2)
}

func TestSideBySideGeometry(t *testing.T) {
	a := RenderLabels(make([]int32, 4*4), 4, 4)
	b := RenderLabels(make([]int32, 4*4), 4, 4)
	out := SideBySide(a, b)
	if out.Bounds().Dx() != 4+2+4 || out.Bounds().Dy() != 4 {
		t.Fatalf("composite bounds %v", out.Bounds())
	}
}

func TestTriptychAndPNGRoundTrip(t *testing.T) {
	ds := segdata.New(2, 16, 16, 5)
	img, gt := ds.Sample(1)
	pred := make([]int32, len(gt))
	tri := Triptych(img, gt, pred)
	if tri.Bounds().Dx() != 16*3+4 {
		t.Fatalf("triptych width %d", tri.Bounds().Dx())
	}

	path := filepath.Join(t.TempDir(), "tri.png")
	if err := WritePNG(path, tri); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := png.Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Bounds() != tri.Bounds() {
		t.Fatal("PNG round trip changed bounds")
	}
}
