// Package segviz renders synthetic-VOC images, label maps, and model
// predictions as PNGs — the qualitative-results counterpart of the
// paper's segmentation figures. It uses only image/png from the
// standard library.
package segviz

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"os"

	"segscale/internal/segdata"
	"segscale/internal/tensor"
)

// classColor returns the display colour of a class label (VOC-style
// palette derived from segdata's class signatures; void is white).
func classColor(label int32) color.RGBA {
	if label == segdata.IgnoreLabel {
		return color.RGBA{255, 255, 255, 255}
	}
	if label == 0 {
		return color.RGBA{0, 0, 0, 255} // background
	}
	p := segdata.Palette(int(label))
	conv := func(v float32) uint8 {
		x := (float64(v) + 1) / 2 * 255
		if x < 0 {
			x = 0
		}
		if x > 255 {
			x = 255
		}
		return uint8(x)
	}
	return color.RGBA{conv(p[0]), conv(p[1]), conv(p[2]), 255}
}

// RenderImage converts a [3,H,W] tensor in roughly [-1,1] to an RGB
// image.
func RenderImage(img *tensor.Tensor) *image.RGBA {
	if len(img.Shape) != 3 || img.Dim(0) != 3 {
		panic(fmt.Sprintf("segviz: want [3,H,W], got %v", img.Shape))
	}
	h, w := img.Dim(1), img.Dim(2)
	out := image.NewRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var rgb [3]uint8
			for c := 0; c < 3; c++ {
				v := (float64(img.At(c, y, x)) + 1) / 2 * 255
				if v < 0 {
					v = 0
				}
				if v > 255 {
					v = 255
				}
				rgb[c] = uint8(v)
			}
			out.SetRGBA(x, y, color.RGBA{rgb[0], rgb[1], rgb[2], 255})
		}
	}
	return out
}

// RenderLabels converts an H·W label map into a colour-coded image.
func RenderLabels(labels []int32, h, w int) *image.RGBA {
	if len(labels) != h*w {
		panic(fmt.Sprintf("segviz: %d labels for %d×%d", len(labels), h, w))
	}
	out := image.NewRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out.SetRGBA(x, y, classColor(labels[y*w+x]))
		}
	}
	return out
}

// SideBySide composes images left-to-right with a 2-pixel separator.
func SideBySide(imgs ...image.Image) *image.RGBA {
	const gap = 2
	w, h := 0, 0
	for _, im := range imgs {
		b := im.Bounds()
		w += b.Dx() + gap
		if b.Dy() > h {
			h = b.Dy()
		}
	}
	w -= gap
	out := image.NewRGBA(image.Rect(0, 0, w, h))
	x := 0
	for _, im := range imgs {
		b := im.Bounds()
		for yy := 0; yy < b.Dy(); yy++ {
			for xx := 0; xx < b.Dx(); xx++ {
				out.Set(x+xx, yy, im.At(b.Min.X+xx, b.Min.Y+yy))
			}
		}
		x += b.Dx() + gap
	}
	return out
}

// WritePNG encodes an image to path.
func WritePNG(path string, img image.Image) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := png.Encode(f, img); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Triptych renders (input, ground truth, prediction) side by side for
// one sample.
func Triptych(img *tensor.Tensor, gt, pred []int32) *image.RGBA {
	h, w := img.Dim(1), img.Dim(2)
	return SideBySide(RenderImage(img), RenderLabels(gt, h, w), RenderLabels(pred, h, w))
}
