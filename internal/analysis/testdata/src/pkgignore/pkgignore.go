// Package pkgignore exercises package-scoped suppression.
//
//seglint:package-ignore flagfuncs fixture package opting out wholesale
package pkgignore

func FlagSuppressed() {}

func FlagSuppressedToo() {}
