package fileignore

// FlagVisible is in a sibling file without the file-ignore, so the
// suppression must not bleed across files.
func FlagVisible() {} // want "flagged function FlagVisible"
