// Package fileignore exercises file-scoped suppression.
package fileignore

//seglint:file-ignore flagfuncs this whole file is generated-style and exempt

func FlagHidden() {}

func FlagAlsoHidden() {}
