// Package lineignore exercises line-scoped suppression.
package lineignore

// FlagOne is caught.
func FlagOne() {} // want "flagged function FlagOne"

//seglint:ignore flagfuncs justified exception recorded here
func FlagTwo() {}

// FlagThree is caught again — the ignore above did not leak.
func FlagThree() {} // want "flagged function FlagThree"

//seglint:ignore all the wildcard form also works
func FlagFour() {}
