package analysis_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"segscale/internal/analysis"
)

// mkFlagger builds a toy analyzer under the given name that flags
// every Flag* function declaration — two instances let the tests
// exercise multi-analyzer ignore lists.
func mkFlagger(name string) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: name,
		Doc:  "test analyzer flagging Flag* function declarations",
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok && strings.HasPrefix(fd.Name.Name, "Flag") {
						pass.Reportf(fd.Pos(), "flagged function %s", fd.Name.Name)
					}
				}
			}
			return nil
		},
	}
}

// parsePkg builds an analysis.Package from in-memory source. The toy
// analyzers are purely syntactic, so no type checking is needed.
func parsePkg(t *testing.T, name, src string) *analysis.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, name+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &analysis.Package{Path: name, Fset: fset, Files: []*ast.File{f}}
}

// TestIgnoreMultiAnalyzerList covers one ignore line naming several
// analyzers: both named passes are silenced, unnamed ones are not.
func TestIgnoreMultiAnalyzerList(t *testing.T) {
	src := `package p

//seglint:ignore alpha,beta both toy passes fire here by design
func FlagBoth() {}

//seglint:ignore alpha only alpha is justified
func FlagAlphaOnly() {}

func FlagNeither() {}
`
	pkg := parsePkg(t, "multi", src)
	alpha, beta := mkFlagger("alpha"), mkFlagger("beta")
	fs, err := analysis.RunWith([]*analysis.Package{pkg}, []*analysis.Analyzer{alpha, beta}, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range fs {
		got = append(got, f.Analyzer+":"+fieldAfter(f.Message, "function "))
	}
	// Position-sorted: FlagAlphaOnly (earlier line) precedes
	// FlagNeither, where both analyzers fire in name order.
	want := []string{"beta:FlagAlphaOnly", "alpha:FlagNeither", "beta:FlagNeither"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("findings = %v, want %v", got, want)
	}
}

func fieldAfter(s, sep string) string {
	if i := strings.Index(s, sep); i >= 0 {
		return s[i+len(sep):]
	}
	return s
}

// TestIgnoreTrailingAndAboveForms covers the two placement styles:
// a trailing same-line comment and a comment on the line above both
// suppress, a comment two lines above does not.
func TestIgnoreTrailingAndAboveForms(t *testing.T) {
	src := `package p

func FlagTrailing() {} //seglint:ignore alpha trailing form

//seglint:ignore alpha line-above form
func FlagAbove() {}

//seglint:ignore alpha too far away

func FlagGap() {}
`
	pkg := parsePkg(t, "forms", src)
	fs, err := analysis.RunWith([]*analysis.Package{pkg}, []*analysis.Analyzer{mkFlagger("alpha")}, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || !strings.Contains(fs[0].Message, "FlagGap") {
		t.Errorf("findings = %v, want exactly FlagGap", fs)
	}
}

// TestCheckSuppressionsFlagsMissingReasons covers the -suppressions
// hygiene mode: every directive kind with an empty reason is reported
// under the unsuppressible suppressreason analyzer, and a justified
// directive is not.
func TestCheckSuppressionsFlagsMissingReasons(t *testing.T) {
	src := `package p

//seglint:ignore alpha
func FlagBare() {}

//seglint:ignore alpha a recorded justification
func FlagJustified() {}

func helper() {} //seglint:file-ignore beta
`
	pkg := parsePkg(t, "hygiene", src)
	fs, err := analysis.RunWith([]*analysis.Package{pkg}, nil, analysis.Options{CheckSuppressions: true})
	if err != nil {
		t.Fatal(err)
	}
	var lines []int
	for _, f := range fs {
		if f.Analyzer != analysis.SuppressHygieneAnalyzer {
			t.Errorf("unexpected analyzer %q in suppression-hygiene run", f.Analyzer)
		}
		lines = append(lines, f.Line)
	}
	if fmt.Sprint(lines) != fmt.Sprint([]int{3, 9}) {
		t.Errorf("reason-less directives at lines %v, want [3 9]", lines)
	}
}

// TestSuppressReasonIsUnsuppressible: a suppression cannot vouch for
// itself — even a package-wide ignore-all must not hide the hygiene
// findings about reason-less directives.
func TestSuppressReasonIsUnsuppressible(t *testing.T) {
	src := `package p

//seglint:package-ignore all blanket ignore for this fixture

//seglint:ignore alpha
func FlagStill() {}
`
	pkg := parsePkg(t, "unsup", src)
	fs, err := analysis.RunWith([]*analysis.Package{pkg}, []*analysis.Analyzer{mkFlagger("alpha")}, analysis.Options{CheckSuppressions: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].Analyzer != analysis.SuppressHygieneAnalyzer || fs[0].Line != 5 {
		t.Errorf("findings = %v, want one suppressreason at line 5", fs)
	}
}

// TestHotpathDirectiveIsNotASuppression: //seglint:hotpath marks a
// root for the hotalloc pass; it must neither silence findings on the
// function it annotates nor trip the reason-hygiene check.
func TestHotpathDirectiveIsNotASuppression(t *testing.T) {
	src := `package p

//seglint:hotpath toy root annotation
func FlagHot() {}
`
	pkg := parsePkg(t, "hot", src)
	fs, err := analysis.RunWith([]*analysis.Package{pkg}, []*analysis.Analyzer{mkFlagger("alpha")}, analysis.Options{CheckSuppressions: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].Analyzer != "alpha" || !strings.Contains(fs[0].Message, "FlagHot") {
		t.Errorf("findings = %v, want exactly alpha on FlagHot", fs)
	}
}
