package hot

import "helper"

var sink float64

//seglint:hotpath fixture inner loop; must stay allocation-free
func Step(xs []float64) {
	buf := make([]float64, 8) // want "make allocates on a hot path"
	_ = buf
	ok := make([]float64, 8) //seglint:ignore hotalloc fixture proves per-site suppression
	_ = ok
	sink = helper.Sum(xs)
	helper.Alloc(4) // cross-package: the finding lands in helper
	n := 0
	fn := func() { n++ } // want "closure capturing outer variables"
	fn()                 // want "call through a function value"
	spawn(xs)
	guard(xs)
}

// spawn is hot via Step; launching a goroutine allocates its stack.
func spawn(xs []float64) {
	go drain(xs) // want "goroutine launch allocates"
}

func drain(xs []float64) { sink = helper.Sum(xs) }

// guard panics on bad input: the branch ends in panic, so it is a cold
// region and its allocations (the formatted message) are exempt.
func guard(xs []float64) {
	if len(xs) == 0 {
		panic("hot: empty input " + "detail") // concat in a cold region: no finding
	}
}

// Box is hot via the root below; boxing an int into any allocates.
//
//seglint:hotpath fixture boxing root
func Box(n int) {
	var v any
	v = n // want "boxed into any"
	_ = v
}

// NotHot is unannotated and unreachable from any root, so it may
// allocate freely.
func NotHot() []int { return make([]int, 3) }
