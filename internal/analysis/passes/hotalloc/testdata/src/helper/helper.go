package helper

// Alloc builds a fresh slice per call. It is only flagged because the
// hot fixture package reaches it from a //seglint:hotpath root — the
// finding lands here, at the allocation, with the chain in the
// message.
func Alloc(n int) []float64 {
	return make([]float64, n) // want "make allocates on a hot path"
}

// Sum is allocation-free and safe to call from a hot path.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}
