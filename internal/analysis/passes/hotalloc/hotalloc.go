// Package hotalloc defines an Analyzer that enforces allocation-free
// hot paths. A function annotated
//
//	//seglint:hotpath <why>
//
// in its doc comment — the train step, the matmul/conv kernels, the
// eval PredictInto chain, the collective pack/unpack — and everything
// it transitively calls must not allocate: no make/new/append, no
// slice or map literals, no capturing closures, no goroutine launches,
// no interface boxing, no string concatenation, no calls into external
// functions that are not on the allocation-free whitelist. The
// reachability comes from the whole-repo fact database, so a helper
// three calls deep in another package is checked from the annotated
// entry point, and each finding names the root and call chain that
// made the site hot.
//
// Cold regions — panic arguments and if/case branches that end by
// panicking or returning an error — are exempt: invariant guards and
// error construction never run in steady state, and forcing them
// allocation-free would only make failures less diagnosable.
//
// Accepted allocations (amortised pool growth, per-launch parallel
// closures) are suppressed per site with //seglint:ignore hotalloc and
// a reason.
package hotalloc

import (
	"go/ast"
	"go/types"

	"segscale/internal/analysis"
)

// Analyzer flags allocation sites reachable from //seglint:hotpath
// roots.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "functions annotated //seglint:hotpath and everything they transitively call " +
		"must be allocation-free; flags make/new/append/literals/closures/boxing/goroutines, " +
		"calls into external functions assumed to allocate, and dynamic calls that cannot be verified",
	Run: run,
}

func run(pass *analysis.Pass) error {
	db := pass.Facts
	if db == nil {
		return nil // no cross-function facts: nothing can be proven hot
	}
	hot := db.HotSet()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			chain, isHot := hot[fn]
			if !isHot {
				continue
			}
			fi := db.Info(fn)
			if fi == nil {
				continue
			}
			via := chain.Describe()
			for _, s := range fi.Allocs {
				pass.Reportf(s.Pos, "%s on a hot path (%s)", s.Desc, via)
			}
			for _, s := range fi.ExtCalls {
				pass.Reportf(s.Pos, "%s on a hot path (%s)", s.Desc, via)
			}
			for _, s := range fi.DynCalls {
				pass.Reportf(s.Pos, "%s on a hot path cannot be verified allocation-free (%s)", s.Desc, via)
			}
		}
	}
	return nil
}
