package hotalloc_test

import (
	"testing"

	"segscale/internal/analysis/analysistest"
	"segscale/internal/analysis/passes/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer, "hot", "helper")
}
