package des

import "time"

// Elapsed mixes wall-clock reads into what should be virtual time.
func Elapsed() float64 {
	start := time.Now()                // want "wall-clock time.Now in simulation package \"des\""
	time.Sleep(time.Millisecond)       // want "wall-clock time.Sleep"
	return time.Since(start).Seconds() // want "wall-clock time.Since"
}

// Timer arms wall-clock timers, which a DES must never do.
func Timer(fn func()) {
	time.AfterFunc(time.Second, fn) // want "wall-clock time.AfterFunc"
	<-time.After(time.Second)       // want "wall-clock time.After"
}

// Blessed demonstrates a justified suppression: the constant-only use
// below is fine anyway, and the suppressed read is invisible.
func Blessed() float64 {
	d := time.Millisecond // constants carry no clock and are allowed
	//seglint:ignore nowallclock demonstration of a recorded justification
	_ = time.Now()
	return d.Seconds()
}
