// Package tooling is not a simulation package, so wall-clock use is
// allowed — CLIs legitimately time themselves.
package tooling

import "time"

// Stopwatch times a function with the real clock.
func Stopwatch(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}
