// Package nowallclock forbids wall-clock time in simulation packages.
//
// The reproduction's throughput and scaling numbers come from a
// discrete-event simulation whose clock is des.Sim.Now — virtual
// float64 seconds advanced only by the event queue. A single
// time.Now() or time.Sleep() in a simulation package either leaks
// nondeterminism into results or silently measures host speed instead
// of modelled Summit speed, so the wall clock is banned there
// outright. Command-line tools and examples may still time themselves.
package nowallclock

import (
	"go/ast"

	"segscale/internal/analysis"
)

// simPackages are the package base names that must run on virtual
// time only.
var simPackages = map[string]bool{
	"des":       true,
	"perfsim":   true,
	"netsim":    true,
	"iosim":     true,
	"devsim":    true,
	"timeline":  true,
	"telemetry": true,
}

// banned are the time-package functions that read or wait on the wall
// clock. Constants like time.Millisecond and pure formatting stay
// allowed.
var banned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// Analyzer is the nowallclock pass.
var Analyzer = &analysis.Analyzer{
	Name: "nowallclock",
	Doc: "forbid time.Now/time.Since/time.Sleep and other wall-clock reads in " +
		"simulation packages (des, perfsim, netsim, iosim, devsim, timeline, " +
		"telemetry); simulated components must use the DES virtual clock",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !simPackages[pass.PkgBase()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !banned[sel.Sel.Name] {
				return true
			}
			if pass.PkgNameOf(id) == "time" {
				pass.Reportf(sel.Pos(),
					"wall-clock time.%s in simulation package %q; use the des.Sim virtual clock",
					sel.Sel.Name, pass.PkgBase())
			}
			return true
		})
	}
	return nil
}
