package nowallclock_test

import (
	"testing"

	"segscale/internal/analysis/analysistest"
	"segscale/internal/analysis/passes/nowallclock"
)

func TestNoWallClock(t *testing.T) {
	analysistest.Run(t, "testdata", nowallclock.Analyzer, "des", "tooling")
}
