// Package nopanic flags panic calls on exported API paths of the
// packages other code builds on: internal/collective, internal/des,
// and pkg/summitseg.
//
// A collective that panics on a length mismatch takes down all ranks
// of an in-process world with a stack trace instead of an error a
// caller could attribute and wrap; the public summitseg facade must
// never panic at all. The pass flags panic() inside exported functions
// and methods, and inside unexported package functions reachable from
// them (transitively, by direct call), steering those paths toward
// returned errors.
//
// Deliberate invariant guards — e.g. the DES scheduler rejecting
// schedule-in-the-past, which indicates a modelling bug and must stop
// the simulation — stay allowed via an inline suppression that records
// the justification:
//
//	//seglint:ignore nopanic scheduling in the past is a modelling bug
package nopanic

import (
	"go/ast"

	"segscale/internal/analysis"
)

// targetPackages are the API packages whose exported paths must not
// panic.
var targetPackages = map[string]bool{
	"collective": true,
	"des":        true,
	"summitseg":  true,
}

// Analyzer is the nopanic pass.
var Analyzer = &analysis.Analyzer{
	Name: "nopanic",
	Doc: "flag panic() reachable from exported functions of internal/collective, " +
		"internal/des, and pkg/summitseg; exported APIs should return wrapped " +
		"errors (or carry a //seglint:ignore nopanic justification for true invariants)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !targetPackages[pass.PkgBase()] {
		return nil
	}

	// Gather all top-level function declarations across the package.
	funcs := map[string]*ast.FuncDecl{} // plain functions by name
	var exported []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv == nil {
				funcs[fd.Name.Name] = fd
			}
			if fd.Name.IsExported() && (fd.Recv == nil || receiverExported(fd)) {
				exported = append(exported, fd)
			}
		}
	}

	// Reachability: exported declarations seed a worklist; direct calls
	// to unexported package functions extend it transitively.
	reachable := map[*ast.FuncDecl]string{} // decl -> exported entry point
	var work []*ast.FuncDecl
	for _, fd := range exported {
		reachable[fd] = fd.Name.Name
		work = append(work, fd)
	}
	for len(work) > 0 {
		fd := work[0]
		work = work[1:]
		entry := reachable[fd]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			callee, ok := funcs[id.Name]
			if !ok || callee.Name.IsExported() {
				return true
			}
			if _, seen := reachable[callee]; !seen {
				reachable[callee] = entry
				work = append(work, callee)
			}
			return true
		})
	}

	for fd, entry := range reachable {
		via := ""
		if fd.Name.Name != entry {
			via = " (reachable from exported " + entry + ")"
		}
		name := fd.Name.Name
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || !pass.IsBuiltin(id, "panic") {
				return true
			}
			pass.Reportf(call.Pos(),
				"panic in %s%s is on an exported API path; return a wrapped error instead",
				name, via)
			return true
		})
	}
	return nil
}

// receiverExported reports whether a method's receiver base type is
// exported — methods on unexported types are not part of the package
// API surface.
func receiverExported(fd *ast.FuncDecl) bool {
	if len(fd.Recv.List) == 0 {
		return false
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
