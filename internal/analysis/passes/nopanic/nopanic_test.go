package nopanic_test

import (
	"testing"

	"segscale/internal/analysis/analysistest"
	"segscale/internal/analysis/passes/nopanic"
)

func TestNoPanic(t *testing.T) {
	analysistest.Run(t, "testdata", nopanic.Analyzer, "collective", "helperpkg")
}
