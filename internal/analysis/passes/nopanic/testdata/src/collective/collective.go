// Package collective (fixture) exercises the exported-path panic ban,
// including reachability through unexported helpers.
package collective

import "fmt"

// indexIn is unexported but called from exported entry points, so its
// panic is on the API path.
func indexIn(group []int, rank int) int {
	for i, r := range group {
		if r == rank {
			return i
		}
	}
	panic(fmt.Sprintf("rank %d not in group", rank)) // want "panic in indexIn \\(reachable from exported Allreduce\\)"
}

// deepHelper is reached only through another helper — transitive
// reachability must still catch it.
func deepHelper(n int) {
	if n < 0 {
		panic("negative") // want "panic in deepHelper \\(reachable from exported Allreduce\\)"
	}
}

func midHelper(n int) { deepHelper(n) }

// Allreduce is the exported entry point.
func Allreduce(group []int, rank int, buf []float32) {
	me := indexIn(group, rank)
	midHelper(me)
	if len(buf) == 0 {
		panic("empty buffer") // want "panic in Allreduce is on an exported API path"
	}
}

// Comm is an exported type; its exported methods are API surface.
type Comm struct{ rank int }

// Rank panics on an exported method.
func (c *Comm) Rank() int {
	if c == nil {
		panic("nil comm") // want "panic in Rank is on an exported API path"
	}
	return c.rank
}

// orphan panics but is unreachable from any exported function, so it
// is not flagged.
func orphan() { panic("never on the API path") }

// validate returns errors the way exported paths should.
func validate(n int) error {
	if n < 0 {
		return fmt.Errorf("collective: %d ranks", n)
	}
	_ = orphan
	return nil
}

// Validate wraps validate and stays clean.
func Validate(n int) error {
	if err := validate(n); err != nil {
		return fmt.Errorf("validate: %w", err)
	}
	return nil
}

// Checked demonstrates the documented-invariant escape hatch.
func Checked(step int) {
	if step < 0 {
		//seglint:ignore nopanic negative step indicates caller corruption, documented invariant
		panic("corrupted step counter")
	}
}
