// Package helperpkg is outside the nopanic target set; panics here
// are not flagged.
package helperpkg

// Must panics freely — this package is not part of the guarded API.
func Must(err error) {
	if err != nil {
		panic(err)
	}
}
