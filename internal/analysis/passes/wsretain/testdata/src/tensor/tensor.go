// Package tensor is a minimal stand-in for the real arena: the
// wsretain pass matches Workspace by package basename and type name,
// so fixtures exercise the same resolution path as product code.
package tensor

// Tensor is a shaped float buffer.
type Tensor struct {
	Data  []float64
	Shape []int
}

// Workspace vends tensors that are only valid until the next Reset.
type Workspace struct{ lent []*Tensor }

// NewWorkspace returns an empty arena.
func NewWorkspace() *Workspace { return &Workspace{} }

// Get vends a zeroed tensor.
func (w *Workspace) Get(dims ...int) *Tensor { return w.GetRaw(dims...) }

// GetRaw vends a tensor with unspecified contents.
func (w *Workspace) GetRaw(dims ...int) *Tensor {
	n := 1
	for _, d := range dims {
		n *= d
	}
	t := &Tensor{Data: make([]float64, n), Shape: dims}
	w.lent = append(w.lent, t)
	return t
}

// Put returns a tensor early.
func (w *Workspace) Put(t *Tensor) {}

// Reset recycles every outstanding tensor.
func (w *Workspace) Reset() { w.lent = w.lent[:0] }
