package wshot

import (
	"tensor"
	"wsstash"
)

var cache *tensor.Tensor

// StoreGlobal leaks a vended tensor into package-level state, which
// survives Reset and silently aliases recycled memory.
func StoreGlobal(ws *tensor.Workspace) {
	t := ws.GetRaw(4)
	cache = t // want "stored into package-level cache"
}

// Spawn leaks a vended tensor into a goroutine that may outlive the
// step.
func Spawn(ws *tensor.Workspace, done chan struct{}) {
	t := ws.GetRaw(4)
	go func() {
		t.Data[0] = 1 // want "captured by a goroutine"
		close(done)
	}()
}

// VendAndReturn returns a vended tensor without Reset — legal; the
// fact database records the "vends" fact so callers are tracked.
func VendAndReturn(ws *tensor.Workspace) *tensor.Tensor {
	return ws.GetRaw(8)
}

// ResetAndReturn returns a tensor it has already recycled.
func ResetAndReturn(ws *tensor.Workspace) *tensor.Tensor {
	t := ws.GetRaw(8)
	ws.Reset()
	return t // want "returned across the step boundary"
}

// Stash hands a vended tensor (obtained through the vends fact, not a
// direct Get) to a cross-package retainer.
func Stash(ws *tensor.Workspace) {
	t := VendAndReturn(ws)
	wsstash.Retain(t) // want "retains argument 0"
}

// Layer caches activations in receiver fields — the intra-step idiom
// the pass deliberately allows (fields are re-vended every step).
type Layer struct {
	ws  *tensor.Workspace
	act *tensor.Tensor
}

// Forward stores into a receiver field and returns it: no findings.
func (l *Layer) Forward() *tensor.Tensor {
	l.act = l.ws.GetRaw(16)
	return l.act
}

// Justified demonstrates a per-site suppression with a reason.
func Justified(ws *tensor.Workspace) {
	t := ws.GetRaw(4)
	//seglint:ignore wsretain fixture: buffer is copied before Reset in the same frame
	cache = t
}
