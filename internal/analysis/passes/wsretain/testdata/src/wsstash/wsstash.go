package wsstash

import "tensor"

var held *tensor.Tensor

// Retain parks its argument in package state. The store of a plain
// parameter is not a finding here — it becomes a "retains argument 0"
// fact, and callers handing over arena-vended tensors are flagged at
// the hand-off, across the package boundary.
func Retain(t *tensor.Tensor) {
	held = t
}
