package wsretain_test

import (
	"testing"

	"segscale/internal/analysis/analysistest"
	"segscale/internal/analysis/passes/wsretain"
)

func TestWSRetain(t *testing.T) {
	analysistest.Run(t, "testdata", wsretain.Analyzer, "wshot", "wsstash", "tensor")
}
