// Package wsretain defines an Analyzer that guards the workspace
// arena's aliasing contract: a tensor vended by tensor.Workspace
// (Get/GetRaw) is owned by the arena and reclaimed wholesale at the
// next Reset, so it must not outlive the step that drew it. The pass
// flags three escapes of vended values:
//
//   - stores into package-level state (directly or through fields or
//     elements of a global), which survive Reset and silently alias
//     recycled memory;
//   - captures by (or arguments to) goroutines, which may still be
//     running when Reset recycles the buffer;
//   - returns from a function that itself calls Reset — the caller
//     receives a tensor that is already dead.
//
// Returning a vended tensor without calling Reset is legal and common
// (Conv2DWS and friends vend their outputs); the fact database records
// it as a "vends" fact so callers' escapes are tracked too. Likewise a
// function that stores a parameter into long-lived state exports a
// "retains" fact, and passing a vended tensor to it is flagged at the
// hand-off — across package boundaries. Receiver-field stores are
// deliberately exempt: the nn layers cache vended activations in
// fields intra-step by design, and those fields are re-vended from the
// warm arena every step.
package wsretain

import (
	"go/ast"
	"go/types"

	"segscale/internal/analysis"
)

// Analyzer flags workspace-vended tensors escaping the step boundary.
var Analyzer = &analysis.Analyzer{
	Name: "wsretain",
	Doc: "tensors vended by tensor.Workspace must not escape the step: no package-level stores, " +
		"no goroutine captures, no returning past the function's own Reset, no hand-off to callees " +
		"that retain their argument",
	Run: run,
}

func run(pass *analysis.Pass) error {
	db := pass.Facts
	if db == nil {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := db.Info(fn)
			if fi == nil {
				continue
			}
			a := db.AnalyzeWorkspace(fi)
			for _, esc := range a.Escapes {
				if !esc.Vended {
					continue // a retained parameter is a fact, not a finding here
				}
				pass.Reportf(esc.Pos, "workspace-vended tensor %s; arena memory is recycled at Reset", esc.Desc)
			}
			if a.CallsReset {
				for _, pos := range a.VendedReturns {
					pass.Reportf(pos, "workspace-vended tensor returned across the step boundary: "+
						"%s calls Reset, so the caller receives recycled arena memory", fn.Name())
				}
			}
		}
	}
	return nil
}
