// Package metricname enforces the telemetry metric naming convention
// at registration call sites.
//
// Every metric registered through telemetry's Probe or Registry
// (Counter, Gauge, Histogram) must be named in snake_case and end in
// a unit suffix (_seconds, _bytes, _total, _ratio, _ops, _events).
// The registry already panics on a bad name at runtime, but an
// instrumented path that only fires under an optional collector can
// hide a bad name until production; this pass moves the failure to
// lint time. It also requires the name to be a compile-time constant:
// dynamic names defeat static auditing of the metric namespace and
// allocate in hot paths.
//
// The telemetry package itself is exempt — its internals forward
// caller-supplied names through helper layers.
package metricname

import (
	"go/ast"
	"go/constant"
	"go/types"

	"segscale/internal/analysis"
	"segscale/internal/telemetry"
)

// registrars are the metric-creating method names on telemetry.Probe
// and telemetry.Registry whose first argument is the metric name.
var registrars = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

// Analyzer is the metricname pass.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc: "require metric names at telemetry Counter/Gauge/Histogram registration " +
		"sites to be compile-time constants in snake_case with a unit suffix " +
		"(_seconds, _bytes, _total, _ratio, _ops, _events)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.PkgBase() == "telemetry" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !registrars[sel.Sel.Name] || len(call.Args) == 0 {
				return true
			}
			if !isTelemetryRegistrar(pass, sel) {
				return true
			}
			arg := call.Args[0]
			tv, ok := pass.TypesInfo.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(),
					"metric name passed to %s must be a compile-time string constant so the metric namespace stays statically auditable",
					sel.Sel.Name)
				return true
			}
			name := constant.StringVal(tv.Value)
			if !telemetry.ValidMetricName(name) {
				pass.Reportf(arg.Pos(),
					"metric name %q violates the naming convention: snake_case with a unit suffix from %v",
					name, telemetry.MetricSuffixes)
			}
			return true
		})
	}
	return nil
}

// isTelemetryRegistrar reports whether the selector resolves to a
// method on telemetry's Probe or Registry (directly or through a
// pointer). Matching is by package base name so the analysistest
// fixture's bare "telemetry" package qualifies like the real import
// path does.
func isTelemetryRegistrar(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return false // qualified call like pkg.Func, not a method
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if base(named.Obj().Pkg().Path()) != "telemetry" {
		return false
	}
	switch named.Obj().Name() {
	case "Probe", "Registry":
		return true
	}
	return false
}

func base(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
