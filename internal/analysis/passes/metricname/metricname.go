// Package metricname enforces the telemetry metric naming convention
// at registration call sites.
//
// Every metric registered through telemetry's Probe or Registry
// (Counter, Gauge, Histogram) must be named in snake_case and end in
// a unit suffix (_seconds, _bytes, _total, _ratio, _ops, _events, _norm).
// The registry already panics on a bad name at runtime, but an
// instrumented path that only fires under an optional collector can
// hide a bad name until production; this pass moves the failure to
// lint time. It also requires the name to be a compile-time constant:
// dynamic names defeat static auditing of the metric namespace and
// allocate in hot paths.
//
// The pass also sees through one level of intra-package forwarding:
// a function that passes one of its own string parameters straight
// through as a registrar's name argument (the shape observability
// helpers take) is itself treated as a registrar, and its call sites
// are held to the same constant-name rule — while the pass-through
// call inside the forwarder is excused.
//
// The telemetry package itself is exempt — its internals forward
// caller-supplied names through helper layers.
package metricname

import (
	"go/ast"
	"go/constant"
	"go/types"

	"segscale/internal/analysis"
	"segscale/internal/telemetry"
)

// registrars are the metric-creating method names on telemetry.Probe
// and telemetry.Registry whose first argument is the metric name.
var registrars = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

// Analyzer is the metricname pass.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc: "require metric names at telemetry Counter/Gauge/Histogram registration " +
		"sites to be compile-time constants in snake_case with a unit suffix " +
		"(_seconds, _bytes, _total, _ratio, _ops, _events, _norm)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.PkgBase() == "telemetry" {
		return nil
	}
	forwarders := findForwarders(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn, idx := calledForwarder(pass, call, forwarders); fn != nil && idx < len(call.Args) {
				checkName(pass, call.Args[idx], fn.Name())
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !registrars[sel.Sel.Name] || len(call.Args) == 0 {
				return true
			}
			if !isTelemetryRegistrar(pass, sel) {
				return true
			}
			if isForwardedParam(pass, call.Args[0], forwarders) {
				return true // checked at the forwarder's own call sites
			}
			checkName(pass, call.Args[0], sel.Sel.Name)
			return true
		})
	}
	return nil
}

// checkName enforces the constant-and-convention rule on one name
// argument of a registrar (or registrar-forwarder) named callee.
func checkName(pass *analysis.Pass, arg ast.Expr, callee string) {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(arg.Pos(),
			"metric name passed to %s must be a compile-time string constant so the metric namespace stays statically auditable",
			callee)
		return
	}
	name := constant.StringVal(tv.Value)
	if !telemetry.ValidMetricName(name) {
		pass.Reportf(arg.Pos(),
			"metric name %q violates the naming convention: snake_case with a unit suffix from %v",
			name, telemetry.MetricSuffixes)
	}
}

// findForwarders scans the package for functions that pass one of
// their own string parameters directly as the name argument of a
// telemetry registrar — one level deep, intra-package only. It maps
// each such function to the index of the forwarded parameter.
func findForwarders(pass *analysis.Pass) map[*types.Func]int {
	out := map[*types.Func]int{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Type.Params == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			params := map[types.Object]int{}
			idx := 0
			for _, field := range fd.Type.Params.List {
				for _, name := range field.Names {
					if po := pass.TypesInfo.Defs[name]; po != nil {
						if basic, ok := po.Type().Underlying().(*types.Basic); ok && basic.Kind() == types.String {
							params[po] = idx
						}
					}
					idx++
				}
			}
			if len(params) == 0 {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !registrars[sel.Sel.Name] || !isTelemetryRegistrar(pass, sel) {
					return true
				}
				id, ok := call.Args[0].(*ast.Ident)
				if !ok {
					return true
				}
				if pidx, ok := params[pass.TypesInfo.Uses[id]]; ok {
					out[obj] = pidx
				}
				return true
			})
		}
	}
	return out
}

// calledForwarder resolves a call's callee to a known forwarder,
// returning it and the name-parameter index.
func calledForwarder(pass *analysis.Pass, call *ast.CallExpr, fw map[*types.Func]int) (*types.Func, int) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil, 0
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return nil, 0
	}
	if idx, ok := fw[fn]; ok {
		return fn, idx
	}
	return nil, 0
}

// isForwardedParam reports whether arg is an identifier bound to a
// parameter some forwarder passes through — the one registrar call
// site the pass excuses.
func isForwardedParam(pass *analysis.Pass, arg ast.Expr, fw map[*types.Func]int) bool {
	id, ok := arg.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return false
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	// A parameter object's parent scope is a function body; confirm it
	// belongs to a recorded forwarder by matching signature parameters.
	for fn := range fw {
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		for i := 0; i < sig.Params().Len(); i++ {
			if sig.Params().At(i) == v {
				return true
			}
		}
	}
	return false
}

// isTelemetryRegistrar reports whether the selector resolves to a
// method on telemetry's Probe or Registry (directly or through a
// pointer). Matching is by package base name so the analysistest
// fixture's bare "telemetry" package qualifies like the real import
// path does.
func isTelemetryRegistrar(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return false // qualified call like pkg.Func, not a method
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if base(named.Obj().Pkg().Path()) != "telemetry" {
		return false
	}
	switch named.Obj().Name() {
	case "Probe", "Registry":
		return true
	}
	return false
}

func base(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
