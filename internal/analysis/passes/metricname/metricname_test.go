package metricname_test

import (
	"testing"

	"segscale/internal/analysis/analysistest"
	"segscale/internal/analysis/passes/metricname"
)

func TestMetricName(t *testing.T) {
	analysistest.Run(t, "testdata", metricname.Analyzer, "trainpkg", "telemetry", "obspkg")
}
