// Package telemetry (fixture) mirrors the real registration surface:
// the pass matches methods on Probe and Registry by type and package
// name, so this stand-in exercises it without importing the real
// module. The package itself is exempt from the pass — forward, a
// helper below, proves that.
package telemetry

// Counter, Gauge, and Histogram are opaque instrument handles.
type (
	Counter   struct{}
	Gauge     struct{}
	Histogram struct{}
)

// Inc increments (fixture no-op).
func (c *Counter) Inc() {}

// Probe is the per-lane instrumentation handle.
type Probe struct{}

// Counter registers a counter.
func (p *Probe) Counter(name string) *Counter { return &Counter{} }

// Gauge registers a gauge.
func (p *Probe) Gauge(name string) *Gauge { return &Gauge{} }

// Histogram registers a histogram.
func (p *Probe) Histogram(name string, buckets []float64) *Histogram { return &Histogram{} }

// Registry is the per-lane metric store.
type Registry struct{}

// Counter registers a counter.
func (r *Registry) Counter(name string) *Counter { return &Counter{} }

// Gauge registers a gauge.
func (r *Registry) Gauge(name string) *Gauge { return &Gauge{} }

// Histogram registers a histogram.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram { return &Histogram{} }

// forward passes a caller-supplied name through — allowed here
// because the telemetry package itself is exempt.
func forward(r *Registry, name string) *Counter { return r.Counter(name) }
