// Package trainpkg (fixture) exercises the metric-name contract the
// way instrumented training code registers metrics.
package trainpkg

import "telemetry"

// bucket ladder for the histogram sites.
var buckets = []float64{0.001, 0.01, 0.1}

func instrument(p *telemetry.Probe, r *telemetry.Registry, dynamic string) {
	// Well-formed names pass.
	p.Counter("train_steps_total").Inc()
	p.Gauge("fusion_fill_ratio")
	p.Histogram("step_seconds", buckets)
	r.Counter("wire_bytes")

	// A named constant is still statically auditable.
	const queued = "queue_depth_events"
	r.Gauge(queued)

	p.Counter("TrainSteps")      // want "violates the naming convention"
	p.Counter("train_step")      // want "violates the naming convention"
	p.Gauge("train__fill_ratio") // want "violates the naming convention"
	p.Histogram("_seconds", nil) // want "violates the naming convention"
	r.Counter("1st_rank_total")  // want "violates the naming convention"
	p.Counter("step-seconds")    // want "violates the naming convention"
	// Passing the string parameter straight through makes instrument a
	// forwarder: this site is excused and the rule moves to instrument's
	// own call sites (see callsInstrument).
	p.Counter(dynamic)
	p.Counter("steps_" + dynamic) // want "compile-time string constant"
	p.Gauge(pick(true))           // want "compile-time string constant"
	//seglint:ignore metricname legacy dashboard consumes this exact name
	p.Counter("legacySpelling")
}

// callsInstrument shows the forwarded name being audited where it is
// actually chosen.
func callsInstrument(p *telemetry.Probe, r *telemetry.Registry, dyn string) {
	instrument(p, r, "lane_steps_total")
	instrument(p, r, "LaneSteps") // want "violates the naming convention"
	instrument(p, r, dyn)         // want "compile-time string constant"
}

func pick(a bool) string {
	if a {
		return "a_total"
	}
	return "b_total"
}

// decoy has the same method names on an unrelated type; the pass must
// not flag it.
type decoy struct{}

func (decoy) Counter(name string) int { return 0 }

func unrelated() {
	var d decoy
	d.Counter("NotAMetric")
}
