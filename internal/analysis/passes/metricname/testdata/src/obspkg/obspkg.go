// Package obspkg (fixture) exercises the forwarder extension the way
// the live observability plane wraps registration: helpers that pass
// a caller-supplied name straight through to a registrar are treated
// as registrars themselves.
package obspkg

import "telemetry"

// gauge forwards its name parameter to the registrar; the pass holds
// its call sites to the naming rule and excuses the pass-through.
func gauge(p *telemetry.Probe, name string) *telemetry.Gauge {
	return p.Gauge(name)
}

// plane is a method-shaped forwarder host.
type plane struct{ probe *telemetry.Probe }

func (pl *plane) counter(name string) *telemetry.Counter {
	return pl.probe.Counter(name)
}

// renamed takes a string param but derives the metric name itself;
// it is NOT a forwarder and its internal constant is checked.
func renamed(p *telemetry.Probe, lane string) {
	p.Counter("obs_events_total").Inc()
}

func wire(p *telemetry.Probe, dynamic string) {
	_ = gauge(p, "obs_scaling_efficiency_ratio")
	gauge(p, "ObsEfficiency") // want "violates the naming convention"
	gauge(p, dynamic)         // want "compile-time string constant"

	pl := &plane{probe: p}
	pl.counter("obs_alerts_total")
	pl.counter("obs_alerts") // want "violates the naming convention"

	renamed(p, dynamic) // fine: not a forwarder

	// Direct registration in an instrumented package stays covered.
	p.Gauge("obs_worst_zscore") // want "violates the naming convention"
}
