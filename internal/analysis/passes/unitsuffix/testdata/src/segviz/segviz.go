// Package segviz (fixture) is outside the target set: unlabelled
// floats here are not the perf model's problem.
package segviz

// Gamma has no unit suffix and that is fine outside the model packages.
const Gamma = 2.2

// Palette is float-heavy and exempt.
type Palette struct {
	Hue        float64
	Saturation float64
}
