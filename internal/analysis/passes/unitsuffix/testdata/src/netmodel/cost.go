// Package netmodel (fixture) exercises the unit-suffix contract on
// the kind of α–β cost model the real package implements.
package netmodel

// latency is seconds but does not say so.
const latency = 1.4e-6 // want "const latency is float-typed"

// alphaSec and bwGBps carry their units and pass.
const (
	alphaSec = 1.4e-6
	bwGBps   = 12.5
)

// eagerLimit is an int: counts and byte thresholds typed as integers
// are exempt by design.
const eagerLimit = 64 << 10

// Link models one edge of the fabric.
type Link struct {
	Alpha      float64 // want "field Alpha is float-typed"
	BWGBps     float64
	RndvSec    float64
	Util       float64 // want "field Util is float-typed"
	LoadFactor float64
	Hops       int // integer counts are exempt
	StepsSec   []float64
	History    []float64 // want "field History is float-typed"
}

// perStep rates and dimensionless suffixes are accepted.
type stats struct {
	CyclesPerStep float64
	jitterStd     float64
	DropFrac      float64
	raw           float64 // want "field raw is float-typed"
}

//seglint:ignore unitsuffix calibration scalar, unit recorded in the doc comment
var calibration = 0.97
