package unitsuffix_test

import (
	"testing"

	"segscale/internal/analysis/analysistest"
	"segscale/internal/analysis/passes/unitsuffix"
)

func TestUnitSuffix(t *testing.T) {
	analysistest.Run(t, "testdata", unitsuffix.Analyzer, "netmodel", "segviz")
}
