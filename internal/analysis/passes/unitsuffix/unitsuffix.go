// Package unitsuffix enforces unit-bearing names for floating-point
// quantities in the performance-model packages.
//
// The latency/bandwidth models mix seconds, microseconds, bytes,
// GB/s, and img/s in adjacent expressions; the classic failure mode is
// an unlabelled float silently crossing units (a µs latency added to a
// seconds total, a GB/s bandwidth divided into a byte count twice).
// The pass therefore requires every float-typed struct field and
// package-level const/var in perfsim, netmodel, and collective to end
// in a recognised unit (Sec, US, Bytes, GBps, Imgs, ...) or rate/
// dimensionless suffix (PerSec, PerStep, Factor, Frac, Ratio, ...).
//
// Integer declarations are exempt by design: ints are counts (ranks,
// steps, indices), and counts are dimensionless. Locals and parameters
// are also exempt — the contract matters at declarations that outlive
// one function.
package unitsuffix

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"segscale/internal/analysis"
)

// targetPackages are the quantity-heavy model packages the pass
// applies to.
var targetPackages = map[string]bool{
	"perfsim":    true,
	"netmodel":   true,
	"collective": true,
}

// suffixes are the accepted unit endings. Rate suffixes (PerSec,
// PerStep, PerRank) count as unit-bearing; dimensionless suffixes
// (Factor, Frac, Ratio, Pct, Prob, Std) mark deliberate unitless
// quantities.
var suffixes = []string{
	"Sec", "Secs", "USec", "US", "MS", "NS", "Min", "Hz", "GHz", "MHz",
	"Bytes", "KB", "MB", "GB", "KiB", "MiB", "GiB", "Bits",
	"GBps", "MBps", "Gbps", "Mbps", "Bps",
	"Flops", "Imgs", "Pixels",
	"PerSec", "PerStep", "PerRank", "PerImg",
	"Factor", "Frac", "Fraction", "Ratio", "Pct", "Percent", "Prob", "Std",
}

// Analyzer is the unitsuffix pass.
var Analyzer = &analysis.Analyzer{
	Name: "unitsuffix",
	Doc: "require unit suffixes (Sec, US, Bytes, GBps, Imgs, ...) on float-typed " +
		"struct fields and package-level consts/vars in perfsim, netmodel, and " +
		"collective, so latency/bandwidth units cannot silently mix",
	Run: run,
}

func hasUnitSuffix(name string) bool {
	for _, s := range suffixes {
		if strings.HasSuffix(name, s) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !targetPackages[pass.PkgBase()] {
		return nil
	}
	for _, f := range pass.Files {
		// Package-level consts and vars.
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || (gd.Tok != token.CONST && gd.Tok != token.VAR) {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					check(pass, name, gd.Tok.String())
				}
			}
		}
		// Struct fields, wherever the struct type appears.
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					check(pass, name, "field")
				}
			}
			return true
		})
	}
	return nil
}

// check reports the declaration when it is float-typed (scalar, or a
// slice/array of floats) and its name lacks a unit suffix.
func check(pass *analysis.Pass, id *ast.Ident, kind string) {
	if id.Name == "_" || hasUnitSuffix(id.Name) {
		return
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		return
	}
	if !isFloaty(obj.Type()) {
		return
	}
	pass.Reportf(id.Pos(),
		"%s %s is float-typed but its name carries no unit suffix (Sec, US, Bytes, GBps, Imgs, PerSec, Factor, ...); encode the unit in the name",
		kind, id.Name)
}

func isFloaty(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsFloat != 0
	case *types.Slice:
		return isFloaty(u.Elem())
	case *types.Array:
		return isFloaty(u.Elem())
	}
	return false
}
