// Package seededrand forbids the global math/rand functions in
// non-test code.
//
// Every stochastic element of the reproduction — straggler jitter,
// bootstrap confidence intervals, synthetic dataset pixels — must draw
// from an injected, explicitly seeded *rand.Rand so that two runs with
// the same seed produce byte-identical results. The package-level
// math/rand functions share hidden global state (and rand.Seed mutates
// it for everyone), which is exactly the nondeterminism the repro band
// cannot absorb. Constructors (rand.New, rand.NewSource, rand.NewZipf)
// remain allowed: they are how the injected generators get built.
package seededrand

import (
	"go/ast"

	"segscale/internal/analysis"
)

// allowed are the math/rand names that construct or type injected
// generators rather than touching the global one.
var allowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
	"Rand":       true, // the *rand.Rand type in signatures
	"Source":     true,
	"Zipf":       true,
	"PCG":        true,
	"ChaCha8":    true,
}

// Analyzer is the seededrand pass.
var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc: "forbid global math/rand top-level functions and rand.Seed in non-test " +
		"code; inject a seeded *rand.Rand so runs stay reproducible",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || allowed[sel.Sel.Name] {
				return true
			}
			switch pass.PkgNameOf(id) {
			case "math/rand", "math/rand/v2":
			default:
				return true
			}
			name := sel.Sel.Name
			if name == "Seed" {
				pass.Reportf(sel.Pos(),
					"rand.Seed mutates the shared global generator; construct rand.New(rand.NewSource(seed)) instead")
				return true
			}
			pass.Reportf(sel.Pos(),
				"global math/rand.%s uses hidden shared state and breaks run reproducibility; use an injected seeded *rand.Rand",
				name)
			return true
		})
	}
	return nil
}
