// Package jitter exercises the global-rand ban in a package that
// should inject a seeded generator.
package jitter

import "math/rand"

// Bad draws from the shared global generator.
func Bad() float64 {
	rand.Seed(42)                      // want "rand.Seed mutates the shared global generator"
	v := rand.Float64()                // want "global math/rand.Float64"
	v += float64(rand.Intn(10))        // want "global math/rand.Intn"
	rand.Shuffle(3, func(i, j int) {}) // want "global math/rand.Shuffle"
	return v
}

// BadRef passes a global-rand function value around.
var BadRef = rand.NormFloat64 // want "global math/rand.NormFloat64"

// Good injects a seeded generator — the pattern the pass demands.
func Good(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// Justified shows a recorded suppression for a deliberate exception.
func Justified() int {
	//seglint:ignore seededrand demonstration fixture for the suppression syntax
	return rand.Int()
}
