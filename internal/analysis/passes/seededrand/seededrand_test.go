package seededrand_test

import (
	"testing"

	"segscale/internal/analysis/analysistest"
	"segscale/internal/analysis/passes/seededrand"
)

func TestSeededRand(t *testing.T) {
	analysistest.Run(t, "testdata", seededrand.Analyzer, "jitter")
}
