// Package perfsim shares its basename with a deterministic target
// package, so the maporder pass is active here.
package perfsim

import (
	"detutil"
	"sort"
)

// Gather folds floats in map order: flagged directly.
func Gather(m map[int]float64) float64 {
	var s float64
	for _, v := range m { // want "order-sensitive map iteration"
		s += v
	}
	return s
}

// Sorted collects then sorts: allowed.
func Sorted(m map[int]float64) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

// Count folds an integer: order-insensitive, allowed.
func Count(m map[int]bool) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Fold reaches the order-sensitive iteration through a helper in a
// non-deterministic package: flagged at the call site.
func Fold(m map[string]float64) float64 {
	return detutil.SumVals(m) // want "reaches an order-sensitive map iteration"
}

// Names calls an order-insensitive helper: allowed.
func Names(m map[string]float64) []string {
	return detutil.Keys(m)
}

// Smoke demonstrates a justified per-site suppression.
func Smoke(m map[int]float64) float64 {
	var s float64
	//seglint:ignore maporder fixture: diagnostic-only aggregate, never committed
	for _, v := range m {
		s += v
	}
	return s
}
