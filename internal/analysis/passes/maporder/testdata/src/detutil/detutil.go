package detutil

import "sort"

// SumVals folds float values in map iteration order — order-sensitive
// (IEEE addition is non-associative). This package is not a
// deterministic target, so the finding surfaces at call sites in
// deterministic packages instead.
func SumVals(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}

// Keys collects and sorts — the allowed idiom.
func Keys(m map[string]float64) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
