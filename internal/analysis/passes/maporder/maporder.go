// Package maporder defines an Analyzer that keeps order-sensitive map
// iteration out of the deterministic packages. Go randomises map
// iteration order per range statement, so any computation in des,
// collective, horovod, train, perfsim, or faultinject whose result
// depends on that order breaks the restart-equivalence and chaos
// goldens the paper's numbers rest on.
//
// Not every map range is flagged: a loop body that only collects keys
// or values into a slice (for a later sort), deletes entries, or folds
// an integer/boolean aggregate (counters, bitmask unions) is
// order-insensitive and allowed — that is the standard
// collect-then-sort idiom. Anything else is flagged, including float
// accumulation: IEEE addition is non-associative, so summing map
// values in random order is not bit-stable.
//
// The check is transitive through the whole-repo fact database: a call
// from a deterministic package into a helper (in any package) that
// ranges over a map order-sensitively is reported at the call site —
// unless the helper itself lives in a deterministic package, where the
// range is already reported at its source.
package maporder

import (
	"go/ast"
	"go/types"
	"strings"

	"segscale/internal/analysis"
)

// deterministic names the package basenames whose output feeds
// committed goldens and must be bit-identical across runs.
var deterministic = map[string]bool{
	"des":         true,
	"collective":  true,
	"horovod":     true,
	"train":       true,
	"perfsim":     true,
	"faultinject": true,
}

// Analyzer flags order-sensitive map iteration reachable from the
// deterministic packages.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "deterministic packages (des, collective, horovod, train, perfsim, faultinject) must not " +
		"iterate maps order-sensitively, directly or through callees; collect-and-sort, delete, " +
		"and integer/bool folds are allowed",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !deterministic[pass.PkgBase()] {
		return nil
	}
	db := pass.Facts
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := db.Info(fn)
			if fi == nil {
				continue
			}
			for _, s := range fi.MapRanges {
				pass.Reportf(s.Pos, "order-sensitive map iteration in deterministic package %s; "+
					"collect and sort the keys instead", pass.PkgBase())
			}
			for _, e := range fi.Callees {
				callee := db.Info(e.Callee)
				if callee == nil {
					continue
				}
				if deterministic[pkgBaseOf(callee.Pkg.Path)] {
					continue // the callee's own package reports it
				}
				if _, owner, path, ok := db.MapRangeReach(e.Callee); ok {
					if ofi := db.Info(owner); ofi != nil && deterministic[pkgBaseOf(ofi.Pkg.Path)] {
						continue // the range is reported at its source
					}
					chain := e.Callee.Name()
					if len(path) > 0 {
						chain += " → " + strings.Join(path, " → ")
					}
					pass.Reportf(e.Pos, "call from deterministic package %s reaches an order-sensitive "+
						"map iteration in %s (via %s)", pass.PkgBase(), owner.FullName(), chain)
				}
			}
		}
	}
	return nil
}

func pkgBaseOf(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
