package maporder_test

import (
	"testing"

	"segscale/internal/analysis/analysistest"
	"segscale/internal/analysis/passes/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", maporder.Analyzer, "perfsim", "detutil")
}
