// Package analysis is a self-contained reimplementation of the
// golang.org/x/tools/go/analysis programming model, built only on the
// standard library so the repository needs no external module to lint
// itself. It exists because the paper's reproduction is only credible
// while every simulated component stays deterministic: the custom
// passes under internal/analysis/passes guard the DES virtual clock,
// seeded RNG discipline, unit-suffixed quantity names, and error-based
// APIs that the perf results depend on.
//
// The model mirrors x/tools deliberately — an Analyzer owns a Run
// function over a Pass, the Pass reports Diagnostics — so the passes
// can migrate to the upstream framework wholesale if the dependency
// ever becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the pass in findings, suppression comments, and
	// the seglint -list output. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description shown by seglint -list.
	Doc string
	// Run executes the pass over one package and reports findings via
	// pass.Report. The returned error aborts the whole lint run and is
	// reserved for internal failures, not findings.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an
// Analyzer's Run function.
type Pass struct {
	Analyzer *Analyzer

	// Path is the package's import path ("segscale/internal/des"), or
	// its bare directory name for analysistest fixtures ("des").
	Path string
	// Fset maps token.Pos values in Files to file positions.
	Fset *token.FileSet
	// Files holds the package's non-test source files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records type and object resolution for Files.
	TypesInfo *types.Info
	// Facts is the whole-repo fact database (call graph, per-function
	// allocation/map-order/workspace facts) built over every loaded
	// package — not just this one — so passes can reason across
	// package boundaries. Nil when the runner was given no facts;
	// cross-function passes must tolerate that by degrading to
	// package-local behaviour or reporting nothing.
	Facts *FactDB

	report func(Diagnostic)
}

// Diagnostic is a single finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report emits one diagnostic. Suppression comments are applied by the
// runner, not here.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf is Report with fmt.Sprintf formatting.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// PkgNameOf resolves an identifier to the import path of the package
// it names, or "" when the identifier is not a package name. This is
// the sound way to recognise `time.Now` — it survives import renames
// and local shadowing, unlike matching the literal text "time".
func (p *Pass) PkgNameOf(id *ast.Ident) string {
	if obj, ok := p.TypesInfo.Uses[id].(*types.PkgName); ok {
		return obj.Imported().Path()
	}
	return ""
}

// IsBuiltin reports whether the identifier resolves to the universe
// builtin of that name (e.g. the real panic, not a shadowing func).
func (p *Pass) IsBuiltin(id *ast.Ident, name string) bool {
	if id.Name != name {
		return false
	}
	_, ok := p.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// PkgBase returns the last path element of the pass's package path —
// the name passes use to scope themselves to simulator packages.
func (p *Pass) PkgBase() string {
	path := p.Path
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
