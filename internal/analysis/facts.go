package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// This file is the cross-function half of the framework: a whole-repo
// call graph over the loaded packages, per-function facts exported by
// the fact generators below ("allocates", "ranges-over-map",
// "vends-workspace-buffer", "retains-workspace-arg"), and transitive
// queries the hotalloc / maporder / wsretain passes are built on.
// Facts propagate across package boundaries because the FactDB is
// built over every package the loader has type-checked — not just the
// one a Pass is currently looking at — so a helper three calls deep in
// another package that allocates or iterates a map is visible from the
// annotated entry point.
//
// The graph is static: direct calls resolve through the type-checker's
// object resolution, interface method calls are expanded to every
// in-repo concrete implementation (class-hierarchy analysis), and
// calls through plain function values stay unresolved (the hotalloc
// pass surfaces those as unverifiable rather than guessing).

// HotPathDirective marks a function as an allocation-free hot-path
// root in its doc comment:
//
//	//seglint:hotpath <why this path must stay allocation-free>
//
// The function and everything it transitively calls (outside cold
// panic/error-construction regions) must be allocation-free; the
// hotalloc pass enforces it.
const HotPathDirective = "//seglint:hotpath"

// Site is one classified source position a fact refers to.
type Site struct {
	Pos  token.Pos
	Kind string // "make", "append", "closure", "go", "boxing", ...
	Desc string // human-readable detail for the finding message
}

// CalleeEdge is one static call-graph edge out of a function.
type CalleeEdge struct {
	Pos    token.Pos
	Callee *types.Func
	// Cold marks edges inside panic arguments or error-construction
	// branches; the hot-path traversal does not follow them.
	Cold bool
	// Via names how the edge was resolved ("" for a direct call,
	// "interface <name>" for a CHA-expanded dynamic call).
	Via string
}

// FuncInfo carries one function's locally-generated facts.
type FuncInfo struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	// HotPath is set by a //seglint:hotpath doc-comment directive.
	HotPath       bool
	HotPathReason string

	// Allocs are direct allocation sites outside cold regions.
	Allocs []Site
	// ExtCalls are calls (outside cold regions) into functions whose
	// body the loader cannot see and that are not on the
	// allocation-free whitelist — assumed to allocate.
	ExtCalls []Site
	// DynCalls are unresolvable dynamic calls (function values) in hot
	// regions.
	DynCalls []Site
	// MapRanges are order-sensitive map iterations: range statements
	// over a map whose body does more than collect keys/values or
	// fold an order-insensitive integer/bool aggregate.
	MapRanges []Site
	// Callees are the function's static call-graph edges.
	Callees []CalleeEdge

	// RetainedParams lists parameter indices the function stores into
	// state that outlives the step: a package-level variable, a
	// goroutine, or a callee that transitively does either.
	RetainedParams []int
	// Vends reports that the function returns a tensor vended by a
	// tensor.Workspace (directly or through a vending callee) — the
	// value is arena-owned and dies at the next Reset.
	Vends bool
	// CallsReset reports that the function calls Workspace.Reset —
	// it is a step boundary for the wsretain pass.
	CallsReset bool
}

// FactDB is the whole-repo fact database passes query.
type FactDB struct {
	fset *token.FileSet
	fns  map[*types.Func]*FuncInfo
	// named holds every named (non-interface) type in the loaded
	// packages, for class-hierarchy resolution of interface calls.
	named []*types.Named

	implMemo map[*types.Func][]*types.Func

	hotOnce bool
	hot     map[*types.Func]*HotChain

	mapMemo map[*types.Func]*mapReach
}

// HotChain records how a function became hot-path: the annotated root
// and the call path from it.
type HotChain struct {
	Root *types.Func
	Path []string // function names from the root, excluding the root
}

// Describe renders the chain for a finding message.
func (h *HotChain) Describe() string {
	root := h.Root.Name()
	if len(h.Path) == 0 {
		return fmt.Sprintf("//seglint:hotpath %s", root)
	}
	return fmt.Sprintf("//seglint:hotpath %s via %s", root, strings.Join(h.Path, " → "))
}

type mapReach struct {
	done bool
	site Site
	fn   *types.Func // function owning the site
	path []string
	ok   bool
}

// BuildFactDB generates local facts for every function of the given
// packages, links the call graph, and runs the workspace vend/retain
// fixpoints. Passes receive the database through Pass.Facts.
func BuildFactDB(pkgs []*Package) *FactDB {
	db := &FactDB{
		fns:      map[*types.Func]*FuncInfo{},
		implMemo: map[*types.Func][]*types.Func{},
		mapMemo:  map[*types.Func]*mapReach{},
	}
	if len(pkgs) > 0 {
		db.fset = pkgs[0].Fset
	}
	// Index declarations and named types first so call resolution can
	// tell in-repo functions from externals.
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
				if n, ok := tn.Type().(*types.Named); ok && !types.IsInterface(n) {
					db.named = append(db.named, n)
				}
			}
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Fn: fn, Decl: fd, Pkg: pkg}
				fi.HotPath, fi.HotPathReason = hotPathDirective(fd)
				db.fns[fn] = fi
			}
		}
	}
	for _, fi := range db.fns {
		db.generateLocalFacts(fi)
	}
	db.workspaceFixpoint()
	return db
}

// Info returns the facts for fn, or nil for functions outside the
// loaded packages.
func (db *FactDB) Info(fn *types.Func) *FuncInfo {
	if db == nil {
		return nil
	}
	return db.fns[fn]
}

// hotPathDirective scans a function's doc comment for
// //seglint:hotpath.
func hotPathDirective(fd *ast.FuncDecl) (bool, string) {
	if fd.Doc == nil {
		return false, ""
	}
	for _, c := range fd.Doc.List {
		if rest, ok := strings.CutPrefix(c.Text, HotPathDirective); ok {
			return true, strings.TrimSpace(rest)
		}
	}
	return false, ""
}

// ---------------------------------------------------------------------
// Local fact generation

// allocFreePkgs are external packages whose functions are trusted not
// to allocate (pure math and atomics).
var allocFreePkgs = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
}

// allocFreeFuncs whitelists individual external functions/methods by
// full name, for externals that are allocation-free but live in
// packages that are not.
var allocFreeFuncs = map[string]bool{
	"(*sync.Mutex).Lock":      true,
	"(*sync.Mutex).Unlock":    true,
	"(*sync.Mutex).TryLock":   true,
	"(*sync.RWMutex).Lock":    true,
	"(*sync.RWMutex).Unlock":  true,
	"(*sync.RWMutex).RLock":   true,
	"(*sync.RWMutex).RUnlock": true,
	"(*sync.WaitGroup).Add":   true,
	"(*sync.WaitGroup).Done":  true,
	"(*sync.WaitGroup).Wait":  true,
	"(*sync.Map).Load":        true,
	"(time.Duration).Seconds": true,
	"sort.SearchInts":         true,
	"sort.Search":             true,
	"sort.SearchFloat64s":     true,
	"runtime.GOMAXPROCS":      true,
	// math/rand draws (and in-place reseeding) mutate internal state
	// without allocating.
	"(*math/rand.Rand).Float64":     true,
	"(*math/rand.Rand).Float32":     true,
	"(*math/rand.Rand).Int63":       true,
	"(*math/rand.Rand).Int63n":      true,
	"(*math/rand.Rand).Intn":        true,
	"(*math/rand.Rand).Uint64":      true,
	"(*math/rand.Rand).NormFloat64": true,
	"(*math/rand.Rand).Seed":        true,
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorValue reports whether e's static type is (or implements)
// error and e is not the nil literal — the shape of an error being
// constructed or propagated.
func isErrorValue(info *types.Info, e ast.Expr) bool {
	if id, ok := e.(*ast.Ident); ok && id.Name == "nil" {
		return false
	}
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if tup, ok := t.(*types.Tuple); ok { // return f() forwarding multiple results
		for i := 0; i < tup.Len(); i++ {
			if types.Implements(tup.At(i).Type(), errorIface) {
				return true
			}
		}
		return false
	}
	return types.Implements(t, errorIface)
}

// coldTerminated reports whether a statement list ends by panicking or
// by returning an error — the shape of an invariant guard or an
// error-construction branch, which the steady-state hot path never
// executes.
func coldTerminated(info *types.Info, stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ExprStmt:
		return isPanicCall(info, last.X)
	case *ast.ReturnStmt:
		for _, r := range last.Results {
			if isErrorValue(info, r) {
				return true
			}
		}
	}
	return false
}

func isPanicCall(info *types.Info, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// generateLocalFacts walks one function body, classifying allocation
// sites, call edges, and map iterations, with cold-region exclusion.
func (db *FactDB) generateLocalFacts(fi *FuncInfo) {
	info := fi.Pkg.Info

	// Pre-pass: mark the roots of cold subtrees — panic calls (their
	// arguments are error formatting), and if/case branches that end
	// in panic or an error return.
	coldRoots := map[ast.Node]bool{}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if coldTerminated(info, n.Body.List) {
				coldRoots[n.Body] = true
			}
			if eb, ok := n.Else.(*ast.BlockStmt); ok && coldTerminated(info, eb.List) {
				coldRoots[eb] = true
			}
		case *ast.CaseClause:
			if coldTerminated(info, n.Body) {
				coldRoots[n] = true
			}
		case *ast.CommClause:
			if coldTerminated(info, n.Body) {
				coldRoots[n] = true
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if isErrorValue(info, r) {
					coldRoots[n] = true
					break
				}
			}
		case *ast.CallExpr:
			if isPanicCall(info, n) {
				coldRoots[n] = true
			}
		}
		return true
	})

	// Main walk with an explicit cold stack (ast.Inspect signals
	// subtree exit with a nil node).
	var stack []bool
	cold := false
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			cold = len(stack) > 0 && stack[len(stack)-1]
			return true
		}
		cold = cold || coldRoots[n]
		stack = append(stack, cold)

		switch n := n.(type) {
		case *ast.CallExpr:
			db.classifyCall(fi, n, cold)
		case *ast.GoStmt:
			if !cold {
				fi.Allocs = append(fi.Allocs, Site{Pos: n.Pos(), Kind: "go",
					Desc: "goroutine launch allocates a stack"})
			}
		case *ast.FuncLit:
			if !cold && capturesOuter(info, n) {
				fi.Allocs = append(fi.Allocs, Site{Pos: n.Pos(), Kind: "closure",
					Desc: "closure capturing outer variables is heap-allocated"})
			}
		case *ast.CompositeLit:
			if !cold {
				if t := info.Types[n].Type; t != nil {
					switch t.Underlying().(type) {
					case *types.Slice:
						fi.Allocs = append(fi.Allocs, Site{Pos: n.Pos(), Kind: "literal",
							Desc: "slice literal allocates its backing array"})
					case *types.Map:
						fi.Allocs = append(fi.Allocs, Site{Pos: n.Pos(), Kind: "literal",
							Desc: "map literal allocates"})
					}
				}
			}
		case *ast.UnaryExpr:
			if !cold && n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					fi.Allocs = append(fi.Allocs, Site{Pos: n.Pos(), Kind: "literal",
						Desc: "&composite literal escapes to the heap"})
				}
			}
		case *ast.BinaryExpr:
			if !cold && n.Op == token.ADD {
				if t := info.Types[n].Type; t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						fi.Allocs = append(fi.Allocs, Site{Pos: n.Pos(), Kind: "concat",
							Desc: "string concatenation allocates"})
					}
				}
			}
		case *ast.RangeStmt:
			if t := info.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					if !orderInsensitiveBody(info, n.Body.List) {
						fi.MapRanges = append(fi.MapRanges, Site{Pos: n.Pos(), Kind: "maprange",
							Desc: "map iteration order is randomised"})
					}
				}
			}
		case *ast.AssignStmt:
			if !cold {
				db.checkBoxing(fi, assignPairs(info, n))
			}
		case *ast.ReturnStmt:
			if !cold {
				db.checkBoxing(fi, returnPairs(info, fi, n))
			}
		}
		return true
	})
}

// classifyCall resolves one call expression into a graph edge, an
// allocation site, or an external/dynamic record.
func (db *FactDB) classifyCall(fi *FuncInfo, call *ast.CallExpr, cold bool) {
	info := fi.Pkg.Info

	// Type conversions: T(x) parses as a call.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if !cold && conversionAllocates(info, call, tv.Type) {
			fi.Allocs = append(fi.Allocs, Site{Pos: call.Pos(), Kind: "convert",
				Desc: "conversion copies into a fresh allocation"})
		}
		return
	}

	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	case *ast.FuncLit:
		return // immediately-invoked literal: body walked in place
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := fun.X.(*ast.Ident); ok {
			obj = info.Uses[id]
		}
	}

	if b, ok := obj.(*types.Builtin); ok {
		if cold {
			return
		}
		switch b.Name() {
		case "make":
			fi.Allocs = append(fi.Allocs, Site{Pos: call.Pos(), Kind: "make",
				Desc: "make allocates"})
		case "new":
			fi.Allocs = append(fi.Allocs, Site{Pos: call.Pos(), Kind: "new",
				Desc: "new allocates"})
		case "append":
			fi.Allocs = append(fi.Allocs, Site{Pos: call.Pos(), Kind: "append",
				Desc: "append may grow its backing array"})
		}
		return
	}

	fn, ok := obj.(*types.Func)
	if !ok {
		// Call through a function value / struct field / parameter:
		// statically unresolvable.
		if !cold {
			fi.DynCalls = append(fi.DynCalls, Site{Pos: call.Pos(), Kind: "dynamic",
				Desc: "call through a function value"})
		}
		return
	}

	if _, inRepo := db.fns[fn]; inRepo {
		fi.Callees = append(fi.Callees, CalleeEdge{Pos: call.Pos(), Callee: fn, Cold: cold})
		if !cold {
			db.checkBoxing(fi, callArgPairs(info, fn, call))
		}
		return
	}

	// Interface method: expand to every in-repo implementation (CHA).
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		impls := db.implementers(fn)
		if len(impls) > 0 {
			for _, impl := range impls {
				fi.Callees = append(fi.Callees, CalleeEdge{
					Pos: call.Pos(), Callee: impl, Cold: cold,
					Via: "interface " + fn.Name(),
				})
			}
			return
		}
		if !cold {
			fi.DynCalls = append(fi.DynCalls, Site{Pos: call.Pos(), Kind: "dynamic",
				Desc: fmt.Sprintf("interface call %s has no in-repo implementation", fn.Name())})
		}
		return
	}

	// External function with no loadable body: trust the whitelist,
	// assume allocation otherwise.
	if cold {
		return
	}
	if pkg := fn.Pkg(); pkg != nil {
		if allocFreePkgs[pkg.Path()] || allocFreeFuncs[fn.FullName()] {
			return
		}
		fi.ExtCalls = append(fi.ExtCalls, Site{Pos: call.Pos(), Kind: "external",
			Desc: fmt.Sprintf("call into %s (external, assumed to allocate)", fn.FullName())})
	}
}

// conversionAllocates reports whether a conversion to target copies
// data into a fresh heap allocation: string↔[]byte/[]rune and
// conversions producing a slice.
func conversionAllocates(info *types.Info, call *ast.CallExpr, target types.Type) bool {
	if len(call.Args) != 1 {
		return false
	}
	src := info.Types[call.Args[0]].Type
	if src == nil {
		return false
	}
	switch t := target.Underlying().(type) {
	case *types.Slice:
		// []byte(string), []rune(string), and slice-type changes.
		if b, ok := src.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
			return true
		}
		_ = t
		return false
	case *types.Basic:
		if t.Info()&types.IsString != 0 {
			if _, ok := src.Underlying().(*types.Slice); ok {
				return true // string([]byte) copies
			}
		}
	}
	return false
}

// capturesOuter reports whether a function literal references
// variables declared outside it (a capturing closure, which the
// compiler heap-allocates).
func capturesOuter(info *types.Info, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.Pkg() == nil {
			return true
		}
		// Package-level variables are not captures; a variable whose
		// declaration lies outside the literal's extent is.
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = true
		}
		return true
	})
	return captured
}

// boxPair is a (value, destination type) pair checked for interface
// boxing.
type boxPair struct {
	expr ast.Expr
	dst  types.Type
}

// checkBoxing records interface-boxing allocations: a non-pointer
// concrete value converted to an interface type is heap-boxed.
func (db *FactDB) checkBoxing(fi *FuncInfo, pairs []boxPair) {
	info := fi.Pkg.Info
	for _, p := range pairs {
		if p.dst == nil || !types.IsInterface(p.dst) {
			continue
		}
		tv, ok := info.Types[p.expr]
		if !ok || tv.Type == nil || tv.IsNil() {
			continue
		}
		src := tv.Type
		if types.IsInterface(src) {
			continue
		}
		switch src.Underlying().(type) {
		case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
			continue // pointer-shaped: fits the interface word, no box
		}
		fi.Allocs = append(fi.Allocs, Site{Pos: p.expr.Pos(), Kind: "boxing",
			Desc: fmt.Sprintf("%s value boxed into %s allocates", src, p.dst)})
	}
}

func assignPairs(info *types.Info, n *ast.AssignStmt) []boxPair {
	if len(n.Lhs) != len(n.Rhs) {
		return nil
	}
	var out []boxPair
	for i := range n.Lhs {
		if lt, ok := info.Types[n.Lhs[i]]; ok && lt.Type != nil {
			out = append(out, boxPair{expr: n.Rhs[i], dst: lt.Type})
		}
	}
	return out
}

func returnPairs(info *types.Info, fi *FuncInfo, n *ast.ReturnStmt) []boxPair {
	sig, ok := fi.Fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != len(n.Results) {
		return nil
	}
	var out []boxPair
	for i, r := range n.Results {
		out = append(out, boxPair{expr: r, dst: sig.Results().At(i).Type()})
	}
	return out
}

func callArgPairs(info *types.Info, fn *types.Func, call *ast.CallExpr) []boxPair {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	params := sig.Params()
	var out []boxPair
	for i, arg := range call.Args {
		var dst types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			dst = params.At(i).Type()
		case sig.Variadic() && call.Ellipsis == token.NoPos:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				dst = s.Elem()
			}
		}
		if dst != nil {
			out = append(out, boxPair{expr: arg, dst: dst})
		}
	}
	return out
}

// orderInsensitiveBody reports whether a map-range body is one of the
// shapes whose result cannot depend on iteration order: collecting
// keys/values into a slice (to be sorted by the caller), deleting
// entries, or folding integer/boolean aggregates (+=, |=, &=, ^=,
// counters). Float accumulation is NOT order-insensitive — IEEE
// addition is non-associative, so summing map values in random order
// breaks bit-identity — and anything with control flow is flagged.
func orderInsensitiveBody(info *types.Info, stmts []ast.Stmt) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.AssignStmt:
			if !orderInsensitiveAssign(info, s) {
				return false
			}
		case *ast.IncDecStmt:
			if !integerTyped(info, s.X) {
				return false
			}
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok {
				return false
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "delete" {
				return false
			}
			if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
				return false
			}
		case *ast.EmptyStmt:
		default:
			return false
		}
	}
	return true
}

func orderInsensitiveAssign(info *types.Info, s *ast.AssignStmt) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
		// s = append(s, ...) — collecting for a later sort.
		call, ok := s.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "append" {
			return false
		}
		_, isBuiltin := info.Uses[id].(*types.Builtin)
		return isBuiltin
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		return integerTyped(info, s.Lhs[0])
	}
	return false
}

func integerTyped(info *types.Info, e ast.Expr) bool {
	t := info.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsBoolean) != 0
}

// ---------------------------------------------------------------------
// Class-hierarchy analysis

// implementers resolves an interface method to the corresponding
// concrete methods of every in-repo type implementing the interface.
func (db *FactDB) implementers(ifaceMethod *types.Func) []*types.Func {
	if impls, ok := db.implMemo[ifaceMethod]; ok {
		return impls
	}
	sig := ifaceMethod.Type().(*types.Signature)
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		db.implMemo[ifaceMethod] = nil
		return nil
	}
	var impls []*types.Func
	for _, n := range db.named {
		ptr := types.NewPointer(n)
		if !types.Implements(n, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, ifaceMethod.Pkg(), ifaceMethod.Name())
		m, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if _, inRepo := db.fns[m]; inRepo {
			impls = append(impls, m)
		}
	}
	sort.Slice(impls, func(i, j int) bool { return impls[i].FullName() < impls[j].FullName() })
	db.implMemo[ifaceMethod] = impls
	return impls
}

// ---------------------------------------------------------------------
// Transitive queries

// HotSet returns every function reachable from a //seglint:hotpath
// root over non-cold call edges, with a sample chain for messages.
// The traversal is breadth-first from roots in deterministic order,
// so the recorded chain (and therefore finding text) is stable.
func (db *FactDB) HotSet() map[*types.Func]*HotChain {
	if db.hotOnce {
		return db.hot
	}
	db.hotOnce = true
	db.hot = map[*types.Func]*HotChain{}

	var roots []*FuncInfo
	for _, fi := range db.fns {
		if fi.HotPath {
			roots = append(roots, fi)
		}
	}
	sort.Slice(roots, func(i, j int) bool {
		return roots[i].Fn.FullName() < roots[j].Fn.FullName()
	})

	var queue []*types.Func
	for _, r := range roots {
		if _, seen := db.hot[r.Fn]; seen {
			continue
		}
		db.hot[r.Fn] = &HotChain{Root: r.Fn}
		queue = append(queue, r.Fn)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		chain := db.hot[fn]
		fi := db.fns[fn]
		if fi == nil {
			continue
		}
		// Deterministic edge order: Callees are appended in source
		// order within a file, and files are parsed in sorted order.
		for _, e := range fi.Callees {
			if e.Cold {
				continue
			}
			if _, seen := db.hot[e.Callee]; seen {
				continue
			}
			next := &HotChain{Root: chain.Root}
			next.Path = append(append([]string{}, chain.Path...), e.Callee.Name())
			db.hot[e.Callee] = next
			queue = append(queue, e.Callee)
		}
	}
	return db.hot
}

// MapRangeReach reports whether fn transitively reaches an
// order-sensitive map iteration (through any call edge, cold ones
// included — error paths feed committed output too), returning the
// site, the owning function, and the call path.
func (db *FactDB) MapRangeReach(fn *types.Func) (Site, *types.Func, []string, bool) {
	if m := db.mapReachOf(fn, map[*types.Func]bool{}); m != nil && m.ok {
		return m.site, m.fn, m.path, true
	}
	return Site{}, nil, nil, false
}

func (db *FactDB) mapReachOf(fn *types.Func, visiting map[*types.Func]bool) *mapReach {
	if m, ok := db.mapMemo[fn]; ok && m.done {
		return m
	}
	if visiting[fn] {
		return nil // cycle: resolved by another path or not at all
	}
	visiting[fn] = true
	defer delete(visiting, fn)

	fi := db.fns[fn]
	m := &mapReach{done: true}
	if fi == nil {
		db.mapMemo[fn] = m
		return m
	}
	if len(fi.MapRanges) > 0 {
		m.ok = true
		m.site = fi.MapRanges[0]
		m.fn = fn
		db.mapMemo[fn] = m
		return m
	}
	for _, e := range fi.Callees {
		sub := db.mapReachOf(e.Callee, visiting)
		if sub != nil && sub.ok {
			m.ok = true
			m.site = sub.site
			m.fn = sub.fn
			m.path = append([]string{e.Callee.Name()}, sub.path...)
			break
		}
	}
	db.mapMemo[fn] = m
	return m
}

// ---------------------------------------------------------------------
// Workspace vend/retain fixpoint

// wsMethod matches a method on tensor.Workspace (real package or an
// analysistest fixture named "tensor") by name.
func wsMethod(fn *types.Func, names ...string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Name() != "Workspace" {
		return false
	}
	pkg := n.Obj().Pkg()
	if pkg == nil {
		return false
	}
	base := pkg.Path()
	if i := strings.LastIndex(base, "/"); i >= 0 {
		base = base[i+1:]
	}
	if base != "tensor" {
		return false
	}
	for _, name := range names {
		if fn.Name() == name {
			return true
		}
	}
	return false
}

// workspaceFixpoint iterates vend/retain summaries until stable:
// vending propagates down return chains, retention propagates up call
// chains, both across package boundaries.
func (db *FactDB) workspaceFixpoint() {
	for iter := 0; iter < 16; iter++ {
		changed := false
		for _, fi := range db.fns {
			vends, retained, callsReset := db.wsSummary(fi)
			if vends != fi.Vends || callsReset != fi.CallsReset || !equalInts(retained, fi.RetainedParams) {
				changed = true
				fi.Vends = vends
				fi.RetainedParams = retained
				fi.CallsReset = callsReset
			}
		}
		if !changed {
			return
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// wsSummary computes one function's workspace summary under the
// current database state.
func (db *FactDB) wsSummary(fi *FuncInfo) (vends bool, retained []int, callsReset bool) {
	a := db.AnalyzeWorkspace(fi)
	seen := map[int]bool{}
	for _, esc := range a.Escapes {
		if esc.ParamIndex >= 0 && !seen[esc.ParamIndex] {
			seen[esc.ParamIndex] = true
			retained = append(retained, esc.ParamIndex)
		}
	}
	sort.Ints(retained)
	return a.ReturnsVended, retained, a.CallsReset
}

// WSEscape is one place a workspace-vended value (or a parameter)
// escapes the step: a package-level store, a goroutine capture, or a
// hand-off to a retaining callee.
type WSEscape struct {
	Pos  token.Pos
	Kind string // "global", "goroutine", "callee"
	Desc string
	// ParamIndex is ≥ 0 when the escaping value is the function's own
	// parameter (exported as a retention fact); -1 when it is a value
	// vended inside this function (reported as a finding).
	ParamIndex int
	// Vended marks escapes of values vended inside the function.
	Vended bool
}

// WSAnalysis is the per-function result the wsretain pass reports
// from.
type WSAnalysis struct {
	Escapes       []WSEscape
	ReturnsVended bool
	// VendedReturns are return sites of vended values (flagged by the
	// pass only when the function is a step boundary).
	VendedReturns []token.Pos
	CallsReset    bool
}

// AnalyzeWorkspace runs the local vend/escape analysis for one
// function under the current fact database.
func (db *FactDB) AnalyzeWorkspace(fi *FuncInfo) *WSAnalysis {
	info := fi.Pkg.Info
	res := &WSAnalysis{}

	// Parameter variables, indexed for retention facts.
	paramIdx := map[*types.Var]int{}
	if sig, ok := fi.Fn.Type().(*types.Signature); ok {
		for i := 0; i < sig.Params().Len(); i++ {
			paramIdx[sig.Params().At(i)] = i
		}
	}

	// vended: local variables holding arena-owned values; grown to a
	// fixpoint over simple assignments.
	vended := map[*types.Var]bool{}
	vendedExpr := func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.Ident:
			if v, ok := info.Uses[e].(*types.Var); ok {
				return vended[v]
			}
		case *ast.CallExpr:
			var fn *types.Func
			switch fun := e.Fun.(type) {
			case *ast.Ident:
				fn, _ = info.Uses[fun].(*types.Func)
			case *ast.SelectorExpr:
				fn, _ = info.Uses[fun.Sel].(*types.Func)
			}
			if fn == nil {
				return false
			}
			if wsMethod(fn, "Get", "GetRaw") {
				return true
			}
			if sub := db.fns[fn]; sub != nil && sub.Vends {
				return true
			}
		}
		return false
	}

	for pass := 0; pass < 4; pass++ {
		grew := false
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i := range as.Lhs {
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := info.Defs[id].(*types.Var)
				if !ok {
					v, ok = info.Uses[id].(*types.Var)
					if !ok {
						continue
					}
				}
				if !vended[v] && vendedExpr(as.Rhs[i]) {
					vended[v] = true
					grew = true
				}
			}
			return true
		})
		if !grew {
			break
		}
	}

	// classify reports the escape of one expression, resolving whether
	// it is a vended value or a parameter.
	classify := func(e ast.Expr, pos token.Pos, kind, desc string) {
		idx := -1
		isVended := vendedExpr(e)
		if id, ok := e.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok {
				if i, isParam := paramIdx[v]; isParam {
					idx = i
				}
			}
		}
		if !isVended && idx < 0 {
			return
		}
		res.Escapes = append(res.Escapes, WSEscape{
			Pos: pos, Kind: kind, Desc: desc, ParamIndex: idx, Vended: isVended,
		})
	}

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i := range n.Lhs {
				if root, ok := pkgLevelRoot(info, n.Lhs[i]); ok {
					classify(n.Rhs[i], n.Rhs[i].Pos(), "global",
						fmt.Sprintf("stored into package-level %s", root))
				}
			}
		case *ast.GoStmt:
			// Arguments passed to the goroutine and captures of its
			// closure both outlive the launching frame.
			for _, arg := range n.Call.Args {
				classify(arg, arg.Pos(), "goroutine", "passed to a goroutine")
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					id, ok := m.(*ast.Ident)
					if !ok {
						return true
					}
					if v, ok := info.Uses[id].(*types.Var); ok {
						if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
							classify(id, id.Pos(), "goroutine", "captured by a goroutine")
						}
					}
					return true
				})
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if vendedExpr(r) {
					res.ReturnsVended = true
					res.VendedReturns = append(res.VendedReturns, r.Pos())
				}
			}
		case *ast.CallExpr:
			var fn *types.Func
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				fn, _ = info.Uses[fun].(*types.Func)
			case *ast.SelectorExpr:
				fn, _ = info.Uses[fun.Sel].(*types.Func)
			}
			if fn == nil {
				return true
			}
			if wsMethod(fn, "Reset") {
				res.CallsReset = true
			}
			if sub := db.fns[fn]; sub != nil && len(sub.RetainedParams) > 0 {
				for _, pi := range sub.RetainedParams {
					if pi < len(n.Args) {
						classify(n.Args[pi], n.Args[pi].Pos(), "callee",
							fmt.Sprintf("passed to %s, which retains argument %d beyond the step", fn.Name(), pi))
					}
				}
			}
		}
		return true
	})
	return res
}

// pkgLevelRoot reports whether an assignment target is rooted at a
// package-level variable (directly, or a field/element of one),
// returning its name.
func pkgLevelRoot(info *types.Info, e ast.Expr) (string, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			v, ok := info.Uses[x].(*types.Var)
			if !ok {
				return "", false
			}
			if v.Parent() != nil && v.Parent().Parent() == types.Universe {
				return v.Name(), true
			}
			return "", false
		case *ast.SelectorExpr:
			// p.F where p is a package name → package-level var in
			// another package; otherwise recurse into the base.
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					if v, ok := info.Uses[x.Sel].(*types.Var); ok && v.Parent() != nil && v.Parent().Parent() == types.Universe {
						return v.Name(), true
					}
					return "", false
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return "", false
		}
	}
}

// ---------------------------------------------------------------------
// Debug dump

// Dump writes the database in a stable text form (the seglint -facts
// flag) for debugging fact propagation.
func (db *FactDB) Dump(w io.Writer) {
	var fns []*FuncInfo
	for _, fi := range db.fns {
		fns = append(fns, fi)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Fn.FullName() < fns[j].Fn.FullName() })
	hot := db.HotSet()
	for _, fi := range fns {
		var facts []string
		if fi.HotPath {
			facts = append(facts, "hotpath")
		}
		if c, ok := hot[fi.Fn]; ok && !fi.HotPath {
			facts = append(facts, fmt.Sprintf("hot(from %s)", c.Root.Name()))
		}
		if len(fi.Allocs) > 0 {
			facts = append(facts, fmt.Sprintf("allocates(%d)", len(fi.Allocs)))
		}
		if len(fi.ExtCalls) > 0 {
			facts = append(facts, fmt.Sprintf("ext-allocs(%d)", len(fi.ExtCalls)))
		}
		if len(fi.MapRanges) > 0 {
			facts = append(facts, fmt.Sprintf("ranges-over-map(%d)", len(fi.MapRanges)))
		}
		if fi.Vends {
			facts = append(facts, "vends-workspace-buffer")
		}
		if len(fi.RetainedParams) > 0 {
			parts := make([]string, len(fi.RetainedParams))
			for i, p := range fi.RetainedParams {
				parts[i] = fmt.Sprint(p)
			}
			facts = append(facts, "retains-args("+strings.Join(parts, ",")+")")
		}
		if fi.CallsReset {
			facts = append(facts, "step-boundary")
		}
		if len(facts) == 0 {
			continue
		}
		fmt.Fprintf(w, "%s\t%s\n", fi.Fn.FullName(), strings.Join(facts, " "))
	}
}
