package analysis

import (
	"go/token"
	"strings"
)

// Suppression-comment syntax (documented in docs/LINTING.md):
//
//	//seglint:ignore <analyzer>[,<analyzer>...] [reason]
//	//seglint:file-ignore <analyzer>[,...] [reason]
//	//seglint:package-ignore <analyzer>[,...] [reason]
//
// An ignore comment suppresses findings on its own line (trailing
// comment) and on the line directly below it (comment-above style).
// file-ignore covers its whole file, package-ignore the whole package.
// The analyzer list may be "all". Reasons are free text; write one —
// a suppression without a recorded justification is a review smell.

const suppressPrefix = "//seglint:"

// suppressions indexes a package's seglint ignore comments.
type suppressions struct {
	pkg   map[string]bool            // analyzer -> whole package
	files map[string]map[string]bool // filename -> analyzer set
	lines map[string]map[int]map[string]bool
}

func newSuppressions(p *Package) *suppressions {
	s := &suppressions{
		pkg:   map[string]bool{},
		files: map[string]map[string]bool{},
		lines: map[string]map[int]map[string]bool{},
	}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, suppressPrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					continue
				}
				kind := fields[0]
				names := strings.Split(fields[1], ",")
				pos := p.Fset.Position(c.Pos())
				for _, name := range names {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					switch kind {
					case "ignore":
						byLine := s.lines[pos.Filename]
						if byLine == nil {
							byLine = map[int]map[string]bool{}
							s.lines[pos.Filename] = byLine
						}
						for _, ln := range []int{pos.Line, pos.Line + 1} {
							if byLine[ln] == nil {
								byLine[ln] = map[string]bool{}
							}
							byLine[ln][name] = true
						}
					case "file-ignore":
						if s.files[pos.Filename] == nil {
							s.files[pos.Filename] = map[string]bool{}
						}
						s.files[pos.Filename][name] = true
					case "package-ignore":
						s.pkg[name] = true
					}
				}
			}
		}
	}
	return s
}

// suppressed reports whether a finding by the named analyzer at pos is
// covered by an ignore comment.
func (s *suppressions) suppressed(analyzer string, pos token.Position) bool {
	match := func(set map[string]bool) bool {
		return set != nil && (set[analyzer] || set["all"])
	}
	if match(s.pkg) {
		return true
	}
	if match(s.files[pos.Filename]) {
		return true
	}
	if byLine := s.lines[pos.Filename]; byLine != nil {
		return match(byLine[pos.Line])
	}
	return false
}
