package analysis

import (
	"go/token"
	"sort"
	"strings"
)

// Suppression-comment syntax (documented in docs/LINTING.md):
//
//	//seglint:ignore <analyzer>[,<analyzer>...] [reason]
//	//seglint:file-ignore <analyzer>[,...] [reason]
//	//seglint:package-ignore <analyzer>[,...] [reason]
//
// An ignore comment suppresses findings on its own line (trailing
// comment) and on the line directly below it (comment-above style).
// file-ignore covers its whole file, package-ignore the whole package.
// The analyzer list may be "all". Reasons are free text; write one —
// the runner's CheckSuppressions mode (seglint -suppressions, enforced
// in CI) fails any directive whose reason is empty.

const suppressPrefix = "//seglint:"

// Directive is one parsed seglint suppression comment, exposed so the
// runner can enforce reason hygiene and tests can assert on parsing.
type Directive struct {
	Kind      string // "ignore", "file-ignore", "package-ignore"
	Analyzers []string
	Reason    string
	Pos       token.Position
}

// suppressions indexes a package's seglint ignore comments.
type suppressions struct {
	pkg        map[string]bool            // analyzer -> whole package
	files      map[string]map[string]bool // filename -> analyzer set
	lines      map[string]map[int]map[string]bool
	directives []Directive
}

func newSuppressions(p *Package) *suppressions {
	s := &suppressions{
		pkg:   map[string]bool{},
		files: map[string]map[string]bool{},
		lines: map[string]map[int]map[string]bool{},
	}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, suppressPrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					continue
				}
				kind := fields[0]
				if kind != "ignore" && kind != "file-ignore" && kind != "package-ignore" {
					continue // hotpath and future directives are not suppressions
				}
				names := strings.Split(fields[1], ",")
				pos := p.Fset.Position(c.Pos())
				d := Directive{
					Kind:   kind,
					Reason: strings.TrimSpace(strings.Join(fields[2:], " ")),
					Pos:    pos,
				}
				for _, name := range names {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					d.Analyzers = append(d.Analyzers, name)
					switch kind {
					case "ignore":
						byLine := s.lines[pos.Filename]
						if byLine == nil {
							byLine = map[int]map[string]bool{}
							s.lines[pos.Filename] = byLine
						}
						for _, ln := range []int{pos.Line, pos.Line + 1} {
							if byLine[ln] == nil {
								byLine[ln] = map[string]bool{}
							}
							byLine[ln][name] = true
						}
					case "file-ignore":
						if s.files[pos.Filename] == nil {
							s.files[pos.Filename] = map[string]bool{}
						}
						s.files[pos.Filename][name] = true
					case "package-ignore":
						s.pkg[name] = true
					}
				}
				if len(d.Analyzers) > 0 {
					s.directives = append(s.directives, d)
				}
			}
		}
	}
	sort.Slice(s.directives, func(i, j int) bool {
		a, b := s.directives[i].Pos, s.directives[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return s
}

// Directives returns the package's parsed suppression comments in
// position order.
func (s *suppressions) Directives() []Directive { return s.directives }

// suppressed reports whether a finding by the named analyzer at pos is
// covered by an ignore comment.
func (s *suppressions) suppressed(analyzer string, pos token.Position) bool {
	match := func(set map[string]bool) bool {
		return set != nil && (set[analyzer] || set["all"])
	}
	if match(s.pkg) {
		return true
	}
	if match(s.files[pos.Filename]) {
		return true
	}
	if byLine := s.lines[pos.Filename]; byLine != nil {
		return match(byLine[pos.Line])
	}
	return false
}
