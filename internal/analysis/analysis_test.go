package analysis_test

import (
	"go/ast"
	"path/filepath"
	"testing"

	"segscale/internal/analysis"
	"segscale/internal/analysis/analysistest"
)

// flagfuncs flags every function whose name starts with "Flag" — a
// toy pass for exercising the framework itself.
var flagfuncs = &analysis.Analyzer{
	Name: "flagfuncs",
	Doc:  "test analyzer flagging Flag* function declarations",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && len(fd.Name.Name) >= 4 && fd.Name.Name[:4] == "Flag" {
					pass.Reportf(fd.Pos(), "flagged function %s", fd.Name.Name)
				}
			}
		}
		return nil
	},
}

func TestSuppressionForms(t *testing.T) {
	analysistest.Run(t, "testdata", flagfuncs, "lineignore", "fileignore", "pkgignore")
}

func TestExpandSkipsTestdataAndFindsPackages(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	l, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := l.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range paths {
		seen[p] = true
		if filepath.Base(p) == "testdata" {
			t.Errorf("Expand leaked a testdata dir: %s", p)
		}
	}
	for _, want := range []string{
		"segscale/internal/des",
		"segscale/internal/collective",
		"segscale/pkg/summitseg",
		"segscale/cmd/seglint",
	} {
		if !seen[want] {
			t.Errorf("Expand(./...) missing %s (got %d paths)", want, len(paths))
		}
	}
}

// TestExpandNormalizesTrailingSlash guards against shell-completion
// patterns like "./internal/des/": the trailing slash must not leak
// into the import path, or analyzers that dispatch on the package base
// name silently skip the package.
func TestExpandNormalizesTrailingSlash(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	l, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, pat := range []string{"./internal/des", "./internal/des/"} {
		paths, err := l.Expand([]string{pat})
		if err != nil {
			t.Fatal(err)
		}
		if len(paths) != 1 || paths[0] != "segscale/internal/des" {
			t.Errorf("Expand(%q) = %v, want [segscale/internal/des]", pat, paths)
		}
	}
}

func TestLoaderTypechecksRealPackage(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	l, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Load("segscale/internal/des")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types == nil || len(pkg.Files) == 0 {
		t.Fatalf("loaded package incomplete: %+v", pkg)
	}
	if pkg.Types.Name() != "des" {
		t.Errorf("package name = %q, want des", pkg.Types.Name())
	}
}
