// Package analysistest runs an analyzer over fixture packages and
// checks its findings against expectations written in the fixtures —
// the same contract as golang.org/x/tools/go/analysis/analysistest,
// rebuilt on the standard library.
//
// Fixtures live under <testdata>/src/<pkg>/ and carry expectations as
// trailing comments:
//
//	t := time.Now() // want "wall-clock"
//
// Each quoted string is a regexp that must match the message of
// exactly one finding on that line; findings without a matching want,
// and wants without a matching finding, fail the test. Suppression
// comments are honoured, so fixtures can (and should) also prove that
// //seglint:ignore works for their analyzer.
package analysistest

import (
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"segscale/internal/analysis"
)

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Run loads the named fixture packages from testdata/src through one
// shared loader, builds the fact database over everything loaded
// (including packages the fixtures import but that are not named
// here), applies the analyzer to the named packages, and reports any
// mismatch between findings and // want expectations as test errors.
//
// Because the database spans all loaded packages, fixtures can
// exercise cross-package fact propagation: name the package holding
// the entry points, let it import a helper package, and put // want
// comments wherever findings should surface. Naming the helper too
// additionally checks the findings (if any) expected inside it.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loader := analysis.NewFixtureLoader(testdata + "/src")
	var targets []*analysis.Package
	for _, name := range pkgs {
		pkg, err := loader.Load(name)
		if err != nil {
			t.Fatalf("loading fixture %q: %v", name, err)
		}
		targets = append(targets, pkg)
	}
	facts := analysis.BuildFactDB(loader.Loaded())
	findings, err := analysis.RunWith(targets, []*analysis.Analyzer{a}, analysis.Options{Facts: facts})
	if err != nil {
		t.Fatalf("running %s on fixtures %v: %v", a.Name, pkgs, err)
	}
	for _, pkg := range targets {
		var own []analysis.Finding
		for _, fd := range findings {
			if strings.HasPrefix(fd.File, pkg.Dir+"/") {
				own = append(own, fd)
			}
		}
		checkPackage(t, pkg, own)
	}
}

func checkPackage(t *testing.T, pkg *analysis.Package, findings []analysis.Finding) {
	t.Helper()
	// file -> line -> expectations, gathered from // want comments.
	wants := map[string]map[int][]*expectation{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				collectWants(t, pkg, c, wants)
			}
		}
	}

	for _, fd := range findings {
		exps := wants[fd.File][fd.Line]
		ok := false
		for _, e := range exps {
			if !e.matched && e.re.MatchString(fd.Message) {
				e.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected finding: %s", pkg.Path, fd)
		}
	}
	for file, byLine := range wants {
		for line, exps := range byLine {
			for _, e := range exps {
				if !e.matched {
					t.Errorf("%s:%d: expected finding matching %q, got none", file, line, e.re)
				}
			}
		}
	}
}

func collectWants(t *testing.T, pkg *analysis.Package, c *ast.Comment, wants map[string]map[int][]*expectation) {
	t.Helper()
	text, ok := strings.CutPrefix(c.Text, "// want ")
	if !ok {
		return
	}
	pos := pkg.Fset.Position(c.Pos())
	for _, m := range wantRE.FindAllString(text, -1) {
		lit, err := strconv.Unquote(m)
		if err != nil {
			t.Fatalf("%s:%d: bad want literal %s: %v", pos.Filename, pos.Line, m, err)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, lit, err)
		}
		if wants[pos.Filename] == nil {
			wants[pos.Filename] = map[int][]*expectation{}
		}
		wants[pos.Filename][pos.Line] = append(wants[pos.Filename][pos.Line], &expectation{re: re})
	}
}
