package analysis

import (
	"fmt"
	"path/filepath"
	"sort"
)

// Finding is one reported, unsuppressed diagnostic in a form ready for
// text or JSON output.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // relative to the module root when possible
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String formats the finding the way go vet does.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// SuppressHygieneAnalyzer is the analyzer name attached to findings
// about the suppression comments themselves (missing reasons). These
// findings are emitted by the runner, not a pass, and are deliberately
// not suppressible — a suppression cannot vouch for itself.
const SuppressHygieneAnalyzer = "suppressreason"

// Options configures a lint run.
type Options struct {
	// RelTo, when non-empty, makes finding file paths relative to that
	// directory.
	RelTo string
	// Facts is the whole-repo fact database handed to every Pass. Build
	// it over Loader.Loaded() so cross-package facts are complete even
	// for packages outside the lint target set.
	Facts *FactDB
	// CheckSuppressions additionally reports every suppression
	// directive whose reason is empty, under SuppressHygieneAnalyzer.
	CheckSuppressions bool
}

// Run executes every analyzer over every package, applies suppression
// comments, and returns the surviving findings sorted by position. It
// builds the fact database from the given packages alone; use RunWith
// when the loader has seen a wider package universe.
func Run(pkgs []*Package, analyzers []*Analyzer, relTo string) ([]Finding, error) {
	return RunWith(pkgs, analyzers, Options{RelTo: relTo, Facts: BuildFactDB(pkgs)})
}

// RunWith is Run with explicit options.
func RunWith(pkgs []*Package, analyzers []*Analyzer, opts Options) ([]Finding, error) {
	var out []Finding
	rebase := func(file string) string {
		if opts.RelTo == "" {
			return file
		}
		if rel, err := filepath.Rel(opts.RelTo, file); err == nil {
			return rel
		}
		return file
	}
	for _, pkg := range pkgs {
		sup := newSuppressions(pkg)
		if opts.CheckSuppressions {
			for _, d := range sup.Directives() {
				if d.Reason != "" {
					continue
				}
				out = append(out, Finding{
					Analyzer: SuppressHygieneAnalyzer,
					File:     rebase(d.Pos.Filename),
					Line:     d.Pos.Line,
					Col:      d.Pos.Column,
					Message:  fmt.Sprintf("seglint:%s directive has no reason; justify the suppression", d.Kind),
				})
			}
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Path:      pkg.Path,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Facts:     opts.Facts,
			}
			name := a.Name
			pass.report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if sup.suppressed(name, pos) {
					return
				}
				out = append(out, Finding{
					Analyzer: name,
					File:     rebase(pos.Filename),
					Line:     pos.Line,
					Col:      pos.Column,
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	SortFindings(out)
	return out, nil
}

// SortFindings orders findings by (file, line, col, analyzer, message)
// — a total order, so output is byte-stable regardless of package load
// or analyzer registration order.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
