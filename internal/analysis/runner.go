package analysis

import (
	"fmt"
	"path/filepath"
	"sort"
)

// Finding is one reported, unsuppressed diagnostic in a form ready for
// text or JSON output.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // relative to the module root when possible
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String formats the finding the way go vet does.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Run executes every analyzer over every package, applies suppression
// comments, and returns the surviving findings sorted by position.
// relTo, when non-empty, makes file paths relative to that directory.
func Run(pkgs []*Package, analyzers []*Analyzer, relTo string) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		sup := newSuppressions(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Path:      pkg.Path,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			name := a.Name
			pass.report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if sup.suppressed(name, pos) {
					return
				}
				file := pos.Filename
				if relTo != "" {
					if rel, err := filepath.Rel(relTo, file); err == nil {
						file = rel
					}
				}
				out = append(out, Finding{
					Analyzer: name,
					File:     file,
					Line:     pos.Line,
					Col:      pos.Column,
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}
