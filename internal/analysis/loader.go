package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path, or bare name for fixture packages
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of a single module from
// source. Standard-library imports are resolved through the go/types
// source importer, module-internal imports recursively through the
// loader itself, so no compiled export data (and no network) is ever
// needed. Test files are excluded: the passes guard shipped simulator
// code, and tests are free to use wall clocks and ad-hoc randomness.
type Loader struct {
	Root string // module root directory (contains go.mod), or fixture root
	Mod  string // module path from go.mod; "" for fixture roots

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package // keyed by import path
	ing  map[string]bool     // import-cycle guard
}

// NewLoader returns a loader for the module rooted at dir, reading the
// module path from its go.mod.
func NewLoader(dir string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: reading go.mod: %w", err)
	}
	mod := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			mod = strings.TrimSpace(rest)
			break
		}
	}
	if mod == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", dir)
	}
	return newLoader(dir, mod), nil
}

// NewFixtureLoader returns a loader rooted at an analysistest
// testdata/src directory, where packages are named by bare directory
// ("des", "perfsim") rather than full module paths.
func NewFixtureLoader(root string) *Loader { return newLoader(root, "") }

func newLoader(root, mod string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Root: root,
		Mod:  mod,
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: map[string]*Package{},
		ing:  map[string]bool{},
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Loaded returns every package this loader has parsed and
// type-checked, sorted by path. Because module-internal imports load
// recursively through the loader itself (stdlib goes through the
// source importer and is never cached here), this is exactly the
// universe a whole-repo FactDB should be built over: the requested
// packages plus everything in the repo they transitively import.
func (l *Loader) Loaded() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// internalPath reports whether an import path belongs to this loader's
// tree (module-internal, or any fixture package when Mod is empty).
func (l *Loader) internalPath(path string) bool {
	if l.Mod == "" {
		// Fixture imports have no dots (stdlib style is ruled out by
		// the stdlib importer being tried only for non-internal paths,
		// so restrict to paths that exist under the fixture root).
		_, err := os.Stat(filepath.Join(l.Root, filepath.FromSlash(path)))
		return err == nil
	}
	return path == l.Mod || strings.HasPrefix(path, l.Mod+"/")
}

func (l *Loader) dirFor(path string) string {
	if l.Mod == "" {
		return filepath.Join(l.Root, filepath.FromSlash(path))
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Mod), "/")
	return filepath.Join(l.Root, filepath.FromSlash(rel))
}

// Import implements types.Importer over both module-internal packages
// and the standard library.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	if !l.internalPath(path) {
		return l.std.Import(path)
	}
	p, err := l.Load(path)
	if err != nil {
		return nil, err
	}
	return p.Types, nil
}

// Load parses and type-checks the package with the given import path,
// returning a cached result on repeat calls.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.ing[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.ing[path] = true
	defer delete(l.ing, path)

	dir := l.dirFor(path)
	names, err := GoFilesIn(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %q: %w", path, err)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: %q: no non-test Go files in %s", path, dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %q: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// Expand resolves package patterns relative to the module root into
// import paths. Supported forms: "./...", "./dir/...", "./dir", and
// full import paths. Directories named testdata and hidden directories
// are skipped, matching the go tool's convention, so analyzer fixtures
// are never linted as real code.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(rel string) error {
		names, err := GoFilesIn(filepath.Join(l.Root, rel))
		if err != nil || len(names) == 0 {
			return nil // not a package dir; pattern walks tolerate this
		}
		path := l.Mod
		if rel != "." {
			path = l.Mod + "/" + filepath.ToSlash(rel)
		}
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
		return nil
	}
	for _, pat := range patterns {
		// A trailing slash ("./internal/netsim/", shell completion
		// style) would otherwise leak into the import path and break
		// analyzers that dispatch on the package base name.
		if pat != "/" && pat != "./" {
			pat = strings.TrimSuffix(pat, "/")
		}
		if pat == "./" {
			pat = "."
		}
		switch {
		case strings.HasSuffix(pat, "..."):
			base := strings.TrimSuffix(pat, "...")
			base = strings.TrimSuffix(base, "/")
			base = strings.TrimPrefix(base, "./")
			if base == "" {
				base = "."
			}
			root := filepath.Join(l.Root, filepath.FromSlash(base))
			err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				rel, err := filepath.Rel(l.Root, p)
				if err != nil {
					return err
				}
				return add(rel)
			})
			if err != nil {
				return nil, err
			}
		case strings.HasPrefix(pat, "./") || pat == ".":
			rel := strings.TrimPrefix(pat, "./")
			if rel == "" || pat == "." {
				rel = "."
			}
			if err := add(rel); err != nil {
				return nil, err
			}
		default:
			if !seen[pat] {
				seen[pat] = true
				out = append(out, pat)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// GoFilesIn lists the non-test .go files of a directory, sorted.
func GoFilesIn(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}
