package devsim

import (
	"math"
	"math/rand"
	"testing"

	"segscale/internal/model"
)

func TestCalibratedThroughput(t *testing.T) {
	// The abstract's two anchors must come out exactly.
	dl := New(model.DLv3Plus())
	if math.Abs(dl.ImagesPerSec()-6.7) > 1e-12 {
		t.Fatalf("DLv3+ throughput %g, want 6.7", dl.ImagesPerSec())
	}
	rn := New(model.ResNet50())
	if math.Abs(rn.ImagesPerSec()-300) > 1e-12 {
		t.Fatalf("ResNet-50 throughput %g, want 300", rn.ImagesPerSec())
	}
	// Step time for the paper batch.
	if st := dl.StepTime(8); math.Abs(st-8/6.7) > 1e-12 {
		t.Fatalf("DLv3+ step time %g", st)
	}
}

func TestForwardBackwardSplit(t *testing.T) {
	g := New(model.DLv3Plus())
	f, b := g.ForwardTime(8), g.BackwardTime(8)
	if math.Abs(f+b-g.StepTime(8)) > 1e-12 {
		t.Fatal("fwd+bwd != step")
	}
	if math.Abs(b/f-2) > 1e-9 {
		t.Fatalf("bwd/fwd ratio %g, want 2", b/f)
	}
}

func TestStepTimeScalesWithBatch(t *testing.T) {
	g := New(model.ResNet50())
	if g.StepTime(64) <= g.StepTime(32) {
		t.Fatal("step time not increasing in batch")
	}
}

func TestBadInputsPanic(t *testing.T) {
	g := New(model.DLv3Plus())
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero batch accepted")
			}
		}()
		g.StepTime(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("uncalibrated profile accepted")
			}
		}()
		New(&model.Profile{Name: "empty"})
	}()
}

func TestJitterDistribution(t *testing.T) {
	g := New(model.DLv3Plus())
	rng := rand.New(rand.NewSource(1))
	sum := 0.0
	for i := 0; i < 1000; i++ {
		j := g.Jitter(rng)
		if j < 1 {
			t.Fatalf("jitter %g below 1", j)
		}
		sum += j
	}
	mean := sum / 1000
	// Half-normal mean = 1 + σ·√(2/π) ≈ 1.032 for σ=0.04.
	if mean < 1.02 || mean > 1.045 {
		t.Fatalf("jitter mean %g", mean)
	}
	g.JitterStd = 0
	if g.Jitter(rng) != 1 {
		t.Fatal("zero jitter should return exactly 1")
	}
}

func TestTensorReadyTimes(t *testing.T) {
	g := New(model.DLv3Plus())
	batch := 8
	rt := g.TensorReadyTimes(batch)
	if len(rt) != len(g.Prof.GradientSchedule()) {
		t.Fatal("tensor count mismatch")
	}
	bwd := g.BackwardTime(batch)
	prev := 0.0
	total := 0
	for _, r := range rt {
		if r.Offset < prev || r.Offset > bwd+1e-12 {
			t.Fatalf("offset %g outside [%g, %g]", r.Offset, prev, bwd)
		}
		prev = r.Offset
		total += r.Bytes
	}
	if total != g.Prof.GradientBytes() {
		t.Fatal("tensor bytes do not sum to gradient volume")
	}
	// Last tensor is ready exactly when backward finishes.
	if math.Abs(rt[len(rt)-1].Offset-bwd) > 1e-9 {
		t.Fatalf("last tensor at %g, backward ends %g", rt[len(rt)-1].Offset, bwd)
	}
}
