// Package devsim models a V100 GPU's compute time for training steps.
// It is calibrated, not predictive: the paper's measured single-GPU
// throughput anchors the step time (6.7 img/s for DeepLab-v3+,
// 300 img/s for ResNet-50), and per-layer FLOP shares from the model
// profile distribute that time across the forward/backward passes —
// which is all the communication study needs from the compute side.
package devsim

import (
	"fmt"
	"math/rand"

	"segscale/internal/model"
)

// backwardShare is the fraction of step time spent in the backward
// pass (the standard fwd:bwd ≈ 1:2 split).
const backwardShare = 2.0 / 3.0

// GPU is a calibrated compute model for one device running one model.
type GPU struct {
	Prof *model.Profile
	// JitterStd is the relative per-step compute-noise σ. Real
	// distributed runs see a few % step-time variation; stragglers are
	// one source of scaling loss.
	JitterStd float64
}

// New builds the compute model with the default 4 % jitter.
func New(p *model.Profile) *GPU {
	if p.MeasuredImgPerSec <= 0 || p.BatchPerGPU <= 0 {
		panic(fmt.Sprintf("devsim: profile %q missing calibration", p.Name))
	}
	return &GPU{Prof: p, JitterStd: 0.04}
}

// StepTime is the compute time of one training step at the given
// per-GPU batch (no communication).
func (g *GPU) StepTime(batch int) float64 {
	if batch <= 0 {
		panic("devsim: non-positive batch")
	}
	return float64(batch) / g.Prof.MeasuredImgPerSec
}

// ForwardTime is the forward-pass share of the step.
func (g *GPU) ForwardTime(batch int) float64 {
	return g.StepTime(batch) * (1 - backwardShare)
}

// BackwardTime is the backward-pass share of the step.
func (g *GPU) BackwardTime(batch int) float64 {
	return g.StepTime(batch) * backwardShare
}

// Jitter draws a multiplicative step-time factor ≥ 1 (stragglers slow
// steps, never speed them).
func (g *GPU) Jitter(rng *rand.Rand) float64 {
	if g.JitterStd <= 0 {
		return 1
	}
	j := rng.NormFloat64() * g.JitterStd
	if j < 0 {
		j = -j
	}
	return 1 + j
}

// TensorReady pairs a gradient tensor with its ready time measured
// from the start of the backward pass.
type TensorReady struct {
	Name   string
	Bytes  int
	Offset float64 // seconds after backward starts
}

// TensorReadyTimes returns every gradient tensor with its ready
// offset, in ready order, for one step at the given batch.
func (g *GPU) TensorReadyTimes(batch int) []TensorReady {
	bwd := g.BackwardTime(batch)
	sched := g.Prof.GradientSchedule()
	out := make([]TensorReady, len(sched))
	for i, s := range sched {
		out[i] = TensorReady{Name: s.Name, Bytes: s.Bytes, Offset: s.ReadyFrac * bwd}
	}
	return out
}

// ImagesPerSec is the calibrated single-GPU training throughput.
func (g *GPU) ImagesPerSec() float64 { return g.Prof.MeasuredImgPerSec }
