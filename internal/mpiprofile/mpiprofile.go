// Package mpiprofile captures the behavioural differences between the
// MPI libraries compared in the paper — IBM Spectrum MPI (Summit's
// default) and MVAPICH2-GDR — as explicit, tunable parameter sets.
//
// The paper's performance win comes from three properties of
// MVAPICH2-GDR that this package makes first-class:
//
//  1. GPU-direct RDMA for small messages (no host staging → much lower
//     latency, governed by MV2_GPUDIRECT_LIMIT);
//  2. pipelined device↔host staging for large messages with a tunable
//     chunk size (MV2_CUDA_BLOCK_SIZE) that achieves near-line-rate
//     InfiniBand bandwidth;
//  3. CUDA-IPC fast paths within a node.
//
// A Profile is pure data: internal/netmodel turns it into transfer and
// collective times. Knobs use their real environment-variable names so
// sweep output reads like a job script.
package mpiprofile

import (
	"fmt"
	"sort"
	"strconv"
)

// Byte sizes.
const (
	KiB = 1 << 10
	MiB = 1 << 20
)

// Profile describes one MPI library's communication behaviour on
// Summit. Latencies are in seconds, bandwidths in bytes/second.
type Profile struct {
	Name string

	// GPUDirect enables GPU-direct RDMA for inter-node transfers and
	// CUDA IPC intra-node. When false every GPU buffer is staged
	// through host memory (two extra PCIe copies).
	GPUDirect bool

	// LatIntraNVLink is the GPU-to-GPU small-message latency within an
	// NVLink triad.
	LatIntraNVLink float64
	// LatIntraXBus crosses the POWER9 socket interconnect.
	LatIntraXBus float64
	// LatInterGPU is the inter-node GPU-buffer latency (GDR path when
	// GPUDirect, else includes staging overheads).
	LatInterGPU float64
	// LatHostStage is the extra latency added per message when a GPU
	// buffer must be staged through host memory.
	LatHostStage float64

	// BWNVLink and BWXBus are achieved intra-node bandwidths.
	BWNVLink float64
	BWXBus   float64
	// BWInter is the achieved per-flow inter-node bandwidth (dual-rail
	// EDR line rate is 25 GB/s; libraries achieve a fraction of it).
	BWInter float64
	// BWStaged is the effective bandwidth of the staged GPU→host→NIC
	// path used by non-GPU-direct libraries for large messages.
	BWStaged float64

	// GPUDirectLimit (MV2_GPUDIRECT_LIMIT): messages at or below this
	// size go over GDR RDMA directly; larger messages use the
	// pipelined staging protocol. Ignored when !GPUDirect.
	GPUDirectLimit int
	// CUDABlockSize (MV2_CUDA_BLOCK_SIZE): the chunk size of the
	// pipelined large-message protocol. Larger chunks amortise
	// per-chunk latency but pipeline less.
	CUDABlockSize int
	// EagerLimit: messages at or below this size skip the rendezvous
	// handshake.
	EagerLimit int
	// RndvOverhead is the extra handshake latency for rendezvous
	// (large) messages.
	RndvOverhead float64

	// ReduceFlops is the elementwise-reduction rate (elements/second)
	// a rank sustains while combining incoming gradient chunks.
	ReduceFlops float64

	// FusionPackBW is the bandwidth at which Horovod's fusion buffer
	// is packed/unpacked on this library's memory path: an on-GPU
	// kernel for a GPU-direct library, a PCIe round trip into host
	// memory otherwise.
	FusionPackBW float64
}

// Validate checks that the profile is physically sensible.
func (p *Profile) Validate() error {
	type pos struct {
		name string
		v    float64
	}
	checks := []pos{
		{"LatIntraNVLink", p.LatIntraNVLink},
		{"LatIntraXBus", p.LatIntraXBus},
		{"LatInterGPU", p.LatInterGPU},
		{"BWNVLink", p.BWNVLink},
		{"BWXBus", p.BWXBus},
		{"BWInter", p.BWInter},
		{"BWStaged", p.BWStaged},
		{"ReduceFlops", p.ReduceFlops},
		{"FusionPackBW", p.FusionPackBW},
	}
	for _, c := range checks {
		if c.v <= 0 {
			return fmt.Errorf("mpiprofile %q: %s must be positive, got %g", p.Name, c.name, c.v)
		}
	}
	if p.LatHostStage < 0 || p.RndvOverhead < 0 {
		return fmt.Errorf("mpiprofile %q: negative overhead", p.Name)
	}
	if p.CUDABlockSize <= 0 {
		return fmt.Errorf("mpiprofile %q: CUDABlockSize must be positive", p.Name)
	}
	if p.EagerLimit < 0 || p.GPUDirectLimit < 0 {
		return fmt.Errorf("mpiprofile %q: negative threshold", p.Name)
	}
	return nil
}

// Clone returns a deep copy, so sweeps can mutate knobs freely.
func (p *Profile) Clone() *Profile {
	q := *p
	return &q
}

// Spectrum returns a profile modelled on IBM Spectrum MPI as shipped
// on Summit circa 2019: CUDA-aware but staging GPU buffers through
// host memory for inter-node transfers, with higher small-message
// latency and lower achieved bandwidth on the GPU path.
func Spectrum() *Profile {
	return &Profile{
		Name:           "spectrum",
		GPUDirect:      false,
		LatIntraNVLink: 4.0e-6,
		LatIntraXBus:   6.0e-6,
		LatInterGPU:    16.0e-6,
		LatHostStage:   8.0e-6,
		BWNVLink:       38e9,
		BWXBus:         22e9,
		BWInter:        14.5e9, // one rail + protocol overheads
		BWStaged:       9.0e9,  // PCIe-bound staged path
		GPUDirectLimit: 0,
		CUDABlockSize:  256 * KiB,
		EagerLimit:     16 * KiB,
		RndvOverhead:   6.0e-6,
		ReduceFlops:    8e9,  // host-side reduction
		FusionPackBW:   11e9, // fusion buffer staged over PCIe
	}
}

// MV2GDR returns a profile modelled on MVAPICH2-GDR 2.3.x on Summit:
// GPU-direct RDMA, CUDA IPC intra-node, dual-rail aware large-message
// pipelining.
func MV2GDR() *Profile {
	return &Profile{
		Name:           "mv2gdr",
		GPUDirect:      true,
		LatIntraNVLink: 2.2e-6,
		LatIntraXBus:   3.5e-6,
		LatInterGPU:    4.5e-6,
		LatHostStage:   8.0e-6, // only paid if staging is forced
		BWNVLink:       44e9,
		BWXBus:         26e9,
		BWInter:        20.5e9, // dual rail, GDR pipelined
		BWStaged:       11.5e9,
		GPUDirectLimit: 8 * KiB, // MV2_GPUDIRECT_LIMIT default
		CUDABlockSize:  256 * KiB,
		EagerLimit:     16 * KiB,
		RndvOverhead:   3.0e-6,
		ReduceFlops:    60e9,  // GPU reduction kernels
		FusionPackBW:   250e9, // on-device fusion-buffer kernels
	}
}

// NCCL returns a profile modelled on NCCL 2.4 on Summit — the
// backend Horovod recommends and the third point of the paper's
// comparison. GPU-direct with excellent ring bandwidth and GPU-side
// reduction kernels; small-message latency sits above MVAPICH2-GDR's
// tuned point-to-point path (NCCL's ring pays per-hop launch costs),
// which is where the paper's MV2-GDR tuning finds its edge.
func NCCL() *Profile {
	return &Profile{
		Name:           "nccl",
		GPUDirect:      true,
		LatIntraNVLink: 3.0e-6,
		LatIntraXBus:   4.5e-6,
		LatInterGPU:    7.0e-6,
		LatHostStage:   8.0e-6,
		BWNVLink:       46e9,
		BWXBus:         26e9,
		BWInter:        21.0e9,
		BWStaged:       11.5e9,
		GPUDirectLimit: 64 * KiB, // NCCL protocols switch later
		CUDABlockSize:  512 * KiB,
		EagerLimit:     16 * KiB,
		RndvOverhead:   4.0e-6,
		ReduceFlops:    80e9,  // fused ring reduce kernels
		FusionPackBW:   300e9, // on-device
	}
}

// ByName returns a built-in profile.
func ByName(name string) (*Profile, error) {
	switch name {
	case "spectrum":
		return Spectrum(), nil
	case "mv2gdr":
		return MV2GDR(), nil
	case "nccl":
		return NCCL(), nil
	default:
		return nil, fmt.Errorf("mpiprofile: unknown profile %q (want spectrum, mv2gdr or nccl)", name)
	}
}

// Names lists the built-in profile names.
func Names() []string { return []string{"spectrum", "mv2gdr", "nccl"} }

// Env renders the tunable knobs as environment-variable assignments in
// the style the paper's job scripts would use.
func (p *Profile) Env() []string {
	vars := map[string]string{
		"MV2_CUDA_BLOCK_SIZE": strconv.Itoa(p.CUDABlockSize),
		"MV2_GPUDIRECT_LIMIT": strconv.Itoa(p.GPUDirectLimit),
		"MV2_IBA_EAGER_LIMIT": strconv.Itoa(p.EagerLimit),
		"MV2_USE_CUDA":        "1",
	}
	if p.GPUDirect {
		vars["MV2_USE_GPUDIRECT"] = "1"
	} else {
		vars["MV2_USE_GPUDIRECT"] = "0"
	}
	keys := make([]string, 0, len(vars))
	for k := range vars {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, k+"="+vars[k])
	}
	return out
}

// ApplyEnv overrides knobs from environment-style assignments,
// accepting the same variable names Env emits. Unknown variables are
// ignored (as a real MPI library would); malformed values error.
func (p *Profile) ApplyEnv(assignments []string) error {
	for _, a := range assignments {
		var key, val string
		for i := 0; i < len(a); i++ {
			if a[i] == '=' {
				key, val = a[:i], a[i+1:]
				break
			}
		}
		if key == "" {
			return fmt.Errorf("mpiprofile: malformed assignment %q", a)
		}
		switch key {
		case "MV2_CUDA_BLOCK_SIZE", "MV2_GPUDIRECT_LIMIT", "MV2_IBA_EAGER_LIMIT":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return fmt.Errorf("mpiprofile: bad value %q for %s", val, key)
			}
			switch key {
			case "MV2_CUDA_BLOCK_SIZE":
				if n == 0 {
					return fmt.Errorf("mpiprofile: MV2_CUDA_BLOCK_SIZE must be positive")
				}
				p.CUDABlockSize = n
			case "MV2_GPUDIRECT_LIMIT":
				p.GPUDirectLimit = n
			case "MV2_IBA_EAGER_LIMIT":
				p.EagerLimit = n
			}
		case "MV2_USE_GPUDIRECT":
			p.GPUDirect = val == "1"
		}
	}
	return nil
}
