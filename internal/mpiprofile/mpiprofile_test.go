package mpiprofile

import (
	"strings"
	"testing"
)

func TestBuiltinsValidate(t *testing.T) {
	for _, name := range Names() {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s invalid: %v", name, err)
		}
		if p.Name != name {
			t.Errorf("profile name %q != lookup name %q", p.Name, name)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("openmpi"); err == nil {
		t.Fatal("expected error for unknown profile")
	}
}

// The modelled relationships the reproduction depends on: MVAPICH2-GDR
// must beat Spectrum on GPU-path latency and bandwidth everywhere.
func TestMV2GDRBeatsSpectrum(t *testing.T) {
	s, m := Spectrum(), MV2GDR()
	if !m.GPUDirect || s.GPUDirect {
		t.Fatal("GPUDirect flags wrong way round")
	}
	if m.LatInterGPU >= s.LatInterGPU {
		t.Errorf("MV2-GDR inter-node latency %.2g not below Spectrum %.2g", m.LatInterGPU, s.LatInterGPU)
	}
	if m.BWInter <= s.BWInter {
		t.Errorf("MV2-GDR inter-node bandwidth %.3g not above Spectrum %.3g", m.BWInter, s.BWInter)
	}
	if m.LatIntraNVLink >= s.LatIntraNVLink {
		t.Errorf("MV2-GDR NVLink latency not below Spectrum")
	}
}

func TestBandwidthsPhysical(t *testing.T) {
	for _, name := range Names() {
		p, _ := ByName(name)
		if p.BWInter > 25e9 {
			t.Errorf("%s: inter-node bandwidth %.3g exceeds dual-rail EDR line rate", name, p.BWInter)
		}
		if p.BWNVLink > 50e9 {
			t.Errorf("%s: NVLink bandwidth %.3g exceeds NVLink2 pair rate", name, p.BWNVLink)
		}
		if p.BWStaged >= p.BWNVLink {
			t.Errorf("%s: staged path should be slower than NVLink", name)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := MV2GDR()
	q := p.Clone()
	q.CUDABlockSize = 1
	q.Name = "other"
	if p.CUDABlockSize == 1 || p.Name == "other" {
		t.Fatal("Clone shares state with original")
	}
}

func TestValidateCatchesBadValues(t *testing.T) {
	cases := []func(*Profile){
		func(p *Profile) { p.BWInter = 0 },
		func(p *Profile) { p.LatInterGPU = -1 },
		func(p *Profile) { p.CUDABlockSize = 0 },
		func(p *Profile) { p.RndvOverhead = -1e-6 },
		func(p *Profile) { p.EagerLimit = -1 },
		func(p *Profile) { p.ReduceFlops = 0 },
	}
	for i, mutate := range cases {
		p := MV2GDR()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: bad profile passed validation", i)
		}
	}
}

func TestEnvRoundTrip(t *testing.T) {
	p := MV2GDR()
	p.CUDABlockSize = 512 * KiB
	p.GPUDirectLimit = 32 * KiB
	env := p.Env()

	q := MV2GDR()
	if err := q.ApplyEnv(env); err != nil {
		t.Fatal(err)
	}
	if q.CUDABlockSize != p.CUDABlockSize || q.GPUDirectLimit != p.GPUDirectLimit {
		t.Fatalf("round trip lost knobs: %+v", q)
	}
}

func TestEnvContainsRealVariableNames(t *testing.T) {
	joined := strings.Join(MV2GDR().Env(), " ")
	for _, want := range []string{"MV2_CUDA_BLOCK_SIZE", "MV2_GPUDIRECT_LIMIT", "MV2_USE_GPUDIRECT=1"} {
		if !strings.Contains(joined, want) {
			t.Errorf("env output missing %s: %s", want, joined)
		}
	}
}

func TestApplyEnvErrors(t *testing.T) {
	p := MV2GDR()
	if err := p.ApplyEnv([]string{"NOEQUALS"}); err == nil {
		t.Error("malformed assignment accepted")
	}
	if err := p.ApplyEnv([]string{"MV2_CUDA_BLOCK_SIZE=abc"}); err == nil {
		t.Error("non-numeric value accepted")
	}
	if err := p.ApplyEnv([]string{"MV2_CUDA_BLOCK_SIZE=0"}); err == nil {
		t.Error("zero block size accepted")
	}
	if err := p.ApplyEnv([]string{"MV2_GPUDIRECT_LIMIT=-5"}); err == nil {
		t.Error("negative limit accepted")
	}
	if err := p.ApplyEnv([]string{"SOME_OTHER_VAR=7"}); err != nil {
		t.Errorf("unknown variable should be ignored: %v", err)
	}
}

func TestApplyEnvTogglesGPUDirect(t *testing.T) {
	p := MV2GDR()
	if err := p.ApplyEnv([]string{"MV2_USE_GPUDIRECT=0"}); err != nil {
		t.Fatal(err)
	}
	if p.GPUDirect {
		t.Fatal("MV2_USE_GPUDIRECT=0 did not disable GPU-direct")
	}
}
