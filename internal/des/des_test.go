package des

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyRun(t *testing.T) {
	s := New()
	if got := s.Run(); got != 0 {
		t.Fatalf("empty run ended at %v, want 0", got)
	}
	if s.Events() != 0 {
		t.Fatalf("events = %d, want 0", s.Events())
	}
}

func TestOrdering(t *testing.T) {
	s := New()
	var order []int
	s.At(3, func() { order = append(order, 3) })
	s.At(1, func() { order = append(order, 1) })
	s.At(2, func() { order = append(order, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 3 {
		t.Fatalf("clock = %v, want 3", s.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(1.0, func() { order = append(order, i) })
	}
	s.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events out of schedule order: %v", order)
		}
	}
}

func TestAfterChaining(t *testing.T) {
	s := New()
	var times []float64
	var step func()
	n := 0
	step = func() {
		times = append(times, s.Now())
		n++
		if n < 5 {
			s.After(0.5, step)
		}
	}
	s.After(0.5, step)
	s.Run()
	for i, tm := range times {
		want := 0.5 * float64(i+1)
		if math.Abs(tm-want) > 1e-12 {
			t.Fatalf("times[%d] = %v, want %v", i, tm, want)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(1, func() {})
	})
	s.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	New().After(-1, func() {})
}

func TestNonFiniteTimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NaN time did not panic")
		}
	}()
	New().At(math.NaN(), func() {})
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.At(1, func() { fired = true })
	s.Cancel(e)
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("event does not report cancelled")
	}
	// Cancelling twice, and cancelling nil, are no-ops.
	s.Cancel(e)
	s.Cancel(nil)
}

func TestCancelOneOfMany(t *testing.T) {
	s := New()
	var fired []int
	var events []*Event
	for i := 0; i < 8; i++ {
		i := i
		events = append(events, s.At(float64(i+1), func() { fired = append(fired, i) }))
	}
	s.Cancel(events[3])
	s.Cancel(events[6])
	s.Run()
	if len(fired) != 6 {
		t.Fatalf("fired %d events, want 6: %v", len(fired), fired)
	}
	for _, i := range fired {
		if i == 3 || i == 6 {
			t.Fatalf("cancelled event %d fired", i)
		}
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []float64
	for _, tm := range []float64{1, 2, 3, 4} {
		tm := tm
		s.At(tm, func() { fired = append(fired, tm) })
	}
	s.RunUntil(2.5)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want first two", fired)
	}
	if s.PeekTime() != 3 {
		t.Fatalf("next event at %v, want 3", s.PeekTime())
	}
	s.Run()
	if len(fired) != 4 {
		t.Fatalf("after full run fired = %v", fired)
	}
}

func TestPeekTimeEmpty(t *testing.T) {
	if !math.IsInf(New().PeekTime(), 1) {
		t.Fatal("PeekTime on empty sim not +Inf")
	}
}

func TestMaxEventsGuard(t *testing.T) {
	s := New()
	s.MaxEvents = 100
	var loop func()
	loop = func() { s.After(1, loop) }
	s.After(1, loop)
	defer func() {
		if recover() == nil {
			t.Error("runaway loop did not trip MaxEvents")
		}
	}()
	s.Run()
}

// Property: executing random event sets always yields non-decreasing
// firing times regardless of insertion order.
func TestPropertyMonotoneClock(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		count := int(n%64) + 1
		var fired []float64
		for i := 0; i < count; i++ {
			s.At(rng.Float64()*100, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		return sort.Float64sAreSorted(fired) && len(fired) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestResourceSerialises(t *testing.T) {
	s := New()
	r := NewResource(s, "nic", 1)
	var done []float64
	for i := 0; i < 3; i++ {
		r.Use(2.0, func() { done = append(done, s.Now()) })
	}
	s.Run()
	want := []float64{2, 4, 6}
	for i := range want {
		if math.Abs(done[i]-want[i]) > 1e-12 {
			t.Fatalf("done = %v, want %v", done, want)
		}
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	s := New()
	r := NewResource(s, "dma", 2)
	var done []float64
	for i := 0; i < 4; i++ {
		r.Use(2.0, func() { done = append(done, s.Now()) })
	}
	s.Run()
	want := []float64{2, 2, 4, 4}
	for i := range want {
		if math.Abs(done[i]-want[i]) > 1e-12 {
			t.Fatalf("done = %v, want %v", done, want)
		}
	}
}

func TestResourceReleaseIdlePanics(t *testing.T) {
	s := New()
	r := NewResource(s, "x", 1)
	defer func() {
		if recover() == nil {
			t.Error("release of idle resource did not panic")
		}
	}()
	r.Release()
}

func TestResourceZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capacity did not panic")
		}
	}()
	NewResource(New(), "x", 0)
}

func TestResourceQueueLen(t *testing.T) {
	s := New()
	r := NewResource(s, "x", 1)
	r.Acquire(func() {}) // hold forever (never released)
	r.Acquire(func() { t.Error("second acquire should stay queued") })
	s.Run()
	if r.QueueLen() != 1 {
		t.Fatalf("QueueLen = %d, want 1", r.QueueLen())
	}
	if r.InUse() != 1 {
		t.Fatalf("InUse = %d, want 1", r.InUse())
	}
}

// Property: with a capacity-c resource and n unit-duration jobs, the
// makespan is ceil(n/c).
func TestPropertyResourceMakespan(t *testing.T) {
	f := func(nn, cc uint8) bool {
		n := int(nn%20) + 1
		c := int(cc%4) + 1
		s := New()
		r := NewResource(s, "p", c)
		for i := 0; i < n; i++ {
			r.Use(1.0, nil)
		}
		end := s.Run()
		want := float64((n + c - 1) / c)
		return math.Abs(end-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
