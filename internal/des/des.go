// Package des implements a small discrete-event simulation engine.
//
// The engine drives the performance side of segscale: every simulated
// GPU rank, the Horovod coordinator, and the network links are modelled
// as processes that schedule events on a shared virtual clock. Virtual
// time is kept in float64 seconds; nothing in the engine sleeps or
// consults the wall clock, so simulating 132 ranks for hundreds of
// steps completes in milliseconds.
//
// The engine is deliberately sequential (a single event loop); the
// parallelism being studied is *inside* the simulated system, not in
// the simulator. This keeps results deterministic for a given seed.
package des

import (
	"container/heap"
	"fmt"
	"math"

	"segscale/internal/telemetry"
)

// Event is a scheduled callback in virtual time.
type Event struct {
	Time float64 // virtual seconds
	Fn   func()

	// seq breaks ties so same-time events run in schedule order,
	// which keeps the simulation deterministic.
	seq   uint64
	index int // heap index; -1 once popped or cancelled
}

// Cancelled reports whether the event was removed before firing.
func (e *Event) Cancelled() bool { return e.index == -2 }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].Time != q[j].Time {
		return q[i].Time < q[j].Time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Sim is a discrete-event simulator instance.
type Sim struct {
	now     float64
	queue   eventQueue
	nextSeq uint64
	steps   uint64
	// MaxEvents bounds the event count as a runaway-loop guard;
	// zero means no bound.
	MaxEvents uint64

	// Cached telemetry instruments, nil until SetProbe; the nil-safe
	// no-op methods keep the uninstrumented event loop at one branch
	// per instrument.
	eventsCtr *telemetry.Counter
	depth     *telemetry.Gauge
}

// SetProbe attaches telemetry to the event loop: an executed-event
// counter and a queue-depth gauge, the two signals that expose a
// runaway or starved simulation. A nil probe detaches.
func (s *Sim) SetProbe(p *telemetry.Probe) {
	s.eventsCtr = p.Counter("des_events_total")
	s.depth = p.Gauge("des_queue_depth_events")
}

// New returns an empty simulator with the clock at zero.
func New() *Sim {
	return &Sim{}
}

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// Events returns how many events have been executed so far.
func (s *Sim) Events() uint64 { return s.steps }

// At schedules fn at absolute virtual time t. Scheduling in the past
// panics: it always indicates a modelling bug.
func (s *Sim) At(t float64, fn func()) *Event {
	if t < s.now {
		//seglint:ignore nopanic scheduling in the past is a modelling bug; callers cannot recover mid-simulation
		panic(fmt.Sprintf("des: schedule at %.9fs before now %.9fs", t, s.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		//seglint:ignore nopanic a non-finite timestamp corrupts the event heap; fail loudly at the source
		panic(fmt.Sprintf("des: schedule at non-finite time %v", t))
	}
	e := &Event{Time: t, Fn: fn, seq: s.nextSeq} //seglint:ignore hotalloc one Event header per scheduled callback is the engine's unit of work; callers hold the pointer for Cancel
	s.nextSeq++
	heap.Push(&s.queue, e) //seglint:ignore hotalloc heap insert: the queue's backing array amortises to its high-water mark
	return e
}

// After schedules fn d seconds from now. Negative delays panic.
func (s *Sim) After(d float64, fn func()) *Event {
	if d < 0 {
		//seglint:ignore nopanic negative delay is a modelling bug, same contract as At
		panic(fmt.Sprintf("des: negative delay %.9fs", d))
	}
	return s.At(s.now+d, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (s *Sim) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&s.queue, e.index)
	e.index = -2
}

// Run executes events until the queue drains. It returns the final
// virtual time.
func (s *Sim) Run() float64 {
	return s.RunUntil(math.Inf(1))
}

// RunUntil executes events with Time <= deadline and returns the
// virtual time of the last executed event (or the unchanged clock if
// nothing ran). The clock never exceeds deadline.
func (s *Sim) RunUntil(deadline float64) float64 {
	for len(s.queue) > 0 {
		if s.queue[0].Time > deadline {
			break
		}
		e := heap.Pop(&s.queue).(*Event) //seglint:ignore hotalloc heap extract boxes through the container/heap interface; the Event itself was paid for at schedule time
		s.now = e.Time
		s.steps++
		s.eventsCtr.Inc()
		s.depth.Set(float64(len(s.queue)))
		if s.MaxEvents > 0 && s.steps > s.MaxEvents {
			//seglint:ignore nopanic the runaway guard fires inside event callbacks, which have no error channel
			panic(fmt.Sprintf("des: exceeded MaxEvents=%d (runaway simulation?)", s.MaxEvents))
		}
		e.Fn() //seglint:ignore hotalloc event dispatch is the engine's purpose; callbacks are audited at their schedule sites
	}
	return s.now
}

// Pending returns the number of not-yet-fired events.
func (s *Sim) Pending() int { return len(s.queue) }

// PeekTime returns the virtual time of the next event, or +Inf when
// the queue is empty.
func (s *Sim) PeekTime() float64 {
	if len(s.queue) == 0 {
		return math.Inf(1)
	}
	return s.queue[0].Time
}
