package des

// Resource models a capacity-limited facility (a NIC injection port, a
// DMA engine, a host staging buffer). Acquire queues FIFO; Release
// hands the slot to the next waiter at the current virtual time.
type Resource struct {
	sim      *Sim
	capacity int
	inUse    int
	waiters  []func()
	// Name is used in panics and traces.
	Name string
}

// NewResource creates a resource with the given concurrency capacity.
func NewResource(sim *Sim, name string, capacity int) *Resource {
	if capacity <= 0 {
		//seglint:ignore nopanic a non-positive capacity is a construction-time modelling bug
		panic("des: resource capacity must be positive")
	}
	return &Resource{sim: sim, capacity: capacity, Name: name}
}

// Acquire calls fn as soon as a slot is available — immediately (still
// via the event queue, preserving determinism) if the resource is
// idle, otherwise when a current holder releases.
func (r *Resource) Acquire(fn func()) {
	if r.inUse < r.capacity {
		r.inUse++
		r.sim.After(0, fn)
		return
	}
	r.waiters = append(r.waiters, fn)
}

// Release frees one slot. The longest-waiting Acquire, if any, runs at
// the current virtual time.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		//seglint:ignore nopanic double-release happens inside event callbacks, which have no error channel
		panic("des: release of idle resource " + r.Name)
	}
	if len(r.waiters) > 0 {
		next := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.sim.After(0, next)
		return
	}
	r.inUse--
}

// InUse returns the number of held slots.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of blocked acquirers.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Use is the common acquire-hold-release pattern: it acquires the
// resource, holds it for d virtual seconds, releases, then calls done
// (which may be nil).
func (r *Resource) Use(d float64, done func()) {
	r.Acquire(func() {
		r.sim.After(d, func() {
			r.Release()
			if done != nil {
				done()
			}
		})
	})
}
