package traceanalysis

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"segscale/internal/telemetry"
	"segscale/internal/timeline"
)

// stepTrace builds one rank1 step window [0,10] whose interior is
// fully described: forward, backward, a pack memcpy, an allreduce, and
// an idle recv wait on rank0, plus 1s nothing covers (overhead).
func stepTrace() *timeline.Recorder {
	rec := timeline.New()
	rec.AddEdge("rank0", timeline.PhaseSend, "send", "0>1#0.0", 0, 6)
	rec.Add("rank1", timeline.PhaseStep, "step", 0, 10)
	rec.Add("rank1", timeline.PhaseForward, "fwd", 0, 3)
	rec.Add("rank1", timeline.PhaseBackward, "bwd", 3, 5)
	rec.Add("rank1", timeline.PhaseMemcpy, "pack", 5, 5.5)
	rec.AddEdge("rank1", timeline.PhaseRecv, "recv", "0>1#0.0", 5.5, 7.5)
	rec.Add("rank1", timeline.PhaseAllreduce, "ring", 7.5, 9)
	return rec
}

func TestAttributeTraceBuckets(t *testing.T) {
	l, err := AttributeTrace(stepTrace(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(SumEpsilon); err != nil {
		t.Fatal(err)
	}
	var row *StepAttribution
	for i := range l.Steps {
		if l.Steps[i].Rank == 1 {
			row = &l.Steps[i]
		}
	}
	if row == nil {
		t.Fatal("no rank1 row")
	}
	want := BucketSet{}
	want[BucketForward] = 3
	want[BucketBackward] = 2
	want[BucketPack] = 0.5
	want[BucketIdleWait] = 2
	want[BucketWire] = 1.5
	want[BucketOverhead] = 1
	for i, v := range want {
		if math.Abs(row.Buckets[i]-v) > 1e-12 {
			t.Errorf("bucket %s = %g, want %g", BucketNames[i], row.Buckets[i], v)
		}
	}
	if math.Abs(row.StepSec-10) > 1e-12 {
		t.Errorf("StepSec = %g, want 10", row.StepSec)
	}
	if row.BlameRank != 0 || row.BlameEdge != "0>1#0.0" {
		t.Errorf("blame = rank %d edge %q, want rank 0 edge 0>1#0.0", row.BlameRank, row.BlameEdge)
	}
}

// TestAttributeTraceOverlapCountedOnce: an allreduce span overlapping
// the backward span must not double-count the overlap — the higher-
// priority bucket keeps it and the sum still equals the wall time.
func TestAttributeTraceOverlapCountedOnce(t *testing.T) {
	rec := timeline.New()
	rec.Add("rank0", timeline.PhaseStep, "step", 0, 4)
	rec.Add("rank0", timeline.PhaseBackward, "bwd", 0, 3)
	rec.Add("rank0", timeline.PhaseAllreduce, "overlapped", 2, 4)
	l, err := AttributeTrace(rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	row := l.Steps[0]
	if math.Abs(row.Buckets[BucketBackward]-3) > 1e-12 {
		t.Errorf("backward = %g, want 3", row.Buckets[BucketBackward])
	}
	if math.Abs(row.Buckets[BucketWire]-1) > 1e-12 {
		t.Errorf("allreduce_wire = %g, want 1 (overlap with backward claimed once)", row.Buckets[BucketWire])
	}
	if math.Abs(row.StepSec-4) > 1e-12 {
		t.Errorf("StepSec = %g, want 4", row.StepSec)
	}
	if err := l.Validate(SumEpsilon); err != nil {
		t.Fatal(err)
	}
}

func TestLedgerJSONRoundTripAndDeterminism(t *testing.T) {
	l, err := AttributeTrace(stepTrace(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := l.WriteLedger(&a); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteLedger(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("ledger serialisation is not byte-deterministic")
	}
	back, err := ReadLedger(&a)
	if err != nil {
		t.Fatal(err)
	}
	var c bytes.Buffer
	if err := back.WriteLedger(&c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Bytes(), c.Bytes()) {
		t.Fatal("ledger JSON does not round-trip byte-identically")
	}
}

func TestLedgerValidateCatchesBadSums(t *testing.T) {
	l := &Ledger{Schema: LedgerSchema, Source: "test", Ranks: 1}
	var b BucketSet
	b[BucketForward] = 1
	l.Steps = append(l.Steps, StepAttribution{Step: 0, Rank: 0, StepSec: 2, Buckets: b, BlameRank: -1})
	if err := l.Validate(1e-9); err == nil {
		t.Fatal("Validate accepted buckets that do not sum to the step wall")
	}
	l.Steps[0].StepSec = 1
	if err := l.Validate(1e-9); err != nil {
		t.Fatalf("Validate rejected an exact ledger: %v", err)
	}
	l.Schema = 99
	if err := l.Validate(1e-9); err == nil {
		t.Fatal("Validate accepted an unknown schema")
	}
}

func TestLedgerRecorderAndPublish(t *testing.T) {
	r := NewLedgerRecorder("perfsim", 2)
	var b0, b1 BucketSet
	b0[BucketForward] = 2
	b1[BucketForward] = 1
	b1[BucketIdleWait] = 1
	r.Record(StepAttribution{Step: 1, Rank: 1, StepSec: 2, Buckets: b1, BlameRank: 0})
	r.Record(StepAttribution{Step: 0, Rank: 0, StepSec: 2, Buckets: b0, BlameRank: -1})
	l := r.Ledger()
	if l.Steps[0].Step != 0 || l.Steps[1].Step != 1 {
		t.Fatal("Ledger() must sort rows by (step, rank)")
	}
	if got := l.BlameCounts(); got[0] != 1 || got[1] != 0 {
		t.Fatalf("BlameCounts = %v, want [1 0]", got)
	}
	means := l.BucketMeans()
	if math.Abs(means[BucketForward]-1.5) > 1e-12 {
		t.Fatalf("mean forward = %g, want 1.5", means[BucketForward])
	}

	reg := telemetry.NewRegistry("test")
	r.Publish(reg)
	var nilRec *LedgerRecorder
	nilRec.Record(StepAttribution{}) // nil recorder must be a no-op
	nilRec.Publish(reg)
	if nilRec.Len() != 0 {
		t.Fatal("nil recorder reports rows")
	}
}

func TestLaneRank(t *testing.T) {
	cases := map[string]int{
		"rank0": 0, "rank12": 12, "rank3.r1": 3, "tid7": 7,
		"coordinator": -1, "gpus6": -1, "rank": -1, "rankx": -1,
	}
	for lane, want := range cases {
		if got := LaneRank(lane); got != want {
			t.Errorf("LaneRank(%q) = %d, want %d", lane, got, want)
		}
	}
}

func TestLedgerValidateRejectsMalformedRows(t *testing.T) {
	row := func(rank, blame int, sec float64, b BucketSet) *Ledger {
		return &Ledger{Schema: LedgerSchema, Source: "test", Ranks: 2,
			Steps: []StepAttribution{{Rank: rank, StepSec: sec, Buckets: b, BlameRank: blame}}}
	}
	var ok BucketSet
	ok[BucketForward] = 1
	if err := (&Ledger{Schema: LedgerSchema, Source: "test", Ranks: 0}).Validate(0); err == nil {
		t.Error("Validate accepted a zero-rank ledger")
	}
	if err := row(5, -1, 1, ok).Validate(0); err == nil {
		t.Error("Validate accepted a row outside the rank range")
	}
	if err := row(0, 7, 1, ok).Validate(0); err == nil {
		t.Error("Validate accepted a blame rank outside the rank range")
	}
	var neg BucketSet
	neg[BucketForward] = -1
	if err := row(0, -1, -1, neg).Validate(0); err == nil {
		t.Error("Validate accepted a negative bucket")
	}
	var nan BucketSet
	nan[BucketForward] = math.NaN()
	if err := row(0, -1, 1, nan).Validate(0); err == nil {
		t.Error("Validate accepted a NaN bucket")
	}
}

func TestBucketSamplesAndRecorderLen(t *testing.T) {
	r := NewLedgerRecorder("test", 1)
	var b BucketSet
	b[BucketIdleWait] = 3
	r.Record(StepAttribution{Step: 0, Rank: 0, StepSec: 3, Buckets: b, BlameRank: -1})
	b[BucketIdleWait] = 5
	r.Record(StepAttribution{Step: 1, Rank: 0, StepSec: 5, Buckets: b, BlameRank: -1})
	if got := r.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	samples := r.Ledger().BucketSamples(BucketIdleWait)
	if len(samples) != 2 || samples[0] != 3 || samples[1] != 5 {
		t.Fatalf("BucketSamples = %v, want [3 5]", samples)
	}
	if got := r.Ledger().BucketSamples(BucketForward); got[0] != 0 || got[1] != 0 {
		t.Fatalf("untouched bucket samples = %v, want zeros", got)
	}
}

func TestPublishDAGStats(t *testing.T) {
	reg := telemetry.NewRegistry("test")
	PublishDAGStats(reg, DAGStats{OrphanRecvs: 2, MalformedEdges: 1})
	if got := reg.Counter(MetricOrphanEdges).Value(); got != 3 {
		t.Fatalf("%s = %g, want 3", MetricOrphanEdges, got)
	}
	PublishDAGStats(nil, DAGStats{OrphanRecvs: 9}) // nil registry: no-op
}

func TestReadLedgerRejectsGarbage(t *testing.T) {
	if _, err := ReadLedger(bytes.NewReader([]byte("{not json"))); err == nil {
		t.Error("ReadLedger accepted malformed JSON")
	}
	bad := &Ledger{Schema: LedgerSchema, Source: "test", Ranks: 1}
	var b BucketSet
	b[BucketForward] = 1
	bad.Steps = append(bad.Steps, StepAttribution{StepSec: 99, Buckets: b, BlameRank: -1})
	var buf bytes.Buffer
	out, err := json.Marshal(bad)
	if err != nil {
		t.Fatal(err)
	}
	buf.Write(out)
	if _, err := ReadLedger(&buf); err == nil {
		t.Error("ReadLedger accepted a ledger violating the sum invariant")
	}
}
