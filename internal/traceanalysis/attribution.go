package traceanalysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"segscale/internal/telemetry"
	"segscale/internal/timeline"
)

// LedgerSchema versions the attribution ledger's JSON shape; readers
// reject other versions rather than mis-diffing.
const LedgerSchema = 1

// Bucket indices. The ledger decomposes one rank's step wall time into
// these buckets; by construction they sum exactly to the step's wall
// time, so "where did the step go" always adds to 100%.
const (
	BucketDataStall = iota // waiting on the input pipeline
	BucketForward          // forward-pass compute
	BucketBackward         // backward-pass compute
	BucketInterrupts       // OS/jitter interruptions and recovery work
	BucketPack             // fusion-buffer pack/unpack memcpy
	BucketWire             // allreduce wire time (bandwidth + latency terms)
	BucketIdleWait         // idle, blocked on a slower rank (see BlameRank)
	BucketExposed          // communication not overlapped with compute
	BucketOverhead         // residual: everything the trace did not cover
	NumBuckets
)

// BucketNames gives each bucket's canonical snake_case name, in index
// order — the vocabulary shared by the JSON ledger, the Prometheus
// gauges, and seg-compare's per-bucket deltas.
var BucketNames = [NumBuckets]string{
	"data_stall", "forward", "backward", "interrupts", "pack",
	"allreduce_wire", "idle_wait", "exposed_comm", "overhead",
}

// BucketSet holds seconds per bucket, indexed by the Bucket* consts.
type BucketSet [NumBuckets]float64

// Sum totals the buckets — by the ledger invariant, the step's wall
// time.
func (b BucketSet) Sum() float64 {
	s := 0.0
	for _, v := range b {
		s += v
	}
	return s
}

// MarshalJSON renders the set as a fixed-order object keyed by bucket
// name ("data_stall_sec": ...). The order and float formatting are
// deterministic, which is what lets a seeded run's ledger serve as a
// byte-identical golden file.
func (b BucketSet) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, name := range BucketNames {
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, "%q:", name+"_sec")
		v, err := json.Marshal(b[i])
		if err != nil {
			return nil, err
		}
		buf.Write(v)
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// UnmarshalJSON accepts the object form MarshalJSON writes. Unknown
// keys error: a key mismatch means a schema drift seg-compare must not
// paper over.
func (b *BucketSet) UnmarshalJSON(data []byte) error {
	raw := map[string]float64{}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	for k, v := range raw {
		found := false
		for i, name := range BucketNames {
			if k == name+"_sec" {
				b[i] = v
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("traceanalysis: unknown ledger bucket %q", k)
		}
	}
	return nil
}

// StepAttribution is one (step, rank) row of the ledger: the rank's
// wall time for that step, its bucket decomposition, and — when the
// rank spent time idle-waiting — which rank it waited on and through
// which message edge the blame was established.
type StepAttribution struct {
	Step      int       `json:"step"`
	Rank      int       `json:"rank"`
	StepSec   float64   `json:"step_sec"`
	Buckets   BucketSet `json:"buckets"`
	BlameRank int       `json:"blame_rank"` // -1: no rank blamed
	BlameEdge string    `json:"blame_edge,omitempty"`
}

// Ledger is the full attribution table for one run.
type Ledger struct {
	Schema int               `json:"schema"`
	Source string            `json:"source"` // "perfsim" or "trace"
	Ranks  int               `json:"ranks"`
	Steps  []StepAttribution `json:"steps"`
}

// Sort orders rows by (step, rank) — the canonical ledger order every
// writer emits.
func (l *Ledger) Sort() {
	sort.Slice(l.Steps, func(i, j int) bool {
		if l.Steps[i].Step != l.Steps[j].Step {
			return l.Steps[i].Step < l.Steps[j].Step
		}
		return l.Steps[i].Rank < l.Steps[j].Rank
	})
}

// Validate checks the ledger's structural invariants: known schema,
// positive rank count, rows within [0, Ranks), and — the defining
// one — each row's buckets summing to its step wall time within eps.
func (l *Ledger) Validate(eps float64) error {
	if l.Schema != LedgerSchema {
		return fmt.Errorf("traceanalysis: ledger schema %d, want %d", l.Schema, LedgerSchema)
	}
	if l.Ranks <= 0 {
		return fmt.Errorf("traceanalysis: ledger has %d ranks", l.Ranks)
	}
	if eps <= 0 {
		eps = 1e-9
	}
	for i, s := range l.Steps {
		if s.Rank < 0 || s.Rank >= l.Ranks {
			return fmt.Errorf("traceanalysis: ledger row %d: rank %d outside %d ranks", i, s.Rank, l.Ranks)
		}
		if s.BlameRank < -1 || s.BlameRank >= l.Ranks {
			return fmt.Errorf("traceanalysis: ledger row %d: blame rank %d outside %d ranks", i, s.BlameRank, l.Ranks)
		}
		for b, v := range s.Buckets {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("traceanalysis: ledger row %d: bucket %s = %g", i, BucketNames[b], v)
			}
		}
		if diff := math.Abs(s.Buckets.Sum() - s.StepSec); diff > eps {
			return fmt.Errorf("traceanalysis: ledger row %d (step %d rank %d): buckets sum to %g, step wall is %g (|Δ|=%g > eps %g)",
				i, s.Step, s.Rank, s.Buckets.Sum(), s.StepSec, diff, eps)
		}
	}
	return nil
}

// BucketMeans averages each bucket across all rows (zero ledger →
// zeros) — the headline "where does a step go on average" view.
func (l *Ledger) BucketMeans() BucketSet {
	var sum BucketSet
	if len(l.Steps) == 0 {
		return sum
	}
	for _, s := range l.Steps {
		for i, v := range s.Buckets {
			sum[i] += v
		}
	}
	for i := range sum {
		sum[i] /= float64(len(l.Steps))
	}
	return sum
}

// BucketSamples collects one bucket's per-row samples, the input to
// seg-compare's significance test.
func (l *Ledger) BucketSamples(bucket int) []float64 {
	out := make([]float64, 0, len(l.Steps))
	for _, s := range l.Steps {
		out = append(out, s.Buckets[bucket])
	}
	return out
}

// BlameCounts tallies how often each rank was blamed for idle waits.
// Index r is the number of rows naming rank r; rows blaming no one are
// not counted.
func (l *Ledger) BlameCounts() []int {
	out := make([]int, l.Ranks)
	for _, s := range l.Steps {
		if s.BlameRank >= 0 && s.BlameRank < l.Ranks {
			out[s.BlameRank]++
		}
	}
	return out
}

// WriteLedger emits canonical, reproducible JSON: rows sorted, two-
// space indent, trailing newline. Byte-identical output for identical
// ledgers is a contract — the perfsim golden test depends on it.
func (l *Ledger) WriteLedger(w io.Writer) error {
	l.Sort()
	out, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	_, err = w.Write(out)
	return err
}

// ReadLedger parses and validates a ledger stream.
func ReadLedger(r io.Reader) (*Ledger, error) {
	var l Ledger
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&l); err != nil {
		return nil, fmt.Errorf("traceanalysis: parsing ledger: %w", err)
	}
	if err := l.Validate(SumEpsilon); err != nil {
		return nil, err
	}
	return &l, nil
}

// SumEpsilon is the tolerance for the buckets-sum-to-wall invariant:
// one float64 ulp per bucket on second-scale values, with margin.
const SumEpsilon = 1e-9

// LedgerRecorder accumulates attribution rows as a run produces them —
// perfsim records one row per (step, rank); the obs server snapshots
// it live for /debug/attribution. Safe for concurrent use; a nil
// recorder is a valid no-op.
type LedgerRecorder struct {
	mu     sync.Mutex
	source string
	ranks  int
	steps  []StepAttribution
}

// NewLedgerRecorder returns a recorder for a run with the given
// source label ("perfsim", "trace") and rank count.
func NewLedgerRecorder(source string, ranks int) *LedgerRecorder {
	return &LedgerRecorder{source: source, ranks: ranks}
}

// Record appends one row. Nil-safe.
func (r *LedgerRecorder) Record(sa StepAttribution) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.steps = append(r.steps, sa)
	r.mu.Unlock()
}

// Len returns how many rows have been recorded.
func (r *LedgerRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.steps)
}

// Ledger snapshots the recorded rows as a sorted ledger.
func (r *LedgerRecorder) Ledger() *Ledger {
	if r == nil {
		return &Ledger{Schema: LedgerSchema, Source: "none", Ranks: 0}
	}
	r.mu.Lock()
	steps := make([]StepAttribution, len(r.steps))
	copy(steps, r.steps)
	source, ranks := r.source, r.ranks
	r.mu.Unlock()
	l := &Ledger{Schema: LedgerSchema, Source: source, Ranks: ranks, Steps: steps}
	l.Sort()
	return l
}

// Attribution gauge names, one per bucket. The metricname pass holds
// registration sites to compile-time constant names, so the buckets
// are spelled out rather than looped over.
const (
	MetricAttrDataStall  = "train_step_attribution_data_stall_seconds"
	MetricAttrForward    = "train_step_attribution_forward_seconds"
	MetricAttrBackward   = "train_step_attribution_backward_seconds"
	MetricAttrInterrupts = "train_step_attribution_interrupts_seconds"
	MetricAttrPack       = "train_step_attribution_pack_seconds"
	MetricAttrWire       = "train_step_attribution_allreduce_wire_seconds"
	MetricAttrIdleWait   = "train_step_attribution_idle_wait_seconds"
	MetricAttrExposed    = "train_step_attribution_exposed_comm_seconds"
	MetricAttrOverhead   = "train_step_attribution_overhead_seconds"
	MetricAttrSteps      = "train_step_attribution_rows_events"
	// MetricOrphanEdges counts message edges the DAG builder had to
	// discard (orphan recvs, unmatched sends, duplicates, malformed).
	MetricOrphanEdges = "trace_orphan_edges_total"
)

// Publish mirrors the recorder's cumulative per-bucket totals into
// gauges on the given registry, so a live scrape of /metrics shows the
// running attribution next to the rest of the telemetry. Nil-safe on
// both sides.
func (r *LedgerRecorder) Publish(reg *telemetry.Registry) {
	if r == nil || reg == nil {
		return
	}
	var sum BucketSet
	r.mu.Lock()
	rows := len(r.steps)
	for _, s := range r.steps {
		for i, v := range s.Buckets {
			sum[i] += v
		}
	}
	r.mu.Unlock()
	reg.Gauge(MetricAttrDataStall).Set(sum[BucketDataStall])
	reg.Gauge(MetricAttrForward).Set(sum[BucketForward])
	reg.Gauge(MetricAttrBackward).Set(sum[BucketBackward])
	reg.Gauge(MetricAttrInterrupts).Set(sum[BucketInterrupts])
	reg.Gauge(MetricAttrPack).Set(sum[BucketPack])
	reg.Gauge(MetricAttrWire).Set(sum[BucketWire])
	reg.Gauge(MetricAttrIdleWait).Set(sum[BucketIdleWait])
	reg.Gauge(MetricAttrExposed).Set(sum[BucketExposed])
	reg.Gauge(MetricAttrOverhead).Set(sum[BucketOverhead])
	reg.Gauge(MetricAttrSteps).Set(float64(rows))
}

// PublishDAGStats records the DAG's discarded-edge count on the given
// registry's orphan counter. Nil-safe.
func PublishDAGStats(reg *telemetry.Registry, s DAGStats) {
	if reg == nil {
		return
	}
	reg.Counter(MetricOrphanEdges).Add(float64(s.OrphanEdges()))
}

// tracePriorities maps trace phases to buckets, highest priority
// first. AttributeTrace sweeps a step window bucket by bucket in this
// order: each phase's intervals are clipped to the window, the part
// already claimed by a higher-priority bucket is subtracted, and the
// remainder is both credited to the bucket and merged into the claimed
// set. The sweep makes the decomposition an exact partition — overlaps
// are counted once, by the higher-priority bucket — and whatever no
// span claimed lands in the overhead residual, so the buckets sum to
// the window width by construction.
var tracePriorities = []struct {
	bucket int
	phases []string
}{
	{BucketDataStall, []string{timeline.PhaseWait}},
	{BucketForward, []string{timeline.PhaseForward}},
	{BucketBackward, []string{timeline.PhaseBackward}},
	{BucketInterrupts, []string{timeline.PhaseRecovery}},
	{BucketPack, []string{timeline.PhaseMemcpy}},
	{BucketWire, []string{timeline.PhaseAllreduce}},
	{BucketIdleWait, []string{timeline.PhaseRecv, timeline.PhaseBarrier, timeline.PhaseNegotiate}},
	{BucketExposed, []string{timeline.PhaseSend, timeline.PhaseBcast, timeline.PhaseAllgather}},
}

// interval is a half-open [lo, hi) span of trace time.
type interval struct{ lo, hi float64 }

// subtract returns the parts of iv not covered by the sorted,
// disjoint claimed set.
func subtract(iv interval, claimed []interval) []interval {
	out := []interval{iv}
	for _, c := range claimed {
		var next []interval
		for _, p := range out {
			if c.hi <= p.lo || c.lo >= p.hi {
				next = append(next, p)
				continue
			}
			if c.lo > p.lo {
				next = append(next, interval{p.lo, c.lo})
			}
			if c.hi < p.hi {
				next = append(next, interval{c.hi, p.hi})
			}
		}
		out = next
	}
	return out
}

// merge inserts iv into the claimed set, keeping it sorted and
// disjoint.
func merge(claimed []interval, iv interval) []interval {
	claimed = append(claimed, iv)
	sort.Slice(claimed, func(i, j int) bool { return claimed[i].lo < claimed[j].lo })
	out := claimed[:1]
	for _, c := range claimed[1:] {
		last := &out[len(out)-1]
		if c.lo <= last.hi {
			if c.hi > last.hi {
				last.hi = c.hi
			}
		} else {
			out = append(out, c)
		}
	}
	return out
}

// measure sums interval widths.
func measure(ivs []interval) float64 {
	s := 0.0
	for _, iv := range ivs {
		s += iv.hi - iv.lo
	}
	return s
}

// LaneRank extracts the rank from a lane name of the forms the
// training loop and exporters produce: "rank3", "rank3.r1" (recovery
// incarnations), "tid3" (read back from a Chrome trace). Returns -1
// when the lane carries no rank.
func LaneRank(lane string) int {
	for _, prefix := range []string{"rank", "tid"} {
		if !strings.HasPrefix(lane, prefix) {
			continue
		}
		rest := lane[len(prefix):]
		if dot := strings.IndexByte(rest, '.'); dot >= 0 {
			rest = rest[:dot]
		}
		if n, err := strconv.Atoi(rest); err == nil && n >= 0 {
			return n
		}
	}
	return -1
}

// AttributeTrace walks the happens-before DAG and decomposes every
// rank's TRAIN_STEP windows into the ledger's buckets. Within each
// window the priority sweep over tracePriorities partitions the wall
// time exactly; the idle-wait bucket's blame edge is the matched recv
// edge contributing the most claimed time in the window (the message
// whose late arrival the rank spent longest waiting for), and the
// blamed rank is that edge's sender.
func AttributeTrace(rec *timeline.Recorder, d *DAG) (*Ledger, error) {
	if rec == nil || len(rec.Events) == 0 {
		return nil, fmt.Errorf("traceanalysis: trace has no events")
	}
	if d == nil {
		d = BuildDAG(rec)
	}
	maxRank := -1
	for _, lane := range d.Lanes {
		if r := LaneRank(lane); r > maxRank {
			maxRank = r
		}
	}
	if maxRank < 0 {
		return nil, fmt.Errorf("traceanalysis: no rank lanes in trace")
	}
	l := &Ledger{Schema: LedgerSchema, Source: "trace", Ranks: maxRank + 1}

	// Events are already in per-lane program order inside the DAG.
	// Group each lane's events, then attribute each TRAIN_STEP window.
	for start := 0; start < len(d.Events); {
		end := start
		for end < len(d.Events) && d.Events[end].Lane == d.Events[start].Lane {
			end++
		}
		lane := d.Events[start:end]
		rank := LaneRank(lane[0].Lane)
		if rank >= 0 {
			stepIdx := 0
			for _, ev := range lane {
				if ev.Phase != timeline.PhaseStep {
					continue
				}
				row := attributeWindow(lane, ev, d, rank, stepIdx)
				l.Steps = append(l.Steps, row)
				stepIdx++
			}
		}
		start = end
	}
	if len(l.Steps) == 0 {
		return nil, fmt.Errorf("traceanalysis: no %s windows in trace", timeline.PhaseStep)
	}
	l.Sort()
	return l, nil
}

// attributeWindow runs the priority sweep over one lane's step window.
func attributeWindow(lane []timeline.Event, win timeline.Event, d *DAG, rank, stepIdx int) StepAttribution {
	row := StepAttribution{Step: stepIdx, Rank: rank, BlameRank: -1}
	var claimed []interval
	blameBest := 0.0
	for _, pr := range tracePriorities {
		for _, ev := range lane {
			if !phaseIn(ev.Phase, pr.phases) {
				continue
			}
			iv := interval{math.Max(ev.Start, win.Start), math.Min(ev.End, win.End)}
			if iv.hi <= iv.lo {
				continue
			}
			free := subtract(iv, claimed)
			got := measure(free)
			if got <= 0 {
				continue
			}
			row.Buckets[pr.bucket] += got
			for _, f := range free {
				claimed = merge(claimed, f)
			}
			// Blame: the matched recv edge that claimed the most
			// idle-wait time names the rank this rank stood waiting on.
			if pr.bucket == BucketIdleWait && ev.Phase == timeline.PhaseRecv && ev.Edge != "" {
				if _, ok := d.Matched[ev.Edge]; ok && (got > blameBest || (got == blameBest && ev.Edge < row.BlameEdge)) {
					if e, err := timeline.ParseEdge(ev.Edge); err == nil {
						blameBest = got
						row.BlameEdge = ev.Edge
						row.BlameRank = e.Src
					}
				}
			}
		}
	}
	// Residual: window time no span claimed.
	wall := win.End - win.Start
	covered := measure(claimed)
	if wall > covered {
		row.Buckets[BucketOverhead] = wall - covered
	}
	// The ledger invariant — buckets sum exactly to the step wall — is
	// enforced by defining StepSec as the sum; it equals the window
	// width up to float rounding, which Validate checks against eps.
	row.StepSec = row.Buckets.Sum()
	return row
}

func phaseIn(p string, set []string) bool {
	for _, s := range set {
		if p == s {
			return true
		}
	}
	return false
}
