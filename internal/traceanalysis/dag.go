package traceanalysis

import (
	"sort"

	"segscale/internal/timeline"
)

// DAG is the cross-rank happens-before graph assembled from a trace.
// Per-lane timestamps in this codebase are not comparable across lanes
// (real training stamps spans with per-rank step-counter clocks), so
// causal order comes from two sources only: program order within a
// lane, and matched message edges — a send span and the recv span
// carrying the same "src>dst#seq.inc" edge ID.
//
// Nodes are trace events, indexed into Events; Succ[i] lists the
// events that happen directly after event i. BuildDAG never panics and
// never fails: malformed traces (receives without sends, duplicate
// edge IDs, edges stranded by a crashed incarnation) degrade into a
// smaller but still valid DAG, with every discarded edge counted in
// Stats so the trace_orphan_edges_total metric can surface the decay.
type DAG struct {
	Events []timeline.Event
	Succ   [][]int
	Lanes  []string // sorted lane names
	// Matched maps an edge ID to its [send, recv] node indices.
	Matched map[string][2]int
	Stats   DAGStats
}

// DAGStats counts how cleanly the trace's message edges paired up.
type DAGStats struct {
	MessageEdges   int // matched send→recv pairs
	OrphanRecvs    int // recv spans whose edge has no recorded send
	UnmatchedSends int // send spans whose edge has no recorded recv
	DuplicateEdges int // spans reusing an edge ID already claimed
	MalformedEdges int // edge attributes ParseEdge rejects
}

// OrphanEdges totals every degraded edge — the value behind
// trace_orphan_edges_total. Matched pairs are not orphans.
func (s DAGStats) OrphanEdges() int {
	return s.OrphanRecvs + s.UnmatchedSends + s.DuplicateEdges + s.MalformedEdges
}

// BuildDAG assembles the happens-before DAG from a recorded trace. A
// nil or empty recorder yields an empty DAG.
func BuildDAG(rec *timeline.Recorder) *DAG {
	d := &DAG{Matched: map[string][2]int{}}
	if rec == nil || len(rec.Events) == 0 {
		return d
	}
	// Sort into per-lane program order; within a lane, (Start, End)
	// order is program order because each lane is one goroutine.
	d.Events = make([]timeline.Event, len(rec.Events))
	copy(d.Events, rec.Events)
	sort.SliceStable(d.Events, func(i, j int) bool {
		a, b := d.Events[i], d.Events[j]
		if a.Lane != b.Lane {
			return a.Lane < b.Lane
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.End < b.End
	})
	d.Succ = make([][]int, len(d.Events))
	for i := 1; i < len(d.Events); i++ {
		if d.Events[i].Lane == d.Events[i-1].Lane {
			d.Succ[i-1] = append(d.Succ[i-1], i)
		} else {
			d.Lanes = append(d.Lanes, d.Events[i-1].Lane)
		}
	}
	d.Lanes = append(d.Lanes, d.Events[len(d.Events)-1].Lane)

	// First pass claims send sides; the recv pass then pairs against
	// them. Edge IDs are unique per message by construction (per-pair
	// seq + incarnation), so a reused ID is trace corruption, counted
	// and skipped — first claim wins.
	sends := map[string]int{}
	for i, e := range d.Events {
		if e.Edge == "" || e.Phase != timeline.PhaseSend {
			continue
		}
		if _, err := timeline.ParseEdge(e.Edge); err != nil {
			d.Stats.MalformedEdges++
			continue
		}
		if _, dup := sends[e.Edge]; dup {
			d.Stats.DuplicateEdges++
			continue
		}
		sends[e.Edge] = i
	}
	for i, e := range d.Events {
		if e.Edge == "" || e.Phase != timeline.PhaseRecv {
			continue
		}
		if _, err := timeline.ParseEdge(e.Edge); err != nil {
			d.Stats.MalformedEdges++
			continue
		}
		if _, dup := d.Matched[e.Edge]; dup {
			d.Stats.DuplicateEdges++
			continue
		}
		si, ok := sends[e.Edge]
		if !ok {
			// No recorded send: the classic shape of an edge stranded by
			// a crashed incarnation (the sender died before its span was
			// flushed) or a truncated flight-recorder window.
			d.Stats.OrphanRecvs++
			continue
		}
		d.Matched[e.Edge] = [2]int{si, i}
		d.Succ[si] = append(d.Succ[si], i)
		d.Stats.MessageEdges++
	}
	d.Stats.UnmatchedSends = len(sends) - d.Stats.MessageEdges
	return d
}

// Reaches reports whether event i happens before event j by walking
// program-order and message edges. It is the test- and tooling-facing
// causality query; O(V+E) per call.
func (d *DAG) Reaches(i, j int) bool {
	if i < 0 || j < 0 || i >= len(d.Events) || j >= len(d.Events) {
		return false
	}
	if i == j {
		return true
	}
	seen := make([]bool, len(d.Events))
	stack := []int{i}
	seen[i] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range d.Succ[n] {
			if s == j {
				return true
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}
