// Package traceanalysis turns a recorded timeline into the reports a
// performance engineer asks for first: where did the time go
// (per-phase duration statistics), what sequence of events bounded
// the run (critical path), and which ranks held everyone else back
// (stragglers). It consumes the same timeline.Recorder that both the
// simulator and the real training loop emit, so one tool serves both.
package traceanalysis

import (
	"fmt"
	"math"
	"sort"

	"segscale/internal/timeline"
)

// Options tunes the analysis.
type Options struct {
	// StragglerFactor flags a lane whose busy time exceeds the median
	// lane's by this multiple (default 1.2 — a rank 20% slower than
	// the median gates a synchronous allreduce by that margin).
	StragglerFactor float64
	// HistBuckets is the linear bucket count for per-phase duration
	// histograms (default 8).
	HistBuckets int
}

func (o Options) withDefaults() Options {
	if o.StragglerFactor <= 1 {
		o.StragglerFactor = 1.2
	}
	if o.HistBuckets <= 0 {
		o.HistBuckets = 8
	}
	return o
}

// PhaseStats summarises one phase's event durations.
type PhaseStats struct {
	Phase string
	Count int
	Total float64 // summed duration, seconds
	Min   float64
	Max   float64
	Mean  float64
	P50   float64
	P90   float64
	// Hist is a linear histogram of durations over [Min, Max] with
	// len(Hist) equal buckets (all events land in bucket 0 when
	// Min == Max).
	Hist []int
}

// PathStep is one event on the critical path, with the idle gap that
// preceded it.
type PathStep struct {
	Event  timeline.Event
	GapSec float64 // idle time between the previous step's end and this start
}

// Straggler is a lane whose busy time exceeds the threshold.
type Straggler struct {
	Lane    string
	BusySec float64
	Ratio   float64 // BusySec / median lane busy time
}

// LaneStats is one lane's aggregate activity.
type LaneStats struct {
	Lane    string
	Events  int
	BusySec float64
}

// Report is the full analysis of one trace.
type Report struct {
	Events  int
	SpanSec float64
	Phases  []PhaseStats // sorted by Total, descending
	Lanes   []LaneStats  // sorted by lane name

	// CriticalPath chains backwards from the latest-ending event:
	// each step's predecessor is the latest-ending event that ends at
	// or before the step starts. The result is in chronological
	// order. CriticalSec is the summed busy time on the path;
	// SpanSec - CriticalSec - (summed gaps) is zero by construction.
	CriticalPath []PathStep
	CriticalSec  float64

	// Stragglers lists lanes whose busy time exceeds
	// StragglerFactor × the median lane busy time, slowest first.
	// MedianBusySec is that median.
	Stragglers    []Straggler
	MedianBusySec float64
}

// Analyze computes the report. It errors on an empty or zero-width
// trace rather than emitting a degenerate report.
func Analyze(rec *timeline.Recorder, opts Options) (*Report, error) {
	if rec == nil || len(rec.Events) == 0 {
		return nil, fmt.Errorf("traceanalysis: trace has no events")
	}
	lo, hi := rec.Span()
	if hi <= lo {
		return nil, fmt.Errorf("traceanalysis: trace spans zero time")
	}
	opts = opts.withDefaults()
	r := &Report{Events: len(rec.Events), SpanSec: hi - lo}
	r.Phases = phaseStats(rec.Events, opts.HistBuckets)
	r.Lanes = laneStats(rec.Events)
	r.CriticalPath, r.CriticalSec = criticalPath(rec.Events)
	r.Stragglers, r.MedianBusySec = stragglers(r.Lanes, opts.StragglerFactor)
	return r, nil
}

func phaseStats(events []timeline.Event, buckets int) []PhaseStats {
	durs := map[string][]float64{}
	for _, e := range events {
		durs[e.Phase] = append(durs[e.Phase], e.End-e.Start)
	}
	out := make([]PhaseStats, 0, len(durs))
	for ph, ds := range durs {
		sort.Float64s(ds)
		st := PhaseStats{
			Phase: ph, Count: len(ds),
			Min: ds[0], Max: ds[len(ds)-1],
			P50: quantile(ds, 0.50), P90: quantile(ds, 0.90),
			Hist: make([]int, buckets),
		}
		for _, d := range ds {
			st.Total += d
		}
		st.Mean = st.Total / float64(st.Count)
		width := (st.Max - st.Min) / float64(buckets)
		for _, d := range ds {
			i := 0
			if width > 0 {
				i = int((d - st.Min) / width)
				if i >= buckets {
					i = buckets - 1 // d == Max lands in the top bucket
				}
			}
			st.Hist[i]++
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}

// quantile interpolates q in [0,1] over sorted ds.
func quantile(ds []float64, q float64) float64 {
	if len(ds) == 1 {
		return ds[0]
	}
	pos := q * float64(len(ds)-1)
	i := int(math.Floor(pos))
	frac := pos - float64(i)
	if i+1 >= len(ds) {
		return ds[len(ds)-1]
	}
	return ds[i]*(1-frac) + ds[i+1]*frac
}

func laneStats(events []timeline.Event) []LaneStats {
	byLane := map[string]*LaneStats{}
	var names []string
	for _, e := range events {
		ls, ok := byLane[e.Lane]
		if !ok {
			ls = &LaneStats{Lane: e.Lane}
			byLane[e.Lane] = ls
			names = append(names, e.Lane)
		}
		ls.Events++
		ls.BusySec += e.End - e.Start
	}
	sort.Strings(names)
	out := make([]LaneStats, 0, len(names))
	for _, n := range names {
		out = append(out, *byLane[n])
	}
	return out
}

// criticalPath chains backwards from the latest-ending event. The
// predecessor of a step is the latest-ending event (any lane) whose
// end does not pass the step's start — the event whose completion
// released the step to run. Ties break toward longer events so the
// path prefers substantive work over zero-width markers.
func criticalPath(events []timeline.Event) ([]PathStep, float64) {
	sorted := make([]timeline.Event, len(events))
	copy(sorted, events)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].End != sorted[j].End {
			return sorted[i].End < sorted[j].End
		}
		return sorted[i].Start < sorted[j].Start
	})
	// Walk from the event that finishes last.
	cur := sorted[len(sorted)-1]
	var rev []timeline.Event
	rev = append(rev, cur)
	for {
		var pred *timeline.Event
		// Candidates are sorted[:idx] — everything ending by
		// cur.Start. Scan from the latest-ending down; requiring
		// Start strictly before cur.Start guarantees progress (a
		// zero-width marker exactly at the boundary cannot become
		// its own predecessor).
		idx := sort.Search(len(sorted), func(i int) bool { return sorted[i].End > cur.Start })
		for i := idx - 1; i >= 0; i-- {
			e := sorted[i]
			if pred != nil && e.End < pred.End {
				break // ends only decrease from here; the winner is fixed
			}
			if e.Start >= cur.Start {
				continue
			}
			if pred == nil || e.Start < pred.Start {
				e := e
				pred = &e
			}
		}
		if pred == nil {
			break
		}
		cur = *pred
		rev = append(rev, cur)
	}
	steps := make([]PathStep, 0, len(rev))
	var busy float64
	for i := len(rev) - 1; i >= 0; i-- {
		e := rev[i]
		gap := 0.0
		if i < len(rev)-1 {
			gap = e.Start - rev[i+1].End
		}
		steps = append(steps, PathStep{Event: e, GapSec: gap})
		busy += e.End - e.Start
	}
	return steps, busy
}

func stragglers(lanes []LaneStats, factor float64) ([]Straggler, float64) {
	if len(lanes) == 0 {
		return nil, 0
	}
	busy := make([]float64, 0, len(lanes))
	for _, ls := range lanes {
		busy = append(busy, ls.BusySec)
	}
	sort.Float64s(busy)
	median := quantile(busy, 0.50)
	var out []Straggler
	for _, ls := range lanes {
		if median > 0 && ls.BusySec > factor*median {
			out = append(out, Straggler{Lane: ls.Lane, BusySec: ls.BusySec, Ratio: ls.BusySec / median})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].BusySec != out[j].BusySec {
			return out[i].BusySec > out[j].BusySec
		}
		return out[i].Lane < out[j].Lane
	})
	return out, median
}
