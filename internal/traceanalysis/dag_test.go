package traceanalysis

import (
	"testing"

	"segscale/internal/timeline"
)

// twoRankTrace builds a minimal clean trace: rank0 sends to rank1,
// each lane has a step window around its activity.
func twoRankTrace() *timeline.Recorder {
	rec := timeline.New()
	rec.Add("rank0", timeline.PhaseStep, "step", 0, 4)
	rec.Add("rank0", timeline.PhaseForward, "fwd", 0, 2)
	rec.AddEdge("rank0", timeline.PhaseSend, "send", "0>1#0.0", 2, 3)
	rec.Add("rank1", timeline.PhaseStep, "step", 0, 4)
	rec.Add("rank1", timeline.PhaseForward, "fwd", 0, 1)
	rec.AddEdge("rank1", timeline.PhaseRecv, "recv", "0>1#0.0", 1, 3)
	return rec
}

func TestBuildDAGMatchesEdges(t *testing.T) {
	d := BuildDAG(twoRankTrace())
	if d.Stats.MessageEdges != 1 {
		t.Fatalf("MessageEdges = %d, want 1", d.Stats.MessageEdges)
	}
	if got := d.Stats.OrphanEdges(); got != 0 {
		t.Fatalf("OrphanEdges = %d, want 0", got)
	}
	pair, ok := d.Matched["0>1#0.0"]
	if !ok {
		t.Fatal("edge 0>1#0.0 not matched")
	}
	send, recv := pair[0], pair[1]
	if d.Events[send].Lane != "rank0" || d.Events[recv].Lane != "rank1" {
		t.Fatalf("matched pair lanes = %q, %q", d.Events[send].Lane, d.Events[recv].Lane)
	}
	// Causality: rank0's forward happens before rank1's recv, through
	// program order on rank0 and the message edge.
	var fwd0 int = -1
	for i, e := range d.Events {
		if e.Lane == "rank0" && e.Phase == timeline.PhaseForward {
			fwd0 = i
		}
	}
	if !d.Reaches(fwd0, recv) {
		t.Error("rank0 forward should happen-before rank1 recv via the message edge")
	}
	if d.Reaches(recv, fwd0) {
		t.Error("happens-before must not run backwards through a message edge")
	}
}

func TestBuildDAGLanes(t *testing.T) {
	d := BuildDAG(twoRankTrace())
	if len(d.Lanes) != 2 || d.Lanes[0] != "rank0" || d.Lanes[1] != "rank1" {
		t.Fatalf("Lanes = %v", d.Lanes)
	}
}

// TestBuildDAGRecvWithoutSend: a recv whose edge has no recorded send
// (sender crashed before its span flushed) degrades to an orphan, not
// a panic, and the rest of the DAG survives.
func TestBuildDAGRecvWithoutSend(t *testing.T) {
	rec := twoRankTrace()
	rec.AddEdge("rank1", timeline.PhaseRecv, "recv", "0>1#9.0", 3, 3.5)
	d := BuildDAG(rec)
	if d.Stats.OrphanRecvs != 1 {
		t.Fatalf("OrphanRecvs = %d, want 1", d.Stats.OrphanRecvs)
	}
	if d.Stats.MessageEdges != 1 {
		t.Fatalf("MessageEdges = %d, want 1 (clean edge must survive)", d.Stats.MessageEdges)
	}
	if d.Stats.OrphanEdges() != 1 {
		t.Fatalf("OrphanEdges = %d, want 1", d.Stats.OrphanEdges())
	}
}

// TestBuildDAGDuplicateEdgeIDs: reused edge IDs (trace corruption or a
// duplicated flight dump) are counted and skipped; first claim wins.
func TestBuildDAGDuplicateEdgeIDs(t *testing.T) {
	rec := twoRankTrace()
	rec.AddEdge("rank0", timeline.PhaseSend, "send", "0>1#0.0", 3, 3.5) // dup send
	rec.AddEdge("rank1", timeline.PhaseRecv, "recv", "0>1#0.0", 3.5, 4) // dup recv
	d := BuildDAG(rec)
	if d.Stats.DuplicateEdges != 2 {
		t.Fatalf("DuplicateEdges = %d, want 2", d.Stats.DuplicateEdges)
	}
	if d.Stats.MessageEdges != 1 {
		t.Fatalf("MessageEdges = %d, want 1", d.Stats.MessageEdges)
	}
}

// TestBuildDAGCrashedIncarnation: edges from different incarnations
// never pair even with equal (src,dst,seq) — the incarnation label is
// part of the edge identity — so a pre-crash send cannot satisfy a
// post-restart recv.
func TestBuildDAGCrashedIncarnation(t *testing.T) {
	rec := timeline.New()
	rec.AddEdge("rank0", timeline.PhaseSend, "send", "0>1#0.0", 0, 1) // incarnation 0, then crash
	rec.AddEdge("rank1.r1", timeline.PhaseRecv, "recv", "0>1#0.1", 2, 3)
	d := BuildDAG(rec)
	if d.Stats.MessageEdges != 0 {
		t.Fatalf("MessageEdges = %d, want 0 across incarnations", d.Stats.MessageEdges)
	}
	if d.Stats.OrphanRecvs != 1 || d.Stats.UnmatchedSends != 1 {
		t.Fatalf("OrphanRecvs = %d, UnmatchedSends = %d, want 1 and 1",
			d.Stats.OrphanRecvs, d.Stats.UnmatchedSends)
	}
	if d.Stats.OrphanEdges() != 2 {
		t.Fatalf("OrphanEdges = %d, want 2", d.Stats.OrphanEdges())
	}
}

// TestBuildDAGMalformedEdges: unparseable edge attributes are counted,
// skipped, and never panic.
func TestBuildDAGMalformedEdges(t *testing.T) {
	rec := twoRankTrace()
	rec.AddEdge("rank0", timeline.PhaseSend, "send", "not-an-edge", 3, 3.5)
	rec.AddEdge("rank1", timeline.PhaseRecv, "recv", ">>##..", 3, 3.5)
	d := BuildDAG(rec)
	if d.Stats.MalformedEdges != 2 {
		t.Fatalf("MalformedEdges = %d, want 2", d.Stats.MalformedEdges)
	}
	if d.Stats.MessageEdges != 1 {
		t.Fatalf("MessageEdges = %d, want 1", d.Stats.MessageEdges)
	}
}

func TestBuildDAGEmpty(t *testing.T) {
	d := BuildDAG(nil)
	if len(d.Events) != 0 || len(d.Lanes) != 0 {
		t.Fatalf("empty DAG has events %d lanes %d", len(d.Events), len(d.Lanes))
	}
	d = BuildDAG(timeline.New())
	if d.Stats.OrphanEdges() != 0 {
		t.Fatal("empty trace must have no orphans")
	}
}
