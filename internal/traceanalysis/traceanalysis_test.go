package traceanalysis

import (
	"math"
	"strings"
	"testing"

	"segscale/internal/timeline"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(nil, Options{}); err == nil {
		t.Error("nil recorder: want error")
	}
	if _, err := Analyze(timeline.New(), Options{}); err == nil {
		t.Error("empty trace: want error")
	}
	rec := timeline.New()
	rec.Add("rank0", timeline.PhaseForward, "x", 1.0, 1.0)
	if _, err := Analyze(rec, Options{}); err == nil {
		t.Error("zero-width trace: want error")
	}
}

func TestPhaseStats(t *testing.T) {
	rec := timeline.New()
	rec.Add("rank0", timeline.PhaseForward, "f", 0, 1)
	rec.Add("rank0", timeline.PhaseForward, "f", 1, 4)
	rec.Add("rank0", timeline.PhaseAllreduce, "ar", 4, 4.5)
	r, err := Analyze(rec, Options{HistBuckets: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(r.Phases))
	}
	fw := r.Phases[0] // FORWARD has the larger total, sorts first
	if fw.Phase != timeline.PhaseForward {
		t.Fatalf("top phase = %s, want FORWARD", fw.Phase)
	}
	if fw.Count != 2 || !almost(fw.Total, 4) || !almost(fw.Min, 1) || !almost(fw.Max, 3) {
		t.Errorf("FORWARD stats = %+v", fw)
	}
	if !almost(fw.Mean, 2) || !almost(fw.P50, 2) {
		t.Errorf("FORWARD mean/p50 = %g/%g, want 2/2", fw.Mean, fw.P50)
	}
	// Durations 1 and 3 over [1,3] in 4 buckets: one in the first,
	// one in the last.
	if fw.Hist[0] != 1 || fw.Hist[3] != 1 || fw.Hist[1]+fw.Hist[2] != 0 {
		t.Errorf("FORWARD hist = %v", fw.Hist)
	}
	// Single-event phase: everything lands in bucket 0.
	ar := r.Phases[1]
	if ar.Count != 1 || ar.Hist[0] != 1 {
		t.Errorf("MPI_ALLREDUCE stats = %+v", ar)
	}
}

func TestQuantile(t *testing.T) {
	ds := []float64{1, 2, 3, 4}
	if got := quantile(ds, 0.5); !almost(got, 2.5) {
		t.Errorf("p50 = %g, want 2.5", got)
	}
	if got := quantile(ds, 0); !almost(got, 1) {
		t.Errorf("p0 = %g, want 1", got)
	}
	if got := quantile(ds, 1); !almost(got, 4) {
		t.Errorf("p100 = %g, want 4", got)
	}
	if got := quantile([]float64{7}, 0.9); !almost(got, 7) {
		t.Errorf("single-element p90 = %g, want 7", got)
	}
}

func TestCriticalPath(t *testing.T) {
	// rank0: [0,2] forward, then idle; rank1: [0,1] forward then
	// [2.5,5] allreduce. The path should be rank0's forward (released
	// the exchange), a 0.5 gap, then rank1's allreduce.
	rec := timeline.New()
	rec.Add("rank0", timeline.PhaseForward, "f0", 0, 2)
	rec.Add("rank1", timeline.PhaseForward, "f1", 0, 1)
	rec.Add("rank1", timeline.PhaseAllreduce, "ar", 2.5, 5)
	r, err := Analyze(rec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.CriticalPath) != 2 {
		t.Fatalf("path length = %d, want 2: %+v", len(r.CriticalPath), r.CriticalPath)
	}
	if r.CriticalPath[0].Event.Name != "f0" || r.CriticalPath[1].Event.Name != "ar" {
		t.Errorf("path = %q -> %q, want f0 -> ar",
			r.CriticalPath[0].Event.Name, r.CriticalPath[1].Event.Name)
	}
	if !almost(r.CriticalPath[1].GapSec, 0.5) {
		t.Errorf("gap = %g, want 0.5", r.CriticalPath[1].GapSec)
	}
	if !almost(r.CriticalSec, 4.5) {
		t.Errorf("critical busy = %g, want 4.5", r.CriticalSec)
	}
}

func TestCriticalPathZeroWidthTerminates(t *testing.T) {
	// Zero-width markers at the same instant must not produce an
	// infinite predecessor cycle.
	rec := timeline.New()
	rec.Add("rank0", timeline.PhaseNegotiate, "m1", 1, 1)
	rec.Add("rank1", timeline.PhaseNegotiate, "m2", 1, 1)
	rec.Add("rank0", timeline.PhaseForward, "f", 0, 2)
	r, err := Analyze(rec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.CriticalPath) != 1 || r.CriticalPath[0].Event.Name != "f" {
		t.Errorf("path = %+v, want just f", r.CriticalPath)
	}
}

func TestStragglers(t *testing.T) {
	rec := timeline.New()
	rec.Add("rank0", timeline.PhaseStep, "s", 0, 1.0)
	rec.Add("rank1", timeline.PhaseStep, "s", 0, 1.0)
	rec.Add("rank2", timeline.PhaseStep, "s", 0, 1.1)
	rec.Add("rank3", timeline.PhaseStep, "s", 0, 2.0)
	r, err := Analyze(rec, Options{StragglerFactor: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r.MedianBusySec, 1.05) {
		t.Errorf("median = %g, want 1.05", r.MedianBusySec)
	}
	if len(r.Stragglers) != 1 || r.Stragglers[0].Lane != "rank3" {
		t.Fatalf("stragglers = %+v, want just rank3", r.Stragglers)
	}
	if !almost(r.Stragglers[0].Ratio, 2.0/1.05) {
		t.Errorf("ratio = %g, want %g", r.Stragglers[0].Ratio, 2.0/1.05)
	}
}

func TestLaneStatsSorted(t *testing.T) {
	rec := timeline.New()
	rec.Add("rank1", timeline.PhaseForward, "f", 0, 1)
	rec.Add("rank0", timeline.PhaseForward, "f", 0, 2)
	rec.Add("rank0", timeline.PhaseBackward, "b", 2, 3)
	r, err := Analyze(rec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, l := range r.Lanes {
		names = append(names, l.Lane)
	}
	if strings.Join(names, ",") != "rank0,rank1" {
		t.Errorf("lanes = %v", names)
	}
	if r.Lanes[0].Events != 2 || !almost(r.Lanes[0].BusySec, 3) {
		t.Errorf("rank0 stats = %+v", r.Lanes[0])
	}
}
