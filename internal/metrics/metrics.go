// Package metrics implements the evaluation measures the paper
// reports: the per-class intersection-over-union and its mean (mIOU)
// computed from a confusion matrix, pixel accuracy, plus the scaling
// metrics (speedup, parallel efficiency) and small statistics helpers
// the benchmark harness uses.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Confusion is a K×K confusion matrix over class labels; rows are
// ground truth, columns are predictions.
type Confusion struct {
	K int
	M []int64
}

// NewConfusion creates a zeroed K-class matrix.
func NewConfusion(k int) *Confusion {
	if k <= 0 {
		panic(fmt.Sprintf("metrics: %d classes", k))
	}
	return &Confusion{K: k, M: make([]int64, k*k)}
}

// Update accumulates pixel pairs, skipping ground-truth pixels with
// the ignore label (VOC's void class, 255).
func (c *Confusion) Update(gt, pred []int32, ignore int32) {
	if len(gt) != len(pred) {
		panic(fmt.Sprintf("metrics: %d gt pixels vs %d predictions", len(gt), len(pred)))
	}
	for i := range gt {
		g := gt[i]
		if g == ignore {
			continue
		}
		p := pred[i]
		if g < 0 || int(g) >= c.K || p < 0 || int(p) >= c.K {
			panic(fmt.Sprintf("metrics: label pair (%d,%d) outside %d classes", g, p, c.K))
		}
		c.M[int(g)*c.K+int(p)]++
	}
}

// Merge adds another confusion matrix (for multi-rank evaluation).
func (c *Confusion) Merge(o *Confusion) {
	if c.K != o.K {
		panic(fmt.Sprintf("metrics: merge %d-class into %d-class", o.K, c.K))
	}
	for i, v := range o.M {
		c.M[i] += v
	}
}

// Total returns the number of counted pixels.
func (c *Confusion) Total() int64 {
	var t int64
	for _, v := range c.M {
		t += v
	}
	return t
}

// IOU returns class k's intersection-over-union and whether the class
// appears at all (in truth or prediction).
func (c *Confusion) IOU(k int) (float64, bool) {
	tp := c.M[k*c.K+k]
	var fn, fp int64
	for j := 0; j < c.K; j++ {
		if j != k {
			fn += c.M[k*c.K+j]
			fp += c.M[j*c.K+k]
		}
	}
	union := tp + fn + fp
	if union == 0 {
		return 0, false
	}
	return float64(tp) / float64(union), true
}

// MeanIOU averages IOU over classes that appear — the paper's "mIOU".
func (c *Confusion) MeanIOU() float64 {
	sum, n := 0.0, 0
	for k := 0; k < c.K; k++ {
		if iou, ok := c.IOU(k); ok {
			sum += iou
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// FreqWeightedIOU weights each class's IOU by its pixel frequency —
// the fwIOU segmentation papers report alongside mIOU.
func (c *Confusion) FreqWeightedIOU() float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	sum := 0.0
	for k := 0; k < c.K; k++ {
		iou, ok := c.IOU(k)
		if !ok {
			continue
		}
		var freq int64
		for j := 0; j < c.K; j++ {
			freq += c.M[k*c.K+j]
		}
		sum += float64(freq) / float64(total) * iou
	}
	return sum
}

// PixelAccuracy is the fraction of counted pixels predicted correctly.
func (c *Confusion) PixelAccuracy() float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	var correct int64
	for k := 0; k < c.K; k++ {
		correct += c.M[k*c.K+k]
	}
	return float64(correct) / float64(total)
}

// ScalingEfficiency is the paper's headline metric: measured
// throughput at p workers relative to p× the single-worker rate.
func ScalingEfficiency(throughput1, throughputP float64, p int) float64 {
	if p <= 0 || throughput1 <= 0 {
		panic("metrics: invalid scaling-efficiency inputs")
	}
	return throughputP / (throughput1 * float64(p))
}

// Speedup is throughputP / throughput1.
func Speedup(throughput1, throughputP float64) float64 {
	if throughput1 <= 0 {
		panic("metrics: non-positive baseline throughput")
	}
	return throughputP / throughput1
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for n < 2).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Median returns the middle value (mean of the middle two for even n).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// LinearFit returns slope and intercept of the least-squares line
// through (x, y) — used to check near-linear scaling claims.
func LinearFit(x, y []float64) (slope, intercept float64) {
	if len(x) != len(y) || len(x) < 2 {
		panic("metrics: linear fit needs ≥2 matched points")
	}
	mx, my := Mean(x), Mean(y)
	var num, den float64
	for i := range x {
		num += (x[i] - mx) * (y[i] - my)
		den += (x[i] - mx) * (x[i] - mx)
	}
	if den == 0 {
		panic("metrics: degenerate x values")
	}
	slope = num / den
	return slope, my - slope*mx
}
