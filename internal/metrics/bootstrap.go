package metrics

import (
	"fmt"
	"math/rand"
	"sort"
)

// BootstrapMIOU estimates a confidence interval for mIOU by
// resampling evaluation *images* with replacement — the unit of
// statistical independence in a segmentation eval set. perImage holds
// one confusion matrix per evaluation image; the returned lo/hi are
// the (1−conf)/2 and 1−(1−conf)/2 quantiles over `rounds` resamples.
func BootstrapMIOU(perImage []*Confusion, rounds int, conf float64, seed int64) (lo, hi float64, err error) {
	if len(perImage) == 0 {
		return 0, 0, fmt.Errorf("metrics: no per-image matrices")
	}
	if rounds < 10 {
		return 0, 0, fmt.Errorf("metrics: %d bootstrap rounds (want ≥10)", rounds)
	}
	if conf <= 0 || conf >= 1 {
		return 0, 0, fmt.Errorf("metrics: confidence %g outside (0,1)", conf)
	}
	k := perImage[0].K
	for _, c := range perImage {
		if c.K != k {
			return 0, 0, fmt.Errorf("metrics: mixed class counts in bootstrap input")
		}
	}
	rng := rand.New(rand.NewSource(seed))
	samples := make([]float64, rounds)
	agg := NewConfusion(k)
	for r := 0; r < rounds; r++ {
		for i := range agg.M {
			agg.M[i] = 0
		}
		for range perImage {
			agg.Merge(perImage[rng.Intn(len(perImage))])
		}
		samples[r] = agg.MeanIOU()
	}
	sort.Float64s(samples)
	alpha := (1 - conf) / 2
	loIdx := int(alpha * float64(rounds))
	hiIdx := int((1 - alpha) * float64(rounds))
	if hiIdx >= rounds {
		hiIdx = rounds - 1
	}
	return samples[loIdx], samples[hiIdx], nil
}
