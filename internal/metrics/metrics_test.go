package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfusionPerfectPrediction(t *testing.T) {
	c := NewConfusion(3)
	gt := []int32{0, 1, 2, 1, 0}
	c.Update(gt, gt, 255)
	if c.MeanIOU() != 1 || c.PixelAccuracy() != 1 {
		t.Fatalf("perfect prediction: mIOU=%g acc=%g", c.MeanIOU(), c.PixelAccuracy())
	}
	if c.Total() != 5 {
		t.Fatalf("total %d", c.Total())
	}
}

func TestConfusionKnownIOU(t *testing.T) {
	// Class 0: tp=2, fn=1 (gt 0 → pred 1), fp=1 (gt 1 → pred 0).
	c := NewConfusion(2)
	c.Update([]int32{0, 0, 0, 1, 1}, []int32{0, 0, 1, 0, 1}, 255)
	iou0, ok := c.IOU(0)
	if !ok || math.Abs(iou0-0.5) > 1e-12 {
		t.Fatalf("IOU(0) = %g, want 0.5", iou0)
	}
	// Class 1: tp=1, fn=1, fp=1 → 1/3.
	iou1, _ := c.IOU(1)
	if math.Abs(iou1-1.0/3) > 1e-12 {
		t.Fatalf("IOU(1) = %g, want 1/3", iou1)
	}
	want := (0.5 + 1.0/3) / 2
	if math.Abs(c.MeanIOU()-want) > 1e-12 {
		t.Fatalf("mIOU = %g, want %g", c.MeanIOU(), want)
	}
	if math.Abs(c.PixelAccuracy()-0.6) > 1e-12 {
		t.Fatalf("acc = %g", c.PixelAccuracy())
	}
}

func TestConfusionIgnoreLabel(t *testing.T) {
	c := NewConfusion(2)
	c.Update([]int32{255, 0, 255}, []int32{1, 0, 0}, 255)
	if c.Total() != 1 {
		t.Fatalf("ignored pixels counted: total %d", c.Total())
	}
	if c.PixelAccuracy() != 1 {
		t.Fatal("remaining pixel should be correct")
	}
}

func TestConfusionAbsentClassExcluded(t *testing.T) {
	c := NewConfusion(5)
	c.Update([]int32{0, 0}, []int32{0, 0}, 255)
	if c.MeanIOU() != 1 {
		t.Fatalf("mIOU with one present class = %g", c.MeanIOU())
	}
	if _, ok := c.IOU(4); ok {
		t.Fatal("absent class reported present")
	}
}

func TestFreqWeightedIOU(t *testing.T) {
	// Perfect prediction → fwIOU 1.
	c := NewConfusion(3)
	c.Update([]int32{0, 0, 0, 1}, []int32{0, 0, 0, 1}, 255)
	if c.FreqWeightedIOU() != 1 {
		t.Fatalf("perfect fwIOU = %g", c.FreqWeightedIOU())
	}
	// Class 0 (3 of 4 pixels) perfect, class 1 (1 of 4) wrong:
	// fwIOU = 0.75·IOU₀ + 0.25·0. IOU₀ = 3/(3+1 fp)=0.75 → 0.5625.
	d := NewConfusion(3)
	d.Update([]int32{0, 0, 0, 1}, []int32{0, 0, 0, 0}, 255)
	if math.Abs(d.FreqWeightedIOU()-0.5625) > 1e-12 {
		t.Fatalf("fwIOU = %g, want 0.5625", d.FreqWeightedIOU())
	}
	if NewConfusion(2).FreqWeightedIOU() != 0 {
		t.Fatal("empty fwIOU should be 0")
	}
}

func TestConfusionMerge(t *testing.T) {
	a, b := NewConfusion(2), NewConfusion(2)
	a.Update([]int32{0}, []int32{0}, 255)
	b.Update([]int32{1}, []int32{0}, 255)
	a.Merge(b)
	if a.Total() != 2 {
		t.Fatalf("merged total %d", a.Total())
	}
	if a.PixelAccuracy() != 0.5 {
		t.Fatalf("merged accuracy %g", a.PixelAccuracy())
	}
}

func TestConfusionValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewConfusion(0) },
		func() { NewConfusion(2).Update([]int32{0}, []int32{}, 255) },
		func() { NewConfusion(2).Update([]int32{0}, []int32{5}, 255) },
		func() { NewConfusion(2).Merge(NewConfusion(3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid confusion use accepted")
				}
			}()
			f()
		}()
	}
}

func TestScalingEfficiencyAndSpeedup(t *testing.T) {
	// Paper: 6.7 img/s × 132 GPUs at 92% efficiency → ~813 img/s.
	eff := ScalingEfficiency(6.7, 6.7*132*0.92, 132)
	if math.Abs(eff-0.92) > 1e-12 {
		t.Fatalf("efficiency = %g", eff)
	}
	if s := Speedup(100, 130); math.Abs(s-1.3) > 1e-12 {
		t.Fatalf("speedup = %g", s)
	}
}

func TestStats(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Fatalf("mean %g", Mean(xs))
	}
	if math.Abs(StdDev(xs)-math.Sqrt(5.0/3)) > 1e-12 {
		t.Fatalf("stddev %g", StdDev(xs))
	}
	if Median(xs) != 2.5 || Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("median wrong")
	}
	if Mean(nil) != 0 || StdDev([]float64{1}) != 0 || Median(nil) != 0 {
		t.Fatal("empty-input stats should be 0")
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 2x + 1
	slope, intercept := LinearFit(x, y)
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 {
		t.Fatalf("fit = %g, %g", slope, intercept)
	}
}

func TestBootstrapMIOU(t *testing.T) {
	// Build per-image matrices with varying quality.
	var perImage []*Confusion
	for i := 0; i < 20; i++ {
		c := NewConfusion(3)
		gt := []int32{0, 0, 1, 1, 2, 2}
		pred := append([]int32(nil), gt...)
		if i%4 == 0 { // every fourth image has errors
			pred[0], pred[2] = 1, 2
		}
		c.Update(gt, pred, 255)
		perImage = append(perImage, c)
	}
	lo, hi, err := BootstrapMIOU(perImage, 200, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo <= hi && lo > 0 && hi <= 1) {
		t.Fatalf("CI [%g, %g] invalid", lo, hi)
	}
	// Point estimate lies inside the interval.
	agg := NewConfusion(3)
	for _, c := range perImage {
		agg.Merge(c)
	}
	point := agg.MeanIOU()
	if point < lo || point > hi {
		t.Fatalf("point %g outside CI [%g, %g]", point, lo, hi)
	}
	// Deterministic for a fixed seed.
	lo2, hi2, _ := BootstrapMIOU(perImage, 200, 0.95, 1)
	if lo2 != lo || hi2 != hi {
		t.Fatal("bootstrap not deterministic for fixed seed")
	}
}

func TestBootstrapValidation(t *testing.T) {
	c := NewConfusion(2)
	if _, _, err := BootstrapMIOU(nil, 100, 0.95, 1); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := BootstrapMIOU([]*Confusion{c}, 5, 0.95, 1); err == nil {
		t.Error("too few rounds accepted")
	}
	if _, _, err := BootstrapMIOU([]*Confusion{c}, 100, 1.5, 1); err == nil {
		t.Error("bad confidence accepted")
	}
	if _, _, err := BootstrapMIOU([]*Confusion{c, NewConfusion(3)}, 100, 0.9, 1); err == nil {
		t.Error("mixed class counts accepted")
	}
}

// Property: mIOU and pixel accuracy always land in [0,1], and a
// perfect prediction dominates any corrupted copy of it.
func TestPropertyMetricBounds(t *testing.T) {
	f := func(labels []uint8, flips uint8) bool {
		if len(labels) == 0 {
			return true
		}
		k := 4
		gt := make([]int32, len(labels))
		pred := make([]int32, len(labels))
		for i, l := range labels {
			gt[i] = int32(l) % int32(k)
			pred[i] = gt[i]
		}
		// Corrupt some predictions.
		for i := 0; i < int(flips)%len(labels); i++ {
			pred[i] = (pred[i] + 1) % int32(k)
		}
		c := NewConfusion(k)
		c.Update(gt, pred, 255)
		m, a := c.MeanIOU(), c.PixelAccuracy()
		return m >= 0 && m <= 1 && a >= 0 && a <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
