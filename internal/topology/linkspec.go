package topology

import "fmt"

// LinkSpec is the quantitative α–β description of one level of the
// machine hierarchy: the per-message latency and per-flow bandwidth of
// the links that level's ranks communicate over. It is deliberately a
// plain value type — netmodel derives specs from an MPI profile, tests
// construct them directly — so the per-level algorithm choice can be
// made (and unit-tested) without a network model in the loop.
type LinkSpec struct {
	// AlphaSec is the per-message startup latency in seconds.
	AlphaSec float64
	// BWBytesPerSec is the sustained per-flow bandwidth in bytes/s.
	BWBytesPerSec float64
}

// Valid reports whether the spec is usable for cost comparison.
func (l LinkSpec) Valid() bool {
	return l.AlphaSec >= 0 && l.BWBytesPerSec > 0
}

// elemSec returns the wire time of one float32 element.
func (l LinkSpec) elemSec() float64 { return 4 / l.BWBytesPerSec }

// SummitLinkSpecs returns nominal specs for the two levels of a
// Summit node hierarchy under a GPU-direct MPI (MVAPICH2-GDR-like
// numbers): intra-node NVLink2 and inter-node dual-rail EDR IB.
func SummitLinkSpecs() (intra, inter LinkSpec) {
	intra = LinkSpec{AlphaSec: 2.2e-6, BWBytesPerSec: 44e9}
	inter = LinkSpec{AlphaSec: 4.5e-6, BWBytesPerSec: 20.5e9}
	return intra, inter
}

// LevelAlg names the allreduce algorithm run at one level of a
// hierarchical (two-level) allreduce.
type LevelAlg int

const (
	// LevelRing is the bandwidth-optimal reduce-scatter/allgather ring.
	LevelRing LevelAlg = iota
	// LevelRecursiveDoubling is the log-p latency-optimal exchange.
	LevelRecursiveDoubling
	// LevelRabenseifner is recursive-halving reduce-scatter followed
	// by recursive-doubling allgather.
	LevelRabenseifner
)

func (a LevelAlg) String() string {
	switch a {
	case LevelRing:
		return "ring"
	case LevelRecursiveDoubling:
		return "recursive-doubling"
	case LevelRabenseifner:
		return "rabenseifner"
	default:
		return fmt.Sprintf("LevelAlg(%d)", int(a))
	}
}

// levelAlgs is the fixed evaluation order for PickLevelAlg; ties go to
// the earliest entry so the choice is deterministic.
var levelAlgs = [...]LevelAlg{LevelRing, LevelRecursiveDoubling, LevelRabenseifner}

// ceilLog2 returns ⌈log2 p⌉ for p ≥ 1.
func ceilLog2(p int) int {
	steps := 0
	for pow := 1; pow < p; pow <<= 1 {
		steps++
	}
	return steps
}

func isPow2(p int) bool { return p > 0 && p&(p-1) == 0 }

// LevelCost returns the α–β model cost in seconds of running alg over
// p ranks on an n-element float32 buffer across links l. Non-power-of-
// two counts pay the MPICH fold penalty for the doubling/halving
// algorithms: the surplus ranks first fold into a power-of-two subset
// and receive the result back afterwards, two extra full-vector
// transfers (Thakur et al.). That penalty is what lets the ring win a
// 6-GPU NVLink level despite its 2(p−1) message count.
func LevelCost(l LinkSpec, alg LevelAlg, p, n int) float64 {
	if p <= 1 || n <= 0 {
		return 0
	}
	alpha := l.AlphaSec
	tau := l.elemSec()
	fp, fn := float64(p), float64(n)
	full := alpha + fn*tau
	switch alg {
	case LevelRing:
		// reduce-scatter + allgather, each p−1 steps of n/p elements.
		return 2*(fp-1)*alpha + 2*(fp-1)/fp*fn*tau
	case LevelRecursiveDoubling:
		cost := float64(ceilLog2(p)) * full
		if !isPow2(p) {
			cost += 2 * full
		}
		return cost
	case LevelRabenseifner:
		cost := 2*float64(ceilLog2(p))*alpha + 2*(fp-1)/fp*fn*tau
		if !isPow2(p) {
			cost += 2 * full
		}
		return cost
	default:
		panic(fmt.Sprintf("topology: unknown level algorithm %v", alg))
	}
}

// PickLevelAlg returns the cheapest level algorithm under LevelCost
// for p ranks reducing n float32 elements over links l. The choice is
// deterministic: ties break toward ring, then recursive doubling.
// Degenerate levels (p ≤ 1) cost nothing and return ring.
func PickLevelAlg(l LinkSpec, p, n int) LevelAlg {
	best := LevelRing
	bestCost := LevelCost(l, best, p, n)
	for _, alg := range levelAlgs[1:] {
		if c := LevelCost(l, alg, p, n); c < bestCost {
			best, bestCost = alg, c
		}
	}
	return best
}
