package topology

import (
	"testing"
	"testing/quick"
)

func TestSummitLinkSpecs(t *testing.T) {
	intra, inter := SummitLinkSpecs()
	for _, spec := range []struct {
		name string
		l    LinkSpec
	}{{"intra", intra}, {"inter", inter}} {
		if !spec.l.Valid() {
			t.Errorf("%s spec %+v invalid", spec.name, spec.l)
		}
	}
	if intra.AlphaSec >= inter.AlphaSec {
		t.Errorf("NVLink latency %.3g not below IB latency %.3g", intra.AlphaSec, inter.AlphaSec)
	}
	if intra.BWBytesPerSec <= inter.BWBytesPerSec {
		t.Errorf("NVLink bandwidth %.3g not above IB bandwidth %.3g", intra.BWBytesPerSec, inter.BWBytesPerSec)
	}
}

func TestLevelAlgString(t *testing.T) {
	cases := map[LevelAlg]string{
		LevelRing:              "ring",
		LevelRecursiveDoubling: "recursive-doubling",
		LevelRabenseifner:      "rabenseifner",
		LevelAlg(99):           "LevelAlg(99)",
	}
	for alg, want := range cases {
		if got := alg.String(); got != want {
			t.Errorf("LevelAlg(%d).String() = %q, want %q", int(alg), got, want)
		}
	}
}

// TestPickLevelAlgSummitLevels pins the selection at the two real
// Summit levels across the message-size regimes the fusion runtime
// produces. The analytic crossovers under LevelCost sit at
// n ≈ 1.5·α/τ (ring vs recursive doubling, intra) and at
// n ≈ 166·α/τ (ring vs Rabenseifner, 176-node inter level); rows sit
// ≥10% away from each boundary so the table is robust to small
// constant tweaks in SummitLinkSpecs.
func TestPickLevelAlgSummitLevels(t *testing.T) {
	intra, inter := SummitLinkSpecs()
	cases := []struct {
		name string
		l    LinkSpec
		p, n int
		want LevelAlg
	}{
		// Intra-node NVLink, 6 GPUs (non-power-of-two): latency-lean
		// recursive doubling for small buffers, bandwidth-optimal ring
		// once the fold penalty outweighs the saved message count.
		{"intra-6gpu-tiny", intra, 6, 1_000, LevelRecursiveDoubling},
		{"intra-6gpu-below-crossover", intra, 6, 30_000, LevelRecursiveDoubling},
		{"intra-6gpu-above-crossover", intra, 6, 45_000, LevelRing},
		{"intra-6gpu-fused-buffer", intra, 6, 1 << 20, LevelRing},
		// Power-of-two intra-node groups: no fold penalty, so the
		// log-p algorithms match the ring's bandwidth with fewer
		// messages. At p=2 a single exchange is optimal.
		{"intra-2gpu-large", intra, 2, 1 << 20, LevelRecursiveDoubling},
		{"intra-4gpu-large", intra, 4, 1 << 20, LevelRabenseifner},
		// Inter-node IB, 176 nodes (the 1056-rank sweep): recursive
		// doubling small, Rabenseifner mid, ring only once the
		// non-power-of-two fold penalty dominates 350 ring latencies.
		{"inter-176node-small", inter, 176, 10_000, LevelRecursiveDoubling},
		{"inter-176node-mid", inter, 176, 1 << 20, LevelRabenseifner},
		{"inter-176node-huge", inter, 176, 8 << 20, LevelRing},
		// Power-of-two node count: no fold penalty, Rabenseifner holds
		// at any size.
		{"inter-128node-huge", inter, 128, 8 << 20, LevelRabenseifner},
		// Degenerate levels cost nothing; ring by convention.
		{"single-rank", intra, 1, 1 << 20, LevelRing},
	}
	for _, c := range cases {
		if got := PickLevelAlg(c.l, c.p, c.n); got != c.want {
			t.Errorf("%s: PickLevelAlg(p=%d, n=%d) = %v, want %v", c.name, c.p, c.n, got, c.want)
		}
	}
}

// TestPickLevelAlgLatencyCrossover walks the same (p, n) point across
// link specs whose latency straddles the ring/recursive-doubling
// boundary α* = 2nτ/3: NVLink-class latency picks the ring, a link
// with IB-class startup cost on the same wire flips to recursive
// doubling. This is the NVLink≈IB crossover the hierarchical
// allreduce relies on to choose different algorithms per level.
func TestPickLevelAlgLatencyCrossover(t *testing.T) {
	const bw = 44e9
	const p, n = 6, 30_000
	// τ = 4/bw ⇒ α* = (2/3)·n·τ ≈ 1.82µs for these parameters.
	cases := []struct {
		name  string
		alpha float64
		want  LevelAlg
	}{
		{"below-boundary", 1.5e-6, LevelRing},
		{"above-boundary", 2.2e-6, LevelRecursiveDoubling},
		{"ib-class-latency", 4.5e-6, LevelRecursiveDoubling},
	}
	for _, c := range cases {
		l := LinkSpec{AlphaSec: c.alpha, BWBytesPerSec: bw}
		if got := PickLevelAlg(l, p, n); got != c.want {
			t.Errorf("%s: PickLevelAlg(α=%.3g, p=%d, n=%d) = %v, want %v", c.name, c.alpha, p, n, got, c.want)
		}
	}
}

// TestPropertyPickLevelAlgIsArgmin: the pick is always a minimiser of
// LevelCost, and no algorithm undercuts it.
func TestPropertyPickLevelAlgIsArgmin(t *testing.T) {
	prop := func(alphaRaw, bwRaw uint16, pRaw, nRaw uint32) bool {
		l := LinkSpec{
			AlphaSec:      float64(alphaRaw) * 1e-8, // 0 .. 655µs
			BWBytesPerSec: 1e9 + float64(bwRaw)*1e6, // 1 .. ~66 GB/s
		}
		p := 1 + int(pRaw%2048)
		n := 1 + int(nRaw%(64<<20))
		picked := PickLevelAlg(l, p, n)
		best := LevelCost(l, picked, p, n)
		for _, alg := range []LevelAlg{LevelRing, LevelRecursiveDoubling, LevelRabenseifner} {
			if LevelCost(l, alg, p, n) < best {
				return false
			}
		}
		return best >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestLevelCostDegenerate: single-rank and empty reductions are free.
func TestLevelCostDegenerate(t *testing.T) {
	intra, _ := SummitLinkSpecs()
	for _, alg := range []LevelAlg{LevelRing, LevelRecursiveDoubling, LevelRabenseifner} {
		if c := LevelCost(intra, alg, 1, 1<<20); c != 0 {
			t.Errorf("%v: p=1 cost %g, want 0", alg, c)
		}
		if c := LevelCost(intra, alg, 8, 0); c != 0 {
			t.Errorf("%v: n=0 cost %g, want 0", alg, c)
		}
	}
}
