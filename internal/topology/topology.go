// Package topology describes the machine the paper ran on: the Summit
// supercomputer at Oak Ridge National Laboratory.
//
// A Summit node holds two POWER9 sockets and six NVIDIA V100 GPUs.
// The GPUs are split into two triads of three; within a triad each
// GPU pair (and the GPU-to-CPU path) is connected by dual NVLink2
// bricks (2 × 25 GB/s per direction). The two sockets are joined by an
// X-Bus, and each node has dual-rail EDR InfiniBand (2 × 100 Gb/s) to
// a non-blocking fat tree.
//
// The topology package answers two questions for the rest of the
// system: "what kind of link connects rank a to rank b" and "how many
// ranks share each resource" — everything quantitative (latency,
// bandwidth) lives in internal/netmodel.
package topology

import "fmt"

// GPUsPerNode is fixed by the Summit node design.
const GPUsPerNode = 6

// GPUsPerTriad is the number of V100s sharing one POWER9 socket.
const GPUsPerTriad = 3

// LinkKind classifies the physical path between two endpoints.
type LinkKind int

const (
	// LinkSelf means both endpoints are the same device.
	LinkSelf LinkKind = iota
	// LinkNVLink is a direct NVLink2 connection (same triad).
	LinkNVLink
	// LinkXBus crosses the POWER9 socket interconnect (other triad,
	// same node).
	LinkXBus
	// LinkPCIeHost is a staged GPU→host→GPU path (used when the MPI
	// library cannot do GPU-direct).
	LinkPCIeHost
	// LinkIB is inter-node dual-rail EDR InfiniBand.
	LinkIB
)

func (k LinkKind) String() string {
	switch k {
	case LinkSelf:
		return "self"
	case LinkNVLink:
		return "nvlink"
	case LinkXBus:
		return "xbus"
	case LinkPCIeHost:
		return "pcie-host"
	case LinkIB:
		return "ib-edr"
	default:
		return fmt.Sprintf("LinkKind(%d)", int(k))
	}
}

// Machine is a Summit-like cluster allocation.
type Machine struct {
	// Nodes is the number of allocated nodes.
	Nodes int
	// GPUsPer is GPUs used per node (the paper uses all 6; smaller
	// allocations appear in single-node experiments).
	GPUsPer int
}

// Summit returns a machine with n nodes using all six GPUs per node.
func Summit(nodes int) Machine {
	return Machine{Nodes: nodes, GPUsPer: GPUsPerNode}
}

// ForGPUs returns the smallest Summit allocation holding `gpus` ranks,
// mirroring how jobs are placed (fill nodes, 6 ranks per node). The
// paper's 132-GPU runs are 22 full nodes.
func ForGPUs(gpus int) Machine {
	if gpus <= 0 {
		panic("topology: non-positive GPU count")
	}
	if gpus < GPUsPerNode {
		return Machine{Nodes: 1, GPUsPer: gpus}
	}
	nodes := (gpus + GPUsPerNode - 1) / GPUsPerNode
	return Machine{Nodes: nodes, GPUsPer: GPUsPerNode}
}

// ExactFor returns a machine with exactly `ranks` ranks: the node
// count and GPUs-per-node multiply out to the rank count (unlike
// ForGPUs, which rounds up to whole nodes the way the scheduler
// does). In-process training worlds use this so communicators and
// machine layouts agree. GPUsPer is the largest divisor ≤ 6.
func ExactFor(ranks int) Machine {
	if ranks <= 0 {
		panic("topology: non-positive rank count")
	}
	for per := GPUsPerNode; per >= 1; per-- {
		if ranks%per == 0 {
			return Machine{Nodes: ranks / per, GPUsPer: per}
		}
	}
	return Machine{Nodes: ranks, GPUsPer: 1} // unreachable: per=1 divides
}

// Ranks returns the total number of GPU ranks.
func (m Machine) Ranks() int { return m.Nodes * m.GPUsPer }

// Validate checks structural invariants.
func (m Machine) Validate() error {
	if m.Nodes <= 0 {
		return fmt.Errorf("topology: %d nodes", m.Nodes)
	}
	if m.GPUsPer <= 0 || m.GPUsPer > GPUsPerNode {
		return fmt.Errorf("topology: %d GPUs per node (max %d)", m.GPUsPer, GPUsPerNode)
	}
	return nil
}

// Node returns the node index hosting rank r.
func (m Machine) Node(r int) int { return r / m.GPUsPer }

// LocalRank returns r's index within its node (0..GPUsPer-1).
func (m Machine) LocalRank(r int) int { return r % m.GPUsPer }

// Triad returns which of the two NVLink triads local rank l belongs
// to. With fewer than 4 GPUs per node everything fits in triad 0.
func triad(local int) int { return local / GPUsPerTriad }

// Link classifies the path between ranks a and b assuming GPU-direct
// transfers (the MVAPICH2-GDR case). Host-staged classification is a
// concern of the MPI profile, not the topology.
func (m Machine) Link(a, b int) LinkKind {
	if a == b {
		return LinkSelf
	}
	if m.Node(a) != m.Node(b) {
		return LinkIB
	}
	if triad(m.LocalRank(a)) == triad(m.LocalRank(b)) {
		return LinkNVLink
	}
	return LinkXBus
}

// NodeLeader returns the lowest global rank on the same node as r —
// the rank hierarchical collectives use as the node representative.
func (m Machine) NodeLeader(r int) int { return m.Node(r) * m.GPUsPer }

// IsLeader reports whether r is its node's leader rank.
func (m Machine) IsLeader(r int) bool { return m.LocalRank(r) == 0 }

// Leaders returns the global ranks of all node leaders.
func (m Machine) Leaders() []int {
	out := make([]int, m.Nodes)
	for n := 0; n < m.Nodes; n++ {
		out[n] = n * m.GPUsPer
	}
	return out
}

// NodeRanks returns the global ranks on node n.
func (m Machine) NodeRanks(n int) []int {
	out := make([]int, m.GPUsPer)
	for i := range out {
		out[i] = n*m.GPUsPer + i
	}
	return out
}

// PaperScales returns the GPU counts used in the paper's scaling
// study: single GPU, then full nodes up to 22 nodes (132 GPUs).
func PaperScales() []int {
	return []int{1, 6, 12, 24, 48, 96, 132}
}

func (m Machine) String() string {
	return fmt.Sprintf("%d node(s) × %d GPU(s) = %d ranks", m.Nodes, m.GPUsPer, m.Ranks())
}
