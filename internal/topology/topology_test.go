package topology

import (
	"testing"
	"testing/quick"
)

func TestForGPUs(t *testing.T) {
	cases := []struct {
		gpus, nodes, per int
	}{
		{1, 1, 1},
		{3, 1, 3},
		{6, 1, 6},
		{7, 2, 6},
		{12, 2, 6},
		{24, 4, 6},
		{132, 22, 6},
	}
	for _, c := range cases {
		m := ForGPUs(c.gpus)
		if m.Nodes != c.nodes || m.GPUsPer != c.per {
			t.Errorf("ForGPUs(%d) = %v, want %d nodes × %d", c.gpus, m, c.nodes, c.per)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("ForGPUs(%d) invalid: %v", c.gpus, err)
		}
	}
}

func TestForGPUsPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ForGPUs(0) did not panic")
		}
	}()
	ForGPUs(0)
}

func TestLinkClassification(t *testing.T) {
	m := Summit(2) // ranks 0..11
	cases := []struct {
		a, b int
		want LinkKind
	}{
		{0, 0, LinkSelf},
		{0, 1, LinkNVLink}, // same triad
		{0, 2, LinkNVLink}, // same triad
		{0, 3, LinkXBus},   // other triad, same node
		{2, 5, LinkXBus},   // triad 0 ↔ triad 1
		{3, 5, LinkNVLink}, // both triad 1
		{0, 6, LinkIB},     // different node
		{5, 11, LinkIB},    // different node
	}
	for _, c := range cases {
		if got := m.Link(c.a, c.b); got != c.want {
			t.Errorf("Link(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLinkSymmetric(t *testing.T) {
	m := Summit(3)
	f := func(a, b uint8) bool {
		ra, rb := int(a)%m.Ranks(), int(b)%m.Ranks()
		return m.Link(ra, rb) == m.Link(rb, ra)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLeaders(t *testing.T) {
	m := Summit(4)
	leaders := m.Leaders()
	want := []int{0, 6, 12, 18}
	if len(leaders) != len(want) {
		t.Fatalf("leaders = %v", leaders)
	}
	for i := range want {
		if leaders[i] != want[i] {
			t.Fatalf("leaders = %v, want %v", leaders, want)
		}
		if !m.IsLeader(want[i]) {
			t.Errorf("rank %d should be a leader", want[i])
		}
	}
	if m.IsLeader(1) {
		t.Error("rank 1 is not a leader")
	}
	if m.NodeLeader(10) != 6 {
		t.Errorf("NodeLeader(10) = %d, want 6", m.NodeLeader(10))
	}
}

func TestNodeRanks(t *testing.T) {
	m := Summit(3)
	got := m.NodeRanks(1)
	want := []int{6, 7, 8, 9, 10, 11}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NodeRanks(1) = %v, want %v", got, want)
		}
	}
}

func TestPaperScalesEndAt132(t *testing.T) {
	s := PaperScales()
	if s[len(s)-1] != 132 {
		t.Fatalf("paper scales should end at 132, got %v", s)
	}
	if s[0] != 1 {
		t.Fatalf("paper scales should start at single GPU, got %v", s)
	}
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			t.Fatalf("scales not increasing: %v", s)
		}
	}
}

func TestExactFor(t *testing.T) {
	cases := []struct{ ranks, nodes, per int }{
		{1, 1, 1},
		{6, 1, 6},
		{8, 2, 4},
		{7, 7, 1}, // prime: one rank per node
		{12, 2, 6},
		{132, 22, 6},
	}
	for _, c := range cases {
		m := ExactFor(c.ranks)
		if m.Ranks() != c.ranks {
			t.Errorf("ExactFor(%d) has %d ranks", c.ranks, m.Ranks())
		}
		if m.Nodes != c.nodes || m.GPUsPer != c.per {
			t.Errorf("ExactFor(%d) = %v, want %d×%d", c.ranks, m, c.nodes, c.per)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("ExactFor(%d) invalid: %v", c.ranks, err)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("ExactFor(0) did not panic")
		}
	}()
	ExactFor(0)
}

// Property: ExactFor always yields exactly the requested rank count
// with the largest per-node packing ≤ 6.
func TestPropertyExactFor(t *testing.T) {
	f := func(r uint8) bool {
		ranks := int(r) + 1
		m := ExactFor(ranks)
		if m.Ranks() != ranks || m.GPUsPer > GPUsPerNode {
			return false
		}
		// No larger divisor ≤ 6 exists.
		for per := m.GPUsPer + 1; per <= GPUsPerNode; per++ {
			if ranks%per == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: node/local decomposition round-trips.
func TestPropertyNodeLocalRoundTrip(t *testing.T) {
	f := func(nodes, rank uint8) bool {
		m := Summit(int(nodes%30) + 1)
		r := int(rank) % m.Ranks()
		return m.Node(r)*m.GPUsPer+m.LocalRank(r) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ranks on the same node never classify as IB; ranks on
// different nodes always do.
func TestPropertyLinkNodeConsistency(t *testing.T) {
	m := Summit(5)
	f := func(a, b uint8) bool {
		ra, rb := int(a)%m.Ranks(), int(b)%m.Ranks()
		k := m.Link(ra, rb)
		sameNode := m.Node(ra) == m.Node(rb)
		if sameNode {
			return k != LinkIB
		}
		return k == LinkIB
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinkKindString(t *testing.T) {
	for _, k := range []LinkKind{LinkSelf, LinkNVLink, LinkXBus, LinkPCIeHost, LinkIB} {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", int(k))
		}
	}
	if LinkKind(99).String() != "LinkKind(99)" {
		t.Errorf("unexpected fallback: %s", LinkKind(99))
	}
}
