package netsim

import "fmt"

// HierLeaderResult reports the hierarchical allreduce outcome.
type HierLeaderResult struct {
	Finish  float64
	PerRank []float64
	// Phase end times (max over participants) for the breakdown.
	ReduceDone float64
	InterDone  float64
}

// HierLeaderAllreduce simulates Horovod's hierarchical allreduce at
// message level: binomial-tree reduce to each node leader, ring
// allreduce among leaders, binomial broadcast back down. slots must
// be the block-ordered global GPU slots (leaders are each node's
// first slot).
func (nw *Network) HierLeaderAllreduce(n int, starts []float64) (*HierLeaderResult, error) {
	mach := nw.Mach
	p := mach.Ranks()
	if starts != nil && len(starts) != p {
		return nil, fmt.Errorf("netsim: %d starts for %d ranks", len(starts), p)
	}
	res := &HierLeaderResult{PerRank: make([]float64, p)}
	reduce := func(bytes int) float64 { return float64(bytes) / 4 / nw.Prof.ReduceFlops }

	g := mach.GPUsPer
	nodes := mach.Nodes
	startOf := func(r int) float64 {
		if starts == nil {
			return 0
		}
		return starts[r]
	}

	// Phase 1 — binomial reduce to each leader. children(l) in the
	// standard binomial tree over local indices.
	type reduceState struct {
		pending  int
		ready    float64 // when all children's data is combined
		notified bool
	}
	leaderReady := make([]float64, nodes)
	leadersDone := 0

	var phase2 func()

	states := make([]*reduceState, p)
	for r := 0; r < p; r++ {
		local := mach.LocalRank(r)
		children := 0
		for d := 1; local+d < g && local%(2*d) == 0; d *= 2 {
			children++
		}
		states[r] = &reduceState{pending: children, ready: startOf(r)}
	}

	var maybeSendUp func(r int)
	maybeSendUp = func(r int) {
		st := states[r]
		if st.pending > 0 || st.notified {
			return
		}
		st.notified = true
		local := mach.LocalRank(r)
		if local == 0 {
			// Leader holds the node's full sum.
			node := mach.Node(r)
			leaderReady[node] = st.ready
			leadersDone++
			if st.ready > res.ReduceDone {
				res.ReduceDone = st.ready
			}
			if leadersDone == nodes {
				phase2()
			}
			return
		}
		// Send to the binomial parent: local − d for the largest d
		// with local%d == 0 and local%(2d) != 0, i.e. d = lowest set
		// bit of local.
		d := local & (-local)
		parent := r - d
		nw.Send(r, parent, n, st.ready, func(t float64) {
			ps := states[parent]
			tt := t + reduce(n)
			if tt > ps.ready {
				ps.ready = tt
			}
			ps.pending--
			maybeSendUp(parent)
		})
	}

	// Phase 3 — binomial broadcast down from each leader, then done.
	finishRank := func(r int, t float64) {
		res.PerRank[r] = t
		if t > res.Finish {
			res.Finish = t
		}
	}
	var bcastDown func(node int, t float64)
	bcastDown = func(node int, t float64) {
		// Iterative binomial bcast within the node: the set of
		// informed locals doubles each round.
		type recvEvent struct {
			local int
			at    float64
		}
		informed := []recvEvent{{0, t}}
		top := 1
		for top < g {
			top *= 2
		}
		for d := top / 2; d >= 1; d /= 2 {
			for _, ev := range informed {
				if ev.local%(2*d) == 0 && ev.local+d < g {
					src := node*g + ev.local
					dst := src + d
					dstLocal := ev.local + d
					at := ev.at
					nw.Send(src, dst, n, at, func(tt float64) {
						finishRank(dst, tt)
					})
					// Track analytically for the next round's
					// sends: the child can forward after delivery
					// (approximated by serialization + latency,
					// matching Send's timing).
					informed = append(informed, recvEvent{dstLocal, at + nw.approxSendTime(src, dst, n)})
				}
			}
		}
		finishRank(node*g, t)
	}

	// Phase 2 — ring allreduce among the leaders with per-leader
	// start skew, then broadcast down.
	phase2 = func() {
		leaders := make([]int, nodes)
		for i := range leaders {
			leaders[i] = i * g
		}
		if nodes == 1 {
			res.InterDone = leaderReady[0]
			bcastDown(0, leaderReady[0])
			return
		}
		nw.ringSchedule(leaders, n, leaderReady, func(perLeader []float64) {
			for node, t := range perLeader {
				if t > res.InterDone {
					res.InterDone = t
				}
				bcastDown(node, t)
			}
		})
	}

	for r := 0; r < p; r++ {
		maybeSendUp(r)
	}
	nw.Sim.Run()
	return res, nil
}

// HierTorusAllreduce simulates the bandwidth-optimal two-level
// variant at message level: intra-node reduce-scatter (ring within
// each node), then g concurrent inter-node rings (one per local-rank
// index, each over its n/g shard, contending for the NICs), then an
// intra-node allgather. Returns the completion time of the slowest
// rank.
func (nw *Network) HierTorusAllreduce(n int, starts []float64) (float64, error) {
	mach := nw.Mach
	p := mach.Ranks()
	if starts != nil && len(starts) != p {
		return 0, fmt.Errorf("netsim: %d starts for %d ranks", len(starts), p)
	}
	g := mach.GPUsPer
	nodes := mach.Nodes
	shard := (n + g - 1) / g

	// Phase 1: ring reduce-scatter within each node. Reuse the ring
	// scheduling on the node group with payload n, then treat only
	// the reduce-scatter half: approximate by a full ring over n and
	// take the RS fraction — instead, schedule a dedicated RS ring by
	// running a ring over the *shard-sized* segments (p−1 steps).
	// For simplicity and symmetry with netmodel, we run the full ring
	// schedule per node for the RS phase payload (n), then scale.
	//
	// A faithful but simple construction: phase 1 and phase 3 are
	// per-node rings over n (RS = first half, AG = second half);
	// phase 2 is g concurrent rings over `shard` across nodes. We
	// schedule phase 1 as a half-ring (p−1 steps) explicitly.
	// Half-ring (reduce-scatter only) within each node.
	halfRing := func(slots []int, payload int, entry []float64, onDone func([]float64)) {
		q := len(slots)
		steps := q - 1
		if steps == 0 {
			onDone(entry)
			return
		}
		seg := (payload + q - 1) / q
		reduce := float64(seg) / 4 / nw.Prof.ReduceFlops
		type st struct {
			proc     int
			procTime float64
			arrived  []bool
			arriveAt []float64
		}
		states := make([]*st, q)
		for i := range states {
			s := &st{arrived: make([]bool, steps), arriveAt: make([]float64, steps)}
			if entry != nil {
				s.procTime = entry[i]
			}
			states[i] = s
		}
		finish := make([]float64, q)
		remaining := q
		var trySend func(r int)
		var advance func(r int)
		trySend = func(r int) {
			s := states[r]
			if s.proc >= steps {
				return
			}
			step := s.proc
			next := (r + 1) % q
			nw.Send(slots[r], slots[next], seg, s.procTime, func(t float64) {
				ns := states[next]
				ns.arrived[step] = true
				ns.arriveAt[step] = t
				advance(next)
			})
		}
		advance = func(r int) {
			s := states[r]
			for s.proc < steps && s.arrived[s.proc] {
				t := s.arriveAt[s.proc]
				if s.procTime > t {
					t = s.procTime
				}
				s.proc++
				s.procTime = t + reduce
				trySend(r)
			}
			if s.proc == steps && finish[r] == 0 {
				finish[r] = s.procTime
				remaining--
				if remaining == 0 {
					onDone(finish)
				}
			}
		}
		for r := 0; r < q; r++ {
			trySend(r)
		}
	}

	perRankFinish := make([]float64, p)
	var maxFinish float64
	finished := 0

	// Phase 3 helper: intra-node allgather ring (q−1 steps, no reduce).
	allgather := func(slots []int, payload int, entry []float64, onRank func(idx int, t float64)) {
		q := len(slots)
		steps := q - 1
		if steps == 0 {
			onRank(0, entry[0])
			return
		}
		seg := (payload + q - 1) / q
		type st struct {
			proc     int
			procTime float64
			arrived  []bool
			arriveAt []float64
		}
		states := make([]*st, q)
		for i := range states {
			s := &st{arrived: make([]bool, steps), arriveAt: make([]float64, steps)}
			s.procTime = entry[i]
			states[i] = s
		}
		var trySend func(r int)
		var advance func(r int)
		trySend = func(r int) {
			s := states[r]
			if s.proc >= steps {
				return
			}
			step := s.proc
			next := (r + 1) % q
			nw.Send(slots[r], slots[next], seg, s.procTime, func(t float64) {
				ns := states[next]
				ns.arrived[step] = true
				ns.arriveAt[step] = t
				advance(next)
			})
		}
		advance = func(r int) {
			s := states[r]
			for s.proc < steps && s.arrived[s.proc] {
				t := s.arriveAt[s.proc]
				if s.procTime > t {
					t = s.procTime
				}
				s.proc++
				s.procTime = t
				trySend(r)
			}
			if s.proc == steps {
				onRank(r, s.procTime)
			}
		}
		for r := 0; r < q; r++ {
			trySend(r)
		}
	}

	// Phase 2: one inter-node ring per local index over `shard`.
	phase2Entry := make([][]float64, g) // [local][node]
	phase2Pending := g * nodes
	phase2Done := make([][]float64, g)
	var startPhase3 func()
	var tryPhase2 func(local int)

	tryPhase2 = func(local int) {
		entries := phase2Entry[local]
		for _, e := range entries {
			if e == 0 {
				return // some node's RS not finished yet (time 0 sentinel)
			}
		}
		ringSlots := make([]int, nodes)
		for nd := 0; nd < nodes; nd++ {
			ringSlots[nd] = nd*g + local
		}
		nw.ringSchedule(ringSlots, shard, entries, func(finish []float64) {
			phase2Done[local] = finish
			phase2Pending -= nodes
			if phase2Pending == 0 {
				startPhase3()
			}
		})
	}

	startPhase3 = func() {
		for nd := 0; nd < nodes; nd++ {
			slots := make([]int, g)
			entry := make([]float64, g)
			for l := 0; l < g; l++ {
				slots[l] = nd*g + l
				entry[l] = phase2Done[l][nd]
			}
			node := nd
			allgather(slots, n, entry, func(idx int, t float64) {
				r := node*g + idx
				perRankFinish[r] = t
				if t > maxFinish {
					maxFinish = t
				}
				finished++
			})
		}
	}

	for l := 0; l < g; l++ {
		phase2Entry[l] = make([]float64, nodes)
	}

	// Kick off phase 1 per node.
	for nd := 0; nd < nodes; nd++ {
		slots := make([]int, g)
		entry := make([]float64, g)
		for l := 0; l < g; l++ {
			slots[l] = nd*g + l
			if starts != nil {
				entry[l] = starts[nd*g+l]
			}
		}
		node := nd
		halfRing(slots, n, entry, func(finish []float64) {
			for l := 0; l < g; l++ {
				tm := finish[l]
				if tm == 0 {
					tm = 1e-12 // distinguish from the pending sentinel
				}
				phase2Entry[l][node] = tm
				tryPhase2(l)
			}
		})
	}

	nw.Sim.Run()
	if finished != p {
		return 0, fmt.Errorf("netsim: hier-torus incomplete (%d of %d ranks)", finished, p)
	}
	return maxFinish, nil
}

// approxSendTime estimates one message's sender-to-receiver time
// without scheduling it (used to pace multi-round broadcasts).
func (nw *Network) approxSendTime(a, b, n int) float64 {
	kind := nw.Mach.Link(a, b)
	alpha, bw := nw.linkParams(kind)
	if n > nw.Prof.EagerLimit {
		alpha += nw.Prof.RndvOverhead
	}
	return float64(n)/bw + alpha
}

// ringSchedule wires a ring allreduce over slots without running the
// simulator; onDone fires (inside the simulation) once every
// participant finishes, with per-participant completion times. starts
// gives per-participant entry times.
func (nw *Network) ringSchedule(slots []int, n int, starts []float64, onDone func([]float64)) {
	p := len(slots)
	totalSteps := 2 * (p - 1)
	seg := (n + p - 1) / p
	reduce := float64(seg) / 4 / nw.Prof.ReduceFlops

	type rankState struct {
		proc     int
		procTime float64
		arrived  []bool
		arriveAt []float64
	}
	states := make([]*rankState, p)
	for r := range states {
		st := &rankState{arrived: make([]bool, totalSteps), arriveAt: make([]float64, totalSteps)}
		if starts != nil {
			st.procTime = starts[r]
		}
		states[r] = st
	}
	finish := make([]float64, p)
	remaining := p

	var trySend func(r int)
	var advance func(r int)
	trySend = func(r int) {
		st := states[r]
		s := st.proc
		if s >= totalSteps {
			return
		}
		next := (r + 1) % p
		nw.Send(slots[r], slots[next], seg, st.procTime, func(t float64) {
			ns := states[next]
			ns.arrived[s] = true
			ns.arriveAt[s] = t
			advance(next)
		})
	}
	advance = func(r int) {
		st := states[r]
		for st.proc < totalSteps && st.arrived[st.proc] {
			s := st.proc
			t := st.arriveAt[s]
			if st.procTime > t {
				t = st.procTime
			}
			if s < p-1 {
				t += reduce
			}
			st.proc++
			st.procTime = t
			trySend(r)
		}
		if st.proc == totalSteps && finish[r] == 0 {
			finish[r] = st.procTime
			remaining--
			if remaining == 0 {
				onDone(finish)
			}
		}
	}
	for r := 0; r < p; r++ {
		trySend(r)
	}
}
