package netsim

import (
	"math"
	"testing"

	"segscale/internal/mpiprofile"
	"segscale/internal/netmodel"
	"segscale/internal/topology"
)

func slots(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func mustNet(t *testing.T, mach topology.Machine, prof *mpiprofile.Profile) *Network {
	t.Helper()
	nw, err := New(mach, prof)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestNewValidates(t *testing.T) {
	if _, err := New(topology.Machine{}, mpiprofile.MV2GDR()); err == nil {
		t.Error("invalid machine accepted")
	}
	bad := mpiprofile.MV2GDR()
	bad.BWInter = 0
	if _, err := New(topology.Summit(1), bad); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestTrivialGroups(t *testing.T) {
	nw := mustNet(t, topology.Summit(1), mpiprofile.MV2GDR())
	res, err := nw.RingAllreduce(slots(1), 1<<20, nil)
	if err != nil || res.Finish != 0 {
		t.Fatalf("single rank: %v, finish %g", err, res.Finish)
	}
	if _, err := nw.RingAllreduce(nil, 4, nil); err == nil {
		t.Error("empty group accepted")
	}
	if _, err := nw.RingAllreduce(slots(2), 4, []float64{0}); err == nil {
		t.Error("wrong starts length accepted")
	}
}

func TestMessageCount(t *testing.T) {
	nw := mustNet(t, topology.Summit(1), mpiprofile.MV2GDR())
	p := 6
	res, err := nw.RingAllreduce(slots(p), 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * p * (p - 1); res.Messages != want {
		t.Fatalf("messages %d, want %d", res.Messages, want)
	}
	if len(res.PerRank) != p {
		t.Fatalf("per-rank results %d", len(res.PerRank))
	}
	for _, tm := range res.PerRank {
		if tm <= 0 || tm > res.Finish {
			t.Fatalf("per-rank time %g outside (0, %g]", tm, res.Finish)
		}
	}
}

// The two-view validation: for an uncongested intra-node ring the
// message-level simulation must agree with the analytic α–β cost
// within modelling tolerance.
func TestAgreesWithAnalyticIntraNode(t *testing.T) {
	mach := topology.Summit(1)
	for _, prof := range []*mpiprofile.Profile{mpiprofile.MV2GDR(), mpiprofile.Spectrum()} {
		for _, n := range []int{1 << 20, 16 << 20} {
			nw := mustNet(t, mach, prof)
			res, err := nw.RingAllreduce(slots(6), n, nil)
			if err != nil {
				t.Fatal(err)
			}
			analytic := netmodel.MustNew(mach, prof).AllreduceRing(slots(6), n)
			ratio := res.Finish / analytic
			if ratio < 0.5 || ratio > 1.6 {
				t.Errorf("%s n=%d: netsim %.3gms vs analytic %.3gms (ratio %.2f)",
					prof.Name, n, res.Finish*1e3, analytic*1e3, ratio)
			}
		}
	}
}

func TestAgreesWithAnalyticInterNode(t *testing.T) {
	mach := topology.Summit(4)
	prof := mpiprofile.MV2GDR()
	n := 16 << 20
	nw := mustNet(t, mach, prof)
	res, err := nw.RingAllreduce(slots(24), n, nil)
	if err != nil {
		t.Fatal(err)
	}
	analytic := netmodel.MustNew(mach, prof).AllreduceRing(slots(24), n)
	ratio := res.Finish / analytic
	if ratio < 0.4 || ratio > 1.8 {
		t.Errorf("inter-node: netsim %.3gms vs analytic %.3gms (ratio %.2f)",
			res.Finish*1e3, analytic*1e3, ratio)
	}
}

func TestCyclicPlacementCongestsNIC(t *testing.T) {
	// With ranks placed round-robin, every ring edge crosses the NIC
	// and each node's NIC carries 6 concurrent flows: the
	// message-level simulation must show a large slowdown.
	mach := topology.Summit(4)
	prof := mpiprofile.MV2GDR()
	n := 16 << 20

	packed, err := mustNet(t, mach, prof).RingAllreduce(slots(24), n, nil)
	if err != nil {
		t.Fatal(err)
	}
	cyclic := make([]int, 24)
	for i := range cyclic {
		cyclic[i] = (i%4)*6 + i/4
	}
	strided, err := mustNet(t, mach, prof).RingAllreduce(cyclic, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if strided.Finish < 2*packed.Finish {
		t.Fatalf("cyclic placement only %.2f× slower (packed %.3gms, cyclic %.3gms)",
			strided.Finish/packed.Finish, packed.Finish*1e3, strided.Finish*1e3)
	}
}

func TestStragglerPropagates(t *testing.T) {
	// Delaying one rank's start must delay everyone's finish by at
	// least most of that skew — the lockstep property of rings.
	mach := topology.Summit(1)
	prof := mpiprofile.MV2GDR()
	n := 4 << 20

	base, err := mustNet(t, mach, prof).RingAllreduce(slots(6), n, nil)
	if err != nil {
		t.Fatal(err)
	}
	const skew = 5e-3
	starts := make([]float64, 6)
	starts[3] = skew
	skewed, err := mustNet(t, mach, prof).RingAllreduce(slots(6), n, starts)
	if err != nil {
		t.Fatal(err)
	}
	if skewed.Finish < base.Finish+0.8*skew {
		t.Fatalf("straggler absorbed: base %.3gms, skewed %.3gms", base.Finish*1e3, skewed.Finish*1e3)
	}
}

func TestGDRFasterThanStagedInterNode(t *testing.T) {
	mach := topology.Summit(2)
	n := 8 << 20
	gdr, err := mustNet(t, mach, mpiprofile.MV2GDR()).RingAllreduce(slots(12), n, nil)
	if err != nil {
		t.Fatal(err)
	}
	staged, err := mustNet(t, mach, mpiprofile.Spectrum()).RingAllreduce(slots(12), n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gdr.Finish >= staged.Finish {
		t.Fatalf("GDR (%.3gms) not faster than staged (%.3gms)", gdr.Finish*1e3, staged.Finish*1e3)
	}
}

func TestMonotoneInMessageSize(t *testing.T) {
	mach := topology.Summit(2)
	prof := mpiprofile.MV2GDR()
	prev := 0.0
	for _, n := range []int{1 << 16, 1 << 20, 1 << 24} {
		res, err := mustNet(t, mach, prof).RingAllreduce(slots(12), n, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Finish <= prev {
			t.Fatalf("finish not increasing at n=%d", n)
		}
		prev = res.Finish
	}
}

func TestSendDirect(t *testing.T) {
	nw := mustNet(t, topology.Summit(2), mpiprofile.MV2GDR())
	var at float64
	nw.Send(0, 7, 1<<20, 0, func(t float64) { at = t })
	nw.Sim.Run()
	if at <= 0 {
		t.Fatal("inter-node send never delivered")
	}
	// Self-send delivers immediately.
	var selfAt float64 = -1
	nw.Send(3, 3, 100, 1.0, func(t float64) { selfAt = t })
	nw.Sim.Run()
	if math.Abs(selfAt-1.0) > 1e-12 {
		t.Fatalf("self send delivered at %g", selfAt)
	}
}
