package netsim

import (
	"testing"

	"segscale/internal/mpiprofile"
	"segscale/internal/netmodel"
	"segscale/internal/topology"
)

func TestHierLeaderCompletesAllRanks(t *testing.T) {
	mach := topology.Summit(4)
	nw := mustNet(t, mach, mpiprofile.MV2GDR())
	res, err := nw.HierLeaderAllreduce(4<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finish <= 0 {
		t.Fatal("no finish time")
	}
	for r, tm := range res.PerRank {
		if tm <= 0 || tm > res.Finish {
			t.Fatalf("rank %d finish %g outside (0, %g]", r, tm, res.Finish)
		}
	}
	// Phases are ordered: reduce ≤ inter ≤ finish.
	if !(res.ReduceDone <= res.InterDone && res.InterDone <= res.Finish) {
		t.Fatalf("phase times out of order: %g, %g, %g", res.ReduceDone, res.InterDone, res.Finish)
	}
}

func TestHierLeaderSingleNode(t *testing.T) {
	nw := mustNet(t, topology.Summit(1), mpiprofile.MV2GDR())
	res, err := nw.HierLeaderAllreduce(1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finish <= 0 {
		t.Fatal("single-node hierarchy produced nothing")
	}
	if res.InterDone != res.ReduceDone {
		t.Fatalf("single node should skip the inter phase: %g vs %g", res.InterDone, res.ReduceDone)
	}
}

func TestHierLeaderStartsValidation(t *testing.T) {
	nw := mustNet(t, topology.Summit(2), mpiprofile.MV2GDR())
	if _, err := nw.HierLeaderAllreduce(1024, []float64{0}); err == nil {
		t.Fatal("wrong starts length accepted")
	}
}

// The message-level hierarchy should land within modelling tolerance
// of the analytic hier-leader cost.
func TestHierLeaderAgreesWithAnalytic(t *testing.T) {
	mach := topology.Summit(4)
	prof := mpiprofile.MV2GDR()
	for _, n := range []int{1 << 20, 16 << 20} {
		nw := mustNet(t, mach, prof)
		res, err := nw.HierLeaderAllreduce(n, nil)
		if err != nil {
			t.Fatal(err)
		}
		analytic := netmodel.MustNew(mach, prof).AllreduceHierLeader(slots(24), n)
		ratio := res.Finish / analytic
		if ratio < 0.3 || ratio > 2.0 {
			t.Errorf("n=%d: netsim %.3gms vs analytic %.3gms (ratio %.2f)",
				n, res.Finish*1e3, analytic*1e3, ratio)
		}
	}
}

// Latency-bound regime: message-level hier-leader should beat the
// message-level flat ring at scale with small buffers, mirroring the
// analytic finding.
func TestHierLeaderBeatsFlatRingSmallBuffers(t *testing.T) {
	mach := topology.Summit(22)
	prof := mpiprofile.MV2GDR()
	n := 1 << 20

	flat, err := mustNet(t, mach, prof).RingAllreduce(slots(132), n, nil)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := mustNet(t, mach, prof).HierLeaderAllreduce(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hier.Finish >= flat.Finish {
		t.Fatalf("hier-leader (%.3gms) not faster than flat ring (%.3gms) at 1 MiB/132 ranks",
			hier.Finish*1e3, flat.Finish*1e3)
	}
}

func TestHierTorusCompletes(t *testing.T) {
	mach := topology.Summit(4)
	nw := mustNet(t, mach, mpiprofile.MV2GDR())
	finish, err := nw.HierTorusAllreduce(16<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if finish <= 0 {
		t.Fatal("no finish time")
	}
	// Starts validation.
	nw2 := mustNet(t, mach, mpiprofile.MV2GDR())
	if _, err := nw2.HierTorusAllreduce(1024, []float64{0}); err == nil {
		t.Fatal("wrong starts length accepted")
	}
}

func TestHierTorusAgreesWithAnalytic(t *testing.T) {
	mach := topology.Summit(4)
	prof := mpiprofile.MV2GDR()
	for _, n := range []int{4 << 20, 64 << 20} {
		nw := mustNet(t, mach, prof)
		finish, err := nw.HierTorusAllreduce(n, nil)
		if err != nil {
			t.Fatal(err)
		}
		analytic := netmodel.MustNew(mach, prof).AllreduceHierTorus(slots(24), n)
		ratio := finish / analytic
		if ratio < 0.3 || ratio > 2.0 {
			t.Errorf("n=%d: netsim %.3gms vs analytic %.3gms (ratio %.2f)",
				n, finish*1e3, analytic*1e3, ratio)
		}
	}
}

func TestHierTorusVsFlatRingLargeBuffers(t *testing.T) {
	// A finding the message-level simulation surfaces: with full
	// cross-step pipelining, the flat ring is already bandwidth-
	// optimal and the torus's phase barriers cost it — which is
	// exactly why NCCL builds flat rings. The torus must still land
	// within 2× (its bandwidth terms match), and the hierarchy's win
	// remains the latency-bound regime (see the hier-leader
	// small-buffer test).
	mach := topology.Summit(22)
	prof := mpiprofile.MV2GDR()
	n := 64 << 20
	flat, err := mustNet(t, mach, prof).RingAllreduce(slots(132), n, nil)
	if err != nil {
		t.Fatal(err)
	}
	torus, err := mustNet(t, mach, prof).HierTorusAllreduce(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if torus > 2*flat.Finish {
		t.Fatalf("hier-torus (%.3gms) more than 2× flat ring (%.3gms)", torus*1e3, flat.Finish*1e3)
	}
	if torus < 0.5*flat.Finish {
		t.Fatalf("hier-torus (%.3gms) implausibly below flat ring (%.3gms)", torus*1e3, flat.Finish*1e3)
	}
}

func TestHierLeaderStragglerPropagates(t *testing.T) {
	mach := topology.Summit(2)
	prof := mpiprofile.MV2GDR()
	n := 2 << 20
	base, err := mustNet(t, mach, prof).HierLeaderAllreduce(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	starts := make([]float64, 12)
	starts[7] = 4e-3
	skewed, err := mustNet(t, mach, prof).HierLeaderAllreduce(n, starts)
	if err != nil {
		t.Fatal(err)
	}
	if skewed.Finish < base.Finish+3e-3 {
		t.Fatalf("straggler absorbed: %.3gms vs %.3gms", base.Finish*1e3, skewed.Finish*1e3)
	}
}
