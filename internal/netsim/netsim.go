// Package netsim simulates collectives message-by-message on the
// discrete-event engine: every send serialises on its sender's
// injection resources (GPU link engine, node NIC), so bandwidth
// sharing and congestion emerge from resource contention instead of
// being assumed, and per-rank skew propagates through the dependency
// chain of the algorithm.
//
// It is the cross-check for internal/netmodel's closed-form costs
// (the "two-view" design decision in DESIGN.md): for uncongested
// layouts the two must agree closely; for adversarial layouts
// (cyclic placement) netsim exposes the contention the α–β model
// approximates with flow counting.
package netsim

import (
	"fmt"

	"segscale/internal/des"
	"segscale/internal/mpiprofile"
	"segscale/internal/topology"
)

// Network owns the simulated fabric resources.
type Network struct {
	Sim  *des.Sim
	Mach topology.Machine
	Prof *mpiprofile.Profile

	// gpuOut serialises each GPU's outgoing transfers (NVLink/X-Bus
	// engines, and the staging DMA when the library is not
	// GPU-direct).
	gpuOut []*des.Resource
	// nicOut serialises each node's outgoing InfiniBand traffic.
	nicOut []*des.Resource
}

// New builds a network for the machine and MPI profile.
func New(mach topology.Machine, prof *mpiprofile.Profile) (*Network, error) {
	if err := mach.Validate(); err != nil {
		return nil, err
	}
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	nw := &Network{Sim: des.New(), Mach: mach, Prof: prof}
	nw.Sim.MaxEvents = 50_000_000
	for g := 0; g < mach.Ranks(); g++ {
		nw.gpuOut = append(nw.gpuOut, des.NewResource(nw.Sim, fmt.Sprintf("gpu%d.out", g), 1))
	}
	for n := 0; n < mach.Nodes; n++ {
		// The node NIC serialises messages at the profile's aggregate
		// rate (a single flow can stripe across both EDR rails, so
		// the aggregate is the right per-message capacity; concurrent
		// flows time-share it, which is how congestion emerges).
		nw.nicOut = append(nw.nicOut, des.NewResource(nw.Sim, fmt.Sprintf("node%d.nic", n), 1))
	}
	return nw, nil
}

// linkParams mirrors netmodel's per-kind latency/bandwidth choice.
func (nw *Network) linkParams(kind topology.LinkKind) (alpha, bw float64) {
	p := nw.Prof
	switch kind {
	case topology.LinkNVLink:
		return p.LatIntraNVLink, p.BWNVLink
	case topology.LinkXBus:
		return p.LatIntraXBus, p.BWXBus
	case topology.LinkIB:
		if p.GPUDirect {
			return p.LatInterGPU, p.BWInter
		}
		return p.LatInterGPU + p.LatHostStage, p.BWStaged
	default:
		return 0, 1e18
	}
}

// Send schedules n bytes from GPU slot a to GPU slot b, starting no
// earlier than `after` (virtual seconds); done fires with the
// delivery time. Zero-byte sends deliver after latency only.
func (nw *Network) Send(a, b, n int, after float64, done func(float64)) {
	if a == b {
		nw.at(after, func() { done(nw.Sim.Now()) })
		return
	}
	kind := nw.Mach.Link(a, b)
	alpha, bw := nw.linkParams(kind)
	if n > nw.Prof.EagerLimit {
		alpha += nw.Prof.RndvOverhead
	}
	serialize := float64(n) / bw

	if kind != topology.LinkIB {
		// Intra-node: serialise on the sender GPU's link engine.
		nw.at(after, func() {
			nw.gpuOut[a].Use(serialize, func() {
				nw.Sim.After(alpha, func() { done(nw.Sim.Now()) })
			})
		})
		return
	}

	// Inter-node: large messages take the chunk-pipelined staging
	// protocol (always for host-staged libraries; above
	// MV2_GPUDIRECT_LIMIT for GDR ones). The pipeline fill — the
	// first chunk's device→host copy — occupies the GPU's DMA
	// engine; the per-chunk software overhead extends the NIC hold.
	// This mirrors internal/netmodel's cost terms so the two views
	// stay comparable.
	const chunkOverheadSec = 0.5e-6
	stage := 0.0
	railTime := float64(n) / bw
	pipelined := n > nw.Prof.EagerLimit && (!nw.Prof.GPUDirect || n > nw.Prof.GPUDirectLimit)
	if pipelined {
		stage = float64(min(nw.Prof.CUDABlockSize, n)) / nw.Prof.BWStaged
		chunks := (n + nw.Prof.CUDABlockSize - 1) / nw.Prof.CUDABlockSize
		railTime += float64(chunks-1) * chunkOverheadSec
	}
	node := nw.Mach.Node(a)
	start := func() {
		nw.nicOut[node].Use(railTime, func() {
			nw.Sim.After(alpha, func() { done(nw.Sim.Now()) })
		})
	}
	if stage > 0 {
		nw.at(after, func() { nw.gpuOut[a].Use(stage, start) })
	} else {
		nw.at(after, start)
	}
}

// at schedules fn at absolute time t (clamping to now for the
// "already due" case).
func (nw *Network) at(t float64, fn func()) {
	if t < nw.Sim.Now() {
		t = nw.Sim.Now()
	}
	nw.Sim.At(t, fn)
}

// RingAllreduceResult reports the message-level simulation outcome.
type RingAllreduceResult struct {
	// Finish is the completion time of the slowest rank.
	Finish float64
	// PerRank holds each rank's completion time.
	PerRank []float64
	// Messages is the total message count (2·p·(p−1) segments).
	Messages int
}

// RingAllreduce simulates the bandwidth-optimal ring allreduce of n
// bytes over the given GPU slots (in MPI rank order — pass a permuted
// list to simulate placement effects). starts[i], when non-nil, skews
// rank i's entry time (straggler injection).
func (nw *Network) RingAllreduce(slots []int, n int, starts []float64) (*RingAllreduceResult, error) {
	p := len(slots)
	if p == 0 {
		return nil, fmt.Errorf("netsim: empty group")
	}
	if starts != nil && len(starts) != p {
		return nil, fmt.Errorf("netsim: %d starts for %d ranks", len(starts), p)
	}
	res := &RingAllreduceResult{PerRank: make([]float64, p)}
	if p == 1 {
		return res, nil
	}
	res.Messages = 2 * p * (p - 1)
	done := false
	nw.ringSchedule(slots, n, starts, func(finish []float64) {
		done = true
		copy(res.PerRank, finish)
		for _, t := range finish {
			if t > res.Finish {
				res.Finish = t
			}
		}
	})
	nw.Sim.Run()
	if !done {
		return nil, fmt.Errorf("netsim: ring never completed (deadlock?)")
	}
	return res, nil
}
