package collective

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"segscale/internal/faultinject"
	"segscale/internal/topology"
	"segscale/internal/transport"
)

// allAlgorithms maps the allreduce implementations under test: the
// four flat algorithms plus the two-level hierarchical compositions.
// The hierarchical entries derive node groups from the exact machine
// for the world size (so prime worlds become 1 rank/node); the
// "-torus" and "-leader" variants pin the composition with synthetic
// link specs (zero latency forces the ring pick and the torus path;
// a huge α forces the latency-lean pick and the leader path), since
// the real Summit specs would otherwise choose by buffer size alone.
func allAlgorithms() map[string]allreduceFn {
	return map[string]allreduceFn{
		"naive": AllreduceNaive,
		"ring":  AllreduceRing,
		"rd":    AllreduceRecursiveDoubling,
		"rab":   AllreduceRabenseifner,
		"hier-2level": func(c *transport.Comm, group []int, buf []float32) error {
			return AllreduceHierTwoLevel(c, topology.ExactFor(len(group)), buf)
		},
		"hier-torus": func(c *transport.Comm, group []int, buf []float32) error {
			ringSpec := topology.LinkSpec{AlphaSec: 0, BWBytesPerSec: 1e12}
			return AllreduceHierGroups(c, exactNodeGroups(group), ringSpec, ringSpec, buf)
		},
		"hier-leader": func(c *transport.Comm, group []int, buf []float32) error {
			treeSpec := topology.LinkSpec{AlphaSec: 1, BWBytesPerSec: 1e12}
			return AllreduceHierGroups(c, exactNodeGroups(group), treeSpec, treeSpec, buf)
		},
	}
}

// exactNodeGroups partitions an identity rank group into the node
// groups of its exact machine layout.
func exactNodeGroups(group []int) [][]int {
	mach := topology.ExactFor(len(group))
	groups := make([][]int, mach.Nodes)
	for n := range groups {
		groups[n] = mach.NodeRanks(n)
	}
	return groups
}

// runAllreduceWorld executes one allreduce over a fresh world —
// optionally with a chaos plan armed — and returns every rank's
// output buffer.
func runAllreduceWorld(t *testing.T, fn allreduceFn, ins [][]float32, plan *faultinject.Plan) [][]float32 {
	t.Helper()
	p := len(ins)
	w, err := transport.NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	if plan != nil {
		plan.Arm(w)
	}
	group := make([]int, p)
	for i := range group {
		group[i] = i
	}
	outs := make([][]float32, p)
	if err := w.Run(func(c *transport.Comm) error {
		buf := make([]float32, len(ins[c.Rank()]))
		copy(buf, ins[c.Rank()])
		if err := fn(c, group, buf); err != nil {
			return err
		}
		outs[c.Rank()] = buf
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return outs
}

// refSum is the sequential reference: an elementwise float64 sum in
// rank order, the ground truth every distributed algorithm must
// approximate.
func refSum(ins [][]float32) []float64 {
	if len(ins) == 0 {
		return nil
	}
	out := make([]float64, len(ins[0]))
	for _, in := range ins {
		for i, v := range in {
			out[i] += float64(v)
		}
	}
	return out
}

// TestPropertyAllreduceMatchesReference: for random world sizes,
// vector lengths, and inputs, every algorithm's output on every rank
// stays within float32 reassociation tolerance of the sequential
// float64 sum.
func TestPropertyAllreduceMatchesReference(t *testing.T) {
	for name, fn := range allAlgorithms() {
		fn := fn
		t.Run(name, func(t *testing.T) {
			prop := func(seed int64, pRaw, nRaw uint16) bool {
				p := 1 + int(pRaw%9) // 1..9 ranks
				n := int(nRaw % 300) // 0..299 elements (empty allowed)
				ins, _ := makeInputs(p, n, seed)
				outs := runAllreduceWorld(t, fn, ins, nil)
				want := refSum(ins)
				for r := 0; r < p; r++ {
					for i := range want {
						if math.Abs(float64(outs[r][i])-want[i]) > 1e-4*float64(p) {
							t.Logf("p=%d n=%d seed=%d rank %d elem %d: %g vs %g",
								p, n, seed, r, i, outs[r][i], want[i])
							return false
						}
					}
				}
				return true
			}
			cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(int64(len(name))))}
			if err := quick.Check(prop, cfg); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestPropertyRecoverableFaultsPreserveResults: message drop (with
// retries), duplication, and delay are invisible to the application —
// every algorithm must produce bitwise-identical buffers with and
// without a recoverable chaos plan armed. This is the correctness
// half of the fault-injection contract; the latency half lives in
// perfsim.
func TestPropertyRecoverableFaultsPreserveResults(t *testing.T) {
	plans := []*faultinject.Plan{
		{Seed: 11, DropRate: 0.08, MaxAttempts: 12},
		{Seed: 12, DupRate: 0.15},
		{Seed: 13, DelayRate: 0.15},
		{Seed: 14, DropRate: 0.04, DupRate: 0.05, DelayRate: 0.06, MaxAttempts: 12},
	}
	cases := []struct{ p, n int }{{2, 17}, {3, 64}, {5, 33}, {8, 1023}}
	for name, fn := range allAlgorithms() {
		fn := fn
		t.Run(name, func(t *testing.T) {
			for _, cse := range cases {
				ins, _ := makeInputs(cse.p, cse.n, int64(cse.p*1000+cse.n))
				clean := runAllreduceWorld(t, fn, ins, nil)
				for _, plan := range plans {
					if err := plan.Validate(); err != nil {
						t.Fatal(err)
					}
					faulty := runAllreduceWorld(t, fn, ins, plan)
					for r := 0; r < cse.p; r++ {
						for i := range clean[r] {
							if clean[r][i] != faulty[r][i] {
								t.Fatalf("p=%d n=%d plan %q rank %d elem %d: %g (clean) vs %g (faulty)",
									cse.p, cse.n, plan, r, i, clean[r][i], faulty[r][i])
							}
						}
					}
				}
			}
		})
	}
}
