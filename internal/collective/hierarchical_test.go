package collective

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"segscale/internal/topology"
	"segscale/internal/transport"
)

// runHierWorld executes one hierarchical allreduce over an explicit
// node partition and returns every rank's output buffer.
func runHierWorld(t *testing.T, groups [][]int, intra, inter topology.LinkSpec, ins [][]float32) [][]float32 {
	t.Helper()
	p := len(ins)
	w, err := transport.NewWorld(p)
	if err != nil {
		t.Fatal(err)
	}
	outs := make([][]float32, p)
	if err := w.Run(func(c *transport.Comm) error {
		buf := make([]float32, len(ins[c.Rank()]))
		copy(buf, ins[c.Rank()])
		if err := AllreduceHierGroups(c, groups, intra, inter, buf); err != nil {
			return err
		}
		outs[c.Rank()] = buf
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return outs
}

// identityGroups partitions ranks 0..p-1 into nodes of the given
// sizes (which must sum to p).
func identityGroups(sizes ...int) [][]int {
	groups := make([][]int, len(sizes))
	r := 0
	for n, sz := range sizes {
		groups[n] = make([]int, sz)
		for i := range groups[n] {
			groups[n][i] = r
			r++
		}
	}
	return groups
}

// TestPropertyHierAwkwardShapes: the hierarchical allreduce matches
// the sequential float64 reference on the world shapes that stress
// its composition logic — one rank per node (the intra level is a
// no-op), an uneven last node (torus must fall back to leader), prime
// rank counts, and a single node (the inter level is a no-op) — under
// both forced compositions. The zero-latency spec pair forces the
// torus path wherever the groups are even; the high-latency pair
// forces the leader path everywhere.
func TestPropertyHierAwkwardShapes(t *testing.T) {
	ringSpec := topology.LinkSpec{AlphaSec: 0, BWBytesPerSec: 1e12}
	treeSpec := topology.LinkSpec{AlphaSec: 1, BWBytesPerSec: 1e12}
	shapes := []struct {
		name   string
		groups [][]int
	}{
		{"1-rank-per-node-x5", identityGroups(1, 1, 1, 1, 1)},
		{"uneven-last-node-3-3-1", identityGroups(3, 3, 1)},
		{"uneven-last-node-4-4-2", identityGroups(4, 4, 2)},
		{"prime-7-split-3-3-1", identityGroups(3, 3, 1)},
		{"prime-13-split-6-6-1", identityGroups(6, 6, 1)},
		{"single-node-6", identityGroups(6)},
		{"single-rank", identityGroups(1)},
		{"even-2x3", identityGroups(3, 3)},
		{"summit-node-pair-6-6", identityGroups(6, 6)},
	}
	specs := []struct {
		name         string
		intra, inter topology.LinkSpec
	}{
		{"torus-forced", ringSpec, ringSpec},
		{"leader-forced", treeSpec, treeSpec},
		{"summit", topology.LinkSpec{}, topology.LinkSpec{}}, // filled below
	}
	specs[2].intra, specs[2].inter = topology.SummitLinkSpecs()

	for _, sh := range shapes {
		p := 0
		for _, g := range sh.groups {
			p += len(g)
		}
		for _, sp := range specs {
			sp := sp
			sh := sh
			t.Run(sh.name+"/"+sp.name, func(t *testing.T) {
				prop := func(seed int64, nRaw uint16) bool {
					n := int(nRaw % 300)
					ins, _ := makeInputs(p, n, seed)
					outs := runHierWorld(t, sh.groups, sp.intra, sp.inter, ins)
					want := refSum(ins)
					for r := 0; r < p; r++ {
						for i := range want {
							if math.Abs(float64(outs[r][i])-want[i]) > 1e-4*float64(p) {
								t.Logf("n=%d seed=%d rank %d elem %d: %g vs %g",
									n, seed, r, i, outs[r][i], want[i])
								return false
							}
						}
					}
					return true
				}
				cfg := &quick.Config{MaxCount: 10, Rand: rand.New(rand.NewSource(int64(p)))}
				if err := quick.Check(prop, cfg); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// TestHierGroupsValidation: malformed partitions are reported as
// errors on the offending rank, never a hang or panic.
func TestHierGroupsValidation(t *testing.T) {
	intra, inter := topology.SummitLinkSpecs()
	w, err := transport.NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	runErr := w.Run(func(c *transport.Comm) error {
		buf := []float32{1}
		// Rank 1 is missing from the partition: both ranks must error
		// (rank 0 would otherwise hang waiting for its ring partner).
		err := AllreduceHierGroups(c, [][]int{{0}}, intra, inter, buf)
		if c.Rank() == 1 {
			if err == nil {
				t.Error("rank 1 outside partition: want error")
			}
			return nil
		}
		return nil
	})
	if runErr != nil {
		t.Fatal(runErr)
	}

	w2, err := transport.NewWorld(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Run(func(c *transport.Comm) error {
		if err := AllreduceHierGroups(c, nil, intra, inter, []float32{1}); err == nil {
			t.Error("empty partition: want error")
		}
		if err := AllreduceHierGroups(c, [][]int{{0}, {}}, intra, inter, []float32{1}); err == nil {
			t.Error("empty node group: want error")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestHierTwoLevelWorldMismatch: a world smaller than the machine is
// an error, mirroring AllreduceHierLeader's contract.
func TestHierTwoLevelWorldMismatch(t *testing.T) {
	w, err := transport.NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(c *transport.Comm) error {
		if err := AllreduceHierTwoLevel(c, topology.Summit(1), []float32{1}); err == nil {
			t.Error("world 2 vs machine 6: want error")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
