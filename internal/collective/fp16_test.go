package collective

import (
	"math"
	"math/rand"
	"testing"

	"segscale/internal/fp16"
	"segscale/internal/topology"
	"segscale/internal/transport"
)

type allreduce16Fn func(c *transport.Comm, group []int, buf []uint16) error

var algs16 = map[string]allreduce16Fn{
	"naive": AllreduceNaive16,
	"ring":  AllreduceRing16,
	"rd":    AllreduceRecursiveDoubling16,
	"rab":   AllreduceRabenseifner16,
}

// runAllreduce16 executes fn on a world of p ranks where rank r
// contributes the binary16 encoding of ins[r], returning every rank's
// reduced buffer.
func runAllreduce16(t *testing.T, name string, fn allreduce16Fn, ins [][]float32) [][]uint16 {
	t.Helper()
	p := len(ins)
	n := len(ins[0])
	outs := make([][]uint16, p)
	errs := make([]error, p)
	runGroup(p, func(c *transport.Comm, group []int) {
		buf := make([]uint16, n)
		if err := fp16.Encode(ins[c.Rank()], buf); err != nil {
			errs[c.Rank()] = err
			return
		}
		errs[c.Rank()] = fn(c, group, buf)
		outs[c.Rank()] = buf
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("%s p=%d n=%d rank %d: %v", name, p, n, r, err)
		}
	}
	return outs
}

// Small integers are exact in binary16 (any sum below 2048 has no
// rounding), so across every algorithm and group size the compressed
// allreduce must reproduce the serial sum bit-for-bit — regardless of
// how each schedule orders its reduce hops.
func TestAllreduce16ExactSmallIntegers(t *testing.T) {
	sizes := []int{1, 2, 3, 5, 8, 13}
	lengths := []int{1, 7, 64, 257}
	for name, fn := range algs16 {
		for _, p := range sizes {
			for _, n := range lengths {
				ins := make([][]float32, p)
				want := make([]float32, n)
				for r := range ins {
					ins[r] = make([]float32, n)
					for i := range ins[r] {
						ins[r][i] = float32((r+i)%9 - 4)
						want[i] += ins[r][i]
					}
				}
				outs := runAllreduce16(t, name, fn, ins)
				for r := 0; r < p; r++ {
					for i, h := range outs[r] {
						if got := fp16.ToFloat32(h); got != want[i] {
							t.Fatalf("%s p=%d n=%d rank %d elem %d: got %g, want %g",
								name, p, n, r, i, got, want[i])
						}
					}
				}
			}
		}
	}
}

// On random inputs every algorithm must stay within fp16 accumulation
// error of the float64 serial sum, and every rank must agree exactly
// with every other rank of the same run (the schedule is
// deterministic, so the reduced halves are identical across ranks).
func TestAllreduce16MatchesReferenceSum(t *testing.T) {
	const n = 129
	for name, fn := range algs16 {
		for _, p := range []int{2, 3, 7, 12} {
			rng := rand.New(rand.NewSource(int64(31*p + n)))
			ins := make([][]float32, p)
			want := make([]float64, n)
			for r := range ins {
				ins[r] = make([]float32, n)
				for i := range ins[r] {
					ins[r][i] = float32(rng.NormFloat64())
					want[i] += float64(fp16.ToFloat32(fp16.FromFloat32(ins[r][i])))
				}
			}
			outs := runAllreduce16(t, name, fn, ins)
			// Each reduce hop can lose up to half an ULP; with |sum|
			// bounded by ~4·sqrt(p) the tolerance p·2⁻¹⁰·(1+|want|)
			// comfortably covers every schedule depth.
			for i := 0; i < n; i++ {
				got := float64(fp16.ToFloat32(outs[0][i]))
				tol := float64(p) * (1.0 / 1024) * (1 + math.Abs(want[i]))
				if math.Abs(got-want[i]) > tol {
					t.Errorf("%s p=%d elem %d: got %g, want %g (tol %g)", name, p, i, got, want[i], tol)
				}
			}
			for r := 1; r < p; r++ {
				for i := range outs[r] {
					if outs[r][i] != outs[0][i] {
						t.Fatalf("%s p=%d: rank %d disagrees with rank 0 at elem %d: %#04x vs %#04x",
							name, p, r, i, outs[r][i], outs[0][i])
					}
				}
			}
		}
	}
}

// The hierarchical compositions must also reproduce exact small-int
// sums, on both the torus path (even groups + ring intra pick) and
// the leader path (uneven groups), plus the Summit-machine wrappers.
func TestAllreduce16Hierarchical(t *testing.T) {
	intra, inter := topology.SummitLinkSpecs()
	cases := []struct {
		name   string
		groups [][]int
	}{
		{"torus-2x3", [][]int{{0, 1, 2}, {3, 4, 5}}},
		{"torus-3x2", [][]int{{0, 1}, {2, 3}, {4, 5}}},
		{"leader-uneven", [][]int{{0, 1, 2}, {3, 4}, {5}}},
		{"single-node", [][]int{{0, 1, 2, 3}}},
	}
	const n = 37
	for _, tc := range cases {
		p := 0
		for _, g := range tc.groups {
			p += len(g)
		}
		ins := make([][]float32, p)
		want := make([]float32, n)
		for r := range ins {
			ins[r] = make([]float32, n)
			for i := range ins[r] {
				ins[r][i] = float32((2*r+i)%7 - 3)
				want[i] += ins[r][i]
			}
		}
		outs := make([][]uint16, p)
		errs := make([]error, p)
		transport.Run(p, func(c *transport.Comm) error {
			buf := make([]uint16, n)
			if err := fp16.Encode(ins[c.Rank()], buf); err != nil {
				return err
			}
			errs[c.Rank()] = AllreduceHierGroups16(c, tc.groups, intra, inter, buf)
			outs[c.Rank()] = buf
			return nil
		})
		for r, err := range errs {
			if err != nil {
				t.Fatalf("%s rank %d: %v", tc.name, r, err)
			}
		}
		for r := 0; r < p; r++ {
			for i, h := range outs[r] {
				if got := fp16.ToFloat32(h); got != want[i] {
					t.Fatalf("%s rank %d elem %d: got %g, want %g", tc.name, r, i, got, want[i])
				}
			}
		}
	}
}

// The Machine-shaped entry points (leader hierarchy and two-level)
// agree with the serial sum on a multi-node Summit slice.
func TestAllreduce16HierMachineWrappers(t *testing.T) {
	mach := topology.Summit(2) // 2 nodes × 6 GPUs
	p := mach.Ranks()
	const n = 23
	for name, fn := range map[string]func(*transport.Comm, topology.Machine, []uint16) error{
		"hier-leader":   AllreduceHierLeader16,
		"hier-twolevel": AllreduceHierTwoLevel16,
	} {
		ins := make([][]float32, p)
		want := make([]float32, n)
		for r := range ins {
			ins[r] = make([]float32, n)
			for i := range ins[r] {
				ins[r][i] = float32((r*i)%5 - 2)
				want[i] += ins[r][i]
			}
		}
		outs := make([][]uint16, p)
		transport.Run(p, func(c *transport.Comm) error {
			buf := make([]uint16, n)
			if err := fp16.Encode(ins[c.Rank()], buf); err != nil {
				return err
			}
			if err := fn(c, mach, buf); err != nil {
				return err
			}
			outs[c.Rank()] = buf
			return nil
		})
		for r := 0; r < p; r++ {
			if outs[r] == nil {
				t.Fatalf("%s rank %d produced no output", name, r)
			}
			for i, h := range outs[r] {
				if got := fp16.ToFloat32(h); got != want[i] {
					t.Fatalf("%s rank %d elem %d: got %g, want %g", name, r, i, got, want[i])
				}
			}
		}
	}
}

// Group-membership and shape validation errors mirror the float32
// collectives.
func TestAllreduce16Validation(t *testing.T) {
	intra, inter := topology.SummitLinkSpecs()
	transport.Run(1, func(c *transport.Comm) error {
		if err := AllreduceNaive16(c, []int{1, 2}, []uint16{0}); err == nil {
			t.Error("naive16 accepted a group that excludes the caller")
		}
		if err := AllreduceHierGroups16(c, nil, intra, inter, []uint16{0}); err == nil {
			t.Error("hier16 accepted an empty partition")
		}
		if err := AllreduceHierGroups16(c, [][]int{{0}, {}}, intra, inter, []uint16{0}); err == nil {
			t.Error("hier16 accepted an empty node group")
		}
		if err := addInto16([]uint16{0}, []uint16{0, 0}); err == nil {
			t.Error("addInto16 accepted mismatched lengths")
		}
		return nil
	})
}
