package collective

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"segscale/internal/topology"
	"segscale/internal/transport"
)

// runGroup executes fn on a world of n ranks with group = all ranks.
func runGroup(n int, fn func(c *transport.Comm, group []int)) {
	group := make([]int, n)
	for i := range group {
		group[i] = i
	}
	transport.Run(n, func(c *transport.Comm) error { fn(c, group); return nil })
}

// makeInputs builds deterministic per-rank vectors and their expected
// elementwise sum.
func makeInputs(p, n int, seed int64) (ins [][]float32, want []float32) {
	rng := rand.New(rand.NewSource(seed))
	ins = make([][]float32, p)
	want = make([]float32, n)
	for r := 0; r < p; r++ {
		ins[r] = make([]float32, n)
		for i := range ins[r] {
			ins[r][i] = float32(rng.NormFloat64())
			want[i] += ins[r][i]
		}
	}
	return ins, want
}

func maxAbsDiff(a, b []float32) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(float64(a[i] - b[i])); d > m {
			m = d
		}
	}
	return m
}

type allreduceFn func(c *transport.Comm, group []int, buf []float32) error

func checkAllreduce(t *testing.T, name string, fn allreduceFn, p, n int, seed int64) {
	t.Helper()
	ins, want := makeInputs(p, n, seed)
	outs := make([][]float32, p)
	errs := make([]error, p)
	runGroup(p, func(c *transport.Comm, group []int) {
		buf := make([]float32, n)
		copy(buf, ins[c.Rank()])
		errs[c.Rank()] = fn(c, group, buf)
		outs[c.Rank()] = buf
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("%s p=%d n=%d rank %d: %v", name, p, n, r, err)
		}
	}
	for r := 0; r < p; r++ {
		if d := maxAbsDiff(outs[r], want); d > 1e-4*float64(p) {
			t.Errorf("%s p=%d n=%d rank %d: max diff %g", name, p, n, r, d)
		}
	}
}

func TestAllreduceAlgorithmsMatchSerialSum(t *testing.T) {
	algs := map[string]allreduceFn{
		"naive": AllreduceNaive,
		"ring":  AllreduceRing,
		"rd":    AllreduceRecursiveDoubling,
		"rab":   AllreduceRabenseifner,
	}
	sizes := []int{1, 2, 3, 7, 64, 1023}
	groups := []int{2, 3, 4, 5, 6, 8, 13}
	for name, fn := range algs {
		for _, p := range groups {
			for _, n := range sizes {
				checkAllreduce(t, name, fn, p, n, int64(p*10000+n))
			}
		}
	}
}

func TestAllreduceSingleRankNoop(t *testing.T) {
	buf := []float32{1, 2, 3}
	runGroup(1, func(c *transport.Comm, group []int) {
		if err := AllreduceRing(c, group, buf); err != nil {
			t.Errorf("ring: %v", err)
		}
		if err := AllreduceRecursiveDoubling(c, group, buf); err != nil {
			t.Errorf("rd: %v", err)
		}
	})
	if buf[0] != 1 || buf[2] != 3 {
		t.Fatalf("single-rank allreduce mutated buffer: %v", buf)
	}
}

func TestAllreduceRingFewerElementsThanRanks(t *testing.T) {
	// n < p leaves some ring segments empty; must still be correct.
	checkAllreduce(t, "ring", AllreduceRing, 8, 3, 42)
	checkAllreduce(t, "rab", AllreduceRabenseifner, 8, 3, 43)
}

func TestRabenseifnerLargeBuffer(t *testing.T) {
	// Exercise the recursive halving/doubling windows on a buffer
	// large enough for multiple non-trivial splits, odd length, and
	// non-power-of-two group.
	checkAllreduce(t, "rab", AllreduceRabenseifner, 6, 4097, 7)
	checkAllreduce(t, "rab", AllreduceRabenseifner, 8, 4096, 8)
	checkAllreduce(t, "rab", AllreduceRabenseifner, 12, 1000, 9)
}

func TestAllreduceHierLeaderMatchesNaive(t *testing.T) {
	for _, cfg := range []struct{ nodes, per int }{
		{2, 3}, {2, 6}, {4, 6}, {3, 2}, {1, 6},
	} {
		mach := topology.Machine{Nodes: cfg.nodes, GPUsPer: cfg.per}
		p := mach.Ranks()
		n := 257
		ins, want := makeInputs(p, n, int64(p))
		outs := make([][]float32, p)
		errs := make([]error, p)
		transport.Run(p, func(c *transport.Comm) error {
			buf := make([]float32, n)
			copy(buf, ins[c.Rank()])
			errs[c.Rank()] = AllreduceHierLeader(c, mach, buf)
			outs[c.Rank()] = buf
			return nil
		})
		for r, err := range errs {
			if err != nil {
				t.Fatalf("hier %d×%d rank %d: %v", cfg.nodes, cfg.per, r, err)
			}
		}
		for r := 0; r < p; r++ {
			if d := maxAbsDiff(outs[r], want); d > 1e-4*float64(p) {
				t.Errorf("hier %d×%d rank %d: max diff %g", cfg.nodes, cfg.per, r, d)
			}
		}
	}
}

func TestAllreduceHierLeaderWorldMismatchErrors(t *testing.T) {
	mach := topology.Summit(2) // 12 ranks
	errs := make([]error, 2)
	transport.Run(2, func(c *transport.Comm) error {
		errs[c.Rank()] = AllreduceHierLeader(c, mach, make([]float32, 4))
		return nil
	})
	for r, err := range errs {
		if err == nil {
			t.Errorf("rank %d: world/machine mismatch did not error", r)
		}
	}
}

func TestReduceTreeAndBcastTree(t *testing.T) {
	for _, p := range []int{2, 3, 5, 6, 8} {
		n := 33
		ins, want := makeInputs(p, n, int64(p*7))
		outs := make([][]float32, p)
		runGroup(p, func(c *transport.Comm, group []int) {
			buf := make([]float32, n)
			copy(buf, ins[c.Rank()])
			if err := ReduceTree(c, group, buf); err != nil {
				t.Errorf("reduce p=%d rank %d: %v", p, c.Rank(), err)
			}
			if err := BcastTree(c, group, buf); err != nil {
				t.Errorf("bcast p=%d rank %d: %v", p, c.Rank(), err)
			}
			outs[c.Rank()] = buf
		})
		for r := 0; r < p; r++ {
			if d := maxAbsDiff(outs[r], want); d > 1e-4*float64(p) {
				t.Errorf("reduce+bcast p=%d rank %d: diff %g", p, r, d)
			}
		}
	}
}

func TestAllgatherRing(t *testing.T) {
	for _, p := range []int{2, 3, 6} {
		results := make([][][]float32, p)
		runGroup(p, func(c *transport.Comm, group []int) {
			shards := make([][]float32, p)
			shards[c.Rank()] = []float32{float32(c.Rank()) * 10, float32(c.Rank())}
			if err := AllgatherRing(c, group, shards); err != nil {
				t.Errorf("allgather p=%d rank %d: %v", p, c.Rank(), err)
			}
			results[c.Rank()] = shards
		})
		for r := 0; r < p; r++ {
			for i := 0; i < p; i++ {
				got := results[r][i]
				if len(got) != 2 || got[0] != float32(i)*10 || got[1] != float32(i) {
					t.Errorf("p=%d rank %d shard %d = %v", p, r, i, got)
				}
			}
		}
	}
}

func TestScale(t *testing.T) {
	buf := []float32{2, 4, 8}
	Scale(buf, 2)
	if buf[0] != 1 || buf[1] != 2 || buf[2] != 4 {
		t.Fatalf("Scale result %v", buf)
	}
}

func TestStrangerRankErrors(t *testing.T) {
	runGroup(2, func(c *transport.Comm, group []int) {
		if c.Rank() != 0 {
			return
		}
		if err := AllreduceRing(c, []int{5, 6}, make([]float32, 4)); err == nil {
			t.Error("stranger rank did not error")
		}
	})
}

func TestSegmentPartition(t *testing.T) {
	// Segments must tile [0,n) exactly, in order, sizes differing ≤1.
	for _, n := range []int{0, 1, 5, 17, 100} {
		for _, p := range []int{1, 2, 3, 7, 13} {
			pos := 0
			minSz, maxSz := n+1, -1
			for i := 0; i < p; i++ {
				lo, hi := segment(n, p, i)
				if lo != pos {
					t.Fatalf("n=%d p=%d seg %d: lo=%d want %d", n, p, i, lo, pos)
				}
				sz := hi - lo
				if sz < minSz {
					minSz = sz
				}
				if sz > maxSz {
					maxSz = sz
				}
				pos = hi
			}
			if pos != n {
				t.Fatalf("n=%d p=%d: segments cover %d", n, p, pos)
			}
			if maxSz-minSz > 1 {
				t.Fatalf("n=%d p=%d: unbalanced segments (%d..%d)", n, p, minSz, maxSz)
			}
		}
	}
}

// Property: ring and recursive doubling agree with naive for random
// shapes.
func TestPropertyAllreduceEquivalence(t *testing.T) {
	f := func(pp, nn uint8, seed int64) bool {
		p := int(pp%7) + 2
		n := int(nn%50) + 1
		ins, _ := makeInputs(p, n, seed)
		run := func(fn allreduceFn) [][]float32 {
			outs := make([][]float32, p)
			runGroup(p, func(c *transport.Comm, group []int) {
				buf := make([]float32, n)
				copy(buf, ins[c.Rank()])
				if err := fn(c, group, buf); err != nil {
					t.Errorf("p=%d n=%d rank %d: %v", p, n, c.Rank(), err)
				}
				outs[c.Rank()] = buf
			})
			return outs
		}
		naive := run(AllreduceNaive)
		ring := run(AllreduceRing)
		rd := run(AllreduceRecursiveDoubling)
		rab := run(AllreduceRabenseifner)
		for r := 0; r < p; r++ {
			if maxAbsDiff(naive[r], ring[r]) > 1e-3 || maxAbsDiff(naive[r], rd[r]) > 1e-3 ||
				maxAbsDiff(naive[r], rab[r]) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
