// Binary16 variants of the allreduce algorithms — the real compressed
// wire format behind hvd.Compression.fp16. Payloads travel as
// []uint16 (2 bytes per element on the wire, which the transport
// byte counters account), and every reduce hop accumulates in
// float32: decode both halves, add, re-encode. The encode/decode at
// the fused-buffer boundary happens exactly once, in the Horovod
// runtime's pack/unpack; these collectives never widen the wire.
//
// The schedules mirror the float32 implementations line for line —
// same segment decomposition, same fold/unfold, same step counts — so
// the compressed and uncompressed paths stay comparable in traces and
// in the attribution ledger. Only the tag bases differ, keeping the
// two payload kinds apart on the shared mailboxes.
package collective

import (
	"fmt"

	"segscale/internal/fp16"
	"segscale/internal/timeline"
	"segscale/internal/topology"
	"segscale/internal/transport"
)

// Tag bases for the binary16 collectives, disjoint from every float32
// base so a compressed phase can never consume an uncompressed
// message (the transport reports kind mismatches as errors anyway).
const (
	tagNaive16  = 10 << 16
	tagRing16   = 11 << 16
	tagRD16     = 12 << 16
	tagReduce16 = 13 << 16
	tagBcast16  = 14 << 16
	tagRab16    = 15 << 16
	tagHierRS16 = 16 << 16
	tagHierAG16 = 17 << 16
)

// addInto16 reduces src into dst elementwise with float32
// accumulation: each hop decodes both binary16 operands, adds in
// float32, and re-encodes with round-to-nearest-even. Accumulating in
// the wider type at every hop is what keeps the compressed allreduce
// numerically honest — only the stored value is 16-bit, never the
// arithmetic.
func addInto16(dst, src []uint16) error {
	if len(dst) != len(src) {
		return fmt.Errorf("collective: reduce length mismatch %d vs %d", len(dst), len(src))
	}
	for i, v := range src {
		dst[i] = fp16.FromFloat32(fp16.ToFloat32(dst[i]) + fp16.ToFloat32(v))
	}
	return nil
}

// AllreduceNaive16 gathers every contribution to group[0], reduces,
// and broadcasts the result linearly — the reference the other
// binary16 algorithms are verified against.
func AllreduceNaive16(c *transport.Comm, group []int, buf []uint16) error {
	sp := instrument(c, timeline.PhaseAllreduce, "naive-fp16", 2*len(buf))
	defer sp.End()
	me, err := indexIn(group, c.Rank())
	if err != nil {
		return fmt.Errorf("allreduce naive fp16: %w", err)
	}
	root := group[0]
	if me == 0 {
		for _, r := range group[1:] {
			got, err := c.Recv16(r, tagNaive16)
			if err != nil {
				return fmt.Errorf("allreduce naive fp16: rank %d contribution: %w", r, err)
			}
			if err := addInto16(buf, got); err != nil {
				return fmt.Errorf("allreduce naive fp16: rank %d contribution: %w", r, err)
			}
		}
		for _, r := range group[1:] {
			if err := c.Send16(r, tagNaive16+1, buf); err != nil {
				return fmt.Errorf("allreduce naive fp16: result to rank %d: %w", r, err)
			}
		}
		return nil
	}
	if err := c.Send16(root, tagNaive16, buf); err != nil {
		return fmt.Errorf("allreduce naive fp16: contribution to root: %w", err)
	}
	if err := c.RecvInto16(root, tagNaive16+1, buf); err != nil {
		return fmt.Errorf("allreduce naive fp16: result from root: %w", err)
	}
	return nil
}

// AllreduceRing16 is AllreduceRing over the binary16 wire: p−1
// reduce-scatter steps and p−1 allgather steps over ceil(n/p)
// segments, each reduce hop accumulating in float32.
func AllreduceRing16(c *transport.Comm, group []int, buf []uint16) error {
	p := len(group)
	if p <= 1 {
		return nil
	}
	sp := instrument(c, timeline.PhaseAllreduce, "ring-fp16", 2*len(buf))
	defer sp.End()
	me, err := indexIn(group, c.Rank())
	if err != nil {
		return fmt.Errorf("allreduce ring fp16: %w", err)
	}
	next := group[(me+1)%p]
	prev := group[(me-1+p)%p]
	n := len(buf)

	for s := 0; s < p-1; s++ {
		sendSeg := ((me-s)%p + p) % p
		recvSeg := ((me-s-1)%p + p) % p
		slo, shi := segment(n, p, sendSeg)
		if err := c.Send16(next, tagRing16+s, buf[slo:shi]); err != nil {
			return fmt.Errorf("allreduce ring fp16: reduce-scatter step %d: %w", s, err)
		}
		rlo, rhi := segment(n, p, recvSeg)
		got, err := c.Recv16(prev, tagRing16+s)
		if err != nil {
			return fmt.Errorf("allreduce ring fp16: reduce-scatter step %d: %w", s, err)
		}
		if err := addInto16(buf[rlo:rhi], got); err != nil {
			return fmt.Errorf("allreduce ring fp16: reduce-scatter step %d: %w", s, err)
		}
	}
	for s := 0; s < p-1; s++ {
		sendSeg := ((me-s+1)%p + p) % p
		recvSeg := ((me-s)%p + p) % p
		slo, shi := segment(n, p, sendSeg)
		if err := c.Send16(next, tagRing16+p+s, buf[slo:shi]); err != nil {
			return fmt.Errorf("allreduce ring fp16: allgather step %d: %w", s, err)
		}
		rlo, rhi := segment(n, p, recvSeg)
		got, err := c.Recv16(prev, tagRing16+p+s)
		if err != nil {
			return fmt.Errorf("allreduce ring fp16: allgather step %d: %w", s, err)
		}
		copy(buf[rlo:rhi], got)
	}
	return nil
}

// AllreduceRecursiveDoubling16 is the log₂(p)-step exchange over the
// binary16 wire, with the MPICH fold for non-power-of-two groups.
func AllreduceRecursiveDoubling16(c *transport.Comm, group []int, buf []uint16) error {
	p := len(group)
	if p <= 1 {
		return nil
	}
	sp := instrument(c, timeline.PhaseAllreduce, "recursive-doubling-fp16", 2*len(buf))
	defer sp.End()
	me, err := indexIn(group, c.Rank())
	if err != nil {
		return fmt.Errorf("allreduce recursive-doubling fp16: %w", err)
	}
	pow := 1
	for pow*2 <= p {
		pow *= 2
	}
	rem := p - pow

	newrank := -1
	switch {
	case me < 2*rem && me%2 == 0:
		if err := c.Send16(group[me+1], tagRD16, buf); err != nil {
			return fmt.Errorf("allreduce recursive-doubling fp16: fold: %w", err)
		}
	case me < 2*rem: // odd
		got, err := c.Recv16(group[me-1], tagRD16)
		if err != nil {
			return fmt.Errorf("allreduce recursive-doubling fp16: fold: %w", err)
		}
		if err := addInto16(buf, got); err != nil {
			return fmt.Errorf("allreduce recursive-doubling fp16: fold: %w", err)
		}
		newrank = me / 2
	default:
		newrank = me - rem
	}

	if newrank >= 0 {
		old := func(nr int) int {
			if nr < rem {
				return nr*2 + 1
			}
			return nr + rem
		}
		for dist := 1; dist < pow; dist *= 2 {
			partner := group[old(newrank^dist)]
			got, err := c.SendRecv16(partner, tagRD16+1+dist, buf, partner, tagRD16+1+dist)
			if err != nil {
				return fmt.Errorf("allreduce recursive-doubling fp16: distance %d: %w", dist, err)
			}
			if err := addInto16(buf, got); err != nil {
				return fmt.Errorf("allreduce recursive-doubling fp16: distance %d: %w", dist, err)
			}
		}
	}

	if me < 2*rem {
		if me%2 == 0 {
			if err := c.RecvInto16(group[me+1], tagRD16+2*pow, buf); err != nil {
				return fmt.Errorf("allreduce recursive-doubling fp16: unfold: %w", err)
			}
		} else {
			if err := c.Send16(group[me-1], tagRD16+2*pow, buf); err != nil {
				return fmt.Errorf("allreduce recursive-doubling fp16: unfold: %w", err)
			}
		}
	}
	return nil
}

// AllreduceRabenseifner16 is Rabenseifner's recursive-halving
// reduce-scatter + recursive-doubling allgather over the binary16
// wire.
func AllreduceRabenseifner16(c *transport.Comm, group []int, buf []uint16) error {
	p := len(group)
	if p <= 1 {
		return nil
	}
	sp := instrument(c, timeline.PhaseAllreduce, "rabenseifner-fp16", 2*len(buf))
	defer sp.End()
	me, err := indexIn(group, c.Rank())
	if err != nil {
		return fmt.Errorf("allreduce rabenseifner fp16: %w", err)
	}
	n := len(buf)

	pow := 1
	for pow*2 <= p {
		pow *= 2
	}
	rem := p - pow

	newrank := -1
	switch {
	case me < 2*rem && me%2 == 0:
		if err := c.Send16(group[me+1], tagRab16, buf); err != nil {
			return fmt.Errorf("allreduce rabenseifner fp16: fold: %w", err)
		}
	case me < 2*rem:
		got, err := c.Recv16(group[me-1], tagRab16)
		if err != nil {
			return fmt.Errorf("allreduce rabenseifner fp16: fold: %w", err)
		}
		if err := addInto16(buf, got); err != nil {
			return fmt.Errorf("allreduce rabenseifner fp16: fold: %w", err)
		}
		newrank = me / 2
	default:
		newrank = me - rem
	}

	if newrank >= 0 {
		old := func(nr int) int {
			if nr < rem {
				return nr*2 + 1
			}
			return nr + rem
		}
		lo, hi := 0, n
		step := 0
		for dist := 1; dist < pow; dist *= 2 {
			partner := group[old(newrank^dist)]
			mid := lo + (hi-lo)/2
			var sendLo, sendHi, keepLo, keepHi int
			if newrank&dist == 0 {
				sendLo, sendHi, keepLo, keepHi = mid, hi, lo, mid
			} else {
				sendLo, sendHi, keepLo, keepHi = lo, mid, mid, hi
			}
			got, err := c.SendRecv16(partner, tagRab16+1+step, buf[sendLo:sendHi], partner, tagRab16+1+step)
			if err != nil {
				return fmt.Errorf("allreduce rabenseifner fp16: halving step %d: %w", step, err)
			}
			if err := addInto16(buf[keepLo:keepHi], got); err != nil {
				return fmt.Errorf("allreduce rabenseifner fp16: halving step %d: %w", step, err)
			}
			lo, hi = keepLo, keepHi
			step++
		}

		type window struct{ lo, hi int }
		windows := make([]window, 0, step+1)
		wlo, whi := 0, n
		windows = append(windows, window{wlo, whi})
		for dist := 1; dist < pow; dist *= 2 {
			mid := wlo + (whi-wlo)/2
			if newrank&dist == 0 {
				whi = mid
			} else {
				wlo = mid
			}
			windows = append(windows, window{wlo, whi})
		}
		step--
		for dist := pow / 2; dist >= 1; dist /= 2 {
			partner := group[old(newrank^dist)]
			cur := windows[step+1]
			parent := windows[step]
			var partnerLo, partnerHi int
			if cur.lo == parent.lo {
				partnerLo, partnerHi = cur.hi, parent.hi
			} else {
				partnerLo, partnerHi = parent.lo, cur.lo
			}
			got, err := c.SendRecv16(partner, tagRab16+64+step, buf[cur.lo:cur.hi], partner, tagRab16+64+step)
			if err != nil {
				return fmt.Errorf("allreduce rabenseifner fp16: doubling step %d: %w", step, err)
			}
			copy(buf[partnerLo:partnerHi], got)
			step--
		}
	}

	if me < 2*rem {
		if me%2 == 0 {
			if err := c.RecvInto16(group[me+1], tagRab16+2048, buf); err != nil {
				return fmt.Errorf("allreduce rabenseifner fp16: unfold: %w", err)
			}
		} else {
			if err := c.Send16(group[me-1], tagRab16+2048, buf); err != nil {
				return fmt.Errorf("allreduce rabenseifner fp16: unfold: %w", err)
			}
		}
	}
	return nil
}

// ReduceTree16 reduces every rank's buf into group[0] via binomial
// tree (non-roots are left with partial sums).
func ReduceTree16(c *transport.Comm, group []int, buf []uint16) error {
	p := len(group)
	me, err := indexIn(group, c.Rank())
	if err != nil {
		return fmt.Errorf("reduce tree fp16: %w", err)
	}
	for dist := 1; dist < p; dist *= 2 {
		if me%(2*dist) == 0 {
			src := me + dist
			if src < p {
				got, err := c.Recv16(group[src], tagReduce16+dist)
				if err != nil {
					return fmt.Errorf("reduce tree fp16: from rank %d: %w", group[src], err)
				}
				if err := addInto16(buf, got); err != nil {
					return fmt.Errorf("reduce tree fp16: from rank %d: %w", group[src], err)
				}
			}
		} else if me%dist == 0 {
			if err := c.Send16(group[me-dist], tagReduce16+dist, buf); err != nil {
				return fmt.Errorf("reduce tree fp16: to rank %d: %w", group[me-dist], err)
			}
			return nil
		}
	}
	return nil
}

// BcastTree16 broadcasts group[0]'s buf to the group via binomial
// tree.
func BcastTree16(c *transport.Comm, group []int, buf []uint16) error {
	sp := instrument(c, timeline.PhaseBcast, "binomial-tree-fp16", 2*len(buf))
	defer sp.End()
	p := len(group)
	me, err := indexIn(group, c.Rank())
	if err != nil {
		return fmt.Errorf("bcast tree fp16: %w", err)
	}
	top := 1
	for top < p {
		top *= 2
	}
	for dist := top / 2; dist >= 1; dist /= 2 {
		if me%(2*dist) == 0 {
			dst := me + dist
			if dst < p {
				if err := c.Send16(group[dst], tagBcast16+dist, buf); err != nil {
					return fmt.Errorf("bcast tree fp16: to rank %d: %w", group[dst], err)
				}
			}
		} else if me%dist == 0 {
			if err := c.RecvInto16(group[me-dist], tagBcast16+dist, buf); err != nil {
				return fmt.Errorf("bcast tree fp16: from rank %d: %w", group[me-dist], err)
			}
		}
	}
	return nil
}

// levelFn16 maps a per-level algorithm choice to its binary16
// implementation.
func levelFn16(alg topology.LevelAlg) func(*transport.Comm, []int, []uint16) error {
	switch alg {
	case topology.LevelRecursiveDoubling:
		return AllreduceRecursiveDoubling16
	case topology.LevelRabenseifner:
		return AllreduceRabenseifner16
	default:
		return AllreduceRing16
	}
}

// AllreduceHierLeader16 is the node-leader hierarchy over the
// binary16 wire: binomial reduce to each node leader, recursive
// doubling among the leaders, binomial broadcast back down.
func AllreduceHierLeader16(c *transport.Comm, mach topology.Machine, buf []uint16) error {
	if c.Size() != mach.Ranks() {
		return fmt.Errorf("collective: world %d != machine ranks %d", c.Size(), mach.Ranks())
	}
	node := mach.Node(c.Rank())
	local := mach.NodeRanks(node)
	if err := ReduceTree16(c, local, buf); err != nil {
		return fmt.Errorf("hierarchical allreduce fp16: node %d: %w", node, err)
	}
	if mach.IsLeader(c.Rank()) {
		if err := AllreduceRecursiveDoubling16(c, mach.Leaders(), buf); err != nil {
			return fmt.Errorf("hierarchical allreduce fp16: leaders: %w", err)
		}
	}
	if err := BcastTree16(c, local, buf); err != nil {
		return fmt.Errorf("hierarchical allreduce fp16: node %d: %w", node, err)
	}
	return nil
}

// AllreduceHierTwoLevel16 is the topology-aware two-level allreduce
// over the binary16 wire (see AllreduceHierTwoLevel).
func AllreduceHierTwoLevel16(c *transport.Comm, mach topology.Machine, buf []uint16) error {
	if c.Size() != mach.Ranks() {
		return fmt.Errorf("collective: world %d != machine ranks %d", c.Size(), mach.Ranks())
	}
	groups := make([][]int, mach.Nodes)
	for n := range groups {
		groups[n] = mach.NodeRanks(n)
	}
	intra, inter := topology.SummitLinkSpecs()
	return AllreduceHierGroups16(c, groups, intra, inter, buf)
}

// AllreduceHierGroups16 is the two-level allreduce over an explicit
// node partition with binary16 payloads. The per-level algorithm pick
// is keyed on the element count, exactly like the float32 form, so a
// compressed run composes the same schedule as its uncompressed
// A/B partner — only the wire width differs.
func AllreduceHierGroups16(c *transport.Comm, groups [][]int, intra, inter topology.LinkSpec, buf []uint16) error {
	nodes := len(groups)
	if nodes == 0 {
		return fmt.Errorf("collective: hierarchical allreduce with no node groups")
	}
	myNode, myLocal := -1, -1
	even := true
	g0 := len(groups[0])
	for n, grp := range groups {
		if len(grp) == 0 {
			return fmt.Errorf("collective: hierarchical allreduce: empty node group %d", n)
		}
		if len(grp) != g0 {
			even = false
		}
		for i, r := range grp {
			if r == c.Rank() {
				myNode, myLocal = n, i
			}
		}
	}
	if myNode < 0 {
		return fmt.Errorf("collective: rank %d not in any node group", c.Rank())
	}
	sp := instrument(c, timeline.PhaseAllreduce, "hier-2level-fp16", 2*len(buf))
	defer sp.End()

	local := groups[myNode]
	intraAlg := topology.PickLevelAlg(intra, g0, len(buf))
	if even && intraAlg == topology.LevelRing {
		return hierTorus16(c, groups, inter, buf, myNode, myLocal)
	}
	return hierLeader16(c, groups, inter, buf, local)
}

// hierLeader16 mirrors hierLeader over the binary16 wire.
func hierLeader16(c *transport.Comm, groups [][]int, inter topology.LinkSpec, buf []uint16, local []int) error {
	leaders := make([]int, len(groups))
	for n, grp := range groups {
		leaders[n] = grp[0]
	}
	if err := ReduceTree16(c, local, buf); err != nil {
		return fmt.Errorf("hier-2level leader fp16: reduce: %w", err)
	}
	if c.Rank() == local[0] {
		interAlg := topology.PickLevelAlg(inter, len(leaders), len(buf))
		if err := levelFn16(interAlg)(c, leaders, buf); err != nil {
			return fmt.Errorf("hier-2level leader fp16: inter-node %v: %w", interAlg, err)
		}
	}
	if err := BcastTree16(c, local, buf); err != nil {
		return fmt.Errorf("hier-2level leader fp16: bcast: %w", err)
	}
	return nil
}

// hierTorus16 mirrors hierTorus over the binary16 wire.
func hierTorus16(c *transport.Comm, groups [][]int, inter topology.LinkSpec, buf []uint16, myNode, me int) error {
	local := groups[myNode]
	g := len(local)
	n := len(buf)
	next := local[(me+1)%g]
	prev := local[(me-1+g)%g]

	for s := 0; s < g-1; s++ {
		sendSeg := ((me-s)%g + g) % g
		recvSeg := ((me-s-1)%g + g) % g
		slo, shi := segment(n, g, sendSeg)
		if err := c.Send16(next, tagHierRS16+s, buf[slo:shi]); err != nil {
			return fmt.Errorf("hier-2level torus fp16: reduce-scatter step %d: %w", s, err)
		}
		rlo, rhi := segment(n, g, recvSeg)
		got, err := c.Recv16(prev, tagHierRS16+s)
		if err != nil {
			return fmt.Errorf("hier-2level torus fp16: reduce-scatter step %d: %w", s, err)
		}
		if err := addInto16(buf[rlo:rhi], got); err != nil {
			return fmt.Errorf("hier-2level torus fp16: reduce-scatter step %d: %w", s, err)
		}
	}

	ownSeg := (me + 1) % g
	lo, hi := segment(n, g, ownSeg)
	if len(groups) > 1 {
		cross := make([]int, len(groups))
		for nd, grp := range groups {
			cross[nd] = grp[me]
		}
		interAlg := topology.PickLevelAlg(inter, len(cross), hi-lo)
		if err := levelFn16(interAlg)(c, cross, buf[lo:hi]); err != nil {
			return fmt.Errorf("hier-2level torus fp16: inter-node %v segment %d: %w", interAlg, ownSeg, err)
		}
	}

	for s := 0; s < g-1; s++ {
		sendSeg := ((me-s+1)%g + g) % g
		recvSeg := ((me-s)%g + g) % g
		slo, shi := segment(n, g, sendSeg)
		if err := c.Send16(next, tagHierAG16+s, buf[slo:shi]); err != nil {
			return fmt.Errorf("hier-2level torus fp16: allgather step %d: %w", s, err)
		}
		rlo, rhi := segment(n, g, recvSeg)
		got, err := c.Recv16(prev, tagHierAG16+s)
		if err != nil {
			return fmt.Errorf("hier-2level torus fp16: allgather step %d: %w", s, err)
		}
		copy(buf[rlo:rhi], got)
	}
	return nil
}
