package collective

import (
	"fmt"
	"testing"

	"segscale/internal/transport"
)

func benchAllreduce(b *testing.B, fn allreduceFn, p, n int) {
	b.Helper()
	group := make([]int, p)
	for i := range group {
		group[i] = i
	}
	data := make([][]float32, p)
	for r := range data {
		data[r] = make([]float32, n)
		for i := range data[r] {
			data[r][i] = float32(r + i)
		}
	}
	b.SetBytes(int64(4 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		transport.Run(p, func(c *transport.Comm) error {
			buf := make([]float32, n)
			copy(buf, data[c.Rank()])
			if err := fn(c, group, buf); err != nil {
				b.Error(err)
			}
			return nil
		})
	}
}

func BenchmarkAllreduce(b *testing.B) {
	algs := []struct {
		name string
		fn   allreduceFn
	}{
		{"ring", AllreduceRing},
		{"recursive-doubling", AllreduceRecursiveDoubling},
		{"rabenseifner", AllreduceRabenseifner},
		{"naive", AllreduceNaive},
	}
	for _, alg := range algs {
		for _, p := range []int{4, 8} {
			for _, n := range []int{1 << 10, 1 << 16} {
				b.Run(fmt.Sprintf("%s/p%d/n%d", alg.name, p, n), func(b *testing.B) {
					benchAllreduce(b, alg.fn, p, n)
				})
			}
		}
	}
}
