package collective

import (
	"math"
	"testing"

	"segscale/internal/transport"
)

func TestGather(t *testing.T) {
	const p = 5
	var rootView [][]float32
	runGroup(p, func(c *transport.Comm, group []int) {
		buf := []float32{float32(c.Rank()), float32(c.Rank() * 2)}
		out, err := Gather(c, group, buf)
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
		}
		if c.Rank() == 0 {
			rootView = out
		} else if out != nil {
			t.Errorf("rank %d got a non-nil gather result", c.Rank())
		}
	})
	if len(rootView) != p {
		t.Fatalf("root gathered %d slices", len(rootView))
	}
	for i, s := range rootView {
		if s[0] != float32(i) || s[1] != float32(i*2) {
			t.Fatalf("slice %d = %v", i, s)
		}
	}
}

func TestScatter(t *testing.T) {
	const p = 4
	got := make([][]float32, p)
	runGroup(p, func(c *transport.Comm, group []int) {
		var shards [][]float32
		if c.Rank() == 0 {
			for i := 0; i < p; i++ {
				shards = append(shards, []float32{float32(i * 100)})
			}
		}
		shard, err := Scatter(c, group, shards)
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
		}
		got[c.Rank()] = shard
	})
	for i := 0; i < p; i++ {
		if len(got[i]) != 1 || got[i][0] != float32(i*100) {
			t.Fatalf("rank %d shard %v", i, got[i])
		}
	}
}

func TestScatterValidatesShardCount(t *testing.T) {
	// Single-rank world: the root's shard-count check fires before
	// any communication, so no peer can be left blocked.
	runGroup(1, func(c *transport.Comm, group []int) {
		if _, err := Scatter(c, group, [][]float32{{1}, {2}}); err == nil {
			t.Error("wrong shard count accepted")
		}
	})
}

func TestReduceScatter(t *testing.T) {
	for _, p := range []int{2, 3, 6} {
		n := 13
		ins, want := makeInputs(p, n, int64(p*3))
		type res struct {
			lo, hi int
			vals   []float32
		}
		results := make([]res, p)
		runGroup(p, func(c *transport.Comm, group []int) {
			buf := make([]float32, n)
			copy(buf, ins[c.Rank()])
			lo, hi, err := ReduceScatter(c, group, buf)
			if err != nil {
				t.Errorf("p=%d rank %d: %v", p, c.Rank(), err)
			}
			results[c.Rank()] = res{lo, hi, append([]float32(nil), buf[lo:hi]...)}
		})
		covered := make([]bool, n)
		for r := 0; r < p; r++ {
			seg := results[r]
			for i := seg.lo; i < seg.hi; i++ {
				if covered[i] {
					t.Fatalf("p=%d: element %d owned twice", p, i)
				}
				covered[i] = true
				if d := math.Abs(float64(seg.vals[i-seg.lo] - want[i])); d > 1e-4 {
					t.Fatalf("p=%d rank %d elem %d: %g vs %g", p, r, i, seg.vals[i-seg.lo], want[i])
				}
			}
		}
		for i, c := range covered {
			if !c {
				t.Fatalf("p=%d: element %d unowned", p, i)
			}
		}
	}
}

func TestScatterValidation(t *testing.T) {
	// Single-rank round trips.
	runGroup(1, func(c *transport.Comm, group []int) {
		out, err := Scatter(c, group, [][]float32{{7}})
		if err != nil || out[0] != 7 {
			t.Errorf("single-rank scatter broken: %v %v", out, err)
		}
		g, err := Gather(c, group, []float32{3})
		if err != nil || g[0][0] != 3 {
			t.Errorf("single-rank gather broken: %v %v", g, err)
		}
		buf := []float32{1, 2}
		lo, hi, err := ReduceScatter(c, group, buf)
		if err != nil || lo != 0 || hi != 2 {
			t.Errorf("single-rank reduce-scatter bounds wrong: %d %d %v", lo, hi, err)
		}
	})
}
