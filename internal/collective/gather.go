package collective

import (
	"fmt"

	"segscale/internal/transport"
)

const (
	tagGatherOp  = 8 << 16
	tagScatter   = 9 << 16
	tagRS        = 10 << 16
	tagBarrierOp = 11 << 16
)

// Gather collects every rank's buf at group[0] and returns the
// per-rank slices there (indexed by group position); other ranks get
// nil. Linear receive at the root, like small-communicator MPI_Gather.
func Gather(c *transport.Comm, group []int, buf []float32) ([][]float32, error) {
	me, err := indexIn(group, c.Rank())
	if err != nil {
		return nil, fmt.Errorf("gather: %w", err)
	}
	if me != 0 {
		c.Send(group[0], tagGatherOp+me, buf)
		return nil, nil
	}
	out := make([][]float32, len(group))
	out[0] = append([]float32(nil), buf...)
	for i := 1; i < len(group); i++ {
		out[i] = c.Recv(group[i], tagGatherOp+i)
	}
	return out, nil
}

// Scatter distributes group[0]'s shards (one per rank, in group
// order) and returns this rank's shard. Non-roots pass nil shards.
func Scatter(c *transport.Comm, group []int, shards [][]float32) ([]float32, error) {
	me, err := indexIn(group, c.Rank())
	if err != nil {
		return nil, fmt.Errorf("scatter: %w", err)
	}
	if me == 0 {
		if len(shards) != len(group) {
			return nil, fmt.Errorf("scatter: %d shards for %d ranks", len(shards), len(group))
		}
		for i := 1; i < len(group); i++ {
			c.Send(group[i], tagScatter+i, shards[i])
		}
		return append([]float32(nil), shards[0]...), nil
	}
	return c.Recv(group[0], tagScatter+me), nil
}

// ReduceScatter sums all ranks' equal-length buffers and leaves each
// rank holding its segment of the sum (the standard MPI segment
// layout; returns the [lo,hi) bounds too). Implemented as the ring
// reduce-scatter half of the ring allreduce.
func ReduceScatter(c *transport.Comm, group []int, buf []float32) (lo, hi int, err error) {
	p := len(group)
	me, err := indexIn(group, c.Rank())
	if err != nil {
		return 0, 0, fmt.Errorf("reduce-scatter: %w", err)
	}
	if p == 1 {
		return 0, len(buf), nil
	}
	next := group[(me+1)%p]
	prev := group[(me-1+p)%p]
	n := len(buf)
	for s := 0; s < p-1; s++ {
		sendSeg := ((me-s)%p + p) % p
		recvSeg := ((me-s-1)%p + p) % p
		slo, shi := segment(n, p, sendSeg)
		c.Send(next, tagRS+s, buf[slo:shi])
		rlo, rhi := segment(n, p, recvSeg)
		if err := addInto(buf[rlo:rhi], c.Recv(prev, tagRS+s)); err != nil {
			return 0, 0, fmt.Errorf("reduce-scatter: step %d: %w", s, err)
		}
	}
	// After p−1 steps this rank holds the full sum of segment (me+1).
	lo, hi = segment(n, p, (me+1)%p)
	return lo, hi, nil
}
