package collective

import (
	"fmt"

	"segscale/internal/transport"
)

const (
	tagGatherOp  = 8 << 16
	tagScatter   = 9 << 16
	tagRS        = 10 << 16
	tagBarrierOp = 11 << 16
)

// Gather collects every rank's buf at group[0] and returns the
// per-rank slices there (indexed by group position); other ranks get
// nil. Linear receive at the root, like small-communicator MPI_Gather.
func Gather(c *transport.Comm, group []int, buf []float32) ([][]float32, error) {
	me, err := indexIn(group, c.Rank())
	if err != nil {
		return nil, fmt.Errorf("gather: %w", err)
	}
	if me != 0 {
		if err := c.Send(group[0], tagGatherOp+me, buf); err != nil {
			return nil, fmt.Errorf("gather: to root: %w", err)
		}
		return nil, nil
	}
	out := make([][]float32, len(group))
	out[0] = append([]float32(nil), buf...)
	for i := 1; i < len(group); i++ {
		got, err := c.Recv(group[i], tagGatherOp+i)
		if err != nil {
			return nil, fmt.Errorf("gather: from rank %d: %w", group[i], err)
		}
		out[i] = got
	}
	return out, nil
}

// Scatter distributes group[0]'s shards (one per rank, in group
// order) and returns this rank's shard. Non-roots pass nil shards.
func Scatter(c *transport.Comm, group []int, shards [][]float32) ([]float32, error) {
	me, err := indexIn(group, c.Rank())
	if err != nil {
		return nil, fmt.Errorf("scatter: %w", err)
	}
	if me == 0 {
		if len(shards) != len(group) {
			return nil, fmt.Errorf("scatter: %d shards for %d ranks", len(shards), len(group))
		}
		for i := 1; i < len(group); i++ {
			if err := c.Send(group[i], tagScatter+i, shards[i]); err != nil {
				return nil, fmt.Errorf("scatter: to rank %d: %w", group[i], err)
			}
		}
		return append([]float32(nil), shards[0]...), nil
	}
	got, err := c.Recv(group[0], tagScatter+me)
	if err != nil {
		return nil, fmt.Errorf("scatter: from root: %w", err)
	}
	return got, nil
}

// ReduceScatter sums all ranks' equal-length buffers and leaves each
// rank holding its segment of the sum (the standard MPI segment
// layout; returns the [lo,hi) bounds too). Implemented as the ring
// reduce-scatter half of the ring allreduce.
func ReduceScatter(c *transport.Comm, group []int, buf []float32) (lo, hi int, err error) {
	p := len(group)
	me, err := indexIn(group, c.Rank())
	if err != nil {
		return 0, 0, fmt.Errorf("reduce-scatter: %w", err)
	}
	if p == 1 {
		return 0, len(buf), nil
	}
	next := group[(me+1)%p]
	prev := group[(me-1+p)%p]
	n := len(buf)
	for s := 0; s < p-1; s++ {
		sendSeg := ((me-s)%p + p) % p
		recvSeg := ((me-s-1)%p + p) % p
		slo, shi := segment(n, p, sendSeg)
		if err := c.Send(next, tagRS+s, buf[slo:shi]); err != nil {
			return 0, 0, fmt.Errorf("reduce-scatter: step %d: %w", s, err)
		}
		rlo, rhi := segment(n, p, recvSeg)
		got, err := c.Recv(prev, tagRS+s)
		if err != nil {
			return 0, 0, fmt.Errorf("reduce-scatter: step %d: %w", s, err)
		}
		if err := addInto(buf[rlo:rhi], got); err != nil {
			return 0, 0, fmt.Errorf("reduce-scatter: step %d: %w", s, err)
		}
	}
	// After p−1 steps this rank holds the full sum of segment (me+1).
	lo, hi = segment(n, p, (me+1)%p)
	return lo, hi, nil
}
