package collective

import (
	"fmt"

	"segscale/internal/timeline"
	"segscale/internal/transport"
)

const tagRab = 7 << 16

// AllreduceRabenseifner implements Rabenseifner's algorithm:
// recursive-halving reduce-scatter followed by recursive-doubling
// allgather. It has the ring's 2·(p−1)/p·n bandwidth term with only
// 2·log₂(p) latency steps — the shape MPI libraries pick for large
// messages on small-to-medium communicators. Non-power-of-two groups
// use the MPICH fold (evens donate to odds, then unfold).
func AllreduceRabenseifner(c *transport.Comm, group []int, buf []float32) error {
	p := len(group)
	if p <= 1 {
		return nil
	}
	sp := instrument(c, timeline.PhaseAllreduce, "rabenseifner", 4*len(buf))
	defer sp.End()
	me, err := indexIn(group, c.Rank())
	if err != nil {
		return fmt.Errorf("allreduce rabenseifner: %w", err)
	}
	n := len(buf)

	pow := 1
	for pow*2 <= p {
		pow *= 2
	}
	rem := p - pow

	// Fold to a power-of-two active set.
	newrank := -1
	switch {
	case me < 2*rem && me%2 == 0:
		if err := c.Send(group[me+1], tagRab, buf); err != nil {
			return fmt.Errorf("allreduce rabenseifner: fold: %w", err)
		}
	case me < 2*rem:
		got, err := c.Recv(group[me-1], tagRab)
		if err != nil {
			return fmt.Errorf("allreduce rabenseifner: fold: %w", err)
		}
		if err := addInto(buf, got); err != nil {
			return fmt.Errorf("allreduce rabenseifner: fold: %w", err)
		}
		newrank = me / 2
	default:
		newrank = me - rem
	}

	if newrank >= 0 {
		old := func(nr int) int {
			if nr < rem {
				return nr*2 + 1
			}
			return nr + rem
		}
		// Reduce-scatter by recursive halving: each step trades half
		// of the currently-owned window with the partner and reduces
		// the half it keeps.
		lo, hi := 0, n
		step := 0
		for dist := 1; dist < pow; dist *= 2 {
			partner := group[old(newrank^dist)]
			mid := lo + (hi-lo)/2
			var sendLo, sendHi, keepLo, keepHi int
			if newrank&dist == 0 {
				// Keep the lower half, send the upper.
				sendLo, sendHi, keepLo, keepHi = mid, hi, lo, mid
			} else {
				sendLo, sendHi, keepLo, keepHi = lo, mid, mid, hi
			}
			got, err := c.SendRecv(partner, tagRab+1+step, buf[sendLo:sendHi], partner, tagRab+1+step)
			if err != nil {
				return fmt.Errorf("allreduce rabenseifner: halving step %d: %w", step, err)
			}
			if err := addInto(buf[keepLo:keepHi], got); err != nil {
				return fmt.Errorf("allreduce rabenseifner: halving step %d: %w", step, err)
			}
			lo, hi = keepLo, keepHi
			step++
		}

		// Allgather by recursive doubling: windows merge back in the
		// reverse order of the halving.
		type window struct{ lo, hi int }
		// Reconstruct the window bounds visited on the way down so
		// the way up mirrors them exactly.
		windows := make([]window, 0, step+1)
		wlo, whi := 0, n
		windows = append(windows, window{wlo, whi})
		for dist := 1; dist < pow; dist *= 2 {
			mid := wlo + (whi-wlo)/2
			if newrank&dist == 0 {
				whi = mid
			} else {
				wlo = mid
			}
			windows = append(windows, window{wlo, whi})
		}
		step--
		for dist := pow / 2; dist >= 1; dist /= 2 {
			partner := group[old(newrank^dist)]
			cur := windows[step+1]  // what I own (fully reduced)
			parent := windows[step] // the window the exchange completes
			var partnerLo, partnerHi int
			if cur.lo == parent.lo {
				partnerLo, partnerHi = cur.hi, parent.hi
			} else {
				partnerLo, partnerHi = parent.lo, cur.lo
			}
			got, err := c.SendRecv(partner, tagRab+64+step, buf[cur.lo:cur.hi], partner, tagRab+64+step)
			if err != nil {
				return fmt.Errorf("allreduce rabenseifner: doubling step %d: %w", step, err)
			}
			copy(buf[partnerLo:partnerHi], got)
			step--
		}
	}

	// Unfold: odds return the result to their even partners.
	if me < 2*rem {
		if me%2 == 0 {
			if err := c.RecvInto(group[me+1], tagRab+2048, buf); err != nil {
				return fmt.Errorf("allreduce rabenseifner: unfold: %w", err)
			}
		} else {
			if err := c.Send(group[me-1], tagRab+2048, buf); err != nil {
				return fmt.Errorf("allreduce rabenseifner: unfold: %w", err)
			}
		}
	}
	return nil
}
