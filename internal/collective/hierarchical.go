package collective

import (
	"fmt"

	"segscale/internal/timeline"
	"segscale/internal/topology"
	"segscale/internal/transport"
)

// Tag bases for the intra-node phases of the two-level hierarchical
// allreduce. The inter-node phase reuses the flat algorithms (and
// their tag bases) over disjoint cross-node groups, so only the
// intra-node ring phases need bases of their own.
const (
	tagHierRS = 8 << 16
	tagHierAG = 9 << 16
)

// levelFn maps a per-level algorithm choice to its flat
// implementation over an explicit rank group.
func levelFn(alg topology.LevelAlg) func(*transport.Comm, []int, []float32) error {
	switch alg {
	case topology.LevelRecursiveDoubling:
		return AllreduceRecursiveDoubling
	case topology.LevelRabenseifner:
		return AllreduceRabenseifner
	default:
		return AllreduceRing
	}
}

// AllreduceHierTwoLevel is the topology-aware two-level hierarchical
// allreduce: it consults the machine's link parameters to pick the
// per-level algorithm (ring intra-node over NVLink at fused-buffer
// sizes, Rabenseifner or recursive doubling inter-node over IB), then
// composes the levels. The world must equal mach.Ranks() ranks laid
// out in machine order; elastic worlds with holes go through
// AllreduceHierGroups with explicit node groups instead.
func AllreduceHierTwoLevel(c *transport.Comm, mach topology.Machine, buf []float32) error {
	if c.Size() != mach.Ranks() {
		return fmt.Errorf("collective: world %d != machine ranks %d", c.Size(), mach.Ranks())
	}
	groups := make([][]int, mach.Nodes)
	for n := range groups {
		groups[n] = mach.NodeRanks(n)
	}
	intra, inter := topology.SummitLinkSpecs()
	return AllreduceHierGroups(c, groups, intra, inter, buf)
}

// AllreduceHierGroups runs a two-level allreduce over an explicit
// node partition: groups[i] lists the global ranks on node i, every
// participating rank appears in exactly one group, and all ranks must
// pass identical groups. Link specs for the two levels drive the
// per-level algorithm choice; the choice is a pure function of
// (specs, shape, len(buf)), so all ranks agree on it without
// negotiation.
//
// Two compositions exist. When every node holds the same number of
// ranks and the intra level picks the ring, the torus composition
// runs: an intra-node ring reduce-scatter, then each local index
// allreduces its owned segment across nodes (all NICs active at
// once), then an intra-node ring allgather. Uneven node groups — or
// an intra pick that favours latency over bandwidth — fall back to
// the leader composition: binomial reduce to each node leader, the
// picked inter algorithm among leaders, binomial broadcast back down.
func AllreduceHierGroups(c *transport.Comm, groups [][]int, intra, inter topology.LinkSpec, buf []float32) error {
	nodes := len(groups)
	if nodes == 0 {
		return fmt.Errorf("collective: hierarchical allreduce with no node groups")
	}
	myNode, myLocal := -1, -1
	even := true
	g0 := len(groups[0])
	for n, grp := range groups {
		if len(grp) == 0 {
			return fmt.Errorf("collective: hierarchical allreduce: empty node group %d", n)
		}
		if len(grp) != g0 {
			even = false
		}
		for i, r := range grp {
			if r == c.Rank() {
				myNode, myLocal = n, i
			}
		}
	}
	if myNode < 0 {
		return fmt.Errorf("collective: rank %d not in any node group", c.Rank())
	}
	sp := instrument(c, timeline.PhaseAllreduce, "hier-2level", 4*len(buf))
	defer sp.End()

	local := groups[myNode]
	intraAlg := topology.PickLevelAlg(intra, g0, len(buf))
	if even && intraAlg == topology.LevelRing {
		return hierTorus(c, groups, inter, buf, myNode, myLocal)
	}
	return hierLeader(c, groups, inter, buf, local)
}

// hierLeader: reduce to node leaders, allreduce among leaders with the
// picked inter algorithm, broadcast back down. Works for any node
// group shapes.
func hierLeader(c *transport.Comm, groups [][]int, inter topology.LinkSpec, buf []float32, local []int) error {
	leaders := make([]int, len(groups))
	for n, grp := range groups {
		leaders[n] = grp[0]
	}
	if err := ReduceTree(c, local, buf); err != nil {
		return fmt.Errorf("hier-2level leader: reduce: %w", err)
	}
	if c.Rank() == local[0] {
		interAlg := topology.PickLevelAlg(inter, len(leaders), len(buf))
		if err := levelFn(interAlg)(c, leaders, buf); err != nil {
			return fmt.Errorf("hier-2level leader: inter-node %v: %w", interAlg, err)
		}
	}
	if err := BcastTree(c, local, buf); err != nil {
		return fmt.Errorf("hier-2level leader: bcast: %w", err)
	}
	return nil
}

// hierTorus: intra-node ring reduce-scatter, per-local-index
// inter-node allreduce of the owned segment, intra-node ring
// allgather. Requires even groups so segment boundaries agree across
// nodes. With one rank per node it degenerates to the flat inter
// algorithm over the whole buffer; with one node the two ring phases
// alone complete the allreduce.
func hierTorus(c *transport.Comm, groups [][]int, inter topology.LinkSpec, buf []float32, myNode, me int) error {
	local := groups[myNode]
	g := len(local)
	n := len(buf)
	next := local[(me+1)%g]
	prev := local[(me-1+g)%g]

	// Intra reduce-scatter: after g−1 steps local index me holds the
	// node-wide sum of segment (me+1) mod g (same schedule as
	// AllreduceRing's first phase).
	for s := 0; s < g-1; s++ {
		sendSeg := ((me-s)%g + g) % g
		recvSeg := ((me-s-1)%g + g) % g
		slo, shi := segment(n, g, sendSeg)
		if err := c.Send(next, tagHierRS+s, buf[slo:shi]); err != nil {
			return fmt.Errorf("hier-2level torus: reduce-scatter step %d: %w", s, err)
		}
		rlo, rhi := segment(n, g, recvSeg)
		got, err := c.Recv(prev, tagHierRS+s)
		if err != nil {
			return fmt.Errorf("hier-2level torus: reduce-scatter step %d: %w", s, err)
		}
		if err := addInto(buf[rlo:rhi], got); err != nil {
			return fmt.Errorf("hier-2level torus: reduce-scatter step %d: %w", s, err)
		}
	}

	// Inter allreduce: ranks sharing a local index form a cross-node
	// group and reduce the segment they own. The groups are disjoint,
	// so all run concurrently — every node drives all its NICs.
	ownSeg := (me + 1) % g
	lo, hi := segment(n, g, ownSeg)
	if len(groups) > 1 {
		cross := make([]int, len(groups))
		for nd, grp := range groups {
			cross[nd] = grp[me]
		}
		interAlg := topology.PickLevelAlg(inter, len(cross), hi-lo)
		if err := levelFn(interAlg)(c, cross, buf[lo:hi]); err != nil {
			return fmt.Errorf("hier-2level torus: inter-node %v segment %d: %w", interAlg, ownSeg, err)
		}
	}

	// Intra allgather: circulate the completed segments (same schedule
	// as AllreduceRing's second phase).
	for s := 0; s < g-1; s++ {
		sendSeg := ((me-s+1)%g + g) % g
		recvSeg := ((me-s)%g + g) % g
		slo, shi := segment(n, g, sendSeg)
		if err := c.Send(next, tagHierAG+s, buf[slo:shi]); err != nil {
			return fmt.Errorf("hier-2level torus: allgather step %d: %w", s, err)
		}
		rlo, rhi := segment(n, g, recvSeg)
		got, err := c.Recv(prev, tagHierAG+s)
		if err != nil {
			return fmt.Errorf("hier-2level torus: allgather step %d: %w", s, err)
		}
		copy(buf[rlo:rhi], got)
	}
	return nil
}
