// Package collective implements real, data-carrying collective
// operations — the algorithms whose *costs* internal/netmodel models
// analytically. The same algorithm shapes exist in both packages; unit
// tests verify every implementation against a naive gather-reduce
// reference, which is what makes the distributed-training accuracy
// experiment trustworthy: gradients are combined by this code, not by
// a mock.
//
// All collectives operate over an explicit group of global ranks
// (which enables the hierarchical compositions) and reduce with
// summation — Horovod divides by world size afterwards to average.
//
// Misuse — a rank outside its group, mismatched buffer lengths, a
// machine/world mismatch — is reported as a returned error with
// context, never a panic: a panicking collective tears down every
// in-process rank at once, where an error lets the caller attribute
// the failure to one rank and unwind cleanly.
package collective

import (
	"fmt"

	"segscale/internal/telemetry"
	"segscale/internal/timeline"
	"segscale/internal/topology"
	"segscale/internal/transport"
)

// Tag bases keep concurrent phases of composed collectives from
// colliding. Each collective call consumes tags [base, base+steps).
const (
	tagRing   = 1 << 16
	tagRD     = 2 << 16
	tagNaive  = 3 << 16
	tagReduce = 4 << 16
	tagBcast  = 5 << 16
	tagGather = 6 << 16
)

// instrument opens a span and bumps the per-algorithm op/byte
// counters on the caller's probe. Uninstrumented communicators (nil
// probe, the default) pay one branch per nil-safe telemetry call.
func instrument(c *transport.Comm, phase, alg string, bytes int) telemetry.Span {
	p := c.Probe()
	if p == nil {
		return telemetry.Span{}
	}
	p.Counter("collective_ops_total").Inc()
	p.Counter("collective_payload_bytes").Add(float64(bytes))
	return p.Span(phase, alg)
}

// indexIn returns the caller's index within group; a rank outside the
// group is always a caller bug, reported as an error.
func indexIn(group []int, rank int) (int, error) {
	for i, r := range group {
		if r == rank {
			return i, nil
		}
	}
	return 0, fmt.Errorf("collective: rank %d not in group %v", rank, group)
}

// segment splits length n into p nearly-equal pieces; returns the
// [lo,hi) bounds of piece i. Earlier pieces get the remainder, the
// standard MPI decomposition.
func segment(n, p, i int) (lo, hi int) {
	base := n / p
	rem := n % p
	lo = i*base + min(i, rem)
	size := base
	if i < rem {
		size++
	}
	return lo, lo + size
}

func addInto(dst, src []float32) error {
	if len(dst) != len(src) {
		return fmt.Errorf("collective: reduce length mismatch %d vs %d", len(dst), len(src))
	}
	for i, v := range src {
		dst[i] += v
	}
	return nil
}

// AllreduceNaive gathers every contribution to group[0], reduces, and
// broadcasts the result linearly. O(p) time and the reference other
// algorithms are verified against.
func AllreduceNaive(c *transport.Comm, group []int, buf []float32) error {
	sp := instrument(c, timeline.PhaseAllreduce, "naive", 4*len(buf))
	defer sp.End()
	me, err := indexIn(group, c.Rank())
	if err != nil {
		return fmt.Errorf("allreduce naive: %w", err)
	}
	root := group[0]
	if me == 0 {
		for _, r := range group[1:] {
			got, err := c.Recv(r, tagNaive)
			if err != nil {
				return fmt.Errorf("allreduce naive: rank %d contribution: %w", r, err)
			}
			if err := addInto(buf, got); err != nil {
				return fmt.Errorf("allreduce naive: rank %d contribution: %w", r, err)
			}
		}
		for _, r := range group[1:] {
			if err := c.Send(r, tagNaive+1, buf); err != nil {
				return fmt.Errorf("allreduce naive: result to rank %d: %w", r, err)
			}
		}
		return nil
	}
	if err := c.Send(root, tagNaive, buf); err != nil {
		return fmt.Errorf("allreduce naive: contribution to root: %w", err)
	}
	if err := c.RecvInto(root, tagNaive+1, buf); err != nil {
		return fmt.Errorf("allreduce naive: result from root: %w", err)
	}
	return nil
}

// AllreduceRing is the bandwidth-optimal ring: p−1 reduce-scatter
// steps followed by p−1 allgather steps over ceil(n/p) segments.
func AllreduceRing(c *transport.Comm, group []int, buf []float32) error {
	p := len(group)
	if p <= 1 {
		return nil
	}
	sp := instrument(c, timeline.PhaseAllreduce, "ring", 4*len(buf))
	defer sp.End()
	me, err := indexIn(group, c.Rank())
	if err != nil {
		return fmt.Errorf("allreduce ring: %w", err)
	}
	next := group[(me+1)%p]
	prev := group[(me-1+p)%p]
	n := len(buf)

	// Reduce-scatter: after step s, each rank holds the full sum of
	// segment (me+1) mod p ... converging to segment (me+1).
	for s := 0; s < p-1; s++ {
		sendSeg := ((me-s)%p + p) % p
		recvSeg := ((me-s-1)%p + p) % p
		slo, shi := segment(n, p, sendSeg)
		if err := c.Send(next, tagRing+s, buf[slo:shi]); err != nil {
			return fmt.Errorf("allreduce ring: reduce-scatter step %d: %w", s, err)
		}
		rlo, rhi := segment(n, p, recvSeg)
		got, err := c.Recv(prev, tagRing+s)
		if err != nil {
			return fmt.Errorf("allreduce ring: reduce-scatter step %d: %w", s, err)
		}
		if err := addInto(buf[rlo:rhi], got); err != nil {
			return fmt.Errorf("allreduce ring: reduce-scatter step %d: %w", s, err)
		}
	}
	// Allgather: circulate the completed segments.
	for s := 0; s < p-1; s++ {
		sendSeg := ((me-s+1)%p + p) % p
		recvSeg := ((me-s)%p + p) % p
		slo, shi := segment(n, p, sendSeg)
		if err := c.Send(next, tagRing+p+s, buf[slo:shi]); err != nil {
			return fmt.Errorf("allreduce ring: allgather step %d: %w", s, err)
		}
		rlo, rhi := segment(n, p, recvSeg)
		got, err := c.Recv(prev, tagRing+p+s)
		if err != nil {
			return fmt.Errorf("allreduce ring: allgather step %d: %w", s, err)
		}
		copy(buf[rlo:rhi], got)
	}
	return nil
}

// AllreduceRecursiveDoubling is the latency-optimal log₂(p)-step
// exchange, with the MPICH-style fold for non-power-of-two groups.
func AllreduceRecursiveDoubling(c *transport.Comm, group []int, buf []float32) error {
	p := len(group)
	if p <= 1 {
		return nil
	}
	sp := instrument(c, timeline.PhaseAllreduce, "recursive-doubling", 4*len(buf))
	defer sp.End()
	me, err := indexIn(group, c.Rank())
	if err != nil {
		return fmt.Errorf("allreduce recursive-doubling: %w", err)
	}
	pow := 1
	for pow*2 <= p {
		pow *= 2
	}
	rem := p - pow

	// Fold: the first 2·rem ranks pair up; evens donate and go idle.
	newrank := -1
	switch {
	case me < 2*rem && me%2 == 0:
		if err := c.Send(group[me+1], tagRD, buf); err != nil {
			return fmt.Errorf("allreduce recursive-doubling: fold: %w", err)
		}
	case me < 2*rem: // odd
		got, err := c.Recv(group[me-1], tagRD)
		if err != nil {
			return fmt.Errorf("allreduce recursive-doubling: fold: %w", err)
		}
		if err := addInto(buf, got); err != nil {
			return fmt.Errorf("allreduce recursive-doubling: fold: %w", err)
		}
		newrank = me / 2
	default:
		newrank = me - rem
	}

	if newrank >= 0 {
		old := func(nr int) int {
			if nr < rem {
				return nr*2 + 1
			}
			return nr + rem
		}
		for dist := 1; dist < pow; dist *= 2 {
			partner := group[old(newrank^dist)]
			got, err := c.SendRecv(partner, tagRD+1+dist, buf, partner, tagRD+1+dist)
			if err != nil {
				return fmt.Errorf("allreduce recursive-doubling: distance %d: %w", dist, err)
			}
			if err := addInto(buf, got); err != nil {
				return fmt.Errorf("allreduce recursive-doubling: distance %d: %w", dist, err)
			}
		}
	}

	// Unfold: odd ranks return the result to their even partner.
	if me < 2*rem {
		if me%2 == 0 {
			if err := c.RecvInto(group[me+1], tagRD+2*pow, buf); err != nil {
				return fmt.Errorf("allreduce recursive-doubling: unfold: %w", err)
			}
		} else {
			if err := c.Send(group[me-1], tagRD+2*pow, buf); err != nil {
				return fmt.Errorf("allreduce recursive-doubling: unfold: %w", err)
			}
		}
	}
	return nil
}

// ReduceTree reduces every rank's buf into group[0] using a binomial
// tree (non-roots' buffers are left with partial sums).
func ReduceTree(c *transport.Comm, group []int, buf []float32) error {
	p := len(group)
	me, err := indexIn(group, c.Rank())
	if err != nil {
		return fmt.Errorf("reduce tree: %w", err)
	}
	for dist := 1; dist < p; dist *= 2 {
		if me%(2*dist) == 0 {
			src := me + dist
			if src < p {
				got, err := c.Recv(group[src], tagReduce+dist)
				if err != nil {
					return fmt.Errorf("reduce tree: from rank %d: %w", group[src], err)
				}
				if err := addInto(buf, got); err != nil {
					return fmt.Errorf("reduce tree: from rank %d: %w", group[src], err)
				}
			}
		} else if me%dist == 0 {
			if err := c.Send(group[me-dist], tagReduce+dist, buf); err != nil {
				return fmt.Errorf("reduce tree: to rank %d: %w", group[me-dist], err)
			}
			return nil
		}
	}
	return nil
}

// BcastTree broadcasts group[0]'s buf to the group via binomial tree.
func BcastTree(c *transport.Comm, group []int, buf []float32) error {
	sp := instrument(c, timeline.PhaseBcast, "binomial-tree", 4*len(buf))
	defer sp.End()
	p := len(group)
	me, err := indexIn(group, c.Rank())
	if err != nil {
		return fmt.Errorf("bcast tree: %w", err)
	}
	// Highest power of two ≥ p.
	top := 1
	for top < p {
		top *= 2
	}
	for dist := top / 2; dist >= 1; dist /= 2 {
		if me%(2*dist) == 0 {
			dst := me + dist
			if dst < p {
				if err := c.Send(group[dst], tagBcast+dist, buf); err != nil {
					return fmt.Errorf("bcast tree: to rank %d: %w", group[dst], err)
				}
			}
		} else if me%dist == 0 {
			if err := c.RecvInto(group[me-dist], tagBcast+dist, buf); err != nil {
				return fmt.Errorf("bcast tree: from rank %d: %w", group[me-dist], err)
			}
		}
	}
	return nil
}

// AllgatherRing circulates per-rank shards around the ring. shards[i]
// must be the shard contributed by group index i; only shards[me] need
// be filled on entry, and all are filled on return.
func AllgatherRing(c *transport.Comm, group []int, shards [][]float32) error {
	p := len(group)
	if p <= 1 {
		return nil
	}
	me, err := indexIn(group, c.Rank())
	if err != nil {
		return fmt.Errorf("allgather ring: %w", err)
	}
	if len(shards) != p {
		return fmt.Errorf("allgather ring: %d shards for %d ranks", len(shards), p)
	}
	sp := instrument(c, timeline.PhaseAllgather, "ring", 4*len(shards[me]))
	defer sp.End()
	next := group[(me+1)%p]
	prev := group[(me-1+p)%p]
	for s := 0; s < p-1; s++ {
		sendIdx := ((me-s)%p + p) % p
		recvIdx := ((me-s-1)%p + p) % p
		if err := c.Send(next, tagGather+s, shards[sendIdx]); err != nil {
			return fmt.Errorf("allgather ring: step %d: %w", s, err)
		}
		got, err := c.Recv(prev, tagGather+s)
		if err != nil {
			return fmt.Errorf("allgather ring: step %d: %w", s, err)
		}
		shards[recvIdx] = got
	}
	return nil
}

// AllreduceHierLeader composes the node-leader hierarchy Horovod uses
// under HOROVOD_HIERARCHICAL_ALLREDUCE: binomial reduce to each node
// leader, recursive-doubling allreduce among the leaders, binomial
// broadcast back down. The machine layout decides the groups; the
// world must equal mach.Ranks() ranks.
func AllreduceHierLeader(c *transport.Comm, mach topology.Machine, buf []float32) error {
	if c.Size() != mach.Ranks() {
		return fmt.Errorf("collective: world %d != machine ranks %d", c.Size(), mach.Ranks())
	}
	node := mach.Node(c.Rank())
	local := mach.NodeRanks(node)
	if err := ReduceTree(c, local, buf); err != nil {
		return fmt.Errorf("hierarchical allreduce: node %d: %w", node, err)
	}
	if mach.IsLeader(c.Rank()) {
		if err := AllreduceRecursiveDoubling(c, mach.Leaders(), buf); err != nil {
			return fmt.Errorf("hierarchical allreduce: leaders: %w", err)
		}
	}
	if err := BcastTree(c, local, buf); err != nil {
		return fmt.Errorf("hierarchical allreduce: node %d: %w", node, err)
	}
	return nil
}

// Scale multiplies buf by 1/worldSize — the averaging step Horovod
// applies after its summing allreduce.
func Scale(buf []float32, worldSize int) {
	inv := float32(1) / float32(worldSize)
	for i := range buf {
		buf[i] *= inv
	}
}
