package fp16

import (
	"math"
	"testing"
)

// FuzzRoundTrip checks the binary16 conversion invariants on
// arbitrary float32 inputs: quantisation is idempotent and
// order-preserving, and no input can panic the converters.
func FuzzRoundTrip(f *testing.F) {
	f.Add(float32(0))
	f.Add(float32(1))
	f.Add(float32(-65504))
	f.Add(float32(1e-8))
	f.Add(float32(math.Inf(1)))
	f.Add(float32(math.NaN()))

	f.Fuzz(func(t *testing.T, v float32) {
		q := ToFloat32(FromFloat32(v))
		// Encode/Decode must agree bit-for-bit with Quantize: one is
		// the wire path, the other the in-place precision model, and
		// the compressed-allreduce tests assume they are the same
		// rounding.
		var enc [1]uint16
		var dec [1]float32
		if err := Encode([]float32{v}, enc[:]); err != nil {
			t.Fatal(err)
		}
		if enc[0] != FromFloat32(v) {
			t.Fatalf("Encode(%g) = %#04x, FromFloat32 = %#04x", v, enc[0], FromFloat32(v))
		}
		if err := Decode(enc[:], dec[:]); err != nil {
			t.Fatal(err)
		}
		qs := [1]float32{v}
		Quantize(qs[:])
		if math.Float32bits(dec[0]) != math.Float32bits(qs[0]) {
			t.Fatalf("decode(encode(%g)) = %x, Quantize = %x",
				v, math.Float32bits(dec[0]), math.Float32bits(qs[0]))
		}
		if math.IsNaN(float64(v)) {
			if !math.IsNaN(float64(q)) {
				t.Fatalf("NaN %x lost: %g", math.Float32bits(v), q)
			}
			return
		}
		// Idempotence: quantising twice changes nothing.
		q2 := ToFloat32(FromFloat32(q))
		if q2 != q {
			t.Fatalf("not idempotent: %g → %g → %g", v, q, q2)
		}
		// Sign preservation (except the underflow-to-zero region,
		// which keeps the sign bit on ±0).
		if v > 0 && math.Signbit(float64(q)) {
			t.Fatalf("positive %g became negative %g", v, q)
		}
		if v < 0 && q > 0 {
			t.Fatalf("negative %g became positive %g", v, q)
		}
	})
}

// FuzzHalfBits checks that ToFloat32 tolerates every 16-bit pattern
// and that FromFloat32∘ToFloat32 is identity on non-NaN halves.
func FuzzHalfBits(f *testing.F) {
	f.Add(uint16(0))
	f.Add(uint16(0x3C00))
	f.Add(uint16(0x7C00))
	f.Add(uint16(0xFFFF))

	f.Fuzz(func(t *testing.T, h uint16) {
		v := ToFloat32(h)
		if h&0x7C00 == 0x7C00 && h&0x3FF != 0 && !math.IsNaN(float64(v)) {
			t.Fatalf("NaN pattern %#04x decoded to %g", h, v)
		}
		// Identity on every pattern — NaN payloads survive the trip
		// too, since FromFloat32 preserves payloads that outlive the
		// truncation.
		if got := FromFloat32(v); got != h {
			t.Fatalf("half %#04x → %g → %#04x", h, v, got)
		}
	})
}
