// Package fp16 implements IEEE 754 binary16 conversion — the numeric
// substrate of Horovod's fp16 gradient compression
// (hvd.Compression.fp16), which halves allreduce volume at the cost
// of precision. Conversion uses round-to-nearest-even and handles
// subnormals, infinities and NaN.
package fp16

import (
	"fmt"
	"math"
)

const (
	expMask16  = 0x7C00
	fracMask16 = 0x03FF
	signMask16 = 0x8000
)

// FromFloat32 converts a float32 to its nearest binary16
// representation (round-to-nearest-even; overflow becomes ±Inf).
func FromFloat32(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & signMask16
	exp := int32(bits>>23) & 0xFF
	frac := bits & 0x7FFFFF

	switch {
	case exp == 0xFF: // Inf / NaN
		if frac != 0 {
			// NaN: the top 10 payload bits survive the truncation
			// unchanged; the quiet bit is forced only when truncation
			// would leave an all-zero payload, which would otherwise
			// read back as Inf.
			payload := uint16(frac >> 13)
			if payload == 0 {
				payload = 0x200
			}
			return sign | expMask16 | payload
		}
		return sign | expMask16
	case exp == 0 && frac == 0:
		return sign // ±0
	}

	// Unbiased exponent.
	e := exp - 127
	switch {
	case e > 15: // overflow → ±Inf
		return sign | expMask16
	case e >= -14: // normal half
		half := sign | uint16(e+15)<<10 | uint16(frac>>13)
		// Round to nearest even on the 13 dropped bits.
		rem := frac & 0x1FFF
		if rem > 0x1000 || (rem == 0x1000 && half&1 == 1) {
			half++ // may carry into exponent; that is correct rounding
		}
		return half
	case e >= -25: // subnormal half (e = -25 can still round up to it)
		// Implicit leading 1 becomes explicit; shift by the deficit.
		mant := frac | 0x800000
		shift := uint32(-e - 14 + 13)
		half := sign | uint16(mant>>shift)
		rem := mant & ((1 << shift) - 1)
		halfway := uint32(1) << (shift - 1)
		if rem > halfway || (rem == halfway && half&1 == 1) {
			half++
		}
		return half
	default: // underflow → ±0
		return sign
	}
}

// ToFloat32 converts a binary16 value to float32 exactly.
func ToFloat32(h uint16) float32 {
	sign := uint32(h&signMask16) << 16
	exp := uint32(h&expMask16) >> 10
	frac := uint32(h & fracMask16)

	switch {
	case exp == 0x1F: // Inf / NaN
		return math.Float32frombits(sign | 0x7F800000 | frac<<13)
	case exp == 0:
		if frac == 0 {
			return math.Float32frombits(sign) // ±0
		}
		// Subnormal half → normal float32.
		e := uint32(127 - 15 + 1)
		for frac&0x400 == 0 {
			frac <<= 1
			e--
		}
		frac &= fracMask16
		return math.Float32frombits(sign | e<<23 | frac<<13)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | frac<<13)
	}
}

// Quantize rounds every element through binary16 in place — the
// precision effect of compressing, transmitting and decompressing a
// gradient buffer.
func Quantize(buf []float32) {
	for i, v := range buf {
		buf[i] = ToFloat32(FromFloat32(v))
	}
}

// Encode packs a float32 slice into binary16 words — the cast that
// runs once per fused buffer on the compressed-allreduce pack path. A
// destination shorter than the source is a caller bug, reported as an
// error rather than a panic so a multi-rank world can unwind cleanly;
// the success path allocates nothing.
func Encode(src []float32, dst []uint16) error {
	if len(dst) < len(src) {
		return fmt.Errorf("fp16: encode %d values into %d-word destination", len(src), len(dst))
	}
	for i, v := range src {
		dst[i] = FromFloat32(v)
	}
	return nil
}

// Decode unpacks binary16 words into float32 — Encode's inverse on
// the unpack path, with the same error contract.
func Decode(src []uint16, dst []float32) error {
	if len(dst) < len(src) {
		return fmt.Errorf("fp16: decode %d words into %d-value destination", len(src), len(dst))
	}
	for i, h := range src {
		dst[i] = ToFloat32(h)
	}
	return nil
}
