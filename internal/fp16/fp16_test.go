package fp16

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExactValues(t *testing.T) {
	cases := []struct {
		f float32
		h uint16
	}{
		{0, 0x0000},
		{1, 0x3C00},
		{-1, 0xBC00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7BFF},                 // max finite half
		{6.103515625e-05, 0x0400},       // smallest normal half
		{5.960464477539063e-08, 0x0001}, // smallest subnormal half
		{float32(math.Inf(1)), 0x7C00},
		{float32(math.Inf(-1)), 0xFC00},
	}
	for _, c := range cases {
		if got := FromFloat32(c.f); got != c.h {
			t.Errorf("FromFloat32(%g) = %#04x, want %#04x", c.f, got, c.h)
		}
		if got := ToFloat32(c.h); got != c.f {
			t.Errorf("ToFloat32(%#04x) = %g, want %g", c.h, got, c.f)
		}
	}
}

func TestNegativeZero(t *testing.T) {
	h := FromFloat32(float32(math.Copysign(0, -1)))
	if h != 0x8000 {
		t.Fatalf("-0 → %#04x", h)
	}
	if f := ToFloat32(h); !math.Signbit(float64(f)) || f != 0 {
		t.Fatalf("round trip of -0: %g", f)
	}
}

func TestNaN(t *testing.T) {
	h := FromFloat32(float32(math.NaN()))
	if h&0x7C00 != 0x7C00 || h&0x3FF == 0 {
		t.Fatalf("NaN encoded as %#04x", h)
	}
	if f := ToFloat32(h); !math.IsNaN(float64(f)) {
		t.Fatalf("NaN round trip gave %g", f)
	}
}

func TestOverflowToInf(t *testing.T) {
	if h := FromFloat32(1e6); h != 0x7C00 {
		t.Fatalf("1e6 → %#04x, want +Inf", h)
	}
	if h := FromFloat32(-1e6); h != 0xFC00 {
		t.Fatalf("-1e6 → %#04x, want -Inf", h)
	}
}

func TestUnderflowToZero(t *testing.T) {
	if h := FromFloat32(1e-10); h != 0 {
		t.Fatalf("1e-10 → %#04x, want 0", h)
	}
}

func TestRoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly halfway between 1 and the next half
	// (1+2^-10); ties round to even (stay at 1, mantissa 0).
	f := float32(1) + float32(math.Pow(2, -11))
	if h := FromFloat32(f); h != 0x3C00 {
		t.Errorf("halfway tie rounded to %#04x, want 0x3C00 (even)", h)
	}
	// Slightly above halfway rounds up.
	f = float32(1) + float32(math.Pow(2, -11)) + float32(math.Pow(2, -13))
	if h := FromFloat32(f); h != 0x3C01 {
		t.Errorf("above-halfway rounded to %#04x, want 0x3C01", h)
	}
}

// Exhaustive conformance: every one of the 65536 half values —
// including every NaN payload, now that FromFloat32 preserves
// payloads that survive the truncation — round-trips
// ToFloat32→FromFloat32 bit-identically.
func TestPropertyHalfRoundTrip(t *testing.T) {
	for h := 0; h <= 0xFFFF; h++ {
		u := uint16(h)
		f := ToFloat32(u)
		if got := FromFloat32(f); got != u {
			t.Fatalf("half %#04x → %g → %#04x", u, f, got)
		}
	}
}

// refFromFloat32 is an independent float64 math-based reference for
// the float32→binary16 conversion: round-to-nearest-even via
// math.RoundToEven on exactly-scaled values, explicit subnormal and
// overflow→Inf handling. NaN is excluded (payload propagation is
// pinned separately by TestNaNPayloadRoundTrip).
func refFromFloat32(v float32) uint16 {
	f := float64(v)
	sign := uint16(0)
	if math.Signbit(f) {
		sign = signMask16
	}
	a := math.Abs(f)
	switch {
	case math.IsInf(f, 0) || a >= 65520: // ≥ max-finite + ½ulp ties to even → Inf
		return sign | expMask16
	case a == 0:
		return sign
	case a < math.Ldexp(1, -14): // subnormal half (or underflow to zero)
		// Scaling by 2^24 is exact for float32 inputs, so RoundToEven
		// decides the subnormal mantissa directly. A result of exactly
		// 1024 is the smallest normal, whose encoding (exp=1, frac=0)
		// the plain bit-or produces.
		return sign | uint16(math.RoundToEven(math.Ldexp(a, 24)))
	}
	e := math.Ilogb(a) // in [-14, 15]
	m := math.RoundToEven(math.Ldexp(a, 10-e))
	if m == 2048 { // mantissa rounded up across the binade
		e++
		m = 1024
		if e > 15 {
			return sign | expMask16
		}
	}
	return sign | uint16(e+15)<<10 | uint16(m-1024)
}

// Property: FromFloat32 matches the float64 reference on arbitrary
// float32 bit patterns (normals, subnormals, overflow, underflow),
// and NaNs stay NaN.
func TestPropertyMatchesFloat64Reference(t *testing.T) {
	f := func(bits uint32) bool {
		v := math.Float32frombits(bits)
		got := FromFloat32(v)
		if math.IsNaN(float64(v)) {
			return got&expMask16 == expMask16 && got&fracMask16 != 0
		}
		return got == refFromFloat32(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
	// The random sweep rarely lands on exact boundaries; pin them.
	for _, v := range []float32{
		65504, 65519.99, 65520, 65536, -65520,
		6.103515625e-05, 6.097555160522461e-05, // smallest normal, just below
		5.960464477539063e-08, 2.9802322387695312e-08, // smallest subnormal, its halfway tie
		1e-10, 0, float32(math.Inf(1)), float32(math.Inf(-1)),
	} {
		if got, want := FromFloat32(v), refFromFloat32(v); got != want {
			t.Errorf("FromFloat32(%g) = %#04x, reference %#04x", v, got, want)
		}
	}
}

// NaN payloads that survive the 13-bit truncation must come through
// FromFloat32 unchanged — the conversion must not OR stray bits into
// them (the old code forced 0x200|1 onto every NaN).
func TestNaNPayloadRoundTrip(t *testing.T) {
	for _, payload := range []uint16{0x001, 0x123, 0x200, 0x3FF} {
		want := uint16(0x7C00 | payload)
		f := math.Float32frombits(0x7F800000 | uint32(payload)<<13)
		if got := FromFloat32(f); got != want {
			t.Errorf("NaN payload %#03x encoded as %#04x, want %#04x", payload, got, want)
		}
		// And the full half→float32→half trip is the identity.
		if got := FromFloat32(ToFloat32(want)); got != want {
			t.Errorf("NaN half %#04x round-tripped to %#04x", want, got)
		}
	}
	// A NaN whose payload truncates to zero must gain the quiet bit —
	// without it the result would decode as Inf.
	f := math.Float32frombits(0x7F800001) // signalling NaN, tiny payload
	if got := FromFloat32(f); got != 0x7E00 {
		t.Errorf("truncated-to-zero NaN payload encoded as %#04x, want 0x7E00", got)
	}
}

// Property: conversion error is within half a ULP of binary16 for
// in-range values.
func TestPropertyQuantisationError(t *testing.T) {
	f := func(v float32) bool {
		if math.IsNaN(float64(v)) || math.Abs(float64(v)) > 65000 || (v != 0 && math.Abs(float64(v)) < 1e-4) {
			return true // outside the interesting range
		}
		q := ToFloat32(FromFloat32(v))
		relErr := math.Abs(float64(q-v)) / math.Max(math.Abs(float64(v)), 1e-8)
		return relErr <= 1.0/1024 // 2^-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeSlice(t *testing.T) {
	buf := []float32{1, 1.0002, -3.14159, 0}
	Quantize(buf)
	if buf[0] != 1 || buf[3] != 0 {
		t.Fatal("exact values changed")
	}
	if buf[1] == 1.0002 {
		t.Fatal("inexact value not quantised")
	}
}

func TestEncodeDecode(t *testing.T) {
	src := []float32{1, 2, -0.5}
	enc := make([]uint16, 3)
	if err := Encode(src, enc); err != nil {
		t.Fatal(err)
	}
	dst := make([]float32, 3)
	if err := Decode(enc, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("encode/decode changed exact value %g → %g", src[i], dst[i])
		}
	}
}

// Short destinations are caller bugs reported as errors, not panics —
// the nopanic convention the collective stack relies on to unwind a
// multi-rank world cleanly.
func TestEncodeDecodeShortDestination(t *testing.T) {
	src := []float32{1, 2, -0.5}
	if err := Encode(src, make([]uint16, 1)); err == nil {
		t.Error("Encode accepted a short destination")
	}
	if err := Decode(make([]uint16, 3), make([]float32, 2)); err == nil {
		t.Error("Decode accepted a short destination")
	}
	// Oversized destinations are fine; extra words are untouched.
	dst := make([]uint16, 5)
	if err := Encode(src, dst); err != nil {
		t.Fatal(err)
	}
	if dst[3] != 0 || dst[4] != 0 {
		t.Error("Encode wrote past the source length")
	}
}
