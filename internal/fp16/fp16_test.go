package fp16

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExactValues(t *testing.T) {
	cases := []struct {
		f float32
		h uint16
	}{
		{0, 0x0000},
		{1, 0x3C00},
		{-1, 0xBC00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7BFF},                 // max finite half
		{6.103515625e-05, 0x0400},       // smallest normal half
		{5.960464477539063e-08, 0x0001}, // smallest subnormal half
		{float32(math.Inf(1)), 0x7C00},
		{float32(math.Inf(-1)), 0xFC00},
	}
	for _, c := range cases {
		if got := FromFloat32(c.f); got != c.h {
			t.Errorf("FromFloat32(%g) = %#04x, want %#04x", c.f, got, c.h)
		}
		if got := ToFloat32(c.h); got != c.f {
			t.Errorf("ToFloat32(%#04x) = %g, want %g", c.h, got, c.f)
		}
	}
}

func TestNegativeZero(t *testing.T) {
	h := FromFloat32(float32(math.Copysign(0, -1)))
	if h != 0x8000 {
		t.Fatalf("-0 → %#04x", h)
	}
	if f := ToFloat32(h); !math.Signbit(float64(f)) || f != 0 {
		t.Fatalf("round trip of -0: %g", f)
	}
}

func TestNaN(t *testing.T) {
	h := FromFloat32(float32(math.NaN()))
	if h&0x7C00 != 0x7C00 || h&0x3FF == 0 {
		t.Fatalf("NaN encoded as %#04x", h)
	}
	if f := ToFloat32(h); !math.IsNaN(float64(f)) {
		t.Fatalf("NaN round trip gave %g", f)
	}
}

func TestOverflowToInf(t *testing.T) {
	if h := FromFloat32(1e6); h != 0x7C00 {
		t.Fatalf("1e6 → %#04x, want +Inf", h)
	}
	if h := FromFloat32(-1e6); h != 0xFC00 {
		t.Fatalf("-1e6 → %#04x, want -Inf", h)
	}
}

func TestUnderflowToZero(t *testing.T) {
	if h := FromFloat32(1e-10); h != 0 {
		t.Fatalf("1e-10 → %#04x, want 0", h)
	}
}

func TestRoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly halfway between 1 and the next half
	// (1+2^-10); ties round to even (stay at 1, mantissa 0).
	f := float32(1) + float32(math.Pow(2, -11))
	if h := FromFloat32(f); h != 0x3C00 {
		t.Errorf("halfway tie rounded to %#04x, want 0x3C00 (even)", h)
	}
	// Slightly above halfway rounds up.
	f = float32(1) + float32(math.Pow(2, -11)) + float32(math.Pow(2, -13))
	if h := FromFloat32(f); h != 0x3C01 {
		t.Errorf("above-halfway rounded to %#04x, want 0x3C01", h)
	}
}

// Property: every half value round-trips exactly through float32.
func TestPropertyHalfRoundTrip(t *testing.T) {
	for h := 0; h <= 0xFFFF; h++ {
		u := uint16(h)
		if u&0x7C00 == 0x7C00 && u&0x3FF != 0 {
			continue // NaN payloads need not round trip bit-exactly
		}
		f := ToFloat32(u)
		if got := FromFloat32(f); got != u {
			t.Fatalf("half %#04x → %g → %#04x", u, f, got)
		}
	}
}

// Property: conversion error is within half a ULP of binary16 for
// in-range values.
func TestPropertyQuantisationError(t *testing.T) {
	f := func(v float32) bool {
		if math.IsNaN(float64(v)) || math.Abs(float64(v)) > 65000 || (v != 0 && math.Abs(float64(v)) < 1e-4) {
			return true // outside the interesting range
		}
		q := ToFloat32(FromFloat32(v))
		relErr := math.Abs(float64(q-v)) / math.Max(math.Abs(float64(v)), 1e-8)
		return relErr <= 1.0/1024 // 2^-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeSlice(t *testing.T) {
	buf := []float32{1, 1.0002, -3.14159, 0}
	Quantize(buf)
	if buf[0] != 1 || buf[3] != 0 {
		t.Fatal("exact values changed")
	}
	if buf[1] == 1.0002 {
		t.Fatal("inexact value not quantised")
	}
}

func TestEncodeDecode(t *testing.T) {
	src := []float32{1, 2, -0.5}
	enc := make([]uint16, 3)
	Encode(src, enc)
	dst := make([]float32, 3)
	Decode(enc, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("encode/decode changed exact value %g → %g", src[i], dst[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("short destination accepted")
		}
	}()
	Encode(src, make([]uint16, 1))
}
