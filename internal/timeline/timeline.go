// Package timeline records Horovod-style activity traces: named
// phases (FORWARD, BACKWARD, NEGOTIATE_ALLREDUCE, MPI_ALLREDUCE,
// MEMCPY_IN_FUSION_BUFFER, ...) with start/end times per lane, plus
// aggregation into the per-phase breakdown the paper's timeline
// figure shows, and export in Chrome trace-event JSON (the format
// Horovod's own HOROVOD_TIMELINE produces and chrome://tracing
// consumes).
package timeline

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Phase names mirror Horovod's timeline vocabulary.
const (
	PhaseForward   = "FORWARD"
	PhaseBackward  = "BACKWARD"
	PhaseNegotiate = "NEGOTIATE_ALLREDUCE"
	PhaseMemcpy    = "MEMCPY_IN_FUSION_BUFFER"
	PhaseAllreduce = "MPI_ALLREDUCE"
	PhaseWait      = "WAIT_FOR_DATA"
	PhaseBcast     = "MPI_BCAST"
	PhaseAllgather = "MPI_ALLGATHER"
	PhaseBarrier   = "MPI_BARRIER"
	PhaseStep      = "TRAIN_STEP"
	PhaseRecovery  = "RECOVERY"
	PhaseSend      = "MPI_SEND"
	PhaseRecv      = "MPI_RECV"
)

// Edge identifies one message crossing the transport: the sending
// rank, the receiving rank, the per-(src,dst)-pair sequence number,
// and the world incarnation the message belongs to. A send span and
// its matching recv span carry the same Edge, which is what lets
// trace analysis stitch per-rank event lists into a cross-rank
// happens-before DAG — the causal structure per-lane timestamps
// (step-counter clocks are not comparable across ranks) cannot give.
type Edge struct {
	Src int
	Dst int
	Seq uint64
	Inc int
}

// String renders the edge in the compact "src>dst#seq.inc" form that
// rides span attributes and round-trips through Chrome trace args.
func (e Edge) String() string {
	return fmt.Sprintf("%d>%d#%d.%d", e.Src, e.Dst, e.Seq, e.Inc)
}

// ParseEdge parses the "src>dst#seq.inc" form. Malformed input is an
// error, never a panic: edges come from trace files, which analysis
// must survive in degraded form.
func ParseEdge(s string) (Edge, error) {
	var e Edge
	gt := strings.IndexByte(s, '>')
	hash := strings.IndexByte(s, '#')
	dot := strings.LastIndexByte(s, '.')
	if gt <= 0 || hash <= gt || dot <= hash {
		return e, fmt.Errorf("timeline: malformed edge %q", s)
	}
	src, err1 := strconv.Atoi(s[:gt])
	dst, err2 := strconv.Atoi(s[gt+1 : hash])
	seq, err3 := strconv.ParseUint(s[hash+1:dot], 10, 64)
	inc, err4 := strconv.Atoi(s[dot+1:])
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil || src < 0 || dst < 0 || inc < 0 {
		return e, fmt.Errorf("timeline: malformed edge %q", s)
	}
	return Edge{Src: src, Dst: dst, Seq: seq, Inc: inc}, nil
}

// Event is one traced interval.
type Event struct {
	Lane  string  // e.g. "rank0", "coordinator"
	Phase string  // one of the Phase* constants
	Name  string  // free-form detail (tensor/buffer name)
	Start float64 // seconds
	End   float64
	// Edge, when non-empty, is the message-edge attribute ("src>dst#seq.inc")
	// linking this span to its cross-rank counterpart (PhaseSend/PhaseRecv).
	Edge string
}

// Recorder accumulates events.
type Recorder struct {
	Events []Event
	// Enabled mirrors HOROVOD_TIMELINE: recording off costs nothing.
	Enabled bool
}

// New returns an enabled recorder.
func New() *Recorder { return &Recorder{Enabled: true} }

// Add records one interval (no-op when disabled).
func (r *Recorder) Add(lane, phase, name string, start, end float64) {
	r.AddEdge(lane, phase, name, "", start, end)
}

// AddEdge records one interval carrying a message-edge attribute
// (no-op when disabled; an empty edge is a plain Add).
func (r *Recorder) AddEdge(lane, phase, name, edge string, start, end float64) {
	if r == nil || !r.Enabled {
		return
	}
	if end < start {
		panic(fmt.Sprintf("timeline: event %q ends (%g) before start (%g)", name, end, start))
	}
	r.Events = append(r.Events, Event{Lane: lane, Phase: phase, Name: name, Start: start, End: end, Edge: edge}) //seglint:ignore hotalloc the event log grows by design while recording; the simulator records one designated step per run
}

// Breakdown sums durations per phase.
func (r *Recorder) Breakdown() map[string]float64 {
	out := map[string]float64{}
	for _, e := range r.Events {
		out[e.Phase] += e.End - e.Start
	}
	return out
}

// LaneBreakdown sums durations per phase for one lane.
func (r *Recorder) LaneBreakdown(lane string) map[string]float64 {
	out := map[string]float64{}
	for _, e := range r.Events {
		if e.Lane == lane {
			out[e.Phase] += e.End - e.Start
		}
	}
	return out
}

// Span returns the [min start, max end] of all events (zeros when
// empty).
func (r *Recorder) Span() (float64, float64) {
	if len(r.Events) == 0 {
		return 0, 0
	}
	lo, hi := r.Events[0].Start, r.Events[0].End
	for _, e := range r.Events[1:] {
		if e.Start < lo {
			lo = e.Start
		}
		if e.End > hi {
			hi = e.End
		}
	}
	return lo, hi
}

// chromeEvent is the trace-event JSON schema ("X" complete events).
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
	// Args carries span attributes; chrome://tracing shows them in the
	// event detail pane, and ReadChromeTrace round-trips them.
	Args *chromeArgs `json:"args,omitempty"`
}

// chromeArgs is the attribute payload of one trace event.
type chromeArgs struct {
	Edge string `json:"edge,omitempty"`
}

// ReadChromeTrace parses a Chrome trace-event JSON stream written by
// WriteChromeTrace back into a Recorder (lane names become "tid<N>";
// the original names are not stored in the trace format). It lets
// tooling re-aggregate breakdowns from saved traces.
func ReadChromeTrace(r io.Reader) (*Recorder, error) {
	var events []chromeEvent
	if err := json.NewDecoder(r).Decode(&events); err != nil {
		return nil, fmt.Errorf("timeline: parsing trace: %w", err)
	}
	rec := New()
	for _, e := range events {
		if e.Ph != "X" {
			continue // only complete events are ours
		}
		if e.Dur < 0 {
			return nil, fmt.Errorf("timeline: negative duration in trace")
		}
		start := e.Ts / 1e6
		// WriteChromeTrace stores the event name as "PHASE:name";
		// undo that so names round-trip.
		name := strings.TrimPrefix(e.Name, e.Cat+":")
		edge := ""
		if e.Args != nil {
			edge = e.Args.Edge
		}
		rec.AddEdge(fmt.Sprintf("tid%d", e.TID), e.Cat, name, edge, start, start+e.Dur/1e6)
	}
	return rec, nil
}

// WriteChromeTrace emits the events as a Chrome trace-event JSON
// array, one thread id per lane, loadable in chrome://tracing or
// Perfetto — the same workflow as inspecting a real Horovod timeline.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	lanes := map[string]int{}
	var laneNames []string
	for _, e := range r.Events {
		if _, ok := lanes[e.Lane]; !ok {
			lanes[e.Lane] = 0
			laneNames = append(laneNames, e.Lane)
		}
	}
	sort.Strings(laneNames)
	for i, n := range laneNames {
		lanes[n] = i
	}
	out := make([]chromeEvent, 0, len(r.Events))
	for _, e := range r.Events {
		ce := chromeEvent{
			Name: e.Phase + ":" + e.Name,
			Cat:  e.Phase,
			Ph:   "X",
			Ts:   e.Start * 1e6,
			Dur:  (e.End - e.Start) * 1e6,
			PID:  0,
			TID:  lanes[e.Lane],
		}
		if e.Edge != "" {
			ce.Args = &chromeArgs{Edge: e.Edge}
		}
		out = append(out, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
