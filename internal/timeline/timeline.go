// Package timeline records Horovod-style activity traces: named
// phases (FORWARD, BACKWARD, NEGOTIATE_ALLREDUCE, MPI_ALLREDUCE,
// MEMCPY_IN_FUSION_BUFFER, ...) with start/end times per lane, plus
// aggregation into the per-phase breakdown the paper's timeline
// figure shows, and export in Chrome trace-event JSON (the format
// Horovod's own HOROVOD_TIMELINE produces and chrome://tracing
// consumes).
package timeline

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Phase names mirror Horovod's timeline vocabulary.
const (
	PhaseForward   = "FORWARD"
	PhaseBackward  = "BACKWARD"
	PhaseNegotiate = "NEGOTIATE_ALLREDUCE"
	PhaseMemcpy    = "MEMCPY_IN_FUSION_BUFFER"
	PhaseAllreduce = "MPI_ALLREDUCE"
	PhaseWait      = "WAIT_FOR_DATA"
	PhaseBcast     = "MPI_BCAST"
	PhaseAllgather = "MPI_ALLGATHER"
	PhaseBarrier   = "MPI_BARRIER"
	PhaseStep      = "TRAIN_STEP"
	PhaseRecovery  = "RECOVERY"
)

// Event is one traced interval.
type Event struct {
	Lane  string  // e.g. "rank0", "coordinator"
	Phase string  // one of the Phase* constants
	Name  string  // free-form detail (tensor/buffer name)
	Start float64 // seconds
	End   float64
}

// Recorder accumulates events.
type Recorder struct {
	Events []Event
	// Enabled mirrors HOROVOD_TIMELINE: recording off costs nothing.
	Enabled bool
}

// New returns an enabled recorder.
func New() *Recorder { return &Recorder{Enabled: true} }

// Add records one interval (no-op when disabled).
func (r *Recorder) Add(lane, phase, name string, start, end float64) {
	if r == nil || !r.Enabled {
		return
	}
	if end < start {
		panic(fmt.Sprintf("timeline: event %q ends (%g) before start (%g)", name, end, start))
	}
	r.Events = append(r.Events, Event{Lane: lane, Phase: phase, Name: name, Start: start, End: end}) //seglint:ignore hotalloc the event log grows by design while recording; the simulator records one designated step per run
}

// Breakdown sums durations per phase.
func (r *Recorder) Breakdown() map[string]float64 {
	out := map[string]float64{}
	for _, e := range r.Events {
		out[e.Phase] += e.End - e.Start
	}
	return out
}

// LaneBreakdown sums durations per phase for one lane.
func (r *Recorder) LaneBreakdown(lane string) map[string]float64 {
	out := map[string]float64{}
	for _, e := range r.Events {
		if e.Lane == lane {
			out[e.Phase] += e.End - e.Start
		}
	}
	return out
}

// Span returns the [min start, max end] of all events (zeros when
// empty).
func (r *Recorder) Span() (float64, float64) {
	if len(r.Events) == 0 {
		return 0, 0
	}
	lo, hi := r.Events[0].Start, r.Events[0].End
	for _, e := range r.Events[1:] {
		if e.Start < lo {
			lo = e.Start
		}
		if e.End > hi {
			hi = e.End
		}
	}
	return lo, hi
}

// chromeEvent is the trace-event JSON schema ("X" complete events).
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
}

// ReadChromeTrace parses a Chrome trace-event JSON stream written by
// WriteChromeTrace back into a Recorder (lane names become "tid<N>";
// the original names are not stored in the trace format). It lets
// tooling re-aggregate breakdowns from saved traces.
func ReadChromeTrace(r io.Reader) (*Recorder, error) {
	var events []chromeEvent
	if err := json.NewDecoder(r).Decode(&events); err != nil {
		return nil, fmt.Errorf("timeline: parsing trace: %w", err)
	}
	rec := New()
	for _, e := range events {
		if e.Ph != "X" {
			continue // only complete events are ours
		}
		if e.Dur < 0 {
			return nil, fmt.Errorf("timeline: negative duration in trace")
		}
		start := e.Ts / 1e6
		// WriteChromeTrace stores the event name as "PHASE:name";
		// undo that so names round-trip.
		name := strings.TrimPrefix(e.Name, e.Cat+":")
		rec.Add(fmt.Sprintf("tid%d", e.TID), e.Cat, name, start, start+e.Dur/1e6)
	}
	return rec, nil
}

// WriteChromeTrace emits the events as a Chrome trace-event JSON
// array, one thread id per lane, loadable in chrome://tracing or
// Perfetto — the same workflow as inspecting a real Horovod timeline.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	lanes := map[string]int{}
	var laneNames []string
	for _, e := range r.Events {
		if _, ok := lanes[e.Lane]; !ok {
			lanes[e.Lane] = 0
			laneNames = append(laneNames, e.Lane)
		}
	}
	sort.Strings(laneNames)
	for i, n := range laneNames {
		lanes[n] = i
	}
	out := make([]chromeEvent, 0, len(r.Events))
	for _, e := range r.Events {
		out = append(out, chromeEvent{
			Name: e.Phase + ":" + e.Name,
			Cat:  e.Phase,
			Ph:   "X",
			Ts:   e.Start * 1e6,
			Dur:  (e.End - e.Start) * 1e6,
			PID:  0,
			TID:  lanes[e.Lane],
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
