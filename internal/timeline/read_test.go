package timeline

import (
	"strings"
	"testing"
)

// TestReadChromeTraceMalformed drives the parser over the inputs a
// real trace directory accumulates: truncated writes, wrong JSON
// shapes, hostile values. Every case must return a clean error or a
// well-formed recorder — never panic.
func TestReadChromeTraceMalformed(t *testing.T) {
	cases := []struct {
		name    string
		input   string
		wantErr bool
		events  int // checked only when wantErr is false
	}{
		{name: "empty input", input: "", wantErr: true},
		{name: "empty array", input: "[]", wantErr: false, events: 0},
		{name: "truncated array", input: `[{"name":"a","cat":"FORWARD","ph":"X","ts":0,`, wantErr: true},
		{name: "not json", input: "HOROVOD_TIMELINE=/tmp/t.json", wantErr: true},
		{name: "object not array", input: `{"traceEvents":[]}`, wantErr: true},
		{name: "number array", input: "[1,2,3]", wantErr: true},
		{name: "null", input: "null", wantErr: false, events: 0},
		{
			name:    "negative duration",
			input:   `[{"name":"a","cat":"FORWARD","ph":"X","ts":5,"dur":-3,"pid":0,"tid":0}]`,
			wantErr: true,
		},
		{
			name:    "non-complete events skipped",
			input:   `[{"name":"m","cat":"c","ph":"M","ts":0,"dur":0},{"name":"a","cat":"FORWARD","ph":"X","ts":0,"dur":1}]`,
			wantErr: false, events: 1,
		},
		{
			name:    "missing fields default",
			input:   `[{"ph":"X"}]`,
			wantErr: false, events: 1,
		},
		{
			name:    "string ts",
			input:   `[{"name":"a","cat":"FORWARD","ph":"X","ts":"0","dur":1}]`,
			wantErr: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec, err := ReadChromeTrace(strings.NewReader(tc.input))
			if tc.wantErr {
				if err == nil {
					t.Fatalf("ReadChromeTrace(%q) = nil error, want error", tc.input)
				}
				return
			}
			if err != nil {
				t.Fatalf("ReadChromeTrace(%q) = %v, want nil", tc.input, err)
			}
			if len(rec.Events) != tc.events {
				t.Errorf("events = %d, want %d", len(rec.Events), tc.events)
			}
		})
	}
}

// FuzzReadChromeTrace asserts the parser's contract under arbitrary
// bytes: no panic, and on success every event is well-formed
// (End >= Start) so downstream analysis never sees negative
// durations.
func FuzzReadChromeTrace(f *testing.F) {
	f.Add("")
	f.Add("[]")
	f.Add("null")
	f.Add(`[{"name":"a","cat":"FORWARD","ph":"X","ts":0,"dur":1,"pid":0,"tid":0}]`)
	f.Add(`[{"name":"a","cat":"c","ph":"M"}]`)
	f.Add(`[{"ph":"X","ts":1e308,"dur":1e308}]`)
	f.Add(`[{"ph":"X","ts":-5,"dur":2}]`)
	f.Fuzz(func(t *testing.T, input string) {
		rec, err := ReadChromeTrace(strings.NewReader(input))
		if err != nil {
			return
		}
		for i, e := range rec.Events {
			if e.End < e.Start {
				t.Errorf("event %d: End %g < Start %g from input %q", i, e.End, e.Start, input)
			}
		}
	})
}
