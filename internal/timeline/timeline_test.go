package timeline

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestBreakdown(t *testing.T) {
	r := New()
	r.Add("rank0", PhaseForward, "step0", 0, 1)
	r.Add("rank0", PhaseBackward, "step0", 1, 3)
	r.Add("coordinator", PhaseAllreduce, "buf0", 2, 2.5)
	b := r.Breakdown()
	if math.Abs(b[PhaseForward]-1) > 1e-12 || math.Abs(b[PhaseBackward]-2) > 1e-12 || math.Abs(b[PhaseAllreduce]-0.5) > 1e-12 {
		t.Fatalf("breakdown %v", b)
	}
	lb := r.LaneBreakdown("rank0")
	if _, ok := lb[PhaseAllreduce]; ok {
		t.Fatal("lane breakdown leaked other lane")
	}
}

func TestSpan(t *testing.T) {
	r := New()
	if lo, hi := r.Span(); lo != 0 || hi != 0 {
		t.Fatal("empty span not zero")
	}
	r.Add("a", PhaseForward, "x", 0.5, 1.5)
	r.Add("b", PhaseBackward, "y", 0.2, 0.9)
	lo, hi := r.Span()
	if lo != 0.2 || hi != 1.5 {
		t.Fatalf("span [%g,%g]", lo, hi)
	}
}

func TestDisabledRecorderIsFree(t *testing.T) {
	r := &Recorder{}
	r.Add("a", PhaseForward, "x", 0, 1)
	if len(r.Events) != 0 {
		t.Fatal("disabled recorder stored events")
	}
	var nilRec *Recorder
	nilRec.Add("a", PhaseForward, "x", 0, 1) // must not panic
}

func TestNegativeDurationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("inverted interval accepted")
		}
	}()
	New().Add("a", PhaseForward, "x", 2, 1)
}

func TestChromeTraceRoundTrip(t *testing.T) {
	r := New()
	r.Add("rank0", PhaseForward, "s0", 0, 0.2)
	r.Add("rank0", PhaseBackward, "s0", 0.2, 0.6)
	r.Add("coordinator", PhaseAllreduce, "b0", 0.3, 0.5)
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig, got := r.Breakdown(), back.Breakdown()
	for phase, d := range orig {
		if math.Abs(got[phase]-d) > 1e-9 {
			t.Fatalf("phase %s: %g vs %g", phase, got[phase], d)
		}
	}
	if _, err := ReadChromeTrace(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage trace accepted")
	}
}

func TestChromeTraceFormat(t *testing.T) {
	r := New()
	r.Add("rank0", PhaseForward, "s0", 0, 0.001)
	r.Add("coordinator", PhaseNegotiate, "c0", 0.001, 0.002)
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 2 {
		t.Fatalf("%d events", len(events))
	}
	e := events[0]
	if e["ph"] != "X" {
		t.Fatalf("phase type %v", e["ph"])
	}
	if e["dur"].(float64) != 1000 { // 1 ms → 1000 µs
		t.Fatalf("dur %v", e["dur"])
	}
	if !strings.Contains(e["name"].(string), PhaseForward) {
		t.Fatalf("name %v", e["name"])
	}
	// Distinct lanes get distinct tids.
	if events[0]["tid"] == events[1]["tid"] {
		t.Fatal("lanes share a tid")
	}
}

func TestEdgeStringParseRoundTrip(t *testing.T) {
	e := Edge{Src: 4, Dst: 0, Seq: 129, Inc: 2}
	s := e.String()
	if s != "4>0#129.2" {
		t.Fatalf("Edge.String() = %q", s)
	}
	got, err := ParseEdge(s)
	if err != nil {
		t.Fatalf("ParseEdge(%q): %v", s, err)
	}
	if got != e {
		t.Fatalf("round trip %+v != %+v", got, e)
	}
}

func TestParseEdgeMalformed(t *testing.T) {
	for _, s := range []string{
		"", ">", "1>2", "1>2#3", "1>2#3.", "a>2#3.0", "1>b#3.0",
		"1>2#c.0", "1>2#3.d", "-1>2#3.0", "1>-2#3.0", "1>2#3.-1",
		"#3.0", "1>#3.0", "1>2#.0",
	} {
		if _, err := ParseEdge(s); err == nil {
			t.Errorf("ParseEdge(%q): want error, got nil", s)
		}
	}
}

func TestChromeTraceEdgeRoundTrip(t *testing.T) {
	rec := New()
	rec.AddEdge("rank0", PhaseSend, "send", "0>1#5.0", 1, 2)
	rec.Add("rank0", PhaseForward, "fwd", 0, 1)
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := ReadChromeTrace(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	var edges []string
	for _, e := range back.Events {
		if e.Edge != "" {
			edges = append(edges, e.Edge)
		}
	}
	if len(edges) != 1 || edges[0] != "0>1#5.0" {
		t.Fatalf("edges after round trip = %v, want [0>1#5.0]", edges)
	}
}
