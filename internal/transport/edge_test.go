package transport

import (
	"testing"

	"segscale/internal/telemetry"
	"segscale/internal/timeline"
)

// edgeSpans filters a probe's recorded spans down to those of one
// phase.
func edgeSpans(p *telemetry.Probe, phase string) []telemetry.SpanRecord {
	var out []telemetry.SpanRecord
	for _, s := range p.Tracer().Spans() {
		if s.Phase == phase {
			out = append(out, s)
		}
	}
	return out
}

// TestSendRecvEdgePairing checks the tentpole invariant of message
// tracing: the send span on the source rank and the recv span on the
// destination rank carry the identical edge ID, and the ID encodes
// (src, dst, seq, incarnation).
func TestSendRecvEdgePairing(t *testing.T) {
	w := mustWorld(t, 2)
	w.SetIncarnation(3)
	p0 := telemetry.NewProbe("rank0", telemetry.NewStepClock())
	p1 := telemetry.NewProbe("rank1", telemetry.NewStepClock())
	c0, c1 := w.Comm(0), w.Comm(1)
	c0.SetProbe(p0)
	c1.SetProbe(p1)

	for i := 0; i < 3; i++ {
		if err := c0.Send(1, 7, []float32{float32(i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		recvOK(t, c1, 0, 7)
	}

	sends := edgeSpans(p0, timeline.PhaseSend)
	recvs := edgeSpans(p1, timeline.PhaseRecv)
	if len(sends) != 3 || len(recvs) != 3 {
		t.Fatalf("got %d send spans, %d recv spans, want 3 each", len(sends), len(recvs))
	}
	for i := 0; i < 3; i++ {
		if sends[i].Edge != recvs[i].Edge {
			t.Errorf("message %d: send edge %q != recv edge %q", i, sends[i].Edge, recvs[i].Edge)
		}
		e, err := timeline.ParseEdge(sends[i].Edge)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		want := timeline.Edge{Src: 0, Dst: 1, Seq: uint64(i), Inc: 3}
		if e != want {
			t.Errorf("message %d: edge %+v, want %+v", i, e, want)
		}
	}
}

// TestUninstrumentedSendRecvNoSpans confirms the probe-less path stays
// span-free (and alive): edge stamping must cost nothing when off.
func TestUninstrumentedSendRecvNoSpans(t *testing.T) {
	w := mustWorld(t, 2)
	if err := w.Comm(0).Send(1, 0, []float32{1}); err != nil {
		t.Fatalf("send: %v", err)
	}
	recvOK(t, w.Comm(1), 0, 0)
}
