package transport

import (
	"reflect"
	"testing"
)

func TestMembershipLifecycle(t *testing.T) {
	m, err := NewMembership(6)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Full() || m.Size() != 6 || m.Total() != 6 {
		t.Fatalf("fresh membership: %v", m)
	}
	if got := m.Members(); !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4, 5}) {
		t.Fatalf("Members() = %v", got)
	}

	if err := m.Remove(3); err != nil {
		t.Fatal(err)
	}
	if m.Full() || m.Size() != 5 {
		t.Fatalf("after remove: %v", m)
	}
	if got := m.Members(); !reflect.DeepEqual(got, []int{0, 1, 2, 4, 5}) {
		t.Fatalf("Members() = %v", got)
	}
	// Comm ranks compact around the hole.
	if got := m.CommRank(4); got != 3 {
		t.Fatalf("CommRank(4) = %d, want 3", got)
	}
	if got := m.CommRank(3); got != -1 {
		t.Fatalf("CommRank(3) = %d, want -1 (dead)", got)
	}

	if err := m.Remove(3); err == nil {
		t.Fatal("double remove: want error")
	}
	if err := m.Remove(99); err == nil {
		t.Fatal("out-of-range remove: want error")
	}
	if err := m.Remove(0, 0); err == nil {
		t.Fatal("duplicate slots in one remove: want error")
	}
	if m.Size() != 5 {
		t.Fatalf("failed removes must not change state: %v", m)
	}

	if err := m.Restore(3); err != nil {
		t.Fatal(err)
	}
	if !m.Full() {
		t.Fatalf("after restore: %v", m)
	}
	if err := m.Restore(3); err == nil {
		t.Fatal("restore of alive slot: want error")
	}
}

func TestMembershipNoSurvivors(t *testing.T) {
	m, err := NewMembership(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Remove(0, 1, 2); err == nil {
		t.Fatal("removing every slot: want error")
	}
	if m.Size() != 3 {
		t.Fatalf("failed remove must not change state: %v", m)
	}
	if err := m.Remove(0, 1); err != nil {
		t.Fatal(err)
	}
	if got := m.Members(); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("Members() = %v", got)
	}
}

func TestMembershipRestoreAll(t *testing.T) {
	m, err := NewMembership(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Remove(4, 1); err != nil {
		t.Fatal(err)
	}
	revived := m.RestoreAll()
	if !reflect.DeepEqual(revived, []int{1, 4}) {
		t.Fatalf("RestoreAll() = %v, want [1 4]", revived)
	}
	if !m.Full() {
		t.Fatalf("after RestoreAll: %v", m)
	}
	if got := m.RestoreAll(); got != nil {
		t.Fatalf("RestoreAll on full membership = %v, want nil", got)
	}
}

func TestMembershipInvalid(t *testing.T) {
	if _, err := NewMembership(0); err == nil {
		t.Fatal("NewMembership(0): want error")
	}
	if _, err := NewMembership(-2); err == nil {
		t.Fatal("NewMembership(-2): want error")
	}
}
