package transport

import (
	"errors"
	"testing"
	"time"

	"segscale/internal/telemetry"
)

// injectorFunc adapts a function to the Injector interface for
// scripted fault scenarios.
type injectorFunc func(src, dst, tag, attempt int, seq uint64) Fault

func (f injectorFunc) Message(src, dst, tag, attempt int, seq uint64) Fault {
	return f(src, dst, tag, attempt, seq)
}

func TestFaultString(t *testing.T) {
	cases := map[Fault]string{
		FaultNone: "none", FaultDrop: "drop", FaultDuplicate: "duplicate",
		FaultDelay: "delay", Fault(99): "unknown",
	}
	for f, want := range cases {
		if got := f.String(); got != want {
			t.Errorf("Fault(%d).String() = %q, want %q", int(f), got, want)
		}
	}
}

// TestDropIsRetried drops the first two attempts of one message; the
// retry loop must still deliver it and count the faults and retries.
func TestDropIsRetried(t *testing.T) {
	w := mustWorld(t, 2)
	w.SetInjector(injectorFunc(func(src, dst, tag, attempt int, seq uint64) Fault {
		if seq == 0 && attempt < 2 {
			return FaultDrop
		}
		return FaultNone
	}))
	probe := telemetry.NewProbe("rank0", nil)
	c0 := w.Comm(0)
	c0.SetProbe(probe)
	go func() {
		if err := c0.Send(1, 0, []float32{42}); err != nil {
			t.Errorf("send: %v", err)
		}
	}()
	got := recvOK(t, w.Comm(1), 0, 0)
	if got[0] != 42 {
		t.Fatalf("got %v", got)
	}
	if v := probe.Counter("faults_injected_total").Value(); v != 2 {
		t.Errorf("faults_injected_total = %v, want 2", v)
	}
	if v := probe.Counter("retries_total").Value(); v != 2 {
		t.Errorf("retries_total = %v, want 2", v)
	}
}

// TestDropExhaustsRetries drops every attempt: the send must fail with
// ErrDeliveryFailed and the rank must die, poisoning the world.
func TestDropExhaustsRetries(t *testing.T) {
	w := mustWorld(t, 2)
	w.SetRetryPolicy(RetryPolicy{MaxAttempts: 3})
	w.SetInjector(injectorFunc(func(src, dst, tag, attempt int, seq uint64) Fault {
		return FaultDrop
	}))
	err := w.Comm(0).Send(1, 0, []float32{1})
	if !errors.Is(err, ErrDeliveryFailed) {
		t.Fatalf("send error = %v, want ErrDeliveryFailed", err)
	}
	if _, err := w.Comm(1).Recv(0, 0); !errors.Is(err, ErrRankFailed) {
		t.Fatalf("recv after sender death = %v, want ErrRankFailed", err)
	}
	if got := w.FailedRanks(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("FailedRanks = %v, want [0]", got)
	}
}

// TestSetRetryPolicyIgnoresZeroAttempts keeps the default when handed
// a policy that could never deliver anything.
func TestSetRetryPolicyIgnoresZeroAttempts(t *testing.T) {
	w := mustWorld(t, 2)
	w.SetRetryPolicy(RetryPolicy{MaxAttempts: 0})
	if w.retry.MaxAttempts != DefaultRetry.MaxAttempts {
		t.Fatalf("retry = %+v, want default", w.retry)
	}
}

// TestDuplicateIsDeduplicated injects a duplicate; the receiver must
// see the payload exactly once and the next message must still match.
func TestDuplicateIsDeduplicated(t *testing.T) {
	w := mustWorld(t, 2)
	w.SetInjector(injectorFunc(func(src, dst, tag, attempt int, seq uint64) Fault {
		if seq == 0 {
			return FaultDuplicate
		}
		return FaultNone
	}))
	c0, c1 := w.Comm(0), w.Comm(1)
	must(t, c0.Send(1, 7, []float32{1}))
	must(t, c0.Send(1, 7, []float32{2}))
	if got := recvOK(t, c1, 0, 7); got[0] != 1 {
		t.Fatalf("first recv got %v", got)
	}
	if got := recvOK(t, c1, 0, 7); got[0] != 2 {
		t.Fatalf("second recv got %v (duplicate not removed)", got)
	}
}

// TestDelayPreservesTagOrder delays the first of two same-tag
// messages; sequence-ordered receive must still deliver them in send
// order.
func TestDelayPreservesTagOrder(t *testing.T) {
	w := mustWorld(t, 2)
	w.SetInjector(injectorFunc(func(src, dst, tag, attempt int, seq uint64) Fault {
		if seq == 0 {
			return FaultDelay
		}
		return FaultNone
	}))
	c0, c1 := w.Comm(0), w.Comm(1)
	must(t, c0.Send(1, 3, []float32{10})) // held back
	must(t, c0.Send(1, 3, []float32{20})) // flushes the held message behind it
	if got := recvOK(t, c1, 0, 3); got[0] != 10 {
		t.Fatalf("first recv got %v, want send order despite delay", got)
	}
	if got := recvOK(t, c1, 0, 3); got[0] != 20 {
		t.Fatalf("second recv got %v", got)
	}
}

// TestDelayedMessageFlushedOnStarvation delays the only message on
// the pair; the starving receiver must flush it rather than block.
func TestDelayedMessageFlushedOnStarvation(t *testing.T) {
	w := mustWorld(t, 2)
	w.SetInjector(injectorFunc(func(src, dst, tag, attempt int, seq uint64) Fault {
		return FaultDelay
	}))
	must(t, w.Comm(0).Send(1, 0, []float32{5}))
	if got := recvOK(t, w.Comm(1), 0, 0); got[0] != 5 {
		t.Fatalf("got %v", got)
	}
}

// TestKillDrainsBlockedRanks kills a rank while others are blocked in
// Recv and Barrier; all must wake with ErrRankFailed instead of
// deadlocking.
func TestKillDrainsBlockedRanks(t *testing.T) {
	w := mustWorld(t, 3)
	errs := make(chan error, 2)
	go func() {
		_, err := w.Comm(1).Recv(0, 0)
		errs <- err
	}()
	go func() {
		errs <- w.Comm(2).Barrier()
	}()
	// Give both goroutines a chance to block, then crash rank 0.
	time.Sleep(10 * time.Millisecond)
	w.Comm(0).Kill()
	for i := 0; i < 2; i++ {
		if err := <-errs; !errors.Is(err, ErrRankFailed) {
			t.Errorf("drained op error = %v, want ErrRankFailed", err)
		}
	}
	if err := w.Comm(1).Send(2, 0, nil); !errors.Is(err, ErrRankFailed) {
		t.Errorf("send after poison = %v, want ErrRankFailed", err)
	}
}

// TestOpTimeoutOnRecv bounds a Recv that would otherwise block
// forever.
func TestOpTimeoutOnRecv(t *testing.T) {
	w := mustWorld(t, 2)
	w.SetOpTimeout(20 * time.Millisecond)
	if _, err := w.Comm(1).Recv(0, 0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("recv error = %v, want ErrTimeout", err)
	}
	// The timed-out rank is dead; the world drains.
	if err := w.Comm(0).Barrier(); !errors.Is(err, ErrRankFailed) {
		t.Fatalf("barrier after timeout = %v, want ErrRankFailed", err)
	}
}

// TestOpTimeoutOnBarrier bounds a barrier missing one participant.
func TestOpTimeoutOnBarrier(t *testing.T) {
	w := mustWorld(t, 2)
	w.SetOpTimeout(20 * time.Millisecond)
	if err := w.Comm(0).Barrier(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("barrier error = %v, want ErrTimeout", err)
	}
}

// TestOpTimeoutOnFullMailbox bounds a send blocked on flow control.
func TestOpTimeoutOnFullMailbox(t *testing.T) {
	w := mustWorld(t, 2)
	w.SetOpTimeout(20 * time.Millisecond)
	c := w.Comm(0)
	var err error
	for i := 0; i <= mailboxDepth; i++ {
		if err = c.Send(1, 0, []float32{1}); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("overfull send error = %v, want ErrTimeout", err)
	}
}

// TestDrainedRecvStillDeliversQueued checks drain semantics: messages
// already queued before the failure stay receivable so survivors can
// finish in-flight work deterministically.
func TestDrainedRecvStillDeliversQueued(t *testing.T) {
	w := mustWorld(t, 3)
	must(t, w.Comm(0).Send(1, 0, []float32{7}))
	w.Comm(2).Kill()
	if got := recvOK(t, w.Comm(1), 0, 0); got[0] != 7 {
		t.Fatalf("queued message after poison got %v", got)
	}
	// A second recv with nothing queued fails fast.
	if _, err := w.Comm(1).Recv(0, 0); !errors.Is(err, ErrRankFailed) {
		t.Fatalf("dry recv after poison = %v, want ErrRankFailed", err)
	}
}

// TestChaosTrafficUnderRace hammers a faulty world from all ranks so
// the mailbox locking, retry loop, and dedup run under -race.
func TestChaosTrafficUnderRace(t *testing.T) {
	const n = 4
	const iters = 50
	w := mustWorld(t, n)
	w.SetRetryPolicy(RetryPolicy{MaxAttempts: 100})
	w.SetInjector(injectorFunc(func(src, dst, tag, attempt int, seq uint64) Fault {
		// Deterministic mix keyed off the message identity.
		switch (seq*7 + uint64(src)*13 + uint64(tag)*3 + uint64(attempt)) % 11 {
		case 0:
			return FaultDrop
		case 1:
			return FaultDuplicate
		case 2:
			return FaultDelay
		}
		return FaultNone
	}))
	err := w.Run(func(c *Comm) error {
		next := (c.Rank() + 1) % n
		prev := (c.Rank() - 1 + n) % n
		for it := 0; it < iters; it++ {
			if err := c.Send(next, it, []float32{float32(c.Rank()*1000 + it)}); err != nil {
				return err
			}
			got, err := c.Recv(prev, it)
			if err != nil {
				return err
			}
			if want := float32(prev*1000 + it); got[0] != want {
				t.Errorf("rank %d iter %d got %v, want %v", c.Rank(), it, got[0], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
