package transport

import (
	"sync"
	"testing"
)

func TestSendRecvBasic(t *testing.T) {
	w := NewWorld(2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c := w.Comm(0)
		c.Send(1, 7, []float32{1, 2, 3})
	}()
	var got []float32
	go func() {
		defer wg.Done()
		c := w.Comm(1)
		got = c.Recv(0, 7)
	}()
	wg.Wait()
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	w := NewWorld(2)
	src := []float32{1, 2, 3}
	done := make(chan []float32)
	go func() {
		done <- w.Comm(1).Recv(0, 0)
	}()
	w.Comm(0).Send(1, 0, src)
	src[0] = 99 // mutate after send; receiver must see the original
	got := <-done
	if got[0] != 1 {
		t.Fatalf("send aliased caller buffer: got %v", got)
	}
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	w := NewWorld(2)
	c0, c1 := w.Comm(0), w.Comm(1)
	c0.Send(1, 1, []float32{1})
	c0.Send(1, 2, []float32{2})
	// Receive tag 2 first: tag-1 message must be held aside.
	if got := c1.Recv(0, 2); got[0] != 2 {
		t.Fatalf("tag 2 recv got %v", got)
	}
	if got := c1.Recv(0, 1); got[0] != 1 {
		t.Fatalf("tag 1 recv got %v", got)
	}
}

func TestPendingPreservesFIFOWithinTag(t *testing.T) {
	w := NewWorld(2)
	c0, c1 := w.Comm(0), w.Comm(1)
	c0.Send(1, 5, []float32{10})
	c0.Send(1, 9, []float32{99})
	c0.Send(1, 5, []float32{20})
	if got := c1.Recv(0, 9); got[0] != 99 {
		t.Fatalf("tag 9 got %v", got)
	}
	if got := c1.Recv(0, 5); got[0] != 10 {
		t.Fatalf("first tag-5 got %v", got)
	}
	if got := c1.Recv(0, 5); got[0] != 20 {
		t.Fatalf("second tag-5 got %v", got)
	}
}

func TestRecvInto(t *testing.T) {
	w := NewWorld(2)
	go w.Comm(0).Send(1, 0, []float32{4, 5})
	buf := make([]float32, 2)
	w.Comm(1).RecvInto(0, 0, buf)
	if buf[0] != 4 || buf[1] != 5 {
		t.Fatalf("buf = %v", buf)
	}
}

func TestRecvIntoLengthMismatchPanics(t *testing.T) {
	w := NewWorld(2)
	w.Comm(0).Send(1, 0, []float32{1})
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	w.Comm(1).RecvInto(0, 0, make([]float32, 3))
}

func TestSelfSendRecvPanic(t *testing.T) {
	w := NewWorld(2)
	c := w.Comm(0)
	for _, f := range []func(){
		func() { c.Send(0, 0, nil) },
		func() { c.Recv(0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("self send/recv did not panic")
				}
			}()
			f()
		}()
	}
}

func TestWorldValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewWorld(0) did not panic")
		}
	}()
	NewWorld(0)
}

func TestCommRankBounds(t *testing.T) {
	w := NewWorld(2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range rank did not panic")
		}
	}()
	w.Comm(2)
}

func TestBarrier(t *testing.T) {
	const n = 8
	counter := 0
	var mu sync.Mutex
	Run(n, func(c *Comm) {
		mu.Lock()
		counter++
		mu.Unlock()
		c.Barrier()
		mu.Lock()
		if counter != n {
			t.Errorf("rank %d passed barrier with counter %d", c.Rank(), counter)
		}
		mu.Unlock()
		c.Barrier()
	})
}

func TestRunPropagatesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("rank panic not propagated")
		}
	}()
	Run(2, func(c *Comm) {
		if c.Rank() == 1 {
			panic("rank 1 died")
		}
	})
}

func TestRingExchange(t *testing.T) {
	const n = 6
	results := make([]float32, n)
	Run(n, func(c *Comm) {
		next := (c.Rank() + 1) % n
		prev := (c.Rank() - 1 + n) % n
		got := c.SendRecv(next, 0, []float32{float32(c.Rank())}, prev, 0)
		results[c.Rank()] = got[0]
	})
	for r := 0; r < n; r++ {
		want := float32((r - 1 + n) % n)
		if results[r] != want {
			t.Errorf("rank %d got %v, want %v", r, results[r], want)
		}
	}
}

func TestManyMessagesDoNotDeadlock(t *testing.T) {
	// More messages than one mailbox depth, consumed concurrently.
	const msgs = 500
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				c.Send(1, i%3, []float32{float32(i)})
			}
		} else {
			seen := 0
			for i := 0; i < msgs; i++ {
				c.Recv(0, i%3)
				seen++
			}
			if seen != msgs {
				t.Errorf("received %d of %d", seen, msgs)
			}
		}
	})
}
