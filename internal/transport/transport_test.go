package transport

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

// mustWorld builds a world or fails the test.
func mustWorld(t *testing.T, n int) *World {
	t.Helper()
	w, err := NewWorld(n)
	if err != nil {
		t.Fatalf("NewWorld(%d): %v", n, err)
	}
	return w
}

func TestSendRecvBasic(t *testing.T) {
	w := mustWorld(t, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c := w.Comm(0)
		if err := c.Send(1, 7, []float32{1, 2, 3}); err != nil {
			t.Errorf("send: %v", err)
		}
	}()
	var got []float32
	go func() {
		defer wg.Done()
		c := w.Comm(1)
		var err error
		got, err = c.Recv(0, 7)
		if err != nil {
			t.Errorf("recv: %v", err)
		}
	}()
	wg.Wait()
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	w := mustWorld(t, 2)
	src := []float32{1, 2, 3}
	done := make(chan []float32)
	go func() {
		got, err := w.Comm(1).Recv(0, 0)
		if err != nil {
			t.Errorf("recv: %v", err)
		}
		done <- got
	}()
	if err := w.Comm(0).Send(1, 0, src); err != nil {
		t.Fatalf("send: %v", err)
	}
	src[0] = 99 // mutate after send; receiver must see the original
	got := <-done
	if got[0] != 1 {
		t.Fatalf("send aliased caller buffer: got %v", got)
	}
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	w := mustWorld(t, 2)
	c0, c1 := w.Comm(0), w.Comm(1)
	must(t, c0.Send(1, 1, []float32{1}))
	must(t, c0.Send(1, 2, []float32{2}))
	// Receive tag 2 first: tag-1 message must stay queued.
	if got := recvOK(t, c1, 0, 2); got[0] != 2 {
		t.Fatalf("tag 2 recv got %v", got)
	}
	if got := recvOK(t, c1, 0, 1); got[0] != 1 {
		t.Fatalf("tag 1 recv got %v", got)
	}
}

// must fails the test on a transport error.
func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("transport op: %v", err)
	}
}

// recvOK receives or fails the test.
func recvOK(t *testing.T, c *Comm, src, tag int) []float32 {
	t.Helper()
	got, err := c.Recv(src, tag)
	if err != nil {
		t.Fatalf("recv %d←%d tag %d: %v", c.Rank(), src, tag, err)
	}
	return got
}

func TestPendingPreservesFIFOWithinTag(t *testing.T) {
	w := mustWorld(t, 2)
	c0, c1 := w.Comm(0), w.Comm(1)
	must(t, c0.Send(1, 5, []float32{10}))
	must(t, c0.Send(1, 9, []float32{99}))
	must(t, c0.Send(1, 5, []float32{20}))
	if got := recvOK(t, c1, 0, 9); got[0] != 99 {
		t.Fatalf("tag 9 got %v", got)
	}
	if got := recvOK(t, c1, 0, 5); got[0] != 10 {
		t.Fatalf("first tag-5 got %v", got)
	}
	if got := recvOK(t, c1, 0, 5); got[0] != 20 {
		t.Fatalf("second tag-5 got %v", got)
	}
}

func TestRecvInto(t *testing.T) {
	w := mustWorld(t, 2)
	go w.Comm(0).Send(1, 0, []float32{4, 5})
	buf := make([]float32, 2)
	must(t, w.Comm(1).RecvInto(0, 0, buf))
	if buf[0] != 4 || buf[1] != 5 {
		t.Fatalf("buf = %v", buf)
	}
}

func TestRecvIntoLengthMismatch(t *testing.T) {
	w := mustWorld(t, 2)
	must(t, w.Comm(0).Send(1, 0, []float32{1}))
	err := w.Comm(1).RecvInto(0, 0, make([]float32, 3))
	if err == nil || !strings.Contains(err.Error(), "length") {
		t.Fatalf("length mismatch error = %v", err)
	}
}

func TestSelfSendRecvErrors(t *testing.T) {
	w := mustWorld(t, 2)
	c := w.Comm(0)
	if err := c.Send(0, 0, nil); err == nil {
		t.Error("self send did not error")
	}
	if _, err := c.Recv(0, 0); err == nil {
		t.Error("self recv did not error")
	}
	if err := c.Send(5, 0, nil); err == nil {
		t.Error("out-of-world send did not error")
	}
	if _, err := c.Recv(-1, 0); err == nil {
		t.Error("out-of-world recv did not error")
	}
}

func TestWorldValidation(t *testing.T) {
	for _, n := range []int{0, -3} {
		if _, err := NewWorld(n); err == nil {
			t.Errorf("NewWorld(%d) did not error", n)
		}
	}
}

func TestCommRankBounds(t *testing.T) {
	w := mustWorld(t, 2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range rank did not panic")
		}
	}()
	w.Comm(2)
}

func TestBarrier(t *testing.T) {
	const n = 8
	counter := 0
	var mu sync.Mutex
	err := Run(n, func(c *Comm) error {
		mu.Lock()
		counter++
		mu.Unlock()
		if err := c.Barrier(); err != nil {
			return err
		}
		mu.Lock()
		if counter != n {
			t.Errorf("rank %d passed barrier with counter %d", c.Rank(), counter)
		}
		mu.Unlock()
		return c.Barrier()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("rank panic not propagated")
		}
	}()
	Run(2, func(c *Comm) error {
		if c.Rank() == 1 {
			panic("rank 1 died")
		}
		return nil
	})
}

func TestRunAggregatesErrors(t *testing.T) {
	sentinel := errors.New("rank 1 refused")
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 1 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Run error %v does not wrap rank error", err)
	}
}

func TestRunRejectsBadWorldSize(t *testing.T) {
	if err := Run(0, func(c *Comm) error { return nil }); err == nil {
		t.Fatal("Run(0) did not error")
	}
}

func TestRingExchange(t *testing.T) {
	const n = 6
	results := make([]float32, n)
	err := Run(n, func(c *Comm) error {
		next := (c.Rank() + 1) % n
		prev := (c.Rank() - 1 + n) % n
		got, err := c.SendRecv(next, 0, []float32{float32(c.Rank())}, prev, 0)
		if err != nil {
			return err
		}
		results[c.Rank()] = got[0]
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for r := 0; r < n; r++ {
		want := float32((r - 1 + n) % n)
		if results[r] != want {
			t.Errorf("rank %d got %v, want %v", r, results[r], want)
		}
	}
}

func TestManyMessagesDoNotDeadlock(t *testing.T) {
	// More messages than one mailbox depth, consumed concurrently.
	const msgs = 500
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				if err := c.Send(1, i%3, []float32{float32(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		seen := 0
		for i := 0; i < msgs; i++ {
			if _, err := c.Recv(0, i%3); err != nil {
				return err
			}
			seen++
		}
		if seen != msgs {
			t.Errorf("received %d of %d", seen, msgs)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
