// Package transport is an in-memory point-to-point message layer with
// MPI-like semantics: ranks, tags, blocking Send/Recv with per-pair
// FIFO ordering. It carries real float32 payloads between in-process
// ranks (goroutines), and is the substrate for internal/collective —
// the *functional* half of the reproduction, where gradient averaging
// actually happens. Timing is not modelled here; that is
// internal/netmodel's job.
//
// The layer is chaos-testable: a World accepts a fault Injector
// (drop, duplicate, delay per delivery attempt), a RetryPolicy that
// bounds redelivery of dropped messages, an operation timeout, and a
// per-rank Kill switch that simulates a rank crash. Every blocking
// operation returns a wrapped error — ErrRankFailed, ErrTimeout,
// ErrDeliveryFailed — instead of deadlocking, so the layers above can
// drain and the training loop can run checkpoint-restart recovery.
package transport

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"segscale/internal/telemetry"
	"segscale/internal/timeline"
)

// message is one in-flight payload. seq is the per-(src,dst)-pair
// sequence number: receivers consume the lowest matching seq (FIFO
// within a tag even under injected reordering) and use it to
// deduplicate injected duplicates. Exactly one of data/data16 carries
// the payload; u16 marks which, so a zero-length binary16 message is
// still distinguishable from a zero-length float32 one.
type message struct {
	seq    uint64
	tag    int
	data   []float32
	data16 []uint16
	u16    bool
}

// bytes is the modelled wire size of the payload: 4 bytes per float32
// element, 2 per binary16 word — the whole point of the compressed
// wire format.
func (m message) bytes() int {
	if m.u16 {
		return 2 * len(m.data16)
	}
	return 4 * len(m.data)
}

// mailbox is the (src,dst) pair's delivery queue. Unlike a bare
// channel it supports tag-scanned, seq-ordered consumption, injected
// reordering (held messages), and waking blocked peers on rank death.
type mailbox struct {
	mu sync.Mutex
	// q holds visible messages in arrival order.
	q []message
	// held holds delay-faulted messages: invisible until the next
	// enqueue on the pair or until the receiver runs dry (starvation
	// flush), which bounds how long a delay can defer delivery.
	held    []message
	nextSeq uint64
	// notify is closed and replaced whenever delivery state changes;
	// receivers snapshot it under mu and wait outside the lock.
	notify chan struct{}
	// space is closed and replaced whenever queue slots free up;
	// flow-controlled senders wait on it.
	space chan struct{}
}

func newMailbox() *mailbox {
	return &mailbox{notify: make(chan struct{}), space: make(chan struct{})}
}

// wakeRecv signals receivers that delivery state changed. Caller
// holds mu.
func (mb *mailbox) wakeRecv() {
	close(mb.notify)
	mb.notify = make(chan struct{})
}

// wakeSend signals flow-controlled senders that space freed up.
// Caller holds mu.
func (mb *mailbox) wakeSend() {
	close(mb.space)
	mb.space = make(chan struct{})
}

// flushHeld makes delay-faulted messages visible. Caller holds mu.
func (mb *mailbox) flushHeld() {
	if len(mb.held) == 0 {
		return
	}
	mb.q = append(mb.q, mb.held...)
	mb.held = mb.held[:0]
}

// take removes and returns the lowest-seq message with the given tag,
// along with every duplicate of it. Starved lookups flush held
// messages before giving up. Caller holds mu.
func (mb *mailbox) take(tag int) (message, bool) {
	best := mb.scan(tag)
	if best < 0 && len(mb.held) > 0 {
		mb.flushHeld()
		best = mb.scan(tag)
	}
	if best < 0 {
		return message{}, false
	}
	m := mb.q[best]
	kept := mb.q[:0]
	for _, e := range mb.q {
		if e.seq != m.seq {
			kept = append(kept, e)
		}
	}
	mb.q = kept
	return m, true
}

// scan returns the index of the lowest-seq visible message with the
// given tag, or -1. Caller holds mu.
func (mb *mailbox) scan(tag int) int {
	best := -1
	for i, m := range mb.q {
		if m.tag == tag && (best < 0 || m.seq < mb.q[best].seq) {
			best = i
		}
	}
	return best
}

// World owns the mailboxes for a fixed set of ranks.
type World struct {
	n int
	// inc is the world incarnation stamped into message-edge IDs
	// ("src>dst#seq.inc"). The training loop's recovery path creates a
	// fresh World per incarnation and labels it via SetIncarnation, so
	// edges from traffic before and after a crash-restart never pair up
	// in trace analysis. Set before traffic starts; zero by default.
	inc int
	// boxes[dst][src] is the queue for src→dst traffic.
	boxes [][]*mailbox

	// Chaos knobs; set before traffic starts (see fault.go).
	inj       Injector
	retry     RetryPolicy
	opTimeout time.Duration

	// mu guards the failure state.
	mu       sync.Mutex
	dead     []bool
	poisoned bool
	// deathCh is closed on the first Kill; every blocked operation
	// selects on it so the whole world drains instead of deadlocking
	// against the dead rank.
	deathCh chan struct{}

	barrierMu  sync.Mutex
	barrierCnt int
	barrierCh  chan struct{}
}

// mailboxDepth bounds in-flight messages per (src,dst) pair. Eager
// buffering this deep lets ring algorithms run without rendezvous.
const mailboxDepth = 64

// NewWorld creates a world with n ranks. A non-positive size is a
// configuration error, reported rather than panicked so callers
// threading user-supplied world sizes can unwind cleanly.
func NewWorld(n int) (*World, error) {
	if n <= 0 {
		return nil, fmt.Errorf("transport: world size %d", n)
	}
	w := &World{
		n:         n,
		retry:     DefaultRetry,
		dead:      make([]bool, n),
		deathCh:   make(chan struct{}),
		barrierCh: make(chan struct{}),
	}
	w.boxes = make([][]*mailbox, n)
	for dst := range w.boxes {
		w.boxes[dst] = make([]*mailbox, n)
		for src := range w.boxes[dst] {
			w.boxes[dst][src] = newMailbox()
		}
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// SetIncarnation labels this world with the recovery incarnation its
// traffic belongs to; the label rides every message-edge ID the
// instrumented send/recv paths stamp. Call before traffic starts.
func (w *World) SetIncarnation(inc int) { w.inc = inc }

// Incarnation returns the world's incarnation label.
func (w *World) Incarnation() int { return w.inc }

// Comm returns rank r's endpoint.
func (w *World) Comm(r int) *Comm {
	if r < 0 || r >= w.n {
		panic(fmt.Sprintf("transport: rank %d outside world of %d", r, w.n))
	}
	return &Comm{w: w, rank: r}
}

// kill marks rank r dead and poisons the world: deathCh wakes every
// blocked operation and all subsequent ones fail fast.
func (w *World) kill(r int) {
	w.mu.Lock()
	if !w.dead[r] {
		w.dead[r] = true
		if !w.poisoned {
			w.poisoned = true
			close(w.deathCh)
		}
	}
	w.mu.Unlock()
}

// failure returns the world's terminal error, or nil while healthy.
func (w *World) failure() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.poisoned {
		return nil
	}
	var dead []int
	for r, d := range w.dead {
		if d {
			dead = append(dead, r)
		}
	}
	return fmt.Errorf("world draining after failure of rank(s) %v: %w", dead, ErrRankFailed)
}

// Failure returns the world's terminal error — wrapping ErrRankFailed
// and naming the dead ranks — or nil while every rank is alive. It is
// the exported liveness view the observability plane's /healthz and
// /readyz endpoints report from.
func (w *World) Failure() error { return w.failure() }

// FailedRanks returns the ranks that have died so far.
func (w *World) FailedRanks() []int {
	w.mu.Lock()
	defer w.mu.Unlock()
	var dead []int
	for r, d := range w.dead {
		if d {
			dead = append(dead, r)
		}
	}
	return dead
}

// Comm is one rank's communicator. A Comm is owned by a single
// goroutine; Comms for different ranks may be used concurrently.
type Comm struct {
	w    *World
	rank int

	// probe and the cached instruments below are nil until SetProbe;
	// the nil-safe telemetry methods make every uninstrumented
	// Send/Recv/Barrier pay exactly one branch per instrument.
	probe     *telemetry.Probe
	sends     *telemetry.Counter
	recvs     *telemetry.Counter
	sentBytes *telemetry.Counter
	recvBytes *telemetry.Counter
	barriers  *telemetry.Counter
	faults    *telemetry.Counter
	retries   *telemetry.Counter
}

// SetProbe attaches per-rank telemetry to this communicator: message
// and byte counters on the send/recv path, a counter plus span per
// barrier, and the chaos counters (injected faults, retries). A nil
// probe detaches.
func (c *Comm) SetProbe(p *telemetry.Probe) {
	c.probe = p
	c.sends = p.Counter("transport_sends_total")
	c.recvs = p.Counter("transport_recvs_total")
	c.sentBytes = p.Counter("transport_sent_bytes")
	c.recvBytes = p.Counter("transport_received_bytes")
	c.barriers = p.Counter("transport_barriers_total")
	c.faults = p.Counter("faults_injected_total")
	c.retries = p.Counter("retries_total")
}

// Probe returns the attached telemetry probe (nil when
// uninstrumented). Layers built on Comm — collective, horovod —
// instrument themselves through it.
func (c *Comm) Probe() *telemetry.Probe { return c.probe }

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.w.n }

// Kill marks this rank dead — the in-process analogue of a rank
// crash. The world drains: every blocked and subsequent operation on
// any rank returns an ErrRankFailed-wrapped error, which is what lets
// the training loop detect the failure and restart from a checkpoint.
func (c *Comm) Kill() { c.w.kill(c.rank) }

// opTimer returns the per-operation timeout channel (nil = never
// fires) and its stop function.
func (c *Comm) opTimer() (<-chan time.Time, func()) {
	if d := c.w.opTimeout; d > 0 {
		t := time.NewTimer(d)
		return t.C, func() { t.Stop() }
	}
	return nil, func() {}
}

// Send delivers a copy of data to dst with the given tag. It blocks
// only when the pair's mailbox is full (flow control). Injected drops
// are retried under the world's RetryPolicy; exhausting it fails the
// send (and the rank) with ErrDeliveryFailed.
func (c *Comm) Send(dst, tag int, data []float32) error {
	cp := make([]float32, len(data))
	copy(cp, data)
	return c.send(dst, tag, message{tag: tag, data: cp})
}

// Send16 is Send for binary16 payloads — the compressed-collective
// wire format. The payload rides the same mailbox, fault-injection
// and flow-control machinery as float32 traffic; only the accounting
// differs: 2 bytes per element instead of 4.
func (c *Comm) Send16(dst, tag int, data []uint16) error {
	cp := make([]uint16, len(data))
	copy(cp, data)
	return c.send(dst, tag, message{tag: tag, data16: cp, u16: true})
}

// send is the payload-agnostic send path: validation, sequence
// assignment, the edge-ID span, the injected-drop retry loop, and the
// flow-controlled enqueue. m.tag must equal tag and the payload slice
// must already be a private copy.
func (c *Comm) send(dst, tag int, m message) error {
	if dst == c.rank {
		return fmt.Errorf("transport: rank %d send to self", c.rank)
	}
	if dst < 0 || dst >= c.w.n {
		return fmt.Errorf("transport: send to rank %d outside world of %d", dst, c.w.n)
	}
	if err := c.w.failure(); err != nil {
		return fmt.Errorf("transport: send %d→%d tag %d: %w", c.rank, dst, tag, err)
	}
	mb := c.w.boxes[dst][c.rank]
	mb.mu.Lock()
	m.seq = mb.nextSeq
	mb.nextSeq++
	mb.mu.Unlock()

	// The send span carries the message's edge ID; the matching recv
	// span on the destination rank stamps the identical ID, which is
	// what lets trace analysis pair them into a happens-before edge.
	// Failed sends abandon the span unrecorded: a message that never
	// entered the mailbox must not fabricate causality.
	var sp telemetry.Span
	if c.probe != nil {
		sp = c.probe.EdgeSpan(timeline.PhaseSend, "send",
			timeline.Edge{Src: c.rank, Dst: dst, Seq: m.seq, Inc: c.w.inc}.String())
	}

	fault := FaultNone
	if inj := c.w.inj; inj != nil {
		for attempt := 0; ; attempt++ {
			f := inj.Message(c.rank, dst, tag, attempt, m.seq)
			if f == FaultNone {
				break
			}
			c.faults.Inc()
			if f != FaultDrop {
				fault = f
				break
			}
			if attempt+1 >= c.w.retry.MaxAttempts {
				c.w.kill(c.rank)
				return fmt.Errorf("transport: send %d→%d tag %d seq %d: all %d attempts dropped: %w",
					c.rank, dst, tag, m.seq, attempt+1, ErrDeliveryFailed)
			}
			c.retries.Inc()
			if b := c.w.retry.Backoff; b > 0 {
				time.Sleep(b)
			}
		}
	}

	if err := c.enqueue(mb, m, fault); err != nil {
		return fmt.Errorf("transport: send %d→%d tag %d: %w", c.rank, dst, tag, err)
	}
	c.sends.Inc()
	c.sentBytes.Add(float64(m.bytes()))
	sp.End()
	return nil
}

// enqueue places m into mb under flow control, applying a duplicate
// or delay fault at delivery time.
func (c *Comm) enqueue(mb *mailbox, m message, fault Fault) error {
	timeout, stop := c.opTimer()
	defer stop()
	for {
		mb.mu.Lock()
		if len(mb.q)+len(mb.held) < mailboxDepth {
			switch fault {
			case FaultDelay:
				mb.held = append(mb.held, m)
			case FaultDuplicate:
				mb.q = append(mb.q, m, m)
				mb.flushHeld()
			default:
				mb.q = append(mb.q, m)
				mb.flushHeld()
			}
			// Wake receivers even for held messages: a starved
			// receiver flushes them, so a delay can never deadlock.
			mb.wakeRecv()
			mb.mu.Unlock()
			return nil
		}
		space := mb.space
		mb.mu.Unlock()
		if err := c.w.failure(); err != nil {
			return err
		}
		select {
		case <-space:
		case <-c.w.deathCh:
		case <-timeout:
			c.w.kill(c.rank)
			return fmt.Errorf("waiting for mailbox space: %w", ErrTimeout)
		}
	}
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload. Messages from src with other tags stay queued
// for later matching Recvs; within a tag, messages are delivered in
// send order (lowest sequence number first) even when the injector
// reorders arrival.
func (c *Comm) Recv(src, tag int) ([]float32, error) {
	m, err := c.recv(src, tag)
	if err != nil {
		return nil, err
	}
	if m.u16 {
		return nil, fmt.Errorf("transport: recv %d←%d tag %d: binary16 payload on a float32 receive", c.rank, src, tag)
	}
	return m.data, nil
}

// Recv16 is Recv for binary16 payloads. A float32 message matched by
// a binary16 receive (or vice versa) is a protocol bug between the
// layered collectives — distinct tag bases keep the kinds apart — and
// is reported as an error.
func (c *Comm) Recv16(src, tag int) ([]uint16, error) {
	m, err := c.recv(src, tag)
	if err != nil {
		return nil, err
	}
	if !m.u16 {
		return nil, fmt.Errorf("transport: recv %d←%d tag %d: float32 payload on a binary16 receive", c.rank, src, tag)
	}
	return m.data16, nil
}

// recv is the payload-agnostic receive path shared by Recv and
// Recv16: tag-scanned, seq-ordered consumption with the edge-ID span
// and drain semantics.
func (c *Comm) recv(src, tag int) (message, error) {
	if src == c.rank {
		return message{}, fmt.Errorf("transport: rank %d recv from self", c.rank)
	}
	if src < 0 || src >= c.w.n {
		return message{}, fmt.Errorf("transport: recv from rank %d outside world of %d", src, c.w.n)
	}
	mb := c.w.boxes[c.rank][src]
	// The recv span's edge ID is known only once a message is taken
	// (the seq travels with the message), so it is stamped just before
	// End. Failed recvs abandon the span: no message, no edge.
	sp := c.probe.Span(timeline.PhaseRecv, "recv")
	timeout, stop := c.opTimer()
	defer stop()
	for {
		mb.mu.Lock()
		if m, ok := mb.take(tag); ok {
			mb.wakeSend()
			mb.mu.Unlock()
			c.recvs.Inc()
			c.recvBytes.Add(float64(m.bytes()))
			if c.probe != nil {
				sp.SetEdge(timeline.Edge{Src: src, Dst: c.rank, Seq: m.seq, Inc: c.w.inc}.String())
				sp.End()
			}
			return m, nil
		}
		notify := mb.notify
		mb.mu.Unlock()
		// Queued messages stay drainable above; only a dry queue in a
		// poisoned world fails.
		if err := c.w.failure(); err != nil {
			return message{}, fmt.Errorf("transport: recv %d←%d tag %d: %w", c.rank, src, tag, err)
		}
		select {
		case <-notify:
		case <-c.w.deathCh:
		case <-timeout:
			c.w.kill(c.rank)
			return message{}, fmt.Errorf("transport: recv %d←%d tag %d: %w", c.rank, src, tag, ErrTimeout)
		}
	}
}

// RecvInto is Recv but copies the payload into dst, which must match
// the message length.
func (c *Comm) RecvInto(src, tag int, dst []float32) error {
	m, err := c.Recv(src, tag)
	if err != nil {
		return err
	}
	if len(m) != len(dst) {
		return fmt.Errorf("transport: recv %d←%d tag %d: length %d into buffer %d",
			c.rank, src, tag, len(m), len(dst))
	}
	copy(dst, m)
	return nil
}

// RecvInto16 is Recv16 but copies the payload into dst, which must
// match the message length.
func (c *Comm) RecvInto16(src, tag int, dst []uint16) error {
	m, err := c.Recv16(src, tag)
	if err != nil {
		return err
	}
	if len(m) != len(dst) {
		return fmt.Errorf("transport: recv %d←%d tag %d: length %d into buffer %d",
			c.rank, src, tag, len(m), len(dst))
	}
	copy(dst, m)
	return nil
}

// SendRecv posts a send to dst and then receives from src — the
// classic ring-step primitive. The eager mailbox keeps this
// deadlock-free for cycles shorter than mailboxDepth.
func (c *Comm) SendRecv(dst, sendTag int, data []float32, src, recvTag int) ([]float32, error) {
	if err := c.Send(dst, sendTag, data); err != nil {
		return nil, err
	}
	return c.Recv(src, recvTag)
}

// SendRecv16 is SendRecv for binary16 payloads.
func (c *Comm) SendRecv16(dst, sendTag int, data []uint16, src, recvTag int) ([]uint16, error) {
	if err := c.Send16(dst, sendTag, data); err != nil {
		return nil, err
	}
	return c.Recv16(src, recvTag)
}

// Barrier blocks until all ranks in the world have called it, or
// until a rank dies (every waiter then returns ErrRankFailed — drain
// semantics, even if the barrier happened to complete concurrently).
func (c *Comm) Barrier() error {
	c.barriers.Inc()
	sp := c.probe.Span(timeline.PhaseBarrier, "barrier")
	defer sp.End()
	w := c.w
	if err := w.failure(); err != nil {
		return fmt.Errorf("transport: barrier rank %d: %w", c.rank, err)
	}
	w.barrierMu.Lock()
	w.barrierCnt++
	if w.barrierCnt == w.n {
		w.barrierCnt = 0
		close(w.barrierCh)
		w.barrierCh = make(chan struct{})
		w.barrierMu.Unlock()
		return nil
	}
	ch := w.barrierCh
	w.barrierMu.Unlock()
	timeout, stop := c.opTimer()
	defer stop()
	select {
	case <-ch:
		return nil
	case <-w.deathCh:
		return fmt.Errorf("transport: barrier rank %d: %w", c.rank, w.failure())
	case <-timeout:
		w.kill(c.rank)
		return fmt.Errorf("transport: barrier rank %d: %w", c.rank, ErrTimeout)
	}
}

// Run spawns fn on every rank of a fresh world and waits for all to
// return. Rank errors are aggregated (wrapped with the rank) into the
// returned error; any rank panic is re-raised on the caller.
func Run(n int, fn func(c *Comm) error) error {
	w, err := NewWorld(n)
	if err != nil {
		return err
	}
	return w.Run(fn)
}

// Run spawns fn on every rank of this world and waits for all to
// return, aggregating per-rank errors. It is the entry point for
// worlds that need chaos configuration (SetInjector, SetOpTimeout)
// before traffic starts.
func (w *World) Run(fn func(c *Comm) error) error {
	var wg sync.WaitGroup
	panics := make(chan any, w.n)
	errs := make([]error, w.n)
	for r := 0; r < w.n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics <- p
				}
			}()
			errs[rank] = fn(w.Comm(rank))
		}(r)
	}
	wg.Wait()
	select {
	case p := <-panics:
		panic(p)
	default:
	}
	var agg []error
	for r, err := range errs {
		if err != nil {
			agg = append(agg, fmt.Errorf("rank %d: %w", r, err))
		}
	}
	return errors.Join(agg...)
}
