// Package transport is an in-memory point-to-point message layer with
// MPI-like semantics: ranks, tags, blocking Send/Recv with per-pair
// FIFO ordering. It carries real float32 payloads between in-process
// ranks (goroutines), and is the substrate for internal/collective —
// the *functional* half of the reproduction, where gradient averaging
// actually happens. Timing is not modelled here; that is
// internal/netmodel's job.
package transport

import (
	"fmt"
	"sync"

	"segscale/internal/telemetry"
	"segscale/internal/timeline"
)

// message is one in-flight payload.
type message struct {
	tag  int
	data []float32
}

// World owns the mailboxes for a fixed set of ranks.
type World struct {
	n int
	// mail[dst][src] is the FIFO channel for src→dst traffic.
	mail [][]chan message

	barrierMu  sync.Mutex
	barrierGen int
	barrierCnt int
	barrierCh  chan struct{}
}

// mailboxDepth bounds in-flight messages per (src,dst) pair. Eager
// buffering this deep lets ring algorithms run without rendezvous.
const mailboxDepth = 64

// NewWorld creates a world with n ranks.
func NewWorld(n int) *World {
	if n <= 0 {
		panic(fmt.Sprintf("transport: world size %d", n))
	}
	w := &World{n: n, barrierCh: make(chan struct{})}
	w.mail = make([][]chan message, n)
	for dst := range w.mail {
		w.mail[dst] = make([]chan message, n)
		for src := range w.mail[dst] {
			w.mail[dst][src] = make(chan message, mailboxDepth)
		}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// Comm returns rank r's endpoint.
func (w *World) Comm(r int) *Comm {
	if r < 0 || r >= w.n {
		panic(fmt.Sprintf("transport: rank %d outside world of %d", r, w.n))
	}
	return &Comm{w: w, rank: r, pending: make(map[int][]message)}
}

// Comm is one rank's communicator. A Comm is owned by a single
// goroutine; Comms for different ranks may be used concurrently.
type Comm struct {
	w    *World
	rank int
	// pending holds messages received out of tag order, keyed by src.
	pending map[int][]message

	// probe and the cached instruments below are nil until SetProbe;
	// the nil-safe telemetry methods make every uninstrumented
	// Send/Recv/Barrier pay exactly one branch per instrument.
	probe     *telemetry.Probe
	sends     *telemetry.Counter
	recvs     *telemetry.Counter
	sentBytes *telemetry.Counter
	recvBytes *telemetry.Counter
	barriers  *telemetry.Counter
}

// SetProbe attaches per-rank telemetry to this communicator: message
// and byte counters on the send/recv path, a counter plus span per
// barrier. A nil probe detaches.
func (c *Comm) SetProbe(p *telemetry.Probe) {
	c.probe = p
	c.sends = p.Counter("transport_sends_total")
	c.recvs = p.Counter("transport_recvs_total")
	c.sentBytes = p.Counter("transport_sent_bytes")
	c.recvBytes = p.Counter("transport_received_bytes")
	c.barriers = p.Counter("transport_barriers_total")
}

// Probe returns the attached telemetry probe (nil when
// uninstrumented). Layers built on Comm — collective, horovod —
// instrument themselves through it.
func (c *Comm) Probe() *telemetry.Probe { return c.probe }

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.w.n }

// Send delivers a copy of data to dst with the given tag. It blocks
// only when the pair's mailbox is full (flow control).
func (c *Comm) Send(dst, tag int, data []float32) {
	if dst == c.rank {
		panic("transport: send to self")
	}
	cp := make([]float32, len(data))
	copy(cp, data)
	c.sends.Inc()
	c.sentBytes.Add(float64(4 * len(data)))
	c.w.mail[dst][c.rank] <- message{tag: tag, data: cp}
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload. Messages from src with other tags are held
// aside and delivered to later matching Recvs.
func (c *Comm) Recv(src, tag int) []float32 {
	if src == c.rank {
		panic("transport: recv from self")
	}
	// Check the hold-aside buffer first.
	q := c.pending[src]
	for i, m := range q {
		if m.tag == tag {
			c.pending[src] = append(q[:i:i], q[i+1:]...)
			c.recvs.Inc()
			c.recvBytes.Add(float64(4 * len(m.data)))
			return m.data
		}
	}
	for {
		m := <-c.w.mail[c.rank][src]
		if m.tag == tag {
			c.recvs.Inc()
			c.recvBytes.Add(float64(4 * len(m.data)))
			return m.data
		}
		c.pending[src] = append(c.pending[src], m)
	}
}

// RecvInto is Recv but copies the payload into dst, which must match
// the message length.
func (c *Comm) RecvInto(src, tag int, dst []float32) {
	m := c.Recv(src, tag)
	if len(m) != len(dst) {
		panic(fmt.Sprintf("transport: recv length %d into buffer %d", len(m), len(dst)))
	}
	copy(dst, m)
}

// SendRecv posts a send to dst and then receives from src — the
// classic ring-step primitive. The eager mailbox keeps this
// deadlock-free for cycles shorter than mailboxDepth.
func (c *Comm) SendRecv(dst, sendTag int, data []float32, src, recvTag int) []float32 {
	c.Send(dst, sendTag, data)
	return c.Recv(src, recvTag)
}

// Barrier blocks until all ranks in the world have called it.
func (c *Comm) Barrier() {
	c.barriers.Inc()
	sp := c.probe.Span(timeline.PhaseBarrier, "barrier")
	defer sp.End()
	w := c.w
	w.barrierMu.Lock()
	w.barrierCnt++
	if w.barrierCnt == w.n {
		w.barrierCnt = 0
		w.barrierGen++
		close(w.barrierCh)
		w.barrierCh = make(chan struct{})
		w.barrierMu.Unlock()
		return
	}
	ch := w.barrierCh
	w.barrierMu.Unlock()
	<-ch
}

// Run spawns fn on every rank of a fresh world and waits for all to
// return. Any rank panic is re-raised on the caller after all other
// ranks finish or deadlock is avoided via buffered channels.
func Run(n int, fn func(c *Comm)) {
	w := NewWorld(n)
	var wg sync.WaitGroup
	panics := make(chan any, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics <- p
				}
			}()
			fn(w.Comm(rank))
		}(r)
	}
	wg.Wait()
	select {
	case p := <-panics:
		panic(p)
	default:
	}
}
