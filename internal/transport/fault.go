package transport

import (
	"errors"
	"time"
)

// Sentinel errors for the failure modes a chaos-tested transport can
// surface. Callers match with errors.Is; every returned error carries
// rank/tag context on top of one of these.
var (
	// ErrRankFailed reports that some rank in the world died (via
	// Kill) and the world is draining: every subsequent blocking
	// operation on any rank fails fast with this error instead of
	// deadlocking against the dead rank.
	ErrRankFailed = errors.New("transport: rank failed")
	// ErrTimeout reports that a blocking Send/Recv exceeded the
	// world's operation timeout (SetOpTimeout). Zero timeout — the
	// default — never produces it.
	ErrTimeout = errors.New("transport: operation timed out")
	// ErrDeliveryFailed reports that every delivery attempt of a
	// message was dropped by the fault injector — the bounded-retry
	// budget is exhausted, which is fatal to the sending rank.
	ErrDeliveryFailed = errors.New("transport: delivery failed after retries")
)

// Fault is the fate the injector assigns to one delivery attempt.
type Fault int

const (
	// FaultNone delivers the message normally.
	FaultNone Fault = iota
	// FaultDrop discards the attempt; the sender retries under its
	// RetryPolicy, as a reliable protocol over a lossy link would.
	FaultDrop
	// FaultDuplicate delivers the message twice with the same sequence
	// number; the receiver deduplicates.
	FaultDuplicate
	// FaultDelay holds the message back: it becomes visible only when
	// the next message on the same (src,dst) pair arrives, or when the
	// receiver runs out of visible messages — reordering that the
	// sequence-numbered receive path must absorb.
	FaultDelay
)

// String names the fault for logs and test failures.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultDrop:
		return "drop"
	case FaultDuplicate:
		return "duplicate"
	case FaultDelay:
		return "delay"
	}
	return "unknown"
}

// Injector decides, deterministically, the fate of each delivery
// attempt. It is consulted under no lock and from every sending
// goroutine concurrently, so implementations must be stateless or
// internally synchronised — internal/faultinject's Plan hashes
// (seed, src, dst, tag, attempt, seq) and is pure.
type Injector interface {
	// Message is called once per delivery attempt of the message from
	// src to dst with the given tag. attempt counts retries (0 is the
	// first try) and seq is the per-(src,dst)-pair sequence number.
	Message(src, dst, tag, attempt int, seq uint64) Fault
}

// RetryPolicy bounds redelivery of dropped messages.
type RetryPolicy struct {
	// MaxAttempts is the total number of delivery attempts per message
	// (first try included). Exhausting it fails the send with
	// ErrDeliveryFailed and kills the sending rank.
	MaxAttempts int
	// Backoff is slept between attempts (0 = immediate retry, the
	// in-process default: there is no congested wire to yield to).
	Backoff time.Duration
}

// DefaultRetry is the policy a world starts with.
var DefaultRetry = RetryPolicy{MaxAttempts: 5, Backoff: 0}

// SetInjector installs a fault injector (nil removes it). Call before
// any traffic; the world does not synchronise injector swaps against
// in-flight sends.
func (w *World) SetInjector(inj Injector) { w.inj = inj }

// SetRetryPolicy replaces the retry bounds consulted when the
// injector drops a delivery. Call before any traffic.
func (w *World) SetRetryPolicy(p RetryPolicy) {
	if p.MaxAttempts > 0 {
		w.retry = p
	}
}

// SetOpTimeout bounds every blocking Send/Recv/Barrier wait; zero
// (the default) blocks forever. Chaos runs set it so a crashed or
// wedged peer surfaces as ErrTimeout instead of a deadlock; healthy
// runs never hit it, which keeps results timeout-independent.
func (w *World) SetOpTimeout(d time.Duration) { w.opTimeout = d }
