package transport

import (
	"sync"
	"testing"
)

// TestBarrierHappensBefore checks the memory-ordering contract: writes
// a rank makes before Barrier must be visible to every rank after it.
// Each iteration every rank publishes into its own slot, crosses the
// barrier, and reads all slots without further synchronisation — under
// -race this fails if the barrier's generation handoff is broken. The
// second barrier keeps the next iteration's writes from racing with
// this iteration's reads.
func TestBarrierHappensBefore(t *testing.T) {
	const n = 8
	const iters = 200
	shared := make([]int, n)
	err := Run(n, func(c *Comm) error {
		for it := 1; it <= iters; it++ {
			shared[c.Rank()] = it
			if err := c.Barrier(); err != nil {
				return err
			}
			for r := 0; r < n; r++ {
				if shared[r] != it {
					t.Errorf("iter %d rank %d saw slot %d = %d", it, c.Rank(), r, shared[r])
				}
			}
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestBarrierManyRanksLooping stresses the generation counter with a
// wide world and tight loop, where a stale barrierCh read would wake a
// rank in the wrong generation.
func TestBarrierManyRanksLooping(t *testing.T) {
	const n = 32
	const iters = 500
	err := Run(n, func(c *Comm) error {
		for it := 0; it < iters; it++ {
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestBarrierInterleavedWithTraffic mixes barrier crossings with ring
// Send/Recv traffic so barrier state and mailbox channels are exercised
// together, the way collective compositions use them.
func TestBarrierInterleavedWithTraffic(t *testing.T) {
	const n = 6
	const iters = 100
	err := Run(n, func(c *Comm) error {
		next := (c.Rank() + 1) % n
		prev := (c.Rank() - 1 + n) % n
		for it := 0; it < iters; it++ {
			if err := c.Send(next, it, []float32{float32(c.Rank()), float32(it)}); err != nil {
				return err
			}
			got, err := c.Recv(prev, it)
			if err != nil {
				return err
			}
			if int(got[0]) != prev || int(got[1]) != it {
				t.Errorf("rank %d iter %d got %v", c.Rank(), it, got)
			}
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestSendSnapshotUnderRace mutates the send buffer immediately after
// every Send in a tight loop; if Send aliased instead of copying, the
// writer would race with the receiver's read and -race would flag it.
func TestSendSnapshotUnderRace(t *testing.T) {
	const iters = 300
	err := Run(2, func(c *Comm) error {
		buf := []float32{0}
		for it := 0; it < iters; it++ {
			if c.Rank() == 0 {
				buf[0] = float32(it)
				if err := c.Send(1, it, buf); err != nil {
					return err
				}
				buf[0] = -1 // would race with rank 1's read if Send aliased
			} else {
				got, err := c.Recv(0, it)
				if err != nil {
					return err
				}
				if got[0] != float32(it) {
					t.Errorf("iter %d got %g", it, got[0])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestConcurrentWorlds runs several independent worlds at once; their
// barrier and mailbox state must be fully isolated.
func TestConcurrentWorlds(t *testing.T) {
	const worlds = 4
	var wg sync.WaitGroup
	for wi := 0; wi < worlds; wi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := Run(4, func(c *Comm) error {
				for it := 0; it < 50; it++ {
					if err := c.Barrier(); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Errorf("Run: %v", err)
			}
		}()
	}
	wg.Wait()
}
