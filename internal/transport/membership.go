package transport

import (
	"fmt"
	"sort"
)

// Membership tracks which slots of an original fixed-size world are
// currently alive — the bookkeeping behind elastic training, where a
// rank death shrinks the world in place (survivors re-form a smaller
// World whose comm ranks are the alive slots in ascending order) and
// a scheduled rejoin restores it. A World itself is immutable once
// built; Membership is the layer above that decides how large the
// next World is and which machine slot each comm rank stands for.
type Membership struct {
	alive []bool
	n     int // alive count
}

// NewMembership returns a membership of `total` slots, all alive.
func NewMembership(total int) (*Membership, error) {
	if total <= 0 {
		return nil, fmt.Errorf("transport: membership of %d slots", total)
	}
	alive := make([]bool, total)
	for i := range alive {
		alive[i] = true
	}
	return &Membership{alive: alive, n: total}, nil
}

// Total returns the original world size.
func (m *Membership) Total() int { return len(m.alive) }

// Size returns the number of alive slots.
func (m *Membership) Size() int { return m.n }

// Full reports whether every slot is alive.
func (m *Membership) Full() bool { return m.n == len(m.alive) }

// Alive reports whether slot s is alive.
func (m *Membership) Alive(s int) bool {
	return s >= 0 && s < len(m.alive) && m.alive[s]
}

// Members returns the alive slots in ascending order — comm rank i of
// the next World stands for slot Members()[i]. The slice is fresh.
func (m *Membership) Members() []int {
	out := make([]int, 0, m.n)
	for s, a := range m.alive {
		if a {
			out = append(out, s)
		}
	}
	return out
}

// CommRank returns the comm rank slot s maps to in a world formed
// from the current members, or -1 if s is dead or out of range.
func (m *Membership) CommRank(s int) int {
	if !m.Alive(s) {
		return -1
	}
	r := 0
	for i := 0; i < s; i++ {
		if m.alive[i] {
			r++
		}
	}
	return r
}

// Remove marks the given slots dead. Removing an unknown or already-
// dead slot, or the last alive slot, is an error and leaves the
// membership unchanged.
func (m *Membership) Remove(slots ...int) error {
	seen := make(map[int]bool, len(slots))
	for _, s := range slots {
		if !m.Alive(s) {
			return fmt.Errorf("transport: membership: slot %d not alive", s)
		}
		if seen[s] {
			return fmt.Errorf("transport: membership: slot %d removed twice", s)
		}
		seen[s] = true
	}
	if m.n-len(slots) < 1 {
		return fmt.Errorf("transport: membership: removing %d of %d alive slots leaves no survivors", len(slots), m.n)
	}
	for _, s := range slots {
		m.alive[s] = false
	}
	m.n -= len(slots)
	return nil
}

// Restore marks the given dead slots alive again (a scheduled
// rejoin). Restoring an alive or unknown slot is an error and leaves
// the membership unchanged.
func (m *Membership) Restore(slots ...int) error {
	seen := make(map[int]bool, len(slots))
	for _, s := range slots {
		if s < 0 || s >= len(m.alive) {
			return fmt.Errorf("transport: membership: slot %d out of range", s)
		}
		if m.alive[s] {
			return fmt.Errorf("transport: membership: slot %d already alive", s)
		}
		if seen[s] {
			return fmt.Errorf("transport: membership: slot %d restored twice", s)
		}
		seen[s] = true
	}
	for _, s := range slots {
		m.alive[s] = true
	}
	m.n += len(slots)
	return nil
}

// RestoreAll revives every dead slot and returns the slots that were
// dead, in ascending order.
func (m *Membership) RestoreAll() []int {
	var revived []int
	for s, a := range m.alive {
		if !a {
			revived = append(revived, s)
			m.alive[s] = true
		}
	}
	m.n = len(m.alive)
	sort.Ints(revived)
	return revived
}

func (m *Membership) String() string {
	return fmt.Sprintf("%d/%d alive %v", m.n, len(m.alive), m.Members())
}
