package transport

import (
	"fmt"
	"strings"
	"testing"

	"segscale/internal/telemetry"
)

// counterValue returns one lane's contribution to a gathered counter.
func counterValue(t *testing.T, col *telemetry.Collector, lane, name string) float64 {
	t.Helper()
	for _, m := range col.Gather() {
		if m.Name == name {
			return m.PerLane[lane]
		}
	}
	t.Fatalf("metric %s not gathered", name)
	return 0
}

// The binary16 path must carry payloads with the same FIFO semantics
// as the float32 path, and both kinds must interleave safely on one
// (src,dst) pair when their tags differ.
func TestSendRecv16Basic(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		const tag16, tag32 = 7, 8
		if c.Rank() == 0 {
			if err := c.Send16(1, tag16, []uint16{0x3C00, 0x4000, 0xFC00}); err != nil {
				return err
			}
			return c.Send(1, tag32, []float32{1, 2})
		}
		got16, err := c.Recv16(0, tag16)
		if err != nil {
			return err
		}
		if len(got16) != 3 || got16[0] != 0x3C00 || got16[1] != 0x4000 || got16[2] != 0xFC00 {
			t.Errorf("binary16 payload corrupted: %#v", got16)
		}
		got32, err := c.Recv(0, tag32)
		if err != nil {
			return err
		}
		if len(got32) != 2 || got32[0] != 1 || got32[1] != 2 {
			t.Errorf("float32 payload corrupted: %#v", got32)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecv16RingStep(t *testing.T) {
	const world = 4
	err := Run(world, func(c *Comm) error {
		me := c.Rank()
		next := (me + 1) % world
		prev := (me - 1 + world) % world
		got, err := c.SendRecv16(next, 3, []uint16{uint16(me)}, prev, 3)
		if err != nil {
			return err
		}
		if len(got) != 1 || got[0] != uint16(prev) {
			t.Errorf("rank %d: got %#v, want [%d]", me, got, prev)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvInto16LengthMismatch(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send16(1, 1, []uint16{1, 2, 3})
		}
		err := c.RecvInto16(0, 1, make([]uint16, 2))
		if err == nil {
			t.Error("length mismatch accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// A float32 message consumed by a binary16 receive (and vice versa)
// is a protocol bug, reported as an error rather than silently
// reinterpreted.
func TestPayloadKindMismatch(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			if err := c.Send(1, 1, []float32{1}); err != nil {
				return err
			}
			return c.Send16(1, 2, []uint16{1})
		default:
			if _, err := c.Recv16(0, 1); err == nil || !strings.Contains(err.Error(), "float32 payload") {
				t.Errorf("Recv16 on a float32 message: %v", err)
			}
			if _, err := c.Recv(0, 2); err == nil || !strings.Contains(err.Error(), "binary16 payload") {
				t.Errorf("Recv on a binary16 message: %v", err)
			}
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// The byte counters must model the 2-byte element width: n binary16
// words account exactly half the bytes of n float32 elements.
func TestSend16ByteAccounting(t *testing.T) {
	const n = 64
	col := telemetry.NewCollector()
	err := Run(2, func(c *Comm) error {
		c.SetProbe(col.NewProbe(fmt.Sprintf("rank%d", c.Rank()), telemetry.NewStepClock()))
		if c.Rank() == 0 {
			if err := c.Send(1, 1, make([]float32, n)); err != nil {
				return err
			}
			return c.Send16(1, 2, make([]uint16, n))
		}
		if _, err := c.Recv(0, 1); err != nil {
			return err
		}
		_, err := c.Recv16(0, 2)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	sent := counterValue(t, col, "rank0", "transport_sent_bytes")
	recvd := counterValue(t, col, "rank1", "transport_received_bytes")
	want := float64(4*n + 2*n)
	if sent != want || recvd != want {
		t.Fatalf("sent %.0f recv %.0f bytes, want %.0f (4n float32 + 2n binary16)", sent, recvd, want)
	}
}
