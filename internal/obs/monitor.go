// Package obs is segscale's live observability plane: an opt-in HTTP
// server exposing Prometheus metrics, liveness/readiness, pprof, and
// flight-recorder dumps; an online scaling-efficiency monitor with
// SLO alerts; periodic crash-safe metric flushing; and run manifests
// under results/runs/.
//
// Everything here is strictly an observer. The training loop and the
// simulator publish through nil-safe hooks (telemetry probes,
// telemetry.StepObserver, train.Config.OnWorld) that default to off,
// so a run with the plane disabled is bit-identical to one that never
// linked it — the deterministic goldens depend on that. Unlike the
// telemetry package (which must stay wall-clock-free), obs lives at
// the edge of the system and may read real time: rolling img/s for
// real training is measured here, not in the trainer.
package obs

//seglint:file-ignore hotalloc the efficiency monitor is an edge observer: step alloc budgets are measured with StepObs=nil, lane state is allocated on first observation, and alert formatting runs only on SLO transitions

import (
	"fmt"
	"math"
	"sync"
	"time"

	"segscale/internal/telemetry"
)

// Alert is one structured event from the efficiency monitor's alert
// log — the machine-readable trail a run manifest carries.
type Alert struct {
	// Seq orders alerts within a run.
	Seq int `json:"seq"`
	// Obs is the global observation (step notification) count when the
	// alert fired.
	Obs int `json:"obs"`
	// Kind is "slo_breach", "slo_recovered", "straggler",
	// "straggler_recovered", "restart", or a caller-supplied kind fed
	// through Event.
	Kind string `json:"kind"`
	// Lane names the offending executor for per-lane alerts ("" for
	// aggregate ones).
	Lane string `json:"lane,omitempty"`
	// Value / Threshold carry the measurement that tripped the alert
	// (efficiency for SLO alerts, z-score for straggler alerts).
	Value     float64 `json:"value,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	Msg       string  `json:"msg"`
}

// MonitorConfig tunes the efficiency monitor. The zero value gives
// the paper-derived defaults.
type MonitorConfig struct {
	// AnchorImgPerSec is the single-rank throughput perfect scaling is
	// measured against — the paper's calibration anchor is 6.7 img/s
	// for DeepLab-v3+ on a V100. Zero self-calibrates: the first
	// efficiency evaluation's per-rank rate becomes the anchor, which
	// is the right choice for real training whose absolute throughput
	// is machine-dependent.
	AnchorImgPerSec float64
	// SLO is the scaling-efficiency objective; aggregate efficiency
	// below it raises an "slo_breach" alert (hysteresis: one alert per
	// excursion, "slo_recovered" on the way back). Default 0.92, the
	// paper's headline.
	SLO float64
	// Window is the per-lane rolling window, in steps (default 20).
	Window int
	// EveryK evaluates efficiency and straggler scores every K step
	// observations (default 10).
	EveryK int
	// ZThreshold flags a lane as a straggler when its per-rank rate
	// falls this many standard deviations below the lane mean
	// (default 3).
	ZThreshold float64
	// StaleAfter drops a lane from the aggregate after it has gone
	// this many global observations without a step — a crashed rank's
	// lane must stop depressing efficiency once its restarted
	// incarnation's lane has taken over (default 160).
	StaleAfter int
}

func (c MonitorConfig) canon() MonitorConfig {
	if c.SLO == 0 {
		c.SLO = DefaultSLO
	}
	if c.Window <= 0 {
		c.Window = 20
	}
	if c.EveryK <= 0 {
		c.EveryK = 10
	}
	if c.ZThreshold <= 0 {
		c.ZThreshold = 3
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = 160
	}
	return c
}

// DefaultSLO is the paper's ~92% scaling-efficiency headline.
const DefaultSLO = 0.92

// maxAlerts bounds the alert log; a monitor that cries this often has
// made its point, and manifests should stay readable.
const maxAlerts = 1024

// laneStat is one executor's rolling window.
type laneStat struct {
	ranks    int       // data-parallel ranks this lane aggregates (sim lanes cover whole worlds)
	durs     []float64 // ring of step durations (seconds)
	imgs     []float64 // ring of images per step
	next, n  int
	sumDur   float64
	sumImgs  float64
	lastWall float64 // last wall-clock observation (stepSec<=0 mode)
	hasWall  bool
	lastObs  int // global observation index of the last update
	straggle bool
}

func (l *laneStat) push(dur, img float64, window int) {
	if l.n == window {
		l.sumDur -= l.durs[l.next]
		l.sumImgs -= l.imgs[l.next]
	} else {
		l.n++
	}
	l.durs[l.next] = dur
	l.imgs[l.next] = img
	l.sumDur += dur
	l.sumImgs += img
	l.next = (l.next + 1) % window
}

// rate returns the lane's rolling throughput in img/s.
func (l *laneStat) rate() float64 {
	if l.sumDur <= 0 {
		return 0
	}
	return l.sumImgs / l.sumDur
}

// EffMonitor is the online scaling-efficiency monitor: it consumes
// per-step notifications (telemetry.StepObserver), keeps a rolling
// per-lane img/s window, and every EveryK observations computes the
// aggregate scaling efficiency against the calibration anchor plus a
// per-lane straggler z-score, publishing gauges on an "obs" telemetry
// lane and appending structured alerts when the SLO is breached. All
// methods are goroutine-safe and nil-safe.
type EffMonitor struct {
	cfg    MonitorConfig
	nowSec func() float64 // injected monotonic clock (tests); wall time by default

	mu        sync.Mutex
	lanes     map[string]*laneStat
	order     []string
	globalObs int
	anchor    float64 // resolved anchor (self-calibrated when cfg.AnchorImgPerSec == 0)
	lastEff   float64
	breached  bool
	alerts    []Alert
	dropped   int // alerts beyond maxAlerts

	effGauge    *telemetry.Gauge
	zGauge      *telemetry.Gauge
	alertsTotal *telemetry.Counter
	breachTotal *telemetry.Counter
	probe       *telemetry.Probe
}

// NewEffMonitor builds a monitor publishing its gauges and counters
// through col on lane "obs" (col may be nil: the monitor still
// computes efficiency and alerts, it just has nowhere to export
// gauges).
func NewEffMonitor(col *telemetry.Collector, cfg MonitorConfig) *EffMonitor {
	probe := col.NewProbe("obs", telemetry.NewStepClock())
	start := time.Now()
	m := &EffMonitor{
		cfg:         cfg.canon(),
		nowSec:      func() float64 { return time.Since(start).Seconds() },
		lanes:       map[string]*laneStat{},
		anchor:      cfg.AnchorImgPerSec,
		probe:       probe,
		effGauge:    probe.Gauge("obs_scaling_efficiency_ratio"),
		zGauge:      probe.Gauge("obs_straggler_zscore_ratio"),
		alertsTotal: probe.Counter("obs_alerts_total"),
		breachTotal: probe.Counter("obs_slo_breaches_total"),
	}
	return m
}

// SLO returns the configured efficiency objective.
func (m *EffMonitor) SLO() float64 {
	if m == nil {
		return 0
	}
	return m.cfg.SLO
}

// Anchor returns the resolved calibration anchor in img/s per rank
// (0 until self-calibration has happened).
func (m *EffMonitor) Anchor() float64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.anchor
}

// SetLaneRanks declares how many data-parallel ranks a lane
// aggregates (default 1). The simulator reports whole worlds on one
// lane, so efficiency must divide its throughput across the world's
// GPU count.
func (m *EffMonitor) SetLaneRanks(lane string, ranks int) {
	if m == nil || ranks <= 0 {
		return
	}
	m.mu.Lock()
	m.lane(lane).ranks = ranks
	m.mu.Unlock()
}

// lane returns (creating if needed) a lane's stats. Caller holds mu.
func (m *EffMonitor) lane(name string) *laneStat {
	ls, ok := m.lanes[name]
	if !ok {
		ls = &laneStat{
			ranks: 1,
			durs:  make([]float64, m.cfg.Window),
			imgs:  make([]float64, m.cfg.Window),
		}
		m.lanes[name] = ls
		m.order = append(m.order, name)
	}
	return ls
}

// ObserveStep implements telemetry.StepObserver. stepSec > 0 is a
// modelled virtual duration (the simulator); stepSec <= 0 means "you
// time it", and the monitor measures the wall-clock gap between
// consecutive observations on the lane (the first observation only
// starts the clock). Nil-safe.
func (m *EffMonitor) ObserveStep(lane string, step, imgs int, stepSec float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	ls := m.lane(lane)
	dur := stepSec
	if stepSec <= 0 {
		now := m.nowSec()
		if ls.hasWall {
			dur = now - ls.lastWall
		}
		ls.lastWall = now
		ls.hasWall = true
	}
	if dur > 0 {
		ls.push(dur, float64(imgs), m.cfg.Window)
	}
	m.globalObs++
	ls.lastObs = m.globalObs
	if m.globalObs%m.cfg.EveryK == 0 {
		m.evaluateLocked()
	}
	m.mu.Unlock()
}

// Event appends an externally observed alert — the trainer's restart
// path feeds "restart" here so the manifest's alert log tells the
// whole recovery story. Nil-safe.
func (m *EffMonitor) Event(kind, lane, msg string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.addAlertLocked(Alert{Kind: kind, Lane: lane, Msg: msg})
	m.mu.Unlock()
}

// Report appends an externally observed alert with its full
// measurement (value and threshold), not just a message — the
// training-health plane routes sentinel trips here so divergence
// alerts land in the same manifest log as SLO breaches. Seq and Obs
// are stamped by the monitor. Nil-safe.
func (m *EffMonitor) Report(a Alert) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.addAlertLocked(a)
	m.mu.Unlock()
}

// DroppedAlerts returns how many alerts were discarded beyond the
// retention cap; the Seq of retained alerts keeps counting across
// drops, so len(Alerts()) + DroppedAlerts() is the true alert total.
func (m *EffMonitor) DroppedAlerts() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dropped
}

func (m *EffMonitor) addAlertLocked(a Alert) {
	a.Seq = len(m.alerts) + m.dropped
	a.Obs = m.globalObs
	m.alertsTotal.Inc()
	if len(m.alerts) >= maxAlerts {
		m.dropped++
		return
	}
	m.alerts = append(m.alerts, a)
}

// evaluateLocked recomputes efficiency and straggler scores. Caller
// holds mu.
func (m *EffMonitor) evaluateLocked() {
	type active struct {
		name string
		ls   *laneStat
	}
	var act []active
	totalRate, totalRanks := 0.0, 0
	for _, name := range m.order {
		ls := m.lanes[name]
		if ls.n == 0 || m.globalObs-ls.lastObs > m.cfg.StaleAfter {
			continue
		}
		act = append(act, active{name, ls})
		totalRate += ls.rate()
		totalRanks += ls.ranks
	}
	if totalRanks == 0 || totalRate <= 0 {
		return
	}
	if m.anchor <= 0 {
		// Self-calibration: the first stable reading defines "perfect".
		m.anchor = totalRate / float64(totalRanks)
	}
	eff := totalRate / (m.anchor * float64(totalRanks))
	m.lastEff = eff
	m.effGauge.Set(eff)
	// Heartbeat into the flight recorder: even span-free producers (the
	// simulator) leave a readable efficiency trail in /debug/flight.
	m.probe.Mark("EVAL", fmt.Sprintf("eff %.1f%% over %d lanes", 100*eff, len(act)))

	switch {
	case eff < m.cfg.SLO && !m.breached:
		m.breached = true
		m.breachTotal.Inc()
		m.probe.Mark("ALERT", "slo_breach")
		m.addAlertLocked(Alert{Kind: "slo_breach", Value: eff, Threshold: m.cfg.SLO,
			Msg: fmt.Sprintf("scaling efficiency %.1f%% below SLO %.1f%%", 100*eff, 100*m.cfg.SLO)})
	case eff >= m.cfg.SLO && m.breached:
		m.breached = false
		m.probe.Mark("ALERT", "slo_recovered")
		m.addAlertLocked(Alert{Kind: "slo_recovered", Value: eff, Threshold: m.cfg.SLO,
			Msg: fmt.Sprintf("scaling efficiency back to %.1f%%", 100*eff)})
	}

	// Straggler z-scores need a population: at least 3 active lanes.
	if len(act) < 3 {
		return
	}
	mean, n := 0.0, float64(len(act))
	perRank := make([]float64, len(act))
	for i, a := range act {
		perRank[i] = a.ls.rate() / float64(a.ls.ranks)
		mean += perRank[i]
	}
	mean /= n
	var varSum float64
	for _, r := range perRank {
		varSum += (r - mean) * (r - mean)
	}
	std := math.Sqrt(varSum / n)
	if std == 0 {
		return
	}
	worst := 0.0
	for i, a := range act {
		z := (mean - perRank[i]) / std // positive = slower than the pack
		if z > worst {
			worst = z
		}
		switch {
		case z > m.cfg.ZThreshold && !a.ls.straggle:
			a.ls.straggle = true
			m.probe.Mark("ALERT", "straggler")
			m.addAlertLocked(Alert{Kind: "straggler", Lane: a.name, Value: z, Threshold: m.cfg.ZThreshold,
				Msg: fmt.Sprintf("lane %s runs %.1f img/s/rank against a mean of %.1f (z=%.1f)",
					a.name, perRank[i], mean, z)})
		case z <= m.cfg.ZThreshold/2 && a.ls.straggle:
			a.ls.straggle = false
			m.addAlertLocked(Alert{Kind: "straggler_recovered", Lane: a.name, Value: z, Threshold: m.cfg.ZThreshold,
				Msg: fmt.Sprintf("lane %s caught back up (z=%.1f)", a.name, z)})
		}
	}
	m.zGauge.Set(worst)
}

// LastEfficiency returns the most recent aggregate scaling efficiency
// (0 before the first evaluation).
func (m *EffMonitor) LastEfficiency() float64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastEff
}

// Alerts returns a copy of the alert log (oldest first).
func (m *EffMonitor) Alerts() []Alert {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Alert(nil), m.alerts...)
}
