package obs

import (
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sync"
	"syscall"

	"segscale/internal/telemetry"
)

// writeFileAtomic streams write into a unique temp file in path's
// directory, fsyncs it, and renames it over path — the checkpoint
// durability pattern, reused so a crash mid-flush can never leave a
// torn or empty metrics file where a complete one used to be.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := write(f); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives a
// crash; skipped on Windows, which cannot open directories.
func syncDir(dir string) error {
	if runtime.GOOS == "windows" {
		return nil
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// FlushPrometheus atomically writes the collector's current metrics
// to path in Prometheus text format.
func FlushPrometheus(col *telemetry.Collector, path string) error {
	return writeFileAtomic(path, col.WritePrometheus)
}

// WriteFlightTrace atomically dumps the flight recorder's window to
// path as a Chrome trace. A nil recorder writes nothing and returns
// nil.
func WriteFlightTrace(f *telemetry.FlightRecorder, path string) error {
	if f == nil {
		return nil
	}
	return writeFileAtomic(path, f.WriteChromeTrace)
}

// PromFlusher implements telemetry.StepObserver by re-exporting the
// collector's metrics every N observed steps — so a run that crashes
// between epochs still leaves a usable metrics file behind. The final
// flush (Flush) runs unconditionally at the end of a surviving run.
type PromFlusher struct {
	col   *telemetry.Collector
	path  string
	every int

	mu    sync.Mutex
	count int
	err   error // first flush error, surfaced by Flush
}

// NewPromFlusher flushes col to path every `every` step observations
// (every <= 0 defaults to 25).
func NewPromFlusher(col *telemetry.Collector, path string, every int) *PromFlusher {
	if every <= 0 {
		every = 25
	}
	return &PromFlusher{col: col, path: path, every: every}
}

// ObserveStep implements telemetry.StepObserver. Flush errors are
// remembered, not returned — an observer must never interrupt the
// step loop — and surface from the final Flush call.
func (p *PromFlusher) ObserveStep(lane string, step, imgs int, stepSec float64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.count++
	if p.count%p.every != 0 {
		return
	}
	if err := FlushPrometheus(p.col, p.path); err != nil && p.err == nil {
		p.err = err
	}
}

// Flush writes the current metrics immediately and returns the first
// error any flush (periodic or this one) hit.
func (p *PromFlusher) Flush() error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := FlushPrometheus(p.col, p.path); err != nil && p.err == nil {
		p.err = err
	}
	return p.err
}

// DumpFlightOnSignal dumps the flight recorder to path every time the
// process receives SIGQUIT — the classic "what is this job doing
// right now" poke, matching the Go runtime's own SIGQUIT habit of
// dumping goroutine stacks (which this handler replaces while
// active). The returned stop function restores default handling.
func DumpFlightOnSignal(f *telemetry.FlightRecorder, path string, report func(err error)) (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-ch:
				if err := WriteFlightTrace(f, path); err != nil && report != nil {
					report(err)
				}
			case <-done:
				return
			}
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}
