package obs

import (
	"strings"
	"testing"

	"segscale/internal/telemetry"
)

// kinds flattens an alert log for order-sensitive assertions.
func kinds(alerts []Alert) string {
	parts := make([]string, len(alerts))
	for i, a := range alerts {
		parts[i] = a.Kind
		if a.Lane != "" {
			parts[i] += ":" + a.Lane
		}
	}
	return strings.Join(parts, ",")
}

// feed pushes n virtual-duration steps on one lane.
func feed(m *EffMonitor, lane string, n, imgs int, stepSec float64) {
	for i := 0; i < n; i++ {
		m.ObserveStep(lane, i, imgs, stepSec)
	}
}

func TestMonitorEfficiencySLOHysteresis(t *testing.T) {
	m := NewEffMonitor(nil, MonitorConfig{
		AnchorImgPerSec: 10, SLO: 0.9, Window: 4, EveryK: 2})

	feed(m, "a", 8, 1, 0.1) // 10 img/s = perfect scaling
	if eff := m.LastEfficiency(); eff < 0.99 || eff > 1.01 {
		t.Fatalf("efficiency at anchor rate = %v, want ~1", eff)
	}
	if len(m.Alerts()) != 0 {
		t.Fatalf("unexpected alerts at full efficiency: %v", m.Alerts())
	}

	feed(m, "a", 8, 1, 0.2) // window flushes to 5 img/s = 50%
	if eff := m.LastEfficiency(); eff > 0.51 {
		t.Fatalf("efficiency after slowdown = %v, want ~0.5", eff)
	}
	// Hysteresis: a sustained breach alerts exactly once.
	if got := kinds(m.Alerts()); got != "slo_breach" {
		t.Fatalf("alerts after breach = %q, want one slo_breach", got)
	}

	feed(m, "a", 8, 1, 0.1)
	if got := kinds(m.Alerts()); got != "slo_breach,slo_recovered" {
		t.Fatalf("alerts after recovery = %q", got)
	}
	b, r := m.Alerts()[0], m.Alerts()[1]
	if b.Value >= 0.9 || b.Threshold != 0.9 || r.Value < 0.9 {
		t.Fatalf("alert measurements wrong: breach=%+v recovered=%+v", b, r)
	}
}

func TestMonitorSelfCalibratingAnchorAndWallClock(t *testing.T) {
	m := NewEffMonitor(nil, MonitorConfig{Window: 4, EveryK: 2})
	clock := 0.0
	m.nowSec = func() float64 { return clock }

	// stepSec <= 0: the monitor stamps wall deltas itself; the first
	// observation only starts the lane's clock.
	for i := 0; i < 9; i++ {
		m.ObserveStep("rank0", i, 2, 0)
		clock += 0.25
	}
	if a := m.Anchor(); a < 7.9 || a > 8.1 {
		t.Fatalf("self-calibrated anchor = %v, want ~8 img/s", a)
	}
	if eff := m.LastEfficiency(); eff < 0.99 || eff > 1.01 {
		t.Fatalf("efficiency vs self-anchor = %v, want ~1", eff)
	}

	// A long stall (crash + restart gap) lands in the window as one
	// huge step and drags efficiency down — the recovery-dip signal.
	clock += 10
	for i := 0; i < 2; i++ {
		m.ObserveStep("rank0", 9+i, 2, 0)
		clock += 0.25
	}
	if eff := m.LastEfficiency(); eff > 0.5 {
		t.Fatalf("efficiency across a 10s stall = %v, want a deep dip", eff)
	}
}

func TestMonitorStragglerZScores(t *testing.T) {
	m := NewEffMonitor(nil, MonitorConfig{
		AnchorImgPerSec: 10, SLO: 0.01, Window: 4, EveryK: 1, ZThreshold: 1.5})

	// Round-robin keeps lane windows balanced; d runs at half speed.
	for i := 0; i < 4; i++ {
		m.ObserveStep("a", i, 1, 0.1)
		m.ObserveStep("b", i, 1, 0.1)
		m.ObserveStep("c", i, 1, 0.1)
		m.ObserveStep("d", i, 1, 0.2)
	}
	if got := kinds(m.Alerts()); got != "straggler:d" {
		t.Fatalf("alerts after slow lane = %q, want straggler:d", got)
	}

	// d catches up while a collapses: d must recover, a must trip.
	for i := 0; i < 4; i++ {
		m.ObserveStep("a", 4+i, 1, 0.5)
		m.ObserveStep("b", 4+i, 1, 0.1)
		m.ObserveStep("c", 4+i, 1, 0.1)
		m.ObserveStep("d", 4+i, 1, 0.1)
	}
	got := kinds(m.Alerts())
	if !strings.Contains(got, "straggler_recovered:d") || !strings.Contains(got, "straggler:a") {
		t.Fatalf("alerts after role swap = %q, want d recovered and a straggling", got)
	}
}

func TestMonitorStaleLaneEviction(t *testing.T) {
	m := NewEffMonitor(nil, MonitorConfig{
		AnchorImgPerSec: 10, SLO: 0.01, Window: 4, EveryK: 1, StaleAfter: 6})

	feed(m, "rank1", 4, 1, 0.2) // 5 img/s, then goes silent (crashed)
	feed(m, "rank0", 4, 1, 0.1)
	// Both active: aggregate (5+10)/(10*2) = 0.75.
	if eff := m.LastEfficiency(); eff < 0.74 || eff > 0.76 {
		t.Fatalf("efficiency with both lanes = %v, want 0.75", eff)
	}

	// rank1 idles past StaleAfter global observations; only rank0
	// counts afterwards.
	feed(m, "rank0", 8, 1, 0.1)
	if eff := m.LastEfficiency(); eff < 0.99 || eff > 1.01 {
		t.Fatalf("efficiency after stale eviction = %v, want ~1", eff)
	}
}

func TestMonitorLaneRanksAndGauges(t *testing.T) {
	col := telemetry.NewCollector()
	m := NewEffMonitor(col, MonitorConfig{AnchorImgPerSec: 10, Window: 4, EveryK: 2})
	// One simulator lane covering a 6-GPU world at 48 img/s aggregate:
	// per-rank 8 img/s, efficiency 0.8.
	m.SetLaneRanks("gpus6", 6)
	feed(m, "gpus6", 4, 48, 1.0)
	if eff := m.LastEfficiency(); eff < 0.79 || eff > 0.81 {
		t.Fatalf("world-lane efficiency = %v, want 0.8", eff)
	}

	var prom strings.Builder
	if err := col.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "obs_scaling_efficiency_ratio") {
		t.Fatalf("efficiency gauge missing from export:\n%s", prom.String())
	}
}

func TestMonitorNilIsNoOp(t *testing.T) {
	var m *EffMonitor
	m.ObserveStep("a", 0, 1, 0.1) // must not panic
	m.Event("restart", "", "x")
	m.SetLaneRanks("a", 4)
	if m.LastEfficiency() != 0 || m.Alerts() != nil || m.SLO() != 0 || m.Anchor() != 0 {
		t.Fatal("nil monitor must read as zero")
	}
}

func TestMonitorEventsAndAlertCap(t *testing.T) {
	m := NewEffMonitor(nil, MonitorConfig{AnchorImgPerSec: 10})
	for i := 0; i < maxAlerts+10; i++ {
		m.Event("restart", "", "again")
	}
	got := m.Alerts()
	if len(got) != maxAlerts {
		t.Fatalf("alert log length = %d, want capped at %d", len(got), maxAlerts)
	}
	if got[0].Seq != 0 || got[len(got)-1].Seq != maxAlerts-1 {
		t.Fatalf("alert seqs broken: first=%d last=%d", got[0].Seq, got[len(got)-1].Seq)
	}
}

// TestMonitorDroppedAlertCounting pins the drop-counter path: past the
// retention cap the counter keeps the true total, and would-be Seq
// values keep advancing across drops (so a later Report is stamped as
// if the dropped alerts were still in the log).
func TestMonitorDroppedAlertCounting(t *testing.T) {
	m := NewEffMonitor(nil, MonitorConfig{AnchorImgPerSec: 10})
	if m.DroppedAlerts() != 0 {
		t.Fatal("fresh monitor reports drops")
	}
	for i := 0; i < maxAlerts+25; i++ {
		m.Event("restart", "", "again")
	}
	if got := m.DroppedAlerts(); got != 25 {
		t.Fatalf("dropped = %d, want 25", got)
	}
	if got := len(m.Alerts()); got != maxAlerts {
		t.Fatalf("retained = %d, want cap %d", got, maxAlerts)
	}
	// The true total is reconstructible.
	if total := len(m.Alerts()) + m.DroppedAlerts(); total != maxAlerts+25 {
		t.Fatalf("reconstructed total = %d, want %d", total, maxAlerts+25)
	}
}

// TestMonitorReport covers externally sourced alerts (the health
// plane's sentinel trips route through here): fields pass through,
// Seq/Obs are stamped by the monitor, and nil stays a no-op.
func TestMonitorReport(t *testing.T) {
	m := NewEffMonitor(nil, MonitorConfig{AnchorImgPerSec: 10, Window: 2, EveryK: 1})
	feed(m, "rank0", 3, 1, 0.1) // advance the observation counter
	m.Report(Alert{
		Kind: "health_nonfinite_grad", Lane: "rank1",
		Value: 3, Threshold: 0, Msg: "nonfinite_grad: layer aspp.b0 rank 1 step 7 inc 0",
	})
	got := m.Alerts()
	if len(got) != 1 {
		t.Fatalf("alerts = %+v, want one reported", got)
	}
	a := got[0]
	if a.Kind != "health_nonfinite_grad" || a.Lane != "rank1" || a.Value != 3 {
		t.Fatalf("reported alert mangled: %+v", a)
	}
	if a.Seq != 0 || a.Obs != 3 {
		t.Fatalf("monitor did not stamp seq/obs: %+v", a)
	}
	var nilMon *EffMonitor
	nilMon.Report(Alert{Kind: "x"}) // must not panic
	if nilMon.DroppedAlerts() != 0 {
		t.Fatal("nil monitor reports drops")
	}
}
